# Local and CI entry points. The CI workflow calls these same targets,
# so the two invocations cannot drift.

GO ?= go

.PHONY: all build vet fmt-check test race bench

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs reformatting, printing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$out"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: the shared-interface
# analyzer, the on-disk cache, and the public batch API.
race:
	$(GO) test -race ./internal/cache/... ./internal/shared/... .

# One-iteration benchmark smoke run; CI uploads the output as the
# BENCH trajectory's source of truth.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
