# Local and CI entry points. The CI workflow calls these same targets,
# so the two invocations cannot drift.

GO ?= go
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nosha)

.PHONY: all build vet fmt-check test race bench bench-compare bench-check profile fuzz fuzz-nightly fuzz-malformed serve-smoke sweep-smoke pack-smoke

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs reformatting, printing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$out"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: the shared-interface
# analyzer, the on-disk cache (with its striped memory tier), the
# staged pipeline with its intra-binary worker pool, the public batch
# API, the sweep harness's producer/consumer pipeline, and the fuzzing
# harness (whose invariance legs fan analyses across worker pools).
race:
	$(GO) test -race ./internal/cache/... ./internal/shared/... \
		./internal/pipeline/... ./internal/ident/... ./internal/cfg/... \
		./internal/fuzzer/... ./internal/serve/... ./internal/sweep/... \
		./internal/elff/... ./internal/guard/... ./internal/faults/... .

# One-iteration benchmark smoke run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Benchmark comparison artifact: the cold/warm cache, serial/parallel
# batch, the intra-binary large-binary benchmarks, and the frontend
# (CFG recovery) benchmark rendered (with -benchmem, so the allocation
# trajectory is captured too) as BENCH_<sha>.json — the per-PR
# performance trajectory CI uploads. The bench run lands in a temp
# file first: a pipe would mask bench failures (sh reports the last
# pipe element), and the in-bench worker-count drift guard must be
# able to fail this target.
bench-compare:
	$(GO) test -run='^$$' -bench='AnalyzeAllColdCache|AnalyzeAllWarmCache|AnalyzeAllSerial|AnalyzeAllParallel|AnalyzeLargeBinary|RecoverLargeBinary|ServeWarmHash|SweepTree|PrecisionCorpus|WarmLookup' \
		-benchtime=3x -benchmem -count=1 . > bench-compare.tmp
	$(GO) run ./cmd/benchjson -commit $(SHA) < bench-compare.tmp > BENCH_$(SHA).json
	@rm -f bench-compare.tmp
	@echo "wrote BENCH_$(SHA).json"

# Regression gate: the fresh artifact against the committed baseline.
# Gated metrics are the machine-independent ones: allocs/op (the
# allocation trajectory) and identified/op (the resolver's mean
# identified-set size over the fixed precision corpus — a rise means
# indirect-call resolution stopped shrinking sets). ns/op depends on
# the runner (the baseline was recorded on a different box than CI's),
# so time lands in the artifact for human trending but is not gated.
# >10% regression on any gated metric fails the build, and
# -require-baseline fails when a gated benchmark is missing from the
# committed baseline (a PR adding one must refresh BENCH_seed.json in
# the same change).
bench-check: bench-compare
	$(GO) run ./cmd/benchjson -compare -metrics allocs/op,identified/op -require-baseline BENCH_seed.json BENCH_$(SHA).json

# CPU+heap profiles of the dominant workload (the large-binary
# identification pass) plus the pprof one-liners to read them.
profile:
	$(GO) test -run='^$$' -bench='AnalyzeLargeBinary/workers=1' -benchtime=10x -benchmem \
		-cpuprofile=cpu.prof -memprofile=mem.prof -o bside.test .
	@echo ""
	@echo "profiles written: cpu.prof mem.prof (binary: bside.test)"
	@echo "  $(GO) tool pprof -top -nodecount=20 bside.test cpu.prof"
	@echo "  $(GO) tool pprof -top -nodecount=20 -sample_index=alloc_objects bside.test mem.prof"
	@echo "  $(GO) tool pprof -http=:8080 bside.test cpu.prof   # flame graph"

# End-to-end smoke test of the resident service: boots the real
# `bside serve` daemon over TCP, uploads a binary, replays it by
# content hash, checks the metrics surface, and verifies graceful
# SIGTERM drain. Builds the binary first so the test exercises exactly
# what ships.
serve-smoke:
	$(GO) build -o bside.smoke ./cmd/bside
	$(GO) run ./cmd/servesmoke -bside ./bside.smoke
	@rm -f bside.smoke

# End-to-end smoke test of the fleet sweep: generates a distro-shaped
# tree with the real corpus generator, runs `bside sweep -diff` over it
# cold (asserting zero failures and zero scanner disagreements), then
# warm (asserting the persistent cache carried the second pass).
sweep-smoke:
	$(GO) build -o bside.smoke ./cmd/bside
	$(GO) build -o bsidegen.smoke ./cmd/bsidegen
	$(GO) run ./cmd/sweepsmoke -bside ./bside.smoke -gen ./bsidegen.smoke
	@rm -f bside.smoke bsidegen.smoke

# End-to-end smoke test of cache compaction: cold batch populates a
# cache, a warm loose replay fixes the oracle output, `bside cache
# pack` compacts, and a second warm replay out of the mmapped pack must
# be byte-identical with pack hits reported in the summary.
pack-smoke:
	$(GO) build -o bside.smoke ./cmd/bside
	$(GO) build -o bsidegen.smoke ./cmd/bsidegen
	$(GO) run ./cmd/packsmoke -bside ./bside.smoke -gen ./bsidegen.smoke
	@rm -f bside.smoke bsidegen.smoke

# Randomized corpus fuzzing: soundness + invariance + baseline-sanity
# oracle over a seed range, JSON verdict lines on stdout, non-zero exit
# on any violation. Failing seeds are shrunk to minimal reproducers
# under fuzz-repros/ (promote fixed ones into
# internal/fuzzer/testdata/regressions/).
FUZZ_SEEDS ?= 50
FUZZ_START ?= 1
fuzz:
	$(GO) run ./cmd/bside fuzz -seeds $(FUZZ_SEEDS) -start $(FUZZ_START) -repro fuzz-repros

# Adversarial-input smoke: replays the checked-in malformed-ELF corpus
# under the race detector (structured rejection through every entry
# path, allocation-bomb ceiling), then gives each coverage-guided ELF
# fuzz target a bounded mutation budget. Corpus replay is cheap and
# deterministic; the -fuzztime legs hunt for new crashers. A crasher
# found here lands in internal/elff/testdata/fuzz/ — minimize it and
# promote it into testdata/malformed/ with the others.
FUZZTIME ?= 30s
fuzz-malformed:
	$(GO) test -race -run 'Malformed|AllocationBomb|Corpus' ./internal/elff/ . ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/elff/
	$(GO) test -run '^$$' -fuzz '^FuzzOpenBinary$$' -fuzztime $(FUZZTIME) ./internal/elff/

# The nightly CI shape: a wider seed range under the race detector,
# plus the per-seed precision report (identified vs resolver-off vs
# emulator truth set sizes) CI uploads as an artifact.
FUZZ_NIGHTLY_SEEDS ?= 400
fuzz-nightly:
	$(GO) run -race ./cmd/bside fuzz -seeds $(FUZZ_NIGHTLY_SEEDS) -start $(FUZZ_START) \
		-repro fuzz-repros -precision fuzz-precision.json
