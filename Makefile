# Local and CI entry points. The CI workflow calls these same targets,
# so the two invocations cannot drift.

GO ?= go
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo nosha)

.PHONY: all build vet fmt-check test race bench bench-compare

all: build vet fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs reformatting, printing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$out"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: the shared-interface
# analyzer, the on-disk cache, the staged pipeline with its
# intra-binary worker pool, and the public batch API.
race:
	$(GO) test -race ./internal/cache/... ./internal/shared/... \
		./internal/pipeline/... ./internal/ident/... ./internal/cfg/... .

# One-iteration benchmark smoke run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Benchmark comparison artifact: the cold/warm cache, serial/parallel
# batch, and intra-binary large-binary benchmarks rendered as
# BENCH_<sha>.json — the per-PR performance trajectory CI uploads.
# The bench run lands in a temp file first: a pipe would mask bench
# failures (sh reports the last pipe element), and the in-bench
# worker-count drift guard must be able to fail this target.
bench-compare:
	$(GO) test -run='^$$' -bench='AnalyzeAllColdCache|AnalyzeAllWarmCache|AnalyzeAllSerial|AnalyzeAllParallel|AnalyzeLargeBinary' \
		-benchtime=3x -count=1 . > bench-compare.tmp
	$(GO) run ./cmd/benchjson -commit $(SHA) < bench-compare.tmp > BENCH_$(SHA).json
	@rm -f bench-compare.tmp
	@echo "wrote BENCH_$(SHA).json"
