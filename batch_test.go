package bside

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// batchFixture writes one shared library and n distinct executables
// importing it, returning the executable paths and the library dir.
func batchFixture(t testing.TB, n int) (paths []string, libDir string) {
	t.Helper()
	dir := t.TempDir()
	libDir = filepath.Join(dir, "libs")
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		t.Fatal(err)
	}
	lib, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0000000000, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
		b.Func("exitp")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{
			{Name: "write", Addr: syms["write"]},
			{Name: "exitp", Addr: syms["exitp"]},
		}
	})
	mustWrite(t, lib, filepath.Join(libDir, "libc.so"))

	for i := 0; i < n; i++ {
		main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
			b.Func("_start")
			b.MovRegImm32(x86.R10, uint32(9000+i)) // differentiate images
			b.CallLabel("stub_write")
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
			b.Ret()
			b.Func("stub_write")
			b.JmpMemRIP("got_write")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_write")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
			spec.Needed = []string{"libc.so"}
		})
		path := filepath.Join(dir, fmt.Sprintf("bin%02d", i))
		mustWrite(t, main, path)
		paths = append(paths, path)
	}
	return paths, libDir
}

func TestAnalyzeAllColdThenWarm(t *testing.T) {
	paths, libDir := batchFixture(t, 5)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	// Cold: everything computed, results correct, nothing cached yet.
	cold := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	coldRes, err := cold.AnalyzeAll(paths, BatchOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(coldRes) != len(paths) {
		t.Fatalf("results: %d", len(coldRes))
	}
	for i, res := range coldRes {
		if res.Err != nil {
			t.Fatalf("%s: %v", paths[i], res.Err)
		}
		if res.Path != paths[i] {
			t.Fatalf("result %d out of order: %s", i, res.Path)
		}
		if res.Cached {
			t.Fatalf("%s: cold run served from cache", res.Path)
		}
		if !reflect.DeepEqual(res.Syscalls, []uint64{1, 60}) || res.FailOpen {
			t.Fatalf("%s: %v failopen=%v", res.Path, res.Syscalls, res.FailOpen)
		}
	}
	if st := cold.CacheStats(); st.Stores == 0 {
		t.Fatalf("cold run persisted nothing: %+v", st)
	}

	// Warm: a fresh analyzer (fresh process, in effect) serves every
	// binary from disk with identical results.
	warm := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	warmRes, err := warm.AnalyzeAll(paths, BatchOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warmRes {
		if res.Err != nil {
			t.Fatalf("%s: %v", paths[i], res.Err)
		}
		if !res.Cached {
			t.Fatalf("%s: warm run missed the cache", res.Path)
		}
		if !reflect.DeepEqual(res.Syscalls, coldRes[i].Syscalls) || res.Wrappers != coldRes[i].Wrappers {
			t.Fatalf("%s: warm result drifted", res.Path)
		}
	}
	st := warm.CacheStats()
	if st.Hits != uint64(len(paths)) || st.Misses != 0 {
		t.Fatalf("warm stats: %+v", st)
	}

	// Cached analyses carry no CFG: phases must refuse, disassembly is
	// empty, and both say so rather than panic.
	if _, err := warmRes[0].Phases(PhaseOptions{}); err == nil {
		t.Fatal("phases on a cache-served analysis must error")
	}
	if warmRes[0].Disassembly() != "" {
		t.Fatal("cache-served disassembly must be empty")
	}
}

func TestAnalyzeAllRecordsPerBinaryErrors(t *testing.T) {
	paths, libDir := batchFixture(t, 2)
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not an elf"), 0o755); err != nil {
		t.Fatal(err)
	}
	all := append([]string{paths[0], junk, "/nonexistent/binary"}, paths[1])

	a := NewAnalyzer(Options{LibraryDir: libDir})
	results, err := a.AnalyzeAll(all, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("good binaries failed: %v %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatal("bad binaries must record errors")
	}
	if results[1].Path != junk {
		t.Fatalf("error result misattributed: %s", results[1].Path)
	}
}

func TestAnalyzeAllToleratesCorruptCache(t *testing.T) {
	paths, libDir := batchFixture(t, 3)
	cacheDir := filepath.Join(t.TempDir(), "cache")

	first := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	if _, err := first.AnalyzeAll(paths, BatchOptions{}); err != nil {
		t.Fatal(err)
	}

	// Truncate every cache file: the next run must silently re-analyze.
	err := filepath.Walk(cacheDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.Truncate(path, info.Size()/3)
	})
	if err != nil {
		t.Fatal(err)
	}

	second := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	results, err := second.AnalyzeAll(paths, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Path, res.Err)
		}
		if res.Cached {
			t.Fatalf("%s: corrupt entry served", res.Path)
		}
		if !reflect.DeepEqual(res.Syscalls, []uint64{1, 60}) {
			t.Fatalf("%s: %v", res.Path, res.Syscalls)
		}
	}

	// And the re-analysis rewrote usable entries.
	third := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	results, err = third.AnalyzeAll(paths, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Cached {
			t.Fatalf("%s: repaired cache not used", res.Path)
		}
	}
}

func TestAnalyzeAllUnusableCacheDir(t *testing.T) {
	paths, libDir := batchFixture(t, 1)
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: filepath.Join(file, "sub")})
	if _, err := a.AnalyzeAll(paths, BatchOptions{}); err == nil {
		t.Fatal("unusable cache dir must surface as an error")
	}
	if _, err := a.AnalyzeFile(paths[0]); err == nil {
		t.Fatal("unusable cache dir must surface from AnalyzeFile too")
	}
}

// TestAnalyzeAllStreamsResults: OnResult must fire once per binary as
// analyses complete, before AnalyzeAll returns, with the same values
// the result slice carries — the streaming surface batch mode flushes
// JSON lines through.
func TestAnalyzeAllStreamsResults(t *testing.T) {
	paths, libDir := batchFixture(t, 6)
	bad := filepath.Join(t.TempDir(), "missing")
	all := append(append([]string{}, paths...), bad)

	a := NewAnalyzer(Options{LibraryDir: libDir})
	var streamed []*Analysis
	results, err := a.AnalyzeAll(all, BatchOptions{
		Jobs: 3,
		OnResult: func(res *Analysis) {
			// Serialized by AnalyzeAll: plain append must be safe.
			streamed = append(streamed, res)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(all) {
		t.Fatalf("streamed %d of %d results", len(streamed), len(all))
	}
	byPath := make(map[string]*Analysis, len(streamed))
	for _, res := range streamed {
		if byPath[res.Path] != nil {
			t.Fatalf("%s streamed twice", res.Path)
		}
		byPath[res.Path] = res
	}
	for i, res := range results {
		if byPath[all[i]] != res {
			t.Fatalf("%s: streamed value is not the returned value", all[i])
		}
	}
	if byPath[bad].Err == nil {
		t.Fatal("failed binary must stream its error")
	}
}

// TestAnalyzeFileWithCacheKeepsPhases: a cache miss still returns a
// full analysis, so phases work on the first run even with caching on.
func TestAnalyzeFileWithCacheKeepsPhases(t *testing.T) {
	paths, libDir := batchFixture(t, 1)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	a := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	res, err := a.AnalyzeFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first run cannot be cached")
	}
	if _, err := res.Phases(PhaseOptions{}); err != nil {
		t.Fatalf("phases on a computed analysis: %v", err)
	}
}
