package bside

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the §4.7 automaton-vs-naive phase-detection
// ablation and micro-benchmarks for the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The corpus is generated once and shared; benchmarks measure the
// analysis, not the generation.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/eval"
	"bside/internal/ident"
	"bside/internal/phases"
	"bside/internal/x86"
)

var (
	benchOnce    sync.Once
	benchApps    *corpus.Set
	benchDebian  *corpus.Set
	benchAppEval []*eval.AppEval
	benchDebEval *eval.DebianEval
	benchErr     error
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchApps, benchErr = corpus.GenerateApps()
		if benchErr != nil {
			return
		}
		benchAppEval, benchErr = eval.EvalApps(benchApps)
		if benchErr != nil {
			return
		}
		benchDebian, benchErr = corpus.GenerateDebian(42)
		if benchErr != nil {
			return
		}
		benchDebEval, benchErr = eval.EvalDebian(benchDebian)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// BenchmarkFigure7 regenerates Figure 7: all three tools over the six
// applications, validated against the emulator ground truth.
func BenchmarkFigure7(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := eval.EvalApps(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Figure7(apps); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable1 regenerates the F1-score table from the per-app runs.
func BenchmarkTable1(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := eval.Table1(benchAppEval); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates the 557-binary comparison (success and
// failure counts plus average set sizes for the three tools).
func BenchmarkTable2(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := eval.EvalDebian(benchDebian)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table2(d); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure8 regenerates the identified-set-size histogram.
func BenchmarkFigure8(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := eval.Figure8(benchDebEval); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable3 measures B-Side's whole-analysis cost on the six
// applications (the execution-time/memory table).
func BenchmarkTable3(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := eval.EvalApps(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table3(apps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4 regenerates the nginx phase automaton and its
// transition matrix.
func BenchmarkTable4(b *testing.B) {
	benchSetup(b)
	var nginx *eval.AppEval
	for _, a := range benchAppEval {
		if a.Name == "nginx" {
			nginx = a
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := eval.EvalPhases(nginx)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table4(ps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5 regenerates the CVE-protection percentages over the
// Debian corpus results.
func BenchmarkTable5(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.Table5Rows(benchDebEval)
		if len(rows) != 36 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkPhaseAblationAutomaton vs ...Naive quantify §4.7's claim
// that the automaton-based phase detection vastly outruns naive CFG
// navigation (paper: 41s vs 700s on a hello world, 20min vs 4h on
// Nginx).
func BenchmarkPhaseAblationAutomaton(b *testing.B) {
	benchSetup(b)
	in := ablationInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phases.Detect(in, phases.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseAblationNaive is the strawman side of the ablation.
func BenchmarkPhaseAblationNaive(b *testing.B) {
	benchSetup(b)
	in := ablationInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := phases.DetectNaive(in); len(out) == 0 {
			b.Fatal("no phases")
		}
	}
}

func ablationInput(b *testing.B) phases.Input {
	b.Helper()
	var nginx *eval.AppEval
	for _, a := range benchAppEval {
		if a.Name == "nginx" {
			nginx = a
		}
	}
	return phases.Input{Graph: nginx.Report.Graph, Emits: nginx.Report.Emits()}
}

// --- batch analysis: worker pool + persistent cache ---------------------

// writeBatchCorpus materializes the six corpus applications (which all
// share libc.so.6) and their libraries on disk for AnalyzeAll runs.
func writeBatchCorpus(b *testing.B) (paths []string, libDir string) {
	b.Helper()
	benchSetup(b)
	dir := b.TempDir()
	libDir = filepath.Join(dir, "libs")
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		b.Fatal(err)
	}
	for name, lib := range benchApps.Libs {
		if err := lib.WriteFile(filepath.Join(libDir, name)); err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range benchApps.Apps {
		path := filepath.Join(dir, app.Profile.Name)
		if err := app.Bin.WriteFile(path); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths, libDir
}

func runAnalyzeAll(b *testing.B, a *Analyzer, paths []string, opts BatchOptions, wantCached bool) {
	b.Helper()
	results, err := a.AnalyzeAll(paths, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			b.Fatalf("%s: %v", res.Path, res.Err)
		}
		if res.Cached != wantCached {
			b.Fatalf("%s: cached=%v, want %v", res.Path, res.Cached, wantCached)
		}
	}
}

// BenchmarkAnalyzeAllColdCache is a from-scratch batch: every library
// interface and every program is analyzed and persisted.
func BenchmarkAnalyzeAllColdCache(b *testing.B) {
	paths, libDir := writeBatchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cacheDir := filepath.Join(b.TempDir(), fmt.Sprintf("cold%d", i))
		b.StartTimer()
		a := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
		runAnalyzeAll(b, a, paths, BatchOptions{}, false)
	}
}

// BenchmarkAnalyzeAllWarmCache is the same batch against a populated
// store: the per-library phase and per-program identification vanish,
// leaving ELF parsing plus cache reads. The cold/warm gap is the
// paper's §4.5 decoupling made persistent.
func BenchmarkAnalyzeAllWarmCache(b *testing.B) {
	paths, libDir := writeBatchCorpus(b)
	cacheDir := filepath.Join(b.TempDir(), "warm")
	prewarm := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	runAnalyzeAll(b, prewarm, paths, BatchOptions{}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
		runAnalyzeAll(b, a, paths, BatchOptions{}, true)
	}
}

// writeStaticBatch materializes n mid-sized static binaries, where all
// analysis work is per-binary (no shared-library phase to serialize on)
// — the workload shape that isolates the worker pool itself.
func writeStaticBatch(b *testing.B, n int) []string {
	b.Helper()
	dir := b.TempDir()
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		bin, err := corpus.BuildProgram(corpus.Profile{
			Name: fmt.Sprintf("batch%02d", i), Kind: elff.KindStatic,
			HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
			ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
			Filler: 30, Seed: int64(100 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("batch%02d", i))
		if err := bin.WriteFile(path); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

// BenchmarkAnalyzeAllSerial / ...Parallel quantify the worker pool with
// caching off: identical work, one worker vs GOMAXPROCS workers.
func BenchmarkAnalyzeAllSerial(b *testing.B) {
	paths := writeStaticBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer(Options{})
		runAnalyzeAll(b, a, paths, BatchOptions{Jobs: 1}, false)
	}
}

func BenchmarkAnalyzeAllParallel(b *testing.B) {
	paths := writeStaticBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer(Options{})
		runAnalyzeAll(b, a, paths, BatchOptions{}, false)
	}
}

// --- intra-binary parallelism -------------------------------------------

// writeLargeBinary materializes the large-binary workload (the paper's
// hardest targets — libc-sized libraries, large servers): one binary
// whose identification phase is dominated by deep backward searches
// over many independent sites. Identification dwarfs decode here, so
// the intra-binary worker pool has real work to spread.
func writeLargeBinary(b *testing.B) string {
	b.Helper()
	bin, err := corpus.BuildProgram(corpus.LargeBinaryProfile())
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "large")
	if err := bin.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkAnalyzeLargeBinary quantifies intra-binary parallelism on a
// single large binary: the same analysis at 1 vs 4 workers. Results
// are asserted identical across worker counts inside the loop — the
// speedup must come for free, not from skipped work. (On a single-CPU
// host the two sub-benchmarks necessarily tie; the parallel win needs
// cores, which the CI runners have.)
func BenchmarkAnalyzeLargeBinary(b *testing.B) {
	path := writeLargeBinary(b)
	var baseline []uint64
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := NewAnalyzer(Options{IntraWorkers: workers})
				res, err := a.AnalyzeFile(path)
				if err != nil {
					b.Fatal(err)
				}
				if res.FailOpen {
					b.Fatal("large binary must stay bounded")
				}
				if baseline == nil {
					baseline = res.Syscalls
				} else if !reflect.DeepEqual(res.Syscalls, baseline) {
					b.Fatalf("workers=%d drifted from the serial result", workers)
				}
			}
		})
	}
}

// BenchmarkRecoverLargeBinary isolates the frontend on the
// large-binary workload: disassembly into the decode arena plus the
// incremental active-address-taken fixpoint and the slab-built graph.
// This is the stage that dominates once identification is memoized, so
// its allocs/op are gated by `make bench-check` alongside the
// whole-analysis benchmarks.
func BenchmarkRecoverLargeBinary(b *testing.B) {
	bin, err := corpus.BuildProgram(corpus.LargeBinaryProfile())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumBlocks() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkDecode measures raw instruction decoding.
func BenchmarkDecode(b *testing.B) {
	buf := []byte{0x48, 0x8B, 0x44, 0x24, 0x08} // mov rax, [rsp+8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.Decode(buf, 0x400000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBinary builds a mid-sized static binary for substrate benches.
func benchBinary(b *testing.B) *elff.Binary {
	b.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "bench", Kind: elff.KindStatic,
		HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
		ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
		Filler: 30, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// BenchmarkCFGRecover measures disassembly + precise-CFG recovery.
func BenchmarkCFGRecover(b *testing.B) {
	bin := benchBinary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Recover(bin, cfg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentify measures the full identification pass (wrapper
// detection + backward search) on one binary.
func BenchmarkIdentify(b *testing.B) {
	bin := benchBinary(b)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ident.Analyze(g, ident.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulate measures the ground-truth emulator.
func BenchmarkEmulate(b *testing.B) {
	bin := benchBinary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := emu.NewProcess(bin, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemble measures corpus synthesis itself.
func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := asm.New()
		bld.Func("_start")
		for j := 0; j < 100; j++ {
			bld.MovRegImm32(x86.RAX, uint32(j))
			bld.Syscall()
		}
		bld.Ret()
		if _, _, err := bld.Finalize(0x400000); err != nil {
			b.Fatal(err)
		}
	}
}
