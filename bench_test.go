package bside

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the §4.7 automaton-vs-naive phase-detection
// ablation and micro-benchmarks for the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The corpus is generated once and shared; benchmarks measure the
// analysis, not the generation.

import (
	"sync"
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/eval"
	"bside/internal/ident"
	"bside/internal/phases"
	"bside/internal/x86"
)

var (
	benchOnce    sync.Once
	benchApps    *corpus.Set
	benchDebian  *corpus.Set
	benchAppEval []*eval.AppEval
	benchDebEval *eval.DebianEval
	benchErr     error
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchApps, benchErr = corpus.GenerateApps()
		if benchErr != nil {
			return
		}
		benchAppEval, benchErr = eval.EvalApps(benchApps)
		if benchErr != nil {
			return
		}
		benchDebian, benchErr = corpus.GenerateDebian(42)
		if benchErr != nil {
			return
		}
		benchDebEval, benchErr = eval.EvalDebian(benchDebian)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// BenchmarkFigure7 regenerates Figure 7: all three tools over the six
// applications, validated against the emulator ground truth.
func BenchmarkFigure7(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := eval.EvalApps(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Figure7(apps); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable1 regenerates the F1-score table from the per-app runs.
func BenchmarkTable1(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := eval.Table1(benchAppEval); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates the 557-binary comparison (success and
// failure counts plus average set sizes for the three tools).
func BenchmarkTable2(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := eval.EvalDebian(benchDebian)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table2(d); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure8 regenerates the identified-set-size histogram.
func BenchmarkFigure8(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := eval.Figure8(benchDebEval); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable3 measures B-Side's whole-analysis cost on the six
// applications (the execution-time/memory table).
func BenchmarkTable3(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps, err := eval.EvalApps(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table3(apps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4 regenerates the nginx phase automaton and its
// transition matrix.
func BenchmarkTable4(b *testing.B) {
	benchSetup(b)
	var nginx *eval.AppEval
	for _, a := range benchAppEval {
		if a.Name == "nginx" {
			nginx = a
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := eval.EvalPhases(nginx)
		if err != nil {
			b.Fatal(err)
		}
		if out := eval.Table4(ps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5 regenerates the CVE-protection percentages over the
// Debian corpus results.
func BenchmarkTable5(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.Table5Rows(benchDebEval)
		if len(rows) != 36 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkPhaseAblationAutomaton vs ...Naive quantify §4.7's claim
// that the automaton-based phase detection vastly outruns naive CFG
// navigation (paper: 41s vs 700s on a hello world, 20min vs 4h on
// Nginx).
func BenchmarkPhaseAblationAutomaton(b *testing.B) {
	benchSetup(b)
	in := ablationInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phases.Detect(in, phases.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseAblationNaive is the strawman side of the ablation.
func BenchmarkPhaseAblationNaive(b *testing.B) {
	benchSetup(b)
	in := ablationInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := phases.DetectNaive(in); len(out) == 0 {
			b.Fatal("no phases")
		}
	}
}

func ablationInput(b *testing.B) phases.Input {
	b.Helper()
	var nginx *eval.AppEval
	for _, a := range benchAppEval {
		if a.Name == "nginx" {
			nginx = a
		}
	}
	return phases.Input{Graph: nginx.Report.Graph, Emits: nginx.Report.Emits()}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkDecode measures raw instruction decoding.
func BenchmarkDecode(b *testing.B) {
	buf := []byte{0x48, 0x8B, 0x44, 0x24, 0x08} // mov rax, [rsp+8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.Decode(buf, 0x400000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBinary builds a mid-sized static binary for substrate benches.
func benchBinary(b *testing.B) *elff.Binary {
	b.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "bench", Kind: elff.KindStatic,
		HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
		ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
		Filler: 30, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// BenchmarkCFGRecover measures disassembly + precise-CFG recovery.
func BenchmarkCFGRecover(b *testing.B) {
	bin := benchBinary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Recover(bin, cfg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentify measures the full identification pass (wrapper
// detection + backward search) on one binary.
func BenchmarkIdentify(b *testing.B) {
	bin := benchBinary(b)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ident.Analyze(g, ident.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulate measures the ground-truth emulator.
func BenchmarkEmulate(b *testing.B) {
	bin := benchBinary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := emu.NewProcess(bin, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemble measures corpus synthesis itself.
func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := asm.New()
		bld.Func("_start")
		for j := 0; j < 100; j++ {
			bld.MovRegImm32(x86.RAX, uint32(j))
			bld.Syscall()
		}
		bld.Ret()
		if _, _, err := bld.Finalize(0x400000); err != nil {
			b.Fatal(err)
		}
	}
}
