// Package bside is a static binary-analysis library that identifies the
// set of Linux system calls an x86-64 ELF executable may invoke at
// runtime, without access to sources — a reproduction of "B-Side:
// Binary-Level Static System Call Identification" (MIDDLEWARE 2024).
//
// The analysis runs as an explicit staged pipeline per binary — decode
// and precise-CFG recovery with the active-addresses-taken heuristic,
// syscall-wrapper detection with a two-phase heuristic, per-site
// identification via a backward search driven by directed forward
// symbolic execution, and (for dynamic executables) stitching of
// foreign calls against per-library shared interfaces computed once per
// library. Each stage's wall-clock cost is recorded on the result's
// Timings.
//
// Typical use — analyze one executable:
//
//	a := bside.NewAnalyzer(bside.Options{LibraryDir: "deps/"})
//	res, err := a.AnalyzeFile("bin/server")
//	...
//	policy := res.Policy() // seccomp-style allow list
//
// Typical use — analyze a fleet, with results persisted across runs:
//
//	a := bside.NewAnalyzer(bside.Options{
//		LibraryDir: "deps/",
//		CacheDir:   "/var/cache/bside",
//	})
//	results, err := a.AnalyzeAll(paths, bside.BatchOptions{})
//	for _, res := range results {
//		if res.Err != nil { ... }        // per-binary failure
//		_ = res.Cached                   // served from the warm cache
//	}
//
// AnalyzeAll fans the binaries out across a bounded worker pool; the
// expensive per-library phase (§4.5) runs exactly once per distinct
// library even when many workers need it concurrently. With CacheDir
// set, shared interfaces and whole-program results are stored on disk,
// content-addressed by the SHA-256 of the ELF image, so a binary — or a
// library shared by a thousand binaries — is only ever analyzed once
// per content version, across process lifetimes.
//
// Large single binaries parallelize *within* the analysis too: with
// Options.IntraWorkers set, the wrapper-detection and identification
// stages fan their independent units (functions, syscall sites) across
// a bounded worker pool sharing one atomic symbolic-execution budget.
// Results are byte-identical at any worker count — only the wall clock
// changes.
package bside

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bside/internal/cache"
	"bside/internal/elff"
	"bside/internal/faults"
	"bside/internal/filter"
	"bside/internal/guard"
	"bside/internal/ident"
	"bside/internal/linux"
	"bside/internal/phases"
	"bside/internal/pipeline"
	"bside/internal/shared"
)

// PanicError is a panic raised while analyzing one binary, converted
// into a structured error at the analysis fault boundary
// (internal/guard). It carries the pipeline stage, the image's content
// hash, and the panicking goroutine's stack; it surfaces like any
// other per-binary failure — AnalyzeFile's error, a batch entry's
// Analysis.Err — and is never cached, so one hostile binary costs its
// own result and nothing else. ErrMalformed is the other half of the
// taxonomy: input the parser rejected, rather than analysis code that
// blew up.
type PanicError = guard.PanicError

// IsPanic unwraps an analysis error to its PanicError, if the failure
// was a contained panic. Service tiers use it to split "we crashed on
// this input" (HTTP 500, panics_total) from ordinary analysis failures.
func IsPanic(err error) (*PanicError, bool) { return guard.AsPanic(err) }

// ErrMalformed classifies failures caused by the input image itself —
// truncated or contradictory ELF headers, out-of-range offsets,
// header-driven sizes exceeding the file. errors.Is(err, ErrMalformed)
// holds for every parse rejection from any entry path.
var ErrMalformed = elff.ErrMalformed

// Options configures an Analyzer.
type Options struct {
	// LibraryDir is where DT_NEEDED dependencies are looked up (by
	// exact name). Required for dynamically linked targets with
	// dependencies.
	LibraryDir string
	// MaxCFGInstructions bounds disassembly work per binary; 0 uses a
	// generous default. Exceeding the bound fails the analysis, like
	// the paper's wall-clock timeout.
	MaxCFGInstructions int
	// IntraWorkers is the intra-binary worker-pool size: how many
	// independent analysis units (wrapper-detection functions,
	// identification targets) of ONE binary run concurrently. 0 or 1
	// is serial; negative values mean one worker per CPU. Results are
	// identical at any setting — only wall-clock time changes. This
	// composes with AnalyzeAll's across-binary pool; for large fleets
	// of small binaries prefer BatchOptions.Jobs, for a few huge
	// binaries (a libc, a browser) prefer IntraWorkers.
	IntraWorkers int
	// Timeout, when positive, bounds each analysis unit's wall clock —
	// the paper's per-binary analysis timeout. An analysis that runs
	// past it fails with a budget-exhausted error rather than running
	// unbounded.
	Timeout time.Duration
	// Modules lists shared objects the target loads at runtime via
	// dlopen-style mechanisms. Identifying them is the user's
	// responsibility (as in the paper, §4.5); every exported function
	// of a module is assumed callable and unioned into the result.
	Modules []string
	// CacheDir, when set, enables the persistent content-addressed
	// analysis cache: shared-library interfaces and whole-program
	// results are stored under this directory keyed by the SHA-256 of
	// the ELF image (plus a configuration and dependency fingerprint)
	// and reused on later runs. Analyses served from the cache have
	// Cached set and do not support Phases or Disassembly (those need
	// the recovered CFG, which is not persisted). Program-level caching
	// is skipped when Modules are configured; interface caching still
	// applies. Corrupt or stale entries are ignored and re-computed,
	// never fatal.
	CacheDir string
	// PackPath, when set, additionally attaches one compacted cache
	// pack file (see `bside cache pack`) to the analyzer's store: an
	// immutable, memory-mapped, binary-searchable snapshot of cache
	// entries consulted between the memory tier and the loose files.
	// Packs living under CacheDir/packs/ are discovered automatically;
	// this knob points at a pack built elsewhere — a fleet can compact
	// once, distribute the file, and mount it read-only everywhere. An
	// unreadable or corrupt pack surfaces like an unusable CacheDir:
	// NewAnalyzerErr fails, NewAnalyzer defers the error to the first
	// analysis.
	PackPath string
	// DisableFuncMemo turns off the process-wide per-function summary
	// memoization. By default identical functions — shared stubs across
	// a corpus family, duplicated bodies across a batch, the same
	// binary re-analyzed — are identified once per process (and once
	// per machine when CacheDir is set, via "funcsum" cache entries).
	// Results are byte-identical in both modes; the fuzzer's
	// memoization-invariance axis enforces that. The switch exists for
	// benchmarking the un-memoized substrate and for the oracle itself.
	DisableFuncMemo bool
	// DisableMemoryTier turns off the persistent cache's in-process
	// memory tier, forcing every cache load to the disk envelopes. The
	// tier only ever holds disk-validated, content-addressed payloads,
	// so results are byte-identical either way (the fuzzer's
	// frontend-invariance axis enforces that); the switch exists for
	// benchmarking the durable tier and for the oracle itself.
	DisableMemoryTier bool
	// ResolverLayers selects the depth of the layered indirect-call
	// resolver, which refines how far each indirect call/jump site can
	// fan out before identification runs: -1 disables it (every site
	// reaches the whole active address-taken set — the most conservative
	// reading of the paper's heuristic), 1 enables code-pointer
	// provenance through read-only data sections and RELATIVE
	// relocations, and 2 — the default for the zero value — adds
	// call-signature pruning of provenance survivors. Every setting is
	// sound (a site the resolver cannot refine keeps the full fan-out);
	// deeper layers only shrink the identified superset. The setting is
	// part of the cache fingerprint, so results computed under different
	// layers never serve each other.
	ResolverLayers int
	// DisableMmap forces the file frontend to read images into the
	// heap instead of memory-mapping them. The mapped path is the
	// default wherever the platform supports it: the decode arena and
	// the hasher consume the kernel's page-cache view directly, so a
	// fleet sweep never copies binaries it only reads. Results are
	// byte-identical either way (the fuzzer's sweep-nommap invariance
	// leg enforces that); the switch exists for odd filesystems where
	// mapping misbehaves and for benchmarking the copying frontend.
	DisableMmap bool
}

// Analyzer analyzes executables, caching shared-library interfaces
// across calls (the once-per-library phase of the paper's §4.5). It is
// safe for concurrent use: AnalyzeAll runs one Analyzer across a
// worker pool, and concurrent calls needing the same library compute
// its interface exactly once.
type Analyzer struct {
	inner    *shared.Analyzer
	modules  []string
	cache    *cache.Store
	cacheErr error
	noMmap   bool

	// Image-frontend traffic: every ELF file this analyzer opened
	// (programs, libraries, modules — one image-read implementation),
	// how many of those were served zero-copy via mmap, and the total
	// image bytes opened.
	imageOpens  atomic.Uint64
	imageMapped atomic.Uint64
	imageBytes  atomic.Uint64
}

// openImage opens one ELF file through the zero-copy frontend,
// honoring DisableMmap and counting the traffic for CacheStats.
func (a *Analyzer) openImage(path string) (*elff.Image, error) {
	var im *elff.Image
	var err error
	if a.noMmap {
		im, err = elff.OpenCopied(path)
	} else {
		im, err = elff.OpenMapped(path)
	}
	if err != nil {
		return nil, err
	}
	a.countImage(len(im.Data), im.Mapped())
	return im, nil
}

// openBinary opens and parses one ELF file through the image layer;
// the returned binary owns its image (ReleaseImage when done).
func (a *Analyzer) openBinary(path string) (*elff.Binary, error) {
	bin, err := elff.OpenBinary(path, a.noMmap)
	if err != nil {
		return nil, err
	}
	if im := bin.Image(); im != nil {
		a.countImage(len(im.Data), im.Mapped())
	}
	return bin, nil
}

func (a *Analyzer) countImage(size int, mapped bool) {
	a.imageOpens.Add(1)
	a.imageBytes.Add(uint64(size))
	if mapped {
		a.imageMapped.Add(1)
	}
}

// NewAnalyzerErr builds an Analyzer and surfaces configuration errors
// eagerly: an unusable CacheDir fails here, at construction, instead of
// on the first analysis call. Long-lived callers (a resident service,
// anything wiring the analyzer into a health check) should prefer this
// over NewAnalyzer, whose deferred error reporting exists for the
// one-shot CLI ergonomics of the original API.
func NewAnalyzerErr(opts Options) (*Analyzer, error) {
	a := NewAnalyzer(opts)
	if a.cacheErr != nil {
		return nil, a.cacheErr
	}
	return a, nil
}

// NewAnalyzer builds an Analyzer.
func NewAnalyzer(opts Options) *Analyzer {
	a := &Analyzer{modules: opts.Modules, noMmap: opts.DisableMmap}
	dir := opts.LibraryDir
	load := func(name string) (*elff.Binary, error) {
		if dir == "" {
			return nil, fmt.Errorf("bside: dependency %q needed but no LibraryDir configured", name)
		}
		// Libraries ride the same zero-copy image path as programs;
		// the resolver releases the mapping once the interface is
		// computed (shared.Analyzer.trimBin).
		return a.openBinary(filepath.Join(dir, name))
	}
	inner := shared.NewAnalyzer(load, ident.Config{ResolverLayers: opts.ResolverLayers})
	inner.MaxCFGInsns = opts.MaxCFGInstructions
	inner.Workers = opts.IntraWorkers
	inner.Timeout = opts.Timeout
	inner.DisableFuncMemo = opts.DisableFuncMemo
	a.inner = inner
	if opts.CacheDir != "" {
		a.cache, a.cacheErr = cache.Open(opts.CacheDir)
		if a.cache != nil && opts.DisableMemoryTier {
			a.cache.DisableMemoryTier()
		}
		if a.cache != nil && opts.PackPath != "" {
			if err := a.cache.AttachPack(opts.PackPath); err != nil && a.cacheErr == nil {
				a.cacheErr = err
			}
		}
		inner.Cache = a.cache
	} else if opts.PackPath != "" {
		a.cacheErr = fmt.Errorf("bside: PackPath requires CacheDir")
	}
	return a
}

// CacheStats is a snapshot of the persistent cache's traffic (zero
// when no CacheDir is configured) plus the function-summary memo's
// hit-rate counters. The FuncMemo fields are process-wide — the memo
// is shared by every Analyzer in the process — so they measure the
// fleet's duplicate-function ratio, not one analyzer's.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stores uint64 `json:"stores"`
	// MemoryHits is the subset of Hits served from the in-process
	// memory tier, without a file read or an envelope decode.
	MemoryHits uint64 `json:"memory_hits"`
	// PackHits is the subset of Hits served from a memory-mapped cache
	// pack — a binary-search probe into the shared mapping, with no
	// per-entry open() and (for binary-codec entries) no JSON at all.
	PackHits uint64 `json:"pack_hits"`
	// Packs, PackEntries and PackBytesMapped gauge the open pack set:
	// file count, total indexed entries, and the bytes currently
	// memory-mapped (zero where the platform fell back to heap reads).
	Packs           int   `json:"packs"`
	PackEntries     int   `json:"pack_entries"`
	PackBytesMapped int64 `json:"pack_bytes_mapped"`
	// StoredBytes counts envelope bytes written to the disk tier.
	StoredBytes uint64 `json:"stored_bytes"`
	// CacheIOErrors counts durable-tier operations that failed for
	// reasons other than "entry absent" — unreadable loose files,
	// failed writes. Analysis proceeds regardless (reads degrade to
	// misses, writes are dropped), but a climbing count means the cache
	// directory is unhealthy; the serve tier's /healthz reports
	// degraded past a threshold.
	CacheIOErrors uint64 `json:"cache_io_errors"`
	// MemoryEvictions counts entries pushed out of the memory tier by
	// its LRU size bounds. Like the FuncMemo fields it is process-wide:
	// the tier is shared by every Analyzer in the process. A resident
	// service whose eviction rate tracks its hit rate has a memory tier
	// sized below its working set.
	MemoryEvictions uint64 `json:"memory_evictions"`
	// MemoryEntries and MemoryBytes are point-in-time gauges of the
	// process-wide memory tier's population and payload footprint.
	MemoryEntries int   `json:"memory_entries"`
	MemoryBytes   int64 `json:"memory_bytes"`
	// FuncMemoHits counts per-function summaries served without
	// re-analysis (from memory or the funcsum store partition).
	FuncMemoHits uint64 `json:"func_memo_hits"`
	// FuncMemoMisses counts function units that ran the real analysis.
	FuncMemoMisses uint64 `json:"func_memo_misses"`
	// FuncMemoEntries is the current in-memory memo population.
	FuncMemoEntries int64 `json:"func_memo_entries"`
	// ImageOpens counts ELF files opened through the zero-copy image
	// frontend — programs, libraries and modules alike, each counted
	// once (there is one image-read implementation).
	ImageOpens uint64 `json:"image_opens"`
	// ImageMapped is the subset of ImageOpens served as an mmap view
	// (zero-copy); the rest fell back to an in-heap read.
	ImageMapped uint64 `json:"image_mapped"`
	// ImageBytes is the total image bytes opened.
	ImageBytes uint64 `json:"image_bytes"`
}

// CacheStats reports the analyzer's cache traffic so far.
func (a *Analyzer) CacheStats() CacheStats {
	var out CacheStats
	if a.cache != nil {
		st := a.cache.Stats()
		out.Hits, out.Misses, out.Stores = st.Hits, st.Misses, st.Stores
		out.MemoryHits, out.StoredBytes = st.MemoryHits, st.StoredBytes
		out.PackHits = st.PackHits
		out.Packs, out.PackEntries = st.Packs, st.PackEntries
		out.PackBytesMapped = st.PackBytesMapped
		out.MemoryEvictions = st.MemoryEvictions
		out.MemoryEntries, out.MemoryBytes = st.MemoryEntries, st.MemoryBytes
		out.CacheIOErrors = st.IOErrors
	}
	ms := ident.ProcessMemo().Stats()
	out.FuncMemoHits, out.FuncMemoMisses, out.FuncMemoEntries = ms.Hits, ms.Misses, ms.Entries
	out.ImageOpens = a.imageOpens.Load()
	out.ImageMapped = a.imageMapped.Load()
	out.ImageBytes = a.imageBytes.Load()
	return out
}

// Timings is the per-stage wall-clock cost record of one analysis —
// the pipeline's observability surface (the paper's Table 3, per run).
// Stages that did not run (Stitch for static binaries, Phases until
// requested) are zero.
type Timings struct {
	// Decode is disassembly plus precise-CFG recovery (§4.3).
	Decode time.Duration `json:"decode"`
	// Wrappers is syscall-wrapper detection (§4.4 phase G).
	Wrappers time.Duration `json:"wrappers"`
	// Identify is the per-site backward search (§4.4 phase H).
	Identify time.Duration `json:"identify"`
	// Stitch is foreign-call resolution against shared-library
	// interfaces (§4.5).
	Stitch time.Duration `json:"stitch,omitempty"`
	// Phases is execution-phase detection (§4.7), recorded when
	// Analysis.Phases runs.
	Phases time.Duration `json:"phases,omitempty"`
	// Total sums the recorded stages.
	Total time.Duration `json:"total"`
}

func timingsFrom(t pipeline.Timings) *Timings {
	return &Timings{
		Decode:   t.Get(pipeline.StageDecode),
		Wrappers: t.Get(pipeline.StageWrappers),
		Identify: t.Get(pipeline.StageIdentify),
		Stitch:   t.Get(pipeline.StageStitch),
		Total:    t.Total(),
	}
}

// Analysis is the result of analyzing one executable.
type Analysis struct {
	// Path is the file the analysis describes (set by AnalyzeFile and
	// AnalyzeAll; empty for AnalyzeBytes).
	Path string
	// Syscalls is the identified superset of invocable syscall numbers,
	// sorted ascending.
	Syscalls []uint64
	// FailOpen reports that at least one site could not be bounded; a
	// safe filter derived from this analysis must allow the full table.
	FailOpen bool
	// Wrappers counts detected syscall-wrapper functions in the main
	// binary.
	Wrappers int
	// Imports lists foreign symbols the program can reach.
	Imports []string
	// Cached reports that the result was served from the persistent
	// cache. Cached analyses do not support Phases or Disassembly.
	Cached bool
	// Timings is the per-stage cost of the main binary's analysis; nil
	// for cache-served results (nothing was computed).
	Timings *Timings
	// Err is the per-binary failure recorded by AnalyzeAll; when set,
	// every other field except Path is zero.
	Err error

	report *shared.ProgramReport
}

// AnalyzeFile analyzes the ELF executable at path.
func (a *Analyzer) AnalyzeFile(path string) (*Analysis, error) {
	return a.AnalyzeFileContext(context.Background(), path)
}

// AnalyzeFileContext is AnalyzeFile bounded by a context. Cancellation
// is honored at every pipeline stage boundary and — through the
// symbolic-execution budget's cancellation channel — mid-search inside
// the identification stages; the context's deadline tightens the
// per-binary wall clock when it is earlier than Options.Timeout. A
// context-aborted analysis fails with an error matching
// errors.Is(err, ctx.Err()). Shared-library interface computation
// triggered on the way is deliberately NOT canceled with the request:
// it is singleflighted, cached work that concurrent and future analyses
// reuse.
func (a *Analyzer) AnalyzeFileContext(ctx context.Context, path string) (*Analysis, error) {
	if a.cacheErr != nil {
		return nil, a.cacheErr
	}
	// Zero-copy frontend: the image is mmap'd where the platform
	// allows, and the parse aliases the loadable segment straight into
	// the mapping — a fleet sweep never copies the binaries it reads.
	// The mapping only lives for the duration of the analysis; before
	// unmapping, any retained alias (the report graph's segment view)
	// is detached, leaving the result self-contained.
	im, err := a.openImage(path)
	if err != nil {
		return nil, err
	}
	// Fault-injection seam: tests corrupt the image bytes here to drive
	// damaged-in-transit binaries through the real file path. Unarmed
	// (always, in production) it returns im.Data untouched.
	data := faults.TamperImage(path, im.Data)
	res, rerr := a.analyzeData(ctx, data, path, true)
	if res != nil && im.Mapped() {
		res.detachBlob()
	}
	if cerr := im.Close(); cerr != nil && rerr == nil {
		rerr = fmt.Errorf("elff: %s: %w", path, cerr)
	}
	if rerr != nil {
		return nil, rerr
	}
	res.Path = path
	return res, nil
}

// detachBlob drops the result's aliases into a soon-to-be-unmapped
// image. Post-analysis consumers of the retained report (Phases,
// Disassembly) read only graph structure and binary metadata, never
// the raw segment bytes, so clearing the blob is invisible to them.
func (r *Analysis) detachBlob() {
	if r.report != nil && r.report.Graph != nil && r.report.Graph.Bin != nil {
		r.report.Graph.Bin.Blob = nil
	}
}

// AnalyzeBytes analyzes an in-memory ELF image.
func (a *Analyzer) AnalyzeBytes(data []byte) (*Analysis, error) {
	return a.AnalyzeBytesContext(context.Background(), data)
}

// AnalyzeBytesContext is AnalyzeBytes bounded by a context (see
// AnalyzeFileContext for the cancellation semantics).
func (a *Analyzer) AnalyzeBytesContext(ctx context.Context, data []byte) (*Analysis, error) {
	if a.cacheErr != nil {
		return nil, a.cacheErr
	}
	// alias=false: the caller owns data and may reuse it; the parse
	// takes a private copy of the loadable segment.
	return a.analyzeData(ctx, data, "", false)
}

// Lookup probes the persistent cache for an analysis by image content
// hash alone — no image bytes, no ELF parse. This is the runtime half
// of the paper's decoupled design as a resident service sees it: the
// expensive phase ran somewhere, sometime, and a deployment-time
// caller holding only the binary's SHA-256 retrieves the stored result.
// The stored entry is validated exactly as strictly as a byte-level
// probe: the analyzer configuration must match and every dependency in
// the stored closure must still hash to the recorded value. Misses
// (no cache configured, absent entry, stale fingerprint) return false.
func (a *Analyzer) Lookup(hash string) (*Analysis, bool) {
	if a.cache == nil || a.cacheErr != nil || len(a.modules) != 0 {
		return nil, false
	}
	sum, ok := a.inner.CachedSummaryByHash(hash)
	if !ok {
		return nil, false
	}
	return &Analysis{
		Syscalls: sum.Syscalls,
		FailOpen: sum.FailOpen,
		Wrappers: sum.Wrappers,
		Imports:  sum.Imports,
		Cached:   true,
	}, true
}

// analyzeData is the shared front of the byte-level entry points. With
// a cache configured it first probes the store using only the image's
// cheap content identity (hash + DT_NEEDED); a warm fleet probe
// therefore skips the full ELF parse entirely, not just the analysis.
// Only on a miss — or when the identity parse cannot make sense of the
// image — is the binary fully parsed and analyzed. alias lets the
// parse view the loadable segment in place (data outlives the
// analysis — the file frontend's mapped image) instead of copying it.
//
// The whole call runs inside the outermost per-binary fault boundary:
// deeper boundaries (pipeline stages, worker units, the library
// singleflight) convert panics closest to their origin with the
// richest context, and this frontend capture is the backstop for
// everything between them — identity probing, parsing, stitching,
// module merging — so no panic raised while analyzing one binary can
// escape a public entry point.
func (a *Analyzer) analyzeData(ctx context.Context, data []byte, path string, alias bool) (*Analysis, error) {
	return guard.Capture1("frontend", "", func() (*Analysis, error) {
		return a.analyzeDataInner(ctx, data, path, alias)
	})
}

func (a *Analyzer) analyzeDataInner(ctx context.Context, data []byte, path string, alias bool) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bside: analysis aborted: %w", err)
	}
	probed := false
	hash := ""
	if a.cache != nil && len(a.modules) == 0 {
		if id, err := elff.ReadIdentity(data); err == nil {
			probed = true
			hash = id.Hash
			if sum, ok := a.inner.CachedSummary(id.Hash, id.Needed); ok {
				return &Analysis{
					Syscalls: sum.Syscalls,
					FailOpen: sum.FailOpen,
					Wrappers: sum.Wrappers,
					Imports:  sum.Imports,
					Cached:   true,
				}, nil
			}
		}
	}
	// The probe already hashed the image; the fallthrough parse reuses
	// that work (dependency fingerprints are memoized per analyzer, so
	// the miss path recomputes nothing expensive either).
	var bin *elff.Binary
	var err error
	if alias {
		bin, err = elff.ReadPrehashedAlias(data, hash)
	} else {
		bin, err = elff.ReadPrehashed(data, hash)
	}
	if err != nil {
		if path != "" {
			return nil, fmt.Errorf("elff: %s: %w", path, err)
		}
		return nil, err
	}
	bin.Path = path
	res, err := a.analyze(ctx, bin, probed)
	if err != nil {
		return nil, mapCtxErr(ctx, err)
	}
	return res, nil
}

// mapCtxErr folds a context abort into the analysis error: a canceled
// request surfaces as an error matching errors.Is(err, ctx.Err()) —
// what callers branch on — while keeping the analysis-level failure
// (typically the budget's timeout error) in the message. An analysis
// that failed on its own merits under a live context passes through
// untouched.
func mapCtxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("bside: analysis aborted: %w (%v)", cerr, err)
	}
	return err
}

// BatchOptions tunes AnalyzeAll.
type BatchOptions struct {
	// Jobs is the worker-pool size; 0 uses GOMAXPROCS.
	Jobs int
	// OnResult, when set, is invoked once per binary as soon as its
	// analysis completes — in completion order, not path order — so
	// long batches can stream progress instead of waiting for the
	// slowest binary. Calls are serialized (no locking needed inside)
	// and all happen before AnalyzeAll returns. The same *Analysis
	// values appear in the returned slice.
	OnResult func(res *Analysis)
}

// AnalyzeAll analyzes many executables concurrently over a bounded
// worker pool, sharing one interface cache: a library needed by several
// of the binaries is analyzed exactly once, however the work is
// scheduled. The result slice is parallel to paths. Per-binary
// failures do not abort the batch — they are recorded in the
// corresponding result's Err field, with the returned error reserved
// for systemic failures (an unusable cache directory).
func (a *Analyzer) AnalyzeAll(paths []string, opts BatchOptions) ([]*Analysis, error) {
	return a.AnalyzeAllContext(context.Background(), paths, opts)
}

// AnalyzeAllContext is AnalyzeAll bounded by a context. Cancellation is
// honored between binaries — no new analysis starts once ctx is done —
// and during them (each worker runs AnalyzeFileContext, so in-flight
// analyses abort mid-search). On cancellation the returned slice is
// still parallel to paths: binaries that never ran carry the context's
// error in their Err field, and the batch-level error is ctx.Err().
func (a *Analyzer) AnalyzeAllContext(ctx context.Context, paths []string, opts BatchOptions) ([]*Analysis, error) {
	if a.cacheErr != nil {
		return nil, a.cacheErr
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(paths) {
		jobs = len(paths)
	}
	results := make([]*Analysis, len(paths))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	var emitMu sync.Mutex
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, err := a.AnalyzeFileContext(ctx, paths[i])
				if err != nil {
					res = &Analysis{Path: paths[i], Err: err}
				}
				results[i] = res
				if opts.OnResult != nil {
					emitMu.Lock()
					opts.OnResult(res)
					emitMu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range paths {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i, res := range results {
			if res == nil {
				results[i] = &Analysis{Path: paths[i], Err: fmt.Errorf("bside: batch aborted: %w", err)}
			}
		}
		return results, err
	}
	return results, nil
}

// analyze runs the cache-aware analysis of a parsed binary. probed
// says the caller already probed the store for this image (and
// missed), so the cache path goes straight to compute-and-persist.
func (a *Analyzer) analyze(ctx context.Context, bin *elff.Binary, probed bool) (*Analysis, error) {
	if a.cacheErr != nil {
		return nil, a.cacheErr
	}
	var out *Analysis
	if a.cache != nil && len(a.modules) == 0 {
		// Cache-aware path: a hit skips all decoding; a miss computes,
		// persists the summary, and keeps the full report.
		if !probed {
			if cached, ok := a.inner.CachedSummary(bin.Hash, bin.Needed); ok {
				return &Analysis{
					Syscalls: cached.Syscalls,
					FailOpen: cached.FailOpen,
					Wrappers: cached.Wrappers,
					Imports:  cached.Imports,
					Cached:   true,
				}, nil
			}
		}
		sum, rep, err := a.inner.ComputeSummaryCtx(ctx, bin)
		if err != nil {
			return nil, err
		}
		out = &Analysis{
			Syscalls: sum.Syscalls,
			FailOpen: sum.FailOpen,
			Wrappers: sum.Wrappers,
			Imports:  sum.Imports,
			Cached:   sum.Cached,
			report:   rep,
		}
		if rep != nil {
			out.Timings = timingsFrom(rep.Timings)
		}
		return out, nil
	}
	rep, err := a.inner.ProgramCtx(ctx, bin)
	if err != nil {
		return nil, err
	}
	out = &Analysis{
		Syscalls: rep.Syscalls,
		FailOpen: rep.FailOpen,
		Wrappers: len(rep.Main.Wrappers),
		Imports:  rep.Main.ReachableImports,
		Timings:  timingsFrom(rep.Timings),
		report:   rep,
	}
	// dlopen-style modules the user declared: union their behaviour.
	for _, path := range a.modules {
		mod, err := a.openBinary(path)
		if err != nil {
			return nil, fmt.Errorf("bside: module %s: %w", path, err)
		}
		set, failOpen, err := a.inner.ModuleCtx(ctx, mod, filepath.Base(path), bin)
		// The module's interface is extracted; its segment bytes are
		// not needed again.
		_ = mod.ReleaseImage()
		if err != nil {
			return nil, fmt.Errorf("bside: module %s: %w", path, err)
		}
		out.FailOpen = out.FailOpen || failOpen
		var merged linux.ValueSet
		merged.AddAll(out.Syscalls)
		merged.AddAll(set)
		out.Syscalls = merged.Append(out.Syscalls[:0])
	}
	return out, nil
}

// Names returns the kernel names of the identified syscalls.
func (r *Analysis) Names() []string {
	out := make([]string, 0, len(r.Syscalls))
	for _, n := range r.Syscalls {
		if name := linux.Name(n); name != "" {
			out = append(out, name)
		} else {
			out = append(out, fmt.Sprintf("syscall_%d", n))
		}
	}
	return out
}

// Has reports whether syscall n is in the identified set.
func (r *Analysis) Has(n uint64) bool {
	i := sort.Search(len(r.Syscalls), func(i int) bool { return r.Syscalls[i] >= n })
	return i < len(r.Syscalls) && r.Syscalls[i] == n
}

// Policy is a seccomp-style allow list derived from an analysis.
type Policy struct {
	// Allowed syscall numbers; everything else would be denied.
	Allowed []uint64 `json:"allowed"`
	// AllowedNames mirrors Allowed with kernel names.
	AllowedNames []string `json:"allowed_names"`
	// FailOpen means the analysis could not bound the set and the
	// policy allows the entire table (unsafe to tighten).
	FailOpen bool `json:"fail_open,omitempty"`
}

// Policy derives the filter policy for the whole program lifetime.
func (r *Analysis) Policy() *Policy {
	p := &Policy{FailOpen: r.FailOpen}
	if r.FailOpen {
		p.Allowed = linux.All()
	} else {
		p.Allowed = append([]uint64(nil), r.Syscalls...)
	}
	for _, n := range p.Allowed {
		p.AllowedNames = append(p.AllowedNames, linux.Name(n))
	}
	return p
}

// Seccomp compiles the policy into a classic-BPF seccomp filter
// program; denied syscalls return the errno action.
func (p *Policy) Seccomp() (*filter.Program, error) {
	return filter.Compile(p.Allowed, filter.ActionErrno)
}

// Phase is one execution phase with its own allow list (§4.7).
type Phase struct {
	// Allowed syscalls during this phase.
	Allowed []uint64 `json:"allowed"`
	// Transitions maps destination phase index to the syscalls whose
	// invocation switches to it.
	Transitions map[int][]uint64 `json:"transitions"`
	// CodeBytes is the amount of program code mapped to the phase.
	CodeBytes uint64 `json:"code_bytes"`
}

// PhaseReport is the phase automaton of a program.
type PhaseReport struct {
	Start  int     `json:"start"`
	Phases []Phase `json:"phases"`
}

// PhaseOptions tunes phase detection.
type PhaseOptions struct {
	// BackPropagate prepares the policies for seccomp's tighten-only
	// semantics by unioning future phases' allow lists backward.
	BackPropagate bool
	// CompactBytes, when non-zero, merges small single-exit phases into
	// their successors until every remaining phase either exceeds this
	// code size or branches. Allowed sets only grow, so the compacted
	// policies stay sound.
	CompactBytes uint64
}

// Phases extracts execution phases and per-phase allow lists from the
// analyzed program.
func (r *Analysis) Phases(opts PhaseOptions) (*PhaseReport, error) {
	if r.report == nil {
		return nil, fmt.Errorf("bside: phases unavailable for a cache-served analysis (re-analyze without the cache entry)")
	}
	if r.FailOpen {
		return nil, fmt.Errorf("bside: phase policies are meaningless for a fail-open analysis")
	}
	phaseStart := time.Now()
	aut, err := phases.Detect(phases.Input{
		Graph: r.report.Graph,
		Emits: r.report.Emits(),
	}, phases.Config{BackPropagate: opts.BackPropagate})
	if err != nil {
		return nil, err
	}
	if opts.CompactBytes > 0 {
		aut = aut.Compact(opts.CompactBytes)
	}
	if r.Timings != nil {
		// The phases stage runs on demand; fold its cost into the
		// analysis' stage record when it does.
		r.Timings.Phases = time.Since(phaseStart)
		r.Timings.Total = r.Timings.Decode + r.Timings.Wrappers +
			r.Timings.Identify + r.Timings.Stitch + r.Timings.Phases
	}
	out := &PhaseReport{Start: aut.Start, Phases: make([]Phase, len(aut.Phases))}
	for i, ph := range aut.Phases {
		out.Phases[i] = Phase{
			Allowed:     ph.Allowed,
			Transitions: ph.Transitions,
			CodeBytes:   ph.CodeSize,
		}
	}
	return out, nil
}

// Disassembly renders the main binary's recovered control-flow graph as
// a human-readable listing (functions, blocks, instructions, syscall
// sites and import calls annotated). Empty for cache-served analyses,
// which carry no CFG.
func (r *Analysis) Disassembly() string {
	if r.report == nil {
		return ""
	}
	return r.report.Graph.Listing()
}

// SyscallName exposes the kernel name for a syscall number.
func SyscallName(n uint64) string { return linux.Name(n) }

// SyscallNumber exposes the number for a kernel syscall name.
func SyscallNumber(name string) (uint64, bool) { return linux.Number(name) }
