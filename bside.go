// Package bside is a static binary-analysis library that identifies the
// set of Linux system calls an x86-64 ELF executable may invoke at
// runtime, without access to sources — a reproduction of "B-Side:
// Binary-Level Static System Call Identification" (MIDDLEWARE 2024).
//
// The analysis disassembles the target, recovers a precise CFG with the
// active-addresses-taken heuristic, detects syscall wrapper functions
// with a two-phase heuristic, and determines each site's possible
// syscall numbers with a backward search driven by directed forward
// symbolic execution. Dynamically linked executables are resolved
// against per-library shared interfaces computed once per library.
//
// Typical use:
//
//	a := bside.NewAnalyzer(bside.Options{LibraryDir: "deps/"})
//	res, err := a.AnalyzeFile("bin/server")
//	...
//	policy := res.Policy() // seccomp-style allow list
package bside

import (
	"fmt"
	"path/filepath"
	"sort"

	"bside/internal/elff"
	"bside/internal/filter"
	"bside/internal/ident"
	"bside/internal/linux"
	"bside/internal/phases"
	"bside/internal/shared"
)

// Options configures an Analyzer.
type Options struct {
	// LibraryDir is where DT_NEEDED dependencies are looked up (by
	// exact name). Required for dynamically linked targets with
	// dependencies.
	LibraryDir string
	// MaxCFGInstructions bounds disassembly work per binary; 0 uses a
	// generous default. Exceeding the bound fails the analysis, like
	// the paper's wall-clock timeout.
	MaxCFGInstructions int
	// Modules lists shared objects the target loads at runtime via
	// dlopen-style mechanisms. Identifying them is the user's
	// responsibility (as in the paper, §4.5); every exported function
	// of a module is assumed callable and unioned into the result.
	Modules []string
}

// Analyzer analyzes executables, caching shared-library interfaces
// across calls (the once-per-library phase of the paper's §4.5).
type Analyzer struct {
	inner   *shared.Analyzer
	modules []string
}

// NewAnalyzer builds an Analyzer.
func NewAnalyzer(opts Options) *Analyzer {
	dir := opts.LibraryDir
	load := func(name string) (*elff.Binary, error) {
		if dir == "" {
			return nil, fmt.Errorf("bside: dependency %q needed but no LibraryDir configured", name)
		}
		return elff.ReadFile(filepath.Join(dir, name))
	}
	inner := shared.NewAnalyzer(load, ident.Config{})
	inner.MaxCFGInsns = opts.MaxCFGInstructions
	return &Analyzer{inner: inner, modules: opts.Modules}
}

// Analysis is the result of analyzing one executable.
type Analysis struct {
	// Syscalls is the identified superset of invocable syscall numbers,
	// sorted ascending.
	Syscalls []uint64
	// FailOpen reports that at least one site could not be bounded; a
	// safe filter derived from this analysis must allow the full table.
	FailOpen bool
	// Wrappers counts detected syscall-wrapper functions in the main
	// binary.
	Wrappers int
	// Imports lists foreign symbols the program can reach.
	Imports []string

	report *shared.ProgramReport
}

// AnalyzeFile analyzes the ELF executable at path.
func (a *Analyzer) AnalyzeFile(path string) (*Analysis, error) {
	bin, err := elff.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return a.analyze(bin)
}

// AnalyzeBytes analyzes an in-memory ELF image.
func (a *Analyzer) AnalyzeBytes(data []byte) (*Analysis, error) {
	bin, err := elff.Read(data)
	if err != nil {
		return nil, err
	}
	return a.analyze(bin)
}

func (a *Analyzer) analyze(bin *elff.Binary) (*Analysis, error) {
	rep, err := a.inner.Program(bin)
	if err != nil {
		return nil, err
	}
	out := &Analysis{
		Syscalls: rep.Syscalls,
		FailOpen: rep.FailOpen,
		Wrappers: len(rep.Main.Wrappers),
		Imports:  rep.Main.ReachableImports,
		report:   rep,
	}
	// dlopen-style modules the user declared: union their behaviour.
	for _, path := range a.modules {
		mod, err := elff.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("bside: module %s: %w", path, err)
		}
		set, failOpen, err := a.inner.Module(mod, filepath.Base(path))
		if err != nil {
			return nil, fmt.Errorf("bside: module %s: %w", path, err)
		}
		out.FailOpen = out.FailOpen || failOpen
		merged := make(map[uint64]bool, len(out.Syscalls)+len(set))
		for _, n := range out.Syscalls {
			merged[n] = true
		}
		for _, n := range set {
			merged[n] = true
		}
		out.Syscalls = out.Syscalls[:0]
		for n := range merged {
			out.Syscalls = append(out.Syscalls, n)
		}
		sort.Slice(out.Syscalls, func(i, j int) bool { return out.Syscalls[i] < out.Syscalls[j] })
	}
	return out, nil
}

// Names returns the kernel names of the identified syscalls.
func (r *Analysis) Names() []string {
	out := make([]string, 0, len(r.Syscalls))
	for _, n := range r.Syscalls {
		if name := linux.Name(n); name != "" {
			out = append(out, name)
		} else {
			out = append(out, fmt.Sprintf("syscall_%d", n))
		}
	}
	return out
}

// Has reports whether syscall n is in the identified set.
func (r *Analysis) Has(n uint64) bool {
	i := sort.Search(len(r.Syscalls), func(i int) bool { return r.Syscalls[i] >= n })
	return i < len(r.Syscalls) && r.Syscalls[i] == n
}

// Policy is a seccomp-style allow list derived from an analysis.
type Policy struct {
	// Allowed syscall numbers; everything else would be denied.
	Allowed []uint64 `json:"allowed"`
	// AllowedNames mirrors Allowed with kernel names.
	AllowedNames []string `json:"allowed_names"`
	// FailOpen means the analysis could not bound the set and the
	// policy allows the entire table (unsafe to tighten).
	FailOpen bool `json:"fail_open,omitempty"`
}

// Policy derives the filter policy for the whole program lifetime.
func (r *Analysis) Policy() *Policy {
	p := &Policy{FailOpen: r.FailOpen}
	if r.FailOpen {
		p.Allowed = linux.All()
	} else {
		p.Allowed = append([]uint64(nil), r.Syscalls...)
	}
	for _, n := range p.Allowed {
		p.AllowedNames = append(p.AllowedNames, linux.Name(n))
	}
	return p
}

// Seccomp compiles the policy into a classic-BPF seccomp filter
// program; denied syscalls return the errno action.
func (p *Policy) Seccomp() (*filter.Program, error) {
	return filter.Compile(p.Allowed, filter.ActionErrno)
}

// Phase is one execution phase with its own allow list (§4.7).
type Phase struct {
	// Allowed syscalls during this phase.
	Allowed []uint64 `json:"allowed"`
	// Transitions maps destination phase index to the syscalls whose
	// invocation switches to it.
	Transitions map[int][]uint64 `json:"transitions"`
	// CodeBytes is the amount of program code mapped to the phase.
	CodeBytes uint64 `json:"code_bytes"`
}

// PhaseReport is the phase automaton of a program.
type PhaseReport struct {
	Start  int     `json:"start"`
	Phases []Phase `json:"phases"`
}

// PhaseOptions tunes phase detection.
type PhaseOptions struct {
	// BackPropagate prepares the policies for seccomp's tighten-only
	// semantics by unioning future phases' allow lists backward.
	BackPropagate bool
	// CompactBytes, when non-zero, merges small single-exit phases into
	// their successors until every remaining phase either exceeds this
	// code size or branches. Allowed sets only grow, so the compacted
	// policies stay sound.
	CompactBytes uint64
}

// Phases extracts execution phases and per-phase allow lists from the
// analyzed program.
func (r *Analysis) Phases(opts PhaseOptions) (*PhaseReport, error) {
	if r.FailOpen {
		return nil, fmt.Errorf("bside: phase policies are meaningless for a fail-open analysis")
	}
	aut, err := phases.Detect(phases.Input{
		Graph: r.report.Graph,
		Emits: r.report.Emits(),
	}, phases.Config{BackPropagate: opts.BackPropagate})
	if err != nil {
		return nil, err
	}
	if opts.CompactBytes > 0 {
		aut = aut.Compact(opts.CompactBytes)
	}
	out := &PhaseReport{Start: aut.Start, Phases: make([]Phase, len(aut.Phases))}
	for i, ph := range aut.Phases {
		out.Phases[i] = Phase{
			Allowed:     ph.Allowed,
			Transitions: ph.Transitions,
			CodeBytes:   ph.CodeSize,
		}
	}
	return out, nil
}

// Disassembly renders the main binary's recovered control-flow graph as
// a human-readable listing (functions, blocks, instructions, syscall
// sites and import calls annotated).
func (r *Analysis) Disassembly() string {
	return r.report.Graph.Listing()
}

// SyscallName exposes the kernel name for a syscall number.
func SyscallName(n uint64) string { return linux.Name(n) }

// SyscallNumber exposes the number for a kernel syscall name.
func SyscallNumber(name string) (uint64, bool) { return linux.Number(name) }
