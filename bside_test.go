package bside

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// writeCorpusApp materializes one app binary and its libraries on disk
// and returns (binary path, library dir).
func writeCorpusApp(t *testing.T) (string, string) {
	t.Helper()
	set, err := corpus.GenerateApps()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	libDir := filepath.Join(dir, "libs")
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, lib := range set.Libs {
		writeBinary(t, filepath.Join(libDir, name), lib)
	}
	app := set.Apps[5] // sqlite: the smallest
	path := filepath.Join(dir, app.Profile.Name)
	writeBinary(t, path, app.Bin)
	return path, libDir
}

func writeBinary(t *testing.T, path string, bin *elff.Binary) {
	t.Helper()
	spec := elff.Spec{
		Kind:      bin.Kind,
		Base:      bin.Base,
		Entry:     bin.Entry,
		Blob:      bin.Blob,
		CodeSize:  bin.CodeSize,
		Exports:   bin.Exports,
		Imports:   bin.Imports,
		Needed:    bin.Needed,
		Symbols:   bin.Symbols,
		HasUnwind: bin.HasUnwind,
	}
	data, err := elff.Write(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeFileEndToEnd(t *testing.T) {
	path, libDir := writeCorpusApp(t)
	a := NewAnalyzer(Options{LibraryDir: libDir})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailOpen {
		t.Fatal("unexpected fail-open")
	}
	if len(res.Syscalls) < 20 {
		t.Fatalf("suspiciously few syscalls: %v", res.Syscalls)
	}
	if !res.Has(60) {
		t.Fatal("exit must be identified")
	}
	if res.Has(9999) {
		t.Fatal("Has out of range")
	}
	names := res.Names()
	if len(names) != len(res.Syscalls) {
		t.Fatalf("names/syscalls mismatch")
	}
	pol := res.Policy()
	if !reflect.DeepEqual(pol.Allowed, res.Syscalls) || pol.FailOpen {
		t.Fatalf("policy: %+v", pol)
	}
	if len(res.Imports) == 0 {
		t.Fatal("app must reach imports")
	}
	// The policy compiles to a valid seccomp-BPF program that allows
	// exactly the identified set.
	prog, err := pol.Seccomp()
	if err != nil {
		t.Fatalf("seccomp: %v", err)
	}
	for _, n := range res.Syscalls {
		if !prog.Allows(n) {
			t.Fatalf("filter denies identified syscall %d", n)
		}
	}
	if prog.Allows(321) { // bpf is never in the corpus's hot pools
		t.Fatal("filter allows un-identified syscall")
	}
}

func TestPhasesEndToEnd(t *testing.T) {
	path, libDir := writeCorpusApp(t)
	a := NewAnalyzer(Options{LibraryDir: libDir})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := res.Phases(PhaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Phases) < 2 {
		t.Fatalf("phases: %d", len(pr.Phases))
	}
	// Back-propagated policies only grow.
	bp, err := res.Phases(PhaseOptions{BackPropagate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pr.Phases {
		if len(bp.Phases[i].Allowed) < len(pr.Phases[i].Allowed) {
			t.Fatalf("phase %d shrank under back-propagation", i)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a := NewAnalyzer(Options{})
	if _, err := a.AnalyzeBytes([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := a.AnalyzeFile("/nonexistent/binary"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSyscallNameHelpers(t *testing.T) {
	if SyscallName(0) != "read" {
		t.Fatal("SyscallName")
	}
	if n, ok := SyscallNumber("execve"); !ok || n != 59 {
		t.Fatal("SyscallNumber")
	}
}
