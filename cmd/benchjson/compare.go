package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// loadDoc reads one artifact document.
func loadDoc(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// normalizeName strips the trailing GOMAXPROCS suffix go test appends
// ("BenchmarkX/sub-8" -> "BenchmarkX/sub"), so documents from machines
// with different core counts still line up.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		suffix := name[i+1:]
		digits := len(suffix) > 0
		for _, c := range suffix {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits {
			return name[:i]
		}
	}
	return name
}

// Compare diffs two documents benchmark by benchmark and reports
// whether any gated metric regressed by more than threshold percent.
// Benchmarks that vanished from the new run are reported but never
// fail the gate (the suite is allowed to shrink); a regression is
// strictly a worse number for the same name and metric. Lower is
// better for every gated unit.
//
// requireBaseline flags suite growth: a benchmark present in the new
// run but missing from the baseline fails the gate, so a PR that adds
// a gated benchmark must refresh the committed baseline in the same
// change — otherwise the new benchmark would ride ungated until
// someone remembered. Without the flag, growth is reported but
// tolerated.
func Compare(w io.Writer, oldPath, newPath string, threshold float64, metrics []string, requireBaseline bool) (regressed bool, err error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]*Benchmark, len(oldDoc.Benchmarks))
	for i := range oldDoc.Benchmarks {
		oldBy[normalizeName(oldDoc.Benchmarks[i].Name)] = &oldDoc.Benchmarks[i]
	}
	// A unit is comparable only when the baseline document recorded it
	// somewhere: a baseline taken without -benchmem carries allocs/op=0
	// everywhere, and gating against it would flag every benchmark. An
	// individual zero in a document that does record the unit is a real
	// measurement, and regressing from it can never pass.
	docHas := func(doc *Document, unit string) bool {
		for i := range doc.Benchmarks {
			if v, ok := doc.Benchmarks[i].metric(unit); ok && v > 0 {
				return true
			}
		}
		return false
	}

	for i := range newDoc.Benchmarks {
		nb := &newDoc.Benchmarks[i]
		name := normalizeName(nb.Name)
		ob, ok := oldBy[name]
		if !ok {
			if requireBaseline {
				regressed = true
				fmt.Fprintf(w, "FAIL %-48s (no baseline entry — refresh the committed baseline)\n", name)
			} else {
				fmt.Fprintf(w, "new  %-48s (no baseline)\n", name)
			}
			continue
		}
		delete(oldBy, name)
		for _, unit := range metrics {
			unit = strings.TrimSpace(unit)
			ov, ook := ob.metric(unit)
			nv, nok := nb.metric(unit)
			if !ook || !nok || !docHas(oldDoc, unit) {
				continue
			}
			verdict := "ok  "
			var pct float64
			switch {
			case ov == 0 && nv == 0:
				// Perfect then, perfect now.
			case ov == 0:
				// Any growth from a true zero is unbounded regression.
				verdict = "FAIL"
				regressed = true
				fmt.Fprintf(w, "%s %-48s %-10s %14.1f -> %14.1f    +inf%%\n",
					verdict, name, unit, ov, nv)
				continue
			default:
				pct = (nv - ov) / ov * 100
				if pct > threshold {
					verdict = "FAIL"
					regressed = true
				}
			}
			fmt.Fprintf(w, "%s %-48s %-10s %14.1f -> %14.1f  %+6.1f%%\n",
				verdict, name, unit, ov, nv, pct)
		}
	}
	gone := make([]string, 0, len(oldBy))
	for name := range oldBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "gone %-48s (not in new run)\n", name)
	}
	if regressed {
		fmt.Fprintf(w, "REGRESSION: at least one gated check failed (threshold %.1f%%)\n", threshold)
	}
	return regressed, nil
}
