package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name string, doc Document) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegression(t *testing.T) {
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkB-8", NsPerOp: 500, AllocsPerOp: 50},
	}})
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 1050, AllocsPerOp: 100}, // +5%: within threshold
		{Name: "BenchmarkB-4", NsPerOp: 700, AllocsPerOp: 50},   // +40%: regression
	}})
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"ns/op", "allocs/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkB") {
		t.Fatalf("report must name the regressed benchmark:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL BenchmarkA") {
		t.Fatalf("within-threshold drift must not fail:\n%s", out.String())
	}
}

func TestCompareImprovementAndMetricFilter(t *testing.T) {
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 100},
	}})
	// ns/op doubled but only allocs/op is gated; allocs halved.
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 2000, AllocsPerOp: 50},
	}})
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"allocs/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("ungated metric must not fail the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "-50.0%") {
		t.Fatalf("improvement not reported:\n%s", out.String())
	}
}

func TestCompareToleratesSuiteChanges(t *testing.T) {
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkGone-8", NsPerOp: 10},
		{Name: "BenchmarkKept-8", NsPerOp: 10},
	}})
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkKept-8", NsPerOp: 10},
		{Name: "BenchmarkAdded-8", NsPerOp: 10},
	}})
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"ns/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("suite growth/shrink must not fail:\n%s", out.String())
	}
	for _, want := range []string{"new  BenchmarkAdded", "gone BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in report:\n%s", want, out.String())
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// BenchmarkZero regresses from a true 0 allocs/op; the document
	// records the unit elsewhere, so the zero is a measurement, not a
	// missing -benchmem run.
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero-8", NsPerOp: 10, AllocsPerOp: 0},
		{Name: "BenchmarkOther-8", NsPerOp: 10, AllocsPerOp: 7},
	}})
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero-8", NsPerOp: 10, AllocsPerOp: 5000},
		{Name: "BenchmarkOther-8", NsPerOp: 10, AllocsPerOp: 7},
	}})
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"allocs/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(out.String(), "FAIL BenchmarkZero") {
		t.Fatalf("regression from zero baseline must fail:\n%s", out.String())
	}
}

func TestCompareSkipsUnrecordedUnit(t *testing.T) {
	// The baseline predates -benchmem: allocs/op is zero everywhere, so
	// the unit is not comparable and must be skipped, not failed.
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 10},
	}})
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 10, AllocsPerOp: 123},
	}})
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"allocs/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("pre-benchmem baseline must not gate allocs:\n%s", out.String())
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX/workers=4-16": "BenchmarkX/workers=4",
		"BenchmarkX/workers=4":    "BenchmarkX/workers=4",
		"BenchmarkX":              "BenchmarkX",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareRequireBaseline(t *testing.T) {
	oldPath := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkKept-8", NsPerOp: 10, AllocsPerOp: 5},
	}})
	newPath := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkKept-8", NsPerOp: 10, AllocsPerOp: 5},
		{Name: "BenchmarkAdded-8", NsPerOp: 10, AllocsPerOp: 5},
	}})
	// Tolerant mode: growth is reported, not failed.
	var out strings.Builder
	regressed, err := Compare(&out, oldPath, newPath, 10, []string{"allocs/op"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("tolerant mode must not fail on growth:\n%s", out.String())
	}
	// Strict mode: a benchmark without a baseline entry fails the gate.
	out.Reset()
	regressed, err = Compare(&out, oldPath, newPath, 10, []string{"allocs/op"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(out.String(), "FAIL BenchmarkAdded") {
		t.Fatalf("-require-baseline must flag the unbaselined benchmark:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL BenchmarkKept") {
		t.Fatalf("baselined benchmarks must not fail:\n%s", out.String())
	}
}
