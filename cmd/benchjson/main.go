// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout) for the CI benchmark
// trajectory: each PR's bench-compare run uploads a BENCH_<sha>.json
// artifact built by this tool, so per-stage and cold/warm performance
// is comparable across commits without scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=3x . | benchjson -commit $(git rev-parse --short HEAD)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries any further unit pairs (B/op, allocs/op, custom).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the artifact schema.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp into the document")
	flag.Parse()

	doc, err := Parse(os.Stdin, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Timestamp = time.Now().UTC().Format(time.RFC3339)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
