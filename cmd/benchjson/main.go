// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout) for the CI benchmark
// trajectory: each PR's bench-compare run uploads a BENCH_<sha>.json
// artifact built by this tool, so per-stage, allocation and cold/warm
// performance is comparable across commits without scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=3x -benchmem . | benchjson -commit $(git rev-parse --short HEAD)
//
// Compare mode gates regressions against a committed baseline:
//
//	benchjson -compare BENCH_seed.json BENCH_new.json
//
// exits non-zero when any benchmark present in both documents regressed
// by more than -threshold percent on a gated metric (-metrics, default
// "ns/op,allocs/op"). allocs/op is deterministic and safe to gate on
// any runner; ns/op is only meaningful between runs of comparable
// machines, so CI gates allocations and records (but does not gate)
// time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp carry -benchmem's allocation columns;
	// zero when the run did not use -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries any further unit pairs (custom units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// metric returns the named metric's value (using the compare-mode unit
// names) and whether the unit is one the benchmark can carry. The
// first-class units always answer — a recorded zero is a real value
// (0 allocs/op is the best possible baseline, and a regression from it
// must be caught); whether the document recorded the unit at all is
// decided at document level by Compare.
func (b *Benchmark) metric(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return b.NsPerOp, true
	case "B/op":
		return b.BytesPerOp, true
	case "allocs/op":
		return b.AllocsPerOp, true
	}
	v, ok := b.Metrics[unit]
	return v, ok
}

// Document is the artifact schema.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp into the document")
	compare := flag.Bool("compare", false, "compare two documents (old.json new.json) instead of parsing")
	threshold := flag.Float64("threshold", 10, "compare: allowed regression in percent before failing")
	metrics := flag.String("metrics", "ns/op,allocs/op", "compare: comma-separated metrics to gate on")
	requireBaseline := flag.Bool("require-baseline", false, "compare: fail when a new-run benchmark has no baseline entry (forces baseline refreshes to land with the benchmark)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := Compare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, strings.Split(*metrics, ","), *requireBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	doc, err := Parse(os.Stdin, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Timestamp = time.Now().UTC().Format(time.RFC3339)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
