// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout) for the CI benchmark
// trajectory: each PR's bench-compare run uploads a BENCH_<sha>.json
// artifact built by this tool, so per-stage and cold/warm performance
// is comparable across commits without scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=3x . | benchjson -commit $(git rev-parse --short HEAD)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries any further unit pairs (B/op, allocs/op, custom).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the artifact schema.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA to stamp into the document")
	flag.Parse()

	doc := Document{
		Commit:     *commit,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line:
//
//	BenchmarkName/sub-8   3   75190835 ns/op   12 B/op   1 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, b.NsPerOp > 0 || len(b.Metrics) > 0
}
