package main

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Parse reads `go test -bench` text output from r and assembles the
// artifact document (Timestamp left for the caller to stamp). It never
// fails on unrecognized lines — test logs interleave freely with bench
// results — only on a read error.
func Parse(r io.Reader, commit string) (Document, error) {
	doc := Document{
		Commit:     commit,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName/sub-8   3   75190835 ns/op   12 B/op   1 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	// The remainder alternates value/unit. The allocation pair from
	// -benchmem is first-class — the regression gate compares it — and
	// anything else lands in Metrics.
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		found = true
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, found
}
