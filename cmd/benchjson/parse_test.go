package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Benchmark
		ok   bool
	}{
		{
			name: "plain ns/op",
			line: "BenchmarkAnalyzeAllColdCache-8   3   75190835 ns/op",
			want: Benchmark{Name: "BenchmarkAnalyzeAllColdCache-8", Runs: 3, NsPerOp: 75190835},
			ok:   true,
		},
		{
			name: "with allocation metrics",
			line: "BenchmarkAnalyzeLargeBinary/workers=4-8   3   1234.5 ns/op   12 B/op   1 allocs/op",
			want: Benchmark{
				Name: "BenchmarkAnalyzeLargeBinary/workers=4-8", Runs: 3, NsPerOp: 1234.5,
				BytesPerOp: 12, AllocsPerOp: 1,
			},
			ok: true,
		},
		{
			name: "custom metric only",
			line: "BenchmarkCacheHitRate-8   10   0.97 hits/op",
			want: Benchmark{
				Name: "BenchmarkCacheHitRate-8", Runs: 10,
				Metrics: map[string]float64{"hits/op": 0.97},
			},
			ok: true,
		},
		{name: "too few fields", line: "BenchmarkX-8 3 100", ok: false},
		{name: "runs not a number", line: "BenchmarkX-8 fast 100 ns/op", ok: false},
		{name: "no parsable metric", line: "BenchmarkX-8 3 fast ns/op", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBench(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

func TestParseDocument(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: bside",
		"cpu: Intel(R) Xeon(R)",
		"BenchmarkAnalyzeAllSerial-8   3   100 ns/op",
		"some interleaved test log line",
		"--- PASS: TestSomething (0.01s)",
		"BenchmarkAnalyzeAllParallel-8   3   50 ns/op",
		"PASS",
		"ok   bside   1.234s",
	}, "\n")
	doc, err := Parse(strings.NewReader(input), "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Commit != "abc1234" || doc.Goos != "linux" || doc.Goarch != "amd64" ||
		doc.Pkg != "bside" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Fatalf("header fields: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", doc.Benchmarks)
	}
	if doc.Benchmarks[0].Name != "BenchmarkAnalyzeAllSerial-8" || doc.Benchmarks[1].NsPerOp != 50 {
		t.Fatalf("benchmarks: %+v", doc.Benchmarks)
	}
	if doc.Timestamp != "" {
		t.Fatal("Parse must leave the timestamp for the caller")
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc, err := Parse(strings.NewReader(""), "")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Benchmarks == nil || len(doc.Benchmarks) != 0 {
		t.Fatalf("empty input must yield an empty (non-nil) benchmark list: %#v", doc.Benchmarks)
	}
}
