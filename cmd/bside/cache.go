package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"bside/internal/cache"

	// The pack codecs are registered from the packages that own the
	// payload types; linking them in makes `bside cache pack` emit
	// binary-codec entries for "program" and "funcsum" kinds. The
	// analyzer import below pulls in both, but be explicit about the
	// dependency the compaction quality rides on.
	_ "bside/internal/ident"
	_ "bside/internal/shared"
)

// runCache administers a cache directory: compaction into the mmapped
// pack tier, and garbage collection of loose entries a pack already
// covers.
func runCache(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: bside cache pack|gc -dir <cachedir>")
		return usageError{errors.New("cache: missing subcommand")}
	}
	sub := args[0]
	fs := flag.NewFlagSet("cache "+sub, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "cache directory (as given to -cache / CacheDir)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bside cache %s -dir <cachedir>\n", sub)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err}
	}
	if *dir == "" {
		fs.Usage()
		return usageError{errors.New("cache: -dir is required")}
	}
	st, err := cache.Open(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "pack":
		cs, err := st.Compact()
		if err != nil {
			return err
		}
		if cs.Packed == 0 {
			fmt.Fprintf(stdout, "bside cache pack: nothing to pack in %s (%d files skipped)\n", *dir, cs.SkippedLoose)
			return nil
		}
		fmt.Fprintf(stdout, "bside cache pack: %s: %d entries (%d loose + %d carried, %d binary-encoded) -> %s (%d bytes); pruned %d loose / %d packs, skipped %d\n",
			*dir, cs.Packed, cs.FromLoose, cs.FromPacks, cs.BinaryEncoded,
			cs.PackPath, cs.PackBytes, cs.PrunedLoose, cs.PrunedPacks, cs.SkippedLoose)
		return nil
	case "gc":
		gs, err := st.GC()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bside cache gc: %s: pruned %d loose entries already packed, kept %d\n",
			*dir, gs.PrunedLoose, gs.KeptLoose)
		return nil
	default:
		fmt.Fprintln(stderr, "usage: bside cache pack|gc -dir <cachedir>")
		return usageError{fmt.Errorf("cache: unknown subcommand %q", sub)}
	}
}
