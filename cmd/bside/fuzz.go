package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bside/internal/fuzzer"
)

// runFuzz drives the randomized corpus fuzzing harness: one JSON
// verdict line per seed on stdout, a summary on stderr, and a non-zero
// exit when any seed violates the soundness, invariance or
// baseline-sanity oracle. CI's nightly job and developers run exactly
// this code path, so a failure found anywhere reproduces everywhere
// from the seed alone.
func runFuzz(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 50, "how many consecutive seeds to check")
	start := fs.Int64("start", 1, "first seed of the range")
	repro := fs.String("repro", "", "directory to write shrunk reproducers for failing seeds")
	precision := fs.String("precision", "", "file to write the per-seed precision report (JSON)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bside fuzz [-seeds n] [-start s] [-repro dir] [-precision file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err}
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return usageError{fmt.Errorf("fuzz: unexpected arguments: %v", fs.Args())}
	}
	if *seeds <= 0 {
		return usageError{fmt.Errorf("fuzz: -seeds must be positive (got %d)", *seeds)}
	}

	scratch, err := os.MkdirTemp("", "bside-fuzz-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	uni, err := fuzzer.NewUniverse(filepath.Join(scratch, "libs"))
	if err != nil {
		return err
	}
	o, err := fuzzer.New(fuzzer.Options{Dir: scratch, Universe: uni})
	if err != nil {
		return err
	}

	began := time.Now()
	enc := json.NewEncoder(stdout)
	failed := 0
	var prec fuzzer.PrecisionReport
	for i := 0; i < *seeds; i++ {
		seed := *start + int64(i)
		v := o.Check(fuzzer.Gen(seed))
		if err := enc.Encode(v); err != nil {
			return err
		}
		prec.Add(v)
		if v.OK() {
			continue
		}
		failed++
		if *repro == "" {
			continue
		}
		// Bisect the failing profile down to a minimal reproducer and
		// keep it: the artifact a human (or CI) promotes into
		// internal/fuzzer/testdata/regressions once the bug is fixed.
		if err := os.MkdirAll(*repro, 0o755); err != nil {
			return err
		}
		shrunk, sv := fuzzer.Shrink(o, fuzzer.Gen(seed))
		path := filepath.Join(*repro, fmt.Sprintf("seed-%d.json", seed))
		if err := fuzzer.WriteRepro(path, shrunk, sv); err != nil {
			fmt.Fprintf(stderr, "bside fuzz: seed %d: write repro: %v\n", seed, err)
		} else {
			fmt.Fprintf(stderr, "bside fuzz: seed %d: shrunk reproducer written to %s\n", seed, path)
		}
	}
	fmt.Fprintf(stderr, "bside fuzz: %d seeds (%d..%d) in %v: %d violating\n",
		*seeds, *start, *start+int64(*seeds)-1, time.Since(began).Round(time.Millisecond), failed)
	fmt.Fprintf(stderr, "bside fuzz: precision over %d comparable seeds: mean identified %.2f vs resolver-off %.2f (truth %.2f), %d syscalls pruned across %d cases\n",
		prec.CaseCount, prec.MeanIdentified, prec.MeanResolverOff, prec.MeanTruth, prec.TotalShrink, prec.ShrunkCases)
	if *precision != "" {
		data, err := json.MarshalIndent(&prec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*precision, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("fuzz: %d of %d seeds violated the oracle", failed, *seeds)
	}
	return nil
}
