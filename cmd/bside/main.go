// Command bside analyzes an x86-64 ELF executable and reports the
// superset of system calls it may invoke, optionally with execution
// phases and a seccomp-style policy.
//
// Usage:
//
//	bside [-libs dir] [-json] [-phases] [-policy] <binary>
//	bside batch [-libs dir] [-cache dir] [-jobs n] [-max-insns n] <binary>...
//
// The batch form analyzes many binaries concurrently over a shared
// interface cache, emitting one JSON object per binary (JSON lines) on
// stdout and a cold/warm summary on stderr. With -cache, results are
// persisted content-addressed on disk and reused by later runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bside"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "batch" {
		if err := runBatch(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bside:", err)
			os.Exit(1)
		}
		return
	}
	libs := flag.String("libs", "", "directory with shared-library dependencies")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	withPhases := flag.Bool("phases", false, "detect execution phases")
	asPolicy := flag.Bool("policy", false, "emit a seccomp-style allow-list policy")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly listing")
	maxInsns := flag.Int("max-insns", 0, "disassembly budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bside [-libs dir] [-json] [-phases] [-policy] [-disasm] <binary>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *libs, *asJSON, *withPhases, *asPolicy, *disasm, *maxInsns); err != nil {
		fmt.Fprintln(os.Stderr, "bside:", err)
		os.Exit(1)
	}
}

func run(path, libDir string, asJSON, withPhases, asPolicy, disasm bool, maxInsns int) error {
	a := bside.NewAnalyzer(bside.Options{LibraryDir: libDir, MaxCFGInstructions: maxInsns})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if disasm {
		fmt.Print(res.Disassembly())
		return nil
	}
	if asPolicy {
		return enc.Encode(res.Policy())
	}
	if withPhases {
		pr, err := res.Phases(bside.PhaseOptions{})
		if err != nil {
			return err
		}
		if asJSON {
			return enc.Encode(pr)
		}
		fmt.Printf("%d phases (start %d)\n", len(pr.Phases), pr.Start)
		for i, ph := range pr.Phases {
			fmt.Printf("phase %d: %d syscalls allowed, %d bytes of code, %d outgoing transitions\n",
				i, len(ph.Allowed), ph.CodeBytes, len(ph.Transitions))
		}
		return nil
	}
	if asJSON {
		return enc.Encode(struct {
			Syscalls []uint64 `json:"syscalls"`
			Names    []string `json:"names"`
			FailOpen bool     `json:"fail_open,omitempty"`
			Wrappers int      `json:"wrappers"`
			Imports  []string `json:"imports,omitempty"`
		}{res.Syscalls, res.Names(), res.FailOpen, res.Wrappers, res.Imports})
	}

	fmt.Printf("%d system calls identified", len(res.Syscalls))
	if res.FailOpen {
		fmt.Printf(" (FAIL-OPEN: unbounded site, full table required)")
	}
	fmt.Println()
	names := res.Names()
	for i, n := range res.Syscalls {
		fmt.Printf("  %3d  %s\n", n, names[i])
	}
	if res.Wrappers > 0 {
		fmt.Printf("%d syscall wrapper(s) detected\n", res.Wrappers)
	}
	return nil
}

// batchLine is the JSON-lines record emitted per binary.
type batchLine struct {
	Path     string   `json:"path"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
	Names    []string `json:"names,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
	Wrappers int      `json:"wrappers,omitempty"`
	Cached   bool     `json:"cached,omitempty"`
	Error    string   `json:"error,omitempty"`
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	libs := fs.String("libs", "", "directory with shared-library dependencies")
	cacheDir := fs.String("cache", "", "persistent content-addressed cache directory")
	jobs := fs.Int("jobs", 0, "worker-pool size (0 = GOMAXPROCS)")
	maxInsns := fs.Int("max-insns", 0, "disassembly budget per binary (0 = default)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bside batch [-libs dir] [-cache dir] [-jobs n] [-max-insns n] <binary>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	a := bside.NewAnalyzer(bside.Options{
		LibraryDir:         *libs,
		CacheDir:           *cacheDir,
		MaxCFGInstructions: *maxInsns,
	})
	start := time.Now()
	results, err := a.AnalyzeAll(fs.Args(), bside.BatchOptions{Jobs: *jobs})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	enc := json.NewEncoder(os.Stdout)
	var warm, cold, failed int
	for _, res := range results {
		line := batchLine{Path: res.Path}
		if res.Err != nil {
			failed++
			line.Error = res.Err.Error()
		} else {
			if res.Cached {
				warm++
			} else {
				cold++
			}
			line.Syscalls = res.Syscalls
			line.Names = res.Names()
			line.FailOpen = res.FailOpen
			line.Wrappers = res.Wrappers
			line.Cached = res.Cached
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	st := a.CacheStats()
	fmt.Fprintf(os.Stderr, "bside batch: %d binaries in %v: %d analyzed (cold), %d from cache (warm), %d failed",
		len(results), elapsed.Round(time.Millisecond), cold, warm, failed)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "; cache %d hits / %d misses / %d stores", st.Hits, st.Misses, st.Stores)
	}
	fmt.Fprintln(os.Stderr)
	if failed > 0 {
		return fmt.Errorf("%d of %d binaries failed", failed, len(results))
	}
	return nil
}
