// Command bside analyzes an x86-64 ELF executable and reports the
// superset of system calls it may invoke, optionally with execution
// phases and a seccomp-style policy.
//
// Usage:
//
//	bside [-libs dir] [-json] [-phases] [-policy] <binary>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bside"
)

func main() {
	libs := flag.String("libs", "", "directory with shared-library dependencies")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	withPhases := flag.Bool("phases", false, "detect execution phases")
	asPolicy := flag.Bool("policy", false, "emit a seccomp-style allow-list policy")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly listing")
	maxInsns := flag.Int("max-insns", 0, "disassembly budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bside [-libs dir] [-json] [-phases] [-policy] [-disasm] <binary>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *libs, *asJSON, *withPhases, *asPolicy, *disasm, *maxInsns); err != nil {
		fmt.Fprintln(os.Stderr, "bside:", err)
		os.Exit(1)
	}
}

func run(path, libDir string, asJSON, withPhases, asPolicy, disasm bool, maxInsns int) error {
	a := bside.NewAnalyzer(bside.Options{LibraryDir: libDir, MaxCFGInstructions: maxInsns})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if disasm {
		fmt.Print(res.Disassembly())
		return nil
	}
	if asPolicy {
		return enc.Encode(res.Policy())
	}
	if withPhases {
		pr, err := res.Phases(bside.PhaseOptions{})
		if err != nil {
			return err
		}
		if asJSON {
			return enc.Encode(pr)
		}
		fmt.Printf("%d phases (start %d)\n", len(pr.Phases), pr.Start)
		for i, ph := range pr.Phases {
			fmt.Printf("phase %d: %d syscalls allowed, %d bytes of code, %d outgoing transitions\n",
				i, len(ph.Allowed), ph.CodeBytes, len(ph.Transitions))
		}
		return nil
	}
	if asJSON {
		return enc.Encode(struct {
			Syscalls []uint64 `json:"syscalls"`
			Names    []string `json:"names"`
			FailOpen bool     `json:"fail_open,omitempty"`
			Wrappers int      `json:"wrappers"`
			Imports  []string `json:"imports,omitempty"`
		}{res.Syscalls, res.Names(), res.FailOpen, res.Wrappers, res.Imports})
	}

	fmt.Printf("%d system calls identified", len(res.Syscalls))
	if res.FailOpen {
		fmt.Printf(" (FAIL-OPEN: unbounded site, full table required)")
	}
	fmt.Println()
	names := res.Names()
	for i, n := range res.Syscalls {
		fmt.Printf("  %3d  %s\n", n, names[i])
	}
	if res.Wrappers > 0 {
		fmt.Printf("%d syscall wrapper(s) detected\n", res.Wrappers)
	}
	return nil
}
