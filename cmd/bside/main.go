// Command bside analyzes an x86-64 ELF executable and reports the
// superset of system calls it may invoke, optionally with execution
// phases and a seccomp-style policy.
//
// Usage:
//
//	bside [-libs dir] [-json] [-phases] [-policy] [-workers n] [-timings] <binary>
//	bside batch [-libs dir] [-cache dir] [-jobs n] [-workers n] [-max-insns n] <binary>...
//
// The batch form analyzes many binaries concurrently over a shared
// interface cache, emitting one JSON object per binary (JSON lines) on
// stdout — each line flushed as soon as that binary's analysis
// completes, so long fleets stream progress — and a cold/warm summary
// on stderr. With -cache, results are persisted content-addressed on
// disk and reused by later runs.
//
// -workers sets the intra-binary worker pool: how many independent
// units (wrapper-detection functions, identification targets) of one
// binary are analyzed concurrently. Results are identical at any
// worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bside"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "batch" {
		if err := runBatch(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bside:", err)
			os.Exit(1)
		}
		return
	}
	libs := flag.String("libs", "", "directory with shared-library dependencies")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	withPhases := flag.Bool("phases", false, "detect execution phases")
	asPolicy := flag.Bool("policy", false, "emit a seccomp-style allow-list policy")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly listing")
	maxInsns := flag.Int("max-insns", 0, "disassembly budget (0 = default)")
	workers := flag.Int("workers", -1, "intra-binary analysis workers (-1 = one per CPU, 0/1 = serial)")
	timings := flag.Bool("timings", false, "report per-stage analysis timings on stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bside [-libs dir] [-json] [-phases] [-policy] [-disasm] [-workers n] [-timings] <binary>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *libs, *asJSON, *withPhases, *asPolicy, *disasm, *maxInsns, *workers, *timings); err != nil {
		fmt.Fprintln(os.Stderr, "bside:", err)
		os.Exit(1)
	}
}

// printTimings renders the per-stage cost record (pipeline
// observability) on stderr, keeping stdout clean for the result.
func printTimings(t *bside.Timings) {
	if t == nil {
		fmt.Fprintln(os.Stderr, "timings: (cache-served, nothing computed)")
		return
	}
	fmt.Fprintf(os.Stderr, "timings: decode=%v wrappers=%v identify=%v stitch=%v",
		t.Decode, t.Wrappers, t.Identify, t.Stitch)
	if t.Phases > 0 {
		fmt.Fprintf(os.Stderr, " phases=%v", t.Phases)
	}
	fmt.Fprintf(os.Stderr, " total=%v\n", t.Total)
}

func run(path, libDir string, asJSON, withPhases, asPolicy, disasm bool, maxInsns, workers int, timings bool) error {
	a := bside.NewAnalyzer(bside.Options{
		LibraryDir:         libDir,
		MaxCFGInstructions: maxInsns,
		IntraWorkers:       workers,
	})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if disasm {
		fmt.Print(res.Disassembly())
		return nil
	}
	if asPolicy {
		if timings {
			printTimings(res.Timings)
		}
		return enc.Encode(res.Policy())
	}
	if withPhases {
		pr, err := res.Phases(bside.PhaseOptions{})
		if err != nil {
			return err
		}
		if timings {
			printTimings(res.Timings)
		}
		if asJSON {
			return enc.Encode(pr)
		}
		fmt.Printf("%d phases (start %d)\n", len(pr.Phases), pr.Start)
		for i, ph := range pr.Phases {
			fmt.Printf("phase %d: %d syscalls allowed, %d bytes of code, %d outgoing transitions\n",
				i, len(ph.Allowed), ph.CodeBytes, len(ph.Transitions))
		}
		return nil
	}
	if timings {
		printTimings(res.Timings)
	}
	if asJSON {
		return enc.Encode(struct {
			Syscalls []uint64       `json:"syscalls"`
			Names    []string       `json:"names"`
			FailOpen bool           `json:"fail_open,omitempty"`
			Wrappers int            `json:"wrappers"`
			Imports  []string       `json:"imports,omitempty"`
			Timings  *bside.Timings `json:"timings,omitempty"`
		}{res.Syscalls, res.Names(), res.FailOpen, res.Wrappers, res.Imports, res.Timings})
	}

	fmt.Printf("%d system calls identified", len(res.Syscalls))
	if res.FailOpen {
		fmt.Printf(" (FAIL-OPEN: unbounded site, full table required)")
	}
	fmt.Println()
	names := res.Names()
	for i, n := range res.Syscalls {
		fmt.Printf("  %3d  %s\n", n, names[i])
	}
	if res.Wrappers > 0 {
		fmt.Printf("%d syscall wrapper(s) detected\n", res.Wrappers)
	}
	return nil
}

// batchLine is the JSON-lines record emitted per binary.
type batchLine struct {
	Path     string   `json:"path"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
	Names    []string `json:"names,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
	Wrappers int      `json:"wrappers,omitempty"`
	Cached   bool     `json:"cached,omitempty"`
	Error    string   `json:"error,omitempty"`
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	libs := fs.String("libs", "", "directory with shared-library dependencies")
	cacheDir := fs.String("cache", "", "persistent content-addressed cache directory")
	jobs := fs.Int("jobs", 0, "worker-pool size across binaries (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "intra-binary analysis workers per job (0/1 = serial, -1 = one per CPU)")
	maxInsns := fs.Int("max-insns", 0, "disassembly budget per binary (0 = default)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bside batch [-libs dir] [-cache dir] [-jobs n] [-workers n] [-max-insns n] <binary>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	a := bside.NewAnalyzer(bside.Options{
		LibraryDir:         *libs,
		CacheDir:           *cacheDir,
		MaxCFGInstructions: *maxInsns,
		IntraWorkers:       *workers,
	})
	start := time.Now()

	// Stream one JSON line per binary as its analysis completes (the
	// OnResult calls are serialized by AnalyzeAll), so a long fleet
	// shows progress instead of buffering behind the slowest binary.
	enc := json.NewEncoder(os.Stdout)
	var warm, cold, failed int
	var encErr error
	results, err := a.AnalyzeAll(fs.Args(), bside.BatchOptions{
		Jobs: *jobs,
		OnResult: func(res *bside.Analysis) {
			line := batchLine{Path: res.Path}
			if res.Err != nil {
				failed++
				line.Error = res.Err.Error()
			} else {
				if res.Cached {
					warm++
				} else {
					cold++
				}
				line.Syscalls = res.Syscalls
				line.Names = res.Names()
				line.FailOpen = res.FailOpen
				line.Wrappers = res.Wrappers
				line.Cached = res.Cached
			}
			if err := enc.Encode(line); err != nil && encErr == nil {
				encErr = err
			}
		},
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	elapsed := time.Since(start)

	st := a.CacheStats()
	fmt.Fprintf(os.Stderr, "bside batch: %d binaries in %v: %d analyzed (cold), %d from cache (warm), %d failed",
		len(results), elapsed.Round(time.Millisecond), cold, warm, failed)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "; cache %d hits / %d misses / %d stores", st.Hits, st.Misses, st.Stores)
	}
	fmt.Fprintln(os.Stderr)
	if failed > 0 {
		return fmt.Errorf("%d of %d binaries failed", failed, len(results))
	}
	return nil
}
