// Command bside analyzes an x86-64 ELF executable and reports the
// superset of system calls it may invoke, optionally with execution
// phases and a seccomp-style policy.
//
// Usage:
//
//	bside [-libs dir] [-json] [-phases] [-policy] [-workers n] [-timings] <binary>
//	bside batch [-libs dir] [-cache dir] [-jobs n] [-workers n] [-max-insns n] <binary>...
//	bside fuzz [-seeds n] [-start s] [-repro dir]
//	bside serve [-addr host:port] [-libs dir] [-cache dir] [-pack file] [-inflight n] [-timeout d]
//	bside sweep [-libs dir] [-cache dir] [-pack file] [-jobs n] [-queue n] [-diff] [-nommap] [-summary file] <root>
//	bside cache pack|gc -dir <cachedir>
//
// The batch form analyzes many binaries concurrently over a shared
// interface cache, emitting one JSON object per binary (JSON lines) on
// stdout — each line flushed as soon as that binary's analysis
// completes, so long fleets stream progress — and a cold/warm summary
// on stderr. With -cache, results are persisted content-addressed on
// disk and reused by later runs. The batch exits non-zero when any
// binary's analysis failed, with a failed count in the stderr summary.
//
// The fuzz form runs the randomized corpus fuzzing harness
// (internal/fuzzer): for each seed in the range it synthesizes a
// program, derives emulator ground truth, and checks soundness,
// result invariance and baseline sanity, emitting one JSON verdict
// line per seed and exiting non-zero on any violation. With -repro,
// failing seeds are shrunk to minimal reproducer files.
//
// The sweep form walks a directory tree (an unpacked container image,
// a distro /usr partition), filters to x86-64 ELF executables and
// shared objects by magic sniff, and streams every candidate through
// the analyzer with bounded memory: one JSON line per binary on
// stdout, a rolling fleet summary (throughput, warm-hit ratio, latency
// quantiles) on stderr, and optionally the final summary as JSON via
// -summary. With -diff every binary is also run through a cheap
// syspeek-style linear scanner and scan-resolved syscalls missing from
// the analysis are flagged as soundness disagreements.
//
// The cache form administers a persistent cache directory: `bside
// cache pack` compacts the loose JSON entries (and any existing pack)
// into one immutable, memory-mapped, binary-searchable pack file under
// <dir>/packs/ and prunes what it absorbed; `bside cache gc` removes
// loose entries an existing pack already serves. Warm lookups through
// a pack skip the per-entry open() and both JSON decodes — the
// difference between "parse per request" and "hash probe into a
// shared mapping" for a resident service or a warm fleet sweep.
//
// The serve form runs the resident analysis service (internal/serve):
// one warm analyzer behind POST /analyze (upload or ?hash= cache
// lookup), streaming POST /batch, GET /metrics and GET /healthz, with
// admission control, per-request deadlines, same-image single-flight
// dedup, and graceful drain on SIGTERM.
//
// -workers sets the intra-binary worker pool: how many independent
// units (wrapper-detection functions, identification targets) of one
// binary are analyzed concurrently. Results are identical at any
// worker count.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bside"
)

// usageError marks a command-line mistake (bad flags, missing
// arguments); main reports it with exit code 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// exitCode distinguishes usage mistakes (2) from run failures (1).
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

func main() {
	if len(os.Args) > 1 {
		var sub func([]string, io.Writer, io.Writer) error
		switch os.Args[1] {
		case "batch":
			sub = runBatch
		case "fuzz":
			sub = runFuzz
		case "serve":
			sub = runServe
		case "sweep":
			sub = runSweep
		case "cache":
			sub = runCache
		}
		if sub != nil {
			if err := sub(os.Args[2:], os.Stdout, os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "bside:", err)
				os.Exit(exitCode(err))
			}
			return
		}
	}
	libs := flag.String("libs", "", "directory with shared-library dependencies")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	withPhases := flag.Bool("phases", false, "detect execution phases")
	asPolicy := flag.Bool("policy", false, "emit a seccomp-style allow-list policy")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly listing")
	maxInsns := flag.Int("max-insns", 0, "disassembly budget (0 = default)")
	workers := flag.Int("workers", -1, "intra-binary analysis workers (-1 = one per CPU, 0/1 = serial)")
	timings := flag.Bool("timings", false, "report per-stage analysis timings on stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bside [-libs dir] [-json] [-phases] [-policy] [-disasm] [-workers n] [-timings] <binary>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *libs, *asJSON, *withPhases, *asPolicy, *disasm, *maxInsns, *workers, *timings); err != nil {
		fmt.Fprintln(os.Stderr, "bside:", err)
		os.Exit(1)
	}
}

// printTimings renders the per-stage cost record (pipeline
// observability) on stderr, keeping stdout clean for the result.
func printTimings(t *bside.Timings) {
	if t == nil {
		fmt.Fprintln(os.Stderr, "timings: (cache-served, nothing computed)")
		return
	}
	fmt.Fprintf(os.Stderr, "timings: decode=%v wrappers=%v identify=%v stitch=%v",
		t.Decode, t.Wrappers, t.Identify, t.Stitch)
	if t.Phases > 0 {
		fmt.Fprintf(os.Stderr, " phases=%v", t.Phases)
	}
	fmt.Fprintf(os.Stderr, " total=%v\n", t.Total)
}

func run(path, libDir string, asJSON, withPhases, asPolicy, disasm bool, maxInsns, workers int, timings bool) error {
	a := bside.NewAnalyzer(bside.Options{
		LibraryDir:         libDir,
		MaxCFGInstructions: maxInsns,
		IntraWorkers:       workers,
	})
	res, err := a.AnalyzeFile(path)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if disasm {
		fmt.Print(res.Disassembly())
		return nil
	}
	if asPolicy {
		if timings {
			printTimings(res.Timings)
		}
		return enc.Encode(res.Policy())
	}
	if withPhases {
		pr, err := res.Phases(bside.PhaseOptions{})
		if err != nil {
			return err
		}
		if timings {
			printTimings(res.Timings)
		}
		if asJSON {
			return enc.Encode(pr)
		}
		fmt.Printf("%d phases (start %d)\n", len(pr.Phases), pr.Start)
		for i, ph := range pr.Phases {
			fmt.Printf("phase %d: %d syscalls allowed, %d bytes of code, %d outgoing transitions\n",
				i, len(ph.Allowed), ph.CodeBytes, len(ph.Transitions))
		}
		return nil
	}
	if timings {
		printTimings(res.Timings)
	}
	if asJSON {
		return enc.Encode(struct {
			Syscalls []uint64       `json:"syscalls"`
			Names    []string       `json:"names"`
			FailOpen bool           `json:"fail_open,omitempty"`
			Wrappers int            `json:"wrappers"`
			Imports  []string       `json:"imports,omitempty"`
			Timings  *bside.Timings `json:"timings,omitempty"`
		}{res.Syscalls, res.Names(), res.FailOpen, res.Wrappers, res.Imports, res.Timings})
	}

	fmt.Printf("%d system calls identified", len(res.Syscalls))
	if res.FailOpen {
		fmt.Printf(" (FAIL-OPEN: unbounded site, full table required)")
	}
	fmt.Println()
	names := res.Names()
	for i, n := range res.Syscalls {
		fmt.Printf("  %3d  %s\n", n, names[i])
	}
	if res.Wrappers > 0 {
		fmt.Printf("%d syscall wrapper(s) detected\n", res.Wrappers)
	}
	return nil
}

// batchLine is the JSON-lines record emitted per binary.
type batchLine struct {
	Path     string   `json:"path"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
	Names    []string `json:"names,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
	Wrappers int      `json:"wrappers,omitempty"`
	Cached   bool     `json:"cached,omitempty"`
	Error    string   `json:"error,omitempty"`
}

func runBatch(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	libs := fs.String("libs", "", "directory with shared-library dependencies")
	cacheDir := fs.String("cache", "", "persistent content-addressed cache directory")
	packPath := fs.String("pack", "", "attach a compacted cache pack file (see bside cache pack)")
	jobs := fs.Int("jobs", 0, "worker-pool size across binaries (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "intra-binary analysis workers per job (0/1 = serial, -1 = one per CPU)")
	maxInsns := fs.Int("max-insns", 0, "disassembly budget per binary (0 = default)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bside batch [-libs dir] [-cache dir] [-pack file] [-jobs n] [-workers n] [-max-insns n] <binary>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err}
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return usageError{errors.New("batch: no binaries given")}
	}

	a, err := bside.NewAnalyzerErr(bside.Options{
		LibraryDir:         *libs,
		CacheDir:           *cacheDir,
		PackPath:           *packPath,
		MaxCFGInstructions: *maxInsns,
		IntraWorkers:       *workers,
	})
	if err != nil {
		return err
	}
	start := time.Now()

	// Stream one JSON line per binary as its analysis completes (the
	// OnResult calls are serialized by AnalyzeAll), so a long fleet
	// shows progress instead of buffering behind the slowest binary.
	enc := json.NewEncoder(stdout)
	var warm, cold, failed int
	var encErr error
	results, err := a.AnalyzeAll(fs.Args(), bside.BatchOptions{
		Jobs: *jobs,
		OnResult: func(res *bside.Analysis) {
			line := batchLine{Path: res.Path}
			if res.Err != nil {
				failed++
				line.Error = res.Err.Error()
			} else {
				if res.Cached {
					warm++
				} else {
					cold++
				}
				line.Syscalls = res.Syscalls
				line.Names = res.Names()
				line.FailOpen = res.FailOpen
				line.Wrappers = res.Wrappers
				line.Cached = res.Cached
			}
			if err := enc.Encode(line); err != nil && encErr == nil {
				encErr = err
			}
		},
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}
	elapsed := time.Since(start)

	st := a.CacheStats()
	fmt.Fprintf(stderr, "bside batch: %d binaries in %v: %d analyzed (cold), %d from cache (warm), %d failed",
		len(results), elapsed.Round(time.Millisecond), cold, warm, failed)
	if *cacheDir != "" {
		fmt.Fprintf(stderr, "; cache %d hits / %d misses / %d stores", st.Hits, st.Misses, st.Stores)
		if st.Packs > 0 {
			fmt.Fprintf(stderr, "; pack %d hits / %d entries", st.PackHits, st.PackEntries)
		}
	}
	fmt.Fprintln(stderr)
	if failed > 0 {
		return fmt.Errorf("%d of %d binaries failed", failed, len(results))
	}
	return nil
}
