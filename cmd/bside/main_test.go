package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// writeTestBinary synthesizes a small self-contained static binary.
func writeTestBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: name, Kind: elff.KindStatic,
		HotDirect: 3, HotWrapper: 1, Filler: 8, Seed: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := bin.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchFailureExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	good := writeTestBinary(t, dir, "good")
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not an elf"), 0o755); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := runBatch([]string{good, junk}, &stdout, &stderr)
	if err == nil {
		t.Fatal("batch with a failing binary must return an error")
	}
	if !strings.Contains(err.Error(), "1 of 2 binaries failed") {
		t.Fatalf("error must carry the failed count: %v", err)
	}
	if exitCode(err) != 1 {
		t.Fatalf("run failure must exit 1, got %d", exitCode(err))
	}
	if !strings.Contains(stderr.String(), "1 failed") {
		t.Fatalf("stderr summary must report the failed count: %q", stderr.String())
	}

	// Both binaries still produced JSON lines: the good one with
	// syscalls, the bad one with an error field.
	var sawGood, sawBad bool
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		var line struct {
			Path     string   `json:"path"`
			Syscalls []uint64 `json:"syscalls"`
			Error    string   `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		switch line.Path {
		case good:
			sawGood = len(line.Syscalls) > 0 && line.Error == ""
		case junk:
			sawBad = line.Error != ""
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("missing per-binary lines: good=%v bad=%v\n%s", sawGood, sawBad, stdout.String())
	}
}

func TestRunBatchSuccess(t *testing.T) {
	dir := t.TempDir()
	good := writeTestBinary(t, dir, "solo")
	var stdout, stderr bytes.Buffer
	if err := runBatch([]string{good}, &stdout, &stderr); err != nil {
		t.Fatalf("healthy batch failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "0 failed") {
		t.Fatalf("summary: %q", stderr.String())
	}
}

func TestRunBatchUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := runBatch(nil, &stdout, &stderr)
	if err == nil {
		t.Fatal("no binaries must be a usage error")
	}
	if exitCode(err) != 2 {
		t.Fatalf("usage error must exit 2, got %d", exitCode(err))
	}
	if !strings.Contains(stderr.String(), "usage: bside batch") {
		t.Fatalf("usage text missing: %q", stderr.String())
	}
}

func TestRunFuzzArgumentHandling(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"non-positive seeds", []string{"-seeds", "0"}},
		{"negative seeds", []string{"-seeds", "-3"}},
		{"stray positional", []string{"-seeds", "1", "leftover"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := runFuzz(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatal("want usage error")
			}
			if exitCode(err) != 2 {
				t.Fatalf("usage mistakes must exit 2, got %d (%v)", exitCode(err), err)
			}
		})
	}
}

func TestRunFuzzSmoke(t *testing.T) {
	// A tiny real run: two seeds through the full oracle, one JSON
	// verdict line each, zero violations, nil error.
	var stdout, stderr bytes.Buffer
	if err := runFuzz([]string{"-seeds", "2", "-start", "7"}, &stdout, &stderr); err != nil {
		t.Fatalf("fuzz run failed: %v\n%s", err, stderr.String())
	}
	var seeds []int64
	sc := bufio.NewScanner(&stdout)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var v struct {
			Seed       int64    `json:"seed"`
			Sound      bool     `json:"sound"`
			Invariant  bool     `json:"invariant"`
			Violations []string `json:"violations"`
		}
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		if !v.Sound || !v.Invariant || len(v.Violations) > 0 {
			t.Fatalf("violating verdict: %s", sc.Text())
		}
		seeds = append(seeds, v.Seed)
	}
	if len(seeds) != 2 || seeds[0] != 7 || seeds[1] != 8 {
		t.Fatalf("verdict seeds: %v", seeds)
	}
	if !strings.Contains(stderr.String(), "2 seeds (7..8)") {
		t.Fatalf("summary: %q", stderr.String())
	}
}

func TestUsageErrorUnwraps(t *testing.T) {
	inner := errors.New("inner")
	if !errors.Is(usageError{inner}, inner) {
		t.Fatal("usageError must unwrap")
	}
}
