package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bside"
	"bside/internal/cache"
	"bside/internal/serve"
)

// runServe starts the resident analysis service: one warm analyzer
// behind an HTTP/JSON API, so a fleet pays interface computation and
// cache population once per process instead of once per invocation.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7845", "listen address")
	libs := fs.String("libs", "", "directory with shared-library dependencies")
	cacheDir := fs.String("cache", "", "persistent content-addressed cache directory")
	packPath := fs.String("pack", "", "attach a compacted cache pack file (see bside cache pack)")
	workers := fs.Int("workers", -1, "intra-binary analysis workers (-1 = one per CPU, 0/1 = serial)")
	maxInsns := fs.Int("max-insns", 0, "disassembly budget per binary (0 = default)")
	inflight := fs.Int("inflight", serve.DefaultMaxInFlight, "max concurrently running analyses; beyond it requests get 429")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request analysis deadline (0 = none); expiry answers 504")
	maxUploadMB := fs.Int64("max-upload-mb", 512, "largest accepted upload, in MiB")
	memCacheMB := fs.Int64("mem-cache-mb", 0, "memory-tier byte bound, in MiB (0 = default); bounds the warm cache's RSS")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bside serve [-addr host:port] [-libs dir] [-cache dir] [-workers n] [-max-insns n] [-inflight n] [-timeout d] [-max-upload-mb n] [-mem-cache-mb n]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err}
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return usageError{errors.New("serve: unexpected arguments")}
	}
	if *memCacheMB > 0 {
		cache.SetMemoryTierLimits(0, *memCacheMB<<20)
	}

	// A resident service must fail its misconfiguration at startup, not
	// on the first request: eager construction.
	analyzer, err := bside.NewAnalyzerErr(bside.Options{
		LibraryDir:         *libs,
		CacheDir:           *cacheDir,
		PackPath:           *packPath,
		MaxCFGInstructions: *maxInsns,
		IntraWorkers:       *workers,
	})
	if err != nil {
		return err
	}
	srv := serve.New(serve.Config{
		Backend:        analyzer,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		MaxUploadBytes: *maxUploadMB << 20,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// SIGTERM/SIGINT drain gracefully: health goes 503 so balancers
	// stop routing here, the listener closes, and in-flight analyses
	// run to completion (bounded by their own request deadlines).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "bside serve: listening on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	srv.BeginDrain()
	fmt.Fprintln(stderr, "bside serve: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errCh // always http.ErrServerClosed after a clean Shutdown
	fmt.Fprintln(stderr, "bside serve: drained")
	return nil
}
