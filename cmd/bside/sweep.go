package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bside"
	"bside/internal/sweep"
)

// runSweep implements `bside sweep`: walk a directory tree, analyze
// every x86-64 ELF executable and shared object in it, stream one JSON
// line per binary on stdout, and report a rolling fleet summary on
// stderr. The exit status is the fleet verdict: non-zero when any
// binary failed or (with -diff) any soundness disagreement surfaced.
func runSweep(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	libs := fs.String("libs", "", "directory with shared-library dependencies")
	cacheDir := fs.String("cache", "", "persistent content-addressed cache directory")
	packPath := fs.String("pack", "", "attach a compacted cache pack file (see bside cache pack)")
	jobs := fs.Int("jobs", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "intra-binary analysis workers per job (0/1 = serial, -1 = one per CPU)")
	maxInsns := fs.Int("max-insns", 0, "disassembly budget per binary (0 = default)")
	queue := fs.Int("queue", 0, "bounded path-queue depth between walker and workers (0 = 256)")
	diff := fs.Bool("diff", false, "run the syspeek-style linear scanner on every binary and flag disagreements")
	nommap := fs.Bool("nommap", false, "read images through the copying frontend instead of mmap")
	progress := fs.Int("progress", 64, "rolling summary cadence in binaries (0 = default)")
	sumFile := fs.String("summary", "", "write the final fleet summary as JSON to this file")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bside sweep [-libs dir] [-cache dir] [-jobs n] [-workers n] [-max-insns n] [-queue n] [-diff] [-nommap] [-summary file] <root>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err}
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageError{errors.New("sweep: exactly one root directory required")}
	}
	root := fs.Arg(0)

	a, err := bside.NewAnalyzerErr(bside.Options{
		LibraryDir:         *libs,
		CacheDir:           *cacheDir,
		PackPath:           *packPath,
		MaxCFGInstructions: *maxInsns,
		IntraWorkers:       *workers,
		DisableMmap:        *nommap,
	})
	if err != nil {
		return err
	}

	enc := json.NewEncoder(stdout)
	var encErr error
	sum, err := sweep.Run(context.Background(), root, sweep.Options{
		Analyzer:      a,
		Jobs:          *jobs,
		QueueDepth:    *queue,
		Diff:          *diff,
		NoMmap:        *nommap,
		ProgressEvery: *progress,
		OnResult: func(r *sweep.Result) {
			if e := enc.Encode(r); e != nil && encErr == nil {
				encErr = e
			}
		},
		OnProgress: func(s *sweep.Summary) {
			line := fmt.Sprintf("bside sweep: %d/%d analyzed, %.1f bin/s, warm %.0f%%, p50 %.1fms p99 %.1fms, %d failed",
				s.Analyzed, s.ELFs, s.BinariesPerSec, 100*s.WarmHitRatio, s.P50Ms, s.P99Ms, s.Failed)
			if s.PackHits > 0 {
				line += fmt.Sprintf(", %d pack hits", s.PackHits)
			}
			fmt.Fprintln(stderr, line)
		},
	})
	if err != nil {
		return err
	}
	if encErr != nil {
		return encErr
	}

	if *sumFile != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*sumFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	elapsed := time.Duration(sum.ElapsedMs * float64(time.Millisecond))
	fmt.Fprintf(stderr, "bside sweep: %d files, %d ELF candidates, %d analyzed in %v (%.1f bin/s, warm %.0f%%, p50 %.1fms p99 %.1fms)",
		sum.Files, sum.ELFs, sum.Analyzed, elapsed.Round(time.Millisecond),
		sum.BinariesPerSec, 100*sum.WarmHitRatio, sum.P50Ms, sum.P99Ms)
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, ", %d failed %v", sum.Failed, sum.FailurePhases)
	}
	if *diff {
		fmt.Fprintf(stderr, ", %d scan disagreements", sum.ScanDisagreements)
	}
	if sum.PackHits > 0 {
		fmt.Fprintf(stderr, ", %d pack hits", sum.PackHits)
	}
	fmt.Fprintln(stderr)

	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d candidates failed", sum.Failed, sum.ELFs)
	}
	if sum.ScanDisagreements > 0 {
		return fmt.Errorf("%d binaries with scan-resolved syscalls missing from the analysis", sum.ScanDisagreements)
	}
	return nil
}
