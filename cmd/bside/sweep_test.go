package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bside/internal/corpus"
	"bside/internal/elff"
)

func TestRunSweepStreamsTreeAndWarmsCache(t *testing.T) {
	root := t.TempDir()
	binDir := filepath.Join(root, "usr", "bin")
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestBinary(t, binDir, "alpha")
	// A second, content-distinct binary (identical content would dedup
	// through the content-addressed cache and read as a warm hit).
	beta, err := corpus.BuildProgram(corpus.Profile{
		Name: "beta", Kind: elff.KindStatic,
		HotDirect: 4, HotWrapper: 1, Filler: 8, Seed: 54321,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := beta.WriteFile(filepath.Join(binDir, "beta")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "readme.txt"), []byte("text\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	sumFile := filepath.Join(t.TempDir(), "summary.json")

	var stdout, stderr bytes.Buffer
	err = runSweep([]string{"-cache", cacheDir, "-diff", "-summary", sumFile, root}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("cold sweep: %v\n%s", err, stderr.String())
	}

	// Two NDJSON lines, one per ELF, each with a diff record.
	var lines int
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		lines++
		var line struct {
			Path     string   `json:"path"`
			Syscalls []uint64 `json:"syscalls"`
			Diff     *struct {
				ScanSites int      `json:"scan_sites"`
				ScanOnly  []uint64 `json:"scan_only"`
			} `json:"diff"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" || len(line.Syscalls) == 0 {
			t.Fatalf("unexpected result line: %q", sc.Text())
		}
		if line.Diff == nil || line.Diff.ScanSites == 0 || len(line.Diff.ScanOnly) != 0 {
			t.Fatalf("diff record: %q", sc.Text())
		}
	}
	if lines != 2 {
		t.Fatalf("NDJSON lines: %d, want 2", lines)
	}
	if !strings.Contains(stderr.String(), "2 analyzed") {
		t.Fatalf("stderr summary: %q", stderr.String())
	}

	var sum struct {
		Files    int64   `json:"files"`
		ELFs     int64   `json:"elfs"`
		Analyzed int64   `json:"analyzed"`
		WarmHit  float64 `json:"warm_hit_ratio"`
	}
	data, err := os.ReadFile(sumFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Files != 3 || sum.ELFs != 2 || sum.Analyzed != 2 || sum.WarmHit != 0 {
		t.Fatalf("cold summary: %+v", sum)
	}

	// Second pass over the same cache: everything warm.
	stdout.Reset()
	stderr.Reset()
	if err := runSweep([]string{"-cache", cacheDir, "-summary", sumFile, root}, &stdout, &stderr); err != nil {
		t.Fatalf("warm sweep: %v\n%s", err, stderr.String())
	}
	data, err = os.ReadFile(sumFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.WarmHit != 1 {
		t.Fatalf("warm summary hit ratio: %+v", sum)
	}
}

func TestRunSweepUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := runSweep(nil, &stdout, &stderr)
	if err == nil || exitCode(err) != 2 {
		t.Fatalf("missing root must be a usage error, got %v", err)
	}
	err = runSweep([]string{"a", "b"}, &stdout, &stderr)
	if err == nil || exitCode(err) != 2 {
		t.Fatalf("two roots must be a usage error, got %v", err)
	}
}
