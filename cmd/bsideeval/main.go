// Command bsideeval regenerates every table and figure of the paper's
// evaluation (§5) over the synthetic corpus and prints them in the
// paper's layout.
//
// Usage:
//
//	bsideeval [-exp all|fig7|table1|table2|table3|table4|table5|fig8] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bside/internal/corpus"
	"bside/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig7, table1, table2, table3, table4, table5, fig8")
	seed := flag.Int64("seed", 42, "Debian corpus seed")
	flag.Parse()

	if err := run(strings.ToLower(*exp), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "bsideeval:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64) error {
	needApps := exp == "all" || exp == "fig7" || exp == "table1" || exp == "table3" || exp == "table4"
	needDebian := exp == "all" || exp == "table2" || exp == "fig8" || exp == "table5"

	var apps []*eval.AppEval
	if needApps {
		set, err := corpus.GenerateApps()
		if err != nil {
			return err
		}
		apps, err = eval.EvalApps(set)
		if err != nil {
			return err
		}
	}
	var deb *eval.DebianEval
	if needDebian {
		fmt.Fprintln(os.Stderr, "generating and evaluating the 557-binary corpus (about 10s)...")
		set, err := corpus.GenerateDebian(seed)
		if err != nil {
			return err
		}
		deb, err = eval.EvalDebian(set)
		if err != nil {
			return err
		}
	}

	show := func(name, out string) {
		fmt.Println(out)
	}
	if exp == "all" || exp == "fig7" {
		show("fig7", eval.Figure7(apps))
	}
	if exp == "all" || exp == "table1" {
		show("table1", eval.Table1(apps))
	}
	if exp == "all" || exp == "table2" {
		show("table2", eval.Table2(deb))
	}
	if exp == "all" || exp == "fig8" {
		show("fig8", eval.Figure8(deb))
	}
	if exp == "all" || exp == "table3" {
		show("table3", eval.Table3(apps))
	}
	if exp == "all" || exp == "table4" {
		var nginx *eval.AppEval
		for _, a := range apps {
			if a.Name == "nginx" {
				nginx = a
			}
		}
		ps, err := eval.EvalPhases(nginx)
		if err != nil {
			return err
		}
		show("table4", eval.Table4(ps))
	}
	if exp == "all" || exp == "table5" {
		show("table5", eval.Table5(deb))
	}
	return nil
}
