// Command bsidegen materializes the synthetic evaluation corpus on
// disk: the six application stand-ins, the 557-binary Debian-shaped
// set, their shared libraries, and a manifest with each binary's
// emulator-derived ground truth.
//
// Usage:
//
//	bsidegen -out corpus/ [-seed 42] [-apps-only]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bside/internal/corpus"
)

type manifestEntry struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // static | dynamic
	Truth  []uint64 `json:"truth"`
	Needed []string `json:"needed,omitempty"`
}

func main() {
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 42, "corpus seed")
	appsOnly := flag.Bool("apps-only", false, "generate only the 6 applications")
	flag.Parse()

	if err := run(*out, *seed, *appsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "bsidegen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, appsOnly bool) error {
	for _, sub := range []string{"apps", "debian", "libs"} {
		if err := os.MkdirAll(filepath.Join(out, sub), 0o755); err != nil {
			return err
		}
	}

	appSet, err := corpus.GenerateApps()
	if err != nil {
		return err
	}
	var manifest []manifestEntry
	write := func(dir string, builds []*corpus.Build) error {
		for _, b := range builds {
			path := filepath.Join(out, dir, b.Profile.Name)
			if err := b.Bin.WriteFile(path); err != nil {
				return err
			}
			kind := "dynamic"
			if b.IsStatic() {
				kind = "static"
			}
			manifest = append(manifest, manifestEntry{
				Name: dir + "/" + b.Profile.Name, Kind: kind,
				Truth: b.Truth, Needed: b.Bin.Needed,
			})
		}
		return nil
	}
	if err := write("apps", appSet.Apps); err != nil {
		return err
	}
	libs := appSet.Libs

	if !appsOnly {
		debSet, err := corpus.GenerateDebian(seed)
		if err != nil {
			return err
		}
		if err := write("debian", debSet.Debian); err != nil {
			return err
		}
		libs = debSet.Libs
	}

	for name, lib := range libs {
		if err := lib.WriteFile(filepath.Join(out, "libs", name)); err != nil {
			return err
		}
	}

	f, err := os.Create(filepath.Join(out, "manifest.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %d binaries + %d libraries to %s\n", len(manifest), len(libs), out)
	return nil
}
