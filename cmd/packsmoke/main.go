// Command packsmoke is the CI smoke test for the mmapped cache pack
// tier: it materializes an application corpus with the real generator
// (bsidegen), populates a cache with a cold `bside batch -cache` run,
// replays the batch warm from the loose tier, compacts the cache with
// `bside cache pack`, and replays the batch warm again from the pack —
// asserting the two warm replays emit byte-identical JSON and that the
// packed replay provably hit the pack tier. The operator's compaction
// path, end to end, with output equivalence as the bar.
//
// Usage:
//
//	packsmoke -bside path/to/bside -gen path/to/bsidegen
//
// Exits 0 when every step passed, 1 with a diagnostic otherwise.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
)

func main() {
	bin := flag.String("bside", "", "path to the bside binary under test")
	gen := flag.String("gen", "", "path to the bsidegen binary")
	flag.Parse()
	if err := run(*bin, *gen); err != nil {
		fmt.Fprintln(os.Stderr, "packsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("packsmoke: ok")
}

func run(bsidePath, genPath string) error {
	if bsidePath == "" || genPath == "" {
		return errors.New("-bside and -gen are required")
	}
	dir, err := os.MkdirTemp("", "packsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	corpusDir := filepath.Join(dir, "corpus")
	if out, err := exec.Command(genPath, "-out", corpusDir, "-apps-only").CombinedOutput(); err != nil {
		return fmt.Errorf("bsidegen: %v: %s", err, out)
	}
	apps, err := filepath.Glob(filepath.Join(corpusDir, "apps", "*"))
	if err != nil {
		return err
	}
	if len(apps) < 3 {
		return fmt.Errorf("generator produced only %d apps", len(apps))
	}
	libs := filepath.Join(corpusDir, "libs")
	cache := filepath.Join(dir, "cache")

	// Cold populate: every binary analyzed from scratch into the cache.
	coldOut, coldErr, err := batch(bsidePath, libs, cache, apps)
	if err != nil {
		return fmt.Errorf("cold batch: %w", err)
	}
	if n := packHits(coldErr); n != 0 {
		return fmt.Errorf("cold batch reported %d pack hits before any pack exists", n)
	}

	// Warm replay A, loose tier: the oracle output the pack tier must
	// reproduce byte for byte. (The cold stream differs only by the
	// absence of the "cached" markers, so the cold/warm comparison is
	// per-binary syscall sets, done implicitly by the cache's own
	// content addressing; the byte-level bar is warm-vs-warm.)
	looseOut, looseErr, err := batch(bsidePath, libs, cache, apps)
	if err != nil {
		return fmt.Errorf("warm loose batch: %w", err)
	}
	if !bytes.Contains(looseErr, []byte(" 0 analyzed (cold)")) {
		return fmt.Errorf("warm loose batch was not fully cache-served:\n%s", looseErr)
	}

	// Compact the loose entries into a pack.
	var packStdout, packStderr bytes.Buffer
	cmd := exec.Command(bsidePath, "cache", "pack", "-dir", cache)
	cmd.Stdout = &packStdout
	cmd.Stderr = &packStderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("bside cache pack: %v\nstderr: %s", err, packStderr.String())
	}
	if !bytes.Contains(packStdout.Bytes(), []byte("entries")) {
		return fmt.Errorf("cache pack compacted nothing: %s", packStdout.String())
	}

	// Warm replay B, pack tier: byte-identical output, provably served
	// out of the pack.
	packOut, packErr, err := batch(bsidePath, libs, cache, apps)
	if err != nil {
		return fmt.Errorf("warm pack batch: %w", err)
	}
	if !bytes.Contains(packErr, []byte(" 0 analyzed (cold)")) {
		return fmt.Errorf("warm pack batch was not fully cache-served:\n%s", packErr)
	}
	if !bytes.Equal(packOut, looseOut) {
		return fmt.Errorf("packed warm output drifted from the loose warm replay:\n%s\nvs\n%s", packOut, looseOut)
	}
	if len(packOut) == 0 || bytes.Equal(coldOut, packOut) {
		return fmt.Errorf("warm replays indistinguishable from cold (no cached markers?)")
	}
	if n := packHits(packErr); n <= 0 {
		return fmt.Errorf("packed warm batch reported no pack hits:\n%s", packErr)
	}
	return nil
}

// batch runs one `bside batch -cache` over the apps (fixed input order
// and -jobs 1, so the JSON-lines stream is deterministic) and returns
// stdout and stderr.
func batch(bsidePath, libs, cache string, apps []string) ([]byte, []byte, error) {
	args := append([]string{"batch", "-libs", libs, "-cache", cache, "-jobs", "1"}, apps...)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bsidePath, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("%v\nstderr: %s", err, stderr.String())
	}
	return stdout.Bytes(), stderr.Bytes(), nil
}

var packHitsRE = regexp.MustCompile(`; pack (\d+) hits`)

// packHits extracts the pack-hit count from a batch stderr summary,
// returning 0 when the pack segment is absent.
func packHits(stderr []byte) int {
	m := packHitsRE.FindSubmatch(stderr)
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		return 0
	}
	return n
}
