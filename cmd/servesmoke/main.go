// Command servesmoke is the CI smoke test for `bside serve`: it boots
// the real daemon on a real TCP socket, uploads a synthesized binary,
// replays it by content hash alone, checks the metrics surface, and
// verifies graceful SIGTERM drain — the full operator path, end to end,
// in one process tree.
//
// Usage:
//
//	servesmoke -bside path/to/bside
//
// Exits 0 when every step passed, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"bside/internal/corpus"
	"bside/internal/elff"
)

func main() {
	bin := flag.String("bside", "", "path to the bside binary under test")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

// daemonLog tails the daemon's stderr: the first line announces the
// bound address (the daemon listens on :0, so only it knows the port),
// the rest is kept for the post-mortem drain check.
type daemonLog struct {
	addr chan string
	mu   sync.Mutex
	rest []string
	done chan struct{}
}

func tailStderr(r io.Reader) *daemonLog {
	l := &daemonLog{addr: make(chan string, 1), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "bside serve: listening on "); ok {
				select {
				case l.addr <- rest:
				default:
				}
				continue
			}
			l.mu.Lock()
			l.rest = append(l.rest, line)
			l.mu.Unlock()
		}
	}()
	return l
}

func (l *daemonLog) contains(want string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.rest {
		if strings.Contains(line, want) {
			return true
		}
	}
	return false
}

func run(bsidePath string) error {
	if bsidePath == "" {
		return errors.New("-bside is required")
	}
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A self-contained static workload: no library directory to ship.
	prog, err := corpus.BuildProgram(corpus.Profile{
		Name: "smoke", Kind: elff.KindStatic,
		HotDirect: 8, HotWrapper: 2, HotStack: 1, Handlers: 1,
		ColdDirect: 4, ColdWrapper: 1, Filler: 10, Seed: 1,
	})
	if err != nil {
		return err
	}
	img, err := elff.Write(prog.Spec())
	if err != nil {
		return err
	}

	cmd := exec.Command(bsidePath, "serve",
		"-addr", "127.0.0.1:0", "-cache", filepath.Join(dir, "cache"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	log := tailStderr(stderr)
	defer cmd.Process.Kill()

	var addr string
	select {
	case addr = <-log.addr:
	case <-time.After(10 * time.Second):
		return errors.New("daemon did not announce its address within 10s")
	}
	base := "http://" + addr

	// Cold upload: the pipeline runs and the result is persisted.
	up, err := http.Post(base+"/analyze", "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	cold, _ := io.ReadAll(up.Body)
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		return fmt.Errorf("upload: status %d: %s", up.StatusCode, cold)
	}
	if got := up.Header.Get("X-Bside-Cached"); got != "false" {
		return fmt.Errorf("upload: X-Bside-Cached = %q, want false", got)
	}

	// Deployment-time path: the bare content hash, no image bytes.
	warm, err := http.Post(base+"/analyze?hash="+prog.Hash, "text/plain", nil)
	if err != nil {
		return fmt.Errorf("hash lookup: %w", err)
	}
	warmBody, _ := io.ReadAll(warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		return fmt.Errorf("hash lookup: status %d: %s", warm.StatusCode, warmBody)
	}
	if got := warm.Header.Get("X-Bside-Cached"); got != "true" {
		return fmt.Errorf("hash lookup: X-Bside-Cached = %q, want true", got)
	}
	if !bytes.Equal(cold, warmBody) {
		return fmt.Errorf("hash lookup diverged from the upload:\n%s\nvs\n%s", cold, warmBody)
	}

	// The metrics surface must reflect both requests.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var m struct {
		Serve struct {
			Requests   uint64 `json:"requests"`
			Analyses   uint64 `json:"analyses"`
			Lookups    uint64 `json:"lookups"`
			LookupHits uint64 `json:"lookup_hits"`
		} `json:"serve"`
		Cache struct {
			Hits   uint64 `json:"hits"`
			Stores uint64 `json:"stores"`
		} `json:"cache"`
	}
	err = json.NewDecoder(mr.Body).Decode(&m)
	mr.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: decode: %w", err)
	}
	if m.Serve.Analyses != 1 || m.Serve.LookupHits != 1 {
		return fmt.Errorf("metrics: analyses=%d lookup_hits=%d, want 1/1", m.Serve.Analyses, m.Serve.LookupHits)
	}
	if m.Cache.Stores == 0 || m.Cache.Hits == 0 {
		return fmt.Errorf("metrics: cache stores=%d hits=%d, want both > 0", m.Cache.Stores, m.Cache.Hits)
	}

	// SIGTERM must drain: clean exit, with both drain markers logged.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return errors.New("daemon did not exit within 15s of SIGTERM")
	}
	<-log.done
	if !log.contains("draining") || !log.contains("drained") {
		return fmt.Errorf("drain markers missing from daemon log: %q", log.rest)
	}
	return nil
}
