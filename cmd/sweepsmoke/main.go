// Command sweepsmoke is the CI smoke test for `bside sweep`: it
// materializes a distro-shaped tree with the real generator
// (bsidegen), runs a cold differential sweep over it through the real
// CLI, checks the NDJSON stream and the fleet summary, then sweeps
// again and verifies the persistent cache carried the second pass —
// the full fleet-scan operator path, end to end.
//
// Usage:
//
//	sweepsmoke -bside path/to/bside -gen path/to/bsidegen
//
// Exits 0 when every step passed, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"bside/internal/corpus"
	"bside/internal/elff"
)

func main() {
	bin := flag.String("bside", "", "path to the bside binary under test")
	gen := flag.String("gen", "", "path to the bsidegen binary")
	flag.Parse()
	if err := run(*bin, *gen); err != nil {
		fmt.Fprintln(os.Stderr, "sweepsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("sweepsmoke: ok")
}

// summary mirrors the fields of sweep.Summary the smoke asserts on.
type summary struct {
	Files             int64   `json:"files"`
	ELFs              int64   `json:"elfs"`
	Analyzed          int64   `json:"analyzed"`
	Failed            int64   `json:"failed"`
	WarmHitRatio      float64 `json:"warm_hit_ratio"`
	BinariesPerSec    float64 `json:"binaries_per_sec"`
	ScanDisagreements int64   `json:"scan_disagreements"`
}

func run(bsidePath, genPath string) error {
	if bsidePath == "" || genPath == "" {
		return errors.New("-bside and -gen are required")
	}
	dir, err := os.MkdirTemp("", "sweepsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The real generator builds the application corpus: binaries under
	// corpus/apps, their shared libraries under corpus/libs.
	corpusDir := filepath.Join(dir, "corpus")
	if out, err := exec.Command(genPath, "-out", corpusDir, "-apps-only").CombinedOutput(); err != nil {
		return fmt.Errorf("bsidegen: %v: %s", err, out)
	}

	// Shape the sweep root like a distro slice: the generated apps,
	// extra static binaries in nested directories, and the non-ELF
	// noise a real tree is mostly made of.
	root := filepath.Join(dir, "tree")
	if err := os.MkdirAll(filepath.Join(root, "usr"), 0o755); err != nil {
		return err
	}
	if err := os.Rename(filepath.Join(corpusDir, "apps"), filepath.Join(root, "usr", "bin")); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		prog, err := corpus.BuildProgram(corpus.Profile{
			Name: fmt.Sprintf("tool%d", i), Kind: elff.KindStatic,
			HotDirect: 6, HotWrapper: 2, HotStack: 1,
			ColdDirect: 3, Filler: 12, Seed: int64(7000 + i),
		})
		if err != nil {
			return err
		}
		sub := filepath.Join(root, "opt", fmt.Sprintf("pkg%d", i%3), "bin")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		if err := prog.WriteFile(filepath.Join(sub, fmt.Sprintf("tool%d", i))); err != nil {
			return err
		}
	}
	noise := map[string][]byte{
		"etc/os-release":  []byte("ID=smoke\n"),
		"usr/share/doc/a": []byte("documentation"),
		"tiny":            {0x7f, 'E', 'L'},
	}
	for rel, data := range noise {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}

	libs := filepath.Join(corpusDir, "libs")
	cache := filepath.Join(dir, "cache")

	// Cold differential sweep: every binary analyzed from scratch and
	// cross-checked against the linear scanner.
	coldSum, nCold, err := sweepOnce(bsidePath, root, libs, cache, filepath.Join(dir, "cold.json"))
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	if coldSum.Failed != 0 {
		return fmt.Errorf("cold sweep: %d failures", coldSum.Failed)
	}
	if coldSum.ScanDisagreements != 0 {
		return fmt.Errorf("cold sweep: %d scan disagreements (soundness)", coldSum.ScanDisagreements)
	}
	if coldSum.Analyzed < 10 || int64(nCold) != coldSum.Analyzed {
		return fmt.Errorf("cold sweep: %d NDJSON lines vs %d analyzed", nCold, coldSum.Analyzed)
	}
	if coldSum.Files <= coldSum.ELFs {
		return fmt.Errorf("cold sweep: noise files were not walked (files=%d elfs=%d)", coldSum.Files, coldSum.ELFs)
	}

	// Warm pass over the same cache: the fleet must be served warm.
	warmSum, _, err := sweepOnce(bsidePath, root, libs, cache, filepath.Join(dir, "warm.json"))
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	if warmSum.WarmHitRatio <= 0 {
		return fmt.Errorf("warm sweep: warm-hit ratio %v, want > 0", warmSum.WarmHitRatio)
	}
	if warmSum.Analyzed != coldSum.Analyzed {
		return fmt.Errorf("warm sweep analyzed %d, cold %d", warmSum.Analyzed, coldSum.Analyzed)
	}
	return nil
}

// sweepOnce runs one `bside sweep -diff` and returns the summary plus
// the count of valid NDJSON result lines.
func sweepOnce(bsidePath, root, libs, cache, sumFile string) (*summary, int, error) {
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bsidePath, "sweep",
		"-libs", libs, "-cache", cache, "-diff", "-summary", sumFile, root)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, 0, fmt.Errorf("%v\nstderr: %s", err, stderr.String())
	}

	lines := 0
	sc := bufio.NewScanner(&stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Path     string   `json:"path"`
			Syscalls []uint64 `json:"syscalls"`
			Error    string   `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, 0, fmt.Errorf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			return nil, 0, fmt.Errorf("result error for %s: %s", line.Path, line.Error)
		}
		if len(line.Syscalls) == 0 {
			return nil, 0, fmt.Errorf("empty syscall set for %s", line.Path)
		}
		lines++
	}
	data, err := os.ReadFile(sumFile)
	if err != nil {
		return nil, 0, err
	}
	var sum summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, 0, err
	}
	return &sum, lines, nil
}
