package bside

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bside/internal/elff"
)

func TestNewAnalyzerErr(t *testing.T) {
	if _, err := NewAnalyzerErr(Options{}); err != nil {
		t.Fatalf("plain options rejected: %v", err)
	}
	// A CacheDir that cannot exist (a path under a regular file) must
	// fail at construction, not on the first analysis.
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalyzerErr(Options{CacheDir: filepath.Join(file, "cache")}); err == nil {
		t.Fatal("unusable CacheDir accepted at construction")
	}
	// The legacy constructor defers the same error to the first call.
	a := NewAnalyzer(Options{CacheDir: filepath.Join(file, "cache")})
	if _, err := a.AnalyzeBytes([]byte("junk")); err == nil {
		t.Fatal("deferred cache error lost")
	}
}

func TestAnalyzeContextCancellation(t *testing.T) {
	path, libDir := writeCorpusApp(t)
	a := NewAnalyzer(Options{LibraryDir: libDir})

	// A dead context aborts before any work, and the error is
	// branchable with errors.Is.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnalyzeFileContext(ctx, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled analysis error: %v", err)
	}
	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := a.AnalyzeFileContext(dctx, path); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired analysis error: %v", err)
	}
	// A live context changes nothing: same result as the plain API.
	want, err := a.AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.AnalyzeFileContext(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Syscalls, got.Syscalls) || want.FailOpen != got.FailOpen {
		t.Fatal("context path diverged from the plain path")
	}
}

func TestAnalyzeAllContextCancellation(t *testing.T) {
	path, libDir := writeCorpusApp(t)
	a := NewAnalyzer(Options{LibraryDir: libDir})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	paths := []string{path, path, path}
	results, err := a.AnalyzeAllContext(ctx, paths, BatchOptions{Jobs: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error: %v", err)
	}
	if len(results) != len(paths) {
		t.Fatalf("results not parallel to paths: %d", len(results))
	}
	for i, res := range results {
		if res == nil || !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
}

func TestLookupByHash(t *testing.T) {
	path, libDir := writeCorpusApp(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := elff.ReadIdentity(data)
	if err != nil {
		t.Fatal(err)
	}

	// Without a cache there is nothing to look up.
	if _, ok := NewAnalyzer(Options{LibraryDir: libDir}).Lookup(id.Hash); ok {
		t.Fatal("Lookup hit without a cache")
	}

	cacheDir := t.TempDir()
	a := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	want, err := a.AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cold analyzer, warm store: the hash alone retrieves the result —
	// the deployment-time lookup of the paper's decoupled design.
	b := NewAnalyzer(Options{LibraryDir: libDir, CacheDir: cacheDir})
	got, ok := b.Lookup(id.Hash)
	if !ok {
		t.Fatal("warm Lookup missed")
	}
	if !got.Cached {
		t.Fatal("Lookup result not marked cached")
	}
	if !reflect.DeepEqual(got.Syscalls, want.Syscalls) || got.FailOpen != want.FailOpen ||
		got.Wrappers != want.Wrappers || !reflect.DeepEqual(got.Imports, want.Imports) {
		t.Fatalf("Lookup diverged from analysis: %+v vs %+v", got, want)
	}
	// Unknown hashes miss.
	if _, ok := b.Lookup("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("Lookup hit on unknown hash")
	}
}
