// Cveaudit: audit the six application stand-ins against the paper's
// CVE table (Table 5): for each application, which kernel CVEs would a
// B-Side-derived filter protect against?
package main

import (
	"fmt"
	"log"

	"bside/internal/corpus"
	"bside/internal/eval"
	"bside/internal/linux"
)

func main() {
	set, err := corpus.GenerateApps()
	if err != nil {
		log.Fatal(err)
	}
	apps, err := eval.EvalApps(set)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s", "CVE")
	for _, a := range apps {
		fmt.Printf("  %-9s", a.Name)
	}
	fmt.Println()

	protectedCount := make(map[string]int)
	for _, cve := range linux.CVEs {
		fmt.Printf("%-16s", cve.ID)
		for _, a := range apps {
			have := make(map[uint64]bool)
			for _, n := range a.BSide.Syscalls {
				have[n] = true
			}
			protected := false
			for _, s := range cve.Syscalls {
				if !have[s] {
					protected = true
					break
				}
			}
			mark := "exposed"
			if protected {
				mark = "blocked"
				protectedCount[a.Name]++
			}
			fmt.Printf("  %-9s", mark)
		}
		fmt.Println()
	}

	fmt.Printf("\n%-16s", "TOTAL blocked")
	for _, a := range apps {
		fmt.Printf("  %2d/%d     ", protectedCount[a.Name], len(linux.CVEs))
	}
	fmt.Println()
}
