// Filtergen: derive a seccomp-style allow-list policy for one of the
// application stand-ins, and compare the strictness against the two
// baseline tools.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"bside/internal/baseline"
	"bside/internal/corpus"
	"bside/internal/eval"
	"bside/internal/ident"
	"bside/internal/linux"
	"bside/internal/shared"
)

func main() {
	app := flag.String("app", "nginx", "application profile: redis, nginx, haproxy, memcached, lighttpd, sqlite")
	flag.Parse()

	set, err := corpus.GenerateApps()
	if err != nil {
		log.Fatal(err)
	}
	var target *corpus.Build
	for _, a := range set.Apps {
		if a.Profile.Name == *app {
			target = a
		}
	}
	if target == nil {
		log.Fatalf("unknown app %q", *app)
	}

	an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
	rep, err := an.Program(target.Bin)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s ==\n", *app)
	fmt.Printf("dynamic ground truth (emulated test run): %d syscalls\n", len(target.Truth))
	fmt.Printf("B-Side policy allows:                     %d syscalls\n", len(rep.Syscalls))
	if c, err := baseline.Chestnut(target.Bin); err == nil {
		fmt.Printf("Chestnut would allow:                     %d syscalls (fallback=%v)\n",
			len(c.Syscalls), c.FellBack)
	}
	if s, err := baseline.SysFilter(target.Bin); err == nil {
		fmt.Printf("SysFilter would allow:                    %d syscalls\n", len(s.Syscalls))
	}
	if fn := eval.FalseNegatives(rep.Syscalls, target.Truth); len(fn) > 0 {
		log.Fatalf("false negatives! %v", fn)
	}
	fmt.Printf("blocked dangerous syscalls: ")
	for _, d := range linux.Dangerous() {
		blocked := true
		for _, n := range rep.Syscalls {
			if n == d {
				blocked = false
			}
		}
		if blocked {
			fmt.Printf("%s ", linux.Name(d))
		}
	}
	fmt.Println()

	policy := struct {
		DefaultAction string   `json:"defaultAction"`
		Allowed       []string `json:"allowedSyscalls"`
	}{DefaultAction: "SCMP_ACT_ERRNO"}
	for _, n := range rep.Syscalls {
		policy.Allowed = append(policy.Allowed, linux.Name(n))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fmt.Println("\nseccomp-style policy:")
	if err := enc.Encode(policy); err != nil {
		log.Fatal(err)
	}
}
