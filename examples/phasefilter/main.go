// Phasefilter: extract the execution-phase automaton of the nginx-like
// application (§4.7/§5.4 of the paper) and print per-phase allow lists
// with their strictness gain over a whole-lifetime policy.
package main

import (
	"fmt"
	"log"

	"bside/internal/corpus"
	"bside/internal/eval"
	"bside/internal/phases"
)

func main() {
	set, err := corpus.GenerateApps()
	if err != nil {
		log.Fatal(err)
	}
	apps, err := eval.EvalApps(set)
	if err != nil {
		log.Fatal(err)
	}
	var nginx *eval.AppEval
	for _, a := range apps {
		if a.Name == "nginx" {
			nginx = a
		}
	}

	total := len(nginx.BSide.Syscalls)
	fmt.Printf("nginx-like binary: %d syscalls identified over the whole lifetime\n\n", total)

	for _, conf := range []struct {
		name string
		cfg  phases.Config
	}{
		{"without back-propagation (kernel-assisted enforcement)", phases.Config{}},
		{"with back-propagation (plain seccomp)", phases.Config{BackPropagate: true}},
	} {
		aut, err := phases.Detect(phases.Input{
			Graph: nginx.Report.Graph,
			Emits: nginx.Report.Emits(),
		}, conf.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", conf.name)
		fmt.Printf("%d phases (%d DFA states before merging)\n", len(aut.Phases), aut.DFAStates)
		for _, ph := range aut.Phases {
			gain := 100 * (1 - float64(len(ph.Allowed))/float64(total))
			fmt.Printf("  phase %2d: %3d/%d syscalls allowed (%.0f%% stricter), %5d bytes of code, %d transitions\n",
				ph.ID, len(ph.Allowed), total, gain, ph.CodeSize, len(ph.Transitions))
		}
		fmt.Println()
	}
}
