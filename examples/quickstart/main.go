// Quickstart: assemble a tiny program in memory, wrap it in an ELF
// image, and identify its system calls with the public API.
package main

import (
	"fmt"
	"log"

	"bside"
	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/x86"
)

func main() {
	// A small program: write(2) through a stack-carried number (the
	// pattern use-define-chain tools cannot track), then exit(2).
	b := asm.New()
	b.Func("_start")
	b.SubRegImm(x86.RSP, 16)
	b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 1) // write
	b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1})
	b.Syscall()
	b.AddRegImm(x86.RSP, 16)
	b.MovRegImm32(x86.RAX, 60) // exit
	b.Syscall()
	b.Label("__code_end")

	img, syms, err := b.Finalize(0x400000)
	if err != nil {
		log.Fatal(err)
	}
	data, err := elff.Write(elff.Spec{
		Kind:     elff.KindStatic,
		Base:     0x400000,
		Entry:    syms["_start"],
		Blob:     img,
		CodeSize: syms["__code_end"] - 0x400000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Analyze it.
	res, err := bside.NewAnalyzer(bside.Options{}).AnalyzeBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified %d system calls:\n", len(res.Syscalls))
	for i, n := range res.Syscalls {
		fmt.Printf("  %3d %s\n", n, res.Names()[i])
	}
}
