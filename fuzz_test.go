package bside_test

import (
	"path/filepath"
	"testing"

	"bside/internal/elff"
	"bside/internal/fuzzer"
)

// TestFuzzHarnessPublicAPI runs a slice of the randomized corpus
// harness at the top level: the oracle drives the analyzer exclusively
// through the public bside API (AnalyzeFile, AnalyzeAll, Options), so
// this is the library-surface counterpart of the deeper run in
// internal/fuzzer. A violation here is a user-visible contract break.
func TestFuzzHarnessPublicAPI(t *testing.T) {
	dir := t.TempDir()
	uni, err := fuzzer.NewUniverse(filepath.Join(dir, "libs"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := fuzzer.New(fuzzer.Options{Dir: dir, Universe: uni})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2001); seed <= 2008; seed++ {
		v := o.Check(fuzzer.Gen(seed))
		if !v.OK() {
			t.Errorf("seed %d (%s): err=%q violations=%v", seed, v.Kind, v.Err, v.Violations)
		}
	}
}

// TestFuzzGeneratorDiversity guards the generator against silently
// collapsing: across a modest seed range it must keep producing every
// binary kind and every composition feature the corpus supports.
func TestFuzzGeneratorDiversity(t *testing.T) {
	counts := map[string]int{}
	for seed := int64(1); seed <= 300; seed++ {
		p := fuzzer.Gen(seed).Profile
		switch {
		case p.StaticPIE:
			counts["static-pie"]++
		case p.Kind == elff.KindStatic:
			counts["static"]++
		case p.Kind == elff.KindDynamic:
			counts["dynamic"]++
		}
		if p.WrapperDepth > 0 && p.HotWrapper > 0 {
			counts["wrapper-chain"]++
		}
		if p.TableHandlers > 0 {
			counts["table-handler"]++
		}
		if len(p.GraphLibs) > 0 {
			counts["lib-graph"]++
		}
		if p.HotDeep > 0 {
			counts["deep-site"]++
		}
		if p.ColdDirect+p.ColdWrapper > 0 {
			counts["dead-code"]++
		}
		if p.UseLibcWrapper {
			counts["libc-wrapper"]++
		}
		if p.HotStack > 0 || p.StackedTruth > 0 {
			counts["stack-carried"]++
		}
	}
	for _, feature := range []string{
		"static", "dynamic", "static-pie", "wrapper-chain", "table-handler",
		"lib-graph", "deep-site", "dead-code", "libc-wrapper", "stack-carried",
	} {
		if counts[feature] < 10 {
			t.Errorf("feature %q appears only %d times in 300 seeds — generator coverage collapsed",
				feature, counts[feature])
		}
	}
}
