module bside

go 1.22
