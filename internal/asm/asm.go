// Package asm provides a small two-pass x86-64 assembler used to
// synthesize the machine code analyzed and executed by this repository.
// It emits exactly the encodings understood by internal/x86's decoder;
// the two packages are validated against each other with round-trip
// property tests.
package asm

import (
	"encoding/binary"
	"fmt"

	"bside/internal/x86"
)

// fixupKind distinguishes relocation styles.
type fixupKind uint8

const (
	fixRel32 fixupKind = iota // rel32 branch / RIP-relative displacement
	fixAbs64                  // absolute 8-byte address (data quads)
)

type fixup struct {
	kind  fixupKind
	off   int // offset of the 4- or 8-byte field within the image
	end   int // offset of the end of the instruction (rel32 anchor)
	label string
}

// Builder assembles a single contiguous image (code followed by any data
// the caller emits). The zero value is ready to use.
type Builder struct {
	buf    []byte
	labels map[string]int
	fixups []fixup
	funcs  []string
	autoN  int
	err    error
}

// New returns an empty Builder.
func New() *Builder {
	return &Builder{labels: make(map[string]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

// Offset returns the current image offset.
func (b *Builder) Offset() int { return len(b.buf) }

// Label defines name at the current offset.
func (b *Builder) Label(name string) {
	if b.labels == nil {
		b.labels = make(map[string]int)
	}
	if _, dup := b.labels[name]; dup {
		b.fail("asm: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.buf)
}

// AutoLabel generates a unique label with the given prefix and defines it
// at the current offset.
func (b *Builder) AutoLabel(prefix string) string {
	b.autoN++
	name := fmt.Sprintf("%s$%d", prefix, b.autoN)
	b.Label(name)
	return name
}

// Func defines name at the current offset like Label and additionally
// records it as a function symbol. Callers that build symbol tables use
// FuncNames to emit only function symbols, matching how real symtabs
// carry STT_FUNC entries but not local branch labels.
func (b *Builder) Func(name string) {
	b.Label(name)
	b.funcs = append(b.funcs, name)
}

// FuncNames returns the labels declared with Func, in declaration order.
func (b *Builder) FuncNames() []string {
	return append([]string(nil), b.funcs...)
}

// Raw appends raw bytes.
func (b *Builder) Raw(bytes ...byte) { b.buf = append(b.buf, bytes...) }

// Align pads with zero bytes to the given alignment.
func (b *Builder) Align(n int) {
	for len(b.buf)%n != 0 {
		b.buf = append(b.buf, 0)
	}
}

// Quad emits an 8-byte little-endian literal (data).
func (b *Builder) Quad(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.buf = append(b.buf, tmp[:]...)
}

// QuadLabel emits an 8-byte slot holding the absolute address of label.
func (b *Builder) QuadLabel(label string) {
	b.fixups = append(b.fixups, fixup{kind: fixAbs64, off: len(b.buf), label: label})
	b.Quad(0)
}

// Zero emits n zero bytes.
func (b *Builder) Zero(n int) { b.buf = append(b.buf, make([]byte, n)...) }

// Finalize resolves all label references assuming the image is loaded at
// base, and returns the image plus the symbol table (label -> absolute
// virtual address).
func (b *Builder) Finalize(base uint64) ([]byte, map[string]uint64, error) {
	if b.err != nil {
		return nil, nil, b.err
	}
	for _, f := range b.fixups {
		off, ok := b.labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		switch f.kind {
		case fixRel32:
			rel := int64(off) - int64(f.end)
			if rel > 0x7FFFFFFF || rel < -0x80000000 {
				return nil, nil, fmt.Errorf("asm: rel32 overflow to %q", f.label)
			}
			binary.LittleEndian.PutUint32(b.buf[f.off:], uint32(int32(rel)))
		case fixAbs64:
			binary.LittleEndian.PutUint64(b.buf[f.off:], base+uint64(off))
		}
	}
	syms := make(map[string]uint64, len(b.labels))
	for name, off := range b.labels {
		syms[name] = base + uint64(off)
	}
	return b.buf, syms, nil
}

// --- encoding helpers ---------------------------------------------------

const (
	rexBase = 0x40
	rexW    = 0x08
	rexR    = 0x04
	rexX    = 0x02
	rexB    = 0x01
)

// emitRM writes [REX] opcode ModRM(+SIB,+disp) for a reg-field value and
// an r/m operand that is a register. w selects REX.W.
func (b *Builder) emitRMReg(opcode byte, regField byte, rm x86.Reg, w bool) {
	rex := byte(rexBase)
	if w {
		rex |= rexW
	}
	if regField >= 8 {
		rex |= rexR
	}
	if rm >= 8 {
		rex |= rexB
	}
	if rex != rexBase || w {
		b.buf = append(b.buf, rex)
	}
	b.buf = append(b.buf, opcode, 0xC0|(regField&7)<<3|byte(rm)&7)
}

// emitRMMem writes [REX] opcode ModRM+SIB+disp for a memory r/m operand.
// If ripLabel is non-empty the operand is RIP-relative to that label and
// a fixup is recorded (m is ignored except for validation).
func (b *Builder) emitRMMem(opcode byte, regField byte, m x86.Mem, w bool, ripLabel string) {
	rex := byte(rexBase)
	if w {
		rex |= rexW
	}
	if regField >= 8 {
		rex |= rexR
	}
	if ripLabel == "" {
		if m.Base != x86.RegNone && m.Base != x86.RIP && m.Base >= 8 {
			rex |= rexB
		}
		if m.Index != x86.RegNone && m.Index >= 8 {
			rex |= rexX
		}
	}
	if rex != rexBase || w {
		b.buf = append(b.buf, rex)
	}
	b.buf = append(b.buf, opcode)

	if ripLabel != "" || m.Base == x86.RIP {
		// mod=00 rm=101 disp32 (RIP-relative)
		b.buf = append(b.buf, 0x00|(regField&7)<<3|0x05)
		if ripLabel != "" {
			b.fixups = append(b.fixups, fixup{kind: fixRel32, off: len(b.buf), end: len(b.buf) + 4, label: ripLabel})
			b.buf = append(b.buf, 0, 0, 0, 0)
		} else {
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], uint32(m.Disp))
			b.buf = append(b.buf, tmp[:]...)
		}
		return
	}

	needSIB := m.Index != x86.RegNone || m.Base == x86.RSP || m.Base == x86.R12 || m.Base == x86.RegNone
	baseLow := byte(0)
	if m.Base != x86.RegNone {
		baseLow = byte(m.Base) & 7
	}

	// Choose mod / displacement width.
	var mod byte
	switch {
	case m.Base == x86.RegNone:
		mod = 0 // disp32, SIB base=101
	case m.Disp == 0 && baseLow != 5: // rbp/r13 require an explicit disp
		mod = 0
	case m.Disp >= -128 && m.Disp <= 127:
		mod = 1
	default:
		mod = 2
	}

	if needSIB {
		b.buf = append(b.buf, mod<<6|(regField&7)<<3|0x04)
		scaleBits := byte(0)
		switch m.Scale {
		case 0, 1:
			scaleBits = 0
		case 2:
			scaleBits = 1
		case 4:
			scaleBits = 2
		case 8:
			scaleBits = 3
		default:
			b.fail("asm: bad scale %d", m.Scale)
		}
		idx := byte(4) // none
		if m.Index != x86.RegNone {
			if m.Index == x86.RSP {
				b.fail("asm: rsp cannot be an index register")
			}
			idx = byte(m.Index) & 7
		}
		base := byte(5)
		if m.Base != x86.RegNone {
			base = baseLow
		} else {
			mod = 0 // force disp32-no-base form
		}
		b.buf = append(b.buf, scaleBits<<6|idx<<3|base)
		if m.Base == x86.RegNone {
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], uint32(m.Disp))
			b.buf = append(b.buf, tmp[:]...)
			return
		}
	} else {
		b.buf = append(b.buf, mod<<6|(regField&7)<<3|baseLow)
	}

	switch mod {
	case 1:
		b.buf = append(b.buf, byte(int8(m.Disp)))
	case 2:
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(m.Disp))
		b.buf = append(b.buf, tmp[:]...)
	}
}

func (b *Builder) imm32(v int32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(v))
	b.buf = append(b.buf, tmp[:]...)
}

// --- data movement -------------------------------------------------------

// MovRegImm32 emits mov r32, imm32 (zero-extending into the 64-bit reg).
func (b *Builder) MovRegImm32(dst x86.Reg, imm uint32) {
	if dst >= 8 {
		b.buf = append(b.buf, rexBase|rexB)
	}
	b.buf = append(b.buf, 0xB8+byte(dst)&7)
	b.imm32(int32(imm))
}

// MovRegImm64 emits movabs r64, imm64.
func (b *Builder) MovRegImm64(dst x86.Reg, imm uint64) {
	rex := byte(rexBase | rexW)
	if dst >= 8 {
		rex |= rexB
	}
	b.buf = append(b.buf, rex, 0xB8+byte(dst)&7)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], imm)
	b.buf = append(b.buf, tmp[:]...)
}

// MovRegReg emits mov r64, r64.
func (b *Builder) MovRegReg(dst, src x86.Reg) { b.emitRMReg(0x89, byte(src), dst, true) }

// MovRegMem emits mov r64, [mem].
func (b *Builder) MovRegMem(dst x86.Reg, m x86.Mem) { b.emitRMMem(0x8B, byte(dst), m, true, "") }

// MovMemReg emits mov [mem], r64.
func (b *Builder) MovMemReg(m x86.Mem, src x86.Reg) { b.emitRMMem(0x89, byte(src), m, true, "") }

// MovMemImm32 emits mov qword [mem], imm32 (sign-extended).
func (b *Builder) MovMemImm32(m x86.Mem, imm int32) {
	b.emitRMMem(0xC7, 0, m, true, "")
	b.imm32(imm)
}

// MovRegMemRIP emits mov r64, [rip+label].
func (b *Builder) MovRegMemRIP(dst x86.Reg, label string) {
	b.emitRMMem(0x8B, byte(dst), x86.Mem{}, true, label)
}

// MovMemRIPReg emits mov [rip+label], r64.
func (b *Builder) MovMemRIPReg(label string, src x86.Reg) {
	b.emitRMMem(0x89, byte(src), x86.Mem{}, true, label)
}

// Lea emits lea r64, [rip+label].
func (b *Builder) Lea(dst x86.Reg, label string) {
	b.emitRMMem(0x8D, byte(dst), x86.Mem{}, true, label)
}

// LeaMem emits lea r64, [mem].
func (b *Builder) LeaMem(dst x86.Reg, m x86.Mem) { b.emitRMMem(0x8D, byte(dst), m, true, "") }

// --- ALU -----------------------------------------------------------------

func (b *Builder) grp1Imm(digit byte, r x86.Reg, imm int32) {
	if imm >= -128 && imm <= 127 {
		b.emitRMReg(0x83, digit, r, true)
		b.buf = append(b.buf, byte(int8(imm)))
		return
	}
	b.emitRMReg(0x81, digit, r, true)
	b.imm32(imm)
}

// AddRegImm emits add r64, imm.
func (b *Builder) AddRegImm(r x86.Reg, imm int32) { b.grp1Imm(0, r, imm) }

// OrRegImm emits or r64, imm.
func (b *Builder) OrRegImm(r x86.Reg, imm int32) { b.grp1Imm(1, r, imm) }

// AndRegImm emits and r64, imm.
func (b *Builder) AndRegImm(r x86.Reg, imm int32) { b.grp1Imm(4, r, imm) }

// SubRegImm emits sub r64, imm.
func (b *Builder) SubRegImm(r x86.Reg, imm int32) { b.grp1Imm(5, r, imm) }

// CmpRegImm emits cmp r64, imm.
func (b *Builder) CmpRegImm(r x86.Reg, imm int32) { b.grp1Imm(7, r, imm) }

// AddRegReg emits add r64, r64.
func (b *Builder) AddRegReg(dst, src x86.Reg) { b.emitRMReg(0x01, byte(src), dst, true) }

// SubRegReg emits sub r64, r64.
func (b *Builder) SubRegReg(dst, src x86.Reg) { b.emitRMReg(0x29, byte(src), dst, true) }

// XorRegReg emits xor r64, r64.
func (b *Builder) XorRegReg(dst, src x86.Reg) { b.emitRMReg(0x31, byte(src), dst, true) }

// XorRegReg32 emits xor r32, r32 (the common zeroing idiom).
func (b *Builder) XorRegReg32(dst, src x86.Reg) { b.emitRMReg(0x31, byte(src), dst, false) }

// TestRegReg emits test r64, r64.
func (b *Builder) TestRegReg(a, r x86.Reg) { b.emitRMReg(0x85, byte(r), a, true) }

// CmpRegReg emits cmp r64, r64.
func (b *Builder) CmpRegReg(a, r x86.Reg) { b.emitRMReg(0x39, byte(r), a, true) }

// CmpMemImm is not supported by the subset; compare via a register.

// ShlRegImm emits shl r64, imm8.
func (b *Builder) ShlRegImm(r x86.Reg, n uint8) {
	b.emitRMReg(0xC1, 4, r, true)
	b.buf = append(b.buf, n)
}

// ShrRegImm emits shr r64, imm8.
func (b *Builder) ShrRegImm(r x86.Reg, n uint8) {
	b.emitRMReg(0xC1, 5, r, true)
	b.buf = append(b.buf, n)
}

// IncReg emits inc r64.
func (b *Builder) IncReg(r x86.Reg) { b.emitRMReg(0xFF, 0, r, true) }

// DecReg emits dec r64.
func (b *Builder) DecReg(r x86.Reg) { b.emitRMReg(0xFF, 1, r, true) }

// --- stack ----------------------------------------------------------------

// Push emits push r64.
func (b *Builder) Push(r x86.Reg) {
	if r >= 8 {
		b.buf = append(b.buf, rexBase|rexB)
	}
	b.buf = append(b.buf, 0x50+byte(r)&7)
}

// Pop emits pop r64.
func (b *Builder) Pop(r x86.Reg) {
	if r >= 8 {
		b.buf = append(b.buf, rexBase|rexB)
	}
	b.buf = append(b.buf, 0x58+byte(r)&7)
}

// PushImm32 emits push imm32.
func (b *Builder) PushImm32(v int32) {
	b.buf = append(b.buf, 0x68)
	b.imm32(v)
}

// --- control flow ----------------------------------------------------------

func (b *Builder) rel32To(label string) {
	b.fixups = append(b.fixups, fixup{kind: fixRel32, off: len(b.buf), end: len(b.buf) + 4, label: label})
	b.buf = append(b.buf, 0, 0, 0, 0)
}

// CallLabel emits call rel32 to label.
func (b *Builder) CallLabel(label string) {
	b.buf = append(b.buf, 0xE8)
	b.rel32To(label)
}

// CallReg emits call r64.
func (b *Builder) CallReg(r x86.Reg) { b.emitRMReg(0xFF, 2, r, false) }

// CallMemRIP emits call qword [rip+label] (PLT-style import call).
func (b *Builder) CallMemRIP(label string) { b.emitRMMem(0xFF, 2, x86.Mem{}, false, label) }

// JmpLabel emits jmp rel32 to label.
func (b *Builder) JmpLabel(label string) {
	b.buf = append(b.buf, 0xE9)
	b.rel32To(label)
}

// JmpReg emits jmp r64.
func (b *Builder) JmpReg(r x86.Reg) { b.emitRMReg(0xFF, 4, r, false) }

// JmpMemRIP emits jmp qword [rip+label] (import stub tail jump).
func (b *Builder) JmpMemRIP(label string) { b.emitRMMem(0xFF, 4, x86.Mem{}, false, label) }

// Jcc emits a conditional rel32 jump to label.
func (b *Builder) Jcc(c x86.Cond, label string) {
	b.buf = append(b.buf, 0x0F, 0x80+byte(c))
	b.rel32To(label)
}

// --- misc -------------------------------------------------------------------

// Ret emits ret.
func (b *Builder) Ret() { b.buf = append(b.buf, 0xC3) }

// Leave emits leave.
func (b *Builder) Leave() { b.buf = append(b.buf, 0xC9) }

// Syscall emits syscall.
func (b *Builder) Syscall() { b.buf = append(b.buf, 0x0F, 0x05) }

// Nop emits nop.
func (b *Builder) Nop() { b.buf = append(b.buf, 0x90) }

// Endbr64 emits endbr64.
func (b *Builder) Endbr64() { b.buf = append(b.buf, 0xF3, 0x0F, 0x1E, 0xFA) }

// Ud2 emits ud2.
func (b *Builder) Ud2() { b.buf = append(b.buf, 0x0F, 0x0B) }

// Int3 emits int3.
func (b *Builder) Int3() { b.buf = append(b.buf, 0xCC) }

// Hlt emits hlt.
func (b *Builder) Hlt() { b.buf = append(b.buf, 0xF4) }
