package asm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bside/internal/x86"
)

// decodeOne assembles via fn, finalizes at base 0x400000 and decodes the
// first instruction.
func decodeOne(t *testing.T, fn func(b *Builder)) x86.Inst {
	t.Helper()
	b := New()
	fn(b)
	img, _, err := b.Finalize(0x400000)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	inst, err := x86.Decode(img, 0x400000)
	if err != nil {
		t.Fatalf("decode %x: %v", img, err)
	}
	if int(inst.Len) != len(img) {
		t.Fatalf("decode consumed %d of %d bytes (%x)", inst.Len, len(img), img)
	}
	return inst
}

func TestRoundTripMovImm(t *testing.T) {
	inst := decodeOne(t, func(b *Builder) { b.MovRegImm32(x86.RAX, 231) })
	if inst.Op != x86.OpMov || inst.Dst.Reg != x86.RAX || inst.Src.Imm != 231 {
		t.Fatalf("got %v", inst)
	}
	inst = decodeOne(t, func(b *Builder) { b.MovRegImm32(x86.R11, 0xDEADBEEF) })
	if inst.Dst.Reg != x86.R11 || uint32(inst.Src.Imm) != 0xDEADBEEF {
		t.Fatalf("got %v", inst)
	}
	if inst.Src.Imm != int64(uint32(0xDEADBEEF)) {
		t.Fatalf("imm32 must be zero-extended, got %#x", inst.Src.Imm)
	}
	inst = decodeOne(t, func(b *Builder) { b.MovRegImm64(x86.R9, 0x1122334455667788) })
	if inst.Op != x86.OpMov || inst.Dst.Reg != x86.R9 || uint64(inst.Src.Imm) != 0x1122334455667788 {
		t.Fatalf("got %v", inst)
	}
}

func TestRoundTripRegReg(t *testing.T) {
	cases := []struct {
		fn   func(b *Builder)
		op   x86.Op
		dst  x86.Reg
		src  x86.Reg
		size uint8
	}{
		{func(b *Builder) { b.MovRegReg(x86.RAX, x86.RDI) }, x86.OpMov, x86.RAX, x86.RDI, 8},
		{func(b *Builder) { b.MovRegReg(x86.R15, x86.R8) }, x86.OpMov, x86.R15, x86.R8, 8},
		{func(b *Builder) { b.XorRegReg(x86.RAX, x86.RAX) }, x86.OpXor, x86.RAX, x86.RAX, 8},
		{func(b *Builder) { b.XorRegReg32(x86.RAX, x86.RAX) }, x86.OpXor, x86.RAX, x86.RAX, 4},
		{func(b *Builder) { b.AddRegReg(x86.RBX, x86.RCX) }, x86.OpAdd, x86.RBX, x86.RCX, 8},
		{func(b *Builder) { b.SubRegReg(x86.RSP, x86.RDX) }, x86.OpSub, x86.RSP, x86.RDX, 8},
		{func(b *Builder) { b.TestRegReg(x86.RDI, x86.RDI) }, x86.OpTest, x86.RDI, x86.RDI, 8},
		{func(b *Builder) { b.CmpRegReg(x86.R12, x86.RSI) }, x86.OpCmp, x86.R12, x86.RSI, 8},
	}
	for i, tc := range cases {
		inst := decodeOne(t, tc.fn)
		if inst.Op != tc.op || inst.Dst.Reg != tc.dst || inst.Src.Reg != tc.src || inst.OpSize != tc.size {
			t.Errorf("case %d: got %v (size %d)", i, inst, inst.OpSize)
		}
	}
}

func TestRoundTripMemForms(t *testing.T) {
	mems := []x86.Mem{
		{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8},
		{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 0},
		{Base: x86.RBP, Index: x86.RegNone, Scale: 1, Disp: -16},
		{Base: x86.RBP, Index: x86.RegNone, Scale: 1, Disp: 0},
		{Base: x86.R13, Index: x86.RegNone, Scale: 1, Disp: 0},
		{Base: x86.R12, Index: x86.RegNone, Scale: 1, Disp: 4},
		{Base: x86.RAX, Index: x86.RCX, Scale: 8, Disp: 0x40},
		{Base: x86.RBX, Index: x86.R14, Scale: 4, Disp: -300},
		{Base: x86.RegNone, Index: x86.RegNone, Scale: 1, Disp: 0x601000},
		{Base: x86.RDI, Index: x86.RegNone, Scale: 1, Disp: 999},
	}
	for _, m := range mems {
		inst := decodeOne(t, func(b *Builder) { b.MovRegMem(x86.RAX, m) })
		if inst.Op != x86.OpMov || inst.Dst.Reg != x86.RAX || inst.Src.Kind != x86.KindMem {
			t.Fatalf("mem %v: got %v", m, inst)
		}
		got := inst.Src.Mem
		if got.Base != m.Base || got.Index != m.Index || got.Disp != m.Disp {
			t.Errorf("mem %v: decoded %v", m, got)
		}
		if m.Index != x86.RegNone && got.Scale != m.Scale {
			t.Errorf("mem %v: decoded scale %d", m, got.Scale)
		}
		// Store direction.
		inst = decodeOne(t, func(b *Builder) { b.MovMemReg(m, x86.RDX) })
		if inst.Op != x86.OpMov || inst.Dst.Kind != x86.KindMem || inst.Src.Reg != x86.RDX {
			t.Errorf("store %v: got %v", m, inst)
		}
		// Immediate store.
		inst = decodeOne(t, func(b *Builder) { b.MovMemImm32(m, -42) })
		if inst.Op != x86.OpMov || inst.Dst.Kind != x86.KindMem || inst.Src.Imm != -42 {
			t.Errorf("imm store %v: got %v", m, inst)
		}
	}
}

func TestRoundTripRIPRelative(t *testing.T) {
	b := New()
	b.Lea(x86.RDI, "data")
	b.MovRegMemRIP(x86.RAX, "data")
	b.CallMemRIP("slot")
	b.JmpMemRIP("slot")
	b.Label("data")
	b.Quad(0x1234)
	b.Label("slot")
	b.QuadLabel("data")
	img, syms, err := b.Finalize(0x400000)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}

	lea, err := x86.Decode(img, 0x400000)
	if err != nil {
		t.Fatalf("decode lea: %v", err)
	}
	if lea.Op != x86.OpLea || lea.Dst.Reg != x86.RDI {
		t.Fatalf("lea: %v", lea)
	}
	ea, ok := lea.MemEA(lea.Src)
	if !ok || ea != syms["data"] {
		t.Fatalf("lea EA %#x want %#x", ea, syms["data"])
	}

	mov, err := x86.Decode(img[lea.Len:], 0x400000+uint64(lea.Len))
	if err != nil {
		t.Fatalf("decode mov: %v", err)
	}
	if ea, ok := mov.MemEA(mov.Src); !ok || ea != syms["data"] {
		t.Fatalf("mov EA %#x want %#x", ea, syms["data"])
	}

	call, err := x86.Decode(img[lea.Len+mov.Len:], 0x400000+uint64(lea.Len)+uint64(mov.Len))
	if err != nil {
		t.Fatalf("decode call: %v", err)
	}
	if call.Op != x86.OpCallInd {
		t.Fatalf("call: %v", call)
	}
	if ea, ok := call.MemEA(call.Dst); !ok || ea != syms["slot"] {
		t.Fatalf("call EA %#x want %#x", ea, syms["slot"])
	}
}

func TestRoundTripBranches(t *testing.T) {
	b := New()
	b.Label("top")
	b.CmpRegImm(x86.RCX, 10)
	b.Jcc(x86.CondL, "top")
	b.CallLabel("fn")
	b.JmpLabel("end")
	b.Label("fn")
	b.Ret()
	b.Label("end")
	b.Syscall()
	img, syms, err := b.Finalize(0x1000)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	var insts []x86.Inst
	for off := 0; off < len(img); {
		inst, err := x86.Decode(img[off:], 0x1000+uint64(off))
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		insts = append(insts, inst)
		off += int(inst.Len)
	}
	if insts[1].Op != x86.OpJcc || insts[1].Cond != x86.CondL {
		t.Fatalf("jcc: %v", insts[1])
	}
	if tgt, _ := insts[1].BranchTarget(); tgt != syms["top"] {
		t.Fatalf("jcc target %#x want %#x", tgt, syms["top"])
	}
	if tgt, _ := insts[2].BranchTarget(); tgt != syms["fn"] {
		t.Fatalf("call target %#x want %#x", tgt, syms["fn"])
	}
	if tgt, _ := insts[3].BranchTarget(); tgt != syms["end"] {
		t.Fatalf("jmp target %#x want %#x", tgt, syms["end"])
	}
	last := insts[len(insts)-1]
	if last.Op != x86.OpSyscall {
		t.Fatalf("last: %v", last)
	}
}

func TestRoundTripStackAndALU(t *testing.T) {
	ops := []struct {
		fn func(b *Builder)
		op x86.Op
	}{
		{func(b *Builder) { b.Push(x86.RBP) }, x86.OpPush},
		{func(b *Builder) { b.Push(x86.R15) }, x86.OpPush},
		{func(b *Builder) { b.Pop(x86.RBP) }, x86.OpPop},
		{func(b *Builder) { b.PushImm32(512) }, x86.OpPush},
		{func(b *Builder) { b.AddRegImm(x86.RSP, 32) }, x86.OpAdd},
		{func(b *Builder) { b.SubRegImm(x86.RSP, 1000) }, x86.OpSub},
		{func(b *Builder) { b.CmpRegImm(x86.RAX, 3) }, x86.OpCmp},
		{func(b *Builder) { b.AndRegImm(x86.RDX, 0xFF) }, x86.OpAnd},
		{func(b *Builder) { b.OrRegImm(x86.RDX, 0x10) }, x86.OpOr},
		{func(b *Builder) { b.ShlRegImm(x86.RAX, 3) }, x86.OpShl},
		{func(b *Builder) { b.ShrRegImm(x86.RAX, 1) }, x86.OpShr},
		{func(b *Builder) { b.IncReg(x86.RCX) }, x86.OpInc},
		{func(b *Builder) { b.DecReg(x86.RCX) }, x86.OpDec},
		{func(b *Builder) { b.Ret() }, x86.OpRet},
		{func(b *Builder) { b.Leave() }, x86.OpLeave},
		{func(b *Builder) { b.Nop() }, x86.OpNop},
		{func(b *Builder) { b.Endbr64() }, x86.OpEndbr64},
		{func(b *Builder) { b.Ud2() }, x86.OpUd2},
		{func(b *Builder) { b.Int3() }, x86.OpInt3},
		{func(b *Builder) { b.Hlt() }, x86.OpHlt},
		{func(b *Builder) { b.Syscall() }, x86.OpSyscall},
		{func(b *Builder) { b.CallReg(x86.RAX) }, x86.OpCallInd},
		{func(b *Builder) { b.JmpReg(x86.R10) }, x86.OpJmpInd},
	}
	for i, tc := range ops {
		inst := decodeOne(t, tc.fn)
		if inst.Op != tc.op {
			t.Errorf("case %d: want %v got %v", i, tc.op, inst)
		}
	}
}

// TestQuickMemRoundTrip drives random addressing forms through the
// encoder and decoder and checks they agree.
func TestQuickMemRoundTrip(t *testing.T) {
	bases := []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RSP, x86.RBP, x86.RSI, x86.RDI,
		x86.R8, x86.R12, x86.R13, x86.R15, x86.RegNone}
	indexes := []x86.Reg{x86.RegNone, x86.RAX, x86.RCX, x86.RBX, x86.RBP, x86.RSI, x86.R9, x86.R14}
	scales := []uint8{1, 2, 4, 8}
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RSI, x86.R8, x86.R13}

	f := func(bi, ii, si, ri int, disp int32) bool {
		m := x86.Mem{
			Base:  bases[abs(bi)%len(bases)],
			Index: indexes[abs(ii)%len(indexes)],
			Scale: scales[abs(si)%len(scales)],
			Disp:  disp,
		}
		if m.Base == x86.RegNone && m.Index == x86.RegNone && disp < 0 {
			// Absolute addressing with negative disp is not meaningful.
			m.Disp = -disp
		}
		r := regs[abs(ri)%len(regs)]
		b := New()
		b.MovRegMem(r, m)
		img, _, err := b.Finalize(0)
		if err != nil {
			return false
		}
		inst, err := x86.Decode(img, 0)
		if err != nil || int(inst.Len) != len(img) {
			return false
		}
		got := inst.Src.Mem
		if inst.Dst.Reg != r || got.Base != m.Base || got.Index != m.Index || got.Disp != m.Disp {
			return false
		}
		if m.Index != x86.RegNone && got.Scale != m.Scale {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}

func TestFinalizeErrors(t *testing.T) {
	b := New()
	b.JmpLabel("missing")
	if _, _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for undefined label")
	}
	b = New()
	b.Label("x")
	b.Label("x")
	b.Ret()
	if _, _, err := b.Finalize(0); err == nil {
		t.Fatal("want error for duplicate label")
	}
}
