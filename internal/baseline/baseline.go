// Package baseline reimplements the two state-of-the-art competitors the
// paper evaluates against (§3), faithfully reproducing their published
// mechanisms and limitations:
//
//   - Chestnut (Canella et al., CCSW'21): backward scan over at most 30
//     instructions, registers only, a hardcoded special case for the
//     glibc syscall() wrapper, a permissive fallback set when a site
//     cannot be resolved, and a loader that only handles dynamic (PIE)
//     objects — hence its near-total failure on static executables.
//
//   - SysFilter (DeMarinis et al., RAID'20): intra-procedural use-define
//     chains over registers (no memory tracking — wrapper-carried
//     syscalls are silently missed, the paper's main source of its
//     false negatives), function boundaries recovered from unwind
//     information, and no support for non-PIC executables.
package baseline

import (
	"errors"
	"sort"

	"bside/internal/cfg"
	"bside/internal/elff"
)

// Unsupported-input errors (Table 2's failure modes).
var (
	// ErrStaticUnsupported is returned by both tools on ET_EXEC images.
	ErrStaticUnsupported = errors.New("baseline: static (non-PIC) executables unsupported")
	// ErrNoUnwind is SysFilter's failure on binaries without unwind
	// metadata for function-boundary recovery.
	ErrNoUnwind = errors.New("baseline: no unwind information for function boundaries")
)

// Result is a baseline tool's output for one module.
type Result struct {
	// Syscalls is the identified set, sorted.
	Syscalls []uint64
	// SitesTotal and SitesResolved count syscall sites seen/resolved.
	SitesTotal    int
	SitesResolved int
	// FellBack is set when the permissive fallback set was unioned in
	// (Chestnut only).
	FellBack bool
}

// recoverAll builds a CFG for baseline use. Baselines scan every
// syscall site in the module (no reachability pruning): that whole-image
// scope is one of their documented sources of overestimation.
func recoverAll(bin *elff.Binary, budget int) (*cfg.Graph, error) {
	extra := make([]uint64, 0, len(bin.Symbols))
	for _, addr := range bin.Symbols {
		extra = append(extra, addr)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return cfg.Recover(bin, cfg.Options{MaxInsns: budget, ExtraRoots: extra})
}

func sortedSet(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
