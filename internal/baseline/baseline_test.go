package baseline

import (
	"errors"
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// dynBin builds a dynamic (PIE-like) binary with unwind info.
func dynBin(t *testing.T, fn func(b *asm.Builder)) *elff.Binary {
	t.Helper()
	bin, _ := testbin.Build(t, elff.KindDynamic, fn, func(spec *elff.Spec, syms map[string]uint64) {
		spec.HasUnwind = true
	})
	return bin
}

func TestBothRefuseStatic(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
	}, nil)
	if _, err := Chestnut(bin); !errors.Is(err, ErrStaticUnsupported) {
		t.Errorf("chestnut: %v", err)
	}
	if _, err := SysFilter(bin); !errors.Is(err, ErrStaticUnsupported) {
		t.Errorf("sysfilter: %v", err)
	}
}

func TestSysFilterNeedsUnwind(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
	}, nil) // HasUnwind defaults to false
	if _, err := SysFilter(bin); !errors.Is(err, ErrNoUnwind) {
		t.Fatalf("want ErrNoUnwind, got %v", err)
	}
}

func TestSimpleSiteBothResolve(t *testing.T) {
	bin := dynBin(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	c, err := Chestnut(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Syscalls, []uint64{60}) || c.FellBack {
		t.Fatalf("chestnut: %v fellback=%v", c.Syscalls, c.FellBack)
	}
	s, err := SysFilter(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Syscalls, []uint64{60}) {
		t.Fatalf("sysfilter: %v", s.Syscalls)
	}
}

func TestChestnutWindowTooShort(t *testing.T) {
	// The immediate is more than 30 instructions before the syscall:
	// Chestnut falls back to its permissive set; SysFilter's use-define
	// chains still resolve it.
	bin := dynBin(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		for i := 0; i < 40; i++ {
			b.IncReg(x86.RBX)
		}
		b.Syscall()
		b.Ret()
	})
	c, err := Chestnut(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FellBack {
		t.Fatal("chestnut must fall back beyond its 30-insn window")
	}
	if len(c.Syscalls) != 270 {
		t.Fatalf("fallback size = %d, want 270", len(c.Syscalls))
	}
	s, err := SysFilter(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Syscalls, []uint64{2}) {
		t.Fatalf("sysfilter: %v", s.Syscalls)
	}
}

func TestWrapperMissedBySysFilter(t *testing.T) {
	// A register wrapper: SysFilter silently misses the values (false
	// negatives), Chestnut falls back (false positives).
	bin := dynBin(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 39)
		b.CallLabel("w")
		b.Ret()
		b.Func("w")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	s, err := SysFilter(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Syscalls) != 0 || s.SitesResolved != 0 {
		t.Fatalf("sysfilter should miss wrapper values: %v", s.Syscalls)
	}
	c, err := Chestnut(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FellBack {
		t.Fatal("chestnut must fall back on a non-glibc wrapper")
	}
}

func TestChestnutGlibcSpecialCase(t *testing.T) {
	// An export named exactly "syscall" triggers Binalyzer's hardcoded
	// wrapper handling: call sites with mov edi, imm resolve.
	bin, _ := testbin.Build(t, elff.KindShared, func(b *asm.Builder) {
		b.Func("user")
		b.MovRegImm32(x86.RDI, 41)
		b.CallLabel("syscall")
		b.Ret()
		b.Func("syscall")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.HasUnwind = true
		spec.Exports = []elff.Export{
			{Name: "user", Addr: syms["user"]},
			{Name: "syscall", Addr: syms["syscall"]},
		}
	})
	c, err := Chestnut(bin)
	if err != nil {
		t.Fatal(err)
	}
	if c.FellBack {
		t.Fatal("glibc wrapper case must not fall back")
	}
	if !reflect.DeepEqual(c.Syscalls, []uint64{41}) {
		t.Fatalf("chestnut: %v", c.Syscalls)
	}
}

func TestChestnutFallbackSetShape(t *testing.T) {
	fb := ChestnutFallback()
	if len(fb) != 270 {
		t.Fatalf("fallback size %d, want 270", len(fb))
	}
	inSet := make(map[uint64]bool, len(fb))
	for _, n := range fb {
		inSet[n] = true
	}
	if !inSet[59] || !inSet[0] || !inSet[60] {
		t.Fatal("fallback must keep common syscalls (read, execve, exit)")
	}
	if inSet[175] || inSet[154] {
		t.Fatal("fallback must exclude denylisted module/ldt syscalls")
	}
}
