package baseline

import (
	"sort"

	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/linux"
	"bside/internal/x86"
)

// chestnutScanWindow is the fixed backward-exploration depth of
// Chestnut's Binalyzer (the paper calls out that "the limited scope of
// the exploration (30 instructions) is not sufficient" for many
// binaries).
const chestnutScanWindow = 30

// ChestnutFallback returns the permissive set Chestnut unions in when a
// site cannot be resolved: everything except a fixed denylist of
// legacy, module-loading and scheduling-internals syscalls. The result
// has 270 entries, matching the ">268 identified" behaviour reported in
// §5.2.
func ChestnutFallback() []uint64 {
	denied := make(map[uint64]bool)
	for n := uint64(154); n <= 185; n++ { // modify_ldt .. security
		denied[n] = true
	}
	for n := uint64(205); n <= 216; n++ { // set_thread_area .. remap_file_pages
		denied[n] = true
	}
	for n := uint64(236); n <= 256; n++ { // vserver .. migrate_pages
		denied[n] = true
	}
	out := make([]uint64, 0, linux.TableSize-len(denied))
	for _, n := range linux.All() {
		if !denied[n] {
			out = append(out, n)
		}
	}
	return out
}

// Chestnut runs the Chestnut-like analysis on one module with the
// default disassembly budget.
func Chestnut(bin *elff.Binary) (*Result, error) {
	return ChestnutWithBudget(bin, 2_000_000)
}

// ChestnutWithBudget bounds the disassembly work (the Table 2 harness
// uses a budget that separates the corpus's failure classes).
func ChestnutWithBudget(bin *elff.Binary, maxInsns int) (*Result, error) {
	if bin.Kind == elff.KindStatic {
		// Binalyzer's loader handles dynamic objects only.
		return nil, ErrStaticUnsupported
	}
	g, err := recoverAll(bin, maxInsns)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	values := make(map[uint64]bool)
	fallback := func() {
		if !res.FellBack {
			for _, n := range ChestnutFallback() {
				values[n] = true
			}
			res.FellBack = true
		}
	}

	// Hardcoded glibc special case: a function exported exactly as
	// "syscall" gets its call sites scanned for `mov edi, imm`.
	glibcWrapper := uint64(0)
	if addr, ok := bin.ExportAddr("syscall"); ok {
		glibcWrapper = addr
	}

	for _, site := range g.SyscallBlocks() {
		res.SitesTotal++
		fn, ok := g.FuncContaining(site.Addr)
		if ok && glibcWrapper != 0 && fn.Entry == glibcWrapper {
			// Resolve at the wrapper's call sites instead.
			resolvedAll := true
			entryBlk, _ := g.BlockAt(glibcWrapper)
			for _, e := range entryBlk.Preds {
				if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
					continue
				}
				if v, ok := chestnutScan(g, e.From, len(e.From.Insns)-1, x86.RDI); ok {
					values[v] = true
				} else {
					resolvedAll = false
				}
			}
			if resolvedAll {
				res.SitesResolved++
			} else {
				fallback()
			}
			continue
		}
		if v, ok := chestnutScan(g, site, len(site.Insns)-1, x86.RAX); ok {
			values[v] = true
			res.SitesResolved++
		} else {
			fallback()
		}
	}

	res.Syscalls = sortedSet(values)
	return res, nil
}

// chestnutScan walks backward linearly (by address, ignoring control
// flow) from the instruction before (blk, idx), inspecting at most
// chestnutScanWindow instructions, tracking only mov/xor on registers —
// a faithful rendition of Binalyzer's value scan.
func chestnutScan(g *cfg.Graph, blk *cfg.Block, idx int, reg x86.Reg) (uint64, bool) {
	insns := linearWindow(g, blk, idx)
	tracked := reg
	for i := len(insns) - 1; i >= 0; i-- {
		in := insns[i]
		switch in.Op {
		case x86.OpMov:
			if in.Dst.Kind != x86.KindReg || in.Dst.Reg != tracked {
				continue
			}
			switch in.Src.Kind {
			case x86.KindImm:
				return uint64(in.Src.Imm), true
			case x86.KindReg:
				tracked = in.Src.Reg
			default:
				return 0, false // memory: Chestnut gives up
			}
		case x86.OpXor:
			if in.Dst.Kind == x86.KindReg && in.Dst.Reg == tracked &&
				in.Src.Kind == x86.KindReg && in.Src.Reg == tracked {
				return 0, true
			}
		default:
			if writesRegister(in, tracked) {
				return 0, false // anything else producing the value: give up
			}
		}
	}
	return 0, false
}

// linearWindow collects up to chestnutScanWindow instructions preceding
// (blk, idx) in address order, crossing block boundaries linearly.
func linearWindow(g *cfg.Graph, blk *cfg.Block, idx int) []x86.Inst {
	var out []x86.Inst
	out = append(out, blk.Insns[:idx]...)
	// Walk backwards through address-adjacent blocks.
	blocks := g.SortedBlocks()
	pos := sort.Search(len(blocks), func(i int) bool { return blocks[i].Addr >= blk.Addr })
	for pos > 0 && len(out) < chestnutScanWindow {
		pos--
		prev := blocks[pos]
		if prev.End() != blk.Addr {
			break // gap: stop the linear walk
		}
		out = append(append([]x86.Inst(nil), prev.Insns...), out...)
		blk = prev
	}
	if len(out) > chestnutScanWindow {
		out = out[len(out)-chestnutScanWindow:]
	}
	return out
}

func writesRegister(in x86.Inst, reg x86.Reg) bool {
	switch in.Op {
	case x86.OpMov, x86.OpMovzx, x86.OpMovsx, x86.OpMovsxd, x86.OpLea,
		x86.OpXor, x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr,
		x86.OpShl, x86.OpShr, x86.OpInc, x86.OpDec, x86.OpPop:
		return in.Dst.Kind == x86.KindReg && in.Dst.Reg == reg
	case x86.OpCall, x86.OpCallInd, x86.OpSyscall:
		return reg.IsCallerSaved()
	}
	return false
}
