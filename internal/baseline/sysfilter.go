package baseline

import (
	"bside/internal/elff"
	"bside/internal/usedef"
	"bside/internal/x86"
)

// SysFilter runs the SysFilter-like analysis on one module.
//
// Mechanics mirrored from the original (§3 of the paper): function
// boundaries come from unwind information (its absence is a hard
// failure), non-PIC executables are rejected, the CFG overestimates
// indirect control flow with the plain address-taken heuristic, and
// per-site values are resolved with intra-procedural register
// use-define chains. Sites whose value travels through memory or
// arrives from a caller resolve to nothing — the tool's documented
// false-negative mode on syscall wrappers.
func SysFilter(bin *elff.Binary) (*Result, error) {
	return SysFilterWithBudget(bin, 2_000_000)
}

// SysFilterWithBudget bounds the disassembly work.
func SysFilterWithBudget(bin *elff.Binary, maxInsns int) (*Result, error) {
	if bin.Kind == elff.KindStatic {
		return nil, ErrStaticUnsupported
	}
	if !bin.HasUnwind {
		return nil, ErrNoUnwind
	}
	g, err := recoverAll(bin, maxInsns)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	values := make(map[uint64]bool)
	for _, site := range g.SyscallBlocks() {
		res.SitesTotal++
		fn, ok := g.FuncContaining(site.Addr)
		if !ok {
			continue
		}
		vals, ok := usedef.Resolve(usedef.Request{
			Fn:      fn,
			Block:   site,
			InsnIdx: len(site.Insns) - 1,
			Reg:     x86.RAX,
		})
		if !ok {
			continue // silent miss: SysFilter's false-negative source
		}
		res.SitesResolved++
		for _, v := range vals {
			if v <= 1023 {
				values[v] = true
			}
		}
	}
	res.Syscalls = sortedSet(values)
	return res, nil
}
