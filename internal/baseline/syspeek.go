package baseline

import (
	"bside/internal/elff"
	"bside/internal/x86"
)

// syspeekWindow is how many already-decoded instructions the scanner
// backtracks through looking for the syscall number — the same
// small-constant window the objdump-pipeline tools use.
const syspeekWindow = 32

// Syspeek is the cheap objdump-style scanner the sweep harness carries
// as a differential baseline: one linear decode pass over the code
// region — no CFG, no reachability, no symbolic execution — recording
// every `syscall` instruction and backtracking through the
// just-decoded window for an immediate load into RAX. Decode errors
// resync by one byte, as a disassembly pipeline over `objdump -d`
// effectively does.
//
// Its blind spots are exactly what B-Side exists to fix — numbers
// carried through wrappers, stack slots, or computed registers are
// unresolvable (counted in SitesTotal but not SitesResolved), and dead
// code is scanned as eagerly as live code — which is what makes it a
// useful disagreement oracle: a *resolved* syspeek number missing from
// B-Side's set points at a soundness hole in reachability or
// identification, while syspeek missing numbers B-Side found is the
// expected precision gap. Works on every ELF kind (no unwind or PIC
// requirements), so it never returns an error.
func Syspeek(bin *elff.Binary) *Result {
	res := &Result{}
	values := make(map[uint64]bool)

	// Ring of the last syspeekWindow decoded instructions, in decode
	// order; window[(head-1+len)%len] is the most recent.
	var window [syspeekWindow]x86.Inst
	head, filled := 0, 0

	code := bin.Blob
	if bin.CodeSize < uint64(len(code)) {
		code = code[:bin.CodeSize]
	}
	addr := bin.Base
	for off := 0; off < len(code); {
		in, err := x86.Decode(code[off:], addr)
		if err != nil {
			// Resync: skip one byte, like objdump riding over data
			// interleaved with code.
			off++
			addr++
			continue
		}
		if in.Op == x86.OpSyscall {
			res.SitesTotal++
			if v, ok := syspeekBacktrack(&window, head, filled); ok {
				values[v] = true
				res.SitesResolved++
			}
		}
		window[head] = in
		head = (head + 1) % syspeekWindow
		if filled < syspeekWindow {
			filled++
		}
		off += int(in.Len)
		addr += uint64(in.Len)
	}

	res.Syscalls = sortedSet(values)
	return res
}

// syspeekBacktrack walks the decoded window backwards from the most
// recent instruction, looking for the nearest write to RAX: an
// immediate mov resolves the site, an xor-self resolves it to 0, and
// any other producer — a register move, a memory load, a call — is
// beyond a linear scanner's reach.
func syspeekBacktrack(window *[syspeekWindow]x86.Inst, head, filled int) (uint64, bool) {
	for i := 0; i < filled; i++ {
		in := window[(head-1-i+2*syspeekWindow)%syspeekWindow]
		switch in.Op {
		case x86.OpMov:
			if in.Dst.Kind != x86.KindReg || in.Dst.Reg != x86.RAX {
				continue
			}
			if in.Src.Kind == x86.KindImm {
				return uint64(in.Src.Imm), true
			}
			return 0, false
		case x86.OpXor:
			if in.Dst.Kind == x86.KindReg && in.Dst.Reg == x86.RAX {
				if in.Src.Kind == x86.KindReg && in.Src.Reg == x86.RAX {
					return 0, true
				}
				return 0, false
			}
		default:
			if writesRegister(in, x86.RAX) {
				return 0, false
			}
		}
	}
	return 0, false
}
