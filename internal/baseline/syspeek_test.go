package baseline

import (
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

func TestSyspeekResolvesImmediateSites(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.XorRegReg(x86.RAX, x86.RAX) // resolves to read (0)
		b.Syscall()
		b.Ret()
	}, nil)
	res := Syspeek(bin)
	if res.SitesTotal != 2 || res.SitesResolved != 2 {
		t.Fatalf("sites: %d/%d, want 2/2", res.SitesResolved, res.SitesTotal)
	}
	if !reflect.DeepEqual(res.Syscalls, []uint64{0, 60}) {
		t.Fatalf("syscalls: %v", res.Syscalls)
	}
	if res.FellBack {
		t.Fatal("syspeek has no fallback set")
	}
}

func TestSyspeekCannotResolveIndirectNumbers(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		// Number carried through another register: a linear scanner
		// sees the mov but cannot know RDI's value.
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, nil)
	res := Syspeek(bin)
	if res.SitesTotal != 1 || res.SitesResolved != 0 {
		t.Fatalf("sites: %d/%d, want 0/1", res.SitesResolved, res.SitesTotal)
	}
	if len(res.Syscalls) != 0 {
		t.Fatalf("unresolved site contributed values: %v", res.Syscalls)
	}
}

func TestSyspeekScansDeadCode(t *testing.T) {
	// The scanner has no reachability: a syscall site in a function
	// nothing calls is reported all the same. (This is the documented
	// precision gap the sweep's -diff mode must tolerate in reverse —
	// and why generated corpora keep dead code syscall-free.)
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("never_called")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
	}, nil)
	res := Syspeek(bin)
	if !reflect.DeepEqual(res.Syscalls, []uint64{39, 60}) {
		t.Fatalf("syscalls: %v, want [39 60]", res.Syscalls)
	}
}

func TestSyspeekResyncsOverData(t *testing.T) {
	// Garbage bytes between functions (jump tables, padding) must not
	// derail the scan: decode errors resync one byte at a time.
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Raw(0x06, 0x07, 0x0e, 0x16) // invalid in 64-bit mode
		b.Func("tail")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
	}, nil)
	res := Syspeek(bin)
	if !reflect.DeepEqual(res.Syscalls, []uint64{1, 60}) {
		t.Fatalf("syscalls: %v, want [1 60]", res.Syscalls)
	}
}

func TestSyspeekInterveningWriteBlocksResolution(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.AddRegImm(x86.RAX, 1) // clobbers the immediate
		b.Syscall()
		b.Ret()
	}, nil)
	res := Syspeek(bin)
	if res.SitesResolved != 0 {
		t.Fatalf("clobbered site resolved: %v", res.Syscalls)
	}
}
