// Package cache implements the content-addressed store behind batch
// analysis: the once-per-library artifacts of the paper's §4.5
// (shared interfaces) and whole-program identification results are
// persisted across processes, keyed by the SHA-256 of the ELF image
// they were derived from, so a fleet-wide analysis run only ever pays
// for each distinct binary once.
//
// The store is two-tiered. The durable tier is a directory of JSON
// envelopes:
//
//	<dir>/<kind>/<key[:2]>/<key>.json
//
// where kind partitions entry types ("interface", "program",
// "funcsum") and key is the lowercase hex SHA-256 of the source image
// (the store treats keys as opaque path-safe strings; elff.Read is the
// one place the hash is computed). Every file is a compact JSON
// envelope:
//
//	{"version":2,"sha256":"<key>","conf":"<fingerprint>","payload":{...}}
//
// Version 1 envelopes — the pretty-printed format of earlier releases
// — are still readable; only the writer moved to the compact codec, so
// an upgraded fleet keeps its warm cache. The envelope makes the store
// self-validating: an unknown version, a sha256 field that disagrees
// with the file's name (a moved or hand-edited entry), a configuration
// fingerprint mismatch (different analysis settings, or a dependency
// whose image hash changed), or any decode error is treated as a miss
// and the entry is re-computed — corruption is never fatal. Writes go
// through a temp file plus rename so concurrent writers of the same
// entry cannot tear each other's files.
//
// In front of the disk sits a process-wide memory tier: a payload
// validated once from disk is kept in memory (keyed by directory, kind
// and key), so repeated loads of the same entry — a fleet re-probing a
// warm cache, analyzers recreated per batch — skip the file read and
// the envelope decode; one stat per hit confirms the durable entry
// still exists, so deleting a cache directory makes the process
// recompute and repopulate rather than serve ghosts. The tier is
// read-through: only disk-validated payloads enter it, entries are
// content-addressed (the same key and fingerprint always name the same
// payload), and a Store through any handle drops the stale copy, so it
// can never serve a result the durable tier would not.
// DisableMemoryTier opts a handle out — the fuzzer's
// frontend-invariance oracle holds memory-tier-on and -off analyses to
// byte-identical results.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// formatVersion is the envelope version the writer produces. Version
// legacyVersion is still accepted by Load so existing caches survive
// the compact-codec migration; anything else is a miss.
const (
	formatVersion = 2
	legacyVersion = 1
)

// maxMemEntries bounds the process-wide memory tier. Entries are
// content-addressed, so refusing to add one never changes results —
// only the speed of the next identical load.
const maxMemEntries = 1 << 16

// memTier is the process-wide memory tier: full entry key
// (dir\x00kind\x00key) -> memEntry. It is shared by every Store handle
// so a per-batch analyzer recreated over the same directory keeps its
// warm entries.
var (
	memTier     sync.Map
	memTierSize atomic.Int64
)

type memEntry struct {
	conf    string
	payload []byte
}

// Store is a content-addressed cache directory plus its slice of the
// process-wide memory tier. All methods are safe for concurrent use.
type Store struct {
	dir       string
	memPrefix string
	noMem     atomic.Bool

	hits        atomic.Uint64
	memoryHits  atomic.Uint64
	misses      atomic.Uint64
	stores      atomic.Uint64
	storedBytes atomic.Uint64
}

// Stats is a point-in-time snapshot of cache traffic.
type Stats struct {
	// Hits counts Load calls satisfied by either tier.
	Hits uint64
	// MemoryHits counts the subset of Hits served from the in-process
	// memory tier without touching the disk.
	MemoryHits uint64
	// Misses counts Load calls that found no usable entry.
	Misses uint64
	// Stores counts entries written.
	Stores uint64
	// StoredBytes counts the envelope bytes written to disk — the
	// footprint knob the compact codec shrinks.
	StoredBytes uint64
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir, memPrefix: filepath.Clean(dir) + "\x00"}, nil
}

// Dir exposes the store's root directory.
func (s *Store) Dir() string { return s.dir }

// DisableMemoryTier makes this handle bypass the process-wide memory
// tier: every Load goes to disk and nothing is promoted. Results are
// byte-identical either way (the fuzzer's invariance oracle enforces
// it); the switch exists for benchmarking the durable tier and for the
// oracle itself. Returns the store for chaining.
func (s *Store) DisableMemoryTier() *Store {
	s.noMem.Store(true)
	return s
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		MemoryHits:  s.memoryHits.Load(),
		Misses:      s.misses.Load(),
		Stores:      s.stores.Load(),
		StoredBytes: s.storedBytes.Load(),
	}
}

type envelope struct {
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Conf    string          `json:"conf,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key+".json")
}

func (s *Store) memKey(kind, key string) string {
	return s.memPrefix + kind + "\x00" + key
}

// Load decodes the entry for (kind, key) into out and reports whether a
// usable entry existed. conf must match the fingerprint the entry was
// stored under; any mismatch, decode failure, or version skew is a miss.
// A memory-tier hit skips the file read and envelope validation — the
// payload was validated when it was promoted.
func (s *Store) Load(kind, key, conf string, out any) bool {
	if len(key) < 2 {
		s.misses.Add(1)
		return false
	}
	useMem := !s.noMem.Load()
	path := s.path(kind, key)
	mk := ""
	if useMem {
		mk = s.memKey(kind, key)
		if v, ok := memTier.Load(mk); ok {
			ent := v.(memEntry)
			if ent.conf == conf {
				// One stat confirms the durable entry still backs the
				// memory copy — a deleted cache directory must make
				// this process recompute and repopulate the disk, not
				// serve ghosts — while still skipping the file read
				// and the envelope decode.
				if _, err := os.Stat(path); err == nil {
					if json.Unmarshal(ent.payload, out) == nil {
						s.memoryHits.Add(1)
						s.hits.Add(1)
						return true
					}
				} else if _, loaded := memTier.LoadAndDelete(mk); loaded {
					memTierSize.Add(-1)
				}
			}
			// A fingerprint mismatch falls through to disk: the file
			// may hold a fresher entry stored under the new conf.
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		// Corrupt or truncated: ignore, the caller re-analyzes.
		s.misses.Add(1)
		return false
	}
	if env.SHA256 != key {
		// The file does not describe the image it is filed under:
		// busted. No need to remove it — a removal here could race a
		// concurrent Store's rename and delete a freshly written valid
		// entry; the caller's re-analysis overwrites it instead.
		s.misses.Add(1)
		return false
	}
	if (env.Version != formatVersion && env.Version != legacyVersion) || env.Conf != conf {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		s.misses.Add(1)
		return false
	}
	if useMem {
		s.promote(mk, conf, env.Payload)
	}
	s.hits.Add(1)
	return true
}

// promote installs a disk-validated payload into the memory tier.
func (s *Store) promote(mk, conf string, payload json.RawMessage) {
	if _, ok := memTier.Load(mk); !ok && memTierSize.Load() >= maxMemEntries {
		return
	}
	ent := memEntry{conf: conf, payload: append([]byte(nil), payload...)}
	if _, loaded := memTier.Swap(mk, ent); !loaded {
		memTierSize.Add(1)
	}
}

// Store writes the entry for (kind, key), replacing any previous one.
func (s *Store) Store(kind, key, conf string, payload any) error {
	if len(key) < 2 {
		return fmt.Errorf("cache: invalid key %q", key)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("cache: marshal %s/%s: %w", kind, key, err)
	}
	data, err := json.Marshal(envelope{
		Version: formatVersion,
		SHA256:  key,
		Conf:    conf,
		Payload: raw,
	})
	if err != nil {
		return fmt.Errorf("cache: marshal envelope: %w", err)
	}
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	sweepStaleTemps(filepath.Dir(path))
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("cache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	// Drop any memory copy: the tier is read-through, so the next Load
	// re-validates from disk and promotes the fresh payload.
	if _, loaded := memTier.LoadAndDelete(s.memKey(kind, key)); loaded {
		memTierSize.Add(-1)
	}
	s.stores.Add(1)
	s.storedBytes.Add(uint64(len(data)))
	return nil
}

// staleTempAge is how old an abandoned temp file must be before a
// writer sweeps it: long enough that no live writer (create→rename is
// milliseconds) can be racing on it.
const staleTempAge = time.Hour

// sweepStaleTemps removes temp files orphaned by crashed writers from
// one shard directory, so a long-lived store does not accumulate dead
// files. Best-effort and O(shard): writers are the only thing that
// creates temps, so sweeping where we are about to write is enough.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < staleTempAge {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}
