// Package cache implements the content-addressed on-disk store behind
// batch analysis: the once-per-library artifacts of the paper's §4.5
// (shared interfaces) and whole-program identification results are
// persisted across processes, keyed by the SHA-256 of the ELF image
// they were derived from, so a fleet-wide analysis run only ever pays
// for each distinct binary once.
//
// Layout on disk:
//
//	<dir>/<kind>/<key[:2]>/<key>.json
//
// where kind partitions entry types ("interface", "program") and key is
// the lowercase hex SHA-256 of the source image (the store treats keys
// as opaque path-safe strings; elff.Read is the one place the hash is
// computed). Every file is a small JSON envelope:
//
//	{"version": 1, "sha256": "<key>", "conf": "<fingerprint>", "payload": {...}}
//
// The envelope makes the store self-validating: a version bump, a
// sha256 field that disagrees with the file's name (a moved or
// hand-edited entry), a configuration fingerprint mismatch (different
// analysis settings, or a dependency whose image hash changed), or any
// decode error is treated as a miss and the entry is re-computed —
// corruption is never fatal. Writes go through a temp file plus rename
// so concurrent writers of the same entry cannot tear each other's
// files.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// formatVersion invalidates every existing entry when the envelope or
// payload schemas change incompatibly.
const formatVersion = 1

// Store is a content-addressed cache directory. All methods are safe
// for concurrent use.
type Store struct {
	dir string

	hits   atomic.Uint64
	misses atomic.Uint64
	stores atomic.Uint64
}

// Stats is a point-in-time snapshot of cache traffic.
type Stats struct {
	// Hits counts Load calls satisfied from disk.
	Hits uint64
	// Misses counts Load calls that found no usable entry.
	Misses uint64
	// Stores counts entries written.
	Stores uint64
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir exposes the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the hit/miss/store counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Stores: s.stores.Load()}
}

type envelope struct {
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Conf    string          `json:"conf,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key+".json")
}

// Load decodes the entry for (kind, key) into out and reports whether a
// usable entry existed. conf must match the fingerprint the entry was
// stored under; any mismatch, decode failure, or version skew is a miss.
// An entry whose recorded sha256 disagrees with key is actively busted
// (removed) so it cannot shadow a future store.
func (s *Store) Load(kind, key, conf string, out any) bool {
	if len(key) < 2 {
		s.misses.Add(1)
		return false
	}
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		// Corrupt or truncated: ignore, the caller re-analyzes.
		s.misses.Add(1)
		return false
	}
	if env.SHA256 != key {
		// The file does not describe the image it is filed under:
		// busted. No need to remove it — a removal here could race a
		// concurrent Store's rename and delete a freshly written valid
		// entry; the caller's re-analysis overwrites it instead.
		s.misses.Add(1)
		return false
	}
	if env.Version != formatVersion || env.Conf != conf {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Store writes the entry for (kind, key), replacing any previous one.
func (s *Store) Store(kind, key, conf string, payload any) error {
	if len(key) < 2 {
		return fmt.Errorf("cache: invalid key %q", key)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("cache: marshal %s/%s: %w", kind, key, err)
	}
	data, err := json.MarshalIndent(envelope{
		Version: formatVersion,
		SHA256:  key,
		Conf:    conf,
		Payload: raw,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: marshal envelope: %w", err)
	}
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	sweepStaleTemps(filepath.Dir(path))
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("cache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	s.stores.Add(1)
	return nil
}

// staleTempAge is how old an abandoned temp file must be before a
// writer sweeps it: long enough that no live writer (create→rename is
// milliseconds) can be racing on it.
const staleTempAge = time.Hour

// sweepStaleTemps removes temp files orphaned by crashed writers from
// one shard directory, so a long-lived store does not accumulate dead
// files. Best-effort and O(shard): writers are the only thing that
// creates temps, so sweeping where we are about to write is enough.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < staleTempAge {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}
