// Package cache implements the content-addressed store behind batch
// analysis: the once-per-library artifacts of the paper's §4.5
// (shared interfaces) and whole-program identification results are
// persisted across processes, keyed by the SHA-256 of the ELF image
// they were derived from, so a fleet-wide analysis run only ever pays
// for each distinct binary once.
//
// The store is two-tiered. The durable tier is a directory of JSON
// envelopes:
//
//	<dir>/<kind>/<key[:2]>/<key>.json
//
// where kind partitions entry types ("interface", "program",
// "funcsum") and key is the lowercase hex SHA-256 of the source image
// (the store treats keys as opaque path-safe strings; elff.Read is the
// one place the hash is computed). Every file is a compact JSON
// envelope:
//
//	{"version":2,"sha256":"<key>","conf":"<fingerprint>","payload":{...}}
//
// Version 1 envelopes — the pretty-printed format of earlier releases
// — are still readable; only the writer moved to the compact codec, so
// an upgraded fleet keeps its warm cache. The envelope makes the store
// self-validating: an unknown version, a sha256 field that disagrees
// with the file's name (a moved or hand-edited entry), a configuration
// fingerprint mismatch (different analysis settings, or a dependency
// whose image hash changed), or any decode error is treated as a miss
// and the entry is re-computed — corruption is never fatal. Writes go
// through a temp file plus rename so concurrent writers of the same
// entry cannot tear each other's files.
//
// Between the memory tier and the loose files sits the optional pack
// tier (see pack.go): Compact folds the loose entries into one
// immutable, content-addressed pack file under <dir>/packs/ that later
// processes memory-map read-only and probe by binary search — a warm
// hit costs a hash probe into a shared mapping instead of an open()
// plus two JSON decodes. Packs are discovered automatically by Open,
// validated end-to-end by checksum (a truncated or bit-flipped pack is
// ignored, never served), and consulted after the memory tier and
// before the loose files; writes always land loose, so a pack is a
// snapshot that never goes stale incorrectly — at worst a probe falls
// through to a fresher loose entry.
//
// In front of both durable tiers sits a process-wide memory tier
// holding *decoded* values: a payload validated and decoded once is
// kept as the typed Go value (keyed by directory, kind and key), so
// repeated loads of the same entry — a fleet re-probing a warm cache,
// analyzers recreated per batch — skip the file read and both decodes;
// a memory hit is a pointer-copy assignment, not an Unmarshal. One
// stat per hit confirms the durable backing (loose file or pack) still
// exists, so deleting a cache directory makes the process recompute
// and repopulate rather than serve ghosts. The tier is read-through:
// only disk-validated payloads enter it, entries are content-addressed
// (the same key and fingerprint always name the same payload), and a
// Store through any handle drops the stale copy, so it can never serve
// a result the durable tier would not. Because hits hand every caller
// the same decoded value, callers must treat loaded results as
// immutable — the analyzer's read paths already do.
// DisableMemoryTier opts a handle out — the fuzzer's
// frontend-invariance oracle holds memory-tier-on and -off analyses to
// byte-identical results.
//
// The tier is a size-bounded LRU: both the entry count and the total
// payload bytes are capped (SetMemoryTierLimits), and inserting past
// either cap evicts from the cold end. A resident service can therefore
// hold a process open for months without the tier growing with the
// fleet's distinct-binary population; eviction only ever costs the next
// identical load a disk read, never a recompute of anything that is
// still on disk. Eviction traffic is counted (Stats.MemoryEvictions)
// so an operator can see when the tier is sized below the working set.
package cache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bside/internal/faults"
)

// formatVersion is the envelope version the writer produces. Version
// legacyVersion is still accepted by Load so existing caches survive
// the compact-codec migration; anything else is a miss.
const (
	formatVersion = 2
	legacyVersion = 1
)

// Default memory-tier bounds. Entries are content-addressed, so
// evicting one never changes results — only the speed of the next
// identical load (a disk re-read instead of a memory hit).
const (
	defaultMemEntries = 1 << 16
	defaultMemBytes   = 256 << 20
)

// memTier is the process-wide memory tier: a lock-striped LRU over
// full entry keys (dir\x00kind\x00key). It is shared by every Store
// handle so a per-batch analyzer recreated over the same directory
// keeps its warm entries; striping keeps a fleet sweep's worker pool
// from serializing on one mutex.
var memTier = newStripedTier(defaultMemEntries, defaultMemBytes)

// memEntry is one resident memory-tier entry: the decoded value (a
// boxed copy of what the loading caller received — immutable by
// contract), the conf fingerprint it was stored under, the durable
// path backing it (statted on every hit so a deleted cache never
// ghost-serves), and the durable payload size the byte budget charges.
type memEntry struct {
	key  string
	conf string
	src  string
	size int
	val  any
}

// tierStripes is the memory tier's stripe count. Keys spread by hash,
// so with a fleet sweep's worker pool (typically ≤ GOMAXPROCS workers)
// the probability of two workers colliding on one stripe's mutex stays
// low; 16 is plenty without fragmenting the byte budget into
// uselessly small shares.
const tierStripes = 16

// stripedTier shards the memory tier across tierStripes independent
// LRUs, each with its own mutex and a proportional slice of the entry
// and byte budgets (shares sum to the configured caps, except that
// every stripe keeps a floor of 1 so degenerate tiny caps stay
// functional). Recency and eviction are therefore per-stripe: a
// globally-LRU entry survives if its stripe is cold, and a hot stripe
// evicts entries a global LRU would have kept — bounded staleness the
// property test holds to a per-stripe tolerance, in exchange for
// uncontended parallel access.
type stripedTier struct {
	limitMu    sync.Mutex // guards the configured totals, not the data path
	maxEntries int
	maxBytes   int64
	stripes    [tierStripes]*lruTier
}

func newStripedTier(maxEntries int, maxBytes int64) *stripedTier {
	t := &stripedTier{}
	for i := range t.stripes {
		t.stripes[i] = newLRUTier(1, 1)
	}
	t.setLimits(maxEntries, maxBytes)
	return t
}

// stripeOf routes a key to its stripe by FNV-1a hash.
func stripeOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % tierStripes
}

func (t *stripedTier) get(key string) (memEntry, bool) { return t.stripes[stripeOf(key)].get(key) }
func (t *stripedTier) put(ent memEntry)                { t.stripes[stripeOf(ent.key)].put(ent) }
func (t *stripedTier) del(key string)                  { t.stripes[stripeOf(key)].del(key) }

func (t *stripedTier) snapshot() (entries int, bytes int64) {
	for _, s := range t.stripes {
		e, b := s.snapshot()
		entries += e
		bytes += b
	}
	return entries, bytes
}

func (t *stripedTier) evictions() uint64 {
	var n uint64
	for _, s := range t.stripes {
		n += s.evictions.Load()
	}
	return n
}

// setLimits installs new totals (non-positive values keep the current
// ones) by dividing them across the stripes — remainder spread over
// the low stripes, a floor of 1 per stripe — and returns the previous
// totals.
func (t *stripedTier) setLimits(maxEntries int, maxBytes int64) (prevEntries int, prevBytes int64) {
	t.limitMu.Lock()
	defer t.limitMu.Unlock()
	prevEntries, prevBytes = t.maxEntries, t.maxBytes
	if maxEntries > 0 {
		t.maxEntries = maxEntries
	}
	if maxBytes > 0 {
		t.maxBytes = maxBytes
	}
	for i := range t.stripes {
		e := t.maxEntries / tierStripes
		if i < t.maxEntries%tierStripes {
			e++
		}
		if e < 1 {
			e = 1
		}
		b := t.maxBytes / tierStripes
		if int64(i) < t.maxBytes%int64(tierStripes) {
			b++
		}
		if b < 1 {
			b = 1
		}
		t.stripes[i].setLimits(e, b)
	}
	return prevEntries, prevBytes
}

// lruTier is the size-bounded LRU behind one stripe of the memory
// tier: a map for lookup, an intrusive recency list for eviction
// order, and byte accounting over payload sizes. Each stripe has its
// own mutex; cross-stripe concurrency never contends.
type lruTier struct {
	mu         sync.Mutex
	entries    map[string]*list.Element // -> *memEntry elements of order
	order      *list.List               // front = most recently used
	bytes      int64
	maxEntries int
	maxBytes   int64
	evictions  atomic.Uint64
}

func newLRUTier(maxEntries int, maxBytes int64) *lruTier {
	return &lruTier{
		entries:    make(map[string]*list.Element),
		order:      list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// get returns the entry for key, marking it most recently used.
func (t *lruTier) get(key string) (memEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.entries[key]
	if !ok {
		return memEntry{}, false
	}
	t.order.MoveToFront(el)
	return *el.Value.(*memEntry), true
}

// put inserts or replaces the entry for ent.key and evicts from the
// cold end until both bounds hold again.
func (t *lruTier) put(ent memEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[ent.key]; ok {
		old := el.Value.(*memEntry)
		t.bytes += int64(ent.size) - int64(old.size)
		*old = ent
		t.order.MoveToFront(el)
	} else {
		t.entries[ent.key] = t.order.PushFront(&ent)
		t.bytes += int64(ent.size)
	}
	for t.order.Len() > t.maxEntries || t.bytes > t.maxBytes {
		back := t.order.Back()
		if back == nil {
			break
		}
		t.removeLocked(back)
		t.evictions.Add(1)
	}
}

// del drops the entry for key if present.
func (t *lruTier) del(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.removeLocked(el)
	}
}

func (t *lruTier) removeLocked(el *list.Element) {
	ent := el.Value.(*memEntry)
	t.order.Remove(el)
	delete(t.entries, ent.key)
	t.bytes -= int64(ent.size)
}

// snapshot returns the tier's gauges: entry count and payload bytes.
func (t *lruTier) snapshot() (entries int, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len(), t.bytes
}

// setLimits installs new bounds (non-positive values keep the current
// ones), evicting immediately if the tier is now over, and returns the
// previous bounds. Process-wide: the tier is shared by every Store.
func (t *lruTier) setLimits(maxEntries int, maxBytes int64) (prevEntries int, prevBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prevEntries, prevBytes = t.maxEntries, t.maxBytes
	if maxEntries > 0 {
		t.maxEntries = maxEntries
	}
	if maxBytes > 0 {
		t.maxBytes = maxBytes
	}
	for t.order.Len() > t.maxEntries || t.bytes > t.maxBytes {
		back := t.order.Back()
		if back == nil {
			break
		}
		t.removeLocked(back)
		t.evictions.Add(1)
	}
	return prevEntries, prevBytes
}

// SetMemoryTierLimits bounds the process-wide memory tier by entry
// count and total payload bytes (non-positive values keep the current
// bound) and returns the previous bounds. A resident service sizes the
// tier to its memory budget here; eviction is recorded in every
// store's Stats.MemoryEvictions.
func SetMemoryTierLimits(maxEntries int, maxBytes int64) (prevEntries int, prevBytes int64) {
	return memTier.setLimits(maxEntries, maxBytes)
}

// Store is a content-addressed cache directory plus its slice of the
// process-wide memory tier. All methods are safe for concurrent use.
type Store struct {
	dir       string
	memPrefix string
	noMem     atomic.Bool

	// packs is the current immutable set of open pack files, consulted
	// after the memory tier and before the loose files. Readers load a
	// snapshot and never lock; Compact and AttachPack swap in a new
	// slice atomically. Superseded packs are dropped from the set but
	// their mappings are deliberately not unmapped — a concurrent probe
	// may still hold the old snapshot, and a handful of leaked mappings
	// per compaction (backed by deleted files the kernel reclaims
	// lazily) is far cheaper than reference-counting every probe.
	packs atomic.Pointer[[]*pack]

	// compactMu serializes Compact/GC against each other; probes and
	// stores never take it.
	compactMu sync.Mutex

	// shardMu stripes disk writes by key shard (the key[:2] subdir
	// layout mapped onto tierStripes mutexes): concurrent sweep workers
	// storing into different shards proceed in parallel, while writers
	// landing in one shard serialize their temp-sweep + create + rename
	// sequence instead of churning temp files against each other.
	shardMu [tierStripes]sync.Mutex

	hits        atomic.Uint64
	memoryHits  atomic.Uint64
	packHits    atomic.Uint64
	misses      atomic.Uint64
	stores      atomic.Uint64
	storedBytes atomic.Uint64
	ioErrors    atomic.Uint64
}

// Stats is a point-in-time snapshot of cache traffic.
type Stats struct {
	// Hits counts Load calls satisfied by either tier.
	Hits uint64
	// MemoryHits counts the subset of Hits served from the in-process
	// memory tier without touching the disk.
	MemoryHits uint64
	// PackHits counts the subset of Hits served from a memory-mapped
	// pack file — a binary-search probe into the shared mapping instead
	// of an open() plus envelope decode.
	PackHits uint64
	// Packs, PackEntries and PackBytesMapped are point-in-time gauges
	// of the open pack set: file count, total index entries, and the
	// bytes currently memory-mapped (zero where the platform fell back
	// to heap reads).
	Packs           int
	PackEntries     int
	PackBytesMapped int64
	// Misses counts Load calls that found no usable entry.
	Misses uint64
	// Stores counts entries written.
	Stores uint64
	// StoredBytes counts the envelope bytes written to disk — the
	// footprint knob the compact codec shrinks.
	StoredBytes uint64
	// MemoryEvictions counts entries pushed out of the memory tier by
	// its LRU bounds. Process-wide (the tier is shared by every Store in
	// the process), monotonic. A resident service whose eviction rate
	// tracks its hit rate has a tier sized below its working set.
	MemoryEvictions uint64
	// MemoryEntries and MemoryBytes are point-in-time gauges of the
	// process-wide memory tier's population and payload footprint.
	MemoryEntries int
	MemoryBytes   int64
	// IOErrors counts durable-tier operations that failed for reasons
	// other than "entry absent": unreadable loose files on Load, any
	// failed Store. Analysis proceeds either way (a failed read is a
	// miss, a failed write is dropped), but a climbing count means the
	// cache directory itself is unhealthy — the signal the serve tier's
	// degraded-health check consumes.
	IOErrors uint64
}

// Open returns a store rooted at dir, creating it if needed. Pack
// files under <dir>/packs/ are discovered and mapped here; a pack that
// fails validation (truncated, corrupted) is skipped silently — the
// loose tier still answers, corruption is never fatal.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{dir: dir, memPrefix: filepath.Clean(dir) + "\x00"}
	s.discoverPacks()
	return s, nil
}

// Dir exposes the store's root directory.
func (s *Store) Dir() string { return s.dir }

// DisableMemoryTier makes this handle bypass the process-wide memory
// tier: every Load goes to disk and nothing is promoted. Results are
// byte-identical either way (the fuzzer's invariance oracle enforces
// it); the switch exists for benchmarking the durable tier and for the
// oracle itself. Returns the store for chaining.
func (s *Store) DisableMemoryTier() *Store {
	s.noMem.Store(true)
	return s
}

// Stats returns a snapshot of the traffic counters. The memory-tier
// fields (MemoryEvictions, MemoryEntries, MemoryBytes) describe the
// process-wide tier, not this store's slice of it.
func (s *Store) Stats() Stats {
	entries, bytes := memTier.snapshot()
	st := Stats{
		Hits:            s.hits.Load(),
		MemoryHits:      s.memoryHits.Load(),
		PackHits:        s.packHits.Load(),
		Misses:          s.misses.Load(),
		Stores:          s.stores.Load(),
		StoredBytes:     s.storedBytes.Load(),
		IOErrors:        s.ioErrors.Load(),
		MemoryEvictions: memTier.evictions(),
		MemoryEntries:   entries,
		MemoryBytes:     bytes,
	}
	if ps := s.packs.Load(); ps != nil {
		st.Packs = len(*ps)
		for _, p := range *ps {
			st.PackEntries += p.count
			if p.mapped {
				st.PackBytesMapped += int64(len(p.data))
			}
		}
	}
	return st
}

type envelope struct {
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Conf    string          `json:"conf,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key+".json")
}

func (s *Store) memKey(kind, key string) string {
	return s.memPrefix + kind + "\x00" + key
}

// Load decodes the entry for (kind, key) into out and reports whether a
// usable entry existed. conf must match the fingerprint the entry was
// stored under; any mismatch, decode failure, or version skew is a miss.
// A memory-tier hit assigns the already-decoded value — no file read,
// no envelope validation, no Unmarshal; the caller must treat the
// result (and any slices it holds) as immutable.
func (s *Store) Load(kind, key, conf string, out any) bool {
	_, ok := s.load(kind, key, conf, false, out)
	return ok
}

// LoadAny decodes the entry for (kind, key) whatever fingerprint it was
// stored under and returns that fingerprint. This is the probe behind
// hash-only lookups (a resident service's `?hash=` path), where the
// caller holds no DT_NEEDED list to derive the fingerprint from; the
// caller owns validating the returned fingerprint — serving an entry
// without checking it would silently cross analyzer configurations.
func (s *Store) LoadAny(kind, key string, out any) (string, bool) {
	return s.load(kind, key, "", true, out)
}

// load is the shared probe, in tier order: the memory tier (a decoded
// value plus one stat confirming its durable backing still exists),
// then the mapped packs (binary-search probe, payload decoded straight
// out of the mapping), then the loose JSON envelope — promoting into
// the memory tier on any durable hit. anyConf accepts whatever
// fingerprint is stored (the LoadAny path); otherwise conf must match
// exactly.
func (s *Store) load(kind, key, conf string, anyConf bool, out any) (string, bool) {
	if len(key) < 2 {
		s.misses.Add(1)
		return "", false
	}
	if err := faults.Fire(faults.CacheRead, kind+"/"+key); err != nil {
		// Injected disk failure: counted and served as a miss, exactly
		// like the real unreadable-file path below.
		s.ioErrors.Add(1)
		s.misses.Add(1)
		return "", false
	}
	useMem := !s.noMem.Load()
	mk := ""
	if useMem {
		mk = s.memKey(kind, key)
		if ent, ok := memTier.get(mk); ok {
			if anyConf || ent.conf == conf {
				// One stat confirms the durable tier (the loose file or
				// the pack this value came from) still backs the memory
				// copy — a deleted cache directory must make this
				// process recompute and repopulate the disk, not serve
				// ghosts — while skipping the read and both decodes.
				if _, err := os.Stat(ent.src); err == nil {
					if assignDecoded(out, ent.val) {
						s.memoryHits.Add(1)
						s.hits.Add(1)
						return ent.conf, true
					}
				} else {
					memTier.del(mk)
				}
			}
			// A fingerprint mismatch falls through to disk: the file
			// may hold a fresher entry stored under the new conf.
		}
	}
	if ps := s.packs.Load(); ps != nil {
		for _, p := range *ps {
			gotConf, codec, payload, ok := p.probe(kind, key, conf, anyConf)
			if !ok {
				continue
			}
			// The same ghost rule as the memory tier: the pack file must
			// still exist on disk. A pack deleted under a live mapping
			// (cache wipe, gc from another process) stops serving and is
			// dropped from the set.
			if _, err := os.Stat(p.path); err != nil {
				s.dropPack(p)
				continue
			}
			if !decodePackPayload(kind, codec, payload, out) {
				// Codec/type mismatch or malformed payload: treat this
				// pack as silent and let the loose tier answer.
				continue
			}
			s.packHits.Add(1)
			s.hits.Add(1)
			if useMem {
				s.promote(mk, gotConf, p.path, len(payload), out)
			}
			return gotConf, true
		}
	}
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		// Absence is the normal cold-cache miss; anything else
		// (permissions, EIO, a file that vanished mid-read) is the disk
		// misbehaving and feeds the degraded-health signal.
		if !errors.Is(err, fs.ErrNotExist) {
			s.ioErrors.Add(1)
		}
		s.misses.Add(1)
		return "", false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		// Corrupt or truncated: ignore, the caller re-analyzes.
		s.misses.Add(1)
		return "", false
	}
	if env.SHA256 != key {
		// The file does not describe the image it is filed under:
		// busted. No need to remove it — a removal here could race a
		// concurrent Store's rename and delete a freshly written valid
		// entry; the caller's re-analysis overwrites it instead.
		s.misses.Add(1)
		return "", false
	}
	if (env.Version != formatVersion && env.Version != legacyVersion) || !(anyConf || env.Conf == conf) {
		s.misses.Add(1)
		return "", false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		s.misses.Add(1)
		return "", false
	}
	if useMem {
		s.promote(mk, env.Conf, path, len(env.Payload), out)
	}
	s.hits.Add(1)
	return env.Conf, true
}

// decodePackPayload decodes one pack payload into out: raw JSON for
// codec 0, the kind's registered PackCodec for codec 1. False means
// "pretend the pack had no entry" — the probe falls through.
func decodePackPayload(kind string, codec byte, payload []byte, out any) bool {
	switch codec {
	case packCodecJSON:
		return json.Unmarshal(payload, out) == nil
	case packCodecBinary:
		c := packCodecFor(kind)
		return c != nil && c.Decode(payload, out)
	}
	return false
}

// assignDecoded copies a resident decoded value into the caller's out
// pointer. False (a type mismatch — out is not the pointer type the
// value was decoded into) falls through to the durable tiers.
func assignDecoded(out, val any) bool {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	ev := rv.Elem()
	vv := reflect.ValueOf(val)
	if !vv.IsValid() || vv.Type() != ev.Type() {
		return false
	}
	ev.Set(vv)
	return true
}

// promote installs a durable-tier-validated decoded value into the
// memory tier: a boxed copy of *out, the path whose existence future
// hits re-confirm, and the durable payload size for byte accounting.
func (s *Store) promote(mk, conf, src string, size int, out any) {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return
	}
	memTier.put(memEntry{key: mk, conf: conf, src: src, size: size, val: rv.Elem().Interface()})
}

// Store writes the entry for (kind, key), replacing any previous one.
// Disk failures are counted in Stats.IOErrors on top of being returned
// — most callers drop store errors (the cache is best-effort), so the
// counter is how repeated write failures stay visible.
func (s *Store) Store(kind, key, conf string, payload any) error {
	if len(key) < 2 {
		return fmt.Errorf("cache: invalid key %q", key)
	}
	if err := faults.Fire(faults.CacheWrite, kind+"/"+key); err != nil {
		s.ioErrors.Add(1)
		return fmt.Errorf("cache: write %s/%s: %w", kind, key, err)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("cache: marshal %s/%s: %w", kind, key, err)
	}
	data, err := json.Marshal(envelope{
		Version: formatVersion,
		SHA256:  key,
		Conf:    conf,
		Payload: raw,
	})
	if err != nil {
		return fmt.Errorf("cache: marshal envelope: %w", err)
	}
	path := s.path(kind, key)
	mu := &s.shardMu[stripeOf(key[:2])]
	mu.Lock()
	defer mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.ioErrors.Add(1)
		return fmt.Errorf("cache: %w", err)
	}
	sweepStaleTemps(filepath.Dir(path))
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		s.ioErrors.Add(1)
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		s.ioErrors.Add(1)
		return fmt.Errorf("cache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		s.ioErrors.Add(1)
		return fmt.Errorf("cache: %w", err)
	}
	// Drop any memory copy: the tier is read-through, so the next Load
	// re-validates from disk and promotes the fresh payload.
	memTier.del(s.memKey(kind, key))
	s.stores.Add(1)
	s.storedBytes.Add(uint64(len(data)))
	return nil
}

// staleTempAge is how old an abandoned temp file must be before a
// writer sweeps it: long enough that no live writer (create→rename is
// milliseconds) can be racing on it.
const staleTempAge = time.Hour

// sweepStaleTemps removes temp files orphaned by crashed writers from
// one shard directory, so a long-lived store does not accumulate dead
// files. Best-effort and O(shard): writers are the only thing that
// creates temps, so sweeping where we are about to write is enough.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < staleTempAge {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}
