package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name     string   `json:"name"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
}

// testKey derives a content address the way elff.Read does: lowercase
// hex SHA-256 of the image bytes.
func testKey(t *testing.T, s string) string {
	t.Helper()
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-1")
	in := payload{Name: "libc.so", Syscalls: []uint64{0, 1, 60}}
	if err := s.Store("interface", key, "conf-a", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", key, "conf-a", &out) {
		t.Fatal("stored entry not loadable")
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Stores != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMissOnAbsentConfAndKind(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-2")
	var out payload
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("hit on empty store")
	}
	if err := s.Store("interface", key, "conf", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// A different configuration fingerprint must not be served.
	if s.Load("interface", key, "other-conf", &out) {
		t.Fatal("hit across configurations")
	}
	// Kinds partition the namespace.
	if s.Load("program", key, "conf", &out) {
		t.Fatal("hit across kinds")
	}
	if st := s.Stats(); st.Misses != 3 {
		t.Fatalf("misses: %+v", st)
	}
}

func TestCorruptAndTruncatedEntriesIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-3")
	if err := s.Store("interface", key, "conf", payload{Name: "libm.so"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "interface", key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated file: load must miss, not fail.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("truncated entry served")
	}

	// Garbage file: same.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("corrupt entry served")
	}

	// The entry can be re-stored and served again.
	if err := s.Store("interface", key, "conf", payload{Name: "libm.so"}); err != nil {
		t.Fatal(err)
	}
	if !s.Load("interface", key, "conf", &out) || out.Name != "libm.so" {
		t.Fatalf("re-store failed: %+v", out)
	}
}

func TestHashMismatchBustsEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-4")
	if err := s.Store("interface", key, "conf", payload{Name: "libz.so"}); err != nil {
		t.Fatal(err)
	}
	// Tamper with the recorded hash: the file no longer describes the
	// image it is filed under.
	path := filepath.Join(dir, "interface", key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), key, testKey(t, "other-image"), 1)
	if tampered == string(data) {
		t.Fatal("tampering had no effect")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("hash-mismatched entry served")
	}
	// The bust is permanent until a re-store overwrites the entry.
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("hash-mismatched entry served on retry")
	}
	if err := s.Store("interface", key, "conf", payload{Name: "libz.so"}); err != nil {
		t.Fatal(err)
	}
	if !s.Load("interface", key, "conf", &out) || out.Name != "libz.so" {
		t.Fatalf("re-store did not repair the busted entry: %+v", out)
	}
}

func TestVersionSkewIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-5")
	raw, _ := json.Marshal(payload{Name: "old"})
	env, _ := json.Marshal(envelope{Version: formatVersion + 1, SHA256: key, Conf: "conf", Payload: raw})
	path := filepath.Join(dir, "interface", key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("future-version entry served")
	}
}

func TestConcurrentStoreLoad(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-6")
	want := payload{Name: "libc.so", Syscalls: []uint64{1, 60}}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Store("interface", key, "conf", want); err != nil {
				t.Error(err)
			}
			var out payload
			if s.Load("interface", key, "conf", &out) && !reflect.DeepEqual(out, want) {
				t.Errorf("torn read: %+v", out)
			}
		}()
	}
	wg.Wait()
	var out payload
	if !s.Load("interface", key, "conf", &out) || !reflect.DeepEqual(out, want) {
		t.Fatalf("final state: %+v", out)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("directory under a file accepted")
	}
}

func TestShortKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store("interface", "", "conf", payload{}); err == nil {
		t.Fatal("empty key accepted")
	}
	var out payload
	if s.Load("interface", "x", "conf", &out) {
		t.Fatal("short key hit")
	}
}

func TestStaleTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-7")
	shard := filepath.Join(dir, "interface", key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	// An orphan from a crashed writer, long dead.
	stale := filepath.Join(shard, "."+key+".tmp-123")
	if err := os.WriteFile(stale, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A fresh orphan that could still belong to a live writer.
	fresh := filepath.Join(shard, "."+key+".tmp-456")
	if err := os.WriteFile(fresh, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.Store("interface", key, "conf", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file must survive the sweep")
	}
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("entry unusable after sweep")
	}
}

// --- two-tier store: compact codec, legacy reads, memory tier ----------

func TestCompactEnvelopeOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-compact")
	if err := s.Store("interface", key, "conf", payload{Name: "libc.so", Syscalls: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "interface", key[:2], key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(string(data), "\n ") {
		t.Fatalf("envelope not compact: %q", data)
	}
	if !strings.Contains(string(data), `"version":2`) {
		t.Fatalf("envelope not version-bumped: %q", data)
	}
	if st := s.Stats(); st.StoredBytes != uint64(len(data)) {
		t.Fatalf("StoredBytes = %d, file is %d bytes", st.StoredBytes, len(data))
	}
}

func TestLegacyEnvelopeStillReadable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-legacy")
	want := payload{Name: "old-format", Syscalls: []uint64{0, 60}}
	raw, _ := json.Marshal(want)
	env, _ := json.MarshalIndent(envelope{Version: legacyVersion, SHA256: key, Conf: "conf", Payload: raw}, "", "  ")
	path := filepath.Join(dir, "interface", key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("legacy pretty-printed v1 envelope must stay readable")
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("legacy round trip: %+v vs %+v", out, want)
	}
}

func TestMemoryTierServesPromotedEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-mem")
	want := payload{Name: "hot", Syscalls: []uint64{1}}
	if err := s.Store("interface", key, "conf", want); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("first load must hit disk")
	}
	// The first load promoted the payload: the second is a memory hit
	// (the file only gets a stat, never a read — corrupting it in
	// place must not matter while it exists).
	path := filepath.Join(dir, "interface", key[:2], key+".json")
	if err := os.WriteFile(path, []byte("unread garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = payload{}
	if !s.Load("interface", key, "conf", &out) || !reflect.DeepEqual(out, want) {
		t.Fatalf("memory tier did not serve: %+v", out)
	}
	st := s.Stats()
	if st.MemoryHits != 1 || st.Hits != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// A different fingerprint must not be served from memory.
	if s.Load("interface", key, "other-conf", &out) {
		t.Fatal("memory tier served across configurations")
	}

	// The tier is process-wide: a fresh handle on the same directory
	// sees the promoted entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out = payload{}
	if !s2.Load("interface", key, "conf", &out) || !reflect.DeepEqual(out, want) {
		t.Fatalf("fresh handle missed the shared memory tier: %+v", out)
	}

	// A handle with the tier disabled reads the (now corrupt) disk.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3.DisableMemoryTier()
	if s3.Load("interface", key, "conf", &out) {
		t.Fatal("DisableMemoryTier handle must not see memory entries")
	}
}

func TestMemoryTierDroppedWithDurableEntry(t *testing.T) {
	// Deleting the durable entry must make the process recompute and
	// repopulate the disk, not serve the memory copy forever: the
	// store-through-any-path protocol depends on misses being real.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-mem-drop")
	if err := s.Store("interface", key, "conf", payload{Name: "hot"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("load failed")
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("memory tier served an entry whose directory is gone")
	}
	// The miss dropped the memory copy; a re-store round-trips again.
	if err := s.Store("interface", key, "conf", payload{Name: "hot2"}); err != nil {
		t.Fatal(err)
	}
	if !s.Load("interface", key, "conf", &out) || out.Name != "hot2" {
		t.Fatalf("repopulated entry not served: %+v", out)
	}
}

func TestMemoryTierLRUEvictionBounds(t *testing.T) {
	// The tier is process-wide and lock-striped: budgets divide across
	// stripes and recency is tracked per stripe. Drain leftovers from
	// other tests (a 1-byte budget evicts every real payload), then pin
	// bounds that give each stripe a capacity of 2, and exercise the
	// LRU semantics with keys crafted to collide on ONE stripe — where
	// eviction order is defined. Restore the defaults afterwards.
	prevE, prevB := SetMemoryTierLimits(1, 1)
	SetMemoryTierLimits(2*tierStripes, 1<<20)
	defer SetMemoryTierLimits(prevE, prevB)

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Four keys landing in the same stripe. The stripe is keyed by the
	// full memory-tier key (dir\x00kind\x00key), so match on that.
	keys := make([]string, 0, 4)
	target := uint32(0)
	for nonce := 0; len(keys) < 4 && nonce < 1<<16; nonce++ {
		k := testKey(t, fmt.Sprintf("image-lru-%d", nonce))
		st := stripeOf(s.memKey("interface", k))
		if len(keys) == 0 {
			target = st
		} else if st != target {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) < 4 {
		t.Fatal("could not craft colliding keys")
	}
	for _, k := range keys {
		if err := s.Store("interface", k, "conf", payload{Name: k[:8]}); err != nil {
			t.Fatal(err)
		}
	}
	load := func(i int) {
		t.Helper()
		var out payload
		if !s.Load("interface", keys[i], "conf", &out) {
			t.Fatalf("load %d failed", i)
		}
	}
	memHits := func() uint64 { return s.Stats().MemoryHits }

	before := s.Stats()
	load(0)
	load(1)
	load(2) // evicts 0: capacity 2, order is now [2, 1]
	after := s.Stats()
	if after.MemoryEntries > 2 {
		t.Fatalf("entry bound not enforced: %d entries resident", after.MemoryEntries)
	}
	if after.MemoryEvictions == before.MemoryEvictions {
		t.Fatal("over-capacity insert did not evict")
	}

	// Recency governs eviction: touch 1, insert 3 → 2 goes, 1 stays.
	load(1)
	load(3)
	h := memHits()
	load(1)
	if memHits() != h+1 {
		t.Fatal("recently-used entry was evicted")
	}
	h = memHits()
	load(2)
	if memHits() != h {
		t.Fatal("cold entry survived past capacity")
	}

	// Eviction is not loss: everything still loads (from disk).
	for i := range keys {
		load(i)
	}
}

func TestMemoryTierByteBound(t *testing.T) {
	prevE, prevB := SetMemoryTierLimits(1<<16, 1)
	defer SetMemoryTierLimits(prevE, prevB)

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-bytes")
	if err := s.Store("interface", key, "conf", payload{Name: "oversized"}); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("load failed")
	}
	after := s.Stats()
	// The payload exceeds the byte bound, so promotion immediately
	// evicts it again: the tier never holds more than the cap.
	if after.MemoryBytes > 1 {
		t.Fatalf("byte bound not enforced: %d bytes resident", after.MemoryBytes)
	}
	if after.MemoryEvictions == before.MemoryEvictions {
		t.Fatal("over-budget promotion did not evict")
	}
}

func TestSetMemoryTierLimits(t *testing.T) {
	prevE, prevB := SetMemoryTierLimits(123, 456)
	defer SetMemoryTierLimits(prevE, prevB)
	// Non-positive values keep the current bound.
	if e, b := SetMemoryTierLimits(0, -1); e != 123 || b != 456 {
		t.Fatalf("previous bounds: %d/%d", e, b)
	}
	if e, b := SetMemoryTierLimits(7, 8); e != 123 || b != 456 {
		t.Fatalf("non-positive values must not change the bounds: %d/%d", e, b)
	}
}

func TestLoadAnyReturnsStoredFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-any")
	want := payload{Name: "whatever-conf", Syscalls: []uint64{42}}
	if err := s.Store("program", key, "conf-opaque|deps:libc.so=abc", want); err != nil {
		t.Fatal(err)
	}
	var out payload
	conf, ok := s.LoadAny("program", key, &out)
	if !ok || conf != "conf-opaque|deps:libc.so=abc" {
		t.Fatalf("LoadAny: ok=%v conf=%q", ok, conf)
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("LoadAny payload: %+v", out)
	}
	// The first LoadAny promoted the entry; the second is a memory hit
	// and must return the same fingerprint.
	h := s.Stats().MemoryHits
	out = payload{}
	conf, ok = s.LoadAny("program", key, &out)
	if !ok || conf != "conf-opaque|deps:libc.so=abc" || !reflect.DeepEqual(out, want) {
		t.Fatalf("warm LoadAny: ok=%v conf=%q %+v", ok, conf, out)
	}
	if s.Stats().MemoryHits != h+1 {
		t.Fatal("warm LoadAny did not hit the memory tier")
	}
	// Absent keys miss.
	if _, ok := s.LoadAny("program", testKey(t, "absent"), &out); ok {
		t.Fatal("LoadAny hit on absent key")
	}
}

func TestStoreInvalidatesMemoryTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "image-inval")
	if err := s.Store("interface", key, "conf", payload{Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", key, "conf", &out) {
		t.Fatal("load failed")
	}
	// Re-store (new conf): the promoted copy must not shadow it.
	if err := s.Store("interface", key, "conf-b", payload{Name: "v2"}); err != nil {
		t.Fatal(err)
	}
	if s.Load("interface", key, "conf", &out) {
		t.Fatal("stale conf served after re-store")
	}
	if !s.Load("interface", key, "conf-b", &out) || out.Name != "v2" {
		t.Fatalf("fresh entry not served: %+v", out)
	}
}
