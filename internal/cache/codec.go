package cache

import "sync"

// PackCodec is the bridge between the JSON loose tier and the binary
// pack tier for one entry kind. The cache package cannot know the
// payload types it stores (internal/shared and internal/ident import
// this package, not the other way around), so the packages that own a
// payload register a codec at init time and compaction consults the
// registry per kind.
//
// EncodeJSON re-encodes one loose JSON payload into the codec's
// versioned binary form. It is only called at compaction time (never on
// a hot path) and must be conservative: any payload it does not fully
// understand — unknown fields, shapes that would not round-trip
// byte-identically — must return ok=false, in which case the entry is
// packed as raw JSON instead. Correctness over compactness.
//
// Decode decodes a binary payload produced by EncodeJSON into out,
// which is the same pointer a Load caller handed the store. It runs on
// the probe path against bytes that alias a read-only mapping, so it
// must not retain or mutate data. A type mismatch (out is not the type
// this payload encodes) or any malformed input returns false, which the
// store treats as a pack miss — the probe falls through to the loose
// tier or a recompute, never to a wrong answer.
type PackCodec interface {
	EncodeJSON(payload []byte) ([]byte, bool)
	Decode(data []byte, out any) bool
}

// packCodecs maps kind -> PackCodec. Registration happens in package
// init functions; lookups happen on probe and compaction paths.
var packCodecs sync.Map

// RegisterPackCodec installs the binary pack codec for one entry kind.
// Kinds without a codec are packed as raw JSON (codec 0) and decoded
// with encoding/json on pack hits — still one binary-search probe into
// the mapping, just not zero-deserialization. Last registration wins;
// in practice each owning package registers exactly once from init.
func RegisterPackCodec(kind string, c PackCodec) {
	packCodecs.Store(kind, c)
}

func packCodecFor(kind string) PackCodec {
	if v, ok := packCodecs.Load(kind); ok {
		return v.(PackCodec)
	}
	return nil
}
