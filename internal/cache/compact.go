package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CompactStats describes one Compact run.
type CompactStats struct {
	// Packed is the entry count of the new pack.
	Packed int `json:"packed"`
	// FromLoose and FromPacks split Packed by origin: loose JSON
	// envelopes absorbed, and entries carried over from superseded
	// packs.
	FromLoose int `json:"from_loose"`
	FromPacks int `json:"from_packs"`
	// BinaryEncoded counts packed entries whose payload a registered
	// PackCodec re-encoded into its binary form; the rest are raw JSON.
	BinaryEncoded int `json:"binary_encoded"`
	// SkippedLoose counts loose files left in place: unreadable,
	// failing envelope validation, or keyed by something that is not a
	// hex SHA-256 (packs index raw 32-byte keys).
	SkippedLoose int `json:"skipped_loose"`
	// PrunedLoose and PrunedPacks count files deleted after the new
	// pack was installed.
	PrunedLoose int `json:"pruned_loose"`
	PrunedPacks int `json:"pruned_packs"`
	// PackPath is the new pack file ("" when there was nothing to
	// pack), PackBytes its size.
	PackPath  string `json:"pack_path,omitempty"`
	PackBytes int64  `json:"pack_bytes"`
}

// GCStats describes one GC run.
type GCStats struct {
	// PrunedLoose counts loose files deleted because an open pack holds
	// the identical (kind, key, conf) entry.
	PrunedLoose int `json:"pruned_loose"`
	// KeptLoose counts loose files retained (no pack entry, or newer
	// conf than the packed one).
	KeptLoose int `json:"kept_loose"`
}

// packsDir is where a store's pack files live.
func (s *Store) packsDir() string { return filepath.Join(s.dir, packDirName) }

// Packs returns the paths of the currently open pack files.
func (s *Store) Packs() []string {
	ps := s.packs.Load()
	if ps == nil {
		return nil
	}
	out := make([]string, 0, len(*ps))
	for _, p := range *ps {
		out = append(out, p.path)
	}
	return out
}

// discoverPacks opens every pack under <dir>/packs/, newest name last
// (names are content hashes, so order only matters for determinism).
// Invalid packs are skipped: corruption is never fatal, the loose tier
// still answers.
func (s *Store) discoverPacks() {
	entries, err := os.ReadDir(s.packsDir())
	if err != nil {
		return
	}
	var packs []*pack
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), packExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		p, err := openPack(filepath.Join(s.packsDir(), name))
		if err != nil {
			continue
		}
		packs = append(packs, p)
	}
	if len(packs) > 0 {
		s.packs.Store(&packs)
	}
}

// AttachPack opens one pack file (anywhere on disk — it does not have
// to live under the store's directory) and adds it to the probe set.
// This is the Options.PackPath hook: a fleet can build one pack
// centrally and point every node's analyzer at it read-only.
func (s *Store) AttachPack(path string) error {
	p, err := openPack(path)
	if err != nil {
		return err
	}
	for {
		old := s.packs.Load()
		var next []*pack
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, p)
		if s.packs.CompareAndSwap(old, &next) {
			return nil
		}
	}
}

// dropPack removes one pack from the probe set (its backing file
// vanished). The mapping is intentionally not unmapped — concurrent
// probes may hold the old snapshot; see the packs field doc.
func (s *Store) dropPack(victim *pack) {
	for {
		old := s.packs.Load()
		if old == nil {
			return
		}
		next := make([]*pack, 0, len(*old))
		for _, p := range *old {
			if p != victim {
				next = append(next, p)
			}
		}
		if len(next) == len(*old) {
			return
		}
		if s.packs.CompareAndSwap(old, &next) {
			return
		}
	}
}

// looseEntry is one validated loose file headed into a compaction.
type looseEntry struct {
	ent  packEntry
	path string
}

// collectLoose walks the loose tier and returns every entry that can
// enter a pack, plus the count of files it had to leave in place.
// Entries are validated exactly as Load would (envelope version, sha
// field against the file name) — a file Load would reject must not be
// laundered into a pack where it would start being served.
func (s *Store) collectLoose() (loose []looseEntry, skipped int, err error) {
	kinds, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("cache: %w", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() || kd.Name() == packDirName {
			continue
		}
		kind := kd.Name()
		codec := packCodecFor(kind)
		shards, err := os.ReadDir(filepath.Join(s.dir, kind))
		if err != nil {
			continue
		}
		for _, sd := range shards {
			if !sd.IsDir() {
				continue
			}
			shardDir := filepath.Join(s.dir, kind, sd.Name())
			files, err := os.ReadDir(shardDir)
			if err != nil {
				continue
			}
			for _, f := range files {
				name := f.Name()
				if !f.Type().IsRegular() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
					continue
				}
				key := strings.TrimSuffix(name, ".json")
				e := packEntry{kind: kind}
				if !decodeHexKey(key, &e.key) {
					skipped++
					continue
				}
				path := filepath.Join(shardDir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					skipped++
					continue
				}
				var env envelope
				if err := json.Unmarshal(data, &env); err != nil ||
					env.SHA256 != key ||
					(env.Version != formatVersion && env.Version != legacyVersion) {
					skipped++
					continue
				}
				e.conf = env.Conf
				e.codec = packCodecJSON
				e.payload = env.Payload
				if codec != nil {
					if bin, ok := codec.EncodeJSON(env.Payload); ok {
						e.codec = packCodecBinary
						e.payload = bin
					}
				}
				loose = append(loose, looseEntry{ent: e, path: path})
			}
		}
	}
	return loose, skipped, nil
}

// Compact folds the loose tier and any currently open packs into one
// new pack file, installs it atomically in the probe set, and then
// prunes what it absorbed: the loose files and the superseded pack
// files. Readers are never caught between tiers — until the swap the
// old tiers answer, after it the new pack does, and a probe holding
// the old pack snapshot keeps a valid (deleted-but-mapped) view until
// its next probe.
//
// Concurrent Stores are safe but may race the prune: an entry
// re-written between the walk and the prune can lose its loose file.
// That is a cache losing one entry — the next Load recomputes and
// re-stores; never unsound.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	var st CompactStats

	loose, skipped, err := s.collectLoose()
	if err != nil {
		return st, err
	}
	st.SkippedLoose = skipped
	seen := make(map[string]bool, len(loose))
	entries := make([]packEntry, 0, len(loose))
	for _, le := range loose {
		entries = append(entries, le.ent)
		seen[le.ent.kind+"\x00"+string(le.ent.key[:])+"\x00"+le.ent.conf] = true
		if le.ent.codec == packCodecBinary {
			st.BinaryEncoded++
		}
	}
	st.FromLoose = len(loose)

	// Carry over entries from the packs being superseded, loose copies
	// winning (they are content-identical; the loose one is at worst
	// fresher). JSON-codec entries get another shot at binary encoding
	// in case a codec was registered since the old pack was built.
	var oldPacks []*pack
	if ps := s.packs.Load(); ps != nil {
		oldPacks = *ps
	}
	for _, p := range oldPacks {
		p.entries(func(kind, key, conf string, codec byte, payload []byte) {
			var e packEntry
			if !decodeHexKey(key, &e.key) {
				return
			}
			if seen[kind+"\x00"+string(e.key[:])+"\x00"+conf] {
				return
			}
			e.kind, e.conf, e.codec = kind, conf, codec
			e.payload = payload
			if codec == packCodecJSON {
				if c := packCodecFor(kind); c != nil {
					if bin, ok := c.EncodeJSON(payload); ok {
						e.codec, e.payload = packCodecBinary, bin
					}
				}
			}
			if e.codec == packCodecBinary {
				st.BinaryEncoded++
			}
			entries = append(entries, e)
			st.FromPacks++
		})
	}
	if len(entries) == 0 {
		return st, nil
	}

	buf, err := buildPack(entries)
	if err != nil {
		return st, err
	}
	// buildPack dedups exact (kind, key, conf) repeats.
	if err := os.MkdirAll(s.packsDir(), 0o755); err != nil {
		return st, fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(s.packsDir(), ".pack.tmp-*")
	if err != nil {
		return st, fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return st, fmt.Errorf("cache: write pack: %w", werr)
	}
	// Content-addressed name: the body checksum the header already
	// carries. Identical content compacts to the identical file.
	path := filepath.Join(s.packsDir(), fmt.Sprintf("pack-%x%s", buf[48:60], packExt))
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return st, fmt.Errorf("cache: %w", err)
	}
	np, err := openPack(path)
	if err != nil {
		// The pack we just wrote does not validate: something is badly
		// wrong (disk?); leave the loose tier untouched.
		_ = os.Remove(path)
		return st, err
	}
	next := []*pack{np}
	s.packs.Store(&next)
	st.Packed = np.count
	st.PackPath = path
	st.PackBytes = int64(len(buf))

	// Prune what the new pack absorbed. Failures here are harmless
	// (the loose copy just survives alongside the pack).
	for _, le := range loose {
		if os.Remove(le.path) == nil {
			st.PrunedLoose++
		}
	}
	for _, p := range oldPacks {
		if p.path != path && os.Remove(p.path) == nil {
			st.PrunedPacks++
		}
	}
	return st, nil
}

// GC prunes loose files that an open pack already serves: for every
// valid loose entry whose exact (kind, key, conf) is packed, the loose
// file is redundant (entries are content-addressed — same key and
// fingerprint, same payload). Loose entries the packs do not cover are
// kept. Also sweeps abandoned temp files out of the packs directory.
func (s *Store) GC() (GCStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	var st GCStats
	var packs []*pack
	if ps := s.packs.Load(); ps != nil {
		packs = *ps
	}
	loose, skipped, err := s.collectLoose()
	if err != nil {
		return st, err
	}
	st.KeptLoose = skipped
	for _, le := range loose {
		key := fmt.Sprintf("%x", le.ent.key)
		packed := false
		for _, p := range packs {
			if _, _, _, ok := p.probe(le.ent.kind, key, le.ent.conf, false); ok {
				packed = true
				break
			}
		}
		if packed && os.Remove(le.path) == nil {
			st.PrunedLoose++
		} else {
			st.KeptLoose++
		}
	}
	sweepStaleTemps(s.packsDir())
	return st, nil
}
