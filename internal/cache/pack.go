package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"bside/internal/elff"
)

// The pack tier: loose JSON envelopes compacted into one immutable,
// content-addressed file that warm processes memory-map read-only and
// probe by binary search — no per-entry open(), no envelope decode,
// and (for kinds with a registered PackCodec) no payload JSON either.
//
// File layout (all integers little-endian):
//
//	header (96 B)
//	  [0:4]   magic "BSPK"
//	  [4:8]   u32 format version (1)
//	  [8:12]  u32 entry count
//	  [12:16] reserved
//	  [16:24] u64 index offset   (= 96)
//	  [24:32] u64 strings offset (kind table + conf-fingerprint blob)
//	  [32:40] u64 payload offset
//	  [40:48] u64 file size
//	  [48:80] sha256 of everything after the header
//	  [80:96] reserved
//	index: count fixed-width 48 B records, sorted by (kind, key, conf)
//	  [0:32]  key   (the entry's SHA-256, raw bytes)
//	  [32:36] u32 conf offset (absolute)
//	  [36:38] u16 conf length
//	  [38]    u8 kind id (index into the kind table)
//	  [39]    u8 codec (0 = raw JSON payload, 1 = registered PackCodec)
//	  [40:48] u64 payload offset (absolute, points at the length prefix)
//	strings: u16 kind count, then per kind u16 length + bytes,
//	  then the deduplicated conf-fingerprint blob
//	payloads: per entry u32 length + bytes
//
// The whole-file checksum makes corruption detection O(size) at open
// rather than per-probe: a truncated or bit-flipped pack fails to open
// and the store silently runs without it — the loose tier or a
// recompute answers instead, never a ghost. Record sortedness and every
// offset are validated at open too, so the probe path can binary-search
// and slice without re-checking bounds.
const (
	packMagic      = "BSPK"
	packFormat     = 1
	packHeaderSize = 96
	packRecordSize = 48

	packCodecJSON   = 0
	packCodecBinary = 1

	// packDirName is the subdirectory of a store where pack files live,
	// excluded from the loose-tier directory walk.
	packDirName = "packs"
	packExt     = ".pack"
)

// pack is one opened, validated pack file: an immutable mapping plus
// the parsed kind table. All probe state is derived from data; a pack
// is safe for concurrent use without locks.
type pack struct {
	path   string
	img    *elff.Image
	data   []byte
	count  int
	index  []byte   // the record region, count*packRecordSize bytes
	kinds  []string // kind id -> kind name
	mapped bool
}

// openPack maps and fully validates one pack file. Any defect —
// truncation, a failed checksum, unsorted records, an offset outside
// its region — is an error; the caller treats it as "this pack does
// not exist".
func openPack(path string) (*pack, error) {
	img, err := elff.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	p, err := parsePack(path, img)
	if err != nil {
		_ = img.Close()
		return nil, fmt.Errorf("cache: pack %s: %w", path, err)
	}
	return p, nil
}

func parsePack(path string, img *elff.Image) (*pack, error) {
	data := img.Data
	if len(data) < packHeaderSize {
		return nil, fmt.Errorf("short file (%d bytes)", len(data))
	}
	if string(data[0:4]) != packMagic {
		return nil, fmt.Errorf("bad magic")
	}
	if v := le32(data[4:8]); v != packFormat {
		return nil, fmt.Errorf("unknown format version %d", v)
	}
	count := int(le32(data[8:12]))
	indexOff := le64(data[16:24])
	stringsOff := le64(data[24:32])
	payloadOff := le64(data[32:40])
	fileSize := le64(data[40:48])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("size mismatch: header says %d, file is %d", fileSize, len(data))
	}
	sum := sha256.Sum256(data[packHeaderSize:])
	if !bytes.Equal(sum[:], data[48:80]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	if indexOff != packHeaderSize ||
		stringsOff != indexOff+uint64(count)*packRecordSize ||
		payloadOff < stringsOff || payloadOff > uint64(len(data)) {
		return nil, fmt.Errorf("inconsistent region offsets")
	}
	// Kind table.
	strRegion := data[stringsOff:payloadOff]
	if len(strRegion) < 2 {
		return nil, fmt.Errorf("truncated kind table")
	}
	nKinds := int(binary.LittleEndian.Uint16(strRegion))
	pos := 2
	kinds := make([]string, 0, nKinds)
	for i := 0; i < nKinds; i++ {
		if pos+2 > len(strRegion) {
			return nil, fmt.Errorf("truncated kind table")
		}
		n := int(binary.LittleEndian.Uint16(strRegion[pos:]))
		pos += 2
		if pos+n > len(strRegion) {
			return nil, fmt.Errorf("truncated kind table")
		}
		kinds = append(kinds, string(strRegion[pos:pos+n]))
		pos += n
	}
	p := &pack{
		path:   path,
		img:    img,
		data:   data,
		count:  count,
		index:  data[indexOff:stringsOff],
		kinds:  kinds,
		mapped: img.Mapped(),
	}
	// Validate every record once so the probe path never has to: conf
	// and payload slices in bounds, kind ids resolvable, and strict
	// (kind, key, conf) ordering so binary search is sound.
	var prev []byte
	for i := 0; i < count; i++ {
		r := p.rec(i)
		if int(r[38]) >= len(kinds) {
			return nil, fmt.Errorf("record %d: bad kind id %d", i, r[38])
		}
		cOff, cLen := uint64(le32(r[32:36])), uint64(binary.LittleEndian.Uint16(r[36:38]))
		if cOff < stringsOff || cOff+cLen > payloadOff {
			return nil, fmt.Errorf("record %d: conf out of bounds", i)
		}
		pOff := le64(r[40:48])
		if pOff < payloadOff || pOff+4 > uint64(len(data)) {
			return nil, fmt.Errorf("record %d: payload out of bounds", i)
		}
		pLen := uint64(le32(data[pOff : pOff+4]))
		if pOff+4+pLen > uint64(len(data)) {
			return nil, fmt.Errorf("record %d: payload out of bounds", i)
		}
		if prev != nil && packRecCompare(prev, r, p.data) >= 0 {
			return nil, fmt.Errorf("record %d: index not sorted", i)
		}
		prev = r
	}
	return p, nil
}

func (p *pack) rec(i int) []byte {
	return p.index[i*packRecordSize : (i+1)*packRecordSize]
}

func (p *pack) recConf(r []byte) []byte {
	off := le32(r[32:36])
	n := binary.LittleEndian.Uint16(r[36:38])
	return p.data[off : uint64(off)+uint64(n)]
}

func (p *pack) recPayload(r []byte) []byte {
	off := le64(r[40:48])
	n := le32(p.data[off : off+4])
	return p.data[off+4 : off+4+uint64(n)]
}

// packRecCompare orders two records by (kind id, key, conf).
func packRecCompare(a, b []byte, data []byte) int {
	if a[38] != b[38] {
		if a[38] < b[38] {
			return -1
		}
		return 1
	}
	if c := bytes.Compare(a[0:32], b[0:32]); c != 0 {
		return c
	}
	ac := data[le32(a[32:36]) : uint64(le32(a[32:36]))+uint64(binary.LittleEndian.Uint16(a[36:38]))]
	bc := data[le32(b[32:36]) : uint64(le32(b[32:36]))+uint64(binary.LittleEndian.Uint16(b[36:38]))]
	return bytes.Compare(ac, bc)
}

// kindID resolves a kind name against the pack's kind table (-1 when
// the pack holds no entries of that kind). Linear: the table has at
// most a handful of kinds.
func (p *pack) kindID(kind string) int {
	for i, k := range p.kinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// decodeHexKey decodes a 64-char lowercase-hex key into dst without
// allocating. Keys that are not canonical hex SHA-256 strings never
// enter a pack, so a malformed key is simply "not found".
func decodeHexKey(key string, dst *[32]byte) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < 32; i++ {
		hi := hexNibble(key[2*i])
		lo := hexNibble(key[2*i+1])
		if hi < 0 || lo < 0 {
			return false
		}
		dst[i] = byte(hi<<4 | lo)
	}
	return true
}

func hexNibble(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

// probe binary-searches the pack for (kind, key) and returns the first
// record whose conf fingerprint is acceptable: the exact conf when
// anyConf is false, or whatever is stored (LoadAny) when true. The
// returned payload aliases the mapping and must be decoded, not
// retained. Allocation-free on the Load path.
func (p *pack) probe(kind, key, conf string, anyConf bool) (gotConf string, codec byte, payload []byte, ok bool) {
	kid := p.kindID(kind)
	if kid < 0 {
		return "", 0, nil, false
	}
	var kb [32]byte
	if !decodeHexKey(key, &kb) {
		return "", 0, nil, false
	}
	lo := sort.Search(p.count, func(i int) bool {
		r := p.rec(i)
		if int(r[38]) != kid {
			return int(r[38]) > kid
		}
		return bytes.Compare(r[0:32], kb[:]) >= 0
	})
	for i := lo; i < p.count; i++ {
		r := p.rec(i)
		if int(r[38]) != kid || !bytes.Equal(r[0:32], kb[:]) {
			break
		}
		c := p.recConf(r)
		if anyConf || string(c) == conf {
			if anyConf {
				gotConf = string(c)
			} else {
				gotConf = conf
			}
			return gotConf, r[39], p.recPayload(r), true
		}
	}
	return "", 0, nil, false
}

// entries iterates every record in the pack, handing the callback views
// into the mapping (kind, hex key, conf, codec, payload). Used by
// compaction to carry an old pack's entries into its successor.
func (p *pack) entries(fn func(kind, key, conf string, codec byte, payload []byte)) {
	for i := 0; i < p.count; i++ {
		r := p.rec(i)
		fn(p.kinds[r[38]], hex.EncodeToString(r[0:32]), string(p.recConf(r)), r[39], p.recPayload(r))
	}
}

// packEntry is one entry headed into a pack build.
type packEntry struct {
	kind    string
	key     [32]byte
	conf    string
	codec   byte
	payload []byte
}

// buildPack serializes entries into pack-file bytes: entries are sorted
// by (kind, key, conf), exact duplicates collapse to the first
// occurrence (callers order loose before carried-over pack entries, so
// the freshest copy wins — they are content-identical anyway), conf
// fingerprints are deduplicated into the string blob, and the trailing
// checksum region is hashed last.
func buildPack(entries []packEntry) ([]byte, error) {
	// Kind table in first-seen-sorted order.
	kindSet := map[string]bool{}
	for _, e := range entries {
		kindSet[e.kind] = true
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if len(kinds) > math.MaxUint8+1 {
		return nil, fmt.Errorf("cache: too many kinds (%d) for one pack", len(kinds))
	}
	kindID := make(map[string]uint8, len(kinds))
	for i, k := range kinds {
		kindID[k] = uint8(i)
	}
	for _, e := range entries {
		if len(e.conf) > math.MaxUint16 {
			return nil, fmt.Errorf("cache: conf fingerprint too long (%d bytes)", len(e.conf))
		}
		if uint64(len(e.payload)) > math.MaxUint32 {
			return nil, fmt.Errorf("cache: payload too large (%d bytes)", len(e.payload))
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if kindID[a.kind] != kindID[b.kind] {
			return kindID[a.kind] < kindID[b.kind]
		}
		if c := bytes.Compare(a.key[:], b.key[:]); c != 0 {
			return c < 0
		}
		return a.conf < b.conf
	})
	dedup := entries[:0]
	for i, e := range entries {
		if i > 0 {
			prev := dedup[len(dedup)-1]
			if prev.kind == e.kind && prev.key == e.key && prev.conf == e.conf {
				continue
			}
		}
		dedup = append(dedup, e)
	}
	entries = dedup

	// Region layout.
	indexOff := uint64(packHeaderSize)
	stringsOff := indexOff + uint64(len(entries))*packRecordSize
	strBlob := make([]byte, 0, 256)
	strBlob = binary.LittleEndian.AppendUint16(strBlob, uint16(len(kinds)))
	for _, k := range kinds {
		strBlob = binary.LittleEndian.AppendUint16(strBlob, uint16(len(k)))
		strBlob = append(strBlob, k...)
	}
	confOff := make(map[string]uint64, 8)
	for _, e := range entries {
		if _, ok := confOff[e.conf]; ok {
			continue
		}
		confOff[e.conf] = stringsOff + uint64(len(strBlob))
		strBlob = append(strBlob, e.conf...)
	}
	payloadOff := stringsOff + uint64(len(strBlob))
	if payloadOff > math.MaxUint32 {
		// Record conf offsets are u32; a pack whose index+strings exceed
		// 4 GiB is far past the design point anyway.
		return nil, fmt.Errorf("cache: pack string region offset overflows")
	}

	var totalPayload uint64
	for _, e := range entries {
		totalPayload += 4 + uint64(len(e.payload))
	}
	buf := make([]byte, 0, payloadOff+totalPayload)
	buf = append(buf, make([]byte, packHeaderSize)...)

	// Index records (payload offsets are assigned in sorted order, so
	// the payload region is laid out in index order too).
	pOff := payloadOff
	for _, e := range entries {
		var r [packRecordSize]byte
		copy(r[0:32], e.key[:])
		binary.LittleEndian.PutUint32(r[32:36], uint32(confOff[e.conf]))
		binary.LittleEndian.PutUint16(r[36:38], uint16(len(e.conf)))
		r[38] = kindID[e.kind]
		r[39] = e.codec
		binary.LittleEndian.PutUint64(r[40:48], pOff)
		buf = append(buf, r[:]...)
		pOff += 4 + uint64(len(e.payload))
	}
	buf = append(buf, strBlob...)
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.payload)))
		buf = append(buf, e.payload...)
	}

	h := buf[0:packHeaderSize]
	copy(h[0:4], packMagic)
	binary.LittleEndian.PutUint32(h[4:8], packFormat)
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(entries)))
	binary.LittleEndian.PutUint64(h[16:24], indexOff)
	binary.LittleEndian.PutUint64(h[24:32], stringsOff)
	binary.LittleEndian.PutUint64(h[32:40], payloadOff)
	binary.LittleEndian.PutUint64(h[40:48], uint64(len(buf)))
	sum := sha256.Sum256(buf[packHeaderSize:])
	copy(h[48:80], sum[:])
	return buf, nil
}

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
