package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// populate stores n entries of kind under distinct keys and returns
// the keys. Conf is confFor(i).
func populate(t *testing.T, s *Store, kind string, n int, confFor func(int) string) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = testKey(t, fmt.Sprintf("%s-image-%d", kind, i))
		in := payload{Name: fmt.Sprintf("%s-%d", kind, i), Syscalls: []uint64{uint64(i), uint64(i) + 7}}
		if err := s.Store(kind, keys[i], confFor(i), in); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func constConf(string) func(int) string { return func(int) string { return "conf" } }

// looseFiles counts the loose .json entries under dir.
func looseFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() && strings.HasSuffix(path, ".json") && !strings.Contains(path, packDirName) {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPackRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ifaceKeys := populate(t, s, "interface", 8, constConf(""))
	progKeys := populate(t, s, "program", 8, func(i int) string { return fmt.Sprintf("conf-%d", i%2) })

	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Packed != 16 || cs.FromLoose != 16 {
		t.Fatalf("compact stats: %+v", cs)
	}
	if cs.PrunedLoose != 16 || looseFiles(t, dir) != 0 {
		t.Fatalf("loose tier not pruned: %+v (%d files left)", cs, looseFiles(t, dir))
	}

	// A fresh handle (fresh process) must discover the pack and serve
	// every entry from it, bypassing the memory tier to prove it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.DisableMemoryTier()
	for i, key := range ifaceKeys {
		var out payload
		if !s2.Load("interface", key, "conf", &out) {
			t.Fatalf("interface %d not served from pack", i)
		}
		want := payload{Name: fmt.Sprintf("interface-%d", i), Syscalls: []uint64{uint64(i), uint64(i) + 7}}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("interface %d: got %+v want %+v", i, out, want)
		}
	}
	for i, key := range progKeys {
		var out payload
		conf, ok := s2.LoadAny("program", key, &out)
		if !ok || conf != fmt.Sprintf("conf-%d", i%2) {
			t.Fatalf("program %d: ok=%v conf=%q", i, ok, conf)
		}
	}
	st := s2.Stats()
	if st.PackHits != 16 || st.Hits != 16 || st.MemoryHits != 0 {
		t.Fatalf("stats after pack round trip: %+v", st)
	}
	if st.Packs != 1 || st.PackEntries != 16 {
		t.Fatalf("pack gauges: %+v", st)
	}
}

func TestPackHitPromotesToMemoryTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := populate(t, s, "interface", 1, constConf(""))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	for i := 0; i < 2; i++ {
		if !s2.Load("interface", keys[0], "conf", &out) {
			t.Fatalf("load %d missed", i)
		}
	}
	st := s2.Stats()
	if st.PackHits != 1 || st.MemoryHits != 1 {
		t.Fatalf("second load should be a memory hit over the pack: %+v", st)
	}
}

func TestPackConfMismatchFallsThroughToLoose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "retuned-image")
	if err := s.Store("program", key, "conf-old", payload{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.DisableMemoryTier()
	var out payload
	// The packed entry was stored under conf-old: a retuned analyzer
	// must not be served by it.
	if s2.Load("program", key, "conf-new", &out) {
		t.Fatal("pack entry served across conf fingerprints")
	}
	// The retuned analyzer recomputes and stores loose; the loose entry
	// must win over the still-packed old-conf one.
	if err := s2.Store("program", key, "conf-new", payload{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	if !s2.Load("program", key, "conf-new", &out) || out.Name != "new" {
		t.Fatalf("fresh loose entry not served: %+v", out)
	}
	// The old conf still resolves from the pack (a mixed-config fleet
	// sharing one cache keeps both).
	if !s2.Load("program", key, "conf-old", &out) || out.Name != "old" {
		t.Fatalf("packed old-conf entry lost: %+v", out)
	}
	if st := s2.Stats(); st.PackHits != 1 {
		t.Fatalf("expected exactly one pack hit: %+v", st)
	}
}

func TestCorruptPackRejectedAtOpen(t *testing.T) {
	for _, mode := range []string{"bitflip", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			keys := populate(t, s, "interface", 4, constConf(""))
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			packs := s.Packs()
			if len(packs) != 1 {
				t.Fatalf("expected one pack, got %v", packs)
			}
			data, err := os.ReadFile(packs[0])
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "bitflip":
				data[len(data)/2] ^= 0x40
			case "truncate":
				data = data[:len(data)-7]
			}
			if err := os.WriteFile(packs[0], data, 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh handle must refuse the damaged pack entirely; with
			// the loose tier compacted away, loads are misses (the caller
			// recomputes) — never a decode of corrupt bytes.
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			s2.DisableMemoryTier()
			if got := s2.Packs(); len(got) != 0 {
				t.Fatalf("corrupt pack was opened: %v", got)
			}
			var out payload
			if s2.Load("interface", keys[0], "conf", &out) {
				t.Fatal("load served from a corrupt pack")
			}
			// Recompute-and-store repopulates loose; the next Compact
			// rebuilds a healthy pack over it.
			if err := s2.Store("interface", keys[0], "conf", payload{Name: "recomputed"}); err != nil {
				t.Fatal(err)
			}
			if !s2.Load("interface", keys[0], "conf", &out) || out.Name != "recomputed" {
				t.Fatalf("recomputed entry not served: %+v", out)
			}
		})
	}
}

func TestPackGhostServeProtection(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := populate(t, s, "interface", 1, constConf(""))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load("interface", keys[0], "conf", &out) {
		t.Fatal("packed entry not served")
	}
	// Wipe the cache directory under the live handle: both the memory
	// copy (src stat) and the still-mapped pack (path stat) must stop
	// serving — an operator who cleared the cache expects recomputes.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if s.Load("interface", keys[0], "conf", &out) {
		t.Fatal("ghost-served after the cache directory was deleted")
	}
	if got := s.Packs(); len(got) != 0 {
		t.Fatalf("deleted pack still in the probe set: %v", got)
	}
}

func TestConcurrentReadersDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	keys := populate(t, s, "interface", 16, constConf(""))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[(w+i)%len(keys)]
				var out payload
				if !s.Load("interface", key, "conf", &out) {
					t.Errorf("reader %d: load %s missed mid-compaction", w, key[:8])
					return
				}
			}
		}(w)
	}
	// Compact repeatedly under the readers, interleaved with new
	// stores that the next compaction absorbs: no probe may ever land
	// between tiers.
	for round := 0; round < 3; round++ {
		if _, err := s.Compact(); err != nil {
			t.Error(err)
			break
		}
		extra := testKey(t, fmt.Sprintf("extra-%d", round))
		if err := s.Store("interface", extra, "conf", payload{Name: "x"}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestCompactCarriesOldPackAndLegacyEnvelopes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := populate(t, s, "interface", 2, constConf(""))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// New loose entries after the first pack: one modern, one rewritten
	// as a pretty-printed v1 envelope (the pre-compaction format a
	// long-lived fleet cache still holds).
	secondKey := testKey(t, "post-pack-image")
	if err := s.Store("interface", secondKey, "conf", payload{Name: "second"}); err != nil {
		t.Fatal(err)
	}
	legacyKey := testKey(t, "legacy-image")
	if err := s.Store("interface", legacyKey, "conf", payload{Name: "legacy"}); err != nil {
		t.Fatal(err)
	}
	legacyPath := s.path("interface", legacyKey)
	legacy := fmt.Sprintf("{\n  \"version\": 1,\n  \"sha256\": %q,\n  \"conf\": \"conf\",\n  \"payload\": {\"name\": \"legacy\"}\n}\n", legacyKey)
	if err := os.WriteFile(legacyPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.FromPacks != 2 || cs.FromLoose != 2 || cs.Packed != 4 || cs.PrunedPacks != 1 {
		t.Fatalf("second compact stats: %+v", cs)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.DisableMemoryTier()
	for _, key := range []string{first[0], first[1], secondKey, legacyKey} {
		var out payload
		if !s2.Load("interface", key, "conf", &out) {
			t.Fatalf("entry %s lost across re-compaction", key[:8])
		}
	}
	if st := s2.Stats(); st.Packs != 1 || st.PackHits != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGCPrunesOnlyPackedLoose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	packed := populate(t, s, "interface", 3, constConf(""))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Re-store one packed key (same conf — content-addressed, same
	// payload) plus one brand-new key: GC may prune the former, must
	// keep the latter.
	if err := s.Store("interface", packed[0], "conf", payload{Name: "interface-0", Syscalls: []uint64{0, 7}}); err != nil {
		t.Fatal(err)
	}
	fresh := testKey(t, "fresh-after-pack")
	if err := s.Store("interface", fresh, "conf", payload{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	gs, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gs.PrunedLoose != 1 || gs.KeptLoose != 1 {
		t.Fatalf("gc stats: %+v", gs)
	}
	var out payload
	if !s.Load("interface", fresh, "conf", &out) || out.Name != "fresh" {
		t.Fatal("gc pruned an unpacked entry")
	}
	if !s.Load("interface", packed[0], "conf", &out) {
		t.Fatal("gc broke a packed entry")
	}
}

func TestCollectLooseSkipsForeignKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A valid entry under a key that is not hex SHA-256: packs index
	// raw 32-byte keys, so it must stay loose and keep working.
	if err := s.Store("interface", "not-a-hash-key", "conf", payload{Name: "odd"}); err != nil {
		t.Fatal(err)
	}
	keys := populate(t, s, "interface", 1, constConf(""))
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Packed != 1 || cs.SkippedLoose != 1 {
		t.Fatalf("compact stats: %+v", cs)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.DisableMemoryTier()
	var out payload
	if !s2.Load("interface", "not-a-hash-key", "conf", &out) || out.Name != "odd" {
		t.Fatal("foreign-key entry lost by compaction")
	}
	if !s2.Load("interface", keys[0], "conf", &out) {
		t.Fatal("packed entry not served")
	}
}

func TestBuildPackDeterministicAndDeduped(t *testing.T) {
	mk := func(kind, img, conf, body string) packEntry {
		e := packEntry{kind: kind, conf: conf, payload: []byte(body)}
		if !decodeHexKey(testKeyRaw(img), &e.key) {
			t.Fatalf("bad test key for %q", img)
		}
		return e
	}
	a := []packEntry{
		mk("program", "i1", "c1", `{"name":"a"}`),
		mk("interface", "i2", "", `{"name":"b"}`),
		mk("program", "i1", "c1", `{"name":"a"}`), // exact dup
		mk("program", "i1", "c2", `{"name":"a2"}`),
	}
	b := []packEntry{a[3], a[1], a[0], a[2]} // same set, different order
	ba, err := buildPack(append([]packEntry(nil), a...))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := buildPack(append([]packEntry(nil), b...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ba, bb) {
		t.Fatal("pack bytes depend on input order")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "x"+packExt)
	if err := os.WriteFile(path, ba, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := openPack(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.count != 3 {
		t.Fatalf("dedup: %d entries, want 3", p.count)
	}
	if _, _, payload, ok := p.probe("program", testKeyRaw("i1"), "c2", false); !ok || string(payload) != `{"name":"a2"}` {
		t.Fatalf("probe c2: ok=%v payload=%q", ok, payload)
	}
	if _, _, _, ok := p.probe("program", testKeyRaw("i1"), "c3", false); ok {
		t.Fatal("probe served a conf never stored")
	}
	if conf, _, _, ok := p.probe("interface", testKeyRaw("i2"), "ignored", true); !ok || conf != "" {
		t.Fatalf("anyConf probe: ok=%v conf=%q", ok, conf)
	}
}

// testKeyRaw is testKey without the *testing.T plumbing, for table
// construction.
func testKeyRaw(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// TestMemoryHitIsAllocationFree pins the satellite fix: a memory-tier
// hit must assign the already-decoded value, not re-Unmarshal the
// payload. The stat of the durable backing and the memKey build cost a
// small constant number of allocations; the old code's per-hit
// json.Unmarshal scaled with payload size. Both are asserted: a small
// constant ceiling, and no growth on a payload ~100x larger.
func TestMemoryHitIsAllocationFree(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	small := testKey(t, "alloc-small")
	big := testKey(t, "alloc-big")
	bigSet := make([]uint64, 400)
	for i := range bigSet {
		bigSet[i] = uint64(i * 3)
	}
	if err := s.Store("interface", small, "conf", payload{Name: "s", Syscalls: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Store("interface", big, "conf", payload{Name: strings.Repeat("b", 512), Syscalls: bigSet}); err != nil {
		t.Fatal(err)
	}
	measure := func(key string) float64 {
		var out payload
		if !s.Load("interface", key, "conf", &out) { // promote
			t.Fatalf("seed load for %s missed", key[:8])
		}
		return testing.AllocsPerRun(100, func() {
			var out payload
			if !s.Load("interface", key, "conf", &out) {
				t.Fatal("memory hit missed")
			}
		})
	}
	smallAllocs := measure(small)
	bigAllocs := measure(big)
	// The constant: memKey concat + os.Stat internals. Anything above
	// this means a decode crept back onto the hit path.
	const ceiling = 6
	if smallAllocs > ceiling || bigAllocs > ceiling {
		t.Fatalf("memory hit allocates: small=%.0f big=%.0f (ceiling %d)", smallAllocs, bigAllocs, ceiling)
	}
	if bigAllocs > smallAllocs {
		t.Fatalf("memory-hit allocations scale with payload size: small=%.0f big=%.0f", smallAllocs, bigAllocs)
	}
	if st := s.Stats(); st.MemoryHits == 0 {
		t.Fatalf("loads were not memory hits: %+v", st)
	}
}
