package cache

import "encoding/binary"

// PayloadReader is a bounds-checked cursor over one pack codec
// payload, shared by the PackCodec implementations (the cache package
// cannot host the codecs themselves — the payload-owning packages
// import cache, not vice versa). Any out-of-bounds or malformed read
// poisons the reader; codecs check Done at the end and fail the decode
// as a whole, which the probe path treats as a pack miss.
type PayloadReader struct {
	data []byte
	pos  int
	bad  bool
}

func NewPayloadReader(data []byte) *PayloadReader {
	return &PayloadReader{data: data}
}

// Done reports a clean, fully-consumed decode: no poisoned read and no
// trailing bytes (trailing garbage means the payload is not what the
// codec thinks it is).
func (r *PayloadReader) Done() bool { return !r.bad && r.pos == len(r.data) }

// Bad reports whether any read has gone out of bounds.
func (r *PayloadReader) Bad() bool { return r.bad }

func (r *PayloadReader) Byte() byte {
	if r.pos >= len(r.data) {
		r.bad = true
		return 0xff
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *PayloadReader) Uvarint() uint64 {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

func (r *PayloadReader) Varint() int64 {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

// Str reads a uvarint length-prefixed string. The returned string is a
// copy — pack payloads alias a read-only mapping that must not leak
// into long-lived decoded values by reference.
func (r *PayloadReader) Str() string {
	n := r.Uvarint()
	if r.bad || n > uint64(len(r.data)-r.pos) {
		r.bad = true
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Deltas reads a uvarint count followed by that many ascending-delta
// encoded values (first absolute). Zero count decodes as nil, matching
// how an omitempty JSON round trip restores an absent slice.
func (r *PayloadReader) Deltas() []uint64 {
	n := r.Uvarint()
	if r.bad || n == 0 {
		return nil
	}
	return r.DeltaValues(n)
}

// DeltaValues reads exactly n ascending-delta encoded values.
func (r *PayloadReader) DeltaValues(n uint64) []uint64 {
	if n > uint64(len(r.data)) { // each value is ≥ 1 byte
		r.bad = true
		return nil
	}
	vals := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d := r.Uvarint()
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		vals = append(vals, prev)
	}
	if r.bad {
		return nil
	}
	return vals
}

// AppendDeltas appends a uvarint count plus ascending-delta encoded
// values — the inverse of Deltas. False when vals is not sorted
// ascending (the codec should keep the JSON payload instead).
func AppendDeltas(buf []byte, vals []uint64) ([]byte, bool) {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	return AppendDeltaValues(buf, vals)
}

// AppendDeltaValues appends the values without the count prefix.
func AppendDeltaValues(buf []byte, vals []uint64) ([]byte, bool) {
	prev := uint64(0)
	for i, v := range vals {
		if i > 0 && v < prev {
			return nil, false
		}
		d := v - prev
		if i == 0 {
			d = v
		}
		buf = binary.AppendUvarint(buf, d)
		prev = v
	}
	return buf, true
}
