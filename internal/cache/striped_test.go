package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestStripedTierPropertyVsReference drives identical randomized op
// streams through the striped tier and a single-mutex reference LRU
// with the same total budgets, checking the invariants striping must
// preserve: payload correctness (a resident entry always returns the
// last value put under its key), budget enforcement (resident entries
// and bytes never exceed the configured caps plus the per-stripe floor
// slack), and eviction behaviour within a per-stripe tolerance of the
// reference — striping relaxes global recency, it must not change the
// budget arithmetic.
func TestStripedTierPropertyVsReference(t *testing.T) {
	const (
		maxEntries = 64
		maxBytes   = int64(4 << 10)
		maxPayload = 256
		numKeys    = 200
		numOps     = 4000
	)
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		striped := newStripedTier(maxEntries, maxBytes)
		ref := newLRUTier(maxEntries, maxBytes)

		// Model of the last value stored per key while resident.
		last := make(map[string]string)
		keys := make([]string, numKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("dir\x00interface\x00key-%03d-%d", i, seed)
		}
		for op := 0; op < numOps; op++ {
			key := keys[rng.Intn(numKeys)]
			switch rng.Intn(10) {
			case 0: // delete
				striped.del(key)
				ref.del(key)
				delete(last, key)
			case 1, 2, 3: // get
				if ent, ok := striped.get(key); ok {
					want, stored := last[key]
					if !stored {
						t.Fatalf("seed %d: get %q returned an entry never stored", seed, key)
					}
					if got, _ := ent.val.(string); got != want {
						t.Fatalf("seed %d: get %q = %q, want %q", seed, key, got, want)
					}
				}
				ref.get(key)
			default: // put
				payload := strings.Repeat("x", 1+rng.Intn(maxPayload-1))
				ent := memEntry{key: key, conf: "c", size: len(payload), val: payload}
				striped.put(ent)
				ref.put(memEntry{key: key, conf: "c", size: len(payload), val: payload})
				last[key] = payload
			}

			if op%512 == 0 || op == numOps-1 {
				entries, bytes := striped.snapshot()
				// Per-stripe floors can push the effective cap above the
				// configured one by at most one entry/byte per stripe.
				if entries > maxEntries+tierStripes {
					t.Fatalf("seed %d: %d entries resident, cap %d", seed, entries, maxEntries)
				}
				if bytes > maxBytes+int64(tierStripes*maxPayload) {
					t.Fatalf("seed %d: %d bytes resident, cap %d", seed, bytes, maxBytes)
				}
			}
		}

		// Eviction volume tracks the reference within a byte-budget
		// tolerance: both tiers shed the same insert volume against the
		// same total budget, but hash imbalance across stripes makes hot
		// stripes evict slightly more than a global LRU (and boundary
		// floors slightly less) — a ~10% band plus per-stripe slack
		// covers that without masking broken accounting.
		se := striped.evictions()
		re := ref.evictions.Load()
		slack := re/10 + uint64(tierStripes)
		min, max := re, re
		if min > slack {
			min -= slack
		} else {
			min = 0
		}
		max += slack
		if se < min || se > max {
			t.Fatalf("seed %d: striped evictions %d outside reference band [%d,%d] (ref %d)", seed, se, min, max, re)
		}
	}
}

// TestStripedTierRaceHammer runs concurrent Get/Store/Invalidate
// through the public Store API (every Load promotes into the striped
// tier, every Store invalidates) plus direct tier churn including
// concurrent setLimits, under -race in CI.
func TestStripedTierRaceHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers      = 8
		opsPerWorker = 300
		numKeys      = 32
	)
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = testKey(t, fmt.Sprintf("hammer-%d", i))
	}
	// Seed the store so loads can hit.
	for i, k := range keys {
		if err := s.Store("interface", k, "conf", payload{Name: fmt.Sprintf("seed-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for op := 0; op < opsPerWorker; op++ {
				k := keys[rng.Intn(numKeys)]
				switch rng.Intn(4) {
				case 0: // store (re-keys the entry, invalidates the memory copy)
					if err := s.Store("interface", k, "conf", payload{Name: fmt.Sprintf("w%d-%d", w, op)}); err != nil {
						t.Errorf("store: %v", err)
						return
					}
				case 1: // direct invalidate of the memory copy
					memTier.del(s.memKey("interface", k))
				case 2: // shrink/grow the budgets concurrently
					if op%50 == 0 {
						SetMemoryTierLimits(numKeys/2, 1<<16)
						SetMemoryTierLimits(defaultMemEntries, defaultMemBytes)
					}
					fallthrough
				default: // load (promotes on a disk hit)
					var out payload
					if !s.Load("interface", k, "conf", &out) {
						t.Errorf("load %q missed", k)
						return
					}
					if !strings.HasPrefix(out.Name, "seed-") && !strings.HasPrefix(out.Name, "w") {
						t.Errorf("load %q returned foreign payload %q", k, out.Name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Restore the process-wide defaults for other tests.
	SetMemoryTierLimits(defaultMemEntries, defaultMemBytes)
	if t.Failed() {
		return
	}
	entries, bytes := memTier.snapshot()
	if entries < 0 || bytes < 0 {
		t.Fatalf("tier accounting went negative: %d entries, %d bytes", entries, bytes)
	}
}
