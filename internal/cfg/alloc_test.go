package cfg_test

// Frontend allocation ceilings, enforced with testing.AllocsPerRun so
// the arena-and-bitset rewrite cannot silently rot back into the
// map-per-round build it replaced (which cost thousands of allocations
// per recovery on deep-search binaries). The package is cfg_test
// because the corpus generator itself links cfg.
//
// Ceilings are deliberately loose — roughly 3× current reality — so
// they flag regressions of kind (a reintroduced per-round rebuild, an
// unpooled decode map), not jitter from corpus drift.

import (
	"testing"

	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
)

// recoverProfile is the deep-search shape of the large-binary
// benchmarks — the same binary BenchmarkRecoverLargeBinary measures —
// so the ceiling and the gated benchmark describe one workload.
func recoverProfile(t *testing.T) *elff.Binary {
	t.Helper()
	bin, err := corpus.BuildProgram(corpus.LargeBinaryProfile())
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestRecoverAllocCeilingHotDeep(t *testing.T) {
	bin := recoverProfile(t)
	// Warm the builder pool once: the ceiling is the steady state every
	// binary after the first pays in a batch.
	if _, err := cfg.Recover(bin, cfg.Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumBlocks() == 0 {
			t.Fatal("empty graph")
		}
	})
	// Steady state is ~45 allocations: the final instruction arena, the
	// block/edge/function slabs, the two lookup maps, and the sorted
	// address-taken copies. Everything decode- or round-shaped is pooled.
	const ceiling = 120
	t.Logf("HotDeep recover: %.1f allocs/op (ceiling %d)", avg, ceiling)
	if avg > ceiling {
		t.Fatalf("cfg.Recover allocates %.1f/op, ceiling %d", avg, ceiling)
	}
}
