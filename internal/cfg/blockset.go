package cfg

// BlockSet is a dense bitset over a Graph's blocks, indexed by the
// stable integer IDs Recover assigns in address order. It replaces the
// map[*Block]bool sets of the analysis hot paths: membership is one
// shift, insertion never allocates after construction, and a set sized
// for the graph can be reused across searches via Reset. The zero
// value is an empty set that grows on first Add.
type BlockSet struct {
	words []uint64
	n     int
}

// NewBlockSet returns an empty set with capacity for a graph of
// numBlocks blocks.
func NewBlockSet(numBlocks int) *BlockSet {
	return &BlockSet{words: make([]uint64, (numBlocks+63)/64)}
}

// grow ensures the set can hold bit id.
func (s *BlockSet) grow(id int) {
	if w := id/64 + 1; w > len(s.words) {
		words := make([]uint64, w)
		copy(words, s.words)
		s.words = words
	}
}

// Add inserts b and reports whether it was absent.
func (s *BlockSet) Add(b *Block) bool {
	s.grow(b.ID)
	w, bit := b.ID/64, uint64(1)<<(b.ID%64)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.n++
	return true
}

// Has reports whether b is a member. A nil set is empty.
func (s *BlockSet) Has(b *Block) bool {
	if s == nil {
		return false
	}
	w := b.ID / 64
	return w < len(s.words) && s.words[w]&(1<<(b.ID%64)) != 0
}

// Len returns the number of members.
func (s *BlockSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Reset empties the set, keeping its capacity for reuse.
func (s *BlockSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// ReachableSet is the bitset form of Reachable: the set of blocks
// reachable from the given root addresses following all edge kinds.
// Iteration order is the caller's choice — walking SortedBlocks and
// filtering with Has yields address order without sorting.
func (g *Graph) ReachableSet(roots ...uint64) *BlockSet {
	return g.ReachableSetFiltered(nil, roots...)
}

// ReachableSetFiltered is ReachableSet restricted to edges allow
// admits. The graph itself stays frozen — consumers that refine the
// over-approximated indirect fan-out (the call-site resolver) express
// the refinement as an edge filter at traversal time. A nil allow
// admits every edge.
func (g *Graph) ReachableSetFiltered(allow func(Edge) bool, roots ...uint64) *BlockSet {
	seen := NewBlockSet(len(g.sortedBlocks))
	var stack []*Block
	for _, r := range roots {
		if b, ok := g.Blocks[r]; ok && seen.Add(b) {
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if allow != nil && !allow(e) {
				continue
			}
			if seen.Add(e.To) {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
