package cfg

import (
	"math/rand"
	"testing"
)

// fakeBlocks builds n standalone blocks with dense IDs, enough to
// exercise BlockSet without recovering a real graph.
func fakeBlocks(n int) []*Block {
	out := make([]*Block, n)
	for i := range out {
		out[i] = &Block{Addr: 0x400000 + uint64(i)*16, ID: i}
	}
	return out
}

// TestBlockSetPropertyEquivalence drives BlockSet and a map reference
// with the same randomized operation stream: add, membership, reset,
// and iterate (via Has over the dense order).
func TestBlockSetPropertyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		blocks := fakeBlocks(n)
		// Start some sets at zero capacity to exercise growth.
		var s *BlockSet
		if rng.Intn(2) == 0 {
			s = NewBlockSet(n)
		} else {
			s = &BlockSet{}
		}
		ref := make(map[*Block]bool, n)

		for op := 0; op < 400; op++ {
			b := blocks[rng.Intn(n)]
			switch rng.Intn(4) {
			case 0, 1:
				added := s.Add(b)
				if added == ref[b] {
					t.Fatalf("seed %d: Add(%d) first-insert = %v, ref member = %v",
						seed, b.ID, added, ref[b])
				}
				ref[b] = true
			case 2:
				if s.Has(b) != ref[b] {
					t.Fatalf("seed %d: Has(%d) = %v, ref %v", seed, b.ID, s.Has(b), ref[b])
				}
			case 3:
				if rng.Intn(20) == 0 {
					s.Reset()
					ref = make(map[*Block]bool, n)
				}
			}
			if s.Len() != len(ref) {
				t.Fatalf("seed %d: Len %d, ref %d", seed, s.Len(), len(ref))
			}
		}
		// Full iterate agreement in dense order.
		for _, b := range blocks {
			if s.Has(b) != ref[b] {
				t.Fatalf("seed %d: final Has(%d) = %v, ref %v", seed, b.ID, s.Has(b), ref[b])
			}
		}
	}
}

// TestBlockSetNilIsEmpty: a nil set answers membership (the symbolic
// executor's allowed-set contract).
func TestBlockSetNilIsEmpty(t *testing.T) {
	var s *BlockSet
	if s.Has(&Block{ID: 3}) {
		t.Fatal("nil set must contain nothing")
	}
	if s.Len() != 0 {
		t.Fatal("nil set must be empty")
	}
}

// TestReachableSetMatchesReachable: the bitset reachability agrees with
// the map-based original on a real recovered graph shape — here a
// hand-wired diamond with an unreachable tail.
func TestReachableSetMatchesReachable(t *testing.T) {
	blocks := fakeBlocks(6)
	g := &Graph{Blocks: make(map[uint64]*Block), sortedBlocks: blocks}
	for _, b := range blocks {
		g.Blocks[b.Addr] = b
	}
	link := func(kind EdgeKind, from, to *Block) {
		e := Edge{Kind: kind, From: from, To: to}
		from.Succs = append(from.Succs, e)
		to.Preds = append(to.Preds, e)
	}
	// 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4; 5 unreachable.
	link(EdgeJump, blocks[0], blocks[1])
	link(EdgeFall, blocks[0], blocks[2])
	link(EdgeJump, blocks[1], blocks[3])
	link(EdgeJump, blocks[2], blocks[3])
	link(EdgeCall, blocks[3], blocks[4])

	want := g.Reachable(blocks[0].Addr)
	got := g.ReachableSet(blocks[0].Addr)
	if got.Len() != len(want) {
		t.Fatalf("Len %d, want %d", got.Len(), len(want))
	}
	for _, b := range blocks {
		if got.Has(b) != want[b] {
			t.Fatalf("block %d: bitset %v, map %v", b.ID, got.Has(b), want[b])
		}
	}
}
