// Package cfg recovers control-flow graphs from ELF images: basic-block
// discovery by recursive traversal, function-boundary inference, and the
// paper's *active addresses taken* heuristic (§4.3) that conservatively
// resolves indirect calls and jumps to the set of code addresses that
// are (a) used as lea operands and (b) reachable from the analysis
// roots.
package cfg

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bside/internal/elff"
	"bside/internal/x86"
)

// ErrBudget is returned when CFG recovery exceeds the configured
// instruction budget; callers treat it as an analysis timeout.
var ErrBudget = errors.New("cfg: instruction budget exceeded")

// EdgeKind classifies CFG edges.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeFall links a block to its fall-through successor.
	EdgeFall EdgeKind = iota + 1
	// EdgeJump links a jmp/jcc block to its direct target.
	EdgeJump
	// EdgeCall links a call block to the callee's entry block.
	EdgeCall
	// EdgeCallFall links a call block to the block after the call
	// (the callee's return lands there).
	EdgeCallFall
	// EdgeIndirectCall links an indirect-call block to an active
	// address-taken target (heuristic overestimation).
	EdgeIndirectCall
	// EdgeIndirectJump links an indirect-jump block to an active
	// address-taken target.
	EdgeIndirectJump
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeJump:
		return "jump"
	case EdgeCall:
		return "call"
	case EdgeCallFall:
		return "call-fall"
	case EdgeIndirectCall:
		return "icall"
	case EdgeIndirectJump:
		return "ijump"
	}
	return "?"
}

// Edge is a directed CFG edge.
type Edge struct {
	Kind EdgeKind
	From *Block
	To   *Block
}

// Block is a basic block. Blocks end at terminators, calls, and syscall
// instructions (ending blocks at calls and syscalls gives the
// identification and phase-detection passes block-granular sites).
type Block struct {
	Addr  uint64
	Insns []x86.Inst
	Succs []Edge
	Preds []Edge

	// ID is the block's dense index in address order, assigned by
	// Recover: 0 <= ID < Graph.NumBlocks(). BlockSet and the analysis
	// scratch buffers are indexed by it.
	ID int

	// ImportCall is the name of the imported symbol this block calls or
	// jumps to through a GOT slot ("" if none).
	ImportCall string
}

// End returns the address just past the block's last instruction.
func (b *Block) End() uint64 {
	if len(b.Insns) == 0 {
		return b.Addr
	}
	return b.Insns[len(b.Insns)-1].Next()
}

// Last returns the final instruction of the block.
func (b *Block) Last() x86.Inst {
	return b.Insns[len(b.Insns)-1]
}

// Size returns the block size in bytes.
func (b *Block) Size() uint64 { return b.End() - b.Addr }

// EndsInSyscall reports whether the block's last instruction is syscall.
func (b *Block) EndsInSyscall() bool {
	return len(b.Insns) > 0 && b.Last().Op == x86.OpSyscall
}

// Func groups the blocks belonging to one function.
type Func struct {
	Entry  uint64
	Name   string
	Blocks []*Block // sorted by address
}

// End returns the address past the function's last block.
func (f *Func) End() uint64 {
	if len(f.Blocks) == 0 {
		return f.Entry
	}
	return f.Blocks[len(f.Blocks)-1].End()
}

// Graph is a recovered control-flow graph.
//
// Immutability contract: a Graph — including every Block, Edge and
// Func hanging off it — is frozen once Recover returns. Nothing in
// this package or its consumers may mutate it afterwards, and every
// accessor is a pure read (no lazy caching), so any number of
// goroutines can traverse one Graph concurrently without locking.
// The intra-binary analysis pipeline depends on this: its
// wrapper-detection and identification units all read the same Graph
// from a worker pool. The contract is exercised by a concurrent-reader
// test under the race detector; code needing a mutated variant must
// re-Recover, never edit in place.
type Graph struct {
	Bin    *elff.Binary
	Blocks map[uint64]*Block
	Funcs  []*Func // sorted by entry address

	// AddrTaken is every code address used as a lea operand anywhere in
	// the disassembled image; ActiveAddrTaken is the subset reachable
	// from the roots after the iterative refinement of §4.3.
	AddrTaken       []uint64
	ActiveAddrTaken []uint64

	// ImportStubs maps the entry address of each import stub (a block
	// that tail-jumps through a GOT slot) to the imported symbol name.
	ImportStubs map[uint64]string

	// Roots are the traversal entry points used for recovery.
	Roots []uint64

	// Stats describes the work performed (Table 3 reporting and budget
	// enforcement).
	Stats Stats

	funcByEntry  map[uint64]*Func
	sortedBlocks []*Block
}

// Stats counts recovery work.
type Stats struct {
	DecodedInsns   int
	NumBlocks      int
	NumEdges       int
	Iterations     int // active-address-taken refinement rounds
	DecodeFailures int
}

// BlockAt returns the block starting at addr.
func (g *Graph) BlockAt(addr uint64) (*Block, bool) {
	b, ok := g.Blocks[addr]
	return b, ok
}

// BlockContaining returns the block whose address range contains addr.
func (g *Graph) BlockContaining(addr uint64) (*Block, bool) {
	// Blocks never overlap; binary-search over the sorted block list.
	idx := sort.Search(len(g.sortedBlocks), func(i int) bool {
		return g.sortedBlocks[i].Addr > addr
	})
	if idx == 0 {
		return nil, false
	}
	b := g.sortedBlocks[idx-1]
	if addr >= b.Addr && addr < b.End() {
		return b, true
	}
	return nil, false
}

// FuncContaining returns the function whose range contains addr, using
// the nearest-preceding-entry rule.
func (g *Graph) FuncContaining(addr uint64) (*Func, bool) {
	idx := sort.Search(len(g.Funcs), func(i int) bool {
		return g.Funcs[i].Entry > addr
	})
	if idx == 0 {
		return nil, false
	}
	return g.Funcs[idx-1], true
}

// FuncByEntry returns the function with the given entry address.
func (g *Graph) FuncByEntry(entry uint64) (*Func, bool) {
	f, ok := g.funcByEntry[entry]
	return f, ok
}

// SyscallBlocks returns every block ending in a syscall instruction, in
// address order.
func (g *Graph) SyscallBlocks() []*Block {
	var out []*Block
	for _, b := range g.sortedBlocks {
		if b.EndsInSyscall() {
			out = append(out, b)
		}
	}
	return out
}

// Reachable returns the set of blocks reachable from the given root
// addresses following all edge kinds.
func (g *Graph) Reachable(roots ...uint64) map[*Block]bool {
	seen := make(map[*Block]bool)
	var stack []*Block
	for _, r := range roots {
		if b, ok := g.Blocks[r]; ok && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// SortedBlocks returns all blocks in address order. Callers must not
// modify the returned slice.
func (g *Graph) SortedBlocks() []*Block { return g.sortedBlocks }

// NumBlocks returns the number of blocks; block IDs are dense in
// [0, NumBlocks).
func (g *Graph) NumBlocks() int { return len(g.sortedBlocks) }

// Listing renders a human-readable disassembly of the recovered graph:
// functions in address order, their blocks, and per-block annotations
// (import calls, syscall sites).
func (g *Graph) Listing() string {
	var b strings.Builder
	for _, fn := range g.Funcs {
		name := fn.Name
		if name == "" {
			name = fmt.Sprintf("sub_%x", fn.Entry)
		}
		fmt.Fprintf(&b, "\n%s:\n", name)
		for _, blk := range fn.Blocks {
			fmt.Fprintf(&b, "  ; block %#x", blk.Addr)
			if blk.ImportCall != "" {
				fmt.Fprintf(&b, " -> import %s", blk.ImportCall)
			}
			if blk.EndsInSyscall() {
				b.WriteString(" [syscall site]")
			}
			b.WriteByte('\n')
			for _, in := range blk.Insns {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
	}
	return b.String()
}
