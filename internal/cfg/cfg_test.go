package cfg

import (
	"strings"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/x86"
)

// assemble builds an image from fn and parses it back.
func assemble(t *testing.T, kind elff.Kind, fn func(b *asm.Builder)) (*elff.Binary, map[string]uint64) {
	t.Helper()
	b := asm.New()
	fn(b)
	b.Label("__code_end")
	img, syms, err := b.Finalize(0x400000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	spec := elff.Spec{
		Kind:     kind,
		Base:     0x400000,
		Entry:    syms["_start"],
		Blob:     img,
		CodeSize: syms["__code_end"] - 0x400000,
		Symbols:  syms,
	}
	if kind == elff.KindShared {
		spec.Entry = 0
	}
	data, err := elff.Write(spec)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	bin, err := elff.Read(data)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return bin, syms
}

func TestRecoverLinearAndBranches(t *testing.T) {
	bin, syms := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RCX, 3)
		b.Label("loop")
		b.DecReg(x86.RCX)
		b.CmpRegImm(x86.RCX, 0)
		b.Jcc(x86.CondNE, "loop")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Label("after")
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, ok := g.BlockAt(syms["loop"]); !ok {
		t.Fatal("loop head must be a block leader")
	}
	sys := g.SyscallBlocks()
	if len(sys) != 1 {
		t.Fatalf("want 1 syscall block, got %d", len(sys))
	}
	if !sys[0].EndsInSyscall() {
		t.Fatal("syscall must end its block")
	}
	// The loop block must have two predecessrs: entry fall-through and
	// the backward jump.
	loop, _ := g.BlockAt(syms["loop"])
	if len(loop.Preds) != 2 {
		t.Fatalf("loop preds = %d", len(loop.Preds))
	}
	// Syscall block falls through to the after block.
	found := false
	for _, e := range sys[0].Succs {
		if e.Kind == EdgeFall && e.To.Addr == syms["after"] {
			found = true
		}
	}
	if !found {
		t.Fatal("missing syscall fall-through edge")
	}
}

func TestRecoverCallEdges(t *testing.T) {
	bin, syms := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Label("retsite")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := g.BlockAt(syms["_start"])
	var haveCall, haveFall bool
	for _, e := range entry.Succs {
		switch e.Kind {
		case EdgeCall:
			haveCall = e.To.Addr == syms["fn"]
		case EdgeCallFall:
			haveFall = e.To.Addr == syms["retsite"]
		}
	}
	if !haveCall || !haveFall {
		t.Fatalf("call edges: call=%v fall=%v", haveCall, haveFall)
	}
	// Function inference: fn must be its own function.
	f, ok := g.FuncByEntry(syms["fn"])
	if !ok || f.Name != "fn" {
		t.Fatalf("fn function: %+v ok=%v", f, ok)
	}
	if blk, ok := g.BlockContaining(syms["fn"] + 1); !ok || blk.Addr != syms["fn"] {
		t.Fatal("BlockContaining failed")
	}
}

func TestActiveAddressTaken(t *testing.T) {
	// Entry leas fptr1 and calls it indirectly. fptr2 is lea'd only from
	// dead (unreachable) code, so it must not become an indirect target:
	// the "active" refinement distinguishes it from the plain
	// address-taken set.
	bin, syms := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.Lea(x86.RAX, "fptr1")
		b.CallReg(x86.RAX)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("dead")
		b.Lea(x86.RBX, "fptr2")
		b.Ret()
		b.Func("fptr1")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
		b.Func("fptr2")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ActiveAddrTaken) != 1 || g.ActiveAddrTaken[0] != syms["fptr1"] {
		t.Fatalf("active addr taken: %#x", g.ActiveAddrTaken)
	}
	// The full addr-taken set includes both (dead code was decoded from
	// the symbol root only if symbols exist; fptr2's lea lives in
	// "dead" which is in the symbol table, hence decoded).
	if len(g.AddrTaken) != 2 {
		t.Fatalf("addr taken: %#x", g.AddrTaken)
	}
	entry, _ := g.BlockAt(syms["_start"])
	// _start's first block ends at the indirect call; find that block.
	icall, ok := g.BlockContaining(syms["fptr1"] - 1) // last byte before fptr1 is dead's ret
	_ = icall
	_ = ok
	var itargets []uint64
	for _, blk := range g.SortedBlocks() {
		for _, e := range blk.Succs {
			if e.Kind == EdgeIndirectCall {
				itargets = append(itargets, e.To.Addr)
			}
		}
	}
	if len(itargets) != 1 || itargets[0] != syms["fptr1"] {
		t.Fatalf("indirect targets: %#x", itargets)
	}
	_ = entry
}

func TestImportStubResolution(t *testing.T) {
	b := asm.New()
	b.Func("_start")
	b.CallLabel("stub_write")
	b.MovRegImm32(x86.RAX, 60)
	b.Syscall()
	b.Ret()
	b.Func("stub_write")
	b.JmpMemRIP("got_write")
	b.Label("__code_end")
	b.Align(8)
	b.Label("got_write")
	b.Quad(0)
	img, syms, err := b.Finalize(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := elff.Write(elff.Spec{
		Kind: elff.KindDynamic, Base: 0x400000, Entry: syms["_start"], Blob: img,
		CodeSize: syms["__code_end"] - 0x400000,
		Imports:  []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}},
		Needed:   []string{"libc.so"},
		Symbols:  syms,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := elff.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if name := g.ImportStubs[syms["stub_write"]]; name != "write" {
		t.Fatalf("stub map: %v", g.ImportStubs)
	}
	stub, _ := g.BlockAt(syms["stub_write"])
	if stub.ImportCall != "write" {
		t.Fatalf("stub block import: %q", stub.ImportCall)
	}
	if len(stub.Succs) != 0 {
		t.Fatal("import stub must have no local successors")
	}
}

func TestBudgetExceeded(t *testing.T) {
	bin, _ := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		for i := 0; i < 100; i++ {
			b.Nop()
		}
		b.Ret()
	})
	_, err := Recover(bin, Options{MaxInsns: 10})
	if err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestListing(t *testing.T) {
	bin, _ := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Listing()
	for _, want := range []string{"_start:", "syscall", "[syscall site]", "block"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestReachability(t *testing.T) {
	bin, syms := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("used")
		b.Ret()
		b.Func("used")
		b.Ret()
		b.Func("unused")
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reachable(bin.Entry)
	if used, _ := g.BlockAt(syms["used"]); !reach[used] {
		t.Fatal("used must be reachable")
	}
	if unused, ok := g.BlockAt(syms["unused"]); ok && reach[unused] {
		t.Fatal("unused must not be reachable from entry")
	}
}
