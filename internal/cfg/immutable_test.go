package cfg

import (
	"sync"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/x86"
)

// TestGraphConcurrentReaders exercises the Graph immutability contract:
// after Recover, every accessor must be a pure read so the pipeline's
// worker pool can traverse one graph from many goroutines. Any future
// lazy mutation (memoizing accessors, sorting on demand) shows up here
// as a data race under -race.
func TestGraphConcurrentReaders(t *testing.T) {
	bin, syms := assemble(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 0)
		b.CallLabel("helper")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("helper")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
	})
	g, err := Recover(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rounds := 0; rounds < 16; rounds++ {
				for _, blk := range g.SortedBlocks() {
					if _, ok := g.BlockAt(blk.Addr); !ok {
						t.Error("block lost")
						return
					}
					g.BlockContaining(blk.Addr)
					g.FuncContaining(blk.Addr)
				}
				for _, fn := range g.Funcs {
					if _, ok := g.FuncByEntry(fn.Entry); !ok {
						t.Error("func lost")
						return
					}
				}
				if len(g.SyscallBlocks()) != 2 {
					t.Error("syscall sites drifted")
					return
				}
				g.Reachable(g.Roots...)
				if g.Listing() == "" {
					t.Error("empty listing")
					return
				}
			}
		}()
	}
	wg.Wait()
	_ = syms
}
