package cfg

import (
	"fmt"
	"sort"
	"sync"

	"bside/internal/elff"
	"bside/internal/x86"
)

// Options configures CFG recovery.
type Options struct {
	// MaxInsns bounds the total number of decoded instructions across
	// all refinement rounds; 0 means a generous default. Exceeding it
	// yields ErrBudget (the analysis-timeout analog).
	MaxInsns int
	// MaxRounds bounds the active-address-taken activation cascade: an
	// address activated from code that itself only became reachable
	// through an earlier activation sits one round deeper. The batch
	// refinement loop of earlier versions re-built the graph once per
	// round; the incremental fixpoint keeps the same bound as a
	// runaway-cascade guard.
	MaxRounds int
	// ExtraRoots are additional traversal entry points (e.g. exported
	// functions of a shared library).
	ExtraRoots []uint64
}

func (o Options) withDefaults() Options {
	if o.MaxInsns == 0 {
		o.MaxInsns = 4_000_000
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 32
	}
	return o
}

// Recover disassembles bin and builds its precise CFG, including
// heuristic indirect edges via active addresses taken (§4.3). Roots are
// the entry point (executables), exported functions (libraries) and any
// extra roots passed in the options.
//
// The frontend is allocation-lean by construction: one decode pass
// fills a flat instruction arena indexed by code offset, the §4.3
// refinement runs as a single incremental instruction-level fixpoint
// (lea-carried code pointers are harvested at decode time, newly
// activated regions are traversed exactly once, and reachability never
// restarts), and the final graph is materialized once at the fixpoint
// from pre-counted slabs — Block.Insns are zero-copy views into the
// address-ordered arena.
func Recover(bin *elff.Binary, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	b := getBuilder(bin, opts.MaxInsns)
	defer putBuilder(b)

	// Reachability roots drive the *active* address-taken refinement:
	// the entry point for executables, exported functions for
	// libraries, plus caller-specified roots.
	var roots []uint64
	if bin.Entry != 0 {
		roots = append(roots, bin.Entry)
	}
	for _, e := range bin.Exports {
		roots = append(roots, e.Addr)
	}
	roots = append(roots, opts.ExtraRoots...)
	if len(roots) == 0 {
		return nil, fmt.Errorf("cfg: no traversal roots for %s image", bin.Kind)
	}

	// Decode roots additionally include function symbols, mirroring
	// disassemblers that sweep all known function starts; code decoded
	// this way is analyzed but only counts as reachable if the
	// refinement loop can actually get there from the real roots.
	decodeRoots := append([]uint64(nil), roots...)
	for _, addr := range bin.Symbols {
		decodeRoots = append(decodeRoots, addr)
	}

	// Data-carried code pointers (jump tables, vtables): aligned quads
	// in the data region pointing into code are addresses taken that
	// the lea scan cannot see. SysFilter harvests these from
	// relocations; we harvest them from the image. They are
	// conservatively active from the start — missing one would be a
	// false-negative source.
	dataPtrs := scanDataPointers(bin)
	// RELATIVE relocation targets are the linker's own record of planted
	// pointers — the scan finds baked-in slot values, the relocations
	// additionally vouch for slots the loader populates. Both feeds are
	// deduplicated by the activation set.
	for _, rel := range bin.Relocs {
		if bin.CodeContains(rel.Target) {
			dataPtrs = append(dataPtrs, rel.Target)
		}
	}
	decodeRoots = append(decodeRoots, dataPtrs...)

	if err := b.traverse(decodeRoots); err != nil {
		return nil, err
	}

	// Figure 4's iterative refinement, incrementally: a single
	// instruction-level reachability walk that activates lea-taken
	// addresses on first visit, decodes newly activated regions in
	// place, and resumes — no per-round rebuild, no rescan of already
	// visited code.
	iterations, err := b.fixpoint(roots, dataPtrs, opts.MaxRounds)
	if err != nil {
		return nil, err
	}

	g := &Graph{Bin: bin, Roots: roots}
	g.Stats.Iterations = iterations
	b.materialize(g)
	b.inferFunctions(g)
	g.Stats.DecodedInsns = b.decoded
	g.Stats.NumBlocks = len(g.sortedBlocks)
	g.Stats.DecodeFailures = b.decodeFailures
	return g, nil
}

// builder carries the decode arena and the fixpoint working set. Its
// buffers are pooled across Recover calls (builderPool): a batch
// analyzer pays the frontend's allocations once, not per binary.
type builder struct {
	bin  *elff.Binary
	base uint64
	code int // code region length in bytes

	// arena holds decoded instructions in decode order; off2idx maps a
	// code offset to its arena index + 1 (0 = not decoded). leaEA is
	// parallel to arena: the in-code target of a lea's memory operand,
	// harvested at decode time and stored as code offset + 1 so 0 can
	// mean "not a code-pointer lea" even for images loaded at virtual
	// address 0 — the candidate worklist of the §4.3 refinement.
	arena   []x86.Inst
	off2idx []int32
	leaEA   []uint64

	// leader marks code offsets that must begin a basic block.
	leader offBits

	// Fixpoint state: visited is indexed by arena index; active marks
	// activated address-taken offsets, with activeList recording them
	// in activation order.
	visited    offBits
	active     offBits
	activeList []uint64
	stack      []fixEnt

	// slotImport maps GOT slot addresses to import names, built once.
	slotImport map[uint64]string

	// Finalization scratch, reused across calls: per-block start
	// indices and per-block edge degree counters.
	blockStarts []int32
	succDeg     []int32
	predDeg     []int32
	entries     []funcEntry

	decoded        int
	decodeFailures int
	budget         int
}

// fixEnt is one fixpoint work item: an arena instruction index tagged
// with its activation wave (how many address-taken activations separate
// it from the roots) — the incremental analog of the old round counter.
type fixEnt struct {
	idx  int32
	wave int32
}

var builderPool = sync.Pool{New: func() any { return new(builder) }}

func getBuilder(bin *elff.Binary, budget int) *builder {
	b := builderPool.Get().(*builder)
	b.bin = bin
	b.base = bin.Base
	b.code = int(bin.CodeSize)
	b.budget = budget
	b.decoded = 0
	b.decodeFailures = 0
	b.arena = b.arena[:0]
	b.leaEA = b.leaEA[:0]
	b.activeList = b.activeList[:0]
	b.stack = b.stack[:0]
	if cap(b.off2idx) < b.code {
		b.off2idx = make([]int32, b.code)
	} else {
		b.off2idx = b.off2idx[:b.code]
		clear(b.off2idx)
	}
	b.leader.clearTo(b.code)
	b.active.clearTo(b.code)
	b.visited.clearTo(0)
	if len(bin.Imports) > 0 {
		b.slotImport = make(map[uint64]string, len(bin.Imports))
		for _, im := range bin.Imports {
			b.slotImport[im.SlotAddr] = im.Name
		}
	} else {
		b.slotImport = nil
	}
	return b
}

func putBuilder(b *builder) {
	b.bin = nil
	b.slotImport = nil
	builderPool.Put(b)
}

// insnAt returns the arena index of the instruction starting at addr,
// or -1.
func (b *builder) insnAt(addr uint64) int32 {
	if addr < b.base {
		return -1
	}
	off := addr - b.base
	if off >= uint64(b.code) {
		return -1
	}
	return b.off2idx[off] - 1
}

// traverse decodes instructions reachable from the given addresses via
// direct control flow, recording block leaders and harvesting
// lea-carried code pointers into the candidate arena.
func (b *builder) traverse(starts []uint64) error {
	work := make([]uint64, 0, len(starts))
	for _, s := range starts {
		if b.bin.CodeContains(s) {
			b.leader.set(int(s - b.base))
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if !b.bin.CodeContains(addr) {
				break
			}
			if b.off2idx[addr-b.base] != 0 {
				break
			}
			if b.decoded >= b.budget {
				return ErrBudget
			}
			buf, _ := b.bin.BytesAt(addr)
			inst, err := x86.Decode(buf, addr)
			if err != nil {
				// Undecodable bytes end the path (data reached or
				// padding); the block formed so far stays valid.
				b.decodeFailures++
				break
			}
			b.arena = append(b.arena, inst)
			b.off2idx[addr-b.base] = int32(len(b.arena))
			var leaOff uint64 // code offset + 1; 0 = none
			if inst.Op == x86.OpLea {
				if e, ok := inst.MemEA(inst.Src); ok && b.bin.CodeContains(e) {
					leaOff = e - b.base + 1
				}
			}
			b.leaEA = append(b.leaEA, leaOff)
			b.decoded++

			if tgt, ok := inst.BranchTarget(); ok && b.bin.CodeContains(tgt) {
				b.leader.set(int(tgt - b.base))
				work = append(work, tgt)
			}
			switch inst.Op {
			case x86.OpJmp, x86.OpJmpInd, x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
				// No fall-through.
			case x86.OpJcc, x86.OpCall, x86.OpCallInd, x86.OpSyscall:
				if next := inst.Next(); b.bin.CodeContains(next) {
					b.leader.set(int(next - b.base))
					work = append(work, next)
				}
			default:
				addr = inst.Next()
				continue
			}
			break
		}
	}
	return nil
}

// importTarget resolves a call/jmp through [rip+slot] against the
// import table.
func (b *builder) importTarget(inst x86.Inst) (string, bool) {
	if b.slotImport == nil {
		return "", false
	}
	ea, ok := inst.MemEA(inst.Dst)
	if !ok {
		return "", false
	}
	name, ok := b.slotImport[ea]
	return name, ok
}

// fixpoint runs the incremental §4.3 refinement: a depth-first
// instruction-level reachability walk from the roots. Visiting a
// harvested lea candidate activates its target — decoding the region
// on the spot — and activated targets become reachable through any
// already-visited indirect transfer. Reachability is monotone (code,
// leaders and active addresses only grow), so every instruction is
// visited at most once across the whole refinement; the old
// build-blocks-per-round loop recomputed all of it every round.
//
// The returned iteration count is the activation cascade depth + 1:
// the incremental equivalent of the old loop's round counter.
func (b *builder) fixpoint(roots, dataPtrs []uint64, maxRounds int) (int, error) {
	// Data pointers are conservatively active from the start.
	for _, p := range dataPtrs {
		if b.active.set(int(p - b.base)) {
			b.activeList = append(b.activeList, p)
		}
	}

	b.visited.growTo(len(b.arena))
	push := func(addr uint64, wave int32) {
		if idx := b.insnAt(addr); idx >= 0 && b.visited.set(int(idx)) {
			b.stack = append(b.stack, fixEnt{idx: idx, wave: wave})
		}
	}
	for _, r := range roots {
		push(r, 0)
	}

	hasIndirect := false
	maxWave := int32(0)
	for len(b.stack) > 0 {
		ent := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		inst := b.arena[ent.idx]

		// Activate a harvested code pointer: decode its region (the
		// arena and the visited set grow in place) and, when an
		// indirect transfer is already reachable, schedule it.
		if v := b.leaEA[ent.idx]; v != 0 && b.active.set(int(v-1)) {
			ea := b.base + v - 1
			b.activeList = append(b.activeList, ea)
			if err := b.traverse([]uint64{ea}); err != nil {
				return 0, err
			}
			b.visited.growTo(len(b.arena))
			if hasIndirect {
				if ent.wave+1 > maxWave {
					maxWave = ent.wave + 1
					if int(maxWave)+1 > maxRounds {
						return 0, fmt.Errorf("cfg: no fixpoint after %d rounds", maxRounds)
					}
				}
				push(ea, ent.wave+1)
			}
		}

		indirect := func() {
			if hasIndirect {
				return
			}
			hasIndirect = true
			// Every address activated so far becomes a potential
			// indirect target; later activations schedule themselves.
			for _, ea := range b.activeList {
				push(ea, ent.wave+1)
			}
			if ent.wave+1 > maxWave {
				maxWave = ent.wave + 1
			}
		}

		switch inst.Op {
		case x86.OpJmp, x86.OpCall, x86.OpJcc:
			if tgt, ok := inst.BranchTarget(); ok {
				push(tgt, ent.wave)
			}
			if inst.Op != x86.OpJmp {
				push(inst.Next(), ent.wave)
			}
		case x86.OpCallInd:
			if _, ok := b.importTarget(inst); !ok {
				indirect()
			}
			push(inst.Next(), ent.wave)
		case x86.OpJmpInd:
			if _, ok := b.importTarget(inst); !ok {
				indirect()
			}
		case x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
			// No successors.
		default:
			push(inst.Next(), ent.wave)
		}
	}
	// Note: newly activated addresses found once an indirect transfer
	// is reachable are pushed immediately, so the cascade above always
	// drains completely; activations with no reachable indirect
	// transfer stay decoded-but-unreachable, exactly as in the batch
	// loop.
	return int(maxWave) + 1, nil
}

// materialize builds the final immutable graph in one pass over the
// address-ordered arena: blocks and edges are pre-counted and carved
// from slabs, so the build cost is a handful of allocations however
// large the binary.
func (b *builder) materialize(g *Graph) {
	// Address-ordered arena: the only copy of the decoded
	// instructions the graph keeps. off2idx is rewritten to point into
	// it so edge wiring can look targets up in O(1).
	final := make([]x86.Inst, len(b.arena))
	n := 0
	for off := 0; off < b.code; off++ {
		if idx := b.off2idx[off]; idx != 0 {
			final[n] = b.arena[idx-1]
			n++
			b.off2idx[off] = int32(n)
		}
	}
	final = final[:n]

	// Pass 1: block boundaries.
	b.blockStarts = b.blockStarts[:0]
	var prevEnd uint64
	open := false
	for i := range final {
		in := &final[i]
		if !open || b.leader.has(int(in.Addr-b.base)) || in.Addr != prevEnd {
			b.blockStarts = append(b.blockStarts, int32(i))
			open = true
		}
		prevEnd = in.Next()
		if in.IsTerminator() || in.IsCall() || in.Op == x86.OpSyscall {
			open = false
		}
	}

	numBlocks := len(b.blockStarts)
	blocks := make([]Block, numBlocks)
	sorted := make([]*Block, numBlocks)
	byAddr := make(map[uint64]*Block, numBlocks)
	g.ImportStubs = make(map[uint64]string)
	for k := range blocks {
		start := int(b.blockStarts[k])
		end := len(final)
		if k+1 < numBlocks {
			end = int(b.blockStarts[k+1])
		}
		blk := &blocks[k]
		blk.Addr = final[start].Addr
		blk.Insns = final[start:end:end]
		blk.ID = k
		sorted[k] = blk
		byAddr[blk.Addr] = blk
	}
	g.Blocks = byAddr
	g.sortedBlocks = sorted

	// Active address-taken blocks, in address order: the indirect-edge
	// targets. The sorted copy doubles as Graph.ActiveAddrTaken.
	activeAddrs := append([]uint64(nil), b.activeList...)
	sort.Slice(activeAddrs, func(i, j int) bool { return activeAddrs[i] < activeAddrs[j] })
	g.ActiveAddrTaken = activeAddrs
	activeBlocks := make([]*Block, 0, len(activeAddrs))
	for _, ea := range activeAddrs {
		if blk, ok := byAddr[ea]; ok {
			activeBlocks = append(activeBlocks, blk)
		}
	}

	// Pass 2: count edge degrees, resolve import labels.
	if cap(b.succDeg) < numBlocks {
		b.succDeg = make([]int32, numBlocks)
		b.predDeg = make([]int32, numBlocks)
	} else {
		b.succDeg = b.succDeg[:numBlocks]
		b.predDeg = b.predDeg[:numBlocks]
		clear(b.succDeg)
		clear(b.predDeg)
	}
	blockAt := func(addr uint64) *Block {
		blk, ok := byAddr[addr]
		if !ok {
			return nil
		}
		return blk
	}
	totalEdges := 0
	countEdge := func(from *Block, to *Block) {
		if to == nil {
			return
		}
		b.succDeg[from.ID]++
		b.predDeg[to.ID]++
		totalEdges++
	}
	for _, blk := range sorted {
		last := blk.Last()
		switch last.Op {
		case x86.OpJmp:
			countEdge(blk, blockAt(uint64(last.Dst.Imm)))
		case x86.OpJcc:
			countEdge(blk, blockAt(uint64(last.Dst.Imm)))
			countEdge(blk, blockAt(last.Next()))
		case x86.OpCall:
			countEdge(blk, blockAt(uint64(last.Dst.Imm)))
			countEdge(blk, blockAt(last.Next()))
		case x86.OpCallInd:
			if name, ok := b.importTarget(last); ok {
				blk.ImportCall = name
			} else {
				for _, t := range activeBlocks {
					countEdge(blk, t)
				}
			}
			countEdge(blk, blockAt(last.Next()))
		case x86.OpJmpInd:
			if name, ok := b.importTarget(last); ok {
				blk.ImportCall = name
				g.ImportStubs[blk.Addr] = name
			} else {
				for _, t := range activeBlocks {
					countEdge(blk, t)
				}
			}
		case x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
			// No successors; returns are modeled by EdgeCallFall.
		default:
			// Fall-through block boundary (syscall or leader split).
			countEdge(blk, blockAt(last.Next()))
		}
	}

	// Pass 3: carve Succs/Preds from two slabs and wire the edges in
	// the same order the per-round builder produced.
	succSlab := make([]Edge, 0, totalEdges)
	predSlab := make([]Edge, 0, totalEdges)
	for _, blk := range sorted {
		d := int(b.succDeg[blk.ID])
		blk.Succs = succSlab[len(succSlab) : len(succSlab) : len(succSlab)+d]
		succSlab = succSlab[:len(succSlab)+d]
		d = int(b.predDeg[blk.ID])
		blk.Preds = predSlab[len(predSlab) : len(predSlab) : len(predSlab)+d]
		predSlab = predSlab[:len(predSlab)+d]
	}
	addEdge := func(kind EdgeKind, from, to *Block) {
		if to == nil {
			return
		}
		e := Edge{Kind: kind, From: from, To: to}
		from.Succs = append(from.Succs, e)
		to.Preds = append(to.Preds, e)
	}
	for _, blk := range sorted {
		last := blk.Last()
		switch last.Op {
		case x86.OpJmp:
			addEdge(EdgeJump, blk, blockAt(uint64(last.Dst.Imm)))
		case x86.OpJcc:
			addEdge(EdgeJump, blk, blockAt(uint64(last.Dst.Imm)))
			addEdge(EdgeFall, blk, blockAt(last.Next()))
		case x86.OpCall:
			addEdge(EdgeCall, blk, blockAt(uint64(last.Dst.Imm)))
			addEdge(EdgeCallFall, blk, blockAt(last.Next()))
		case x86.OpCallInd:
			// Same predicate as the count pass: importTarget, not the
			// ImportCall label (a dynsym legally named "" would make
			// the label test disagree and overflow the edge slabs).
			if _, ok := b.importTarget(last); !ok {
				for _, t := range activeBlocks {
					addEdge(EdgeIndirectCall, blk, t)
				}
			}
			addEdge(EdgeCallFall, blk, blockAt(last.Next()))
		case x86.OpJmpInd:
			if _, ok := b.importTarget(last); !ok {
				for _, t := range activeBlocks {
					addEdge(EdgeIndirectJump, blk, t)
				}
			}
		case x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
		default:
			addEdge(EdgeFall, blk, blockAt(last.Next()))
		}
	}
	g.Stats.NumEdges = totalEdges

	// The full address-taken set (SysFilter's original, non-active
	// notion): every harvested lea candidate, reachable or not.
	g.AddrTaken = dedupSorted(b.leaEACopy())
}

// leaEACopy collects the harvested lea targets as virtual addresses.
func (b *builder) leaEACopy() []uint64 {
	out := make([]uint64, 0, 8)
	for _, v := range b.leaEA {
		if v != 0 {
			out = append(out, b.base+v-1)
		}
	}
	return out
}

// funcEntry is one candidate function entry during inference. rank
// orders the naming phases (symbols, exports, roots, active addresses,
// call targets) so the first non-empty name in phase order wins,
// deterministically.
type funcEntry struct {
	addr uint64
	name string
	rank uint8
}

// inferFunctions derives function boundaries: entries are symbols,
// exports, roots, direct call targets and active addresses taken; block
// membership follows the nearest-preceding-entry rule.
func (b *builder) inferFunctions(g *Graph) {
	ents := b.entries[:0]
	add := func(addr uint64, name string, rank uint8) {
		if _, ok := g.Blocks[addr]; !ok {
			return
		}
		ents = append(ents, funcEntry{addr: addr, name: name, rank: rank})
	}
	for name, addr := range g.Bin.Symbols {
		add(addr, name, 0)
	}
	for _, e := range g.Bin.Exports {
		add(e.Addr, e.Name, 1)
	}
	for _, r := range g.Roots {
		add(r, "", 2)
	}
	for _, ea := range g.ActiveAddrTaken {
		add(ea, "", 3)
	}
	for _, blk := range g.sortedBlocks {
		if last := blk.Last(); last.Op == x86.OpCall {
			add(uint64(last.Dst.Imm), "", 4)
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		a, c := ents[i], ents[j]
		if a.addr != c.addr {
			return a.addr < c.addr
		}
		if a.rank != c.rank {
			return a.rank < c.rank
		}
		return a.name < c.name
	})
	b.entries = ents // keep the grown buffer for the pool

	// Collapse duplicates: one function per address, named by the
	// first non-empty candidate in phase order.
	n := 0
	for i := 0; i < len(ents); {
		j := i
		name := ""
		for ; j < len(ents) && ents[j].addr == ents[i].addr; j++ {
			if name == "" {
				name = ents[j].name
			}
		}
		ents[n] = funcEntry{addr: ents[i].addr, name: name}
		n++
		i = j
	}
	ents = ents[:n]

	funcs := make([]Func, len(ents))
	g.Funcs = make([]*Func, len(ents))
	g.funcByEntry = make(map[uint64]*Func, len(ents))
	for i, e := range ents {
		f := &funcs[i]
		f.Entry = e.addr
		f.Name = e.name
		g.Funcs[i] = f
		g.funcByEntry[e.addr] = f
	}
	if len(funcs) == 0 {
		return
	}
	// Nearest-preceding-entry membership over one merge walk: both the
	// blocks and the entries are address-sorted. Count first, then
	// carve the per-function block lists from one slab.
	counts := b.succDeg[:0] // reuse the degree buffer as scratch
	for range funcs {
		counts = append(counts, 0)
	}
	assigned := 0
	fi := -1
	for _, blk := range g.sortedBlocks {
		for fi+1 < len(funcs) && funcs[fi+1].Entry <= blk.Addr {
			fi++
		}
		if fi >= 0 {
			counts[fi]++
			assigned++
		}
	}
	slab := make([]*Block, 0, assigned)
	for i := range funcs {
		d := int(counts[i])
		funcs[i].Blocks = slab[len(slab) : len(slab) : len(slab)+d]
		slab = slab[:len(slab)+d]
	}
	fi = -1
	for _, blk := range g.sortedBlocks {
		for fi+1 < len(funcs) && funcs[fi+1].Entry <= blk.Addr {
			fi++
		}
		if fi >= 0 {
			funcs[fi].Blocks = append(funcs[fi].Blocks, blk)
		}
	}
}

// scanDataPointers finds little-endian quads in the data region that
// land inside the code region. The scan probes every 4-byte boundary,
// not every 8-byte one: pointer tables are not required to sit at
// 8-aligned addresses (a table preceded by a 4-byte field is packed to
// 4-mod-8 slots), and a slot the scan cannot see is a handler the
// refinement never activates — a soundness hole, not an imprecision
// (found by the fuzzer as a missed runtime syscall; the repro is
// internal/fuzzer/testdata/regressions/packed-table-blindness.json).
// Overlapping windows can both hit code; the activation set dedups.
func scanDataPointers(bin *elff.Binary) []uint64 {
	var out []uint64
	start := bin.CodeSize
	// Align to the next 4-byte boundary relative to the base address.
	for (bin.Base+start)%4 != 0 {
		start++
	}
	for off := start; off+8 <= uint64(len(bin.Blob)); off += 4 {
		v := uint64(bin.Blob[off]) | uint64(bin.Blob[off+1])<<8 |
			uint64(bin.Blob[off+2])<<16 | uint64(bin.Blob[off+3])<<24 |
			uint64(bin.Blob[off+4])<<32 | uint64(bin.Blob[off+5])<<40 |
			uint64(bin.Blob[off+6])<<48 | uint64(bin.Blob[off+7])<<56
		if bin.CodeContains(v) {
			out = append(out, v)
		}
	}
	return out
}

// dedupSorted sorts s ascending and removes duplicates in place.
func dedupSorted(s []uint64) []uint64 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := 0
	for i, v := range s {
		if i == 0 || v != s[n-1] {
			s[n] = v
			n++
		}
	}
	return s[:n]
}

// offBits is a plain dense bitset over small integer indices (code
// offsets, arena indices). Unlike BlockSet it carries no element count
// and never grows implicitly — reset sizes it for the domain.
type offBits struct {
	words []uint64
}

// clearTo resizes the bitset for n bits with every bit clear.
func (s *offBits) clearTo(n int) {
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]uint64, w)
		return
	}
	s.words = s.words[:w]
	clear(s.words)
}

// growTo widens the bitset to n bits, keeping already-set bits (the
// fixpoint's visited set grows with the arena).
func (s *offBits) growTo(n int) {
	w := (n + 63) / 64
	if w <= len(s.words) {
		return
	}
	if cap(s.words) >= w {
		old := len(s.words)
		s.words = s.words[:w]
		clear(s.words[old:])
		return
	}
	words := make([]uint64, w, w+w/2)
	copy(words, s.words)
	s.words = words
}

// set marks bit i and reports whether it was previously clear.
func (s *offBits) set(i int) bool {
	w, bit := i/64, uint64(1)<<(i%64)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	return true
}

// has reports whether bit i is set.
func (s *offBits) has(i int) bool {
	w := i / 64
	return s.words[w]&(1<<(i%64)) != 0
}
