package cfg

import (
	"fmt"
	"sort"

	"bside/internal/elff"
	"bside/internal/x86"
)

// Options configures CFG recovery.
type Options struct {
	// MaxInsns bounds the total number of decoded instructions across
	// all refinement rounds; 0 means a generous default. Exceeding it
	// yields ErrBudget (the analysis-timeout analog).
	MaxInsns int
	// MaxRounds bounds active-address-taken refinement iterations.
	MaxRounds int
	// ExtraRoots are additional traversal entry points (e.g. exported
	// functions of a shared library).
	ExtraRoots []uint64
}

func (o Options) withDefaults() Options {
	if o.MaxInsns == 0 {
		o.MaxInsns = 4_000_000
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 32
	}
	return o
}

// Recover disassembles bin and builds its precise CFG, including
// heuristic indirect edges via active addresses taken (§4.3). Roots are
// the entry point (executables), exported functions (libraries) and any
// extra roots passed in the options.
func Recover(bin *elff.Binary, opts Options) (*Graph, error) {
	opts = opts.withDefaults()
	b := &builder{
		bin:    bin,
		insns:  make(map[uint64]x86.Inst),
		leader: make(map[uint64]bool),
		budget: opts.MaxInsns,
	}

	// Reachability roots drive the *active* address-taken refinement:
	// the entry point for executables, exported functions for
	// libraries, plus caller-specified roots.
	var roots []uint64
	if bin.Entry != 0 {
		roots = append(roots, bin.Entry)
	}
	for _, e := range bin.Exports {
		roots = append(roots, e.Addr)
	}
	roots = append(roots, opts.ExtraRoots...)
	if len(roots) == 0 {
		return nil, fmt.Errorf("cfg: no traversal roots for %s image", bin.Kind)
	}

	// Decode roots additionally include function symbols, mirroring
	// disassemblers that sweep all known function starts; code decoded
	// this way is analyzed but only counts as reachable if the
	// refinement loop can actually get there from the real roots.
	decodeRoots := append([]uint64(nil), roots...)
	for _, addr := range bin.Symbols {
		decodeRoots = append(decodeRoots, addr)
	}

	// Data-carried code pointers (jump tables, vtables): aligned quads
	// in the data region pointing into code are addresses taken that
	// the lea scan cannot see. SysFilter harvests these from
	// relocations; we harvest them from the image. They are
	// conservatively active from the start — missing one would be a
	// false-negative source.
	dataPtrs := scanDataPointers(bin)
	decodeRoots = append(decodeRoots, dataPtrs...)

	if err := b.traverse(decodeRoots); err != nil {
		return nil, err
	}

	g := &Graph{
		Bin:         bin,
		ImportStubs: make(map[uint64]string),
		Roots:       roots,
	}

	// Iteratively: build blocks/edges, compute reachability, activate
	// addresses taken found in reachable blocks, wire indirect edges,
	// and re-traverse newly discovered code (Figure 4's loop).
	active := make(map[uint64]bool)
	for _, p := range dataPtrs {
		active[p] = true
	}
	for round := 1; ; round++ {
		if round > opts.MaxRounds {
			return nil, fmt.Errorf("cfg: no fixpoint after %d rounds", opts.MaxRounds)
		}
		g.Stats.Iterations = round
		b.buildBlocks(g, active)

		reach := g.Reachable(roots...)
		grew := false
		for blk := range reach {
			for _, in := range blk.Insns {
				if in.Op != x86.OpLea {
					continue
				}
				ea, ok := in.MemEA(in.Src)
				if !ok || !bin.CodeContains(ea) {
					continue
				}
				if !active[ea] {
					active[ea] = true
					grew = true
					if err := b.traverse([]uint64{ea}); err != nil {
						return nil, err
					}
				}
			}
		}
		if !grew {
			break
		}
	}

	g.ActiveAddrTaken = sortedAddrs(active)
	g.AddrTaken = b.allAddrTaken(bin)
	b.inferFunctions(g, active)
	g.Stats.DecodedInsns = b.decoded
	g.Stats.NumBlocks = len(g.Blocks)
	for _, blk := range g.sortedBlocks {
		g.Stats.NumEdges += len(blk.Succs)
	}
	g.Stats.DecodeFailures = b.decodeFailures
	return g, nil
}

type builder struct {
	bin            *elff.Binary
	insns          map[uint64]x86.Inst
	leader         map[uint64]bool
	decoded        int
	decodeFailures int
	budget         int
}

// traverse decodes instructions reachable from the given addresses via
// direct control flow, recording block leaders.
func (b *builder) traverse(starts []uint64) error {
	work := make([]uint64, 0, len(starts))
	for _, s := range starts {
		if b.bin.CodeContains(s) {
			b.leader[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if _, done := b.insns[addr]; done {
				break
			}
			if !b.bin.CodeContains(addr) {
				break
			}
			if b.decoded >= b.budget {
				return ErrBudget
			}
			buf, _ := b.bin.BytesAt(addr)
			inst, err := x86.Decode(buf, addr)
			if err != nil {
				// Undecodable bytes end the path (data reached or
				// padding); the block formed so far stays valid.
				b.decodeFailures++
				break
			}
			b.insns[addr] = inst
			b.decoded++

			if tgt, ok := inst.BranchTarget(); ok && b.bin.CodeContains(tgt) {
				b.leader[tgt] = true
				work = append(work, tgt)
			}
			switch inst.Op {
			case x86.OpJmp, x86.OpJmpInd, x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
				// No fall-through.
			case x86.OpJcc, x86.OpCall, x86.OpCallInd, x86.OpSyscall:
				b.leader[inst.Next()] = true
				work = append(work, inst.Next())
			default:
				addr = inst.Next()
				continue
			}
			break
		}
	}
	return nil
}

// buildBlocks (re)constructs blocks and edges from the decoded
// instruction map, wiring indirect edges to the currently active
// addresses taken.
func (b *builder) buildBlocks(g *Graph, active map[uint64]bool) {
	addrs := make([]uint64, 0, len(b.insns))
	for a := range b.insns {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	g.Blocks = make(map[uint64]*Block, len(b.leader))
	g.sortedBlocks = g.sortedBlocks[:0]

	var cur *Block
	flush := func() {
		if cur != nil && len(cur.Insns) > 0 {
			g.Blocks[cur.Addr] = cur
			g.sortedBlocks = append(g.sortedBlocks, cur)
		}
		cur = nil
	}
	var prevEnd uint64
	for _, a := range addrs {
		inst := b.insns[a]
		if cur == nil || b.leader[a] || a != prevEnd {
			flush()
			cur = &Block{Addr: a}
		}
		cur.Insns = append(cur.Insns, inst)
		prevEnd = inst.Next()
		if inst.IsTerminator() || inst.IsCall() || inst.Op == x86.OpSyscall {
			flush()
		}
	}
	flush()

	// Dense IDs in address order: the substrate of BlockSet and every
	// index-backed scratch buffer downstream. Reassigned on every
	// refinement round; the final round's numbering is the one the
	// frozen graph carries.
	for i, blk := range g.sortedBlocks {
		blk.ID = i
	}

	activeBlocks := make([]*Block, 0, len(active))
	for ea := range active {
		if blk, ok := g.Blocks[ea]; ok {
			activeBlocks = append(activeBlocks, blk)
		}
	}
	sort.Slice(activeBlocks, func(i, j int) bool { return activeBlocks[i].Addr < activeBlocks[j].Addr })

	addEdge := func(kind EdgeKind, from, to *Block) {
		e := Edge{Kind: kind, From: from, To: to}
		from.Succs = append(from.Succs, e)
		to.Preds = append(to.Preds, e)
	}
	edgeTo := func(kind EdgeKind, from *Block, target uint64) {
		if to, ok := g.Blocks[target]; ok {
			addEdge(kind, from, to)
		}
	}

	for _, blk := range g.sortedBlocks {
		last := blk.Last()
		switch last.Op {
		case x86.OpJmp:
			edgeTo(EdgeJump, blk, uint64(last.Dst.Imm))
		case x86.OpJcc:
			edgeTo(EdgeJump, blk, uint64(last.Dst.Imm))
			edgeTo(EdgeFall, blk, last.Next())
		case x86.OpCall:
			edgeTo(EdgeCall, blk, uint64(last.Dst.Imm))
			edgeTo(EdgeCallFall, blk, last.Next())
		case x86.OpCallInd:
			if name, ok := b.importTarget(last); ok {
				blk.ImportCall = name
			} else {
				for _, t := range activeBlocks {
					addEdge(EdgeIndirectCall, blk, t)
				}
			}
			edgeTo(EdgeCallFall, blk, last.Next())
		case x86.OpJmpInd:
			if name, ok := b.importTarget(last); ok {
				blk.ImportCall = name
				g.ImportStubs[blk.Addr] = name
			} else {
				for _, t := range activeBlocks {
					addEdge(EdgeIndirectJump, blk, t)
				}
			}
		case x86.OpRet, x86.OpUd2, x86.OpHlt, x86.OpInt3:
			// No successors; returns are modeled by EdgeCallFall.
		default:
			// Fall-through block boundary (syscall or leader split).
			edgeTo(EdgeFall, blk, last.Next())
		}
	}
}

// importTarget resolves a call/jmp through [rip+slot] against the import
// table.
func (b *builder) importTarget(inst x86.Inst) (string, bool) {
	ea, ok := inst.MemEA(inst.Dst)
	if !ok {
		return "", false
	}
	return b.importAtSlot(ea)
}

func (b *builder) importAtSlot(slot uint64) (string, bool) {
	for _, im := range b.bin.Imports {
		if im.SlotAddr == slot {
			return im.Name, true
		}
	}
	return "", false
}

// allAddrTaken scans every decoded instruction for lea operands landing
// in code, reachable or not (SysFilter's original, non-active notion).
func (b *builder) allAddrTaken(bin *elff.Binary) []uint64 {
	set := make(map[uint64]bool)
	for _, in := range b.insns {
		if in.Op != x86.OpLea {
			continue
		}
		if ea, ok := in.MemEA(in.Src); ok && bin.CodeContains(ea) {
			set[ea] = true
		}
	}
	return sortedAddrs(set)
}

// inferFunctions derives function boundaries: entries are symbols,
// exports, roots, direct call targets and active addresses taken; block
// membership follows the nearest-preceding-entry rule.
func (b *builder) inferFunctions(g *Graph, active map[uint64]bool) {
	entries := make(map[uint64]string)
	markEntry := func(addr uint64, name string) {
		if _, ok := g.Blocks[addr]; !ok {
			return
		}
		if cur, ok := entries[addr]; !ok || cur == "" {
			entries[addr] = name
		}
	}
	for name, addr := range g.Bin.Symbols {
		markEntry(addr, name)
	}
	for _, e := range g.Bin.Exports {
		markEntry(e.Addr, e.Name)
	}
	for _, r := range g.Roots {
		markEntry(r, "")
	}
	for ea := range active {
		markEntry(ea, "")
	}
	for _, blk := range g.sortedBlocks {
		if last := blk.Last(); last.Op == x86.OpCall {
			markEntry(uint64(last.Dst.Imm), "")
		}
	}

	addrs := sortedAddrs64(entries)
	g.Funcs = make([]*Func, 0, len(addrs))
	g.funcByEntry = make(map[uint64]*Func, len(addrs))
	for _, a := range addrs {
		f := &Func{Entry: a, Name: entries[a]}
		g.Funcs = append(g.Funcs, f)
		g.funcByEntry[a] = f
	}
	if len(g.Funcs) == 0 {
		return
	}
	for _, blk := range g.sortedBlocks {
		idx := sort.Search(len(g.Funcs), func(i int) bool { return g.Funcs[i].Entry > blk.Addr })
		if idx == 0 {
			continue // block before the first known function entry
		}
		f := g.Funcs[idx-1]
		f.Blocks = append(f.Blocks, blk)
	}
}

// scanDataPointers finds 8-byte-aligned little-endian values in the
// data region that land inside the code region.
func scanDataPointers(bin *elff.Binary) []uint64 {
	var out []uint64
	start := bin.CodeSize
	// Align to the next 8-byte boundary relative to the base address.
	for (bin.Base+start)%8 != 0 {
		start++
	}
	for off := start; off+8 <= uint64(len(bin.Blob)); off += 8 {
		v := uint64(bin.Blob[off]) | uint64(bin.Blob[off+1])<<8 |
			uint64(bin.Blob[off+2])<<16 | uint64(bin.Blob[off+3])<<24 |
			uint64(bin.Blob[off+4])<<32 | uint64(bin.Blob[off+5])<<40 |
			uint64(bin.Blob[off+6])<<48 | uint64(bin.Blob[off+7])<<56
		if bin.CodeContains(v) {
			out = append(out, v)
		}
	}
	return out
}

func sortedAddrs(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAddrs64(m map[uint64]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
