package corpus

import (
	"fmt"
	"sort"

	"bside/internal/elff"
	"bside/internal/emu"
)

// Build is one synthesized binary plus its dynamic ground truth.
type Build struct {
	Profile Profile
	Bin     *elff.Binary
	// Truth is the emulator-observed syscall set (the strace
	// equivalent), sorted.
	Truth []uint64
}

// IsStatic reports whether the binary counts as "static" in Table 2's
// grouping (plain ET_EXEC executables and the static-PIE oddballs).
func (b *Build) IsStatic() bool {
	return b.Profile.Kind == elff.KindStatic || b.Profile.StaticPIE
}

// Set is a generated corpus.
type Set struct {
	Apps   []*Build
	Debian []*Build
	// Libs maps DT_NEEDED names to the shared libraries.
	Libs map[string]*elff.Binary
}

// LoadLib is a shared.Analyzer-compatible library loader.
func (s *Set) LoadLib(name string) (*elff.Binary, error) {
	if lib, ok := s.Libs[name]; ok {
		return lib, nil
	}
	return nil, fmt.Errorf("corpus: unknown library %q", name)
}

// GenerateApps builds the six application stand-ins plus libraries.
func GenerateApps() (*Set, error) {
	set := &Set{Libs: make(map[string]*elff.Binary)}
	if err := set.buildLibs(); err != nil {
		return nil, err
	}
	for _, p := range AppProfiles() {
		b, err := set.buildOne(p)
		if err != nil {
			return nil, err
		}
		set.Apps = append(set.Apps, b)
	}
	return set, nil
}

// GenerateDebian builds the full 557-binary set plus libraries.
func GenerateDebian(seed int64) (*Set, error) {
	set := &Set{Libs: make(map[string]*elff.Binary)}
	if err := set.buildLibs(); err != nil {
		return nil, err
	}
	for _, p := range DebianProfiles(seed) {
		b, err := set.buildOne(p)
		if err != nil {
			return nil, err
		}
		set.Debian = append(set.Debian, b)
	}
	return set, nil
}

// NewLibrarySet builds just the shared-library universe — libc, the
// flat libx* family and the libg* dependency DAG — with no programs.
// It is the composable starting point for callers (the fuzzer) that
// synthesize their own program profiles against the standard libraries.
func NewLibrarySet() (*Set, error) {
	set := &Set{Libs: make(map[string]*elff.Binary)}
	if err := set.buildLibs(); err != nil {
		return nil, err
	}
	return set, nil
}

func (s *Set) buildLibs() error {
	libc, err := BuildLibc()
	if err != nil {
		return err
	}
	s.Libs["libc.so.6"] = libc
	for i := 0; i < numExtLibs; i++ {
		lib, err := BuildExtLib(i)
		if err != nil {
			return err
		}
		s.Libs[extLibName(i)] = lib
	}
	for i := 0; i < NumGraphLibs; i++ {
		lib, err := BuildGraphLib(i)
		if err != nil {
			return err
		}
		s.Libs[GraphLibName(i)] = lib
	}
	return nil
}

func (s *Set) buildOne(p Profile) (*Build, error) {
	bin, err := BuildProgram(p)
	if err != nil {
		return nil, err
	}
	truth, err := s.groundTruth(bin, p)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: ground truth: %w", p.Name, err)
	}
	return &Build{Profile: p, Bin: bin, Truth: truth}, nil
}

// groundTruth executes the binary under the emulator and returns the
// observed syscall set.
func (s *Set) groundTruth(bin *elff.Binary, p Profile) ([]uint64, error) {
	m, err := emu.NewProcess(bin, s.Libs)
	if err != nil {
		return nil, err
	}
	if err := m.RunBudget(emu.Budget{}); err != nil {
		return nil, err
	}
	if !m.Exited {
		return nil, fmt.Errorf("did not exit")
	}
	set := m.SyscallSet()
	out := make([]uint64, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
