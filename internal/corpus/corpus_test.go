package corpus

import (
	"fmt"
	"testing"

	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/shared"
)

func TestBuildLibc(t *testing.T) {
	libc, err := BuildLibc()
	if err != nil {
		t.Fatal(err)
	}
	if libc.Kind != elff.KindShared {
		t.Fatalf("kind %v", libc.Kind)
	}
	if _, ok := libc.ExportAddr("write"); !ok {
		t.Fatal("missing write export")
	}
	if _, ok := libc.ExportAddr("syscall"); !ok {
		t.Fatal("missing syscall wrapper export")
	}
	// The interface analysis must classify syscall() as a wrapper and
	// write() as a direct site.
	ifc, err := shared.AnalyzeLibrary(libc, "libc.so.6", ident.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := ifc.ExportNamed("syscall")
	if !ok || w.Wrapper == nil || w.Wrapper.Reg != "rdi" {
		t.Fatalf("syscall export: %+v", w)
	}
	wr, ok := ifc.ExportNamed("write")
	if !ok || len(wr.Syscalls) != 1 || wr.Syscalls[0] != 1 {
		t.Fatalf("write export: %+v", wr)
	}
	sy, ok := ifc.ExportNamed("sched_yield")
	if !ok || len(sy.Syscalls) != 1 || sy.Syscalls[0] != 24 {
		t.Fatalf("sched_yield export (wrapper call site in lib): %+v", sy)
	}
}

func TestBuildExtLibsDeterministic(t *testing.T) {
	a, err := BuildExtLib(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildExtLib(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exports) != len(b.Exports) || len(a.Blob) != len(b.Blob) {
		t.Fatal("ext lib generation must be deterministic")
	}
	names := ExtLibExports(3)
	if len(names) != len(a.Exports) {
		t.Fatalf("ExtLibExports mismatch: %v vs %d exports", names, len(a.Exports))
	}
}

func TestAppGeneration(t *testing.T) {
	set, err := GenerateApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Apps) != 6 {
		t.Fatalf("apps: %d", len(set.Apps))
	}
	for _, app := range set.Apps {
		if len(app.Truth) < 30 {
			t.Errorf("%s: ground truth too small: %d", app.Profile.Name, len(app.Truth))
		}
		if len(app.Truth) > 110 {
			t.Errorf("%s: ground truth too large: %d", app.Profile.Name, len(app.Truth))
		}
		// exit must always be in the truth.
		found := false
		for _, n := range app.Truth {
			if n == 60 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: missing exit in truth", app.Profile.Name)
		}
	}
}

func TestAppNoFalseNegatives(t *testing.T) {
	// The core validity claim (§5.1): B-Side's identified set is a
	// superset of the emulator ground truth for every app.
	set, err := GenerateApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range set.Apps {
		an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
		rep, err := an.Program(app.Bin)
		if err != nil {
			t.Fatalf("%s: %v", app.Profile.Name, err)
		}
		if rep.FailOpen {
			t.Fatalf("%s: fail-open", app.Profile.Name)
		}
		have := make(map[uint64]bool, len(rep.Syscalls))
		for _, n := range rep.Syscalls {
			have[n] = true
		}
		for _, n := range app.Truth {
			if !have[n] {
				t.Errorf("%s: FALSE NEGATIVE: %d in truth but not identified", app.Profile.Name, n)
			}
		}
		// Precision sanity: the identified set must not explode.
		if len(rep.Syscalls) > 3*len(app.Truth) {
			t.Errorf("%s: identified %d vs truth %d (too imprecise)",
				app.Profile.Name, len(rep.Syscalls), len(app.Truth))
		}
	}
}

func TestFailureClassesTrip(t *testing.T) {
	// A FailCFG profile must exhaust a 40k-instruction CFG budget.
	p := Profile{
		Name: "giant", Kind: elff.KindStatic, HotDirect: 5,
		Class: FailCFG, Filler: 10, Seed: 99,
	}
	bin, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cfg.Recover(bin, cfg.Options{MaxInsns: 40_000})
	if err != cfg.ErrBudget {
		t.Fatalf("want CFG budget error, got %v", err)
	}
	// The same binary still runs fine under the emulator (decoys are
	// never executed).
	set := &Set{Libs: map[string]*elff.Binary{}}
	if _, err := set.groundTruth(bin, p); err != nil {
		t.Fatalf("emulation: %v", err)
	}
	// And a generous budget analyzes it fully.
	if _, err := cfg.Recover(bin, cfg.Options{MaxInsns: 4_000_000}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

func TestStaticProfileSelfContained(t *testing.T) {
	profiles := DebianProfiles(42)
	var static *Profile
	for i := range profiles {
		if profiles[i].Kind == elff.KindStatic && profiles[i].Class == FailNone {
			static = &profiles[i]
			break
		}
	}
	if static == nil {
		t.Fatal("no static profile found")
	}
	bin, err := BuildProgram(*static)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Kind != elff.KindStatic || len(bin.Needed) != 0 || len(bin.Imports) != 0 {
		t.Fatalf("static binary shape: kind=%v needed=%v imports=%v",
			bin.Kind, bin.Needed, bin.Imports)
	}
	set := &Set{Libs: map[string]*elff.Binary{}}
	truth, err := set.groundTruth(bin, *static)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) < 5 {
		t.Fatalf("truth too small: %v", truth)
	}
}

func TestDebianProfileCounts(t *testing.T) {
	profiles := DebianProfiles(42)
	if len(profiles) != 557 {
		t.Fatalf("profiles: %d, want 557", len(profiles))
	}
	var static, dynamic, pie, unwind int
	classes := map[FailureClass]int{}
	for _, p := range profiles {
		if p.Kind == elff.KindStatic || p.StaticPIE {
			static++
		} else {
			dynamic++
			if p.HasUnwind {
				unwind++
			}
		}
		if p.StaticPIE {
			pie++
		}
		classes[p.Class]++
	}
	if static != 231 || dynamic != 326 {
		t.Fatalf("static=%d dynamic=%d", static, dynamic)
	}
	if pie != 4 {
		t.Fatalf("static-PIE: %d", pie)
	}
	if unwind != 108 {
		t.Fatalf("dynamic with unwind: %d, want 108", unwind)
	}
	want := map[FailureClass]int{
		FailNone: 223 + 4 + 214, FailCFG: 62 + 4, FailCFGHuge: 20,
		FailIdent: 17, FailWrapper: 13,
	}
	for k, v := range want {
		if classes[k] != v {
			t.Errorf("class %d: %d want %d", k, classes[k], v)
		}
	}
}

func TestStaticPIEIsSimple(t *testing.T) {
	profiles := DebianProfiles(42)
	for _, p := range profiles {
		if !p.StaticPIE {
			continue
		}
		bin, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if bin.Kind != elff.KindDynamic {
			t.Fatalf("static-PIE must read back as dynamic (ET_DYN+entry), got %v", bin.Kind)
		}
		if len(bin.Needed) != 0 {
			t.Fatalf("static-PIE must have no dependencies: %v", bin.Needed)
		}
	}
}

// analyzeSupersetOf runs B-Side over bin and asserts truth is a subset
// of the identified set (no false negatives), returning the report.
func analyzeSupersetOf(t *testing.T, set *Set, bin *elff.Binary, p Profile) *shared.ProgramReport {
	t.Helper()
	truth, err := set.groundTruth(bin, p)
	if err != nil {
		t.Fatalf("%s: ground truth: %v", p.Name, err)
	}
	an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
	rep, err := an.Program(bin)
	if err != nil {
		t.Fatalf("%s: analyze: %v", p.Name, err)
	}
	if rep.FailOpen {
		t.Fatalf("%s: fail-open", p.Name)
	}
	have := make(map[uint64]bool, len(rep.Syscalls))
	for _, n := range rep.Syscalls {
		have[n] = true
	}
	for _, n := range truth {
		if !have[n] {
			t.Errorf("%s: FALSE NEGATIVE: %d in truth but not identified", p.Name, n)
		}
	}
	return rep
}

func TestWrapperChainNoFalseNegatives(t *testing.T) {
	// The defining immediate sits WrapperDepth call frames above the
	// innermost wrapper's syscall; the backward search must cross every
	// forwarding frame to bound it.
	for _, depth := range []int{1, 2, 4} {
		p := Profile{
			Name: "chain", Kind: elff.KindStatic,
			HotDirect: 2, HotWrapper: 4, WrapperDepth: depth,
			ColdWrapper: 2, Filler: 10, Seed: int64(400 + depth),
		}
		bin, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		set := &Set{Libs: map[string]*elff.Binary{}}
		rep := analyzeSupersetOf(t, set, bin, p)
		if len(rep.Main.Wrappers) == 0 {
			t.Errorf("depth %d: no wrapper detected", depth)
		}
	}
}

func TestTableHandlersNoFalseNegatives(t *testing.T) {
	// Table-invoked handlers: the target address only exists in a data
	// slot, so the data-pointer scan must pull the handler into the
	// precise CFG for its syscall to be identified.
	p := Profile{
		Name: "tables", Kind: elff.KindStatic,
		HotDirect: 2, Handlers: 1, TableHandlers: 3,
		Filler: 10, Seed: 77,
	}
	bin, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	set := &Set{Libs: map[string]*elff.Binary{}}
	analyzeSupersetOf(t, set, bin, p)
}

func TestGraphLibDAG(t *testing.T) {
	for i := 0; i < NumGraphLibs; i++ {
		needs := GraphLibNeeds(i)
		if i == 0 && len(needs) != 0 {
			t.Fatalf("libg00 must be a leaf: %v", needs)
		}
		seen := map[string]bool{}
		for _, n := range needs {
			if seen[n] {
				t.Fatalf("libg%02d: duplicate need %s", i, n)
			}
			seen[n] = true
			var j int
			if _, err := fmt.Sscanf(n, "libg%02d.so", &j); err != nil || j >= i {
				t.Fatalf("libg%02d: edge must point at a lower index: %s", i, n)
			}
		}
	}
	// Deterministic bytes.
	a, err := BuildGraphLib(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraphLib(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatal("graph lib generation must be deterministic")
	}
}

func TestGraphLibClosureNoFalseNegatives(t *testing.T) {
	// Linking the deepest graph lib pulls its whole DT_NEEDED DAG into
	// the load closure; both the emulator walk and the analyzer's
	// dependency closure must traverse it.
	set, err := NewLibrarySet()
	if err != nil {
		t.Fatal(err)
	}
	p := Profile{
		Name: "graphy", Kind: elff.KindDynamic,
		HotDirect: 3, HotWrapper: 2, HotLibc: 3,
		UseLibcWrapper: true, GraphLibs: []int{NumGraphLibs - 1, 2},
		Filler: 10, Seed: 88,
	}
	bin, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range bin.Needed {
		if n == GraphLibName(NumGraphLibs-1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("graph lib not linked: %v", bin.Needed)
	}
	analyzeSupersetOf(t, set, bin, p)
}
