package corpus

import (
	"fmt"
	"math/rand"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/x86"
)

// NumGraphLibs is the size of the graph-library family: small shared
// libraries that depend on each other, so a binary linking one pulls a
// transitive DT_NEEDED DAG into its load closure. They exist to
// exercise the dependency-closure machinery (deepest-first interface
// computation, per-library caching, the emulator's load walk) with
// non-flat library graphs, which the flat libx* family cannot.
const NumGraphLibs = 6

const graphLibBase = 0x7F03_0000_0000

// GraphLibName returns the DT_NEEDED name of graph library i.
func GraphLibName(i int) string { return fmt.Sprintf("libg%02d.so", i) }

// GraphLibNeeds returns the fixed DT_NEEDED edges of graph library i: a
// deterministic DAG (edges only point at lower indices) with diamonds,
// so closures overlap and a shared dependency is reached over several
// paths.
func GraphLibNeeds(i int) []string {
	var out []string
	seen := map[int]bool{}
	for _, j := range []int{i - 1, (i - 1) / 2} {
		if j >= 0 && j < i && !seen[j] {
			seen[j] = true
			out = append(out, GraphLibName(j))
		}
	}
	return out
}

// GraphLibExports lists the export names of graph library i.
func GraphLibExports(i int) []string {
	out := make([]string, 0, 3)
	for e := 0; e < 3; e++ {
		out = append(out, fmt.Sprintf("g%02d_fn%d", i, e))
	}
	return out
}

// BuildGraphLib synthesizes graph library i: three exports with one
// direct syscall each, plus the library's fixed DT_NEEDED edges.
func BuildGraphLib(i int) (*elff.Binary, error) {
	rng := rand.New(rand.NewSource(int64(9900 + i)))
	b := asm.New()
	base := uint64(graphLibBase + uint64(i+1)*extLibSlide)
	exports := GraphLibExports(i)
	for _, name := range exports {
		nr := coldPool[rng.Intn(len(coldPool))]
		b.Func("g_" + name)
		b.Endbr64()
		b.MovRegImm32(x86.RAX, uint32(nr))
		b.Syscall()
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.Ret()
	}
	b.Label("__code_end")
	img, syms, err := b.Finalize(base)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", GraphLibName(i), err)
	}
	spec := elff.Spec{
		Kind:     elff.KindShared,
		Base:     base,
		Blob:     img,
		CodeSize: syms["__code_end"] - base,
		Needed:   GraphLibNeeds(i),
		Symbols:  funcSyms(b, syms),
	}
	for _, name := range exports {
		spec.Exports = append(spec.Exports, elff.Export{Name: name, Addr: syms["g_"+name]})
	}
	return writeRead(spec)
}
