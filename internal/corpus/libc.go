package corpus

import (
	"fmt"
	"math/rand"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/linux"
	"bside/internal/x86"
)

// Library load addresses: the synthetic loader performs no relocation,
// so every module gets a disjoint link-time base.
const (
	libcBase    = 0x7F00_0000_0000
	extLibBase  = 0x7F01_0000_0000
	extLibSlide = 0x0000_0010_0000
	mainBase    = 0x40_0000
)

// libcExportNames are the functions the synthetic libc.so.6 exposes,
// each implemented as a direct syscall matching its name.
var libcExportNames = []string{
	"read", "write", "open", "close", "stat", "fstat", "poll", "lseek",
	"mmap", "mprotect", "munmap", "brk", "ioctl", "access", "select",
	"dup", "dup2", "nanosleep", "getpid", "socket", "connect", "accept",
	"sendto", "recvfrom", "sendmsg", "recvmsg", "shutdown", "bind",
	"listen", "setsockopt", "getsockopt", "fcntl", "fsync", "getdents",
	"getcwd", "chdir", "rename", "mkdir", "unlink", "chmod", "getuid",
	"getgid", "geteuid", "futex", "epoll_wait", "epoll_ctl", "openat",
	"accept4", "epoll_create1", "pipe2", "getrandom",
}

// secondarySyscalls gives some exports a second site, as real libc
// functions often combine syscalls (open + fstat, etc.).
var secondarySyscalls = map[string]uint64{
	"open":   linux.SysFstat,
	"openat": linux.SysFstat,
	"socket": linux.SysSetsockopt,
	"accept": linux.SysAccept4,
	"mmap":   linux.SysMprotect,
}

// deadLibcSyscalls pad the library's whole-image distinct syscall count
// (SysFilter and Chestnut scan dead library code too; B-Side's
// per-export interface does not).
var deadLibcSyscalls = []uint64{
	15, 26, 27, 34, 36, 37, 38, 58, 62, 64, 65, 68, 71, 76, 84, 85, 86,
	88, 92, 93, 95, 103, 105, 106, 109, 126, 127, 128, 129, 135, 137,
	138, 143, 148, 159, 166, 170, 171,
}

// BuildLibc synthesizes libc.so.6: named exports with matching direct
// syscalls, the glibc-style syscall() register wrapper, a couple of
// wrapper users, and dead internal code.
func BuildLibc() (*elff.Binary, error) {
	b := asm.New()
	var exports []string

	for _, name := range libcExportNames {
		nr, ok := linux.Number(name)
		if !ok {
			return nil, fmt.Errorf("corpus: libc export %q has no syscall", name)
		}
		b.Func("libc_" + name)
		b.Endbr64()
		b.MovRegImm32(x86.RAX, uint32(nr))
		b.Syscall()
		if extra, ok := secondarySyscalls[name]; ok {
			b.MovRegImm32(x86.RAX, uint32(extra))
			b.Syscall()
		}
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.Ret()
		exports = append(exports, name)
	}

	// The glibc-style variadic wrapper.
	b.Func("libc_syscall")
	b.Endbr64()
	b.MovRegReg(x86.RAX, x86.RDI)
	b.Syscall()
	b.Ret()
	exports = append(exports, "syscall")

	// Exports that use the wrapper internally with constants (resolved
	// during library analysis as local wrapper call sites).
	b.Func("libc_sched_yield")
	b.Endbr64()
	b.MovRegImm32(x86.RDI, uint32(linux.SysSchedYield))
	b.CallLabel("libc_syscall")
	b.Ret()
	exports = append(exports, "sched_yield")

	b.Func("libc_gettid")
	b.Endbr64()
	b.MovRegImm32(x86.RDI, 186)
	b.CallLabel("libc_syscall")
	b.Ret()
	exports = append(exports, "gettid")

	// Dead internal helpers: whole-image scanners count these.
	for i, nr := range deadLibcSyscalls {
		b.Func(fmt.Sprintf("libc_internal_%d", i))
		b.MovRegImm32(x86.RAX, uint32(nr))
		b.Syscall()
		b.Ret()
	}

	b.Label("__code_end")
	img, syms, err := b.Finalize(libcBase)
	if err != nil {
		return nil, fmt.Errorf("corpus: libc: %w", err)
	}
	spec := elff.Spec{
		Kind:      elff.KindShared,
		Base:      libcBase,
		Blob:      img,
		CodeSize:  syms["__code_end"] - libcBase,
		HasUnwind: true,
		Symbols:   funcSyms(b, syms),
	}
	for _, name := range exports {
		spec.Exports = append(spec.Exports, elff.Export{Name: name, Addr: syms["libc_"+name]})
	}
	return writeRead(spec)
}

// numExtLibs is how many auxiliary shared libraries the Debian corpus
// carries (59 shared-library dependencies total, with libc.so.6).
const numExtLibs = 58

func extLibName(i int) string { return fmt.Sprintf("libx%02d.so", i) }

// BuildExtLib synthesizes one of the 58 auxiliary shared libraries:
// a handful of exports with one direct syscall each.
func BuildExtLib(i int) (*elff.Binary, error) {
	rng := rand.New(rand.NewSource(int64(7700 + i)))
	b := asm.New()
	base := uint64(extLibBase + uint64(i+1)*extLibSlide)
	nExports := 4 + rng.Intn(4)
	var exports []string
	for e := 0; e < nExports; e++ {
		name := fmt.Sprintf("x%02d_fn%d", i, e)
		nr := coldPool[rng.Intn(len(coldPool))]
		b.Func("ext_" + name)
		b.MovRegImm32(x86.RAX, uint32(nr))
		b.Syscall()
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.Ret()
		exports = append(exports, name)
	}
	b.Label("__code_end")
	img, syms, err := b.Finalize(base)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", extLibName(i), err)
	}
	spec := elff.Spec{
		Kind:     elff.KindShared,
		Base:     base,
		Blob:     img,
		CodeSize: syms["__code_end"] - base,
		Symbols:  funcSyms(b, syms),
	}
	for _, name := range exports {
		spec.Exports = append(spec.Exports, elff.Export{Name: name, Addr: syms["ext_"+name]})
	}
	return writeRead(spec)
}

// ExtLibExports lists the export names of extra library i (regenerated
// deterministically; used by the program builder without re-parsing).
func ExtLibExports(i int) []string {
	rng := rand.New(rand.NewSource(int64(7700 + i)))
	nExports := 4 + rng.Intn(4)
	out := make([]string, 0, nExports)
	for e := 0; e < nExports; e++ {
		out = append(out, fmt.Sprintf("x%02d_fn%d", i, e))
	}
	return out
}

func funcSyms(b *asm.Builder, syms map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for _, name := range b.FuncNames() {
		out[name] = syms[name]
	}
	return out
}

func writeRead(spec elff.Spec) (*elff.Binary, error) {
	data, err := elff.Write(spec)
	if err != nil {
		return nil, err
	}
	return elff.Read(data)
}
