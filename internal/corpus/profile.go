// Package corpus synthesizes the evaluation workloads: six
// application-shaped binaries standing in for the paper's Redis, Nginx,
// HAProxy, Memcached, Lighttpd and SQLite (§5.1), and a 557-binary
// Debian-shaped set (231 static + 326 dynamic executables + shared
// libraries, §5.2). Every binary is real x86-64 machine code in a real
// ELF container, deterministic from a seed, executable under the
// emulator (which provides the strace-equivalent dynamic ground truth)
// and analyzable by B-Side and both baselines.
//
// The corpus encodes the phenomena the paper evaluates:
//
//   - hot paths (executed by the emulator) vs cold paths (statically
//     reachable, dynamically dormant — the honest source of static
//     false positives);
//   - syscall numbers materialized in the same block, across blocks
//     beyond Chestnut's 30-instruction window, and through stack
//     memory (Figure 1 A/B/C);
//   - register- and stack-parameter syscall wrappers (Figure 2 B),
//     including the wrapper exported by the synthetic libc;
//   - function-pointer handlers feeding the active-address-taken
//     machinery;
//   - failure classes that organically exhaust each analysis phase's
//     budget (giant code for CFG recovery, fork bombs for
//     identification, opaque mega-wrappers for wrapper detection),
//     reproducing Table 2's success/failure split.
package corpus

import (
	"math/rand"

	"bside/internal/elff"
)

// hotPool holds plausible "commonly used" syscall numbers hot paths
// draw from.
var hotPool = []uint64{
	0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 18, 19, 20,
	21, 22, 23, 28, 32, 33, 35, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48,
	49, 50, 51, 52, 53, 54, 55, 56, 57, 61, 63, 72, 73, 74, 78, 79,
	80, 82, 83, 87, 89, 96, 97, 98, 99, 102, 104, 107, 108, 110, 112,
	157, 158, 186, 201, 202, 218, 228, 232, 233, 234, 257, 262,
	270, 271, 273, 281, 283, 288, 290, 291, 292, 293, 302, 318,
}

// Note: exit (60) and exit_group (231) are deliberately absent from the
// pools — the emulator stops at the first one, which would truncate the
// ground truth. Every program emits its exit site explicitly at the
// end.

// coldPool holds rarer numbers that typically sit on error/maintenance
// paths.
var coldPool = []uint64{
	6, 24, 25, 26, 27, 29, 30, 31, 34, 36, 37, 38, 59, 62, 64, 65, 66,
	67, 68, 69, 70, 71, 75, 76, 77, 81, 84, 85, 86, 88, 90, 91, 92, 93,
	94, 95, 100, 101, 103, 105, 106, 109, 111, 113, 114, 115, 116, 117,
	118, 119, 120, 121, 122, 123, 124, 125, 126, 130, 131, 132, 133,
	136, 137, 138, 140, 141, 149, 150, 151, 152, 160, 161, 165, 217,
	219, 221, 222, 223, 226, 227, 229, 230, 247, 248, 249, 250, 251,
	252, 253, 254, 255, 258, 259, 260, 263, 264, 265, 266, 267, 268,
	269, 275, 276, 277, 278, 282, 284, 285, 286, 287, 289, 294, 295,
	296, 299, 306, 307, 309, 316, 317, 319, 322, 332,
}

// deniedPool draws from Chestnut's fallback denylist (see
// baseline.ChestnutFallback): values here push Chestnut's count above
// its 270-entry fallback set, reproducing the ">268" behaviour.
var deniedPool = []uint64{154, 155, 175, 205, 206, 209, 240, 244, 246, 250, 254}

// FailureClass tags binaries engineered to exhaust a specific analysis
// phase (Table 2 failure modelling; percentages follow §5.2).
type FailureClass uint8

// Failure classes.
const (
	// FailNone is a well-behaved binary.
	FailNone FailureClass = iota
	// FailCFG carries enough decoy code to exhaust the disassembly
	// budget (73% of the paper's timeouts).
	FailCFG
	// FailCFGHuge is FailCFG at a size that also exhausts the more
	// generous baseline budgets (Chestnut's 20 dynamic failures).
	FailCFGHuge
	// FailIdent embeds fork ladders ahead of wrapper call sites so the
	// identification search explodes (15%).
	FailIdent
	// FailWrapper embeds an opaque mega-wrapper that exhausts the
	// wrapper-detection phase (12%).
	FailWrapper
)

// Profile parameterizes one synthesized binary.
type Profile struct {
	Name string
	Kind elff.Kind
	// StaticPIE marks the static-PIE oddballs: ET_DYN without imports,
	// counted as "static" in Table 2 but loadable by the baselines.
	StaticPIE bool
	// HasUnwind controls the .bside.unwind marker (SysFilter's gate).
	HasUnwind bool

	// Hot-path composition (executed by the emulator).
	HotDirect  int // plain sites, patterns A/B/C
	HotWrapper int // calls to the local or libc register wrapper
	HotStack   int // calls to the local Go-style stack wrapper
	Handlers   int // function-pointer handlers with one site each
	// TableHandlers adds function-pointer handlers invoked through
	// their global data slot (mov reg, [rip+slot]; call reg) instead of
	// a materialized address — the indirect-call shape whose targets
	// only the data-pointer scan can surface.
	TableHandlers int
	// TableSection places the handler slot table in a named data
	// section: "" (legacy — anonymous data, no section metadata),
	// "rodata" (.rodata, read-only), "relro" (.data.rel.ro, read-only
	// after relocation, every slot covered by a RELATIVE reloc), or
	// "data" (writable .data — provenance must NOT trust it).
	TableSection string
	// TablePacked prefixes the slot table with a 4-byte field so the
	// 8-byte slots land on 4-mod-8 addresses — the packed-table layout
	// that exposed the stride-8 data-scan blindness.
	TablePacked bool
	// ColdHandlers adds syscall-bearing handlers whose pointers sit in
	// table slots no call site ever loads: address-taken decoys that
	// only data provenance can rule out. Their values come from the
	// cold pool and never reach the dynamic ground truth, so excluding
	// them is pure precision.
	ColdHandlers int
	// SigDecoys adds lea-address-taken decoy handlers that read an
	// argument register before writing it. They are only prunable at
	// the argument-less entry-top dispatch site this knob also emits
	// (sig_slot is writable, so provenance alone cannot narrow that
	// site) — the call-signature layer's workload. Cold values, never
	// executed.
	SigDecoys int
	// WrapperDepth routes HotWrapper/ColdWrapper calls through a chain
	// of that many argument-forwarding intermediate wrappers before the
	// local register wrapper's syscall: the backward search must walk
	// the whole chain, one caller layer at a time, to bound the value.
	// 0 keeps the direct local/libc wrapper call.
	WrapperDepth int
	// HotDeep adds sites whose defining immediate sits DeepBlocks basic
	// blocks above the syscall: the backward search must walk that many
	// predecessor layers, re-seeding directed symbolic execution each
	// layer, so identification cost grows quadratically with the
	// distance while decode cost grows linearly. This is the workload
	// shape — large straight-line functions, unrolled interpreters —
	// where the identification phase dwarfs CFG recovery and
	// intra-binary parallelism pays.
	HotDeep int
	// DeepBlocks is the block distance of HotDeep sites (0 = 24).
	DeepBlocks int

	// Cold-path composition (statically reachable only).
	ColdDirect  int
	ColdWrapper int

	// DeniedVals is how many hot values are drawn from Chestnut's
	// denylist (pushes its result above the fallback set).
	DeniedVals int
	// StackedTruth is how many hot direct sites use the
	// through-the-stack pattern (Figure 1 C — Chestnut/SysFilter lose
	// these).
	StackedTruth int

	// Libc usage (dynamic binaries only).
	HotLibc  int // imported libc functions called on the hot path
	ColdLibc int
	// ExtraLibs is how many additional shared libraries are linked.
	ExtraLibs int
	// GraphLibs lists graph-library indices (0..NumGraphLibs-1) to link
	// as DT_NEEDED dependencies. Graph libraries depend on each other
	// (GraphLibNeeds), so linking one pulls a transitive dependency DAG
	// into the load closure — the random library-graph workload.
	GraphLibs []int
	// UseLibcWrapper routes wrapper calls through the imported libc
	// syscall() instead of a local wrapper.
	UseLibcWrapper bool

	// Failure engineering.
	Class FailureClass

	// Filler scales padding instructions between definition and use.
	Filler int

	// Seed for this binary's private RNG stream.
	Seed int64
}

// AppProfiles returns the six application stand-ins used for Figure 7,
// Table 1, Table 3 and Table 4. The knobs were chosen so the measured
// tool relationships land where the paper's do: ground truth in the
// 45-85 range, B-Side overestimating by roughly half of the truth (F1
// around 0.8), SysFilter dominated by whole-libc false positives plus
// wrapper false negatives (F1 near 0.5), and Chestnut falling back to
// its permissive set (F1 near 0.3).
func AppProfiles() []Profile {
	apps := []struct {
		name                  string
		direct, wrap, stack   int
		handlers, cold, coldW int
		hotLibc, coldLibc     int
	}{
		{"redis", 16, 8, 4, 4, 16, 4, 24, 8},
		{"nginx", 14, 7, 3, 4, 14, 4, 22, 7},
		{"haproxy", 13, 6, 3, 3, 13, 3, 20, 7},
		{"memcached", 12, 5, 3, 3, 11, 3, 18, 6},
		{"lighttpd", 11, 5, 2, 2, 10, 3, 17, 5},
		{"sqlite", 9, 4, 2, 2, 8, 2, 13, 4},
	}
	out := make([]Profile, 0, len(apps))
	for i, a := range apps {
		out = append(out, Profile{
			Name:           a.name,
			Kind:           elff.KindDynamic,
			HasUnwind:      true,
			HotDirect:      a.direct,
			HotWrapper:     a.wrap,
			HotStack:       a.stack,
			Handlers:       a.handlers,
			ColdDirect:     a.cold,
			ColdWrapper:    a.coldW,
			DeniedVals:     3,
			StackedTruth:   2,
			HotLibc:        a.hotLibc,
			ColdLibc:       a.coldLibc,
			UseLibcWrapper: true,
			Filler:         40,
			Seed:           int64(1000 + i),
		})
	}
	return out
}

// DebianProfiles returns the 557 profiles of the Debian-shaped corpus:
// 231 static (223 plain + 4 CFG-failure giants + 4 static-PIE) and 326
// dynamic (214 well-behaved + 62 FailCFG + 20 FailCFGHuge + 17
// FailIdent + 13 FailWrapper), with unwind info on exactly 108 dynamic
// binaries (none of them failure-engineered), reproducing Table 2's
// marginals.
func DebianProfiles(seed int64) []Profile {
	rng := rand.New(rand.NewSource(seed))
	var out []Profile

	// --- static executables (231) ---
	for i := 0; i < 223; i++ {
		scale := 0.4 + rng.Float64()*1.4
		out = append(out, Profile{
			Name:         nameFor("static", i),
			Kind:         elff.KindStatic,
			HotDirect:    scaled(12, scale),
			HotWrapper:   scaled(4, scale),
			HotStack:     scaled(2, scale),
			Handlers:     1 + rng.Intn(2),
			ColdDirect:   scaled(8, scale),
			ColdWrapper:  scaled(3, scale),
			StackedTruth: 1,
			Filler:       30,
			Seed:         rng.Int63(),
		})
	}
	for i := 0; i < 4; i++ { // B-Side's 4 static failures
		out = append(out, Profile{
			Name:       nameFor("static-giant", i),
			Kind:       elff.KindStatic,
			HotDirect:  10,
			HotWrapper: 3,
			ColdDirect: 5,
			Class:      FailCFG,
			Filler:     30,
			Seed:       rng.Int63(),
		})
	}
	for i := 0; i < 4; i++ { // static-PIE: loadable by the baselines
		out = append(out, Profile{
			Name:      nameFor("static-pie", i),
			Kind:      elff.KindShared, // ET_DYN; entry set at build time
			StaticPIE: true,
			HasUnwind: i == 0, // exactly one passes SysFilter's gate
			HotDirect: 24 + rng.Intn(6),
			Filler:    8,
			Seed:      rng.Int63(),
		})
	}

	// --- dynamic executables (326) ---
	mkDyn := func(name string, class FailureClass, unwind bool, scale float64, rng *rand.Rand) Profile {
		p := Profile{
			Name:           name,
			Kind:           elff.KindDynamic,
			HasUnwind:      unwind,
			HotDirect:      scaled(9, scale),
			HotWrapper:     scaled(4, scale),
			HotStack:       scaled(2, scale),
			Handlers:       1 + rng.Intn(3),
			ColdDirect:     scaled(7, scale),
			ColdWrapper:    scaled(2, scale),
			DeniedVals:     2,
			StackedTruth:   1,
			HotLibc:        scaled(14, scale),
			ColdLibc:       scaled(4, scale),
			ExtraLibs:      rng.Intn(3),
			UseLibcWrapper: true,
			Class:          class,
			Filler:         35,
			Seed:           rng.Int63(),
		}
		if class == FailIdent {
			// Keep every plain site phase-1 resolvable so the binary
			// survives wrapper detection and dies precisely in the
			// identification search (the paper's 15% class).
			p.StackedTruth = 0
			p.HotStack = 0
		}
		return p
	}
	n := 0
	add := func(count int, class FailureClass, unwind bool) {
		for i := 0; i < count; i++ {
			scale := 0.15 + rng.Float64()*1.9
			out = append(out, mkDyn(nameFor("dyn", n), class, unwind, scale, rng))
			n++
		}
	}
	add(108, FailNone, true)  // SysFilter's dynamic successes
	add(106, FailNone, false) // well-behaved, no unwind
	add(62, FailCFG, false)
	add(20, FailCFGHuge, false)
	add(17, FailIdent, false)
	add(13, FailWrapper, false)

	return out
}

func scaled(base int, f float64) int {
	v := int(float64(base)*f + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

func nameFor(prefix string, i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return prefix + "-" + string(letters[i%26]) + string(letters[(i/26)%26]) + string('0'+rune(i%10))
}

// LargeBinaryProfile is the shared large-binary workload shape: one
// static binary dominated by deep backward-search sites. The
// whole-analysis benchmark (BenchmarkAnalyzeLargeBinary), the
// frontend-only benchmark (BenchmarkRecoverLargeBinary) and the CFG
// recovery allocation-ceiling test all build exactly this profile, so
// their numbers describe the same binary — tune it here, not in the
// call sites.
func LargeBinaryProfile() Profile {
	return Profile{
		Name: "large", Kind: elff.KindStatic,
		HotDirect: 16, HotWrapper: 6, HotStack: 3, Handlers: 4,
		HotDeep: 40, DeepBlocks: 48,
		ColdDirect: 12, ColdWrapper: 4, StackedTruth: 2,
		Filler: 40, Seed: 77,
	}
}
