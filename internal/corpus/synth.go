package corpus

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/x86"
)

// emission is one syscall-producing site to synthesize.
type emission struct {
	value   uint64
	pattern pattern
	hot     bool
}

type pattern uint8

const (
	patSameBlock    pattern = iota + 1 // Figure 1 A
	patCrossBlock                      // Figure 1 B (beyond Chestnut's window when filler > 30)
	patStack                           // Figure 1 C
	patWrapper                         // register wrapper call
	patStackWrapper                    // stack-parameter wrapper call
	patHandler                         // via function pointer
	patDeep                            // Figure 1 B at DeepBlocks block distance
)

// builder synthesizes one program.
type builder struct {
	p          Profile
	rng        *rand.Rand
	b          *asm.Builder
	dynamic    bool // imports libc
	imports    []string
	neededLibs []string
	wrappers   struct {
		localReg   bool
		localStack bool
		// chainDepth is the deepest wrapper chain referenced by a call
		// site; emitHelpers materializes wrap_chain_1..chainDepth.
		chainDepth int
	}
	fillN int

	// Decoy-handler value plans (see Profile.ColdHandlers / SigDecoys).
	sigVal          uint64
	coldHandlerVals []uint64
	sigDecoyVals    []uint64
}

// BuildProgram synthesizes the binary for a profile. extLibIdx selects
// the extra libraries (empty for none). The libc import list is derived
// from the profile's HotLibc/ColdLibc counts.
func BuildProgram(p Profile) (*elff.Binary, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	sb := &builder{
		p:       p,
		rng:     rng,
		b:       asm.New(),
		dynamic: p.Kind == elff.KindDynamic && !p.StaticPIE,
	}
	return sb.build()
}

func (s *builder) build() (*elff.Binary, error) {
	// Cold decoy handlers are "address-taken through data, never
	// invoked": without a single indirect site nothing wires them into
	// the CFG, which would leave dead syscall-bearing code that even the
	// resolver-off over-approximation cannot see (and the differential
	// scanner would flag). Such profiles normalize to none.
	if s.p.Handlers+s.p.TableHandlers+s.p.SigDecoys == 0 {
		s.p.ColdHandlers = 0
	}
	p := s.p
	b := s.b

	sigSite := 0
	if p.SigDecoys > 0 {
		sigSite = 1 // the entry-top dispatch through sig_slot
	}
	hotVals := s.pick(hotPool, p.HotDirect+p.HotWrapper+p.HotStack+p.Handlers+p.TableHandlers+p.HotDeep+sigSite)
	coldVals := s.pick(coldPool, p.ColdDirect+p.ColdWrapper+p.ColdHandlers+p.SigDecoys)
	denied := s.pick(deniedPool, p.DeniedVals)
	// Decoy handlers draw from the tail of the cold plan; like the hot
	// plan, oversized requests recycle values, which only weakens the
	// measured shrink, never soundness.
	coldAt := func(i int) uint64 {
		if len(coldVals) == 0 {
			return coldPool[i%len(coldPool)]
		}
		return coldVals[i%len(coldVals)]
	}

	// Compose the emission plan. The value pool is finite; plans larger
	// than it (deep-search stress profiles) recycle values, which only
	// narrows the ground-truth set, never breaks it.
	var hotDirect, hotWrap, hotStackW, handlers, hotDeep []emission
	idx := 0
	take := func(n int, pat pattern, hot bool) []emission {
		out := make([]emission, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, emission{value: hotVals[idx%len(hotVals)], pattern: pat, hot: hot})
			idx++
		}
		return out
	}
	hotDirect = take(p.HotDirect, patSameBlock, true)
	hotWrap = take(p.HotWrapper, patWrapper, true)
	hotStackW = take(p.HotStack, patStackWrapper, true)
	handlers = take(p.Handlers+p.TableHandlers, patHandler, true)
	hotDeep = take(p.HotDeep, patDeep, true)
	if sigSite > 0 {
		s.sigVal = hotVals[idx%len(hotVals)]
		idx++
	}
	decoyBase := p.ColdDirect + p.ColdWrapper
	for i := 0; i < p.ColdHandlers; i++ {
		s.coldHandlerVals = append(s.coldHandlerVals, coldAt(decoyBase+i))
	}
	for i := 0; i < p.SigDecoys; i++ {
		s.sigDecoyVals = append(s.sigDecoyVals, coldAt(decoyBase+p.ColdHandlers+i))
	}

	// Pattern mix inside the direct sites: some cross-block beyond the
	// Chestnut window, some through the stack.
	for i := range hotDirect {
		switch {
		case i < p.StackedTruth:
			hotDirect[i].pattern = patStack
		case i%3 == 1 && !p.StaticPIE:
			hotDirect[i].pattern = patCrossBlock
		}
	}
	// Denied-range values: most direct (Chestnut resolves them on top
	// of its fallback), one through the wrapper when possible (a
	// Chestnut false negative).
	for i, v := range denied {
		if i == 0 && len(hotWrap) > 0 {
			hotWrap[0].value = v
			continue
		}
		hotDirect = append(hotDirect, emission{value: v, pattern: patSameBlock, hot: true})
	}

	var cold []emission
	coldSites := coldVals
	if n := p.ColdDirect + p.ColdWrapper; n < len(coldSites) {
		coldSites = coldSites[:n] // the tail belongs to the decoy handlers
	}
	for i, v := range coldSites {
		pat := patSameBlock
		if i >= p.ColdDirect {
			pat = patWrapper
		}
		cold = append(cold, emission{value: v, pattern: pat, hot: false})
	}

	// Libc usage plan.
	var hotLibc, coldLibc []string
	if s.dynamic {
		names := append([]string(nil), libcExportNames...)
		s.rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		n := p.HotLibc
		if n > len(names) {
			n = len(names)
		}
		hotLibc = names[:n]
		m := p.ColdLibc
		if n+m > len(names) {
			m = len(names) - n
		}
		coldLibc = names[n : n+m]
		for i := 0; i < p.ExtraLibs; i++ {
			lib := s.rng.Intn(numExtLibs)
			exps := ExtLibExports(lib)
			hotLibc = append(hotLibc, exps[s.rng.Intn(len(exps))])
			s.importLib(extLibName(lib))
		}
		for _, g := range p.GraphLibs {
			g = ((g % NumGraphLibs) + NumGraphLibs) % NumGraphLibs
			exps := GraphLibExports(g)
			hotLibc = append(hotLibc, exps[s.rng.Intn(len(exps))])
			s.importLib(GraphLibName(g))
		}
	}

	// ---- code ----
	b.Func("_start")
	b.Endbr64()
	b.SubRegImm(x86.RSP, 64)

	// Entry-top dispatch: before any call instruction, no argument
	// register carries a deliberate value (System V leaves them
	// undefined at process entry), so a candidate that reads one cannot
	// be the intended target — the call-signature layer's one provably
	// safe pruning spot. The slot is writable on purpose: provenance
	// must fall back here, leaving the site to the signature layer.
	if p.SigDecoys > 0 {
		b.MovRegMemRIP(x86.R13, "sig_slot")
		b.CallReg(x86.R13)
	}

	// Split hot work into init / loop / shutdown segments so phase
	// detection has temporal structure (§5.4).
	all := make([]emission, 0, len(hotDirect)+len(hotWrap)+len(hotStackW)+len(hotDeep))
	all = append(all, hotDirect...)
	all = append(all, hotWrap...)
	all = append(all, hotStackW...)
	all = append(all, hotDeep...)
	s.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	third := len(all) / 3
	initSeg, loopSeg, downSeg := all[:third], all[third:2*third], all[2*third:]

	libcThird := len(hotLibc) / 3
	initLibc, loopLibc, downLibc := hotLibc[:libcThird], hotLibc[libcThird:2*libcThird], hotLibc[2*libcThird:]

	for _, e := range initSeg {
		s.emit(e)
	}
	for _, name := range initLibc {
		s.callImport(name)
	}

	// Serving loop: two concrete iterations.
	b.MovRegImm32(x86.R14, 2)
	b.Label("serve_loop")
	for _, e := range loopSeg {
		s.emit(e)
	}
	for _, name := range loopLibc {
		s.callImport(name)
	}
	for i := range handlers {
		if i < s.p.Handlers {
			b.Lea(x86.R13, fmt.Sprintf("handler_%d", i))
		} else {
			// Table-invoked: the pointer travels through its global
			// slot, so only the data-pointer scan ties the call site to
			// its target.
			b.MovRegMemRIP(x86.R13, fmt.Sprintf("handler_slot_%d", i))
		}
		b.CallReg(x86.R13)
	}
	b.DecReg(x86.R14)
	b.CmpRegImm(x86.R14, 0)
	b.Jcc(x86.CondNE, "serve_loop")

	for _, e := range downSeg {
		s.emit(e)
	}
	for _, name := range downLibc {
		s.callImport(name)
	}

	// CFG failure classes: address-take every decoy from the hot path
	// so the active-address-taken refinement pulls all of them into the
	// precise CFG in one round — where the disassembly budget dies.
	for d := 0; d < s.decoyCount(); d++ {
		b.Lea(x86.R13, fmt.Sprintf("decoy_%d", d))
	}
	// Signature decoys are lea-address-taken like any handler; only the
	// argument-signature check can keep them out of the entry-top site.
	for i := 0; i < p.SigDecoys; i++ {
		b.Lea(x86.R13, fmt.Sprintf("sig_decoy_%d", i))
	}

	// Cold section: statically reachable, dynamically skipped (the
	// config flag in the data section is fixed to 1).
	b.MovRegMemRIP(x86.RBX, "cold_flag")
	b.CmpRegImm(x86.RBX, 0)
	b.Jcc(x86.CondNE, "cold_skip")
	for _, e := range cold {
		s.emit(e)
	}
	for _, name := range coldLibc {
		s.callImport(name)
	}
	b.Label("cold_skip")

	// Exit.
	b.MovRegImm32(x86.RAX, 60)
	b.Syscall()
	b.Ret()

	s.emitHelpers(handlers)
	s.emitFailureClass()
	s.emitStubs()

	b.Label("__code_end")
	s.emitData(handlers)

	return s.finalize()
}

// pick samples n distinct values from pool.
func (s *builder) pick(pool []uint64, n int) []uint64 {
	if n > len(pool) {
		n = len(pool)
	}
	perm := s.rng.Perm(len(pool))
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// emit produces the code for one emission on the current path.
func (s *builder) emit(e emission) {
	b := s.b
	switch e.pattern {
	case patSameBlock:
		b.MovRegImm32(x86.RAX, uint32(e.value))
		b.Syscall()

	case patCrossBlock:
		b.MovRegImm32(x86.RAX, uint32(e.value))
		s.filler(s.p.Filler)
		b.Syscall()

	case patStack:
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 24}, int32(e.value))
		s.filler(6)
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 24})
		b.Syscall()

	case patDeep:
		// The defining immediate sits DeepBlocks basic blocks above the
		// syscall: jmp-next boundaries split the filler into a block
		// chain (no forks — the jumps are unconditional), so the
		// backward search pays one predecessor layer per block.
		b.MovRegImm32(x86.RAX, uint32(e.value))
		blocks := s.p.DeepBlocks
		if blocks <= 0 {
			blocks = 24
		}
		for i := 0; i < blocks; i++ {
			s.fillN++
			lbl := fmt.Sprintf("deep_%d", s.fillN)
			b.JmpLabel(lbl)
			b.Label(lbl)
			s.filler(4)
		}
		b.Syscall()

	case patWrapper:
		b.MovRegImm32(x86.RDI, uint32(e.value))
		if s.p.Class == FailIdent {
			// The ladder sits BETWEEN the number's definition and the
			// wrapper call: the backward search must cross it with
			// forward symbolic execution, which forks exponentially.
			s.forkLadder(18)
		}
		switch {
		case s.p.WrapperDepth > 0:
			// The number crosses WrapperDepth argument-forwarding
			// frames before the innermost wrapper's syscall.
			s.wrappers.localReg = true
			if s.p.WrapperDepth > s.wrappers.chainDepth {
				s.wrappers.chainDepth = s.p.WrapperDepth
			}
			b.CallLabel(fmt.Sprintf("wrap_chain_%d", s.p.WrapperDepth))
		case s.dynamic && s.p.UseLibcWrapper && s.p.Class != FailWrapper:
			s.callImport("syscall")
		default:
			s.wrappers.localReg = true
			b.CallLabel("local_syscall")
		}

	case patStackWrapper:
		s.wrappers.localStack = true
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, int32(e.value))
		b.CallLabel("local_stack_syscall")
		b.AddRegImm(x86.RSP, 16)

	case patHandler:
		// Emitted separately as a function; nothing inline.
	}
}

// filler emits k straight-line instructions that leave rax/rdi/rsp
// untouched. Straight-line on purpose: Chestnut's 30-instruction window
// is measured in instructions, not blocks, and branch-free padding
// keeps the symbolic searches from forking on data-independent jumps.
func (s *builder) filler(k int) {
	b := s.b
	for i := 0; i < k; i++ {
		switch s.rng.Intn(4) {
		case 0:
			b.Nop()
		case 1:
			b.IncReg(x86.R12)
		case 2:
			b.MovRegReg(x86.R13, x86.R12)
		case 3:
			b.AddRegImm(x86.R13, int32(s.rng.Intn(64)))
		}
	}
}

// forkLadder emits n sequential data-independent branches; directed
// symbolic execution crossing the ladder forks 2^n paths, which is the
// identification-phase failure class.
func (s *builder) forkLadder(n int) {
	b := s.b
	for i := 0; i < n; i++ {
		s.fillN++
		lbl := fmt.Sprintf("ladder_%d", s.fillN)
		b.CmpRegImm(x86.R12, int32(i))
		b.Jcc(x86.CondE, lbl)
		b.IncReg(x86.R13)
		b.Label(lbl)
	}
}

// emitHelpers writes the local wrappers and the handler functions.
func (s *builder) emitHelpers(handlers []emission) {
	b := s.b
	if s.wrappers.localReg || s.p.Class == FailWrapper {
		b.Func("local_syscall")
		b.Endbr64()
		if s.p.Class == FailWrapper {
			// Opaque mega-wrapper: a long branch ladder between entry
			// and site blows up wrapper detection's phase 2.
			s.forkLadder(22)
		}
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}
	// Wrapper chains: wrap_chain_d forwards its untouched %rdi one
	// frame down; only the innermost local_syscall holds the syscall
	// instruction, so the backward search crosses every frame to find
	// the defining immediate in the original caller.
	for d := 1; d <= s.wrappers.chainDepth; d++ {
		b.Func(fmt.Sprintf("wrap_chain_%d", d))
		b.Endbr64()
		if d == 1 {
			b.CallLabel("local_syscall")
		} else {
			b.CallLabel(fmt.Sprintf("wrap_chain_%d", d-1))
		}
		b.Ret()
	}
	if s.wrappers.localStack {
		b.Func("local_stack_syscall")
		b.Endbr64()
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	}
	for i, h := range handlers {
		b.Func(fmt.Sprintf("handler_%d", i))
		b.Endbr64()
		b.MovRegImm32(x86.RAX, uint32(h.value))
		b.Syscall()
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.Ret()
	}
	if s.p.SigDecoys > 0 {
		// The one target the entry-top site really calls: reads no
		// argument registers, so the signature layer keeps it.
		b.Func("sig_handler")
		b.Endbr64()
		b.MovRegImm32(x86.RAX, uint32(s.sigVal))
		b.Syscall()
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.Ret()
	}
	for i, v := range s.sigDecoyVals {
		// Reads arg register 6 before any write: incompatible with a
		// call site that provides no arguments.
		b.Func(fmt.Sprintf("sig_decoy_%d", i))
		b.Endbr64()
		b.MovRegReg(x86.RBX, x86.R9)
		b.MovRegImm32(x86.RAX, uint32(v))
		b.Syscall()
		b.Ret()
	}
	for i, v := range s.coldHandlerVals {
		b.Func(fmt.Sprintf("cold_handler_%d", i))
		b.Endbr64()
		b.MovRegImm32(x86.RAX, uint32(v))
		b.Syscall()
		b.Ret()
	}
}

// decoyInsns is the exact instruction count of one decoy body: 144
// pattern slots where every fourth emits a three-instruction branch
// (36*6 = 216) plus the final ret.
const decoyInsns = 217

// decoyCount sizes the CFG-failure decoy code: the well-behaved corpus
// decodes a few thousand instructions, the evaluation's disassembly
// budget sits at 40k, Chestnut's at 60k — so ~45k-instruction decoys
// fail only B-Side's budget and ~90k fail Chestnut's too.
func (s *builder) decoyCount() int {
	switch s.p.Class {
	case FailCFG:
		return 45_000 / decoyInsns
	case FailCFGHuge:
		return 90_000 / decoyInsns
	default:
		return 0
	}
}

// emitFailureClass appends the decoy function bodies of the CFG failure
// classes; each body is ~150 instructions of branchy filler. Their
// addresses are taken on the hot path (see build), which is what drags
// them into the precise CFG — 73% of the paper's timeouts happen during
// CFG construction, and this reproduces that failure mode organically.
func (s *builder) emitFailureClass() {
	n := s.decoyCount()
	b := s.b
	for d := 0; d < n; d++ {
		b.Func(fmt.Sprintf("decoy_%d", d))
		for i := 0; i < 144; i++ {
			switch i % 4 {
			case 0:
				b.IncReg(x86.R12)
			case 1:
				b.Nop()
			case 2:
				s.fillN++
				lbl := fmt.Sprintf("dc_%d", s.fillN)
				b.CmpRegImm(x86.R12, 1)
				b.Jcc(x86.CondNE, lbl)
				b.DecReg(x86.R12)
				b.Label(lbl)
			case 3:
				b.MovRegReg(x86.R13, x86.R12)
			}
		}
		b.Ret()
	}
}

// emitStubs writes PLT-style stubs and GOT slots for every import.
func (s *builder) emitStubs() {
	b := s.b
	for _, name := range s.imports {
		b.Func("stub_" + name)
		b.JmpMemRIP("got_" + name)
	}
}

// emitData writes the data region: cold flag, handler table, GOT slots.
func (s *builder) emitData(handlers []emission) {
	b := s.b
	b.Align(8)
	b.Label("cold_flag")
	b.Quad(1)
	if s.p.TablePacked {
		// A 4-byte field ahead of the table packs the 8-byte slots to
		// 4-mod-8 addresses — the layout the stride-8 scan missed.
		b.Raw(0xEE, 0xEE, 0xEE, 0xEE)
	}
	b.Label("table_start")
	for i := range handlers {
		b.Label(fmt.Sprintf("handler_slot_%d", i))
		b.QuadLabel(fmt.Sprintf("handler_%d", i))
	}
	for i := range s.coldHandlerVals {
		// Slots no site ever loads: address-taken evidence without a
		// caller.
		b.Label(fmt.Sprintf("cold_slot_%d", i))
		b.QuadLabel(fmt.Sprintf("cold_handler_%d", i))
	}
	b.Label("table_end")
	b.Align(8)
	if s.p.SigDecoys > 0 {
		b.Label("sig_slot")
		b.QuadLabel("sig_handler")
	}
	for _, name := range s.imports {
		b.Label("got_" + name)
		b.Quad(0)
	}
}

// callImport emits a call to an imported function's stub, registering
// the import on first use.
func (s *builder) callImport(name string) {
	s.registerImport(name)
	s.b.CallLabel("stub_" + name)
}

func (s *builder) registerImport(name string) {
	for _, im := range s.imports {
		if im == name {
			return
		}
	}
	s.imports = append(s.imports, name)
}

func (s *builder) importLib(lib string) {
	for _, l := range s.neededLibs {
		if l == lib {
			return
		}
	}
	s.neededLibs = append(s.neededLibs, lib)
}

func (s *builder) finalize() (*elff.Binary, error) {
	p := s.p
	img, syms, err := s.b.Finalize(mainBase)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", p.Name, err)
	}
	kind := elff.KindStatic
	if p.Kind == elff.KindDynamic || p.StaticPIE {
		kind = elff.KindDynamic
	}
	spec := elff.Spec{
		Kind:      kind,
		Base:      mainBase,
		Entry:     syms["_start"],
		Blob:      img,
		CodeSize:  syms["__code_end"] - mainBase,
		HasUnwind: p.HasUnwind,
		Symbols:   funcSyms(s.b, syms),
	}
	if p.TableSection != "" {
		if start, end := syms["table_start"], syms["table_end"]; end > start {
			name, writable := ".rodata", false
			switch p.TableSection {
			case "relro":
				name = ".data.rel.ro"
			case "data":
				name, writable = ".data", true
			}
			spec.DataSections = append(spec.DataSections, elff.DataSection{
				Name: name, Addr: start, Size: end - start, Writable: writable,
			})
			if p.TableSection == "relro" {
				// RELRO tables are populated by the dynamic linker; each
				// slot gets the RELATIVE reloc a real linker would emit.
				for slot := start; slot+8 <= end; slot += 8 {
					t := binary.LittleEndian.Uint64(img[slot-mainBase:])
					spec.Relocs = append(spec.Relocs, elff.Reloc{Slot: slot, Target: t})
				}
			}
		}
	}
	if s.dynamic {
		spec.Needed = append([]string{"libc.so.6"}, s.neededLibs...)
	}
	for _, name := range s.imports {
		spec.Imports = append(spec.Imports, elff.Import{
			Name:     name,
			SlotAddr: syms["got_"+name],
		})
	}
	return writeRead(spec)
}
