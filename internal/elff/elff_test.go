package elff

import (
	"bytes"
	"crypto/sha256"
	"debug/elf"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"bside/internal/asm"
	"bside/internal/x86"
)

// buildSample assembles a tiny program with an import stub, finalizes it
// and wraps it in a Spec.
func buildSample(t *testing.T, kind Kind, base uint64) (Spec, map[string]uint64) {
	t.Helper()
	b := asm.New()
	b.Label("_start")
	b.MovRegImm32(x86.RAX, 60)
	b.Syscall()
	b.CallLabel("stub_write")
	b.Ret()
	b.Label("helper")
	b.MovRegImm32(x86.RAX, 1)
	b.Syscall()
	b.Ret()
	b.Label("stub_write")
	b.JmpMemRIP("got_write")
	b.Align(8)
	b.Label("got_write")
	b.Quad(0)
	img, syms, err := b.Finalize(base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	spec := Spec{
		Kind:  kind,
		Base:  base,
		Entry: syms["_start"],
		Blob:  img,
		Exports: []Export{
			{Name: "helper", Addr: syms["helper"]},
		},
		Imports: []Import{
			{Name: "write", SlotAddr: syms["got_write"]},
		},
		Needed:    []string{"libc.so.6"},
		Symbols:   syms,
		HasUnwind: true,
	}
	if kind == KindShared {
		spec.Entry = 0
	}
	return spec, syms
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindStatic, KindDynamic, KindShared} {
		t.Run(kind.String(), func(t *testing.T) {
			base := uint64(0x400000)
			spec, syms := buildSample(t, kind, base)
			data, err := Write(spec)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			bin, err := Read(data)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if bin.Kind != kind {
				t.Errorf("kind %v want %v", bin.Kind, kind)
			}
			if bin.Base != base || !bytes.Equal(bin.Blob, spec.Blob) {
				t.Errorf("blob mismatch: base %#x len %d", bin.Base, len(bin.Blob))
			}
			if kind != KindShared && bin.Entry != syms["_start"] {
				t.Errorf("entry %#x want %#x", bin.Entry, syms["_start"])
			}
			if a, ok := bin.ExportAddr("helper"); !ok || a != syms["helper"] {
				t.Errorf("export helper %#x ok=%v", a, ok)
			}
			if len(bin.Imports) != 1 || bin.Imports[0].Name != "write" ||
				bin.Imports[0].SlotAddr != syms["got_write"] {
				t.Errorf("imports: %+v", bin.Imports)
			}
			if name, ok := bin.ImportAtSlot(syms["got_write"]); !ok || name != "write" {
				t.Errorf("ImportAtSlot: %q ok=%v", name, ok)
			}
			if len(bin.Needed) != 1 || bin.Needed[0] != "libc.so.6" {
				t.Errorf("needed: %v", bin.Needed)
			}
			if !bin.HasUnwind {
				t.Error("unwind marker lost")
			}
			if bin.Symbols["helper"] != syms["helper"] {
				t.Errorf("symtab: %v", bin.Symbols)
			}
		})
	}
}

func TestDataSectionAndRelocRoundTrip(t *testing.T) {
	spec, syms := buildSample(t, KindDynamic, 0x400000)
	// Treat the tail of the blob (the GOT quad) as two overlapping data
	// views to exercise both writabilities, and record one RELATIVE
	// reloc pointing back into code.
	slot := syms["got_write"]
	spec.DataSections = []DataSection{
		{Name: ".rodata", Addr: slot, Size: 8, Writable: false},
		{Name: ".data", Addr: slot, Size: 8, Writable: true},
	}
	spec.Relocs = []Reloc{{Slot: slot, Target: syms["helper"]}}
	data, err := Write(spec)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	bin, err := Read(data)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(bin.DataSections) != 2 ||
		bin.DataSections[0] != spec.DataSections[0] ||
		bin.DataSections[1] != spec.DataSections[1] {
		t.Fatalf("data sections: %+v", bin.DataSections)
	}
	if len(bin.Relocs) != 1 || bin.Relocs[0] != spec.Relocs[0] {
		t.Fatalf("relocs: %+v", bin.Relocs)
	}
	// The read-only view makes the quad visible through ROU64At; an
	// address one past the window must not be.
	if v, ok := bin.ROU64At(slot); !ok || v != 0 {
		t.Fatalf("ROU64At(slot) = %#x, %v", v, ok)
	}
	if _, ok := bin.ROU64At(slot + 1); ok {
		t.Fatal("ROU64At past the section window succeeded")
	}
	// Spec() must carry the new fields so WriteFile round-trips them.
	rt := bin.Spec()
	if len(rt.DataSections) != 2 || len(rt.Relocs) != 1 {
		t.Fatalf("Spec() dropped resolver metadata: %+v", rt)
	}
	// The file must still satisfy debug/elf with the extra headers.
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("debug/elf: %v", err)
	}
	defer f.Close()
	sec := f.Section(".rodata")
	if sec == nil {
		t.Fatal("no .rodata header")
	}
	raw, err := sec.Data()
	if err != nil || len(raw) != 8 {
		t.Fatalf(".rodata data: %v len %d", err, len(raw))
	}
}

func TestWriteRejectsDataSectionOutsideBlob(t *testing.T) {
	spec, _ := buildSample(t, KindDynamic, 0x400000)
	spec.DataSections = []DataSection{
		{Name: ".rodata", Addr: spec.Base + uint64(len(spec.Blob)) - 4, Size: 8},
	}
	if _, err := Write(spec); err == nil {
		t.Fatal("section spilling past the blob accepted")
	}
}

// TestParsesWithDebugELF double-checks the writer output against the
// standard library's notion of a valid ELF.
func TestParsesWithDebugELF(t *testing.T) {
	spec, _ := buildSample(t, KindDynamic, 0x400000)
	data, err := Write(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("debug/elf rejects image: %v", err)
	}
	defer f.Close()
	if f.Type != elf.ET_DYN || f.Machine != elf.EM_X86_64 {
		t.Fatalf("header: %v %v", f.Type, f.Machine)
	}
	libs, err := f.ImportedLibraries()
	if err != nil || len(libs) != 1 || libs[0] != "libc.so.6" {
		t.Fatalf("ImportedLibraries: %v %v", libs, err)
	}
	imps, err := f.ImportedSymbols()
	if err != nil || len(imps) != 1 || imps[0].Name != "write" {
		t.Fatalf("ImportedSymbols: %v %v", imps, err)
	}
}

func TestReadFileAndHelpers(t *testing.T) {
	spec, syms := buildSample(t, KindStatic, 0x400000)
	data, err := Write(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample")
	if err := os.WriteFile(path, data, 0o755); err != nil {
		t.Fatal(err)
	}
	bin, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Path != path {
		t.Errorf("path %q", bin.Path)
	}
	if !bin.Contains(syms["_start"]) || bin.Contains(bin.CodeEnd()) {
		t.Error("Contains bounds")
	}
	if _, ok := bin.BytesAt(bin.CodeEnd()); ok {
		t.Error("BytesAt out of range must fail")
	}
	if v, ok := bin.U64At(syms["got_write"]); !ok || v != 0 {
		t.Errorf("U64At got slot: %#x ok=%v", v, ok)
	}
	if _, ok := bin.ExportAddr("nonexistent"); ok {
		t.Error("bogus export resolved")
	}
}

func TestWriteErrors(t *testing.T) {
	if _, err := Write(Spec{Kind: KindStatic}); err == nil {
		t.Error("empty blob must fail")
	}
	if _, err := Write(Spec{Blob: []byte{0x90}}); err == nil {
		t.Error("missing kind must fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read([]byte("not an elf at all")); err == nil {
		t.Error("garbage accepted")
	}
	spec, _ := buildSample(t, KindStatic, 0x400000)
	data, _ := Write(spec)
	// Truncations must error, never panic.
	for _, n := range []int{1, 10, 63, 100, len(data) / 2} {
		if n >= len(data) {
			continue
		}
		if _, err := Read(data[:n]); err == nil {
			t.Errorf("truncated to %d accepted", n)
		}
	}
}

// TestReadComputesContentHash: parsing stamps the image's SHA-256 — the
// content address the analysis caches key on — and identical images
// hash identically while any byte change diverges.
func TestReadComputesContentHash(t *testing.T) {
	spec, _ := buildSample(t, KindStatic, 0x400000)
	data, err := Write(spec)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	want := hex.EncodeToString(sum[:])

	b1, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Hash != want {
		t.Fatalf("hash: %s, want %s", b1.Hash, want)
	}
	b2, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Hash != b1.Hash {
		t.Fatal("identical images must hash identically")
	}

	// Flip one blob byte: different content, different address.
	spec2 := spec
	spec2.Blob = append([]byte(nil), spec.Blob...)
	spec2.Blob[len(spec2.Blob)-1] ^= 0xFF
	data2, err := Write(spec2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Read(data2)
	if err != nil {
		t.Fatal(err)
	}
	if b3.Hash == b1.Hash {
		t.Fatal("differing images must hash differently")
	}
}
