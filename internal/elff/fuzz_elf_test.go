package elff

import (
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus feeds every malformed corpus entry — plus one well-formed
// image so the fuzzer starts with a parse-accepting shape to mutate —
// into f.
func seedCorpus(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.elf"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("malformed corpus unavailable: %v (%d entries)", err, len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	good, err := Write(Spec{
		Kind:  KindStatic,
		Base:  0x400000,
		Entry: 0x400000,
		Blob:  []byte{0x0F, 0x05, 0xC3, 0x90},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
}

// FuzzRead throws mutated images at the in-memory parser. The oracle
// is pure containment plus internal consistency: no panic, no
// unbounded allocation (the engine's memory limits catch those), and
// on success a Binary whose size fields agree with its blob.
func FuzzRead(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(data)
		if err != nil {
			return
		}
		if b.CodeSize > uint64(len(b.Blob)) {
			t.Fatalf("CodeSize %d exceeds blob %d", b.CodeSize, len(b.Blob))
		}
		if b.Hash == "" {
			t.Fatal("accepted binary has empty hash")
		}
		for _, ds := range b.DataSections {
			if ds.Addr < b.Base || ds.Addr-b.Base+ds.Size > uint64(len(b.Blob)) {
				t.Fatalf("data section %q [%#x,+%#x) escapes blob", ds.Name, ds.Addr, ds.Size)
			}
		}
	})
}

// FuzzOpenBinary drives the same mutated images through the file
// frontend — mmap aliasing and copying paths both — and checks the two
// agree on acceptance and content hash. A divergence would mean the
// zero-copy path parses hostile input differently from the portable
// one.
func FuzzOpenBinary(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "img.elf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		mapped, mErr := OpenBinary(path, false)
		copied, cErr := OpenBinary(path, true)
		if (mErr == nil) != (cErr == nil) {
			t.Fatalf("frontends disagree: mmap err=%v, copy err=%v", mErr, cErr)
		}
		if mErr == nil {
			if mapped.Hash != copied.Hash {
				t.Fatalf("frontends hash differently: %s vs %s", mapped.Hash, copied.Hash)
			}
			mapped.ReleaseImage()
			copied.ReleaseImage()
		}
	})
}
