package elff

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Identity is the cheap content identity of an ELF image: exactly the
// fields the content-addressed analysis caches key by — the image hash
// and the DT_NEEDED list (whose transitive closure fingerprints a
// program entry). It exists so a warm-cache probe does not pay the
// full debug/elf parse (section walks, symbol tables, string tables)
// for a binary whose analysis is already on disk or in memory.
type Identity struct {
	// Hash is the lowercase hex SHA-256 of the image bytes, identical
	// to the Hash a full Read would stamp.
	Hash string
	// Needed lists DT_NEEDED entries in file order, identical to the
	// Needed a full Read would produce (nil when the image has no
	// dynamic section).
	Needed []string
}

// ELF constants the identity parser needs beyond write.go's shared
// set; values are fixed by the System V gABI.
const (
	elfClass64    = 2
	elfDataLE     = 1
	elfTypeExec   = 2
	elfTypeDyn    = 3
	elfMachX86_64 = 62
	shentSize64   = 64
)

// ReadIdentity derives an image's cache identity with a minimal
// hand-rolled ELF64 walk: header, section headers, the dynamic section
// and its string table — nothing else is touched. Any structural
// oddity is an error; callers fall back to the full Read (which either
// parses the file properly or reports the real problem). A successful
// ReadIdentity agrees with Read on both fields by construction.
func ReadIdentity(data []byte) (Identity, error) {
	var id Identity
	if len(data) < 64 || data[0] != 0x7F || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return id, badImage("not an ELF image")
	}
	if data[4] != elfClass64 || data[5] != elfDataLE {
		return id, badImage("not a little-endian ELF64 image")
	}
	etype := binary.LittleEndian.Uint16(data[16:])
	if etype != elfTypeExec && etype != elfTypeDyn {
		return id, badImage("unsupported ELF type %d", etype)
	}
	if machine := binary.LittleEndian.Uint16(data[18:]); machine != elfMachX86_64 {
		return id, badImage("unsupported machine %d", machine)
	}

	sum := sha256.Sum256(data)
	id.Hash = hex.EncodeToString(sum[:])

	shoff := binary.LittleEndian.Uint64(data[40:])
	shentsize := binary.LittleEndian.Uint16(data[58:])
	shnum := binary.LittleEndian.Uint16(data[60:])
	if shnum == 0 {
		return id, nil // no sections: no dynamic info
	}
	if shentsize != shentSize64 {
		return id, badImage("unexpected section header size %d", shentsize)
	}
	end := shoff + uint64(shnum)*shentSize64
	if shoff > uint64(len(data)) || end < shoff || end > uint64(len(data)) {
		return id, badImage("section headers out of bounds")
	}

	section := func(i uint16) []byte {
		return data[shoff+uint64(i)*shentSize64:]
	}
	for i := uint16(0); i < shnum; i++ {
		sh := section(i)
		if binary.LittleEndian.Uint32(sh[4:]) != shtDynamic {
			continue
		}
		dynOff := binary.LittleEndian.Uint64(sh[24:])
		dynSize := binary.LittleEndian.Uint64(sh[32:])
		link := binary.LittleEndian.Uint32(sh[40:])
		if dynOff+dynSize < dynOff || dynOff+dynSize > uint64(len(data)) {
			return id, badImage("dynamic section out of bounds")
		}
		if link >= uint32(shnum) {
			return id, badImage("dynamic strtab link out of range")
		}
		str := section(uint16(link))
		strOff := binary.LittleEndian.Uint64(str[24:])
		strSize := binary.LittleEndian.Uint64(str[32:])
		if strOff+strSize < strOff || strOff+strSize > uint64(len(data)) {
			return id, badImage("dynamic strtab out of bounds")
		}
		strtab := data[strOff : strOff+strSize]

		dyn := data[dynOff : dynOff+dynSize]
		for off := 0; off+16 <= len(dyn); off += 16 {
			tag := binary.LittleEndian.Uint64(dyn[off:])
			if tag == dtNull {
				break
			}
			if tag != dtNeeded {
				continue
			}
			val := binary.LittleEndian.Uint64(dyn[off+8:])
			if val >= uint64(len(strtab)) {
				return id, badImage("DT_NEEDED name out of strtab range")
			}
			name := strtab[val:]
			n := 0
			for n < len(name) && name[n] != 0 {
				n++
			}
			if n == len(name) {
				return id, badImage("unterminated DT_NEEDED name")
			}
			id.Needed = append(id.Needed, string(name[:n]))
		}
		return id, nil
	}
	return id, nil
}
