package elff

import (
	"reflect"
	"testing"
)

// TestReadIdentityAgreesWithRead pins the contract the warm-cache fast
// path rides on: for any image Write produces, ReadIdentity and the
// full Read agree on the content hash and the DT_NEEDED list.
func TestReadIdentityAgreesWithRead(t *testing.T) {
	specs := map[string]Spec{
		"static": {
			Kind: KindStatic, Base: 0x400000, Entry: 0x400000,
			Blob: make([]byte, 128), CodeSize: 64,
		},
		"dynamic": {
			Kind: KindDynamic, Base: 0x400000, Entry: 0x400000,
			Blob: make([]byte, 128), CodeSize: 64,
			Needed:  []string{"libc.so.6", "libg0.so", "libextra.so"},
			Imports: []Import{{Name: "write", SlotAddr: 0x400080}},
		},
		"shared": {
			Kind: KindShared, Base: 0x400000,
			Blob: make([]byte, 128), CodeSize: 64,
			Needed:  []string{"libc.so.6"},
			Exports: []Export{{Name: "fn", Addr: 0x400010}},
		},
	}
	for name, spec := range specs {
		data, err := Write(spec)
		if err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		bin, err := Read(data)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		id, err := ReadIdentity(data)
		if err != nil {
			t.Fatalf("%s: identity: %v", name, err)
		}
		if id.Hash != bin.Hash {
			t.Errorf("%s: hash drift: %s vs %s", name, id.Hash, bin.Hash)
		}
		if !reflect.DeepEqual(id.Needed, bin.Needed) {
			t.Errorf("%s: needed drift: %v vs %v", name, id.Needed, bin.Needed)
		}
	}
}

func TestReadIdentityRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     []byte("\x7fELF"),
		"not-elf":   make([]byte, 128),
		"truncated": append([]byte{0x7F, 'E', 'L', 'F', 2, 1}, make([]byte, 20)...),
	}
	for name, data := range cases {
		if _, err := ReadIdentity(data); err == nil {
			t.Errorf("%s: garbage accepted", name)
		}
	}
}
