package elff

import (
	"fmt"
	"os"
)

// Image is an opened ELF file's raw bytes plus how they were obtained.
// On platforms with mmap support the data is a read-only, privately
// mapped view of the file — the analyzer's decode arena and hasher
// consume it without the kernel ever copying the image into the Go
// heap. Close releases the mapping; after Close the Data slice (and
// anything aliasing it, see ReadPrehashedAlias) must not be touched.
type Image struct {
	Path   string
	Data   []byte
	mapped bool
}

// Mapped reports whether Data is a memory-mapped view (true) or an
// in-heap copy (false). Heap copies need no cleanup beyond GC; mapped
// views must be Closed and never outlive their Image.
func (im *Image) Mapped() bool { return im != nil && im.mapped }

// Close releases the image's backing. For mapped images this unmaps
// the view — any retained alias into Data becomes invalid. For in-heap
// images it only drops the reference. Close is idempotent.
func (im *Image) Close() error {
	if im == nil || im.Data == nil {
		return nil
	}
	data, mapped := im.Data, im.mapped
	im.Data, im.mapped = nil, false
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// OpenMapped opens the file at path for read-only analysis, preferring
// a zero-copy mmap view and falling back to an in-heap read wherever
// mapping is unavailable (non-Linux builds, empty files, irregular
// files). Callers own the returned image and must Close it.
func OpenMapped(path string) (*Image, error) { return openImage(path, false) }

// OpenCopied reads the file into the heap unconditionally — the
// portable fallback path, also used to benchmark the mapped frontend
// against the copying one and by tooling that must outlive the file.
func OpenCopied(path string) (*Image, error) { return openImage(path, true) }

func openImage(path string, noMmap bool) (*Image, error) {
	if !noMmap {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("elff: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("elff: %w", err)
		}
		if st.Mode().IsRegular() && st.Size() > 0 {
			data, mapped, err := mmapFile(f, st.Size())
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("elff: mmap %s: %w", path, err)
			}
			if mapped {
				// SIGBUS containment: touching mapped pages past the
				// file's current EOF is a process-killing fault, not an
				// error we can recover. Re-stat through the same
				// descriptor after mapping — if the file shrank between
				// the first stat and the mmap, drop the view and fall
				// back to the copying path, which reads whatever bytes
				// actually exist. A file truncated *after* this check is
				// outside the frontier static analysis can defend
				// (callers sweeping live trees own file stability, per
				// OpenMapped's contract).
				st2, err := f.Stat()
				f.Close()
				if err != nil || st2.Size() < st.Size() {
					_ = munmapFile(data)
				} else {
					return &Image{Path: path, Data: data, mapped: true}, nil
				}
			} else {
				// The mapping survives the descriptor; close it either way.
				f.Close()
			}
		} else {
			f.Close()
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("elff: %w", err)
	}
	return &Image{Path: path, Data: data}, nil
}

// OpenBinary opens, hashes and parses the ELF at path through the
// image layer: one open, one hash, and — when the platform maps and
// the layout allows (single PT_LOAD with Filesz == Memsz) — a Blob
// that aliases the mapping instead of copying it. The returned Binary
// owns its image; call ReleaseImage once the segment bytes are no
// longer needed. noMmap forces the in-heap fallback (identical
// results, one extra copy).
func OpenBinary(path string, noMmap bool) (*Binary, error) {
	im, err := openImage(path, noMmap)
	if err != nil {
		return nil, err
	}
	b, err := readHashed(im.Data, "", true)
	if err != nil {
		_ = im.Close()
		return nil, fmt.Errorf("elff: %s: %w", path, err)
	}
	b.Path = path
	b.img = im
	return b, nil
}

// Image returns the backing image opened by OpenBinary, nil for
// binaries parsed from caller-provided memory.
func (b *Binary) Image() *Image { return b.img }

// ReleaseImage detaches the binary from its backing image. A mapped
// image is unmapped, and because Blob may alias the mapping, Blob is
// cleared first — after ReleaseImage only the binary's metadata
// (Hash, Kind, Entry, Needed, symbol tables) remains usable. For
// in-heap images and in-memory binaries this is a cheap no-op beyond
// dropping references. Idempotent.
func (b *Binary) ReleaseImage() error {
	im := b.img
	if im == nil {
		return nil
	}
	b.img = nil
	if im.mapped {
		b.Blob = nil
	}
	return im.Close()
}
