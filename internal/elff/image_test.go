package elff

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// imageSpec builds a tiny valid image on disk and returns its path and
// serialized bytes.
func imageSpec(t *testing.T) (string, []byte) {
	t.Helper()
	data, err := Write(Spec{
		Kind:     KindStatic,
		Base:     0x400000,
		Entry:    0x400000,
		Blob:     []byte{0x0f, 0x05, 0xc3, 0x90, 0x90, 0x90, 0x90, 0x90},
		CodeSize: 8,
	})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	path := filepath.Join(t.TempDir(), "img.elf")
	if err := os.WriteFile(path, data, 0o755); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, data
}

func TestOpenMappedMatchesCopied(t *testing.T) {
	path, data := imageSpec(t)

	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mapped.Close()
	copied, err := OpenCopied(path)
	if err != nil {
		t.Fatalf("OpenCopied: %v", err)
	}
	defer copied.Close()

	if !bytes.Equal(mapped.Data, data) {
		t.Fatalf("mapped data differs from file bytes")
	}
	if !bytes.Equal(mapped.Data, copied.Data) {
		t.Fatalf("mapped and copied data differ")
	}
	if copied.Mapped() {
		t.Fatalf("OpenCopied produced a mapped image")
	}
	if runtime.GOOS == "linux" && !mapped.Mapped() {
		t.Fatalf("OpenMapped fell back to a copy on linux")
	}
}

func TestOpenBinaryZeroCopyAndRelease(t *testing.T) {
	path, data := imageSpec(t)

	// Both frontends must parse to identical binaries.
	viaRead, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for _, noMmap := range []bool{false, true} {
		bin, err := OpenBinary(path, noMmap)
		if err != nil {
			t.Fatalf("OpenBinary(noMmap=%v): %v", noMmap, err)
		}
		if bin.Hash != viaRead.Hash || !bytes.Equal(bin.Blob, viaRead.Blob) {
			t.Fatalf("OpenBinary(noMmap=%v) disagrees with ReadFile", noMmap)
		}
		im := bin.Image()
		if im == nil {
			t.Fatalf("OpenBinary(noMmap=%v): no backing image", noMmap)
		}
		wasMapped := im.Mapped()
		// The zero-copy contract: when mapped, Blob must be a view into
		// the image (no heap copy of the segment).
		if wasMapped {
			blobP := uintptr(reflect.ValueOf(bin.Blob).Pointer())
			dataP := uintptr(reflect.ValueOf(im.Data).Pointer())
			if blobP < dataP || blobP >= dataP+uintptr(len(im.Data)) {
				t.Fatalf("mapped Blob does not alias the image")
			}
		}
		if err := bin.ReleaseImage(); err != nil {
			t.Fatalf("ReleaseImage: %v", err)
		}
		if wasMapped && bin.Blob != nil {
			t.Fatalf("ReleaseImage left Blob aliasing an unmapped view")
		}
		if bin.Hash != viaRead.Hash || bin.Entry != viaRead.Entry {
			t.Fatalf("ReleaseImage clobbered metadata")
		}
		// Idempotent.
		if err := bin.ReleaseImage(); err != nil {
			t.Fatalf("second ReleaseImage: %v", err)
		}
	}
	_ = data
}

func TestReadPrehashedAliasFidelity(t *testing.T) {
	_, data := imageSpec(t)
	plain, err := Read(data)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	aliased, err := ReadPrehashedAlias(data, plain.Hash)
	if err != nil {
		t.Fatalf("ReadPrehashedAlias: %v", err)
	}
	if !bytes.Equal(plain.Blob, aliased.Blob) ||
		plain.Base != aliased.Base || plain.CodeSize != aliased.CodeSize ||
		plain.Entry != aliased.Entry || plain.Kind != aliased.Kind {
		t.Fatalf("aliased parse disagrees with copying parse")
	}
	// Single PT_LOAD with Filesz == Memsz (what Write emits) must alias.
	blobP := uintptr(reflect.ValueOf(aliased.Blob).Pointer())
	dataP := uintptr(reflect.ValueOf(data).Pointer())
	if blobP < dataP || blobP >= dataP+uintptr(len(data)) {
		t.Fatalf("ReadPrehashedAlias copied a blob it should have aliased")
	}
	// The copying parse must never alias.
	plainP := uintptr(reflect.ValueOf(plain.Blob).Pointer())
	if plainP >= dataP && plainP < dataP+uintptr(len(data)) {
		t.Fatalf("Read aliased the caller's buffer")
	}
}

func TestImageCloseIdempotent(t *testing.T) {
	path, _ := imageSpec(t)
	im, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	if err := im.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := im.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if im.Data != nil || im.Mapped() {
		t.Fatalf("Close left state behind")
	}
}
