package elff

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// corpusPaths returns every checked-in malformed image. Failing when
// the corpus is empty guards against the directory silently going
// missing (which would turn the whole suite into a vacuous pass).
func corpusPaths(t testing.TB) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.elf"))
	if err != nil {
		t.Fatalf("glob corpus: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("malformed corpus is empty — regenerate with go run testdata/malformed/gen.go")
	}
	return paths
}

// TestMalformedCorpus replays every corpus entry through both parse
// frontends (in-memory Read and the mmap-backed OpenBinary) and the
// identity probe: each must return a structured error — classified
// ErrMalformed for the full parsers — without panicking.
func TestMalformedCorpus(t *testing.T) {
	for _, path := range corpusPaths(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			if b, err := Read(data); err == nil {
				t.Fatalf("Read accepted malformed image (kind=%v blob=%d)", b.Kind, len(b.Blob))
			} else if !errors.Is(err, ErrMalformed) {
				t.Errorf("Read error not classified ErrMalformed: %v", err)
			}

			for _, noMmap := range []bool{false, true} {
				b, err := OpenBinary(path, noMmap)
				if err == nil {
					b.ReleaseImage()
					t.Fatalf("OpenBinary(noMmap=%v) accepted malformed image", noMmap)
				}
				if !errors.Is(err, ErrMalformed) {
					t.Errorf("OpenBinary(noMmap=%v) error not classified ErrMalformed: %v", noMmap, err)
				}
			}

			// The identity fast path may accept (it is only a hash
			// probe and never touches program headers) — what matters
			// is it neither panics nor hands back a result the full
			// parser would then contradict on the hash.
			if id, err := ReadIdentity(data); err == nil && id.Hash == "" {
				t.Errorf("ReadIdentity returned empty hash without error")
			}
		})
	}
}

// TestAllocationBomb pins the satellite fix: a ~128-byte file whose
// PT_LOAD header demands 8 GiB of zero-fill must be rejected without
// the parser allocating anything like that much. Before the clamp,
// blob := make([]byte, p.Memsz) allocated attacker-controlled sizes
// straight from the header.
func TestAllocationBomb(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "malformed", "memsz-bomb.elf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 256 {
		t.Fatalf("bomb file unexpectedly large: %d bytes", len(data))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, rerr := Read(data)
	runtime.ReadMemStats(&after)

	if rerr == nil {
		t.Fatal("Read accepted the allocation bomb")
	}
	if !errors.Is(rerr, ErrMalformed) {
		t.Fatalf("bomb rejection not classified ErrMalformed: %v", rerr)
	}
	// The 8 GiB the header asks for must never hit the allocator; allow
	// generous slack for parser bookkeeping.
	const allocBudget = 16 << 20
	if grew := after.TotalAlloc - before.TotalAlloc; grew > allocBudget {
		t.Fatalf("rejecting a %d-byte file allocated %d bytes (budget %d)", len(data), grew, allocBudget)
	}
}

// TestBSSWithinBoundsStillParses guards against the clamp
// over-rejecting: a legitimate layout with modest trailing BSS
// (Filesz < Memsz within maxBSSBytes) must still parse via the
// copying path.
func TestBSSWithinBoundsStillParses(t *testing.T) {
	spec := Spec{
		Kind:  KindStatic,
		Base:  0x400000,
		Entry: 0x400000,
		Blob:  []byte{0x0F, 0x05, 0xC3, 0x90, 0x90, 0x90, 0x90, 0x90},
	}
	data, err := Write(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(data)
	if err != nil {
		t.Fatalf("well-formed image rejected: %v", err)
	}
	if len(b.Blob) == 0 {
		t.Fatal("parsed binary has empty blob")
	}
}
