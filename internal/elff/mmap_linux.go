//go:build linux

package elff

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and privately. A mapping
// failure (an exotic filesystem, a size the kernel rejects) is not an
// error — the caller falls back to reading the file into the heap —
// so the error return is reserved for cases where neither path can
// work. mapped=false means "fall back".
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, false, nil
	}
	data, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if merr != nil {
		return nil, false, nil
	}
	return data, true, nil
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
