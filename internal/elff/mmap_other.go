//go:build !linux

package elff

import "os"

// mmapFile on platforms without a wired-up mmap path always reports
// "fall back": OpenMapped degrades to an in-heap read with identical
// results (the fuzzer's nommap invariance leg pins that equivalence).
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	return nil, false, nil
}

func munmapFile(data []byte) error { return nil }
