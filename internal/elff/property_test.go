package elff

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyWriteReadRoundTrip fuzzes image specs: arbitrary blob
// contents, export/import/needed combinations must survive the ELF
// round trip bit-exactly.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64, blobLen uint16, nExports, nImports, nNeeded uint8, unwind bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(blobLen%4096) + 16
		blob := make([]byte, n)
		rng.Read(blob)

		const base = 0x400000
		spec := Spec{
			Kind:      KindDynamic,
			Base:      base,
			Entry:     base + uint64(rng.Intn(n)),
			Blob:      blob,
			CodeSize:  uint64(rng.Intn(n) + 1),
			HasUnwind: unwind,
		}
		for i := 0; i < int(nExports%6); i++ {
			spec.Exports = append(spec.Exports, Export{
				Name: fmt.Sprintf("exp%d", i),
				Addr: base + uint64(rng.Intn(n)),
			})
		}
		for i := 0; i < int(nImports%6); i++ {
			spec.Imports = append(spec.Imports, Import{
				Name:     fmt.Sprintf("imp%d", i),
				SlotAddr: base + uint64(rng.Intn(n)),
			})
		}
		for i := 0; i < int(nNeeded%4); i++ {
			spec.Needed = append(spec.Needed, fmt.Sprintf("lib%d.so", i))
		}

		data, err := Write(spec)
		if err != nil {
			t.Logf("write: %v", err)
			return false
		}
		bin, err := Read(data)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if bin.Base != spec.Base || bin.Entry != spec.Entry ||
			bin.CodeSize != spec.CodeSize || bin.HasUnwind != spec.HasUnwind {
			return false
		}
		if len(bin.Blob) != len(blob) {
			return false
		}
		for i := range blob {
			if bin.Blob[i] != blob[i] {
				return false
			}
		}
		if len(bin.Exports) != len(spec.Exports) || len(bin.Imports) != len(spec.Imports) {
			return false
		}
		for i, e := range spec.Exports {
			if bin.Exports[i] != e {
				return false
			}
		}
		for i, im := range spec.Imports {
			if bin.Imports[i] != im {
				return false
			}
		}
		if len(bin.Needed) != len(spec.Needed) {
			return false
		}
		for i, nd := range spec.Needed {
			if bin.Needed[i] != nd {
				return false
			}
		}
		return true
	}
	conf := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, conf); err != nil {
		t.Fatal(err)
	}
}
