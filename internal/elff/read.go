package elff

import (
	"bytes"
	"crypto/sha256"
	"debug/elf"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
)

// ErrMalformed marks every parse failure caused by the image itself —
// truncated headers, out-of-range offsets, header-driven size fields
// that exceed the file, unsupported machine/type values. Callers
// classify with errors.Is(err, ErrMalformed): the serve tier maps it
// to HTTP 400 (client sent garbage) instead of 500 (we broke), and
// the sweep tier counts it as an input failure rather than an
// analyzer fault.
var ErrMalformed = errors.New("malformed ELF image")

// badImage wraps a structural parse failure so it is both ErrMalformed
// (classification) and the specific cause (diagnosis).
func badImage(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// maxBSSBytes bounds how much zero-filled memory a PT_LOAD header can
// demand beyond its file-backed bytes (Memsz - Filesz). Real BSS in
// the binaries this analyzer targets is megabytes at most; a header
// asking for more is an allocation bomb, not a program.
const maxBSSBytes = 64 << 20

// Binary is a parsed ELF image ready for analysis or emulation.
type Binary struct {
	Path string
	// Hash is the lowercase hex SHA-256 of the serialized image the
	// binary was parsed from — the content address used by the on-disk
	// analysis caches. Empty for binaries assembled in memory without a
	// serialization round trip.
	Hash      string
	Kind      Kind
	Entry     uint64
	Base      uint64 // virtual address of Blob[0]
	Blob      []byte // the single loadable region
	CodeSize  uint64 // leading bytes of Blob that are code (.text)
	Exports   []Export
	Imports   []Import
	Needed    []string
	Symbols   map[string]uint64
	HasUnwind bool

	// DataSections are the non-executable ALLOC PROGBITS views into
	// Blob; Relocs are the R_X86_64_RELATIVE entries from .rela.dyn.
	// Both feed the indirect-call resolver's provenance layer.
	DataSections []DataSection
	Relocs       []Reloc

	// img is the backing image when the binary was parsed through
	// OpenBinary; Blob may alias it. Released by ReleaseImage.
	img *Image
}

// CodeContains reports whether addr is inside the code (.text) part of
// the loadable region — the part a disassembler should treat as
// instructions.
func (b *Binary) CodeContains(addr uint64) bool {
	return addr >= b.Base && addr < b.Base+b.CodeSize
}

// CodeEnd returns the first virtual address past the loadable region.
func (b *Binary) CodeEnd() uint64 { return b.Base + uint64(len(b.Blob)) }

// Contains reports whether addr falls inside the loadable region.
func (b *Binary) Contains(addr uint64) bool {
	return addr >= b.Base && addr < b.CodeEnd()
}

// BytesAt returns the blob starting at virtual address addr.
func (b *Binary) BytesAt(addr uint64) ([]byte, bool) {
	if !b.Contains(addr) {
		return nil, false
	}
	return b.Blob[addr-b.Base:], true
}

// U64At reads a little-endian uint64 at virtual address addr.
func (b *Binary) U64At(addr uint64) (uint64, bool) {
	s, ok := b.BytesAt(addr)
	if !ok || len(s) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(s), true
}

// ROU64At reads a little-endian quad at addr when the whole 8-byte
// window lies inside a read-only data section. A load satisfied here is
// immutable at runtime (modulo rebasing, which our fixed-base images do
// not do), so the static value equals the runtime value — the contract
// the resolver's provenance layer depends on. Returns false for
// writable sections, unmapped addresses, and ranges the section
// metadata does not cover.
func (b *Binary) ROU64At(addr uint64) (uint64, bool) {
	for _, ds := range b.DataSections {
		if ds.Writable {
			continue
		}
		if addr >= ds.Addr && addr-ds.Addr+8 <= ds.Size {
			return b.U64At(addr)
		}
	}
	return 0, false
}

// ExportAddr looks up an exported symbol.
func (b *Binary) ExportAddr(name string) (uint64, bool) {
	for _, e := range b.Exports {
		if e.Name == name {
			return e.Addr, true
		}
	}
	return 0, false
}

// ImportAtSlot maps a GOT slot virtual address back to the imported
// symbol name, mirroring how PLT-stub resolution works on real binaries.
func (b *Binary) ImportAtSlot(slot uint64) (string, bool) {
	for _, im := range b.Imports {
		if im.SlotAddr == slot {
			return im.Name, true
		}
	}
	return "", false
}

// Spec reconstructs a writable Spec from the parsed binary, so images
// can be re-serialized (corpus generation writes binaries to disk this
// way).
func (b *Binary) Spec() Spec {
	return Spec{
		Kind:      b.Kind,
		Base:      b.Base,
		Entry:     b.Entry,
		Blob:      b.Blob,
		CodeSize:  b.CodeSize,
		Exports:   b.Exports,
		Imports:   b.Imports,
		Needed:    b.Needed,
		Symbols:   b.Symbols,
		HasUnwind: b.HasUnwind,

		DataSections: b.DataSections,
		Relocs:       b.Relocs,
	}
}

// WriteFile serializes the binary to an ELF file at path.
func (b *Binary) WriteFile(path string) error {
	data, err := Write(b.Spec())
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o755)
}

// ReadFile parses the ELF image at path.
func ReadFile(path string) (*Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("elff: %w", err)
	}
	b, err := Read(data)
	if err != nil {
		return nil, fmt.Errorf("elff: %s: %w", path, err)
	}
	b.Path = path
	return b, nil
}

// Read parses an ELF image from memory. The returned Binary's Blob is
// a private copy — callers may reuse or mutate data afterwards.
func Read(data []byte) (*Binary, error) {
	return readHashed(data, "", false)
}

// ReadPrehashed parses like Read but reuses a content hash already
// computed over exactly these bytes (typically by ReadIdentity on the
// cache-probe path), skipping a second SHA-256 over the image. hash
// must be what Read would compute for data — anything else poisons
// every content-addressed cache entry keyed by it.
func ReadPrehashed(data []byte, hash string) (*Binary, error) {
	return readHashed(data, hash, false)
}

// ReadPrehashedAlias parses like ReadPrehashed but lets the Binary's
// Blob alias data directly — zero-copy — whenever the image layout
// allows it (a PT_LOAD with Filesz == Memsz, which every image this
// package writes has). The caller must keep data immutable and alive
// for as long as the Binary's Blob is in use; the mmap frontend
// (OpenBinary / bside's file path) owns that contract. Layouts with
// trailing BSS (Filesz < Memsz) silently fall back to the copying
// path.
func ReadPrehashedAlias(data []byte, hash string) (*Binary, error) {
	return readHashed(data, hash, true)
}

func readHashed(data []byte, hash string, alias bool) (*Binary, error) {
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: parse: %w", ErrMalformed, err)
	}
	defer f.Close()

	if f.Machine != elf.EM_X86_64 {
		return nil, badImage("unsupported machine %v", f.Machine)
	}

	if hash == "" {
		sum := sha256.Sum256(data)
		hash = hex.EncodeToString(sum[:])
	}
	out := &Binary{Entry: f.Entry, Hash: hash, Symbols: make(map[string]uint64)}
	switch {
	case f.Type == elf.ET_EXEC:
		out.Kind = KindStatic
	case f.Type == elf.ET_DYN && f.Entry != 0:
		out.Kind = KindDynamic
	case f.Type == elf.ET_DYN:
		out.Kind = KindShared
	default:
		return nil, badImage("unsupported ELF type %v", f.Type)
	}

	for _, p := range f.Progs {
		if p.Type != elf.PT_LOAD {
			continue
		}
		// Every size and offset below comes straight from an untrusted
		// header; clamp against the actual file before believing any of
		// it. A 100-byte file must not be able to request gigabytes.
		if p.Off > uint64(len(data)) || p.Filesz > uint64(len(data))-p.Off {
			return nil, badImage("PT_LOAD file range [%#x,+%#x) exceeds image size %d", p.Off, p.Filesz, len(data))
		}
		if p.Memsz < p.Filesz {
			return nil, badImage("PT_LOAD memsz %#x smaller than filesz %#x", p.Memsz, p.Filesz)
		}
		if p.Memsz-p.Filesz > maxBSSBytes {
			return nil, badImage("PT_LOAD demands %#x zero-fill bytes (limit %#x)", p.Memsz-p.Filesz, uint64(maxBSSBytes))
		}
		if alias && p.Filesz == p.Memsz {
			// Zero-copy: the loadable region is fully materialized in
			// the file, so the blob can be a view into the source bytes
			// (typically an mmap'd image) instead of a heap copy.
			out.Blob = data[p.Off : p.Off+p.Filesz : p.Off+p.Filesz]
		} else {
			blob := make([]byte, p.Memsz)
			copy(blob, data[p.Off:p.Off+p.Filesz])
			out.Blob = blob
		}
		out.Base = p.Vaddr
		break // single-PT_LOAD images by construction
	}
	if out.Blob == nil {
		return nil, badImage("no PT_LOAD segment")
	}
	out.CodeSize = uint64(len(out.Blob))
	if ts := f.Section(".text"); ts != nil && ts.Size > 0 && ts.Size <= out.CodeSize {
		out.CodeSize = ts.Size
	}

	dynsyms, err := f.DynamicSymbols()
	if err == nil {
		for _, s := range dynsyms {
			if s.Section == elf.SHN_UNDEF {
				continue
			}
			out.Exports = append(out.Exports, Export{Name: s.Name, Addr: s.Value})
		}
	}

	// JUMP_SLOT relocations pair import names with GOT slots.
	if rp := f.Section(".rela.plt"); rp != nil && len(dynsyms) > 0 {
		data, err := rp.Data()
		if err != nil {
			return nil, fmt.Errorf("%w: .rela.plt: %w", ErrMalformed, err)
		}
		for off := 0; off+24 <= len(data); off += 24 {
			slot := binary.LittleEndian.Uint64(data[off:])
			info := binary.LittleEndian.Uint64(data[off+8:])
			if info&0xFFFFFFFF != rX8664JumpSlot {
				continue
			}
			symIdx := info >> 32
			if symIdx == 0 || symIdx > uint64(len(dynsyms)) {
				return nil, badImage(".rela.plt: bad symbol index %d", symIdx)
			}
			out.Imports = append(out.Imports, Import{
				Name:     dynsyms[symIdx-1].Name,
				SlotAddr: slot,
			})
		}
	}

	if libs, err := f.ImportedLibraries(); err == nil {
		out.Needed = libs
	}

	// Data-section views over the blob. Sections outside the single
	// PT_LOAD region (real multi-segment binaries) are skipped: the
	// resolver can only vouch for bytes it can actually read.
	for _, s := range f.Sections {
		if s.Type != elf.SHT_PROGBITS || s.Flags&elf.SHF_ALLOC == 0 ||
			s.Flags&elf.SHF_EXECINSTR != 0 {
			continue
		}
		if s.Addr < out.Base || s.Size > uint64(len(out.Blob)) ||
			s.Addr-out.Base > uint64(len(out.Blob))-s.Size {
			continue
		}
		out.DataSections = append(out.DataSections, DataSection{
			Name:     s.Name,
			Addr:     s.Addr,
			Size:     s.Size,
			Writable: s.Flags&elf.SHF_WRITE != 0,
		})
	}

	// RELATIVE relocations record where the linker planted code/data
	// pointers in data memory — provenance the CFG's table scan and the
	// resolver both consume.
	if rd := f.Section(".rela.dyn"); rd != nil {
		data, err := rd.Data()
		if err != nil {
			return nil, fmt.Errorf("%w: .rela.dyn: %w", ErrMalformed, err)
		}
		for off := 0; off+24 <= len(data); off += 24 {
			info := binary.LittleEndian.Uint64(data[off+8:])
			if info&0xFFFFFFFF != rX8664Relative {
				continue
			}
			out.Relocs = append(out.Relocs, Reloc{
				Slot:   binary.LittleEndian.Uint64(data[off:]),
				Target: binary.LittleEndian.Uint64(data[off+16:]),
			})
		}
	}

	if syms, err := f.Symbols(); err == nil {
		for _, s := range syms {
			if s.Name != "" {
				out.Symbols[s.Name] = s.Value
			}
		}
	}

	out.HasUnwind = f.Section(".bside.unwind") != nil
	return out, nil
}
