//go:build ignore

// gen regenerates the checked-in malformed-ELF corpus. Each case is a
// hand-crafted ELF64 image exercising one hostile-header shape the
// parser must reject with a structured error — never a panic, never an
// attacker-sized allocation. Run from this directory:
//
//	go run gen.go
//
// The .elf outputs are committed; tests and the fuzz seeds replay them
// without running this file (the ignore build tag keeps it out of the
// package).
package main

import (
	"encoding/binary"
	"fmt"
	"os"
)

var le = binary.LittleEndian

// header assembles an ELF64 header with the given type/machine and
// program/section header table geometry. Defaults describe a plausible
// little-endian x86-64 executable; cases mutate from there.
func header(etype, machine uint16, phoff uint64, phnum uint16, shoff uint64, shnum, shstrndx uint16) []byte {
	h := make([]byte, 64)
	copy(h, []byte{0x7F, 'E', 'L', 'F', 2, 1, 1})
	le.PutUint16(h[16:], etype)
	le.PutUint16(h[18:], machine)
	le.PutUint32(h[20:], 1)        // e_version
	le.PutUint64(h[24:], 0x400000) // e_entry
	le.PutUint64(h[32:], phoff)    // e_phoff
	le.PutUint64(h[40:], shoff)    // e_shoff
	le.PutUint16(h[52:], 64)       // e_ehsize
	le.PutUint16(h[54:], 56)       // e_phentsize
	le.PutUint16(h[56:], phnum)    // e_phnum
	le.PutUint16(h[58:], 64)       // e_shentsize
	le.PutUint16(h[60:], shnum)    // e_shnum
	le.PutUint16(h[62:], shstrndx) // e_shstrndx
	return h
}

// load assembles one PT_LOAD program header.
func load(off, filesz, memsz uint64) []byte {
	p := make([]byte, 56)
	le.PutUint32(p[0:], 1) // PT_LOAD
	le.PutUint32(p[4:], 5) // R+X
	le.PutUint64(p[8:], off)
	le.PutUint64(p[16:], 0x400000) // p_vaddr
	le.PutUint64(p[24:], 0x400000) // p_paddr
	le.PutUint64(p[32:], filesz)
	le.PutUint64(p[40:], memsz)
	le.PutUint64(p[48:], 0x1000) // p_align
	return p
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func main() {
	payload := []byte{0x0F, 0x05, 0xC3, 0, 0, 0, 0, 0} // syscall; ret; pad

	cases := map[string][]byte{
		// The original allocation bomb: 128 bytes on disk, 8 GiB of
		// zero-fill demanded by p_memsz.
		"memsz-bomb.elf": concat(
			header(2, 62, 64, 1, 0, 0, 0),
			load(120, 8, 8<<30),
			payload,
		),
		// File-backed range extends far past EOF.
		"filesz-oob.elf": concat(
			header(2, 62, 64, 1, 0, 0, 0),
			load(120, 1<<20, 1<<20),
			payload,
		),
		// p_offset itself is past EOF.
		"off-oob.elf": concat(
			header(2, 62, 64, 1, 0, 0, 0),
			load(1<<32, 8, 8),
			payload,
		),
		// memsz < filesz: a contradiction no loader accepts.
		"memsz-lt-filesz.elf": concat(
			header(2, 62, 64, 1, 0, 0, 0),
			load(120, 8, 4),
			payload,
		),
		// Valid header, zero program headers: nothing to load.
		"no-ptload.elf": header(2, 62, 0, 0, 0, 0, 0),
		// Magic plus half a header.
		"truncated-header.elf": header(2, 62, 64, 1, 0, 0, 0)[:40],
		// Section header table pointing into the void.
		"shoff-oob.elf": concat(
			header(2, 62, 64, 1, 1<<40, 64, 0),
			load(120, 8, 8),
			payload,
		),
		// Wrong architecture (EM_MIPS).
		"machine-mips.elf": concat(
			header(2, 8, 64, 1, 0, 0, 0),
			load(120, 8, 8),
			payload,
		),
		// Relocatable object, not an executable image.
		"type-rel.elf": concat(
			header(1, 62, 64, 1, 0, 0, 0),
			load(120, 8, 8),
			payload,
		),
		// Program header count far beyond what the file holds.
		"phnum-huge.elf": concat(
			header(2, 62, 64, 0xFFFF, 0, 0, 0),
			load(120, 8, 8),
			payload,
		),
		// Section name string table index outside the section table.
		"shstrndx-oob.elf": concat(
			header(2, 62, 64, 1, 128, 1, 500),
			load(120, 8, 8),
			payload,
		),
	}

	for name, data := range cases {
		if err := os.WriteFile(name, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", name, len(data))
	}
}
