// Package elff reads and writes the ELF64 x86-64 images used throughout
// this repository. The writer produces real ELF files — parsable by
// debug/elf and by external tools — carrying a single loadable blob of
// code+data, a dynamic symbol table with exports and imports, JUMP_SLOT
// relocations for import GOT slots, DT_NEEDED entries, a full symbol
// table, and an optional unwind-info marker section.
package elff

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Kind classifies an image.
type Kind uint8

// Image kinds.
const (
	// KindStatic is a non-PIC statically linked executable (ET_EXEC).
	KindStatic Kind = iota + 1
	// KindDynamic is a dynamically linked executable (ET_DYN with an
	// entry point and DT_NEEDED dependencies).
	KindDynamic
	// KindShared is a shared library (ET_DYN, no entry point).
	KindShared
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindDynamic:
		return "dynamic"
	case KindShared:
		return "shared"
	}
	return "unknown"
}

// Export is a function exposed through the dynamic symbol table.
type Export struct {
	Name string
	Addr uint64
}

// Import is an external function reference. SlotAddr is the virtual
// address of the GOT slot the import stub jumps through; the loader
// fills it with the provider's export address.
type Import struct {
	Name     string
	SlotAddr uint64
}

// DataSection names a sub-range of the loadable blob that holds data
// rather than code (a pointer table in .rodata, a RELRO segment, a
// writable .data region). The writer emits these as alias section
// headers over the single PT_LOAD blob — they carry no bytes of their
// own, only a typed view. Non-writable sections are immutable at
// runtime, which is what lets the indirect-call resolver treat loads
// from them as link-time constants.
type DataSection struct {
	Name     string
	Addr     uint64
	Size     uint64
	Writable bool
}

// Reloc is one R_X86_64_RELATIVE dynamic relocation: at load time the
// dynamic linker writes base+Target into the 8-byte slot at Slot. Our
// images are linked at their load address, so the slot already holds
// Target — the relocation records code-pointer provenance rather than
// patching anything.
type Reloc struct {
	Slot   uint64
	Target uint64
}

// Spec describes an image to write.
type Spec struct {
	Kind      Kind
	Base      uint64 // virtual address of Blob[0]
	Entry     uint64 // 0 for libraries
	Blob      []byte // code + data + GOT slots, one contiguous region
	CodeSize  uint64 // bytes of Blob that are code (.text); 0 means all
	Exports   []Export
	Imports   []Import
	Needed    []string          // DT_NEEDED library names
	Symbols   map[string]uint64 // local symbols for .symtab (may be nil)
	HasUnwind bool              // emit the .bside.unwind marker section
	Soname    string            // informational, stored in .symtab comment

	// DataSections are alias views over sub-ranges of Blob; see the
	// DataSection doc. Relocs become .rela.dyn RELATIVE entries.
	DataSections []DataSection
	Relocs       []Reloc
}

// ELF constants not worth importing debug/elf for on the write side.
const (
	etExec = 2
	etDyn  = 3

	shtProgbits = 1
	shtSymtab   = 2
	shtStrtab   = 3
	shtRela     = 4
	shtDynamic  = 6
	shtNobits   = 8
	shtDynsym   = 11

	shfWrite = 1
	shfAlloc = 2
	shfExec  = 4

	ptLoad = 1

	dtNull     = 0
	dtNeeded   = 1
	dtPltRelSz = 2
	dtStrtab   = 5
	dtSymtab   = 6
	dtJmpRel   = 23

	rX8664JumpSlot = 7
	rX8664Relative = 8

	stbGlobal = 1
	sttFunc   = 2
)

type strtab struct {
	buf []byte
	idx map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{buf: []byte{0}, idx: map[string]uint32{"": 0}}
}

func (s *strtab) add(str string) uint32 {
	if off, ok := s.idx[str]; ok {
		return off
	}
	off := uint32(len(s.buf))
	s.buf = append(s.buf, str...)
	s.buf = append(s.buf, 0)
	s.idx[str] = off
	return off
}

type section struct {
	name               string
	typ, flags         uint32
	addr, off, size    uint64
	link, info         uint32
	addralign, entsize uint64
	data               []byte
	// alias marks a header-only view into the blob: it contributes no
	// file bytes of its own and its offset is derived from its vaddr.
	alias bool
}

// Write serializes the spec into an ELF64 image.
func Write(spec Spec) ([]byte, error) {
	if len(spec.Blob) == 0 {
		return nil, fmt.Errorf("elff: empty blob")
	}
	if spec.Kind == 0 {
		return nil, fmt.Errorf("elff: kind not set")
	}

	dynstr := newStrtab()
	// Dynamic symbols: null, then exports, then imports.
	var dynsym bytes.Buffer
	dynsym.Write(make([]byte, 24)) // index 0: null symbol
	putSym := func(w *bytes.Buffer, nameOff uint32, info byte, shndx uint16, value uint64) {
		var e [24]byte
		binary.LittleEndian.PutUint32(e[0:], nameOff)
		e[4] = info
		e[5] = 0
		binary.LittleEndian.PutUint16(e[6:], shndx)
		binary.LittleEndian.PutUint64(e[8:], value)
		binary.LittleEndian.PutUint64(e[16:], 0)
		w.Write(e[:])
	}
	// .text will be section index 1.
	for _, ex := range spec.Exports {
		putSym(&dynsym, dynstr.add(ex.Name), stbGlobal<<4|sttFunc, 1, ex.Addr)
	}
	importBase := 1 + len(spec.Exports)
	var rela bytes.Buffer
	for i, im := range spec.Imports {
		putSym(&dynsym, dynstr.add(im.Name), stbGlobal<<4|sttFunc, 0, 0)
		var e [24]byte
		binary.LittleEndian.PutUint64(e[0:], im.SlotAddr)
		binary.LittleEndian.PutUint64(e[8:], uint64(importBase+i)<<32|rX8664JumpSlot)
		binary.LittleEndian.PutUint64(e[16:], 0)
		rela.Write(e[:])
	}

	var dynamic bytes.Buffer
	putDyn := func(tag, val uint64) {
		var e [16]byte
		binary.LittleEndian.PutUint64(e[0:], tag)
		binary.LittleEndian.PutUint64(e[8:], val)
		dynamic.Write(e[:])
	}
	for _, lib := range spec.Needed {
		putDyn(dtNeeded, uint64(dynstr.add(lib)))
	}
	putDyn(dtSymtab, 0) // filled below once addresses are known; placeholder
	putDyn(dtStrtab, 0)
	if rela.Len() > 0 {
		putDyn(dtJmpRel, 0)
		putDyn(dtPltRelSz, uint64(rela.Len()))
	}
	putDyn(dtNull, 0)

	// Local symbol table.
	symstr := newStrtab()
	var symtab bytes.Buffer
	symtab.Write(make([]byte, 24))
	for _, name := range sortedKeys(spec.Symbols) {
		putSym(&symtab, symstr.add(name), stbGlobal<<4|sttFunc, 1, spec.Symbols[name])
	}

	codeSize := spec.CodeSize
	if codeSize == 0 || codeSize > uint64(len(spec.Blob)) {
		codeSize = uint64(len(spec.Blob))
	}
	sections := []*section{
		{}, // null section
		{name: ".text", typ: shtProgbits, flags: shfAlloc | shfExec | shfWrite,
			addr: spec.Base, size: codeSize, addralign: 16, data: spec.Blob},
		{name: ".dynsym", typ: shtDynsym, size: uint64(dynsym.Len()),
			link: 3, info: 1, addralign: 8, entsize: 24, data: dynsym.Bytes()},
		{name: ".dynstr", typ: shtStrtab, size: uint64(len(dynstr.buf)), addralign: 1, data: dynstr.buf},
		{name: ".rela.plt", typ: shtRela, size: uint64(rela.Len()),
			link: 2, info: 1, addralign: 8, entsize: 24, data: rela.Bytes()},
		{name: ".dynamic", typ: shtDynamic, size: uint64(dynamic.Len()),
			link: 3, addralign: 8, entsize: 16, data: dynamic.Bytes()},
		{name: ".symtab", typ: shtSymtab, size: uint64(symtab.Len()),
			link: 7, info: 1, addralign: 8, entsize: 24, data: symtab.Bytes()},
		{name: ".strtab", typ: shtStrtab, size: uint64(len(symstr.buf)), addralign: 1, data: symstr.buf},
	}
	if spec.HasUnwind {
		sections = append(sections, &section{name: ".bside.unwind", typ: shtProgbits,
			size: 8, addralign: 1, data: []byte("BSUNWIND")})
	}
	for _, ds := range spec.DataSections {
		if ds.Addr < spec.Base || ds.Size > uint64(len(spec.Blob)) ||
			ds.Addr-spec.Base > uint64(len(spec.Blob))-ds.Size {
			return nil, fmt.Errorf("elff: data section %s outside blob", ds.Name)
		}
		flags := uint32(shfAlloc)
		if ds.Writable {
			flags |= shfWrite
		}
		sections = append(sections, &section{name: ds.Name, typ: shtProgbits,
			flags: flags, addr: ds.Addr, size: ds.Size, addralign: 1, alias: true})
	}
	var relaDyn bytes.Buffer
	for _, r := range spec.Relocs {
		var e [24]byte
		binary.LittleEndian.PutUint64(e[0:], r.Slot)
		binary.LittleEndian.PutUint64(e[8:], rX8664Relative)
		binary.LittleEndian.PutUint64(e[16:], r.Target)
		relaDyn.Write(e[:])
	}
	if relaDyn.Len() > 0 {
		sections = append(sections, &section{name: ".rela.dyn", typ: shtRela,
			size: uint64(relaDyn.Len()), addralign: 8, entsize: 24, data: relaDyn.Bytes()})
	}
	shstr := newStrtab()
	var shstrData []byte
	shstrSec := &section{name: ".shstrtab", typ: shtStrtab, addralign: 1}
	sections = append(sections, shstrSec)
	for _, s := range sections[1:] {
		shstr.add(s.name)
	}
	shstrData = shstr.buf
	shstrSec.data = shstrData
	shstrSec.size = uint64(len(shstrData))

	// Layout: ehdr(64) + 1 phdr(56) + section contents + shdr table.
	const ehsize, phsize, shsize = 64, 56, 64
	off := uint64(ehsize + phsize)
	// Keep the blob offset congruent with its vaddr modulo page size so
	// real loaders would accept it; our own loader does not care but
	// debug/elf consumers might.
	blobOff := (off + 0xFFF) &^ 0xFFF
	sections[1].off = blobOff
	off = blobOff + uint64(len(spec.Blob))
	for _, s := range sections[2:] {
		if s.alias {
			// Views into the blob: the file range is wherever the blob
			// put those virtual addresses.
			s.off = blobOff + (s.addr - spec.Base)
			continue
		}
		align := s.addralign
		if align == 0 {
			align = 1
		}
		off = (off + align - 1) &^ (align - 1)
		s.off = off
		off += uint64(len(s.data))
	}
	shoff := (off + 7) &^ 7

	// Now that section addresses are fixed, patch the .dynamic pointers.
	// Metadata sections are not loaded; the values are file offsets,
	// which our reader understands.
	patchDynamic(dynamic.Bytes(), dtSymtab, sections[2].off)
	patchDynamic(dynamic.Bytes(), dtStrtab, sections[3].off)
	if rela.Len() > 0 {
		patchDynamic(dynamic.Bytes(), dtJmpRel, sections[4].off)
	}

	var out bytes.Buffer
	// ELF header.
	var eh [ehsize]byte
	copy(eh[:], []byte{0x7F, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*version*/})
	etype := uint16(etDyn)
	if spec.Kind == KindStatic {
		etype = etExec
	}
	binary.LittleEndian.PutUint16(eh[16:], etype)
	binary.LittleEndian.PutUint16(eh[18:], 62) // EM_X86_64
	binary.LittleEndian.PutUint32(eh[20:], 1)
	binary.LittleEndian.PutUint64(eh[24:], spec.Entry)
	binary.LittleEndian.PutUint64(eh[32:], ehsize) // phoff
	binary.LittleEndian.PutUint64(eh[40:], shoff)  // shoff
	binary.LittleEndian.PutUint16(eh[52:], ehsize) // ehsize
	binary.LittleEndian.PutUint16(eh[54:], phsize) // phentsize
	binary.LittleEndian.PutUint16(eh[56:], 1)      // phnum
	binary.LittleEndian.PutUint16(eh[58:], shsize) // shentsize
	binary.LittleEndian.PutUint16(eh[60:], uint16(len(sections)))
	binary.LittleEndian.PutUint16(eh[62:], uint16(len(sections)-1)) // shstrndx
	out.Write(eh[:])

	// One PT_LOAD for the blob (RWX: synthetic corpus images mix code,
	// data and GOT slots in a single region by design).
	var ph [phsize]byte
	binary.LittleEndian.PutUint32(ph[0:], ptLoad)
	binary.LittleEndian.PutUint32(ph[4:], 7) // RWX
	binary.LittleEndian.PutUint64(ph[8:], blobOff)
	binary.LittleEndian.PutUint64(ph[16:], spec.Base)
	binary.LittleEndian.PutUint64(ph[24:], spec.Base)
	binary.LittleEndian.PutUint64(ph[32:], uint64(len(spec.Blob)))
	binary.LittleEndian.PutUint64(ph[40:], uint64(len(spec.Blob)))
	binary.LittleEndian.PutUint64(ph[48:], 0x1000)
	out.Write(ph[:])

	// Section contents. Alias sections contribute no bytes — their file
	// ranges live inside the blob already written for .text.
	for _, s := range sections[1:] {
		if s.alias {
			continue
		}
		pad := int(s.off) - out.Len()
		if pad < 0 {
			return nil, fmt.Errorf("elff: layout error for %s", s.name)
		}
		out.Write(make([]byte, pad))
		out.Write(s.data)
	}
	// Section header table.
	pad := int(shoff) - out.Len()
	if pad < 0 {
		return nil, fmt.Errorf("elff: shdr layout error")
	}
	out.Write(make([]byte, pad))
	for _, s := range sections {
		var sh [shsize]byte
		binary.LittleEndian.PutUint32(sh[0:], shstr.add(s.name))
		binary.LittleEndian.PutUint32(sh[4:], s.typ)
		binary.LittleEndian.PutUint64(sh[8:], uint64(s.flags))
		binary.LittleEndian.PutUint64(sh[16:], s.addr)
		binary.LittleEndian.PutUint64(sh[24:], s.off)
		binary.LittleEndian.PutUint64(sh[32:], s.size)
		binary.LittleEndian.PutUint32(sh[40:], s.link)
		binary.LittleEndian.PutUint32(sh[44:], s.info)
		binary.LittleEndian.PutUint64(sh[48:], s.addralign)
		binary.LittleEndian.PutUint64(sh[56:], s.entsize)
		out.Write(sh[:])
	}
	return out.Bytes(), nil
}

func patchDynamic(dyn []byte, tag, val uint64) {
	for off := 0; off+16 <= len(dyn); off += 16 {
		if binary.LittleEndian.Uint64(dyn[off:]) == tag {
			binary.LittleEndian.PutUint64(dyn[off+8:], val)
			return
		}
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
