// Package emu is a concrete x86-64 user-mode emulator for the binaries
// produced in this repository. It plays the role strace plays in the
// paper's validation (§5.1): executing a program for real and recording
// every system call it issues, which gives the evaluation a dynamic
// ground truth with exactly known coverage.
package emu

import (
	"errors"
	"fmt"

	"bside/internal/elff"
	"bside/internal/x86"
)

// Emulation errors.
var (
	// ErrFault is an access to unmapped memory.
	ErrFault = errors.New("emu: memory fault")
	// ErrSteps means the step budget ran out before exit.
	ErrSteps = errors.New("emu: step budget exhausted")
	// ErrTrap is a ud2/int3/hlt or undecodable instruction.
	ErrTrap = errors.New("emu: trap")
)

// haltAddr is the sentinel return address planted below _start; a ret
// to it ends the program as if the process returned from main.
const haltAddr = 0xFFFF_FFFF_FFFF_F000

// DefaultMaxSteps is the step budget used when a Budget leaves MaxSteps
// zero — ample for every corpus program while still bounding runaway
// inputs.
const DefaultMaxSteps = 3_000_000

// Budget bounds one emulation run. The limits exist for adversarial
// inputs — randomly synthesized programs the fuzzer feeds in — where an
// unbounded run or an unbounded trace would turn a generator bug into a
// hung or OOM-killed harness.
type Budget struct {
	// MaxSteps bounds executed instructions; 0 means DefaultMaxSteps.
	// Exceeding it fails the run with ErrSteps.
	MaxSteps int
	// MaxTrace caps the per-invocation Trace recording (0 = unlimited).
	// The deduplicated SyscallSet keeps recording past the cap, so
	// ground truth stays exact even for syscall-bomb programs; only the
	// invocation-ordered log is truncated.
	MaxTrace int
}

const (
	stackTop  = 0x7FFF_FFF0_0000
	stackSize = 1 << 20
	pageBits  = 12
	pageSize  = 1 << pageBits
)

// Machine is a loaded process image plus CPU state.
type Machine struct {
	pages map[uint64]*[pageSize]byte
	regs  [x86.NumGPR]uint64
	rip   uint64

	zf, sf, cf, of bool

	// Trace is the sequence of syscall numbers executed.
	Trace []uint64
	// Exited is set when the program exited via exit/exit_group or by
	// returning from the entry function.
	Exited bool
	// ExitCode is %rdi at exit.
	ExitCode uint64
	// Steps counts executed instructions.
	Steps int

	// seen is the deduplicated syscall set, maintained even when the
	// Trace recording is capped by a Budget.
	seen     map[uint64]bool
	maxTrace int

	modules []*elff.Binary
}

// NewProcess loads the main binary and its shared-library dependencies,
// resolves import GOT slots against library exports, and prepares the
// stack. libs maps DT_NEEDED names to parsed libraries; transitive
// dependencies must be included.
func NewProcess(main *elff.Binary, libs map[string]*elff.Binary) (*Machine, error) {
	m := &Machine{pages: make(map[uint64]*[pageSize]byte)}
	mods := []*elff.Binary{main}
	seen := map[string]bool{}
	var walk func(b *elff.Binary) error
	walk = func(b *elff.Binary) error {
		for _, need := range b.Needed {
			if seen[need] {
				continue
			}
			lib, ok := libs[need]
			if !ok {
				return fmt.Errorf("emu: missing library %q", need)
			}
			seen[need] = true
			mods = append(mods, lib)
			if err := walk(lib); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(main); err != nil {
		return nil, err
	}
	m.modules = mods

	for _, mod := range mods {
		if err := m.mapRegion(mod.Base, mod.Blob); err != nil {
			return nil, err
		}
	}
	// Resolve imports: first provider in load order wins, as with the
	// dynamic linker's scope ordering.
	for _, mod := range mods {
		for _, im := range mod.Imports {
			addr, ok := m.lookupExport(im.Name)
			if !ok {
				return nil, fmt.Errorf("emu: unresolved import %q", im.Name)
			}
			if err := m.write(im.SlotAddr, 8, addr); err != nil {
				return nil, err
			}
		}
	}

	if err := m.mapRegion(stackTop-stackSize, make([]byte, stackSize)); err != nil {
		return nil, err
	}
	m.regs[x86.RSP] = stackTop - 64
	if err := m.write(m.regs[x86.RSP], 8, haltAddr); err != nil {
		return nil, err
	}
	m.rip = main.Entry
	return m, nil
}

func (m *Machine) lookupExport(name string) (uint64, bool) {
	for _, mod := range m.modules[1:] {
		if addr, ok := mod.ExportAddr(name); ok {
			return addr, true
		}
	}
	// Allow the main module itself as a last resort (rare, but matches
	// dynamic-linker symbol scope).
	return m.modules[0].ExportAddr(name)
}

func (m *Machine) mapRegion(base uint64, data []byte) error {
	for off := 0; off < len(data); {
		pageAddr := (base + uint64(off)) &^ (pageSize - 1)
		pg := m.pages[pageAddr]
		if pg == nil {
			pg = new([pageSize]byte)
			m.pages[pageAddr] = pg
		}
		start := int((base + uint64(off)) & (pageSize - 1))
		n := copy(pg[start:], data[off:])
		off += n
	}
	return nil
}

func (m *Machine) read(addr uint64, size uint8) (uint64, error) {
	var v uint64
	for i := uint8(0); i < size; i++ {
		a := addr + uint64(i)
		pg := m.pages[a&^(pageSize-1)]
		if pg == nil {
			return 0, fmt.Errorf("%w: read %#x", ErrFault, a)
		}
		v |= uint64(pg[a&(pageSize-1)]) << (8 * i)
	}
	return v, nil
}

func (m *Machine) write(addr uint64, size uint8, v uint64) error {
	for i := uint8(0); i < size; i++ {
		a := addr + uint64(i)
		pg := m.pages[a&^(pageSize-1)]
		if pg == nil {
			return fmt.Errorf("%w: write %#x", ErrFault, a)
		}
		pg[a&(pageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

func (m *Machine) fetch(addr uint64) ([]byte, error) {
	// Instructions are at most 15 bytes; assemble a window across up to
	// two pages.
	buf := make([]byte, 0, 15)
	for i := uint64(0); i < 15; i++ {
		a := addr + i
		pg := m.pages[a&^(pageSize-1)]
		if pg == nil {
			break
		}
		buf = append(buf, pg[a&(pageSize-1)])
	}
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: fetch %#x", ErrFault, addr)
	}
	return buf, nil
}

// SyscallSet returns the deduplicated set of syscall numbers executed.
// Unlike Trace it is exact even when a Budget capped the trace.
func (m *Machine) SyscallSet() map[uint64]bool {
	set := make(map[uint64]bool, len(m.seen))
	for n := range m.seen {
		set[n] = true
	}
	return set
}
