package emu

import (
	"errors"
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

func run(t *testing.T, fn func(b *asm.Builder)) *Machine {
	t.Helper()
	bin, _ := testbin.Build(t, elff.KindStatic, fn, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v (trace %v)", err, m.Trace)
	}
	return m
}

func TestRunExit(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 7)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
	})
	if !m.Exited || m.ExitCode != 7 {
		t.Fatalf("exit: %v code %d", m.Exited, m.ExitCode)
	}
	if !reflect.DeepEqual(m.Trace, []uint64{60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestReturnFromStartHalts(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
	})
	if !m.Exited {
		t.Fatal("must halt on return from _start")
	}
	if !reflect.DeepEqual(m.Trace, []uint64{39}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestLoopAndFlags(t *testing.T) {
	// Sum 1..5 in rbx via a countdown loop; syscall number = sum = 15.
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RCX, 5)
		b.XorRegReg(x86.RBX, x86.RBX)
		b.Label("top")
		b.AddRegReg(x86.RBX, x86.RCX)
		b.DecReg(x86.RCX)
		b.CmpRegImm(x86.RCX, 0)
		b.Jcc(x86.CondNE, "top")
		b.MovRegReg(x86.RAX, x86.RBX)
		b.Syscall()
		b.Ret()
	})
	if !reflect.DeepEqual(m.Trace, []uint64{15}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestSignedConditions(t *testing.T) {
	// -1 < 1 signed must take the jl branch (syscall 1), not 2.
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm64(x86.RDX, 0xFFFFFFFFFFFFFFFF) // -1
		b.CmpRegImm(x86.RDX, 1)
		b.Jcc(x86.CondL, "less")
		b.MovRegImm32(x86.RAX, 2)
		b.JmpLabel("go")
		b.Label("less")
		b.MovRegImm32(x86.RAX, 1)
		b.Label("go")
		b.Syscall()
		b.Ret()
	})
	if !reflect.DeepEqual(m.Trace, []uint64{1}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestCallRetAndStackArgs(t *testing.T) {
	// Go-style stack-arg wrapper executed concretely.
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 35)
		b.CallLabel("wrapper")
		b.AddRegImm(x86.RSP, 16)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Func("wrapper")
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	})
	if !reflect.DeepEqual(m.Trace, []uint64{35, 60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestIndirectCallThroughTable(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegMemRIP(x86.RDX, "table")
		b.CallReg(x86.RDX)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Func("handler")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
		b.Label("__code_end")
		b.Align(8)
		b.Label("table")
		b.QuadLabel("handler")
	})
	if !reflect.DeepEqual(m.Trace, []uint64{39, 60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestImportResolutionAcrossModules(t *testing.T) {
	// A libc-like library exporting write(); the main binary calls it
	// through a PLT-style stub.
	lib, libSyms := testbin.BuildAt(t, elff.KindShared, 0x7F0000000000, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "write", Addr: syms["write"]}}
	})
	_ = libSyms

	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("stub_write")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		spec.Needed = []string{"libc.so"}
	})

	m, err := NewProcess(main, map[string]*elff.Binary{"libc.so": lib})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := m.Run(100_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(m.Trace, []uint64{1, 60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
	if got := m.SyscallSet(); !got[1] || !got[60] || len(got) != 2 {
		t.Fatalf("set: %v", got)
	}
}

func TestLibBaseIsHonored(t *testing.T) {
	lib, syms := testbin.BuildAt(t, elff.KindShared, 0x7F0100000000, func(b *asm.Builder) {
		b.Func("f")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "f", Addr: syms["f"]}}
	})
	if lib.Base != 0x7F0100000000 {
		t.Fatalf("base %#x", lib.Base)
	}
	if a, ok := lib.ExportAddr("f"); !ok || a != syms["f"] || a < lib.Base {
		t.Fatalf("export addr %#x", a)
	}
}

func TestFaultOnWildAccess(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm64(x86.RBX, 0x12345)
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RBX, Index: x86.RegNone, Scale: 1})
		b.Ret()
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); !errors.Is(err, ErrFault) {
		t.Fatalf("want fault, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.Label("spin")
		b.JmpLabel("spin")
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); !errors.Is(err, ErrSteps) {
		t.Fatalf("want step budget error, got %v", err)
	}
}

func TestTrapOnUd2(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.Ud2()
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); !errors.Is(err, ErrTrap) {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestMissingLibraryError(t *testing.T) {
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Needed = []string{"libmissing.so"}
	})
	if _, err := NewProcess(main, nil); err == nil {
		t.Fatal("missing library must fail to load")
	}
}

func TestSyscallClobbersRCXandR11(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RCX, 0x1234)
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.MovRegReg(x86.RDI, x86.RCX) // rcx now holds the return RIP
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
	})
	if m.ExitCode == 0x1234 {
		t.Fatal("rcx must be clobbered by syscall")
	}
}

func TestRunBudgetTraceCap(t *testing.T) {
	// A syscall-bomb program: the capped Trace truncates, but the
	// deduplicated SyscallSet stays exact — the property the fuzzing
	// oracle's ground truth depends on.
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.R14, 50)
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.DecReg(x86.R14)
		b.CmpRegImm(x86.R14, 0)
		b.Jcc(x86.CondNE, "loop")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunBudget(Budget{MaxTrace: 10}); err != nil {
		t.Fatal(err)
	}
	if !m.Exited {
		t.Fatal("did not exit")
	}
	if len(m.Trace) != 10 {
		t.Fatalf("trace len %d, want capped at 10", len(m.Trace))
	}
	set := m.SyscallSet()
	for _, nr := range []uint64{0, 1, 60} {
		if !set[nr] {
			t.Fatalf("SyscallSet lost %d past the trace cap: %v", nr, set)
		}
	}
}

func TestRunBudgetDefaultSteps(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.Label("spin")
		b.JmpLabel("spin")
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Zero MaxSteps means the (large) default, not zero.
	if err := m.RunBudget(Budget{}); !errors.Is(err, ErrSteps) {
		t.Fatalf("want step budget error, got %v", err)
	}
	if m.Steps != DefaultMaxSteps {
		t.Fatalf("steps %d, want DefaultMaxSteps", m.Steps)
	}
}
