package emu

import (
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// condCase builds a program that compares a against b and reports via
// the syscall number whether the condition was taken (1) or not (0).
func condTaken(t *testing.T, a, b uint64, cond x86.Cond) bool {
	t.Helper()
	m := run(t, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.MovRegImm64(x86.RDX, a)
		bl.MovRegImm64(x86.RBX, b)
		bl.CmpRegReg(x86.RDX, x86.RBX)
		bl.Jcc(cond, "taken")
		bl.MovRegImm32(x86.RAX, 0)
		bl.JmpLabel("out")
		bl.Label("taken")
		bl.MovRegImm32(x86.RAX, 1)
		bl.Label("out")
		bl.Syscall()
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
	})
	return m.Trace[0] == 1
}

func TestConditionMatrix(t *testing.T) {
	const (
		minus1 = 0xFFFFFFFFFFFFFFFF // -1 signed
		minus2 = 0xFFFFFFFFFFFFFFFE
	)
	cases := []struct {
		name string
		a, b uint64
		cond x86.Cond
		want bool
	}{
		{"eq taken", 5, 5, x86.CondE, true},
		{"eq not", 5, 6, x86.CondE, false},
		{"ne taken", 5, 6, x86.CondNE, true},
		{"unsigned below", 3, 9, x86.CondB, true},
		{"unsigned below (big)", minus1, 3, x86.CondB, false}, // 2^64-1 not < 3
		{"unsigned above", minus1, 3, x86.CondA, true},
		{"unsigned ae equal", 7, 7, x86.CondAE, true},
		{"unsigned be equal", 7, 7, x86.CondBE, true},
		{"signed less", minus1, 3, x86.CondL, true}, // -1 < 3 signed
		{"signed less not", 3, minus1, x86.CondL, false},
		{"signed greater", 3, minus1, x86.CondG, true},
		{"signed ge equal", minus2, minus2, x86.CondGE, true},
		{"signed le", minus2, minus1, x86.CondLE, true}, // -2 <= -1
		{"sign set", minus1, 0, x86.CondS, true},        // -1 - 0 negative
		{"sign clear", 5, 3, x86.CondNS, true},
	}
	for _, tc := range cases {
		if got := condTaken(t, tc.a, tc.b, tc.cond); got != tc.want {
			t.Errorf("%s: cmp(%#x, %#x) j%v taken=%v want %v",
				tc.name, tc.a, tc.b, tc.cond, got, tc.want)
		}
	}
}

func TestTestInstructionFlags(t *testing.T) {
	// test rdx, rdx with zero -> ZF -> je taken.
	m := run(t, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.XorRegReg(x86.RDX, x86.RDX)
		bl.TestRegReg(x86.RDX, x86.RDX)
		bl.Jcc(x86.CondE, "zero")
		bl.MovRegImm32(x86.RAX, 0)
		bl.JmpLabel("out")
		bl.Label("zero")
		bl.MovRegImm32(x86.RAX, 1)
		bl.Label("out")
		bl.Syscall()
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
	})
	if m.Trace[0] != 1 {
		t.Fatal("test+je on zero register must take the branch")
	}
}

func Test32BitFlagWidth(t *testing.T) {
	// cmp on 32-bit values: 0xFFFFFFFF vs 1 — as 32-bit signed,
	// 0xFFFFFFFF is -1, so jl must be taken when the comparison runs at
	// 32-bit width. Our assembler always emits 64-bit cmp for
	// CmpRegReg, so instead check the zero-extension of a 32-bit mov:
	// after mov eax, 0xFFFFFFFF the full rax is 0x00000000FFFFFFFF,
	// which is positive in 64-bit terms.
	m := run(t, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.MovRegImm32(x86.RDX, 0xFFFFFFFF)
		bl.CmpRegImm(x86.RDX, 0)
		bl.Jcc(x86.CondL, "neg")
		bl.MovRegImm32(x86.RAX, 1) // positive path: correct
		bl.JmpLabel("out")
		bl.Label("neg")
		bl.MovRegImm32(x86.RAX, 0)
		bl.Label("out")
		bl.Syscall()
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
	})
	if m.Trace[0] != 1 {
		t.Fatal("32-bit mov must zero-extend (rdx positive as 64-bit)")
	}
}

func TestStackDiscipline(t *testing.T) {
	// Push/pop pairs must restore rsp; leave must unwind a frame.
	m := run(t, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.MovRegReg(x86.RBX, x86.RSP)
		bl.Push(x86.RDI)
		bl.Push(x86.RSI)
		bl.Pop(x86.RSI)
		bl.Pop(x86.RDI)
		bl.CmpRegReg(x86.RSP, x86.RBX)
		bl.Jcc(x86.CondE, "ok")
		bl.MovRegImm32(x86.RAX, 0)
		bl.JmpLabel("out")
		bl.Label("ok")
		bl.MovRegImm32(x86.RAX, 1)
		bl.Label("out")
		bl.Syscall()
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
	})
	if m.Trace[0] != 1 {
		t.Fatal("push/pop must balance rsp")
	}
}

func TestFramePointerAndLeave(t *testing.T) {
	m := run(t, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.CallLabel("framed")
		bl.Syscall() // rax set by framed
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
		bl.Func("framed")
		bl.Push(x86.RBP)
		bl.MovRegReg(x86.RBP, x86.RSP)
		bl.SubRegImm(x86.RSP, 32)
		bl.MovMemImm32(x86.Mem{Base: x86.RBP, Index: x86.RegNone, Scale: 1, Disp: -8}, 42)
		bl.MovRegMem(x86.RAX, x86.Mem{Base: x86.RBP, Index: x86.RegNone, Scale: 1, Disp: -8})
		bl.Leave()
		bl.Ret()
	})
	if !reflect.DeepEqual(m.Trace, []uint64{42, 60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}

func TestJumpTableDispatch(t *testing.T) {
	// Indexed load from a data table drives an indirect jump — the
	// jump-table pattern compilers emit for switches.
	bin, _ := testbin.Build(t, elff.KindStatic, func(bl *asm.Builder) {
		bl.Func("_start")
		bl.MovRegImm32(x86.RCX, 1) // select case 1
		bl.Lea(x86.RDX, "table")
		bl.MovRegMem(x86.RDX, x86.Mem{Base: x86.RDX, Index: x86.RCX, Scale: 8})
		bl.JmpReg(x86.RDX)
		bl.Func("case0")
		bl.MovRegImm32(x86.RAX, 11)
		bl.JmpLabel("out")
		bl.Func("case1")
		bl.MovRegImm32(x86.RAX, 22)
		bl.Label("out")
		bl.Syscall()
		bl.MovRegImm32(x86.RAX, 60)
		bl.Syscall()
		bl.Label("__code_end")
		bl.Align(8)
		bl.Label("table")
		bl.QuadLabel("case0")
		bl.QuadLabel("case1")
	}, nil)
	m, err := NewProcess(bin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Trace, []uint64{22, 60}) {
		t.Fatalf("trace: %v", m.Trace)
	}
}
