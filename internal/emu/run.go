package emu

import (
	"fmt"

	"bside/internal/linux"
	"bside/internal/x86"
)

// Run executes until exit, a trap, or maxSteps instructions.
func (m *Machine) Run(maxSteps int) error {
	return m.RunBudget(Budget{MaxSteps: maxSteps})
}

// RunBudget executes until exit, a trap, or the budget's step limit.
func (m *Machine) RunBudget(budget Budget) error {
	maxSteps := budget.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	m.maxTrace = budget.MaxTrace
	for m.Steps < maxSteps {
		if m.rip == haltAddr {
			m.Exited = true
			return nil
		}
		buf, err := m.fetch(m.rip)
		if err != nil {
			return err
		}
		in, err := x86.Decode(buf, m.rip)
		if err != nil {
			return fmt.Errorf("%w: undecodable at %#x: %v", ErrTrap, m.rip, err)
		}
		m.Steps++
		next := in.Next()
		if err := m.exec(in, &next); err != nil {
			return err
		}
		if m.Exited {
			return nil
		}
		m.rip = next
	}
	return ErrSteps
}

func (m *Machine) exec(in x86.Inst, next *uint64) error {
	switch in.Op {
	case x86.OpNop, x86.OpEndbr64, x86.OpCdqe:
		if in.Op == x86.OpCdqe {
			m.regs[x86.RAX] = uint64(int64(int32(uint32(m.regs[x86.RAX]))))
		}

	case x86.OpMov:
		v, err := m.readOperand(in, in.Src)
		if err != nil {
			return err
		}
		return m.writeOperand(in, in.Dst, v)

	case x86.OpLea:
		ea, err := m.effAddr(in, in.Src.Mem)
		if err != nil {
			return err
		}
		m.setReg(in.Dst.Reg, 8, ea)

	case x86.OpMovzx:
		v, err := m.readOperand(in, in.Src)
		if err != nil {
			return err
		}
		return m.writeOperand(in, in.Dst, v)

	case x86.OpMovsx, x86.OpMovsxd:
		v, err := m.readOperand(in, in.Src)
		if err != nil {
			return err
		}
		// Source widths were 8/16/32; sign-extend from 32 as the corpus
		// only uses movsxd.
		return m.writeOperand(in, in.Dst, uint64(int64(int32(uint32(v)))))

	case x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr, x86.OpXor, x86.OpCmp, x86.OpTest:
		a, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOperand(in, in.Src)
		if err != nil {
			return err
		}
		res := m.alu(in.Op, a, b, in.OpSize)
		if in.Op == x86.OpCmp || in.Op == x86.OpTest {
			return nil
		}
		return m.writeOperand(in, in.Dst, res)

	case x86.OpShl, x86.OpShr:
		a, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOperand(in, in.Src)
		if err != nil {
			return err
		}
		var res uint64
		if in.Op == x86.OpShl {
			res = a << (b & 63)
		} else {
			res = a >> (b & 63)
		}
		res = truncVal(res, in.OpSize)
		m.setZFSF(res, in.OpSize)
		return m.writeOperand(in, in.Dst, res)

	case x86.OpInc, x86.OpDec:
		a, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		var res uint64
		if in.Op == x86.OpInc {
			res = truncVal(a+1, in.OpSize)
		} else {
			res = truncVal(a-1, in.OpSize)
		}
		m.setZFSF(res, in.OpSize)
		return m.writeOperand(in, in.Dst, res)

	case x86.OpPush:
		v, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		m.regs[x86.RSP] -= 8
		return m.write(m.regs[x86.RSP], 8, v)

	case x86.OpPop:
		v, err := m.read(m.regs[x86.RSP], 8)
		if err != nil {
			return err
		}
		m.regs[x86.RSP] += 8
		return m.writeOperand(in, in.Dst, v)

	case x86.OpLeave:
		m.regs[x86.RSP] = m.regs[x86.RBP]
		v, err := m.read(m.regs[x86.RSP], 8)
		if err != nil {
			return err
		}
		m.regs[x86.RBP] = v
		m.regs[x86.RSP] += 8

	case x86.OpCall:
		m.regs[x86.RSP] -= 8
		if err := m.write(m.regs[x86.RSP], 8, in.Next()); err != nil {
			return err
		}
		*next = uint64(in.Dst.Imm)

	case x86.OpCallInd:
		tgt, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		m.regs[x86.RSP] -= 8
		if err := m.write(m.regs[x86.RSP], 8, in.Next()); err != nil {
			return err
		}
		*next = tgt

	case x86.OpJmp:
		*next = uint64(in.Dst.Imm)

	case x86.OpJmpInd:
		tgt, err := m.readOperand(in, in.Dst)
		if err != nil {
			return err
		}
		*next = tgt

	case x86.OpJcc:
		if m.cond(in.Cond) {
			*next = uint64(in.Dst.Imm)
		}

	case x86.OpRet:
		v, err := m.read(m.regs[x86.RSP], 8)
		if err != nil {
			return err
		}
		m.regs[x86.RSP] += 8
		*next = v

	case x86.OpSyscall:
		nr := m.regs[x86.RAX]
		if m.seen == nil {
			m.seen = make(map[uint64]bool)
		}
		m.seen[nr] = true
		if m.maxTrace <= 0 || len(m.Trace) < m.maxTrace {
			m.Trace = append(m.Trace, nr)
		}
		if nr == linux.SysExit || nr == linux.SysExitGroup {
			m.Exited = true
			m.ExitCode = m.regs[x86.RDI]
			return nil
		}
		// Generic kernel return: success, clobber rcx/r11 per the ABI.
		m.regs[x86.RAX] = 0
		m.regs[x86.RCX] = in.Next()
		m.regs[x86.R11] = 0x246

	case x86.OpUd2, x86.OpInt3, x86.OpHlt:
		return fmt.Errorf("%w: %v at %#x", ErrTrap, in.Op, in.Addr)

	default:
		return fmt.Errorf("%w: unsupported %v at %#x", ErrTrap, in.Op, in.Addr)
	}
	return nil
}

// alu computes the result and sets flags for add/sub/and/or/xor and the
// flag-only cmp/test.
func (m *Machine) alu(op x86.Op, a, b uint64, size uint8) uint64 {
	a = truncVal(a, size)
	b = truncVal(b, size)
	var res uint64
	switch op {
	case x86.OpAdd:
		res = truncVal(a+b, size)
		m.cf = res < a
		m.of = signBit(a, size) == signBit(b, size) && signBit(res, size) != signBit(a, size)
	case x86.OpSub, x86.OpCmp:
		res = truncVal(a-b, size)
		m.cf = a < b
		m.of = signBit(a, size) != signBit(b, size) && signBit(res, size) != signBit(a, size)
	case x86.OpAnd, x86.OpTest:
		res = a & b
		m.cf, m.of = false, false
	case x86.OpOr:
		res = a | b
		m.cf, m.of = false, false
	case x86.OpXor:
		res = a ^ b
		m.cf, m.of = false, false
	}
	m.setZFSF(res, size)
	return res
}

func (m *Machine) setZFSF(res uint64, size uint8) {
	m.zf = res == 0
	m.sf = signBit(res, size)
}

func signBit(v uint64, size uint8) bool {
	return v>>(8*uint(size)-1)&1 == 1
}

func truncVal(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*uint(size)) - 1)
}

func (m *Machine) cond(c x86.Cond) bool {
	switch c {
	case x86.CondO:
		return m.of
	case x86.CondNO:
		return !m.of
	case x86.CondB:
		return m.cf
	case x86.CondAE:
		return !m.cf
	case x86.CondE:
		return m.zf
	case x86.CondNE:
		return !m.zf
	case x86.CondBE:
		return m.cf || m.zf
	case x86.CondA:
		return !m.cf && !m.zf
	case x86.CondS:
		return m.sf
	case x86.CondNS:
		return !m.sf
	case x86.CondL:
		return m.sf != m.of
	case x86.CondGE:
		return m.sf == m.of
	case x86.CondLE:
		return m.zf || m.sf != m.of
	case x86.CondG:
		return !m.zf && m.sf == m.of
	default:
		return false
	}
}

func (m *Machine) setReg(r x86.Reg, size uint8, v uint64) {
	if !r.Valid() {
		return
	}
	switch size {
	case 8:
		m.regs[r] = v
	case 4:
		m.regs[r] = v & 0xFFFFFFFF // 32-bit writes zero-extend
	case 2:
		m.regs[r] = m.regs[r]&^uint64(0xFFFF) | v&0xFFFF
	case 1:
		m.regs[r] = m.regs[r]&^uint64(0xFF) | v&0xFF
	}
}

// Reg exposes register values (tests and debugging).
func (m *Machine) Reg(r x86.Reg) uint64 { return m.regs[r] }

func (m *Machine) readOperand(in x86.Inst, op x86.Operand) (uint64, error) {
	switch op.Kind {
	case x86.KindImm:
		return truncVal(uint64(op.Imm), in.OpSize), nil
	case x86.KindReg:
		return truncVal(m.regs[op.Reg], in.OpSize), nil
	case x86.KindMem:
		ea, err := m.effAddr(in, op.Mem)
		if err != nil {
			return 0, err
		}
		return m.read(ea, in.OpSize)
	default:
		return 0, fmt.Errorf("%w: missing operand at %#x", ErrTrap, in.Addr)
	}
}

func (m *Machine) writeOperand(in x86.Inst, op x86.Operand, v uint64) error {
	switch op.Kind {
	case x86.KindReg:
		m.setReg(op.Reg, in.OpSize, v)
		return nil
	case x86.KindMem:
		ea, err := m.effAddr(in, op.Mem)
		if err != nil {
			return err
		}
		return m.write(ea, in.OpSize, v)
	default:
		return fmt.Errorf("%w: bad destination at %#x", ErrTrap, in.Addr)
	}
}

func (m *Machine) effAddr(in x86.Inst, mem x86.Mem) (uint64, error) {
	if ea, ok := in.MemEA(x86.MemOp(mem)); ok {
		return ea, nil
	}
	var ea uint64
	if mem.Base != x86.RegNone {
		ea = m.regs[mem.Base]
	}
	if mem.Index != x86.RegNone {
		ea += m.regs[mem.Index] * uint64(mem.Scale)
	}
	return ea + uint64(int64(mem.Disp)), nil
}
