package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"bside/internal/baseline"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/phases"
	"bside/internal/shared"
)

// Budgets used by the harness; chosen so the corpus's engineered
// failure classes trip exactly the intended tool (see EXPERIMENTS.md
// §2 for the rationale behind the two values).
const (
	BSideCFGBudget    = 40_000
	BaselineCFGBudget = 60_000
)

// ToolRun is one tool's outcome on one program.
type ToolRun struct {
	Syscalls []uint64
	Err      error
	// FellBack marks Chestnut's permissive-fallback path.
	FellBack bool
}

// Count is the identified-set size (0 on failure).
func (t ToolRun) Count() int { return len(t.Syscalls) }

// AppEval bundles every tool's result on one application.
type AppEval struct {
	Name      string
	Truth     []uint64
	BSide     ToolRun
	Chestnut  ToolRun
	SysFilter ToolRun

	// Report is B-Side's full program report (phases, Table 3).
	Report *shared.ProgramReport
	// TotalTime is B-Side's whole-analysis wall clock.
	TotalTime time.Duration
	// HeapBytes is the Go heap in use right after the analysis (the
	// in-process stand-in for peak RSS).
	HeapBytes uint64
}

// EvalApps runs B-Side, Chestnut and SysFilter over the six application
// profiles (Figure 7 / Table 1 / Table 3 inputs).
func EvalApps(set *corpus.Set) ([]*AppEval, error) {
	out := make([]*AppEval, 0, len(set.Apps))
	for _, app := range set.Apps {
		ev := &AppEval{Name: app.Profile.Name, Truth: app.Truth}

		start := time.Now()
		an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
		rep, err := an.Program(app.Bin)
		ev.TotalTime = time.Since(start)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		ev.HeapBytes = ms.HeapInuse
		if err != nil {
			ev.BSide.Err = err
		} else {
			ev.BSide.Syscalls = rep.Syscalls
			ev.Report = rep
		}

		ev.Chestnut = runChestnut(app.Bin, set, BaselineCFGBudget)
		ev.SysFilter = runSysFilter(app.Bin, set, BaselineCFGBudget)
		out = append(out, ev)
	}
	return out, nil
}

// runChestnut unions Chestnut's per-module results over the main binary
// and its dependency closure (the tool analyzes every module it can
// load).
func runChestnut(bin *elff.Binary, set *corpus.Set, budget int) ToolRun {
	res, err := baseline.ChestnutWithBudget(bin, budget)
	if err != nil {
		return ToolRun{Err: err}
	}
	run := ToolRun{Syscalls: res.Syscalls, FellBack: res.FellBack}
	for _, lib := range dependencyClosure(bin, set) {
		lres, err := baseline.ChestnutWithBudget(lib, budget)
		if err != nil {
			continue // tools skip modules they cannot process
		}
		run.Syscalls = Union(run.Syscalls, lres.Syscalls)
		run.FellBack = run.FellBack || lres.FellBack
	}
	return run
}

func runSysFilter(bin *elff.Binary, set *corpus.Set, budget int) ToolRun {
	res, err := baseline.SysFilterWithBudget(bin, budget)
	if err != nil {
		return ToolRun{Err: err}
	}
	run := ToolRun{Syscalls: res.Syscalls}
	for _, lib := range dependencyClosure(bin, set) {
		lres, err := baseline.SysFilterWithBudget(lib, budget)
		if err != nil {
			continue
		}
		run.Syscalls = Union(run.Syscalls, lres.Syscalls)
	}
	return run
}

func dependencyClosure(bin *elff.Binary, set *corpus.Set) []*elff.Binary {
	var out []*elff.Binary
	seen := map[string]bool{}
	var walk func(names []string)
	walk = func(names []string) {
		for _, n := range names {
			if seen[n] {
				continue
			}
			seen[n] = true
			lib, err := set.LoadLib(n)
			if err != nil {
				continue
			}
			out = append(out, lib)
			walk(lib.Needed)
		}
	}
	walk(bin.Needed)
	return out
}

// Figure7 renders the per-app identified counts, ground truth, and
// false negatives (the paper's validation figure).
func Figure7(apps []*AppEval) string {
	header := []string{"App", "Truth", "B-Side", "Chestnut", "SysFilter",
		"FN(B-Side)", "FN(Chestnut)", "FN(SysFilter)"}
	var rows [][]string
	for _, a := range apps {
		rows = append(rows, []string{
			a.Name,
			fmt.Sprint(len(a.Truth)),
			runCount(a.BSide),
			runCount(a.Chestnut),
			runCount(a.SysFilter),
			fnCount(a.BSide, a.Truth),
			fnCount(a.Chestnut, a.Truth),
			fnCount(a.SysFilter, a.Truth),
		})
	}
	return "Figure 7: system calls identified on 6 applications (ground truth = emulator trace)\n" +
		renderTable(header, rows)
}

func runCount(t ToolRun) string {
	if t.Err != nil {
		return "fail"
	}
	return fmt.Sprint(len(t.Syscalls))
}

func fnCount(t ToolRun, truth []uint64) string {
	if t.Err != nil {
		return "-"
	}
	return fmt.Sprint(len(FalseNegatives(t.Syscalls, truth)))
}

// Table1 renders per-app F1 scores.
func Table1(apps []*AppEval) string {
	header := []string{"Tool"}
	for _, a := range apps {
		header = append(header, a.Name)
	}
	header = append(header, "avg")
	rowFor := func(name string, pick func(*AppEval) ToolRun) []string {
		row := []string{name}
		var f1s []float64
		for _, a := range apps {
			run := pick(a)
			if run.Err != nil {
				row = append(row, "-")
				continue
			}
			_, _, f1 := PRF1(run.Syscalls, a.Truth)
			f1s = append(f1s, f1)
			row = append(row, fmt.Sprintf("%.2f", f1))
		}
		row = append(row, fmt.Sprintf("%.2f", mean(f1s)))
		return row
	}
	rows := [][]string{
		rowFor("B-Side", func(a *AppEval) ToolRun { return a.BSide }),
		rowFor("Chestnut", func(a *AppEval) ToolRun { return a.Chestnut }),
		rowFor("SysFilter", func(a *AppEval) ToolRun { return a.SysFilter }),
	}
	return "Table 1: F1 scores over the 6 applications\n" + renderTable(header, rows)
}

// Table3 renders analysis cost per application.
func Table3(apps []*AppEval) string {
	header := []string{"App", "CFG", "Wrappers", "Syscalls", "Total", "Heap", "BBs explored"}
	var rows [][]string
	for _, a := range apps {
		if a.Report == nil {
			rows = append(rows, []string{a.Name, "-", "-", "-", "-", "-", "-"})
			continue
		}
		st := a.Report.Main.Stats
		rows = append(rows, []string{
			a.Name,
			a.Report.CFGTime.Round(time.Microsecond).String(),
			st.WrapperDetect.Round(time.Microsecond).String(),
			st.Identify.Round(time.Microsecond).String(),
			a.TotalTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f MB", float64(a.HeapBytes)/(1<<20)),
			fmt.Sprint(st.BlocksExplored),
		})
	}
	return "Table 3: B-Side analysis cost per application\n" + renderTable(header, rows)
}

// PhaseSummary is Table 4 for one application.
type PhaseSummary struct {
	App       string
	Automaton *phases.Automaton
	// TotalSyscalls is the program-level identified count (the "/93"
	// in the paper's caption).
	TotalSyscalls int
}

// EvalPhases runs phase detection on one evaluated app.
func EvalPhases(app *AppEval) (*PhaseSummary, error) {
	if app.Report == nil {
		return nil, fmt.Errorf("eval: %s: no successful B-Side report", app.Name)
	}
	aut, err := phases.Detect(phases.Input{
		Graph: app.Report.Graph,
		Emits: app.Report.Emits(),
	}, phases.Config{})
	if err != nil {
		return nil, err
	}
	// Merge highly-connected small states like the paper does; its
	// published Nginx automaton has 15 phases, and this threshold puts
	// ours in the same regime.
	aut = aut.Compact(16)
	return &PhaseSummary{
		App:           app.Name,
		Automaton:     aut,
		TotalSyscalls: len(app.BSide.Syscalls),
	}, nil
}

// Table4 renders the phase transition matrix of one app's automaton.
func Table4(ps *PhaseSummary) string {
	aut := ps.Automaton
	// Only keep phases that matter for readability: all of them, but
	// the matrix is |P| x |P|.
	n := len(aut.Phases)
	header := []string{"Phase"}
	for i := 0; i < n; i++ {
		header = append(header, phaseName(i))
	}
	header = append(header, fmt.Sprintf("Total(/%d)", ps.TotalSyscalls), "Size(B)")
	var rows [][]string
	for i := 0; i < n; i++ {
		ph := aut.Phases[i]
		row := []string{phaseName(i)}
		for j := 0; j < n; j++ {
			if set, ok := ph.Transitions[j]; ok {
				row = append(row, fmt.Sprint(len(set)))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, fmt.Sprint(len(ph.Allowed)), fmt.Sprint(ph.CodeSize))
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: %s phase automaton (%d phases, %d DFA states, start=%s)\n",
		ps.App, n, aut.DFAStates, phaseName(aut.Start))
	b.WriteString(renderTable(header, rows))
	// Strictness summary in the style of §5.4's closing numbers.
	var strict []float64
	for _, ph := range aut.Phases {
		if ps.TotalSyscalls > 0 && ph.CodeSize > 256 {
			strict = append(strict, 1-float64(len(ph.Allowed))/float64(ps.TotalSyscalls))
		}
	}
	sort.Float64s(strict)
	if len(strict) > 0 {
		fmt.Fprintf(&b, "strictness gain in large phases: %.0f%%-%.0f%% of the total set filtered\n",
			100*strict[0], 100*strict[len(strict)-1])
	}
	return b.String()
}

func phaseName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("P%d", i)
}
