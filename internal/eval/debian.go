package eval

import (
	"errors"
	"fmt"
	"strings"

	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/ident"
	"bside/internal/linux"
	"bside/internal/shared"
)

// FailPhase classifies why a B-Side analysis failed.
type FailPhase string

// Failure phases (§5.2's timeout breakdown).
const (
	FailPhaseNone    FailPhase = ""
	FailPhaseCFG     FailPhase = "cfg"
	FailPhaseWrapper FailPhase = "wrapper"
	FailPhaseIdent   FailPhase = "ident"
	FailPhaseOther   FailPhase = "other"
)

// DebianRow is one binary's outcome across the three tools.
type DebianRow struct {
	Name      string
	Static    bool
	Truth     []uint64
	BSide     ToolRun
	BPhase    FailPhase
	Chestnut  ToolRun
	SysFilter ToolRun
}

// DebianEval aggregates the 557-binary run.
type DebianEval struct {
	Rows []DebianRow
}

// EvalDebian runs all three tools over the Debian-shaped corpus. The
// shared-library interfaces are computed once and reused across
// programs (the decoupled analysis of §4.5).
func EvalDebian(set *corpus.Set) (*DebianEval, error) {
	an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
	an.MaxCFGInsns = BSideCFGBudget

	out := &DebianEval{Rows: make([]DebianRow, 0, len(set.Debian))}
	for _, b := range set.Debian {
		row := DebianRow{Name: b.Profile.Name, Static: b.IsStatic(), Truth: b.Truth}

		rep, err := an.Program(b.Bin)
		if err != nil {
			row.BSide.Err = err
			row.BPhase = classifyFailure(err)
		} else if rep.FailOpen {
			// Soundness fallback: the effective filter is the full
			// table. Counted as a success with the full-table size.
			row.BSide.Syscalls = linux.All()
		} else {
			row.BSide.Syscalls = rep.Syscalls
		}

		row.Chestnut = runChestnut(b.Bin, set, BaselineCFGBudget)
		row.SysFilter = runSysFilter(b.Bin, set, BaselineCFGBudget)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func classifyFailure(err error) FailPhase {
	switch {
	case errors.Is(err, cfg.ErrBudget):
		return FailPhaseCFG
	case errors.Is(err, ident.ErrTimeout) && strings.Contains(err.Error(), "wrapper"):
		return FailPhaseWrapper
	case errors.Is(err, ident.ErrTimeout):
		return FailPhaseIdent
	default:
		return FailPhaseOther
	}
}

// toolStats aggregates one tool over a row subset.
type toolStats struct {
	success, failure int
	sumSyscalls      int
}

func (s toolStats) avg() float64 {
	if s.success == 0 {
		return 0
	}
	return float64(s.sumSyscalls) / float64(s.success)
}

func collect(rows []DebianRow, pick func(DebianRow) ToolRun, filter func(DebianRow) bool) toolStats {
	var s toolStats
	for _, r := range rows {
		if !filter(r) {
			continue
		}
		run := pick(r)
		if run.Err != nil {
			s.failure++
			continue
		}
		s.success++
		s.sumSyscalls += len(run.Syscalls)
	}
	return s
}

// Table2 renders the success/failure and average-set-size comparison.
func Table2(d *DebianEval) string {
	groups := []struct {
		name   string
		filter func(DebianRow) bool
	}{
		{"All binaries", func(DebianRow) bool { return true }},
		{"Static executables", func(r DebianRow) bool { return r.Static }},
		{"Dynamic executables", func(r DebianRow) bool { return !r.Static }},
	}
	tools := []struct {
		name string
		pick func(DebianRow) ToolRun
	}{
		{"B-Side", func(r DebianRow) ToolRun { return r.BSide }},
		{"Chestnut", func(r DebianRow) ToolRun { return r.Chestnut }},
		{"SysFilter", func(r DebianRow) ToolRun { return r.SysFilter }},
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Table 2: tool comparison over %d Debian-shaped binaries\n", len(d.Rows)))
	for _, g := range groups {
		total := 0
		for _, r := range d.Rows {
			if g.filter(r) {
				total++
			}
		}
		header := []string{g.name + fmt.Sprintf(" (%d)", total), "#Success", "#Failures", "Avg #syscalls"}
		var rows [][]string
		for _, tool := range tools {
			st := collect(d.Rows, tool.pick, g.filter)
			rows = append(rows, []string{
				tool.name,
				fmt.Sprintf("%d (%.1f%%)", st.success, 100*float64(st.success)/float64(total)),
				fmt.Sprintf("%d (%.1f%%)", st.failure, 100*float64(st.failure)/float64(total)),
				fmt.Sprintf("%.0f", st.avg()),
			})
		}
		b.WriteString(renderTable(header, rows))
		b.WriteByte('\n')
	}
	b.WriteString(FailureBreakdown(d))
	return b.String()
}

// FailureBreakdown reports which analysis phase B-Side's failures died
// in (§5.2: 73% CFG recovery, 15% identification, 12% wrapper
// detection).
func FailureBreakdown(d *DebianEval) string {
	counts := map[FailPhase]int{}
	total := 0
	for _, r := range d.Rows {
		if r.BSide.Err != nil {
			counts[r.BPhase]++
			total++
		}
	}
	if total == 0 {
		return "B-Side failures: none\n"
	}
	return fmt.Sprintf(
		"B-Side failure phases: CFG recovery %d (%.0f%%), identification %d (%.0f%%), wrapper detection %d (%.0f%%)\n",
		counts[FailPhaseCFG], 100*float64(counts[FailPhaseCFG])/float64(total),
		counts[FailPhaseIdent], 100*float64(counts[FailPhaseIdent])/float64(total),
		counts[FailPhaseWrapper], 100*float64(counts[FailPhaseWrapper])/float64(total))
}

// Figure8 renders the distribution histogram of identified-set sizes.
func Figure8(d *DebianEval) string {
	const bucketWidth = 10
	buckets := func(pick func(DebianRow) ToolRun) map[int]int {
		m := map[int]int{}
		for _, r := range d.Rows {
			run := pick(r)
			if run.Err != nil {
				continue
			}
			m[len(run.Syscalls)/bucketWidth]++
		}
		return m
	}
	bs := buckets(func(r DebianRow) ToolRun { return r.BSide })
	ch := buckets(func(r DebianRow) ToolRun { return r.Chestnut })
	sf := buckets(func(r DebianRow) ToolRun { return r.SysFilter })
	maxBucket := 0
	for _, m := range []map[int]int{bs, ch, sf} {
		for k := range m {
			if k > maxBucket {
				maxBucket = k
			}
		}
	}
	header := []string{"#Syscalls", "B-Side", "Chestnut", "SysFilter"}
	var rows [][]string
	for k := 0; k <= maxBucket; k++ {
		if bs[k] == 0 && ch[k] == 0 && sf[k] == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%3d-%3d", k*bucketWidth, (k+1)*bucketWidth-1),
			histCell(bs[k]),
			histCell(ch[k]),
			histCell(sf[k]),
		})
	}
	return "Figure 8: distribution of identified-set sizes (successful runs)\n" +
		renderTable(header, rows)
}

func histCell(n int) string {
	if n == 0 {
		return ""
	}
	bar := strings.Repeat("#", (n+4)/5)
	return fmt.Sprintf("%-4d %s", n, bar)
}

// CVERow is one Table 5 line.
type CVERow struct {
	CVE       linux.CVE
	Protected float64 // fraction of B-Side-successful binaries protected
}

// Table5Rows computes per-CVE protection: a binary is protected when at
// least one syscall involved in the CVE is absent from its identified
// set (the derived filter would block the attack path).
func Table5Rows(d *DebianEval) []CVERow {
	var succ []DebianRow
	for _, r := range d.Rows {
		if r.BSide.Err == nil {
			succ = append(succ, r)
		}
	}
	out := make([]CVERow, 0, len(linux.CVEs))
	for _, cve := range linux.CVEs {
		protected := 0
		for _, r := range succ {
			have := make(map[uint64]bool, len(r.BSide.Syscalls))
			for _, n := range r.BSide.Syscalls {
				have[n] = true
			}
			blocked := false
			for _, s := range cve.Syscalls {
				if !have[s] {
					blocked = true
					break
				}
			}
			if blocked {
				protected++
			}
		}
		frac := 0.0
		if len(succ) > 0 {
			frac = float64(protected) / float64(len(succ))
		}
		out = append(out, CVERow{CVE: cve, Protected: frac})
	}
	return out
}

// Table5 renders CVE protection percentages.
func Table5(d *DebianEval) string {
	rows := Table5Rows(d)
	header := []string{"CVE", "Syscall(s)", "Type", "% protected"}
	var cells [][]string
	sum := 0.0
	for _, row := range rows {
		names := make([]string, len(row.CVE.Syscalls))
		for i, s := range row.CVE.Syscalls {
			names[i] = linux.Name(s)
		}
		types := make([]string, len(row.CVE.Types))
		for i, t := range row.CVE.Types {
			types[i] = string(t)
		}
		sum += row.Protected
		cells = append(cells, []string{
			row.CVE.ID,
			strings.Join(names, ", "),
			strings.Join(types, ","),
			fmt.Sprintf("%.2f%%", 100*row.Protected),
		})
	}
	avg := 0.0
	if len(rows) > 0 {
		avg = sum / float64(len(rows))
	}
	return fmt.Sprintf("Table 5: Debian binaries protected per CVE (avg %.2f%%)\n", 100*avg) +
		renderTable(header, cells)
}
