package eval

import (
	"strings"
	"sync"
	"testing"

	"bside/internal/corpus"
)

var (
	debOnce sync.Once
	debSet  *corpus.Set
	debEval *DebianEval
	debErr  error
)

// DebianSeed pins the corpus used by tests and benches.
const DebianSeed = 42

func evaluatedDebian(t *testing.T) *DebianEval {
	t.Helper()
	debOnce.Do(func() {
		debSet, debErr = corpus.GenerateDebian(DebianSeed)
		if debErr != nil {
			return
		}
		debEval, debErr = EvalDebian(debSet)
	})
	if debErr != nil {
		t.Fatalf("debian: %v", debErr)
	}
	return debEval
}

func TestDebianTable2Marginals(t *testing.T) {
	if testing.Short() {
		t.Skip("full 557-binary corpus in -short mode")
	}
	d := evaluatedDebian(t)
	if len(d.Rows) != 557 {
		t.Fatalf("rows: %d", len(d.Rows))
	}

	count := func(pick func(DebianRow) ToolRun, filter func(DebianRow) bool) (succ, fail int) {
		st := collect(d.Rows, pick, filter)
		return st.success, st.failure
	}
	static := func(r DebianRow) bool { return r.Static }
	dynamic := func(r DebianRow) bool { return !r.Static }
	bside := func(r DebianRow) ToolRun { return r.BSide }
	chestnut := func(r DebianRow) ToolRun { return r.Chestnut }
	sysfilter := func(r DebianRow) ToolRun { return r.SysFilter }

	// Paper Table 2 marginals (exact by corpus construction).
	if s, f := count(bside, static); s != 227 || f != 4 {
		t.Errorf("B-Side static: %d/%d want 227/4", s, f)
	}
	if s, f := count(bside, dynamic); s != 214 || f != 112 {
		t.Errorf("B-Side dynamic: %d/%d want 214/112", s, f)
	}
	if s, f := count(chestnut, static); s != 4 || f != 227 {
		t.Errorf("Chestnut static: %d/%d want 4/227", s, f)
	}
	if s, f := count(chestnut, dynamic); s != 306 || f != 20 {
		t.Errorf("Chestnut dynamic: %d/%d want 306/20", s, f)
	}
	if s, f := count(sysfilter, static); s != 1 || f != 230 {
		t.Errorf("SysFilter static: %d/%d want 1/230", s, f)
	}
	if s, f := count(sysfilter, dynamic); s != 108 || f != 218 {
		t.Errorf("SysFilter dynamic: %d/%d want 108/218", s, f)
	}

	// Average identified-set sizes: B-Side well below SysFilter well
	// below Chestnut.
	bAvg := collect(d.Rows, bside, dynamic).avg()
	cAvg := collect(d.Rows, chestnut, dynamic).avg()
	sAvg := collect(d.Rows, sysfilter, dynamic).avg()
	if !(bAvg < sAvg && sAvg < cAvg) {
		t.Errorf("avg ordering: B-Side %.0f, SysFilter %.0f, Chestnut %.0f", bAvg, sAvg, cAvg)
	}
	if cAvg < 260 {
		t.Errorf("Chestnut dynamic avg %.0f, want >= 260", cAvg)
	}
	if bAvg > 90 {
		t.Errorf("B-Side dynamic avg %.0f, want < 90", bAvg)
	}
}

func TestDebianNoFalseNegatives(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	d := evaluatedDebian(t)
	for _, r := range d.Rows {
		if r.BSide.Err != nil {
			continue
		}
		if fn := FalseNegatives(r.BSide.Syscalls, r.Truth); len(fn) != 0 {
			t.Errorf("%s: B-Side false negatives %v", r.Name, fn)
		}
	}
}

func TestDebianFailurePhases(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	d := evaluatedDebian(t)
	counts := map[FailPhase]int{}
	for _, r := range d.Rows {
		if r.BSide.Err != nil {
			counts[r.BPhase]++
		}
	}
	if counts[FailPhaseOther] != 0 {
		t.Errorf("unclassified failures: %d", counts[FailPhaseOther])
	}
	// §5.2: CFG-recovery failures dominate; identification and wrapper
	// detection follow.
	if counts[FailPhaseCFG] <= counts[FailPhaseIdent]+counts[FailPhaseWrapper] {
		t.Errorf("failure mix: cfg=%d ident=%d wrapper=%d",
			counts[FailPhaseCFG], counts[FailPhaseIdent], counts[FailPhaseWrapper])
	}
	if counts[FailPhaseIdent] == 0 || counts[FailPhaseWrapper] == 0 {
		t.Errorf("missing failure phases: %v", counts)
	}
}

func TestDebianRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	d := evaluatedDebian(t)
	t2 := Table2(d)
	for _, want := range []string{"All binaries", "Static executables", "Dynamic executables", "failure phases"} {
		if !strings.Contains(t2, want) {
			t.Errorf("table 2 missing %q:\n%s", want, t2)
		}
	}
	f8 := Figure8(d)
	if !strings.Contains(f8, "#Syscalls") {
		t.Errorf("figure 8:\n%s", f8)
	}
	t5 := Table5(d)
	if !strings.Contains(t5, "CVE-2016-2383") || !strings.Contains(t5, "bpf") {
		t.Errorf("table 5:\n%s", t5)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	d := evaluatedDebian(t)
	rows := Table5Rows(d)
	if len(rows) != 36 {
		t.Fatalf("CVE rows: %d", len(rows))
	}
	byID := map[string]float64{}
	sum := 0.0
	for _, r := range rows {
		byID[r.CVE.ID] = r.Protected
		sum += r.Protected
		if r.Protected < 0.30 {
			t.Errorf("%s: protection %.2f suspiciously low", r.CVE.ID, r.Protected)
		}
	}
	// Rare syscalls protect nearly everyone; popular ones fewer.
	if byID["CVE-2016-2383"] < 0.95 { // bpf
		t.Errorf("bpf CVE protection %.2f, want ~1", byID["CVE-2016-2383"])
	}
	if byID["CVE-2016-4998"] > byID["CVE-2016-2383"] {
		t.Error("setsockopt CVE should protect fewer binaries than bpf CVE")
	}
	if avg := sum / float64(len(rows)); avg < 0.75 {
		t.Errorf("average protection %.2f, want >= 0.75", avg)
	}
}
