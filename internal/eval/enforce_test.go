package eval

import (
	"testing"

	"bside/internal/filter"
)

// TestSeccompEnforcementSimulation closes the loop the paper motivates:
// compile each app's identified set into a seccomp-BPF program and
// verify that (a) every ground-truth syscall passes the filter — the
// program would run unharmed — and (b) the filter actually denies
// something, i.e. it is not vacuous.
func TestSeccompEnforcementSimulation(t *testing.T) {
	apps, _ := evaluatedApps(t)
	for _, a := range apps {
		if a.BSide.Err != nil {
			t.Fatalf("%s: %v", a.Name, a.BSide.Err)
		}
		prog, err := filter.Compile(a.BSide.Syscalls, filter.ActionErrno)
		if err != nil {
			t.Fatalf("%s: compile: %v", a.Name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", a.Name, err)
		}
		for _, nr := range a.Truth {
			if !prog.Allows(nr) {
				t.Errorf("%s: filter kills legitimate syscall %d", a.Name, nr)
			}
		}
		denied := 0
		for nr := uint64(0); nr < 335; nr++ {
			if !prog.Allows(nr) {
				denied++
			}
		}
		if denied < 200 {
			t.Errorf("%s: filter denies only %d syscalls (not strict enough)", a.Name, denied)
		}
	}
}

// TestSeccompBaselineComparison quantifies the strictness gap the paper
// reports: the Chestnut-derived filter denies far fewer syscalls than
// the B-Side-derived one.
func TestSeccompBaselineComparison(t *testing.T) {
	apps, _ := evaluatedApps(t)
	for _, a := range apps {
		if a.Chestnut.Err != nil {
			continue
		}
		bp, err := filter.Compile(a.BSide.Syscalls, filter.ActionErrno)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := filter.Compile(a.Chestnut.Syscalls, filter.ActionErrno)
		if err != nil {
			t.Fatal(err)
		}
		deniedBy := func(p *filter.Program) int {
			n := 0
			for nr := uint64(0); nr < 335; nr++ {
				if !p.Allows(nr) {
					n++
				}
			}
			return n
		}
		if deniedBy(bp) <= deniedBy(cp) {
			t.Errorf("%s: B-Side filter (%d denied) not stricter than Chestnut (%d denied)",
				a.Name, deniedBy(bp), deniedBy(cp))
		}
	}
}
