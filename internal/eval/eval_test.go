package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"bside/internal/corpus"
)

// The app corpus is expensive enough to share across tests.
var (
	appsOnce sync.Once
	appSet   *corpus.Set
	appEvals []*AppEval
	appErr   error
)

func evaluatedApps(t *testing.T) ([]*AppEval, *corpus.Set) {
	t.Helper()
	appsOnce.Do(func() {
		appSet, appErr = corpus.GenerateApps()
		if appErr != nil {
			return
		}
		appEvals, appErr = EvalApps(appSet)
	})
	if appErr != nil {
		t.Fatalf("apps: %v", appErr)
	}
	return appEvals, appSet
}

func TestPRF1(t *testing.T) {
	cases := []struct {
		id, truth []uint64
		p, r      float64
	}{
		{[]uint64{1, 2}, []uint64{1, 2}, 1, 1},
		{[]uint64{1, 2, 3, 4}, []uint64{1, 2}, 0.5, 1},
		{[]uint64{1}, []uint64{1, 2}, 1, 0.5},
		{nil, []uint64{1}, 0, 0},
		{nil, nil, 1, 1},
	}
	for i, tc := range cases {
		p, r, f1 := PRF1(tc.id, tc.truth)
		if math.Abs(p-tc.p) > 1e-9 || math.Abs(r-tc.r) > 1e-9 {
			t.Errorf("case %d: p=%v r=%v", i, p, r)
		}
		if tc.p+tc.r > 0 {
			want := 2 * tc.p * tc.r / (tc.p + tc.r)
			if math.Abs(f1-want) > 1e-9 {
				t.Errorf("case %d: f1=%v want %v", i, f1, want)
			}
		}
	}
}

func TestAppShapeMatchesPaper(t *testing.T) {
	apps, _ := evaluatedApps(t)
	if len(apps) != 6 {
		t.Fatalf("apps: %d", len(apps))
	}
	var bsideF1s, chestnutF1s, sysfilterF1s []float64
	for _, a := range apps {
		if a.BSide.Err != nil {
			t.Fatalf("%s: B-Side failed: %v", a.Name, a.BSide.Err)
		}
		if a.Chestnut.Err != nil || a.SysFilter.Err != nil {
			t.Fatalf("%s: baseline failed: %v / %v", a.Name, a.Chestnut.Err, a.SysFilter.Err)
		}

		// §5.1's headline: B-Side has no false negatives; baselines do
		// worse or equal.
		if fn := FalseNegatives(a.BSide.Syscalls, a.Truth); len(fn) != 0 {
			t.Errorf("%s: B-Side false negatives: %v", a.Name, fn)
		}
		sfFN := len(FalseNegatives(a.SysFilter.Syscalls, a.Truth))
		if sfFN == 0 {
			t.Errorf("%s: SysFilter should miss wrapper-carried syscalls", a.Name)
		}

		// Chestnut identifies > 268 (fallback-dominated).
		if len(a.Chestnut.Syscalls) <= 268 {
			t.Errorf("%s: Chestnut identified %d, want > 268", a.Name, len(a.Chestnut.Syscalls))
		}
		// B-Side's set stays close to the truth.
		if len(a.BSide.Syscalls) >= len(a.Chestnut.Syscalls)/2 {
			t.Errorf("%s: B-Side %d too close to Chestnut %d",
				a.Name, len(a.BSide.Syscalls), len(a.Chestnut.Syscalls))
		}

		_, _, f1b := PRF1(a.BSide.Syscalls, a.Truth)
		_, _, f1c := PRF1(a.Chestnut.Syscalls, a.Truth)
		_, _, f1s := PRF1(a.SysFilter.Syscalls, a.Truth)
		bsideF1s = append(bsideF1s, f1b)
		chestnutF1s = append(chestnutF1s, f1c)
		sysfilterF1s = append(sysfilterF1s, f1s)
		if !(f1b > f1s && f1s > f1c) {
			t.Errorf("%s: F1 ordering broken: B-Side %.2f, SysFilter %.2f, Chestnut %.2f",
				a.Name, f1b, f1s, f1c)
		}
	}
	// Average bands (paper: 0.81 / 0.31 / 0.53; we accept the band).
	if avg := mean(bsideF1s); avg < 0.70 || avg > 0.95 {
		t.Errorf("B-Side avg F1 = %.2f outside [0.70, 0.95]", avg)
	}
	if avg := mean(chestnutF1s); avg > 0.45 {
		t.Errorf("Chestnut avg F1 = %.2f, want < 0.45", avg)
	}
	if avg := mean(sysfilterF1s); avg < 0.35 || avg > 0.70 {
		t.Errorf("SysFilter avg F1 = %.2f outside [0.35, 0.70]", avg)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	apps, _ := evaluatedApps(t)
	fig7 := Figure7(apps)
	if !strings.Contains(fig7, "redis") || !strings.Contains(fig7, "FN(B-Side)") {
		t.Errorf("figure 7 output:\n%s", fig7)
	}
	t1 := Table1(apps)
	if !strings.Contains(t1, "B-Side") || !strings.Contains(t1, "avg") {
		t.Errorf("table 1 output:\n%s", t1)
	}
	t3 := Table3(apps)
	if !strings.Contains(t3, "BBs explored") {
		t.Errorf("table 3 output:\n%s", t3)
	}
}

func TestPhaseDetectionOnNginx(t *testing.T) {
	apps, _ := evaluatedApps(t)
	var nginx *AppEval
	for _, a := range apps {
		if a.Name == "nginx" {
			nginx = a
		}
	}
	if nginx == nil {
		t.Fatal("no nginx app")
	}
	ps, err := EvalPhases(nginx)
	if err != nil {
		t.Fatal(err)
	}
	aut := ps.Automaton
	if len(aut.Phases) < 3 {
		t.Fatalf("too few phases: %d", len(aut.Phases))
	}
	// At least one large phase must be stricter than the whole-program
	// set (the paper's 11-15% strictness gain).
	gained := false
	for _, ph := range aut.Phases {
		if ph.CodeSize > 256 && len(ph.Allowed) > 0 && len(ph.Allowed) < ps.TotalSyscalls {
			gained = true
		}
	}
	if !gained {
		t.Error("phase filtering provides no strictness gain")
	}
	out := Table4(ps)
	if !strings.Contains(out, "phase automaton") {
		t.Errorf("table 4 output:\n%s", out)
	}
}
