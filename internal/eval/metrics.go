// Package eval reproduces the paper's evaluation (§5): every table and
// figure has a runner that regenerates its rows over the synthetic
// corpus, plus plain-text renderers that print them in the paper's
// layout. Absolute numbers reflect our substrate; the relationships the
// paper reports (who wins, by what factor, where failures come from)
// are the reproduction target — see EXPERIMENTS.md.
package eval

import (
	"fmt"
	"sort"
	"strings"
)

// PRF1 computes precision, recall and F1 of identified against truth.
func PRF1(identified, truth []uint64) (p, r, f1 float64) {
	if len(identified) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	t := make(map[uint64]bool, len(truth))
	for _, n := range truth {
		t[n] = true
	}
	tp := 0
	for _, n := range identified {
		if t[n] {
			tp++
		}
	}
	if len(identified) > 0 {
		p = float64(tp) / float64(len(identified))
	}
	if len(truth) > 0 {
		r = float64(tp) / float64(len(truth))
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// FalseNegatives lists truth entries missing from identified.
func FalseNegatives(identified, truth []uint64) []uint64 {
	have := make(map[uint64]bool, len(identified))
	for _, n := range identified {
		have[n] = true
	}
	var out []uint64
	for _, n := range truth {
		if !have[n] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union merges sorted syscall sets.
func Union(sets ...[]uint64) []uint64 {
	m := make(map[uint64]bool)
	for _, s := range sets {
		for _, n := range s {
			m[n] = true
		}
	}
	out := make([]uint64, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mean averages a slice.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// renderTable prints rows with aligned columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
