package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/ident"
	"bside/internal/shared"
)

// TestPropertyNoFalseNegativesRandomPrograms is the repository's
// headline property: for randomly parameterized programs, B-Side's
// statically identified set is always a superset of the dynamically
// observed one.
func TestPropertyNoFalseNegativesRandomPrograms(t *testing.T) {
	libc, err := corpus.BuildLibc()
	if err != nil {
		t.Fatal(err)
	}
	libs := map[string]*elff.Binary{"libc.so.6": libc}
	loadLib := func(name string) (*elff.Binary, error) {
		if l, ok := libs[name]; ok {
			return l, nil
		}
		return nil, &notFound{name}
	}

	f := func(seed int64, direct, wrap, stack, handlers, cold uint8, dynamic bool) bool {
		p := corpus.Profile{
			Name:         "prop",
			Kind:         elff.KindStatic,
			HotDirect:    1 + int(direct%12),
			HotWrapper:   int(wrap % 6),
			HotStack:     int(stack % 4),
			Handlers:     int(handlers % 4),
			ColdDirect:   int(cold % 8),
			StackedTruth: 1,
			Filler:       20,
			Seed:         seed,
		}
		if dynamic {
			p.Kind = elff.KindDynamic
			p.HotLibc = 4
			p.ColdLibc = 2
			p.UseLibcWrapper = true
		}
		bin, err := corpus.BuildProgram(p)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		m, err := emu.NewProcess(bin, libs)
		if err != nil {
			t.Logf("load: %v", err)
			return false
		}
		if err := m.Run(2_000_000); err != nil {
			t.Logf("emulate: %v", err)
			return false
		}

		an := shared.NewAnalyzer(loadLib, ident.Config{})
		rep, err := an.Program(bin)
		if err != nil {
			t.Logf("analyze: %v", err)
			return false
		}
		if rep.FailOpen {
			return true // the full table is trivially a superset
		}
		have := make(map[uint64]bool, len(rep.Syscalls))
		for _, n := range rep.Syscalls {
			have[n] = true
		}
		for n := range m.SyscallSet() {
			if !have[n] {
				t.Logf("seed %d: false negative %d", seed, n)
				return false
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

type notFound struct{ name string }

func (e *notFound) Error() string { return "not found: " + e.name }

// TestPropertyCFGEdgeSymmetry checks that every successor edge has the
// matching predecessor edge and vice versa, over random programs.
func TestPropertyCFGEdgeSymmetry(t *testing.T) {
	f := func(seed int64, direct, handlers uint8) bool {
		bin, err := corpus.BuildProgram(corpus.Profile{
			Name: "sym", Kind: elff.KindStatic,
			HotDirect: 1 + int(direct%10), Handlers: int(handlers % 4),
			ColdDirect: 3, Filler: 15, Seed: seed,
		})
		if err != nil {
			return false
		}
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			return false
		}
		for _, blk := range g.SortedBlocks() {
			for _, e := range blk.Succs {
				if e.From != blk {
					return false
				}
				found := false
				for _, p := range e.To.Preds {
					if p.From == blk && p.Kind == e.Kind {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			for _, e := range blk.Preds {
				if e.To != blk {
					return false
				}
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBlocksPartitionCode checks that recovered blocks never
// overlap and all decoded instructions stay inside the code region.
func TestPropertyBlocksPartitionCode(t *testing.T) {
	f := func(seed int64, direct uint8) bool {
		bin, err := corpus.BuildProgram(corpus.Profile{
			Name: "part", Kind: elff.KindStatic,
			HotDirect: 1 + int(direct%10), ColdDirect: 2,
			HotWrapper: 2, Filler: 25, Seed: seed,
		})
		if err != nil {
			return false
		}
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			return false
		}
		blocks := g.SortedBlocks()
		for i, blk := range blocks {
			if !bin.CodeContains(blk.Addr) || blk.End() > bin.Base+bin.CodeSize {
				return false
			}
			if i > 0 && blocks[i-1].End() > blk.Addr {
				return false // overlap
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIdentifiedSubsetOfStaticReach: every identified syscall
// number must appear as an immediate somewhere in the program or its
// libraries (no invented values).
func TestPropertyNoInventedValues(t *testing.T) {
	set, err := corpus.GenerateApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range set.Apps {
		an := shared.NewAnalyzer(set.LoadLib, ident.Config{})
		rep, err := an.Program(app.Bin)
		if err != nil {
			t.Fatal(err)
		}
		// Truth ⊆ identified already checked elsewhere; here: identified
		// values must be < the syscall upper bound and form a sorted,
		// deduplicated list.
		last := int64(-1)
		for _, n := range rep.Syscalls {
			if int64(n) <= last {
				t.Fatalf("%s: unsorted/duplicated %d after %d", app.Profile.Name, n, last)
			}
			last = int64(n)
			if n >= 1024 {
				t.Fatalf("%s: artifact value %d", app.Profile.Name, n)
			}
		}
	}
}
