// Package faults is the test-only fault-injection harness behind the
// crash-containment guarantees: named seams compiled into production
// code at the points where hostile inputs or a failing disk would
// hurt, armed only by tests and the fuzzer's poison-binary legs.
//
// When nothing is armed — every production run — a seam costs one
// atomic pointer load and a nil check. When a test arms a Rule, the
// matching seam panics (to exercise the recovery boundaries in
// internal/guard), returns an injected IO error (to exercise cache
// degradation), or hands back a byte-tampered copy of an ELF image (to
// exercise the malformed-input paths) — letting tests prove that one
// poisoned binary costs exactly one result and nothing else.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Point names one injection seam compiled into production code.
type Point string

const (
	// Stage fires at every pipeline stage boundary, before the stage
	// body runs. Key is "<stage>:<image hash>".
	Stage Point = "stage"
	// IdentUnit fires inside each worker-pool unit of the
	// identification stages — on the worker goroutine, which is what
	// makes it the probe for goroutine-level panic containment. Key is
	// the decimal unit index.
	IdentUnit Point = "ident-unit"
	// CacheRead fires at the top of every durable cache load. Key is
	// "<kind>/<key>". An armed error makes the load behave like a
	// failing disk: counted as an IO error, served as a miss.
	CacheRead Point = "cache-read"
	// CacheWrite fires at the top of every cache store; same key
	// shape. An armed error fails the write like a full or broken
	// cache directory.
	CacheWrite Point = "cache-write"
	// Image fires on every file-backed image entering analysis. Key is
	// the file path; a matching rule's Tamper maps the image bytes to
	// a corrupted copy, simulating a binary damaged in transit.
	Image Point = "image"
)

// Rule arms one fault at one seam.
type Rule struct {
	// Point selects the seam.
	Point Point
	// Match, when non-empty, restricts the rule to keys containing it
	// (a hash, a path fragment, a cache kind). Empty matches every key
	// at the seam.
	Match string
	// Panic makes the seam panic with a recognizable value instead of
	// returning. The containment layer must convert it; an escaped
	// injected panic fails the test process loudly.
	Panic bool
	// Err is returned from IO seams (CacheRead/CacheWrite).
	Err error
	// Tamper, for the Image seam, maps image bytes to a corrupted
	// copy. It must not modify its argument (which may alias a
	// read-only mapping).
	Tamper func([]byte) []byte
}

// armed is the active rule set; nil means every seam is a no-op. Rules
// are swapped wholesale so concurrent Fire calls see a consistent set.
var armed atomic.Pointer[[]Rule]

// armMu serializes Activate/restore pairs (tests may nest them).
var armMu sync.Mutex

// Activate arms rules process-wide and returns a restore func that
// re-arms whatever was active before — use with defer. Tests that arm
// rules must not run in parallel with each other.
func Activate(rules ...Rule) (restore func()) {
	armMu.Lock()
	prev := armed.Load()
	armed.Store(&rules)
	armMu.Unlock()
	return func() {
		armMu.Lock()
		armed.Store(prev)
		armMu.Unlock()
	}
}

// match returns the first armed rule for (point, key), if any.
func match(point Point, key string) *Rule {
	rs := armed.Load()
	if rs == nil {
		return nil
	}
	for i := range *rs {
		r := &(*rs)[i]
		if r.Point == point && (r.Match == "" || strings.Contains(key, r.Match)) {
			return r
		}
	}
	return nil
}

// Fire triggers any armed fault at point for key: a panic rule panics,
// an IO rule returns its error, no matching rule returns nil.
func Fire(point Point, key string) error {
	r := match(point, key)
	if r == nil {
		return nil
	}
	if r.Panic {
		panic(fmt.Sprintf("faults: injected panic at %s (%s)", point, key))
	}
	return r.Err
}

// TamperImage returns a corrupted copy of data when an Image rule
// matches key (and, if the rule is a Panic rule, panics instead); with
// nothing armed it returns data untouched.
func TamperImage(key string, data []byte) []byte {
	r := match(Image, key)
	if r == nil || r.Tamper == nil {
		if r != nil && r.Panic {
			panic(fmt.Sprintf("faults: injected panic at %s (%s)", Image, key))
		}
		return data
	}
	return r.Tamper(data)
}
