package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestUnarmedSeamsAreNoOps(t *testing.T) {
	if err := Fire(Stage, "decode:abc"); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
	data := []byte{1, 2, 3}
	if got := TamperImage("/bin/ls", data); !bytes.Equal(got, data) {
		t.Fatalf("unarmed TamperImage changed data")
	}
}

func TestFireMatchesPointAndKey(t *testing.T) {
	injected := errors.New("disk on fire")
	restore := Activate(
		Rule{Point: CacheRead, Match: "program/", Err: injected},
		Rule{Point: Stage, Match: "deadbeef", Panic: true},
	)
	defer restore()

	if err := Fire(CacheRead, "program/abc123"); !errors.Is(err, injected) {
		t.Errorf("matching rule did not fire: %v", err)
	}
	if err := Fire(CacheRead, "interface/abc123"); err != nil {
		t.Errorf("non-matching key fired: %v", err)
	}
	if err := Fire(CacheWrite, "program/abc123"); err != nil {
		t.Errorf("wrong point fired: %v", err)
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("panic rule did not panic")
			} else if !strings.Contains(r.(string), "injected panic") {
				t.Errorf("unrecognizable panic value: %v", r)
			}
		}()
		_ = Fire(Stage, "identify:deadbeef")
	}()
}

func TestTamperImage(t *testing.T) {
	restore := Activate(Rule{
		Point:  Image,
		Match:  "poison",
		Tamper: func(d []byte) []byte { return d[:len(d)/2] },
	})
	defer restore()

	data := []byte{1, 2, 3, 4}
	if got := TamperImage("/tmp/poison.elf", data); len(got) != 2 {
		t.Errorf("tamper not applied: %v", got)
	}
	if got := TamperImage("/tmp/clean.elf", data); !bytes.Equal(got, data) {
		t.Errorf("non-matching path tampered: %v", got)
	}
}

func TestRestoreReinstatesPreviousRules(t *testing.T) {
	outerErr := errors.New("outer")
	outer := Activate(Rule{Point: CacheRead, Err: outerErr})
	inner := Activate(Rule{Point: CacheWrite, Err: errors.New("inner")})

	if err := Fire(CacheRead, "k"); err != nil {
		t.Errorf("inner set should not have the outer rule: %v", err)
	}
	inner()
	if err := Fire(CacheRead, "k"); !errors.Is(err, outerErr) {
		t.Errorf("outer rules not restored: %v", err)
	}
	outer()
	if err := Fire(CacheRead, "k"); err != nil {
		t.Errorf("full restore left rules armed: %v", err)
	}
}
