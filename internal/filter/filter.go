// Package filter compiles syscall allow-lists — the end product of
// B-Side's analysis — into classic-BPF seccomp filter programs, the
// deployment vehicle the paper targets (§1, §4.7). The compiler emits
// the cBPF subset seccomp accepts (LD of the syscall number, JEQ/JGE
// conditional jumps, RET with an action) and builds a balanced decision
// tree over number ranges, like libseccomp's binary-tree optimization,
// so programs stay within the kernel's instruction limits even for
// large allow-lists.
//
// An interpreter with seccomp's exact execution rules (forward-only
// jumps, bounded length, mandatory terminal return) runs the programs
// in tests and in the enforcement simulator.
package filter

import (
	"errors"
	"fmt"
	"sort"
)

// Action is a seccomp return action.
type Action uint32

// Actions (values mirror the kernel's SECCOMP_RET_* ordering).
const (
	ActionKill  Action = 0x00000000
	ActionErrno Action = 0x00050000
	ActionAllow Action = 0x7FFF0000
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionKill:
		return "kill"
	case ActionErrno:
		return "errno"
	case ActionAllow:
		return "allow"
	}
	return fmt.Sprintf("action(%#x)", uint32(a))
}

// Opcodes: the cBPF subset seccomp filters use.
const (
	opLdNr uint16 = 0x20 // BPF_LD | BPF_W | BPF_ABS (syscall number)
	opJeqK uint16 = 0x15 // BPF_JMP | BPF_JEQ | BPF_K
	opJgeK uint16 = 0x35 // BPF_JMP | BPF_JGE | BPF_K
	opJa   uint16 = 0x05 // BPF_JMP | BPF_JA (32-bit forward trampoline)
	opRetK uint16 = 0x06 // BPF_RET | BPF_K
)

// Insn is one cBPF instruction.
type Insn struct {
	Op uint16
	Jt uint8
	Jf uint8
	K  uint32
}

// String renders the instruction.
func (i Insn) String() string {
	switch i.Op {
	case opLdNr:
		return "ld nr"
	case opJeqK:
		return fmt.Sprintf("jeq #%d jt=%d jf=%d", i.K, i.Jt, i.Jf)
	case opJgeK:
		return fmt.Sprintf("jge #%d jt=%d jf=%d", i.K, i.Jt, i.Jf)
	case opJa:
		return fmt.Sprintf("ja +%d", i.K)
	case opRetK:
		return fmt.Sprintf("ret %s", Action(i.K))
	}
	return fmt.Sprintf("op=%#x k=%d", i.Op, i.K)
}

// Program is a compiled filter.
type Program struct {
	Insns []Insn
	// Default is the action for syscalls outside the allow list.
	Default Action
}

// MaxInsns mirrors the kernel's BPF_MAXINSNS limit.
const MaxInsns = 4096

// Interpreter errors.
var (
	ErrTooLong      = errors.New("filter: program exceeds BPF_MAXINSNS")
	ErrBadJump      = errors.New("filter: jump out of range")
	ErrNoReturn     = errors.New("filter: fell off the end of the program")
	ErrNotValidated = errors.New("filter: program failed validation")
)

// Compile builds a filter allowing exactly the given syscall numbers;
// everything else yields deny. The allow list is folded into maximal
// contiguous ranges first, then a balanced decision tree is emitted
// over the ranges, giving O(log n) evaluation depth.
func Compile(allowed []uint64, deny Action) (*Program, error) {
	if deny == ActionAllow {
		return nil, fmt.Errorf("filter: default action must deny")
	}
	ranges := foldRanges(allowed)
	p := &Program{Default: deny}
	p.emit(Insn{Op: opLdNr})
	// Build the tree; every leaf emits ret allow / ret deny.
	if err := p.tree(ranges); err != nil {
		return nil, err
	}
	if len(p.Insns) > MaxInsns {
		return nil, ErrTooLong
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// span is a closed syscall-number range.
type span struct{ lo, hi uint32 }

func foldRanges(allowed []uint64) []span {
	if len(allowed) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), allowed...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []span
	cur := span{lo: uint32(sorted[0]), hi: uint32(sorted[0])}
	for _, n := range sorted[1:] {
		v := uint32(n)
		if v == cur.hi || v == cur.hi+1 {
			cur.hi = v
			continue
		}
		out = append(out, cur)
		cur = span{lo: v, hi: v}
	}
	return append(out, cur)
}

func (p *Program) emit(i Insn) int {
	p.Insns = append(p.Insns, i)
	return len(p.Insns) - 1
}

// tree emits a balanced comparison tree over the sorted ranges. The
// generated code uses forward-only relative jumps as seccomp requires;
// each subtree is emitted depth-first and jumps are patched afterwards.
func (p *Program) tree(ranges []span) error {
	retAllow := func() { p.emit(Insn{Op: opRetK, K: uint32(ActionAllow)}) }
	retDeny := func() { p.emit(Insn{Op: opRetK, K: uint32(p.Default)}) }

	var build func(lo, hi int) error
	build = func(lo, hi int) error {
		if lo > hi {
			retDeny()
			return nil
		}
		if lo == hi {
			r := ranges[lo]
			if r.lo == r.hi {
				// jeq lo -> allow else deny
				idx := p.emit(Insn{Op: opJeqK, K: r.lo})
				retAllow()
				if err := p.patch(idx, idx+1, idx+2); err != nil {
					return err
				}
				retDeny()
				return nil
			}
			// lo <= nr <= hi: jge lo ? (jge hi+1 ? deny : allow) : deny
			idx1 := p.emit(Insn{Op: opJgeK, K: r.lo})
			idx2 := p.emit(Insn{Op: opJgeK, K: r.hi + 1})
			retAllow()
			retDeny()
			if err := p.patch(idx1, idx1+1, idx2+2); err != nil {
				return err
			}
			return p.patch(idx2, idx2+2, idx2+1)
		}
		mid := (lo + hi + 1) / 2
		// nr >= ranges[mid].lo ? right half : left half. The right
		// half can sit arbitrarily far away, beyond the 8-bit
		// conditional offsets, so route it through a 32-bit BPF_JA
		// trampoline placed right after the conditional.
		idx := p.emit(Insn{Op: opJgeK, K: ranges[mid].lo})
		ja := p.emit(Insn{Op: opJa})
		leftStart := len(p.Insns)
		if err := build(lo, mid-1); err != nil {
			return err
		}
		rightStart := len(p.Insns)
		if err := build(mid, hi); err != nil {
			return err
		}
		if err := p.patch(idx, ja, leftStart); err != nil {
			return err
		}
		p.Insns[ja].K = uint32(rightStart - ja - 1)
		return nil
	}
	return build(0, len(ranges)-1)
}

// patch sets the jump offsets of instruction idx to absolute targets.
func (p *Program) patch(idx, jtAbs, jfAbs int) error {
	jt := jtAbs - idx - 1
	jf := jfAbs - idx - 1
	if jt < 0 || jt > 255 || jf < 0 || jf > 255 {
		return ErrBadJump
	}
	p.Insns[idx].Jt = uint8(jt)
	p.Insns[idx].Jf = uint8(jf)
	return nil
}

// Validate applies seccomp's static checks: bounded length, known
// opcodes, in-range forward jumps, and a return on every path.
func (p *Program) Validate() error {
	n := len(p.Insns)
	if n == 0 || n > MaxInsns {
		return ErrNotValidated
	}
	for i, in := range p.Insns {
		switch in.Op {
		case opLdNr, opRetK:
		case opJeqK, opJgeK:
			if i+1+int(in.Jt) >= n || i+1+int(in.Jf) >= n {
				return fmt.Errorf("%w: insn %d", ErrBadJump, i)
			}
		case opJa:
			if i+1+int(in.K) >= n {
				return fmt.Errorf("%w: insn %d", ErrBadJump, i)
			}
		default:
			return fmt.Errorf("%w: opcode %#x", ErrNotValidated, in.Op)
		}
	}
	if p.Insns[n-1].Op != opRetK {
		return ErrNoReturn
	}
	return nil
}

// Exec runs the filter for a syscall number, with seccomp's execution
// rules.
func (p *Program) Exec(nr uint64) (Action, error) {
	var acc uint32
	pc := 0
	for steps := 0; steps <= len(p.Insns); steps++ {
		if pc >= len(p.Insns) {
			return ActionKill, ErrNoReturn
		}
		in := p.Insns[pc]
		switch in.Op {
		case opLdNr:
			acc = uint32(nr)
			pc++
		case opJeqK:
			if acc == in.K {
				pc += 1 + int(in.Jt)
			} else {
				pc += 1 + int(in.Jf)
			}
		case opJgeK:
			if acc >= in.K {
				pc += 1 + int(in.Jt)
			} else {
				pc += 1 + int(in.Jf)
			}
		case opJa:
			pc += 1 + int(in.K)
		case opRetK:
			return Action(in.K), nil
		default:
			return ActionKill, ErrNotValidated
		}
	}
	return ActionKill, ErrNoReturn
}

// Allows is a convenience wrapper around Exec.
func (p *Program) Allows(nr uint64) bool {
	a, err := p.Exec(nr)
	return err == nil && a == ActionAllow
}
