package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bside/internal/linux"
)

func TestCompileEmpty(t *testing.T) {
	p, err := Compile(nil, ActionErrno)
	if err != nil {
		t.Fatal(err)
	}
	for _, nr := range []uint64{0, 1, 60, 334} {
		if p.Allows(nr) {
			t.Errorf("empty filter allows %d", nr)
		}
	}
}

func TestCompileSingles(t *testing.T) {
	allowed := []uint64{0, 1, 60, 231}
	p, err := Compile(allowed, ActionKill)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{0: true, 1: true, 60: true, 231: true}
	for nr := uint64(0); nr < 400; nr++ {
		if p.Allows(nr) != want[nr] {
			t.Fatalf("nr %d: allows=%v want %v", nr, p.Allows(nr), want[nr])
		}
	}
}

func TestCompileRangeFolding(t *testing.T) {
	// 10..20 contiguous plus islands: the compiler folds ranges.
	var allowed []uint64
	for n := uint64(10); n <= 20; n++ {
		allowed = append(allowed, n)
	}
	allowed = append(allowed, 100, 102, 103, 104, 300)
	p, err := Compile(allowed, ActionErrno)
	if err != nil {
		t.Fatal(err)
	}
	set := map[uint64]bool{}
	for _, n := range allowed {
		set[n] = true
	}
	for nr := uint64(0); nr < 400; nr++ {
		if p.Allows(nr) != set[nr] {
			t.Fatalf("nr %d mismatch", nr)
		}
	}
	// Folding keeps the program small: 11+5 values but only 5 ranges.
	if len(p.Insns) > 40 {
		t.Errorf("program too large: %d insns", len(p.Insns))
	}
}

func TestCompileFullTable(t *testing.T) {
	p, err := Compile(linux.All(), ActionErrno)
	if err != nil {
		t.Fatal(err)
	}
	// The whole table folds into one range: constant-size program.
	if len(p.Insns) > 8 {
		t.Errorf("full-table program should be tiny, got %d insns", len(p.Insns))
	}
	if !p.Allows(0) || !p.Allows(uint64(linux.MaxSyscall)) || p.Allows(uint64(linux.TableSize)) {
		t.Error("full-table filter boundaries wrong")
	}
}

func TestValidateCatchesBrokenPrograms(t *testing.T) {
	p := &Program{Insns: []Insn{{Op: opLdNr}}}
	if err := p.Validate(); err == nil {
		t.Error("missing return not caught")
	}
	p = &Program{Insns: []Insn{{Op: opJeqK, Jt: 200, Jf: 200, K: 1}, {Op: opRetK}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range jump not caught")
	}
	p = &Program{Insns: []Insn{{Op: 0x99}, {Op: opRetK}}}
	if err := p.Validate(); err == nil {
		t.Error("bad opcode not caught")
	}
	p = &Program{}
	if err := p.Validate(); err == nil {
		t.Error("empty program not caught")
	}
}

// TestPropertyCompileExecEquivalence: Exec(Compile(S), n) == (n in S)
// for random allow sets.
func TestPropertyCompileExecEquivalence(t *testing.T) {
	f := func(raw []uint16) bool {
		set := map[uint64]bool{}
		var allowed []uint64
		for _, v := range raw {
			n := uint64(v % 512)
			if !set[n] {
				set[n] = true
				allowed = append(allowed, n)
			}
		}
		p, err := Compile(allowed, ActionErrno)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		for nr := uint64(0); nr < 520; nr++ {
			if p.Allows(nr) != set[nr] {
				t.Logf("nr %d: got %v want %v (set size %d)", nr, p.Allows(nr), set[nr], len(allowed))
				return false
			}
		}
		return true
	}
	conf := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, conf); err != nil {
		t.Fatal(err)
	}
}

func TestActionsAndStrings(t *testing.T) {
	if ActionAllow.String() != "allow" || ActionKill.String() != "kill" || ActionErrno.String() != "errno" {
		t.Error("action strings")
	}
	if _, err := Compile([]uint64{1}, ActionAllow); err == nil {
		t.Error("allow as default must be rejected")
	}
	p, _ := Compile([]uint64{1, 5, 9}, ActionErrno)
	for _, in := range p.Insns {
		if in.String() == "" {
			t.Error("empty insn string")
		}
	}
	if a, err := p.Exec(5); err != nil || a != ActionAllow {
		t.Errorf("exec: %v %v", a, err)
	}
	if a, err := p.Exec(6); err != nil || a != ActionErrno {
		t.Errorf("exec deny: %v %v", a, err)
	}
}

func TestDeepTreeStaysInJumpRange(t *testing.T) {
	// Many isolated singletons force a deep tree; all jumps must stay
	// within the 8-bit range and the program within limits.
	var allowed []uint64
	for n := uint64(0); n < 335; n += 2 {
		allowed = append(allowed, n)
	}
	p, err := Compile(allowed, ActionErrno)
	if err != nil {
		t.Fatal(err)
	}
	for nr := uint64(0); nr < 340; nr++ {
		want := nr%2 == 0 && nr < 335
		if p.Allows(nr) != want {
			t.Fatalf("nr %d mismatch", nr)
		}
	}
}
