// Package fuzzer turns B-Side's headline guarantee — every syscall a
// program can make at runtime is in the statically identified set —
// into a continuously checked property over randomized inputs.
//
// A seeded generator (Gen) composes the corpus's building blocks —
// wrapper chains of random depth, indirect calls through tables and
// globals, random DT_NEEDED library graphs, static/PIE/static-PIE
// binary kinds, dead-code syscall sites — into valid ELF binaries far
// outside the six hand-built application profiles. An Oracle then
// executes each binary under the emulator for ground truth and asserts
// three properties:
//
//   - soundness: the emulator-observed syscall set is a subset of the
//     identified set (or the analysis honestly failed open);
//   - invariance: analysis results are byte-identical across
//     intra-binary worker counts, per-function memoization on vs. off,
//     cache cold vs. warm runs, the cache's in-process memory tier on
//     vs. off, compact vs. legacy (version-1 pretty-printed) envelope
//     reads, and the direct vs. batch public API paths;
//   - baseline sanity: the Chestnut and SysFilter reimplementations
//     fail only in their documented modes (static images, missing
//     unwind metadata).
//
// A failing seed can be reduced with Shrink, which bisects the
// generating profile to a minimal still-failing reproducer and emits it
// as a JSON repro file suitable for checking in as a regression case
// (see testdata/regressions). The `bside fuzz` subcommand and the
// nightly CI job drive the same Gen/Oracle pair, so a violation found
// anywhere is reproducible everywhere from its seed alone.
package fuzzer

import (
	"fmt"
	"math/rand"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// Case is one generated fuzz input: a corpus profile derived
// deterministically from a seed. Building the profile yields
// byte-identical binaries on every run and host.
type Case struct {
	Seed    int64          `json:"seed"`
	Profile corpus.Profile `json:"profile"`
}

// Gen derives the fuzz case for a seed. The mapping is pure: the same
// seed always yields the same profile (and, through the deterministic
// builder, the same binary image). Generated profiles stay inside the
// analyzer's sound envelope — no engineered failure classes — so every
// verdict dimension is expected to hold; a violation is a real bug in
// the generator, the analyzer, or the oracle itself.
func Gen(seed int64) Case {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0x5EED))
	p := corpus.Profile{
		Name: fmt.Sprintf("fuzz-%d", seed),
		Seed: seed,
	}

	// Binary kind: static, dynamic (x2 weight), or static-PIE.
	switch rng.Intn(4) {
	case 0:
		p.Kind = elff.KindStatic
	case 3:
		// Static-PIE oddball: ET_DYN with an entry point, no imports.
		p.Kind = elff.KindShared
		p.StaticPIE = true
		p.HasUnwind = rng.Intn(2) == 0
	default:
		p.Kind = elff.KindDynamic
		p.HasUnwind = rng.Intn(2) == 0
	}

	// Hot-path composition.
	p.HotDirect = 1 + rng.Intn(10)
	p.HotWrapper = rng.Intn(5)
	p.HotStack = rng.Intn(3)
	p.Handlers = rng.Intn(3)
	p.TableHandlers = rng.Intn(3)
	// Table placement: anonymous data, a read-only section, a RELRO
	// section with RELATIVE relocs, or writable .data — the provenance
	// layer must narrow the first three kinds of sites and must NOT
	// trust the fourth. Packing shifts slots off 8-byte alignment.
	p.TableSection = []string{"", "rodata", "relro", "data"}[rng.Intn(4)]
	p.TablePacked = rng.Intn(2) == 0
	if rng.Intn(2) == 0 {
		p.SigDecoys = rng.Intn(3)
	}
	// Cold handlers need at least one indirect site to be wired into the
	// CFG; the synthesizer normalizes unsatisfiable combinations away,
	// so only draw them when they can exist.
	if p.Handlers+p.TableHandlers+p.SigDecoys > 0 {
		p.ColdHandlers = rng.Intn(3)
	}
	p.WrapperDepth = rng.Intn(5)
	if rng.Intn(4) == 0 {
		// Occasional deep-search site, shallow enough to stay cheap.
		p.HotDeep = 1
		p.DeepBlocks = 6 + rng.Intn(10)
	}

	// Dead code (statically reachable, dynamically dormant).
	p.ColdDirect = rng.Intn(6)
	p.ColdWrapper = rng.Intn(3)

	p.StackedTruth = rng.Intn(3)
	p.DeniedVals = rng.Intn(3)
	p.Filler = 8 + rng.Intn(40)

	if p.Kind == elff.KindDynamic {
		p.HotLibc = rng.Intn(8)
		p.ColdLibc = rng.Intn(4)
		p.ExtraLibs = rng.Intn(4)
		p.UseLibcWrapper = rng.Intn(3) > 0
		// Random DT_NEEDED graph: linking a graph lib pulls its whole
		// dependency DAG into the load closure.
		for i, n := 0, rng.Intn(3); i < n; i++ {
			p.GraphLibs = append(p.GraphLibs, rng.Intn(corpus.NumGraphLibs))
		}
	}
	return Case{Seed: seed, Profile: p}
}
