package fuzzer

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bside/internal/corpus"
)

// newOracle builds an oracle over a fresh universe in a test temp dir.
func newOracle(t testing.TB, opts Options) *Oracle {
	t.Helper()
	dir := t.TempDir()
	uni, err := NewUniverse(filepath.Join(dir, "libs"))
	if err != nil {
		t.Fatal(err)
	}
	opts.Dir = dir
	opts.Universe = uni
	o, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// oracleSeeds is the fixed seed range the checked-in harness covers on
// every `go test` run (the acceptance floor is 50).
const oracleSeeds = 50

// TestOracleFixedSeeds is the harness's workhorse: 50 fixed seeds, all
// three oracle dimensions, full determinism. Every seed must pass, the
// generator must cover all three binary kinds, and re-running a seed
// must reproduce the identical binary image and verdict bytes.
func TestOracleFixedSeeds(t *testing.T) {
	o := newOracle(t, Options{})
	kinds := map[string]int{}
	for seed := int64(1); seed <= oracleSeeds; seed++ {
		c := Gen(seed)
		v := o.Check(c)
		if !v.OK() {
			t.Errorf("seed %d (%s): oracle violation: err=%q violations=%v",
				seed, v.Kind, v.Err, v.Violations)
			continue
		}
		kinds[v.Kind]++
		if len(v.Truth) == 0 {
			t.Errorf("seed %d: empty ground truth", seed)
		}

		if seed%10 != 0 {
			continue
		}
		// Determinism: same seed → same profile, same image bytes,
		// same verdict bytes.
		again := Gen(seed)
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("seed %d: Gen is not deterministic", seed)
		}
		bin, err := corpus.BuildProgram(again.Profile)
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}
		if bin.Hash != v.ImageSHA256 {
			t.Fatalf("seed %d: image hash drifted: %s vs %s", seed, bin.Hash, v.ImageSHA256)
		}
		v2 := o.Check(again)
		j1, _ := json.Marshal(v)
		j2, _ := json.Marshal(v2)
		if string(j1) != string(j2) {
			t.Fatalf("seed %d: verdict drifted across runs:\n%s\n%s", seed, j1, j2)
		}
	}
	for _, kind := range []string{"static", "dynamic", "static-pie"} {
		if kinds[kind] == 0 {
			t.Errorf("no %s case in %d seeds — generator lost a kind", kind, oracleSeeds)
		}
	}
}

// TestOracleCatchesUnsoundAnalyzer injects the bug class the oracle
// exists for: an analyzer that silently loses a syscall the program
// actually makes. Every program exits via syscall 60, so dropping 60
// from the identified set must trip the soundness dimension.
func TestOracleCatchesUnsoundAnalyzer(t *testing.T) {
	o := newOracle(t, Options{
		Workers: []int{1},
		Tamper: func(_ string, syscalls []uint64) []uint64 {
			out := syscalls[:0]
			for _, n := range syscalls {
				if n != 60 {
					out = append(out, n)
				}
			}
			return out
		},
	})
	v := o.Check(Gen(3))
	if v.OK() || v.Sound {
		t.Fatalf("dropped runtime syscall not caught: %+v", v)
	}
	found := false
	for _, viol := range v.Violations {
		if strings.Contains(viol, "soundness") && strings.Contains(viol, "60") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing soundness violation naming syscall 60: %v", v.Violations)
	}
	// Invariance must not be blamed: every leg was tampered equally.
	if !v.Invariant {
		t.Fatalf("soundness bug misattributed to invariance: %v", v.Violations)
	}
}

// TestOracleCatchesResultDrift injects scheduling-dependent results: a
// tweak that changes the answer only at one worker count must trip the
// invariance dimension while leaving soundness intact.
func TestOracleCatchesResultDrift(t *testing.T) {
	o := newOracle(t, Options{
		Tamper: func(leg string, syscalls []uint64) []uint64 {
			if leg == "workers=8" {
				return append(syscalls, 999)
			}
			return syscalls
		},
	})
	v := o.Check(Gen(5))
	if v.OK() || v.Invariant {
		t.Fatalf("worker-count drift not caught: %+v", v)
	}
	if !v.Sound {
		t.Fatalf("drift misattributed to soundness: %v", v.Violations)
	}
	found := false
	for _, viol := range v.Violations {
		if strings.Contains(viol, "workers=8") && strings.Contains(viol, "drifted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing drift violation naming the leg: %v", v.Violations)
	}
}

// TestRegressionRepros replays every checked-in shrunk reproducer.
// These are promoted fuzz findings (and guard shapes); each must pass
// the full oracle on the current analyzer.
func TestRegressionRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in regression repros")
	}
	o := newOracle(t, Options{})
	for _, path := range paths {
		c, err := LoadRepro(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		v := o.Check(c)
		if !v.OK() {
			t.Errorf("%s: regression resurfaced: err=%q violations=%v",
				filepath.Base(path), v.Err, v.Violations)
		}
	}
}
