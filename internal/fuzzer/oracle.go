package fuzzer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bside"
	"bside/internal/baseline"
	"bside/internal/cache"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/eval"
	"bside/internal/faults"
	"bside/internal/serve"
	"bside/internal/sweep"
)

// Verdict is the oracle's judgement of one case — the JSON-line record
// `bside fuzz` emits per seed. Everything needed to reproduce is in the
// seed; everything needed to triage without reproducing is in the rest.
type Verdict struct {
	Seed int64  `json:"seed"`
	Name string `json:"name"`
	// Kind is the built binary's ELF kind, with static-PIE called out.
	Kind string `json:"kind"`
	// ImageSHA256 is the hash of the built ELF image: the determinism
	// witness (same seed must yield the same hash anywhere).
	ImageSHA256 string `json:"image_sha256"`
	// Truth is the emulator-observed syscall set, sorted.
	Truth []uint64 `json:"truth"`
	// Identified is B-Side's result on the first analysis leg (resolver
	// at its default layers).
	Identified []uint64 `json:"identified"`
	FailOpen   bool     `json:"fail_open,omitempty"`
	Wrappers   int      `json:"wrappers"`
	// ResolverOff is the reference leg's identified set with the
	// indirect-call resolver disabled — the pre-resolver
	// over-approximation. It is checked for soundness against Truth and
	// must be a superset of Identified (the resolver may only shrink).
	ResolverOff []uint64 `json:"resolver_off,omitempty"`
	// Precision quantifies the resolver's effect on this case; nil when
	// either leg failed open or failed outright (set sizes would not be
	// comparable).
	Precision *Precision `json:"precision,omitempty"`

	// The three oracle dimensions.
	Sound       bool `json:"sound"`
	Invariant   bool `json:"invariant"`
	BaselinesOK bool `json:"baselines_ok"`

	// Violations explains every failed dimension, one entry per fault.
	Violations []string `json:"violations,omitempty"`
	// Err records an infrastructure failure (generator, emulator, or
	// analysis error) that prevented a full verdict.
	Err string `json:"error,omitempty"`
}

// Precision is the per-case identified-set-size record: how much the
// layered resolver shrank the set, and how much over-approximation
// remains against the emulator truth. Aggregated over a fixed seed
// corpus this is the precision metric the bench gate tracks.
type Precision struct {
	// TruthCount is |emulator-observed set|.
	TruthCount int `json:"truth_count"`
	// IdentifiedCount is |identified| with the resolver at its default.
	IdentifiedCount int `json:"identified_count"`
	// ResolverOffCount is |identified| with the resolver disabled.
	ResolverOffCount int `json:"resolver_off_count"`
	// Shrink is ResolverOffCount - IdentifiedCount: syscalls the
	// resolver proved unreachable (>= 0 by the shrink-only invariant).
	Shrink int `json:"shrink"`
	// Excess is IdentifiedCount - TruthCount: the remaining
	// over-approximation (>= 0 by the soundness invariant).
	Excess int `json:"excess"`
}

// OK reports whether the case passed every oracle dimension.
func (v *Verdict) OK() bool {
	return v.Err == "" && v.Sound && v.Invariant && v.BaselinesOK && len(v.Violations) == 0
}

// Options configures an Oracle.
type Options struct {
	// Dir is the scratch directory for binaries and per-seed caches.
	Dir string
	// Universe supplies the shared libraries; required.
	Universe *Universe
	// EmuBudget bounds the ground-truth emulation. Zero values get
	// defaults (DefaultMaxSteps, a 4096-entry trace cap).
	EmuBudget emu.Budget
	// Workers lists the intra-binary worker counts of the invariance
	// matrix; defaults to 1, 4, 8.
	Workers []int
	// Tamper, when set, rewrites each analysis leg's identified set
	// before fingerprinting — fault injection for the harness's own
	// tests (a deliberately broken "analyzer" must be caught). Nil in
	// real runs.
	Tamper func(leg string, syscalls []uint64) []uint64
}

// Oracle checks fuzz cases against the soundness, invariance and
// baseline-sanity properties. Safe for sequential reuse across many
// cases; per-case scratch state is cleaned up after each Check.
type Oracle struct {
	opts Options
}

// New builds an Oracle.
func New(opts Options) (*Oracle, error) {
	if opts.Dir == "" {
		return nil, errors.New("fuzzer: Options.Dir is required")
	}
	if opts.Universe == nil {
		return nil, errors.New("fuzzer: Options.Universe is required")
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1, 4, 8}
	}
	if opts.EmuBudget.MaxTrace == 0 {
		opts.EmuBudget.MaxTrace = 4096
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Oracle{opts: opts}, nil
}

// fingerprint is the byte-compared essence of one analysis result.
// Timings and cache provenance are deliberately absent: they may vary
// across legs; nothing else may.
type fingerprint struct {
	Syscalls []uint64 `json:"syscalls"`
	FailOpen bool     `json:"fail_open"`
	Wrappers int      `json:"wrappers"`
	Imports  []string `json:"imports"`
}

// Check builds the case's binary, derives emulator ground truth, runs
// the analysis-leg matrix, and returns the verdict.
func (o *Oracle) Check(c Case) *Verdict {
	v := &Verdict{Seed: c.Seed, Name: c.Profile.Name, Kind: kindString(c.Profile)}

	bin, err := corpus.BuildProgram(c.Profile)
	if err != nil {
		v.Err = "build: " + err.Error()
		return v
	}
	v.ImageSHA256 = bin.Hash

	binPath := filepath.Join(o.opts.Dir, fmt.Sprintf("bin-%d", c.Seed))
	if err := bin.WriteFile(binPath); err != nil {
		v.Err = "write: " + err.Error()
		return v
	}
	defer os.Remove(binPath)

	// Ground truth: execute for real under the emulator.
	m, err := emu.NewProcess(bin, o.opts.Universe.Set.Libs)
	if err != nil {
		v.Err = "load: " + err.Error()
		return v
	}
	if err := m.RunBudget(o.opts.EmuBudget); err != nil {
		v.Err = "emulate: " + err.Error()
		return v
	}
	if !m.Exited {
		v.Err = "emulate: did not exit"
		return v
	}
	v.Truth = sortedSet(m.SyscallSet())

	// Resolver-off reference leg, deliberately OUTSIDE the invariance
	// matrix: with the indirect-call resolver disabled the identified
	// set legitimately differs from the matrix legs (it is the
	// pre-resolver over-approximation). It anchors three checks below —
	// truth ⊆ off (the old behavior stays sound), on ⊆ off (the
	// resolver only ever shrinks), and the sweep legs' scanner
	// containment (a scan-resolved value the resolver pruned must still
	// be inside the over-approximation).
	var offFP *fingerprint
	offRes, offErr := bside.NewAnalyzer(bside.Options{
		LibraryDir:     o.opts.Universe.Dir,
		IntraWorkers:   1,
		ResolverLayers: -1,
	}).AnalyzeFile(binPath)
	if offErr != nil {
		v.Violations = append(v.Violations, "resolver-off: analysis failed: "+offErr.Error())
	} else {
		offFP = o.fingerprintOf("resolver-off", offRes)
		v.ResolverOff = offFP.Syscalls
	}
	offHas := func(n uint64) bool {
		if offFP == nil || offFP.FailOpen {
			return true // effective set is unknown or the full table
		}
		i := sort.Search(len(offFP.Syscalls), func(i int) bool { return offFP.Syscalls[i] >= n })
		return i < len(offFP.Syscalls) && offFP.Syscalls[i] == n
	}

	// Poisoned twin for the crash-containment legs: the same program
	// with one flipped code byte, so it carries a distinct image hash to
	// key injected faults on while sharing the real binary's shape. Its
	// own analysis result never matters — the legs below sabotage it on
	// purpose and check the neighbor.
	poisonSpec := bin.Spec()
	poisonSpec.Blob = append([]byte(nil), poisonSpec.Blob...)
	poisonSpec.Blob[len(poisonSpec.Blob)/2] ^= 0xFF
	poisonImg, err := elff.Write(poisonSpec)
	if err != nil {
		v.Err = "poison build: " + err.Error()
		return v
	}
	poisonPath := filepath.Join(o.opts.Dir, fmt.Sprintf("poison-%d", c.Seed))
	if err := os.WriteFile(poisonPath, poisonImg, 0o755); err != nil {
		v.Err = "poison write: " + err.Error()
		return v
	}
	defer os.Remove(poisonPath)
	poisonBin, err := elff.Read(poisonImg)
	if err != nil {
		v.Err = "poison read: " + err.Error()
		return v
	}
	poisonHash := poisonBin.Hash

	// The analysis-leg matrix. Every leg must produce a byte-identical
	// fingerprint; the first leg doubles as the soundness subject.
	cacheDir := filepath.Join(o.opts.Dir, fmt.Sprintf("cache-%d", c.Seed))
	defer os.RemoveAll(cacheDir)

	type leg struct {
		name string
		run  func() (*bside.Analysis, error)
	}
	analyzer := func(workers int, cacheDir string) *bside.Analyzer {
		return bside.NewAnalyzer(bside.Options{
			LibraryDir:   o.opts.Universe.Dir,
			IntraWorkers: workers,
			CacheDir:     cacheDir,
		})
	}
	var legs []leg
	for _, w := range o.opts.Workers {
		legs = append(legs, leg{fmt.Sprintf("workers=%d", w), func() (*bside.Analysis, error) {
			return analyzer(w, "").AnalyzeFile(binPath)
		}})
	}
	legs = append(legs,
		// Memoization axis: the per-function summary memo is process-wide
		// and already populated by the legs above, so this leg compares a
		// memo-free recomputation against memo-served results — any
		// divergence is an unsound memo key or an over-eager containment
		// gate.
		leg{"memo-off", func() (*bside.Analysis, error) {
			return bside.NewAnalyzer(bside.Options{
				LibraryDir:      o.opts.Universe.Dir,
				IntraWorkers:    1,
				DisableFuncMemo: true,
			}).AnalyzeFile(binPath)
		}},
		leg{"cache-cold", func() (*bside.Analysis, error) {
			return analyzer(1, cacheDir).AnalyzeFile(binPath)
		}},
		leg{"cache-warm", func() (*bside.Analysis, error) {
			res, err := analyzer(1, cacheDir).AnalyzeFile(binPath)
			if err == nil && !res.Cached {
				return nil, errors.New("warm run not served from the cache")
			}
			return res, err
		}},
		// Frontend-invariance axis, cache side: the in-process memory
		// tier and the envelope codec must be invisible in results. The
		// nomem leg re-reads the warm entries from disk with the memory
		// tier off; the legacy leg first rewrites every envelope into
		// the pretty-printed version-1 format of earlier releases and
		// requires the compact-codec reader to serve them identically.
		leg{"cache-nomem", func() (*bside.Analysis, error) {
			res, err := bside.NewAnalyzer(bside.Options{
				LibraryDir:        o.opts.Universe.Dir,
				IntraWorkers:      1,
				CacheDir:          cacheDir,
				DisableMemoryTier: true,
			}).AnalyzeFile(binPath)
			if err == nil && !res.Cached {
				return nil, errors.New("memory-tier-off warm run not served from the cache")
			}
			return res, err
		}},
		leg{"cache-legacy", func() (*bside.Analysis, error) {
			if err := downgradeCacheEnvelopes(cacheDir); err != nil {
				return nil, err
			}
			res, err := bside.NewAnalyzer(bside.Options{
				LibraryDir:        o.opts.Universe.Dir,
				IntraWorkers:      1,
				CacheDir:          cacheDir,
				DisableMemoryTier: true,
			}).AnalyzeFile(binPath)
			if err == nil && !res.Cached {
				return nil, errors.New("legacy-envelope warm run not served from the cache")
			}
			return res, err
		}},
		// Pack-tier axis: compacting the loose entries (by now all in
		// the legacy envelope format, so this leg also covers legacy
		// absorption) into a memory-mapped pack must be invisible in
		// results — a warm run over the pack is byte-identical to every
		// other leg, and the hit provably came from the pack tier.
		leg{"cache-pack", func() (*bside.Analysis, error) {
			st, err := cache.Open(cacheDir)
			if err != nil {
				return nil, err
			}
			if cs, err := st.Compact(); err != nil {
				return nil, err
			} else if cs.Packed == 0 {
				return nil, errors.New("compaction packed nothing")
			}
			a, err := bside.NewAnalyzerErr(bside.Options{
				LibraryDir:        o.opts.Universe.Dir,
				IntraWorkers:      1,
				CacheDir:          cacheDir,
				DisableMemoryTier: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := a.AnalyzeFile(binPath)
			if err == nil {
				if !res.Cached {
					return nil, errors.New("packed warm run not served from the cache")
				}
				if a.CacheStats().PackHits == 0 {
					return nil, errors.New("packed warm run did not hit the pack tier")
				}
			}
			return res, err
		}},
		// Corruption axis: a damaged pack (one flipped bit, checksum
		// broken) must be rejected wholesale — the analyzer recomputes
		// from scratch and still produces the identical fingerprint; it
		// must never ghost-serve bytes out of a corrupt mapping. The
		// recompute re-stores loose entries as a side effect.
		leg{"cache-pack-corrupt", func() (*bside.Analysis, error) {
			st, err := cache.Open(cacheDir)
			if err != nil {
				return nil, err
			}
			packs := st.Packs()
			if len(packs) == 0 {
				return nil, errors.New("no pack to corrupt")
			}
			data, err := os.ReadFile(packs[0])
			if err != nil {
				return nil, err
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(packs[0], data, 0o644); err != nil {
				return nil, err
			}
			a, err := bside.NewAnalyzerErr(bside.Options{
				LibraryDir:        o.opts.Universe.Dir,
				IntraWorkers:      1,
				CacheDir:          cacheDir,
				DisableMemoryTier: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := a.AnalyzeFile(binPath)
			if err == nil && res.Cached {
				return nil, errors.New("corrupt pack still served a cached result")
			}
			return res, err
		}},
		leg{"batch", func() (*bside.Analysis, error) {
			results, err := analyzer(1, "").AnalyzeAll([]string{binPath}, bside.BatchOptions{})
			if err != nil {
				return nil, err
			}
			return results[0], results[0].Err
		}},
		// Crash-containment axis: arm a panic keyed to the poisoned twin's
		// hash and analyze twin and real binary in one batch. The twin's
		// slot must carry a structured PanicError; the real binary's slot
		// — this leg's return value, byte-compared against every other
		// leg — must be untouched. A peer's crash may cost its own
		// result, never a neighbor's bytes.
		leg{"batch-poison", func() (*bside.Analysis, error) {
			restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: poisonHash, Panic: true})
			defer restore()
			results, err := analyzer(1, "").AnalyzeAll([]string{poisonPath, binPath}, bside.BatchOptions{Jobs: 2})
			if err != nil {
				return nil, err
			}
			pe, ok := bside.IsPanic(results[0].Err)
			if !ok {
				return nil, fmt.Errorf("poisoned slot did not contain a PanicError: %v", results[0].Err)
			}
			if pe.Hash != poisonHash {
				return nil, fmt.Errorf("PanicError blames hash %q, want %q", pe.Hash, poisonHash)
			}
			return results[1], results[1].Err
		}},
		// Same containment through the fleet path: the sweep books the
		// poisoned binary as a phased "panic" failure and keeps moving;
		// the clean binary's line is this leg's fingerprint subject.
		leg{"sweep-poison", func() (*bside.Analysis, error) {
			treeDir := filepath.Join(o.opts.Dir, fmt.Sprintf("sweep-poison-%d", c.Seed))
			if err := os.MkdirAll(treeDir, 0o755); err != nil {
				return nil, err
			}
			defer os.RemoveAll(treeDir)
			img, err := os.ReadFile(binPath)
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(filepath.Join(treeDir, "bin"), img, 0o755); err != nil {
				return nil, err
			}
			if err := os.WriteFile(filepath.Join(treeDir, "poison"), poisonImg, 0o755); err != nil {
				return nil, err
			}
			restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: poisonHash, Panic: true})
			defer restore()
			var clean, poisoned *sweep.Result
			sum, err := sweep.Run(context.Background(), treeDir, sweep.Options{
				Analyzer: bside.NewAnalyzer(bside.Options{
					LibraryDir:   o.opts.Universe.Dir,
					IntraWorkers: 1,
				}),
				Jobs: 2,
				OnResult: func(r *sweep.Result) {
					switch filepath.Base(r.Path) {
					case "bin":
						clean = r
					case "poison":
						poisoned = r
					}
				},
			})
			if err != nil {
				return nil, err
			}
			if sum.Analyzed != 1 || sum.Failed != 1 || sum.FailurePhases["panic"] != 1 {
				return nil, fmt.Errorf("sweep-poison accounting: analyzed=%d failed=%d phases=%v",
					sum.Analyzed, sum.Failed, sum.FailurePhases)
			}
			if poisoned == nil || poisoned.Phase != "panic" {
				return nil, fmt.Errorf("poisoned line not booked as a panic: %+v", poisoned)
			}
			if clean == nil || clean.Error != "" || clean.Analysis == nil {
				return nil, fmt.Errorf("clean line damaged by the poisoned peer: %+v", clean)
			}
			return clean.Analysis, nil
		}},
		// Tamper axis: bytes changed between disk and parse (bit rot, a
		// hostile middlebox) must surface as a malformed-image rejection
		// — never a panic, and never drift in the neighbor's result.
		leg{"batch-tamper", func() (*bside.Analysis, error) {
			restore := faults.Activate(faults.Rule{
				Point: faults.Image,
				Match: filepath.Base(poisonPath),
				Tamper: func(d []byte) []byte {
					if len(d) > 60 {
						return d[:60] // shorter than an ELF header
					}
					return d
				},
			})
			defer restore()
			results, err := analyzer(1, "").AnalyzeAll([]string{poisonPath, binPath}, bside.BatchOptions{Jobs: 2})
			if err != nil {
				return nil, err
			}
			if _, ok := bside.IsPanic(results[0].Err); ok {
				return nil, fmt.Errorf("tampered image panicked instead of failing structured: %v", results[0].Err)
			}
			if !errors.Is(results[0].Err, bside.ErrMalformed) {
				return nil, fmt.Errorf("tampered image not rejected as malformed: %v", results[0].Err)
			}
			return results[1], results[1].Err
		}},
		// Fleet axis: the sweep harness must be a transparent carrier
		// too — same result through the tree walker, with the
		// differential scanner contained (every scan-resolved syscall
		// inside the resolver-off over-approximation; the scanner reads
		// dead decoy code the resolver legitimately prunes from the
		// identified set) — on both image frontends, so an mmap-vs-read
		// difference anywhere in the pipeline shows up as leg drift.
		leg{"sweep", o.sweepRun(c.Seed, binPath, false, offHas)},
		leg{"sweep-nommap", o.sweepRun(c.Seed, binPath, true, offHas)},
		// Service axis: the HTTP frontend must be a transparent carrier.
		// The leg uploads the image through a real (in-process) server
		// and requires the response body to be byte-identical to the
		// canonical rendering of a direct library analysis — any
		// divergence is serve-side state leaking into results.
		leg{"serve", func() (*bside.Analysis, error) {
			img, err := os.ReadFile(binPath)
			if err != nil {
				return nil, err
			}
			a := analyzer(1, "")
			direct, err := a.AnalyzeBytes(img)
			if err != nil {
				return nil, err
			}
			ts := httptest.NewServer(serve.New(serve.Config{Backend: a}).Handler())
			defer ts.Close()
			resp, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(img))
			if err != nil {
				return nil, err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("serve: status %d: %s", resp.StatusCode, body)
			}
			if want := serve.Render(direct); !bytes.Equal(body, want) {
				return nil, fmt.Errorf("serve: response drifted from direct analysis: %s vs %s", body, want)
			}
			return direct, nil
		}},
	)

	var baseFP []byte
	var baseLeg string
	var first *fingerprint
	v.Invariant = true
	for _, l := range legs {
		res, err := l.run()
		if err != nil {
			v.Violations = append(v.Violations, fmt.Sprintf("%s: analysis failed: %v", l.name, err))
			v.Invariant = false
			continue
		}
		fp := o.fingerprintOf(l.name, res)
		raw, err := json.Marshal(fp)
		if err != nil {
			v.Err = "fingerprint: " + err.Error()
			return v
		}
		if baseFP == nil {
			// The baseline is the first leg that *succeeded* — name it
			// accurately in drift reports.
			baseFP, baseLeg, first = raw, l.name, fp
			continue
		}
		if string(raw) != string(baseFP) {
			v.Invariant = false
			v.Violations = append(v.Violations, fmt.Sprintf(
				"%s: result drifted from %s: %s vs %s", l.name, baseLeg, raw, baseFP))
		}
	}
	if first == nil {
		v.Err = "no analysis leg succeeded"
		return v
	}
	v.Identified = first.Syscalls
	v.FailOpen = first.FailOpen
	v.Wrappers = first.Wrappers

	// Soundness: truth ⊆ identified, unless the analysis honestly
	// failed open (the effective set is then the full table).
	v.Sound = true
	if !first.FailOpen {
		have := make(map[uint64]bool, len(first.Syscalls))
		for _, n := range first.Syscalls {
			have[n] = true
		}
		for _, n := range v.Truth {
			if !have[n] {
				v.Sound = false
				v.Violations = append(v.Violations, fmt.Sprintf(
					"soundness: syscall %d observed at runtime but not identified", n))
			}
		}
	}

	// The resolver-off reference must be sound on its own (the layered
	// resolver is not allowed to paper over a regression in the base
	// analysis), and the resolver must be shrink-only: anything
	// identified with it on must also be identified with it off.
	if offFP != nil {
		if !offFP.FailOpen {
			for _, n := range v.Truth {
				if !offHas(n) {
					v.Sound = false
					v.Violations = append(v.Violations, fmt.Sprintf(
						"resolver-off soundness: syscall %d observed at runtime but not identified", n))
				}
			}
			if !first.FailOpen {
				for _, n := range first.Syscalls {
					if !offHas(n) {
						v.Sound = false
						v.Violations = append(v.Violations, fmt.Sprintf(
							"shrink-only: syscall %d identified with the resolver on but not off", n))
					}
				}
				v.Precision = &Precision{
					TruthCount:       len(v.Truth),
					IdentifiedCount:  len(first.Syscalls),
					ResolverOffCount: len(offFP.Syscalls),
					Shrink:           len(offFP.Syscalls) - len(first.Syscalls),
					Excess:           len(first.Syscalls) - len(v.Truth),
				}
			}
		}
	}

	o.checkBaselines(v, bin)
	return v
}

// sweepRun builds one sweep invariance leg: the case's binary alone in
// a scratch tree, swept with the differential scanner on. The leg
// fails on any per-binary failure, on a scanner value escaping the
// resolver-off over-approximation (offHas), and (via the caller's
// fingerprint comparison) on any result drift against the
// direct-analysis legs. Scanner values inside offHas but outside the
// resolver-on set are expected: the linear scan reads address-taken
// dead code the resolver proved unreachable.
func (o *Oracle) sweepRun(seed int64, binPath string, noMmap bool, offHas func(uint64) bool) func() (*bside.Analysis, error) {
	return func() (*bside.Analysis, error) {
		frontend := "mmap"
		if noMmap {
			frontend = "nommap"
		}
		treeDir := filepath.Join(o.opts.Dir, fmt.Sprintf("sweep-%d-%s", seed, frontend))
		if err := os.MkdirAll(treeDir, 0o755); err != nil {
			return nil, err
		}
		defer os.RemoveAll(treeDir)
		img, err := os.ReadFile(binPath)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(treeDir, "bin"), img, 0o755); err != nil {
			return nil, err
		}

		var res *sweep.Result
		sum, err := sweep.Run(context.Background(), treeDir, sweep.Options{
			Analyzer: bside.NewAnalyzer(bside.Options{
				LibraryDir:   o.opts.Universe.Dir,
				IntraWorkers: 1,
				DisableMmap:  noMmap,
			}),
			Jobs:     1,
			Diff:     true,
			NoMmap:   noMmap,
			OnResult: func(r *sweep.Result) { res = r },
		})
		if err != nil {
			return nil, err
		}
		if res != nil && res.Error != "" {
			return nil, fmt.Errorf("sweep: %s failed in phase %s: %s", res.Path, res.Phase, res.Error)
		}
		if sum.Analyzed != 1 || res == nil || res.Analysis == nil {
			return nil, fmt.Errorf("sweep: analyzed=%d failed=%d phases=%v", sum.Analyzed, sum.Failed, sum.FailurePhases)
		}
		if sum.ScanDisagreements != 0 {
			for _, n := range res.Diff.ScanOnly {
				if !offHas(n) {
					return nil, fmt.Errorf("sweep: scan-resolved syscall %d outside both the identified set %v and the resolver-off over-approximation",
						n, res.Syscalls)
				}
			}
		}
		return res.Analysis, nil
	}
}

// checkBaselines asserts the reimplemented competitors fail exactly in
// their documented modes — and only there. Generated profiles carry no
// engineered failure classes, so budget exhaustion is not excused.
func (o *Oracle) checkBaselines(v *Verdict, bin *elff.Binary) {
	v.BaselinesOK = true
	fault := func(format string, args ...any) {
		v.BaselinesOK = false
		v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
	}

	_, chestErr := baseline.ChestnutWithBudget(bin, eval.BaselineCFGBudget)
	_, sysErr := baseline.SysFilterWithBudget(bin, eval.BaselineCFGBudget)

	if bin.Kind == elff.KindStatic {
		// Documented mode: both loaders reject non-PIC executables.
		if !errors.Is(chestErr, baseline.ErrStaticUnsupported) {
			fault("baseline: chestnut on static image: want ErrStaticUnsupported, got %v", chestErr)
		}
		if !errors.Is(sysErr, baseline.ErrStaticUnsupported) {
			fault("baseline: sysfilter on static image: want ErrStaticUnsupported, got %v", sysErr)
		}
		return
	}
	if chestErr != nil {
		fault("baseline: chestnut failed outside its documented modes: %v", chestErr)
	}
	if !bin.HasUnwind {
		// Documented mode: SysFilter needs unwind metadata for function
		// boundaries.
		if !errors.Is(sysErr, baseline.ErrNoUnwind) {
			fault("baseline: sysfilter without unwind info: want ErrNoUnwind, got %v", sysErr)
		}
	} else if sysErr != nil {
		fault("baseline: sysfilter failed outside its documented modes: %v", sysErr)
	}
}

func (o *Oracle) fingerprintOf(legName string, res *bside.Analysis) *fingerprint {
	syscalls := append([]uint64(nil), res.Syscalls...)
	if o.opts.Tamper != nil {
		syscalls = o.opts.Tamper(legName, syscalls)
	}
	return &fingerprint{
		Syscalls: syscalls,
		FailOpen: res.FailOpen,
		Wrappers: res.Wrappers,
		Imports:  res.Imports,
	}
}

// legacyEnvelope mirrors the cache store's on-disk schema so the
// legacy leg can rewrite entries without importing store internals;
// the payload stays raw so the rewrite is byte-faithful.
type legacyEnvelope struct {
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Conf    string          `json:"conf,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

// downgradeCacheEnvelopes rewrites every cache entry under dir into
// the pretty-printed version-1 envelope format of earlier releases —
// the shape a fleet upgrading in place still has on disk.
func downgradeCacheEnvelopes(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var env legacyEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("downgrade %s: %w", path, err)
		}
		env.Version = 1
		out, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, out, 0o644)
	})
}

func kindString(p corpus.Profile) string {
	if p.StaticPIE {
		return "static-pie"
	}
	switch p.Kind {
	case elff.KindStatic:
		return "static"
	case elff.KindDynamic:
		return "dynamic"
	default:
		return p.Kind.String()
	}
}

func sortedSet(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
