package fuzzer

// PrecisionCase is one seed's row of the precision report.
type PrecisionCase struct {
	Seed int64  `json:"seed"`
	Name string `json:"name"`
	Precision
}

// PrecisionReport aggregates the resolver's effect across a seed
// corpus: the per-seed identified-set sizes plus corpus means. It is
// the artifact the nightly fuzz job publishes, and the definition
// behind the bench gate's mean-identified-set-size metric — a
// regression here means the resolver stopped shrinking (or, caught
// earlier by the oracle's shrink-only and soundness checks, started
// cutting too deep).
type PrecisionReport struct {
	// Cases lists every checked seed that produced comparable sets
	// (neither leg failed open or errored), in check order.
	Cases []PrecisionCase `json:"cases"`
	// CaseCount is len(Cases); Skipped counts checked seeds without a
	// comparable precision record.
	CaseCount int `json:"case_count"`
	Skipped   int `json:"skipped"`
	// MeanTruth, MeanIdentified and MeanResolverOff are the mean set
	// sizes over Cases (0 when empty).
	MeanTruth       float64 `json:"mean_truth"`
	MeanIdentified  float64 `json:"mean_identified"`
	MeanResolverOff float64 `json:"mean_resolver_off"`
	// TotalShrink sums the per-case shrink; ShrunkCases counts cases
	// where the resolver removed at least one syscall.
	TotalShrink int `json:"total_shrink"`
	ShrunkCases int `json:"shrunk_cases"`
}

// Add folds one verdict into the report. Verdicts without a precision
// record (fail-open or failed legs) count as skipped.
func (r *PrecisionReport) Add(v *Verdict) {
	if v.Precision == nil {
		r.Skipped++
		return
	}
	r.Cases = append(r.Cases, PrecisionCase{Seed: v.Seed, Name: v.Name, Precision: *v.Precision})
	r.CaseCount = len(r.Cases)
	r.TotalShrink += v.Precision.Shrink
	if v.Precision.Shrink > 0 {
		r.ShrunkCases++
	}
	var truth, ident, off int
	for _, c := range r.Cases {
		truth += c.TruthCount
		ident += c.IdentifiedCount
		off += c.ResolverOffCount
	}
	n := float64(len(r.Cases))
	r.MeanTruth = float64(truth) / n
	r.MeanIdentified = float64(ident) / n
	r.MeanResolverOff = float64(off) / n
}
