package fuzzer

import (
	"encoding/json"
	"fmt"
	"os"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// maxShrinkChecks bounds the total oracle runs one Shrink may spend;
// shrinking is best-effort, and a reproducer that is merely small beats
// a minimizer that never terminates.
const maxShrinkChecks = 160

// Shrink reduces a failing case to a (locally) minimal reproducer: it
// repeatedly proposes simpler profiles — zeroed or halved knobs,
// cleared flags, dropped libraries — and keeps each proposal that still
// fails the oracle, until no proposal helps or the check budget runs
// out. The returned verdict belongs to the returned case. If c already
// passes, it is returned unchanged.
func Shrink(o *Oracle, c Case) (Case, *Verdict) {
	cur := c
	curV := o.Check(cur)
	if curV.OK() {
		return cur, curV
	}
	checks := 1
	for {
		improved := false
		for _, cand := range shrinkCandidates(cur.Profile) {
			if checks >= maxShrinkChecks {
				return cur, curV
			}
			next := Case{Seed: cur.Seed, Profile: cand}
			nextV := o.Check(next)
			checks++
			if !nextV.OK() {
				cur, curV = next, nextV
				improved = true
				break
			}
		}
		if !improved {
			return cur, curV
		}
	}
}

// shrinkCandidates proposes one-step simplifications of p, most
// aggressive first so a successful step removes as much as possible.
func shrinkCandidates(p corpus.Profile) []corpus.Profile {
	var out []corpus.Profile
	add := func(mod func(*corpus.Profile)) {
		q := p
		q.GraphLibs = append([]int(nil), p.GraphLibs...)
		mod(&q)
		out = append(out, q)
	}

	// Kind simplification: a dynamic reproducer that also fails as a
	// self-contained static binary is far easier to debug.
	if p.Kind == elff.KindDynamic || p.StaticPIE {
		add(func(q *corpus.Profile) {
			q.Kind = elff.KindStatic
			q.StaticPIE = false
			q.HotLibc, q.ColdLibc, q.ExtraLibs = 0, 0, 0
			q.UseLibcWrapper = false
			q.GraphLibs = nil
		})
	}

	ints := []struct {
		name string
		get  func(*corpus.Profile) *int
		min  int
	}{
		{"HotDirect", func(q *corpus.Profile) *int { return &q.HotDirect }, 1},
		{"HotWrapper", func(q *corpus.Profile) *int { return &q.HotWrapper }, 0},
		{"HotStack", func(q *corpus.Profile) *int { return &q.HotStack }, 0},
		{"Handlers", func(q *corpus.Profile) *int { return &q.Handlers }, 0},
		{"TableHandlers", func(q *corpus.Profile) *int { return &q.TableHandlers }, 0},
		{"WrapperDepth", func(q *corpus.Profile) *int { return &q.WrapperDepth }, 0},
		{"HotDeep", func(q *corpus.Profile) *int { return &q.HotDeep }, 0},
		{"DeepBlocks", func(q *corpus.Profile) *int { return &q.DeepBlocks }, 0},
		{"ColdDirect", func(q *corpus.Profile) *int { return &q.ColdDirect }, 0},
		{"ColdWrapper", func(q *corpus.Profile) *int { return &q.ColdWrapper }, 0},
		{"ColdHandlers", func(q *corpus.Profile) *int { return &q.ColdHandlers }, 0},
		{"SigDecoys", func(q *corpus.Profile) *int { return &q.SigDecoys }, 0},
		{"StackedTruth", func(q *corpus.Profile) *int { return &q.StackedTruth }, 0},
		{"DeniedVals", func(q *corpus.Profile) *int { return &q.DeniedVals }, 0},
		{"HotLibc", func(q *corpus.Profile) *int { return &q.HotLibc }, 0},
		{"ColdLibc", func(q *corpus.Profile) *int { return &q.ColdLibc }, 0},
		{"ExtraLibs", func(q *corpus.Profile) *int { return &q.ExtraLibs }, 0},
		{"Filler", func(q *corpus.Profile) *int { return &q.Filler }, 0},
	}
	for _, f := range ints {
		cur := *f.get(&p)
		if cur > f.min {
			add(func(q *corpus.Profile) { *f.get(q) = f.min })
		}
		if half := cur / 2; half > f.min && half != cur {
			add(func(q *corpus.Profile) { *f.get(q) = half })
		}
	}
	for i := range p.GraphLibs {
		add(func(q *corpus.Profile) {
			q.GraphLibs = append(q.GraphLibs[:i], q.GraphLibs[i+1:]...)
		})
	}
	if p.UseLibcWrapper {
		add(func(q *corpus.Profile) { q.UseLibcWrapper = false })
	}
	if p.HasUnwind {
		add(func(q *corpus.Profile) { q.HasUnwind = false })
	}
	if p.TableSection != "" {
		add(func(q *corpus.Profile) { q.TableSection = "" })
	}
	if p.TablePacked {
		add(func(q *corpus.Profile) { q.TablePacked = false })
	}
	return out
}

// Repro is the checked-in form of a shrunk failing case. The profile —
// not the seed — is authoritative: it survives generator evolution, so
// a repro keeps reproducing the same binary even after Gen's
// composition changes.
type Repro struct {
	// Seed is the originating seed, for provenance.
	Seed int64 `json:"seed"`
	// Note says what the case guards against (filled when promoting).
	Note string `json:"note,omitempty"`
	// Profile is the (shrunk) generating profile.
	Profile corpus.Profile `json:"profile"`
	// Violations are the oracle complaints at capture time.
	Violations []string `json:"violations,omitempty"`
}

// WriteRepro serializes a shrunk case and its verdict to path.
func WriteRepro(path string, c Case, v *Verdict) error {
	data, err := json.MarshalIndent(Repro{
		Seed:       c.Seed,
		Profile:    c.Profile,
		Violations: v.Violations,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file back into a runnable case.
func LoadRepro(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Case{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.Profile.Name == "" {
		return Case{}, fmt.Errorf("%s: repro has no profile", path)
	}
	return Case{Seed: r.Seed, Profile: r.Profile}, nil
}
