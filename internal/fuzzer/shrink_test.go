package fuzzer

import (
	"path/filepath"
	"testing"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// knobWeight measures how much profile surface a case carries — the
// quantity shrinking must reduce.
func knobWeight(p corpus.Profile) int {
	w := p.HotDirect + p.HotWrapper + p.HotStack + p.Handlers +
		p.TableHandlers + p.WrapperDepth + p.HotDeep + p.DeepBlocks +
		p.ColdDirect + p.ColdWrapper + p.StackedTruth + p.DeniedVals +
		p.HotLibc + p.ColdLibc + p.ExtraLibs + p.Filler + len(p.GraphLibs)
	if p.UseLibcWrapper {
		w++
	}
	return w
}

// TestShrinkMinimizesFailingCase drives the shrinker against an
// injected analyzer bug (all odd syscalls silently dropped) and
// requires a much simpler profile that still reproduces the failure,
// plus a repro file that round-trips back into a failing case.
func TestShrinkMinimizesFailingCase(t *testing.T) {
	tamper := func(_ string, syscalls []uint64) []uint64 {
		out := syscalls[:0]
		for _, n := range syscalls {
			if n%2 == 0 {
				out = append(out, n)
			}
		}
		return out
	}
	o := newOracle(t, Options{Workers: []int{1}, Tamper: tamper})

	// Find a failing dynamic seed so kind simplification has work to do.
	var failing Case
	found := false
	for seed := int64(1); seed <= 30 && !found; seed++ {
		c := Gen(seed)
		if c.Profile.Kind != elff.KindDynamic {
			continue
		}
		if !o.Check(c).OK() {
			failing, found = c, true
		}
	}
	if !found {
		t.Fatal("no failing dynamic seed under the injected bug")
	}

	shrunk, v := Shrink(o, failing)
	if v.OK() {
		t.Fatal("shrunk case no longer fails")
	}
	before, after := knobWeight(failing.Profile), knobWeight(shrunk.Profile)
	if after >= before {
		t.Fatalf("shrink did not reduce the profile: %d -> %d", before, after)
	}
	if after > before/2 {
		t.Errorf("weak shrink: %d -> %d", before, after)
	}
	if shrunk.Profile.Kind != elff.KindStatic {
		t.Errorf("kind not simplified: %v", shrunk.Profile.Kind)
	}

	// Repro round trip: the emitted file must reproduce the failure.
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, shrunk, v); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if lv := o.Check(loaded); lv.OK() {
		t.Fatal("loaded repro no longer fails")
	}
}

// TestShrinkPassesThroughHealthyCase: shrinking a passing case is a
// no-op returning the original.
func TestShrinkPassesThroughHealthyCase(t *testing.T) {
	o := newOracle(t, Options{Workers: []int{1}})
	c := Gen(2)
	shrunk, v := Shrink(o, c)
	if !v.OK() {
		t.Fatalf("healthy case failed: %v", v.Violations)
	}
	if knobWeight(shrunk.Profile) != knobWeight(c.Profile) {
		t.Fatal("healthy case was modified")
	}
}
