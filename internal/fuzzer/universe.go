package fuzzer

import (
	"fmt"
	"os"
	"path/filepath"

	"bside/internal/corpus"
)

// Universe is the shared-library world fuzz cases are built against:
// the standard corpus libraries (libc, the flat libx* family, the
// libg* dependency DAG) held both in memory — for the emulator and the
// program builder — and on disk, for the public file-based analyzer
// API.
type Universe struct {
	// Set holds the parsed libraries, keyed by DT_NEEDED name.
	Set *corpus.Set
	// Dir is the on-disk library directory (Options.LibraryDir).
	Dir string
}

// NewUniverse builds the library universe and writes every library
// into dir (created if needed).
func NewUniverse(dir string) (*Universe, error) {
	set, err := corpus.NewLibrarySet()
	if err != nil {
		return nil, fmt.Errorf("fuzzer: build libraries: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for name, bin := range set.Libs {
		if err := bin.WriteFile(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("fuzzer: write %s: %w", name, err)
		}
	}
	return &Universe{Set: set, Dir: dir}, nil
}
