// Package guard is the per-binary fault boundary of the analysis
// pipeline: the one place a panic raised while analyzing a binary is
// converted into an error, so a hostile or corrupt image costs its own
// result and never the process.
//
// The conversion is applied at every choke point a panic could escape
// through — the public frontend (bside.analyzeData), each pipeline
// stage body, the intra-binary worker-pool units (a panic in a
// goroutine is fatal unless recovered in that same goroutine), and the
// resolver's library singleflight (where an unrecovered panic would
// also strand every waiting peer on a never-closed channel). All of
// them funnel through Capture/Capture1, so "what happens when analysis
// code panics" has exactly one answer: a *PanicError carrying the
// stage, the image hash, and the panicking goroutine's stack.
//
// Results derived from a PanicError are never memoized and never enter
// the cache tiers: every store in the codebase is gated on a nil
// error, and the singleflight memo skips failed computations.
package guard

import (
	"errors"
	"fmt"
	"runtime"
)

// PanicError is a panic converted into an error at a fault boundary.
type PanicError struct {
	// Stage names the boundary the panic surfaced at: a pipeline stage
	// ("decode", "wrappers", "identify"), "unit" for a worker-pool
	// unit, "library" for the per-library singleflight, or "frontend"
	// for the public entry seam. Inner boundaries win: a panic in an
	// identification unit reports "unit"-level context enriched by the
	// stage wrapper, not overwritten by it.
	Stage string `json:"stage"`
	// Hash is the content hash of the image (or the singleflight key of
	// the library) being analyzed; empty when the panic predates
	// hashing.
	Hash string `json:"hash,omitempty"`
	// Value is the recovered panic value.
	Value any `json:"value"`
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte `json:"-"`
}

// Error renders the boundary context and the panic value; the stack is
// kept off the message (it is operator/diagnostic payload, not
// request-error text) and travels on the struct.
func (e *PanicError) Error() string {
	if e.Hash != "" {
		return fmt.Sprintf("analysis panicked in stage %s (image %s): %v", e.Stage, e.Hash, e.Value)
	}
	return fmt.Sprintf("analysis panicked in stage %s: %v", e.Stage, e.Value)
}

// AsPanic unwraps err to its PanicError, if it carries one.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// annotate fills boundary context a deeper capture could not know: a
// PanicError born in a worker-pool unit (no stage, no hash in scope)
// gets them stamped by the enclosing stage boundary on the way out.
func annotate(err error, stage, hash string) error {
	if pe, ok := AsPanic(err); ok {
		if pe.Stage == "" {
			pe.Stage = stage
		} else if pe.Stage == "unit" && stage != "" {
			pe.Stage = stage + "/unit"
		}
		if pe.Hash == "" {
			pe.Hash = hash
		}
	}
	return err
}

// Capture runs fn inside the fault boundary: a panic becomes a
// *PanicError tagged with stage and hash, and a *PanicError returned
// from a deeper boundary has its missing context filled in.
func Capture(stage, hash string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = toPanicError(r, stage, hash)
		}
	}()
	return annotate(fn(), stage, hash)
}

// Capture1 is Capture for value-returning computations (the
// singleflight seam). On panic the value is the zero T.
func Capture1[T any](stage, hash string, fn func() (T, error)) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			val, err = zero, toPanicError(r, stage, hash)
		}
	}()
	val, err = fn()
	return val, annotate(err, stage, hash)
}

// stackBytes bounds the captured stack: enough for triage, never
// unbounded (a deep recursion panic must not turn into a huge error).
const stackBytes = 16 << 10

func toPanicError(r any, stage, hash string) error {
	// A panic that is itself an already-converted PanicError (re-thrown
	// across a boundary) keeps its original context.
	if pe, ok := r.(*PanicError); ok {
		return annotate(pe, stage, hash)
	}
	buf := make([]byte, stackBytes)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Stage: stage, Hash: hash, Value: r, Stack: buf}
}
