package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture("decode", "abc123", func() error { panic("boom") })
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if pe.Stage != "decode" || pe.Hash != "abc123" {
		t.Errorf("context not stamped: stage=%q hash=%q", pe.Stage, pe.Hash)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value lost: %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "guard") {
		t.Errorf("stack not captured")
	}
	if !strings.Contains(err.Error(), "decode") || !strings.Contains(err.Error(), "abc123") {
		t.Errorf("message missing context: %s", err)
	}
	if strings.Contains(err.Error(), "goroutine") {
		t.Errorf("stack leaked into the error message: %s", err)
	}
}

func TestCapturePassesThroughErrors(t *testing.T) {
	want := errors.New("ordinary failure")
	if err := Capture("identify", "h", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("ordinary error mangled: %v", err)
	}
	if err := Capture("identify", "h", func() error { return nil }); err != nil {
		t.Fatalf("nil became %v", err)
	}
}

func TestCapture1ZeroesValueOnPanic(t *testing.T) {
	val, err := Capture1("library", "libc.so.6", func() (int, error) {
		panic(42)
	})
	if val != 0 {
		t.Errorf("value not zeroed: %d", val)
	}
	pe, ok := AsPanic(err)
	if !ok || pe.Stage != "library" || pe.Hash != "libc.so.6" {
		t.Fatalf("bad conversion: %v", err)
	}
}

// TestNestedBoundariesEnrichNotOverwrite pins the inner-boundary-wins
// rule: a unit-level PanicError crossing the enclosing stage boundary
// gains the stage name and image hash it could not know, without
// losing where it actually happened.
func TestNestedBoundariesEnrichNotOverwrite(t *testing.T) {
	err := Capture("wrappers", "imghash", func() error {
		return Capture("unit", "", func() error { panic("inner") })
	})
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if pe.Stage != "wrappers/unit" {
		t.Errorf("stage = %q, want wrappers/unit", pe.Stage)
	}
	if pe.Hash != "imghash" {
		t.Errorf("hash not backfilled: %q", pe.Hash)
	}
	if pe.Value != "inner" {
		t.Errorf("inner panic value lost: %v", pe.Value)
	}
}

// TestRethrownPanicErrorKeepsOrigin covers a contained error being
// re-panicked across another boundary (e.g. wrapped in a must-helper):
// the original context survives.
func TestRethrownPanicErrorKeepsOrigin(t *testing.T) {
	inner := Capture("decode", "h1", func() error { panic("original") })
	err := Capture("frontend", "", func() error { panic(inner) })
	pe, ok := AsPanic(err)
	if !ok || pe.Stage != "decode" || pe.Hash != "h1" {
		t.Fatalf("origin lost: %v", err)
	}
}

func TestErrorsIsAsThroughWrapping(t *testing.T) {
	err := fmt.Errorf("analyzing: %w", Capture("decode", "h", func() error { panic("x") }))
	if _, ok := AsPanic(err); !ok {
		t.Fatal("AsPanic failed through wrapping")
	}
}
