package ident

import (
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// Per-site allocation ceilings, enforced with testing.AllocsPerRun so
// the dense-bitset rewrite cannot silently rot back into map-per-search
// allocation patterns. The numbers are deliberately loose — roughly 3×
// current reality — so they flag regressions of kind (a reintroduced
// map, an unpooled state), not jitter.
const (
	// maxAllocsSimpleSite bounds the Figure 1-A case: the defining
	// immediate next to its syscall, one symbolic run, no BFS.
	// Currently ~3 allocs (the result slice and closure plumbing; all
	// search scratch is pooled).
	maxAllocsSimpleSite = 20
	// maxAllocsDeepSite bounds a cross-block backward search over a
	// multi-block chain: BFS frontier + one directed run per layer.
	// Currently ~1 alloc in steady state.
	maxAllocsDeepSite = 100
)

// preparePass builds a Pass (memoization off, so the measured path is
// the real search) over a synthesized static binary.
func preparePass(t *testing.T, fn func(b *asm.Builder)) *Pass {
	t.Helper()
	bin, _ := testbin.Build(t, elff.KindStatic, fn, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	p := Prepare(g, Config{})
	if err := p.DetectWrappers(); err != nil {
		t.Fatalf("wrappers: %v", err)
	}
	if len(p.sites) == 0 {
		t.Fatal("no syscall sites")
	}
	return p
}

func TestBackwardSearchAllocCeilingSimple(t *testing.T) {
	p := preparePass(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	site := p.sites[0]
	// Warm the pools once: the ceiling is the steady state, which is
	// what every site after the first few pays.
	p.identify(site, nil)
	avg := testing.AllocsPerRun(50, func() {
		p.identify(site, nil)
	})
	t.Logf("simple site: %.1f allocs/op (ceiling %d)", avg, maxAllocsSimpleSite)
	if avg > maxAllocsSimpleSite {
		t.Fatalf("simple site allocates %.1f/op, ceiling %d", avg, maxAllocsSimpleSite)
	}
}

func TestBackwardSearchAllocCeilingDeep(t *testing.T) {
	p := preparePass(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 1)
		// A fork-free chain of jump-linked blocks between the
		// definition and the site forces a real backward BFS with one
		// directed run per frontier layer (and keeps the shared budget
		// comfortable across the measurement runs).
		for i := 0; i < 12; i++ {
			b.JmpLabel("next_" + string(rune('a'+i)))
			b.Label("next_" + string(rune('a'+i)))
		}
		b.Syscall()
		b.Ret()
	})
	site := p.sites[0]
	p.identify(site, nil)
	avg := testing.AllocsPerRun(50, func() {
		res := p.identify(site, nil)
		if res.FailOpen {
			t.Fatal("deep site must stay bounded (budget drained?)")
		}
	})
	t.Logf("deep site: %.1f allocs/op (ceiling %d)", avg, maxAllocsDeepSite)
	if avg > maxAllocsDeepSite {
		t.Fatalf("deep site allocates %.1f/op, ceiling %d", avg, maxAllocsDeepSite)
	}
}

// TestWholeBinaryAllocCeiling pins the end-to-end identification pass
// of a mid-sized corpus binary: the per-site ceilings above catch
// search-local regressions, this one catches pass-level ones (reach
// sets, unit lists, report assembly). Currently ~160 allocs with warm
// package pools; the ceiling leaves room for corpus drift but not for
// a reintroduced per-search map pattern (which costs thousands).
func TestWholeBinaryAllocCeiling(t *testing.T) {
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "alloc", Kind: elff.KindStatic,
		HotDirect: 8, HotWrapper: 3, HotStack: 1, Handlers: 2,
		ColdDirect: 4, ColdWrapper: 1, Filler: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(g, Config{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Analyze(g, Config{}); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 2000
	t.Logf("whole binary: %.0f allocs/op (ceiling %d)", avg, ceiling)
	if avg > ceiling {
		t.Fatalf("whole-binary identify allocates %.0f/op, ceiling %d", avg, ceiling)
	}
}
