package ident

import (
	"sort"

	"bside/internal/cfg"
	"bside/internal/linux"
	"bside/internal/symex"
)

// ExportProfile summarizes what one exported function of a shared
// library can do syscall-wise; the collection of profiles forms the
// library's shared interface (§4.5).
type ExportProfile struct {
	Name string
	Addr uint64
	// Syscalls an invocation of this export may issue (resolved within
	// the library).
	Syscalls []uint64
	// Wrapper is non-nil when the export itself is a syscall wrapper;
	// callers must resolve its call sites against this parameter.
	Wrapper *symex.ParamRef
	// Imports lists foreign symbols this export may call (cross-library
	// propagation).
	Imports []string
	// FailOpen marks exports whose syscall set could not be bounded.
	FailOpen bool
}

// ExportProfiles derives per-export profiles from a library's analysis
// report by intersecting each export's reachable blocks with the
// per-site results.
func ExportProfiles(g *cfg.Graph, rep *Report) []ExportProfile {
	wrapperByEntry := make(map[uint64]symex.ParamRef, len(rep.Wrappers))
	for _, w := range rep.Wrappers {
		wrapperByEntry[w.FnEntry] = w.Param
	}

	var values linux.ValueSet
	var imports []string
	profiles := make([]ExportProfile, 0, len(g.Bin.Exports))
	for _, ex := range g.Bin.Exports {
		p := ExportProfile{Name: ex.Name, Addr: ex.Addr}
		reach := g.ReachableSet(ex.Addr)

		values.Reset()
		for _, site := range rep.Sites {
			if !reach.Has(site.Block) {
				continue
			}
			if site.FailOpen {
				p.FailOpen = true
			}
			values.AddAll(site.Syscalls)
		}
		p.Syscalls = values.Append(make([]uint64, 0, values.Len()))

		imports = imports[:0]
		for _, blk := range g.SortedBlocks() {
			if blk.ImportCall != "" && reach.Has(blk) {
				imports = append(imports, blk.ImportCall)
			}
		}
		sort.Strings(imports)
		p.Imports = compactStrings(imports)

		if fn, ok := g.FuncByEntry(ex.Addr); ok {
			if param, isWrapper := wrapperByEntry[fn.Entry]; isWrapper {
				pr := param
				p.Wrapper = &pr
			}
		}
		profiles = append(profiles, p)
	}
	sort.Slice(profiles, func(i, j int) bool { return profiles[i].Name < profiles[j].Name })
	return profiles
}

// compactStrings copies a sorted slice, dropping adjacent duplicates.
func compactStrings(in []string) []string {
	out := make([]string, 0, len(in))
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
