// Package ident implements B-Side's system-call identification (§4.4 of
// the paper): locating syscall sites on the recovered CFG, detecting
// system-call wrappers with a two-phase heuristic (fast use-define scan
// confirmed by symbolic execution), and determining the possible %rax
// values at each site via a backward breadth-first search over
// predecessors combined with directed forward symbolic execution.
package ident

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"bside/internal/cfg"
	"bside/internal/symex"
	"bside/internal/x86"
)

// ErrTimeout is returned when the shared symbolic-execution budget is
// exhausted before the analysis completes — the in-process analog of
// the paper's wall-clock analysis timeouts.
var ErrTimeout = errors.New("ident: analysis budget exhausted")

// Config tunes the identification pass.
type Config struct {
	// Budget is shared by every symbolic search in this analysis; nil
	// gets a default.
	Budget *symex.Budget
	// MaxBFSDepth bounds how many predecessor layers the backward
	// search may explore per site.
	MaxBFSDepth int
	// MaxFrontier bounds the total frontier nodes per site.
	MaxFrontier int
	// StackParams is how many stack slots are tagged as parameters
	// during wrapper detection.
	StackParams int
	// ImportWrappers names imported symbols known (from shared-library
	// interfaces) to be syscall wrappers, with the parameter that
	// carries the syscall number.
	ImportWrappers map[string]symex.ParamRef
	// SyscallUpper discards resolved values at or above this bound
	// (they are addresses or artifacts, not syscall numbers).
	SyscallUpper uint64
}

func (c Config) withDefaults() Config {
	if c.Budget == nil {
		c.Budget = symex.NewBudget()
	}
	if c.MaxBFSDepth == 0 {
		c.MaxBFSDepth = 256
	}
	if c.MaxFrontier == 0 {
		c.MaxFrontier = 4_096
	}
	if c.StackParams == 0 {
		c.StackParams = 8
	}
	if c.SyscallUpper == 0 {
		c.SyscallUpper = 1024
	}
	return c
}

// SiteResult describes the outcome for one identification target: a
// syscall instruction, or — for wrapper and import-wrapper redirection —
// one call site of the wrapper.
type SiteResult struct {
	// Addr is the address of the site's final instruction (the syscall
	// or the call into the wrapper).
	Addr uint64
	// Block is the CFG block whose last instruction is the site.
	Block *cfg.Block
	// Kind explains what was identified.
	Kind SiteKind
	// Wrapper is the wrapper function entry for redirected sites.
	Wrapper uint64
	// Syscalls lists the resolved syscall numbers at this site.
	Syscalls []uint64
	// FailOpen is set when the search could not bound the value set;
	// the binary-level report then falls back to the full table for
	// soundness.
	FailOpen bool
	// BlocksExplored counts symbolically executed blocks for this site.
	BlocksExplored int
}

// SiteKind classifies identification targets.
type SiteKind uint8

// Site kinds.
const (
	// SitePlain is a syscall instruction in a non-wrapper function.
	SitePlain SiteKind = iota + 1
	// SiteWrapperDef is a syscall inside a detected wrapper; it carries
	// no values itself (they are attributed to call sites).
	SiteWrapperDef
	// SiteWrapperCall is a call site of a local wrapper function.
	SiteWrapperCall
	// SiteImportCall is a call site of an imported wrapper function.
	SiteImportCall
)

// String names the site kind.
func (k SiteKind) String() string {
	switch k {
	case SitePlain:
		return "plain"
	case SiteWrapperDef:
		return "wrapper-def"
	case SiteWrapperCall:
		return "wrapper-call"
	case SiteImportCall:
		return "import-call"
	}
	return "?"
}

// WrapperInfo describes a detected syscall wrapper.
type WrapperInfo struct {
	FnEntry  uint64
	FnName   string
	SiteAddr uint64
	Param    symex.ParamRef
}

// Stats reports analysis effort (Table 3's columns).
type Stats struct {
	WrapperDetect  time.Duration
	Identify       time.Duration
	BlocksExplored int
	SyscallSites   int
	Wrappers       int
}

// Report is the identification result for one binary.
type Report struct {
	// Syscalls is the deduplicated, sorted union over all sites, with
	// artifacts above SyscallUpper dropped.
	Syscalls []uint64
	// Sites holds per-target details.
	Sites []SiteResult
	// Wrappers lists detected wrapper functions.
	Wrappers []WrapperInfo
	// ReachableImports lists imported symbols the program can call.
	ReachableImports []string
	// FailOpen is set when at least one site could not be bounded; the
	// caller must union the full syscall table to preserve soundness.
	FailOpen bool
	// Stats describes the work performed.
	Stats Stats
}

// HasSyscall reports whether n is in the identified set.
func (r *Report) HasSyscall(n uint64) bool {
	i := sort.Search(len(r.Syscalls), func(i int) bool { return r.Syscalls[i] >= n })
	return i < len(r.Syscalls) && r.Syscalls[i] == n
}

// Analyze identifies the system calls of the binary behind g.
func Analyze(g *cfg.Graph, conf Config) (*Report, error) {
	conf = conf.withDefaults()
	a := &analyzer{g: g, conf: conf, machine: symex.NewMachine(g, conf.Budget)}
	return a.run()
}

type analyzer struct {
	g       *cfg.Graph
	conf    Config
	machine *symex.Machine
	reach   map[*cfg.Block]bool
}

func (a *analyzer) run() (*Report, error) {
	rep := &Report{}
	a.reach = a.g.Reachable(a.g.Roots...)

	// Imports reachable from the roots.
	importSet := make(map[string]bool)
	for blk := range a.reach {
		if blk.ImportCall != "" {
			importSet[blk.ImportCall] = true
		}
	}
	rep.ReachableImports = sortedStrings(importSet)

	// Locate reachable syscall sites.
	var sites []*cfg.Block
	for _, blk := range a.g.SyscallBlocks() {
		if a.reach[blk] {
			sites = append(sites, blk)
		}
	}
	rep.Stats.SyscallSites = len(sites)

	// Phase G: wrapper detection per containing function. Both
	// positive and negative verdicts are cached per function; a
	// function with several sites is only analyzed once.
	wrapStart := time.Now()
	wrappers := make(map[uint64]*WrapperInfo) // function entry -> info
	checked := make(map[uint64]bool)
	for _, site := range sites {
		fn, ok := a.g.FuncContaining(site.Addr)
		if !ok {
			continue
		}
		if checked[fn.Entry] {
			continue
		}
		checked[fn.Entry] = true
		info, isWrapper, err := a.detectWrapper(fn, site)
		if err != nil {
			return nil, fmt.Errorf("wrapper detection: %w", err)
		}
		if isWrapper {
			wrappers[fn.Entry] = info
			rep.Wrappers = append(rep.Wrappers, *info)
		}
	}
	rep.Stats.WrapperDetect = time.Since(wrapStart)
	rep.Stats.Wrappers = len(wrappers)

	// Phase H: per-site type identification.
	identStart := time.Now()
	values := make(map[uint64]bool)
	addResult := func(res SiteResult) {
		rep.Sites = append(rep.Sites, res)
		rep.Stats.BlocksExplored += res.BlocksExplored
		if res.FailOpen {
			rep.FailOpen = true
		}
		for _, v := range res.Syscalls {
			if v < a.conf.SyscallUpper {
				values[v] = true
			}
		}
	}

	for _, site := range sites {
		fn, _ := a.g.FuncContaining(site.Addr)
		if fn != nil {
			if w, isWrapper := wrappers[fn.Entry]; isWrapper {
				// The wrapper's own site is recorded without values...
				addResult(SiteResult{
					Addr:    site.Last().Addr,
					Block:   site,
					Kind:    SiteWrapperDef,
					Wrapper: fn.Entry,
				})
				// ...and each reachable call site of the wrapper is
				// identified against the wrapper's number parameter.
				for _, callBlk := range a.callSitesOf(fn.Entry) {
					res := a.identify(callBlk, &w.Param)
					res.Kind = SiteWrapperCall
					res.Wrapper = fn.Entry
					addResult(res)
				}
				continue
			}
		}
		res := a.identify(site, nil)
		res.Kind = SitePlain
		addResult(res)
	}

	// Import-wrapper call sites (e.g. libc's syscall() used by the
	// program): identified against the parameter recorded in the
	// library's shared interface.
	for name, param := range a.conf.ImportWrappers {
		if !importSet[name] {
			continue
		}
		for _, callBlk := range a.importCallSites(name) {
			p := param
			res := a.identify(callBlk, &p)
			res.Kind = SiteImportCall
			addResult(res)
		}
	}

	rep.Stats.Identify = time.Since(identStart)
	if a.conf.Budget.Exhausted() {
		return nil, fmt.Errorf("identification: %w", ErrTimeout)
	}

	rep.Syscalls = make([]uint64, 0, len(values))
	for v := range values {
		rep.Syscalls = append(rep.Syscalls, v)
	}
	sort.Slice(rep.Syscalls, func(i, j int) bool { return rep.Syscalls[i] < rep.Syscalls[j] })
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Addr < rep.Sites[j].Addr })
	return rep, nil
}

// callSitesOf returns the reachable blocks that call the function at
// entry (directly or through a resolved indirect edge).
func (a *analyzer) callSitesOf(entry uint64) []*cfg.Block {
	entryBlk, ok := a.g.BlockAt(entry)
	if !ok {
		return nil
	}
	var out []*cfg.Block
	seen := make(map[*cfg.Block]bool)
	for _, e := range entryBlk.Preds {
		if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
			continue
		}
		if !a.reach[e.From] || seen[e.From] {
			continue
		}
		seen[e.From] = true
		out = append(out, e.From)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// importCallSites returns reachable blocks that transfer to the named
// import: direct calls through [rip+slot], and calls to its local stub.
func (a *analyzer) importCallSites(name string) []*cfg.Block {
	var out []*cfg.Block
	seen := make(map[*cfg.Block]bool)
	add := func(b *cfg.Block) {
		if b != nil && a.reach[b] && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	for blk := range a.reach {
		if blk.ImportCall == name && blk.Last().Op == x86.OpCallInd {
			add(blk)
		}
	}
	// Calls to the PLT-style stub: the stub block carries ImportCall
	// and is reached via EdgeCall from the real call sites.
	for stubAddr, stubName := range a.g.ImportStubs {
		if stubName != name {
			continue
		}
		if stub, ok := a.g.BlockAt(stubAddr); ok {
			for _, e := range stub.Preds {
				if e.Kind == cfg.EdgeCall || e.Kind == cfg.EdgeIndirectCall {
					add(e.From)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
