// Package ident implements B-Side's system-call identification (§4.4 of
// the paper): locating syscall sites on the recovered CFG, detecting
// system-call wrappers with a two-phase heuristic (fast use-define scan
// confirmed by symbolic execution), and determining the possible %rax
// values at each site via a backward breadth-first search over
// predecessors combined with directed forward symbolic execution.
//
// The analysis is exposed in two shapes. Analyze runs everything and
// returns the Report. Prepare returns a Pass whose two stages —
// DetectWrappers and Identify — can be driven (and timed) separately by
// the internal/pipeline package. Both stages decompose into independent
// units (functions for wrapper detection, identification targets for the
// backward search) and fan them across a bounded worker pool when
// Config.Workers exceeds one; unit results are merged in a fixed order,
// so the Report is identical at any worker count.
package ident

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bside/internal/cache"
	"bside/internal/cfg"
	"bside/internal/faults"
	"bside/internal/guard"
	"bside/internal/linux"
	"bside/internal/symex"
	"bside/internal/x86"
)

// ErrTimeout is returned when the shared symbolic-execution budget is
// exhausted — by step count, fork count, or its wall-clock deadline —
// before the analysis completes: the in-process analog of the paper's
// analysis timeouts.
var ErrTimeout = errors.New("ident: analysis budget exhausted")

// Config tunes the identification pass.
type Config struct {
	// Budget is shared by every symbolic search in this analysis; nil
	// gets a default. Its counters are atomic, so the budget is shared
	// soundly by concurrent units — and a deadline on it bounds the
	// whole analysis' wall clock.
	Budget *symex.Budget
	// Workers is the intra-binary worker-pool size: how many analysis
	// units (wrapper-detection functions, identification targets) run
	// concurrently. 0 or 1 means serial. Any value yields an identical
	// Report — it only changes wall-clock time, never results, so it is
	// excluded from cache fingerprints.
	Workers int
	// MaxBFSDepth bounds how many predecessor layers the backward
	// search may explore per site.
	MaxBFSDepth int
	// MaxFrontier bounds the total frontier nodes per site.
	MaxFrontier int
	// StackParams is how many stack slots are tagged as parameters
	// during wrapper detection.
	StackParams int
	// ImportWrappers names imported symbols known (from shared-library
	// interfaces) to be syscall wrappers, with the parameter that
	// carries the syscall number.
	ImportWrappers map[string]symex.ParamRef
	// SyscallUpper discards resolved values at or above this bound
	// (they are addresses or artifacts, not syscall numbers). It is
	// capped at linux.SyscallSetBits (512) — the fixed width of the
	// syscall bitsets the report layer accumulates through, and far
	// above the real table's maximum number.
	SyscallUpper uint64
	// Memo, when non-nil, memoizes per-function wrapper verdicts and
	// self-contained site identifications, keyed by function content
	// and configuration (see memo.go for the soundness model). Results
	// are byte-identical with and without it; only the work changes.
	// Production paths share ProcessMemo(); nil disables memoization.
	Memo *Memo
	// MemoStore, when set alongside Memo, persists memo entries through
	// the content-addressed cache store ("funcsum" entries), so
	// identical functions are analyzed once per machine, not just once
	// per process.
	MemoStore *cache.Store
	// ResolverLayers selects the depth of the layered indirect-call
	// resolver (see resolver.go), which refines the per-site fan-out of
	// indirect calls and jumps before reachability and the backward
	// search run: -1 disables it (every site reaches the whole active
	// address-taken set, the pre-resolver behavior), 1 enables
	// code-pointer provenance through immutable data, 2 — the default
	// for the zero value — adds call-signature pruning on top. Every
	// setting is sound; higher layers only shrink the identified set.
	// The value participates in memo and summary-cache fingerprints.
	ResolverLayers int
}

func (c Config) withDefaults() Config {
	if c.Budget == nil {
		c.Budget = symex.NewBudget()
	}
	if c.MaxBFSDepth == 0 {
		c.MaxBFSDepth = 256
	}
	if c.MaxFrontier == 0 {
		c.MaxFrontier = 4_096
	}
	if c.StackParams == 0 {
		c.StackParams = 8
	}
	if c.SyscallUpper == 0 || c.SyscallUpper > linux.SyscallSetBits {
		c.SyscallUpper = linux.SyscallSetBits
	}
	if c.ResolverLayers == 0 {
		c.ResolverLayers = 2
	}
	return c
}

// SiteResult describes the outcome for one identification target: a
// syscall instruction, or — for wrapper and import-wrapper redirection —
// one call site of the wrapper.
type SiteResult struct {
	// Addr is the address of the site's final instruction (the syscall
	// or the call into the wrapper).
	Addr uint64
	// Block is the CFG block whose last instruction is the site.
	Block *cfg.Block
	// Kind explains what was identified.
	Kind SiteKind
	// Wrapper is the wrapper function entry for redirected sites.
	Wrapper uint64
	// Syscalls lists the resolved syscall numbers at this site.
	Syscalls []uint64
	// FailOpen is set when the search could not bound the value set;
	// the binary-level report then falls back to the full table for
	// soundness.
	FailOpen bool
	// BlocksExplored counts symbolically executed blocks for this site.
	BlocksExplored int
}

// SiteKind classifies identification targets.
type SiteKind uint8

// Site kinds.
const (
	// SitePlain is a syscall instruction in a non-wrapper function.
	SitePlain SiteKind = iota + 1
	// SiteWrapperDef is a syscall inside a detected wrapper; it carries
	// no values itself (they are attributed to call sites).
	SiteWrapperDef
	// SiteWrapperCall is a call site of a local wrapper function.
	SiteWrapperCall
	// SiteImportCall is a call site of an imported wrapper function.
	SiteImportCall
)

// String names the site kind.
func (k SiteKind) String() string {
	switch k {
	case SitePlain:
		return "plain"
	case SiteWrapperDef:
		return "wrapper-def"
	case SiteWrapperCall:
		return "wrapper-call"
	case SiteImportCall:
		return "import-call"
	}
	return "?"
}

// WrapperInfo describes a detected syscall wrapper.
type WrapperInfo struct {
	FnEntry  uint64
	FnName   string
	SiteAddr uint64
	Param    symex.ParamRef
}

// Stats reports analysis effort (Table 3's columns).
type Stats struct {
	WrapperDetect  time.Duration
	Identify       time.Duration
	BlocksExplored int
	SyscallSites   int
	Wrappers       int
}

// Report is the identification result for one binary.
type Report struct {
	// Syscalls is the deduplicated, sorted union over all sites, with
	// artifacts above SyscallUpper dropped.
	Syscalls []uint64
	// Sites holds per-target details, ordered by (Addr, Kind, Wrapper).
	Sites []SiteResult
	// Wrappers lists detected wrapper functions.
	Wrappers []WrapperInfo
	// ReachableImports lists imported symbols the program can call.
	ReachableImports []string
	// FailOpen is set when at least one site could not be bounded; the
	// caller must union the full syscall table to preserve soundness.
	FailOpen bool
	// Stats describes the work performed.
	Stats Stats
}

// HasSyscall reports whether n is in the identified set.
func (r *Report) HasSyscall(n uint64) bool {
	i := sort.Search(len(r.Syscalls), func(i int) bool { return r.Syscalls[i] >= n })
	return i < len(r.Syscalls) && r.Syscalls[i] == n
}

// Analyze identifies the system calls of the binary behind g, running
// both stages back to back (across conf.Workers goroutines when set).
func Analyze(g *cfg.Graph, conf Config) (*Report, error) {
	p := Prepare(g, conf)
	if err := p.DetectWrappers(); err != nil {
		return nil, err
	}
	return p.Identify()
}

// Pass is the staged form of the identification analysis. A Pass is
// built once per binary by Prepare; DetectWrappers and Identify then
// run as distinct, separately timed pipeline stages. The Pass reads
// the Graph but never mutates it, so its units can share the graph
// with concurrent readers.
type Pass struct {
	g       *cfg.Graph
	conf    Config
	machine *symex.Machine
	reach   *cfg.BlockSet

	// siteTargets is the resolver's candidate-target index: site block
	// ID -> refined target set, nil when the resolver is off or found
	// nothing to refine. It never adds edges — allowEdge only filters.
	siteTargets map[int]*cfg.BlockSet

	sites     []*cfg.Block // reachable syscall sites, address order
	importSet map[string]bool
	imports   []string

	wrappers     map[uint64]*WrapperInfo // function entry -> info
	wrapperInfos []WrapperInfo
	wrapTime     time.Duration

	// memoConf is the configuration fragment of every memo key; empty
	// when memoization is off.
	memoConf string
	// fnHash caches funcFingerprint per function for this pass.
	fnHashMu sync.Mutex
	fnHash   map[*cfg.Func]string

	// scratchPool holds per-search scratch bundles; setPool holds bare
	// block sets for the smaller dedup jobs. Both are sized for g, so
	// buffers recycle across the pass's units and goroutines.
	scratchPool sync.Pool
	setPool     sync.Pool
}

// Prepare resolves the cheap shared facts of a binary's identification:
// reachability, the reachable syscall sites, and the reachable imports.
func Prepare(g *cfg.Graph, conf Config) *Pass {
	conf = conf.withDefaults()
	p := &Pass{g: g, conf: conf, machine: symex.NewMachine(g, conf.Budget)}
	if conf.Memo != nil {
		p.memoConf = memoConfKey(conf)
		p.fnHash = make(map[*cfg.Func]string)
	}
	numBlocks := g.NumBlocks()
	p.scratchPool.New = func() any { return newSearchScratch(numBlocks) }
	p.setPool.New = func() any { return cfg.NewBlockSet(numBlocks) }
	if conf.ResolverLayers > 0 && g.Bin != nil {
		p.siteTargets = resolveIndirectSites(g, conf.ResolverLayers)
	}
	p.reach = g.ReachableSetFiltered(p.allowEdge, g.Roots...)

	p.importSet = make(map[string]bool)
	for _, blk := range g.SortedBlocks() {
		if !p.reach.Has(blk) {
			continue
		}
		if blk.ImportCall != "" {
			p.importSet[blk.ImportCall] = true
		}
		if blk.EndsInSyscall() {
			p.sites = append(p.sites, blk)
		}
	}
	p.imports = sortedStrings(p.importSet)
	return p
}

// getSet returns an empty pooled BlockSet sized for the graph.
func (p *Pass) getSet() *cfg.BlockSet {
	s := p.setPool.Get().(*cfg.BlockSet)
	s.Reset()
	return s
}

func (p *Pass) putSet(s *cfg.BlockSet) { p.setPool.Put(s) }

// funcHash returns (and caches) the content fingerprint of fn.
func (p *Pass) funcHash(fn *cfg.Func) string {
	p.fnHashMu.Lock()
	h, ok := p.fnHash[fn]
	p.fnHashMu.Unlock()
	if ok {
		return h
	}
	h = funcFingerprint(fn)
	p.fnHashMu.Lock()
	p.fnHash[fn] = h
	p.fnHashMu.Unlock()
	return h
}

// SiteCount returns how many reachable syscall sites the pass covers.
func (p *Pass) SiteCount() int { return len(p.sites) }

// ReachableImports returns the imported symbols the binary can call.
func (p *Pass) ReachableImports() []string { return p.imports }

// Wrappers returns the wrappers found by DetectWrappers.
func (p *Pass) Wrappers() []WrapperInfo { return p.wrapperInfos }

// forEachUnit runs fn(i) for every unit index in [0, n) across at most
// workers goroutines. fn must confine its writes to slot i of the
// caller's result slice; the caller then merges slots in index order,
// which is what makes the parallel analysis order-invariant. The
// returned error is the lowest-index one, again independent of
// scheduling.
//
// Each unit runs inside its own fault boundary: a panic in fn is
// recovered on the goroutine it happened on (Go offers no other way —
// an unrecovered panic in a pool goroutine kills the process no matter
// what the spawner deferred) and surfaces as that unit's error, so one
// hostile function costs one unit, and the stage above reports it like
// any other failure.
func forEachUnit(n, workers int, fn func(i int) error) error {
	call := func(i int) error {
		return guard.Capture("unit", "", func() error {
			if err := faults.Fire(faults.IdentUnit, strconv.Itoa(i)); err != nil {
				return err
			}
			return fn(i)
		})
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DetectWrappers runs phase G — the two-phase wrapper heuristic — once
// per distinct function containing a reachable syscall site. Functions
// are independent units: each goroutine symbolically executes within
// one function's blocks against the shared (atomic) budget. Both
// positive and negative verdicts are kept, so a function with several
// sites is only analyzed once.
func (p *Pass) DetectWrappers() error {
	start := time.Now()

	// Unit list: distinct containing functions, in the address order of
	// their first reachable site.
	type unit struct {
		fn   *cfg.Func
		site *cfg.Block
	}
	var units []unit
	seen := make(map[uint64]bool)
	for _, site := range p.sites {
		fn, ok := p.g.FuncContaining(site.Addr)
		if !ok || seen[fn.Entry] {
			continue
		}
		seen[fn.Entry] = true
		units = append(units, unit{fn: fn, site: site})
	}

	results := make([]*WrapperInfo, len(units))
	err := forEachUnit(len(units), p.conf.Workers, func(i int) error {
		info, isWrapper, err := p.detectWrapper(units[i].fn, units[i].site)
		if err != nil {
			return fmt.Errorf("wrapper detection: %w", err)
		}
		if isWrapper {
			results[i] = info
		}
		return nil
	})
	if err != nil {
		return err
	}

	p.wrappers = make(map[uint64]*WrapperInfo)
	for _, info := range results {
		if info != nil {
			p.wrappers[info.FnEntry] = info
			p.wrapperInfos = append(p.wrapperInfos, *info)
		}
	}
	p.wrapTime = time.Since(start)
	return nil
}

// Identify runs phase H — per-site type identification — and assembles
// the Report. Each identification target (a plain site with its wrapper
// redirections, or one import wrapper's call sites) is an independent
// unit; unit results are merged in unit order, so the Report does not
// depend on scheduling. DetectWrappers must have run first.
func (p *Pass) Identify() (*Report, error) {
	if p.wrappers == nil {
		if err := p.DetectWrappers(); err != nil {
			return nil, err
		}
	}
	identStart := time.Now()

	// Unit lists: one per reachable syscall site (covering the wrapper
	// redirection fan-out), then one per import wrapper, in sorted name
	// order — a fixed sequence regardless of map iteration.
	siteUnits := p.sites
	var importUnits []string
	for name := range p.conf.ImportWrappers {
		if p.importSet[name] {
			importUnits = append(importUnits, name)
		}
	}
	sort.Strings(importUnits)

	results := make([][]SiteResult, len(siteUnits)+len(importUnits))
	err := forEachUnit(len(results), p.conf.Workers, func(i int) error {
		if i < len(siteUnits) {
			results[i] = p.identifySiteUnit(siteUnits[i])
		} else {
			results[i] = p.identifyImportUnit(importUnits[i-len(siteUnits)])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Wrappers:         p.wrapperInfos,
		ReachableImports: p.imports,
	}
	rep.Stats.SyscallSites = len(p.sites)
	rep.Stats.Wrappers = len(p.wrappers)
	rep.Stats.WrapperDetect = p.wrapTime

	var values linux.SyscallBitset
	for _, unit := range results {
		for _, res := range unit {
			rep.Sites = append(rep.Sites, res)
			rep.Stats.BlocksExplored += res.BlocksExplored
			if res.FailOpen {
				rep.FailOpen = true
			}
			for _, v := range res.Syscalls {
				if v < p.conf.SyscallUpper {
					values.Add(v)
				}
			}
		}
	}

	rep.Stats.Identify = time.Since(identStart)
	if p.conf.Budget.Exhausted() {
		return nil, fmt.Errorf("identification: %w", ErrTimeout)
	}

	rep.Syscalls = values.Append(make([]uint64, 0, values.Len()))
	// One block can be the call site of several targets (an indirect
	// call with multiple wrapper candidates), so Addr alone is not a
	// total order; the (Kind, Wrapper) tiebreak keeps the listing
	// stable across runs and worker counts.
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Wrapper < b.Wrapper
	})
	return rep, nil
}

// identifySiteUnit resolves one reachable syscall site: either the site
// itself (plain functions), or — when the containing function is a
// wrapper — the wrapper-def record plus every reachable call site of
// the wrapper, identified against the wrapper's number parameter.
func (p *Pass) identifySiteUnit(site *cfg.Block) []SiteResult {
	if fn, _ := p.g.FuncContaining(site.Addr); fn != nil {
		if w, isWrapper := p.wrappers[fn.Entry]; isWrapper {
			out := []SiteResult{{
				Addr:    site.Last().Addr,
				Block:   site,
				Kind:    SiteWrapperDef,
				Wrapper: fn.Entry,
			}}
			for _, callBlk := range p.callSitesOf(fn.Entry) {
				res := p.identify(callBlk, &w.Param)
				res.Kind = SiteWrapperCall
				res.Wrapper = fn.Entry
				out = append(out, res)
			}
			return out
		}
	}
	res := p.identify(site, nil)
	res.Kind = SitePlain
	return []SiteResult{res}
}

// identifyImportUnit resolves every reachable call site of one imported
// wrapper (e.g. libc's syscall() used by the program) against the
// parameter recorded in the library's shared interface.
func (p *Pass) identifyImportUnit(name string) []SiteResult {
	param := p.conf.ImportWrappers[name]
	var out []SiteResult
	for _, callBlk := range p.importCallSites(name) {
		pr := param
		res := p.identify(callBlk, &pr)
		res.Kind = SiteImportCall
		out = append(out, res)
	}
	return out
}

// callSitesOf returns the reachable blocks that call the function at
// entry (directly or through a resolved indirect edge).
func (p *Pass) callSitesOf(entry uint64) []*cfg.Block {
	entryBlk, ok := p.g.BlockAt(entry)
	if !ok {
		return nil
	}
	var out []*cfg.Block
	seen := p.getSet()
	for _, e := range entryBlk.Preds {
		if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
			continue
		}
		// An indirect caller the resolver excluded does not actually
		// reach this function; attributing its values here would undo
		// the refinement.
		if !p.allowEdge(e) {
			continue
		}
		if !p.reach.Has(e.From) || !seen.Add(e.From) {
			continue
		}
		out = append(out, e.From)
	}
	p.putSet(seen)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// importCallSites returns reachable blocks that transfer to the named
// import: direct calls through [rip+slot], and calls to its local stub.
func (p *Pass) importCallSites(name string) []*cfg.Block {
	var out []*cfg.Block
	seen := p.getSet()
	defer p.putSet(seen)
	add := func(b *cfg.Block) {
		if b != nil && p.reach.Has(b) && seen.Add(b) {
			out = append(out, b)
		}
	}
	for _, blk := range p.g.SortedBlocks() {
		if blk.ImportCall == name && p.reach.Has(blk) && blk.Last().Op == x86.OpCallInd {
			add(blk)
		}
	}
	// Calls to the PLT-style stub: the stub block carries ImportCall
	// and is reached via EdgeCall from the real call sites.
	for stubAddr, stubName := range p.g.ImportStubs {
		if stubName != name {
			continue
		}
		if stub, ok := p.g.BlockAt(stubAddr); ok {
			for _, e := range stub.Preds {
				if (e.Kind == cfg.EdgeCall || e.Kind == cfg.EdgeIndirectCall) && p.allowEdge(e) {
					add(e.From)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
