package ident

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/symex"
	"bside/internal/testbin"
	"bside/internal/x86"
)

func analyzeProgram(t *testing.T, fn func(b *asm.Builder)) *Report {
	t.Helper()
	bin, _ := testbin.Build(t, elff.KindStatic, fn, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rep, err := Analyze(g, Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func wantSyscalls(t *testing.T, rep *Report, want ...uint64) {
	t.Helper()
	if !reflect.DeepEqual(rep.Syscalls, want) {
		t.Fatalf("syscalls = %v, want %v (failopen=%v)", rep.Syscalls, want, rep.FailOpen)
	}
	if rep.FailOpen {
		t.Fatal("unexpected fail-open")
	}
}

func TestIdentifySameBlock(t *testing.T) {
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 60)
}

func TestIdentifyAcrossBlocks(t *testing.T) {
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		b.CmpRegImm(x86.RDI, 0)
		b.Jcc(x86.CondE, "sys")
		b.MovRegImm32(x86.RAX, 0)
		b.Label("sys")
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 0, 2)
}

func TestIdentifyThroughStack(t *testing.T) {
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 1)
		b.Nop()
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1})
		b.Syscall()
		b.AddRegImm(x86.RSP, 16)
		b.Ret()
	})
	wantSyscalls(t, rep, 1)
}

func TestIdentifyLocalRegisterWrapper(t *testing.T) {
	// A libc-style wrapper with the number in rdi, called twice with
	// different constants. The wrapper must be detected, its own site
	// must contribute nothing, and the two call sites must resolve.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 39) // getpid
		b.CallLabel("do_syscall")
		b.MovRegImm32(x86.RDI, 57) // fork
		b.CallLabel("do_syscall")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("do_syscall")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 39, 57, 60)
	if len(rep.Wrappers) != 1 {
		t.Fatalf("wrappers: %+v", rep.Wrappers)
	}
	w := rep.Wrappers[0]
	if w.FnName != "do_syscall" || w.Param.Stack || w.Param.Reg != x86.RDI {
		t.Fatalf("wrapper: %+v", w)
	}
	var kinds []SiteKind
	for _, s := range rep.Sites {
		kinds = append(kinds, s.Kind)
	}
	wantKinds := map[SiteKind]int{SitePlain: 1, SiteWrapperDef: 1, SiteWrapperCall: 2}
	got := map[SiteKind]int{}
	for _, k := range kinds {
		got[k]++
	}
	if !reflect.DeepEqual(got, wantKinds) {
		t.Fatalf("site kinds: %v", got)
	}
}

func TestIdentifyStackArgWrapper(t *testing.T) {
	// A Go-style wrapper taking the number on the stack: the immediate
	// travels through memory at every call site (the case SysFilter
	// cannot handle, §2.4/Fig 1-C).
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 35) // nanosleep
		b.CallLabel("go_syscall")
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 202) // futex
		b.CallLabel("go_syscall")
		b.AddRegImm(x86.RSP, 16)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("go_syscall")
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 35, 60, 202)
	if len(rep.Wrappers) != 1 {
		t.Fatalf("wrappers: %+v", rep.Wrappers)
	}
	w := rep.Wrappers[0]
	if !w.Param.Stack || w.Param.Off != 8 {
		t.Fatalf("wrapper param: %+v", w.Param)
	}
}

func TestIdentifyWrapperDefinitionsFarFromCall(t *testing.T) {
	// The syscall number is computed several blocks before the wrapper
	// call, passing through a register chain.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RBX, 10) // mprotect...
		b.Nop()
		b.MovRegReg(x86.RDI, x86.RBX)
		b.CmpRegImm(x86.RBX, 0)
		b.Jcc(x86.CondNE, "call")
		b.MovRegImm32(x86.RDI, 11) // ...or munmap
		b.Label("call")
		b.CallLabel("w")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("w")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 10, 11, 60)
}

func TestIdentifyPopularFunctionBetweenDefAndSite(t *testing.T) {
	// Figure 2-A: a popular helper is called between the immediate
	// definition and the syscall. The search must not explode into the
	// helper's other callers, and the callee-saved value must survive.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RBX, 3)
		b.CallLabel("memcpyish")
		b.MovRegReg(x86.RAX, x86.RBX)
		b.Syscall()
		// Several other callers of the helper.
		b.CallLabel("memcpyish")
		b.CallLabel("memcpyish")
		b.Ret()
		b.Func("memcpyish")
		b.MovRegImm32(x86.RAX, 1111)
		b.Ret()
	})
	wantSyscalls(t, rep, 3)
}

func TestImportWrapperCallSites(t *testing.T) {
	// The program imports a wrapper (libc syscall()) and calls it with
	// a constant; the interface tells us which parameter carries the
	// number.
	bin, syms := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 41) // socket
		b.CallLabel("stub_syscall")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_syscall")
		b.JmpMemRIP("got_syscall")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_syscall")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "syscall", SlotAddr: syms["got_syscall"]}}
		spec.Needed = []string{"libc.so"}
	})
	_ = syms
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, Config{
		ImportWrappers: map[string]symex.ParamRef{
			"syscall": {Reg: x86.RDI},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSyscalls(t, rep, 41, 60)
	if len(rep.ReachableImports) != 1 || rep.ReachableImports[0] != "syscall" {
		t.Fatalf("imports: %v", rep.ReachableImports)
	}
}

func TestIndirectCallTargetsIdentified(t *testing.T) {
	// A syscall reached only through a function pointer.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Lea(x86.RDX, "handler")
		b.CallReg(x86.RDX)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("handler")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 1, 60)
}

func TestJumpTableDispatchIdentified(t *testing.T) {
	// A switch-style jump table: the case targets are function pointers
	// in DATA, invisible to the lea-based address-taken scan; the
	// data-pointer harvest must pull them in so their syscalls are not
	// false negatives.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RCX, 1)
		b.Lea(x86.RDX, "table")
		b.MovRegMem(x86.RDX, x86.Mem{Base: x86.RDX, Index: x86.RCX, Scale: 8})
		b.JmpReg(x86.RDX)
		b.Func("case0")
		b.MovRegImm32(x86.RAX, 11)
		b.JmpLabel("out")
		b.Func("case1")
		b.MovRegImm32(x86.RAX, 22)
		b.Label("out")
		b.Syscall()
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Label("__code_end")
		b.Align(8)
		b.Label("table")
		b.QuadLabel("case0")
		b.QuadLabel("case1")
	})
	wantSyscalls(t, rep, 11, 22, 60)
}

func TestUnreachableSyscallIgnored(t *testing.T) {
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("dead")
		b.MovRegImm32(x86.RAX, 57)
		b.Syscall()
		b.Ret()
	})
	wantSyscalls(t, rep, 60)
}

func TestFailOpenOnUnboundedValue(t *testing.T) {
	// rax comes from a register that nothing ever defines: the search
	// must fail open rather than report a false (empty) result.
	rep := analyzeProgram(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegReg(x86.RAX, x86.R15)
		b.Syscall()
		b.Ret()
	})
	if !rep.FailOpen {
		t.Fatal("expected fail-open for unbounded %rax")
	}
}

func TestTimeoutPropagates(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		for i := 0; i < 64; i++ {
			b.CallLabel("w")
		}
		b.Ret()
		b.Func("w")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(g, Config{Budget: &symex.Budget{MaxSteps: 50, MaxForks: 2, MaxVisits: 2}})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

// TestDeadlinePropagates: a budget whose wall-clock deadline has passed
// must time the analysis out exactly like an exhausted step budget —
// the paper's per-binary timeout semantics.
func TestDeadlinePropagates(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := symex.NewBudget()
	budget.Deadline = time.Now().Add(-time.Second)
	_, err = Analyze(g, Config{Budget: budget})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// The same budget with a generous deadline succeeds.
	budget = symex.NewBudget()
	budget.Deadline = time.Now().Add(time.Hour)
	if _, err := Analyze(g, Config{Budget: budget}); err != nil {
		t.Fatalf("future deadline must not time out: %v", err)
	}
}

func TestExportProfiles(t *testing.T) {
	// A mini libc: write() does syscall 1, exit() does 60, syscall() is
	// a wrapper, and dual() calls the wrapper with a constant.
	bin, _ := testbin.Build(t, elff.KindShared, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
		b.Func("exit")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("syscall")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
		b.Func("dual")
		b.MovRegImm32(x86.RDI, 102) // getuid
		b.CallLabel("syscall")
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{
			{Name: "write", Addr: syms["write"]},
			{Name: "exit", Addr: syms["exit"]},
			{Name: "syscall", Addr: syms["syscall"]},
			{Name: "dual", Addr: syms["dual"]},
		}
	})
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	profiles := ExportProfiles(g, rep)
	byName := make(map[string]ExportProfile)
	for _, p := range profiles {
		byName[p.Name] = p
	}
	if got := byName["write"].Syscalls; !reflect.DeepEqual(got, []uint64{1}) {
		t.Errorf("write: %v", got)
	}
	if got := byName["exit"].Syscalls; !reflect.DeepEqual(got, []uint64{60}) {
		t.Errorf("exit: %v", got)
	}
	sw := byName["syscall"]
	if sw.Wrapper == nil || sw.Wrapper.Reg != x86.RDI || sw.Wrapper.Stack {
		t.Errorf("syscall wrapper: %+v", sw.Wrapper)
	}
	if got := byName["dual"].Syscalls; !reflect.DeepEqual(got, []uint64{102}) {
		t.Errorf("dual: %v", got)
	}
}
