// Per-function summary memoization: the content-addressed fast path of
// the identification pass. Two analyses of byte-identical functions do
// byte-identical work, so the work is done once per process — and, when
// a persistent store is attached, once per machine — with the results
// keyed by a fingerprint of everything the analysis can observe.
//
// Soundness model. A memo entry may be reused only when the recorded
// computation was a pure function of the fingerprinted content:
//
//   - Wrapper detection is confined to the containing function by
//     construction (the use-define scan filters to in-function
//     predecessors; the symbolic confirmation restricts execution to the
//     function's own blocks, with out-of-set calls havocked identically
//     whatever they target), so every verdict is memoizable.
//   - The per-site backward search crosses function boundaries through
//     caller edges, so a site result is memoized only when the whole
//     search — every visited frontier block and every predecessor it
//     enumerated — stayed inside the containing function (tracked by
//     the search itself; the common Figure 1-A case, a defining
//     immediate next to its syscall, always qualifies).
//   - Results whose shape was influenced by the shared symbolic budget
//     (a HitBudget fail-open) are never stored: budget state is global
//     mutable context, not function content.
//
// The fingerprint covers the function's block addresses, decoded
// instructions, import-call labels and intra-function edges, plus every
// Config knob that can alter a function-local result. Absolute
// addresses are part of the key: two functions hit the same entry only
// when they are byte-identical *and* identically placed — exactly the
// shape of shared stubs and duplicated bodies across a corpus family or
// a batch of binaries stamped from one layout.
package ident

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bside/internal/cache"
	"bside/internal/cfg"
	"bside/internal/symex"
	"bside/internal/x86"
)

// memoKind is the cache-store partition for persisted function
// summaries, living alongside the "interface" and "program" envelopes.
const memoKind = "funcsum"

// maxMemoEntries bounds the process-wide in-memory memo. The cap is a
// backstop against unbounded growth in fleet-sized runs; entries are
// content-addressed, so refusing to add one never changes results —
// only the speed of the next identical function.
const maxMemoEntries = 1 << 18

// persistMinBlocks gates which site records reach the on-disk store: a
// search that executed fewer blocks than this is cheaper to redo than a
// file write plus rename, so only the expensive searches — deep
// backward walks, wide wrapper fan-outs — pay the I/O. The gate is a
// deterministic function of the (deterministic) block count, so the
// disk tier stays content-consistent. In-memory memoization is not
// gated; it is cheap at any size.
const persistMinBlocks = 16

// Memo is a concurrency-safe, content-addressed store of per-function
// analysis results. The zero value is ready to use. One process-wide
// instance (ProcessMemo) is shared by every analyzer so identical
// functions are analyzed once per process; a cache.Store passed per
// lookup (Config.MemoStore) additionally persists entries across
// processes, alongside the shared-interface envelopes.
type Memo struct {
	entries sync.Map // memo key -> wrapperRec | siteRec
	size    atomic.Int64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

var processMemo Memo

// ProcessMemo returns the process-wide function-summary memo.
func ProcessMemo() *Memo { return &processMemo }

// MemoStats is a snapshot of memo traffic.
type MemoStats struct {
	// Hits counts lookups served from memory or the persistent store.
	Hits uint64
	// Misses counts lookups that had to run the real analysis.
	Misses uint64
	// Entries is the current in-memory entry count.
	Entries int64
}

// Stats returns the memo's counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load(), Entries: m.size.Load()}
}

// wrapperRec is the persisted form of one wrapper-detection verdict.
// Steps/Forks are the original computation's budget consumption,
// replayed into the shared budget on every hit so memoized and
// unmemoized analyses drain it identically (a tight budget must
// exhaust at the same point in both modes).
type wrapperRec struct {
	Wrapper bool           `json:"wrapper,omitempty"`
	Param   symex.ParamRef `json:"param,omitempty"`
	Steps   int            `json:"steps,omitempty"`
	Forks   int            `json:"forks,omitempty"`
}

// siteRec is the persisted form of one self-contained site
// identification. Steps/Forks replay like wrapperRec's.
type siteRec struct {
	Syscalls []uint64 `json:"syscalls,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
	Blocks   int      `json:"blocks,omitempty"` // symbolically executed blocks
	Steps    int      `json:"steps,omitempty"`
	Forks    int      `json:"forks,omitempty"`
}

// storeKey renders a memo key as a cache-store key: the store wants a
// path-safe content hash, and the memo key already is content — so its
// digest is the address.
func storeKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// load fetches the entry for key into out (a *wrapperRec or *siteRec),
// first from memory, then from st when one is configured.
func (m *Memo) load(key string, st *cache.Store, out any) bool {
	if m == nil {
		return false
	}
	if v, ok := m.entries.Load(key); ok {
		m.hits.Add(1)
		switch rec := v.(type) {
		case wrapperRec:
			*out.(*wrapperRec) = rec
		case siteRec:
			*out.(*siteRec) = rec
		}
		return true
	}
	if st != nil {
		if st.Load(memoKind, storeKey(key), "", out) {
			m.hits.Add(1)
			// Promote to memory so the disk round trip is paid once.
			m.remember(key, recValue(out))
			return true
		}
	}
	m.misses.Add(1)
	return false
}

func recValue(out any) any {
	switch rec := out.(type) {
	case *wrapperRec:
		return *rec
	case *siteRec:
		return *rec
	}
	return nil
}

// save records a freshly computed entry in memory and, when a store is
// configured, on disk.
func (m *Memo) save(key string, st *cache.Store, rec any) {
	if m == nil {
		return
	}
	m.remember(key, rec)
	if st != nil {
		// Best-effort, like every other cache write.
		_ = st.Store(memoKind, storeKey(key), "", rec)
	}
}

func (m *Memo) remember(key string, rec any) {
	if rec == nil || m.size.Load() >= maxMemoEntries {
		return
	}
	if _, loaded := m.entries.LoadOrStore(key, rec); !loaded {
		m.size.Add(1)
	}
}

// memoConfKey canonically renders every Config field that can change a
// function-local result. Workers is excluded (it never changes
// results); the budget's deadline is excluded (wall-clock state, and
// budget-shaped results are never stored).
func memoConfKey(c Config) string {
	return fmt.Sprintf("bfs=%d,fr=%d,sp=%d,up=%d,rl=%d,bud=%d/%d/%d",
		c.MaxBFSDepth, c.MaxFrontier, c.StackParams, c.SyscallUpper,
		c.ResolverLayers,
		c.Budget.MaxSteps, c.Budget.MaxForks, c.Budget.MaxVisits)
}

// funcFingerprint hashes everything a function-confined analysis can
// observe: entry, per-block addresses, import-call labels, decoded
// instructions (all operand fields), and the intra-function successor
// edges in their original order (edge targets outside the function are
// omitted — a confined search treats "edge out of the set" and "no
// edge" identically). Preds within the function mirror the encoded
// succs; preds from outside the function disqualify a site from
// memoization before the hash matters.
func funcFingerprint(fn *cfg.Func) string {
	h := sha256.New()
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	inFn := func(b *cfg.Block) bool {
		return b.Addr >= fn.Entry && b.Addr < fn.End() && blockInFunc(fn, b)
	}
	putOp := func(op x86.Operand) {
		h.Write([]byte{byte(op.Kind), byte(op.Reg)})
		putU64(uint64(op.Imm))
		h.Write([]byte{byte(op.Mem.Base), byte(op.Mem.Index), op.Mem.Scale})
		putU64(uint64(int64(op.Mem.Disp)))
	}
	putU64(fn.Entry)
	putU64(uint64(len(fn.Blocks)))
	for _, b := range fn.Blocks {
		putU64(b.Addr)
		putU64(uint64(len(b.ImportCall)))
		h.Write([]byte(b.ImportCall))
		putU64(uint64(len(b.Insns)))
		for _, in := range b.Insns {
			putU64(in.Addr)
			h.Write([]byte{in.Len, byte(in.Op), byte(in.Cond), in.OpSize})
			putOp(in.Dst)
			putOp(in.Src)
		}
		for _, e := range b.Succs {
			if !inFn(e.To) {
				continue
			}
			h.Write([]byte{byte(e.Kind)})
			putU64(e.To.Addr)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// blockInFunc reports whether b is one of fn's member blocks (the
// nearest-preceding-entry rule can strand range-contained blocks in a
// neighbouring function, so the range check alone is not enough).
func blockInFunc(fn *cfg.Func, b *cfg.Block) bool {
	i := sort.Search(len(fn.Blocks), func(i int) bool { return fn.Blocks[i].Addr >= b.Addr })
	return i < len(fn.Blocks) && fn.Blocks[i] == b
}
