package ident

import (
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/cache"
	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/symex"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// memoBinary is a corpus profile with every site pattern the memo must
// handle: same-block immediates, wrappers (whose call-site searches
// cross functions), stack wrappers, handlers, dead code.
func memoBinary(t *testing.T) *elff.Binary {
	t.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "memo", Kind: elff.KindStatic,
		HotDirect: 6, HotWrapper: 3, HotStack: 2, Handlers: 2,
		ColdDirect: 3, ColdWrapper: 1, StackedTruth: 1,
		Filler: 12, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// stripStats clears the wall-clock fields that legitimately differ
// between runs; everything else must be byte-identical.
func stripStats(rep *Report) *Report {
	c := *rep
	c.Stats.WrapperDetect = 0
	c.Stats.Identify = 0
	return &c
}

// TestMemoizedReportIsByteIdentical analyzes the same binary three
// ways — memo off, memo cold, memo warm — and requires identical
// reports, including per-site details and effort stats.
func TestMemoizedReportIsByteIdentical(t *testing.T) {
	bin := memoBinary(t)
	recover := func() *cfg.Graph {
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	bud := func() *symex.Budget { return symex.NewBudget() }
	plainBud, coldBud, warmBud := bud(), bud(), bud()

	plain, err := Analyze(recover(), Config{Budget: plainBud})
	if err != nil {
		t.Fatal(err)
	}
	memo := &Memo{}
	cold, err := Analyze(recover(), Config{Memo: memo, Budget: coldBud})
	if err != nil {
		t.Fatal(err)
	}
	st := memo.Stats()
	if st.Entries == 0 || st.Misses == 0 {
		t.Fatalf("cold run populated nothing: %+v", st)
	}
	warm, err := Analyze(recover(), Config{Memo: memo, Budget: warmBud})
	if err != nil {
		t.Fatal(err)
	}
	if hits := memo.Stats().Hits; hits == 0 {
		t.Fatalf("warm run hit nothing: %+v", memo.Stats())
	}
	// Memo hits replay the recorded consumption, so all three runs must
	// drain their budgets identically — a tight budget has to exhaust
	// at the same point with and without the memo.
	if plainBud.Steps() != warmBud.Steps() || plainBud.Forks() != warmBud.Forks() ||
		plainBud.Steps() != coldBud.Steps() || plainBud.Forks() != coldBud.Forks() {
		t.Fatalf("budget drain diverged: plain %d/%d, cold %d/%d, warm %d/%d",
			plainBud.Steps(), plainBud.Forks(), coldBud.Steps(), coldBud.Forks(),
			warmBud.Steps(), warmBud.Forks())
	}

	// Site results carry *cfg.Block pointers from their own graph;
	// compare the value content instead.
	norm := func(rep *Report) *Report {
		c := stripStats(rep)
		sites := make([]SiteResult, len(c.Sites))
		for i, s := range c.Sites {
			s.Block = nil
			if s.Syscalls == nil {
				s.Syscalls = []uint64{}
			}
			sites[i] = s
		}
		c.Sites = sites
		return c
	}
	if !reflect.DeepEqual(norm(plain), norm(cold)) {
		t.Fatalf("memo-cold drifted from memo-off:\n%+v\nvs\n%+v", norm(cold), norm(plain))
	}
	if !reflect.DeepEqual(norm(plain), norm(warm)) {
		t.Fatalf("memo-warm drifted from memo-off:\n%+v\nvs\n%+v", norm(warm), norm(plain))
	}
}

// TestMemoPersistsThroughCacheStore: a fresh Memo (a new "process")
// sharing only the funcsum store partition serves expensive site
// summaries from disk.
func TestMemoPersistsThroughCacheStore(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	// A deep fork-free block chain: every jmp ends a block, so the
	// backward search explores enough blocks to clear the
	// persistMinBlocks gate and the record reaches the disk tier.
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 1)
		for i := 0; i < 24; i++ {
			b.JmpLabel("n" + string(rune('a'+i)))
			b.Label("n" + string(rune('a'+i)))
		}
		b.Syscall()
		b.Ret()
	}, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}

	m1 := &Memo{}
	rep1, err := Analyze(g, Config{Memo: m1, MemoStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Stores == 0 {
		t.Fatal("nothing persisted to the funcsum store")
	}

	m2 := &Memo{}
	rep2, err := Analyze(g, Config{Memo: m2, MemoStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Hits == 0 {
		t.Fatalf("fresh memo did not hit the store: %+v (store %+v)", m2.Stats(), store.Stats())
	}
	if !reflect.DeepEqual(stripStats(rep1).Syscalls, stripStats(rep2).Syscalls) ||
		rep1.Stats.BlocksExplored != rep2.Stats.BlocksExplored {
		t.Fatalf("store-served run drifted: %+v vs %+v", rep2, rep1)
	}
}

// TestMemoConfKeyCarriesResolverConfig: the resolver knob is part of
// every memo key, so per-function summaries recorded under one
// resolver configuration are unreadable under another. The zero value
// normalizes to the default layer before keys are built (Prepare runs
// withDefaults first), so zero and explicit-default share entries.
func TestMemoConfKeyCarriesResolverConfig(t *testing.T) {
	key := func(rl int) string {
		return memoConfKey(Config{ResolverLayers: rl}.withDefaults())
	}
	if key(0) != key(2) {
		t.Fatalf("zero and explicit default must share memo keys:\n%q\nvs\n%q", key(0), key(2))
	}
	seen := map[string]int{}
	for _, rl := range []int{-1, 1, 2} {
		k := key(rl)
		if prev, dup := seen[k]; dup {
			t.Fatalf("resolver settings %d and %d share memo conf key %q", prev, rl, k)
		}
		seen[k] = rl
	}
}

// TestFuncsumStoreNotSharedAcrossResolverConfigs: a persisted funcsum
// recorded with the resolver off must never be replayed into a
// resolver-on analysis (or vice versa) — the recorded search could
// have walked edges the other configuration prunes.
func TestFuncsumStoreNotSharedAcrossResolverConfigs(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	// Same deep fork-free chain as the persistence test: big enough to
	// clear the persistMinBlocks gate and reach the disk tier.
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 1)
		for i := 0; i < 24; i++ {
			b.JmpLabel("n" + string(rune('a'+i)))
			b.Label("n" + string(rune('a'+i)))
		}
		b.Syscall()
		b.Ret()
	}, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}

	m1 := &Memo{}
	if _, err := Analyze(g, Config{Memo: m1, MemoStore: store, ResolverLayers: -1}); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Stores == 0 {
		t.Fatal("resolver-off run persisted nothing")
	}

	// A fresh memo under the default resolver config: the stored
	// entries carry the resolver-off conf key, so nothing may hit.
	m2 := &Memo{}
	rep, err := Analyze(g, Config{Memo: m2, MemoStore: store})
	if err != nil {
		t.Fatal(err)
	}
	if hits := m2.Stats().Hits; hits != 0 {
		t.Fatalf("resolver-on analysis replayed %d resolver-off funcsum entries", hits)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{1}) {
		t.Fatalf("recomputed result wrong: %v", rep.Syscalls)
	}
}

// TestCrossFunctionSearchIsNotMemoized: a site whose value flows in
// from a caller makes the backward search leave the containing
// function; such results must never enter the memo (their content key
// would not cover the caller).
func TestCrossFunctionSearchIsNotMemoized(t *testing.T) {
	bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 39) // getpid, defined in the caller
		b.CallLabel("helper")
		b.Ret()
		b.Func("helper")
		b.Nop()
		b.Syscall() // rax comes from _start
		b.Ret()
	}, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	memo := &Memo{}
	rep, err := Analyze(g, Config{Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{39}) || rep.FailOpen {
		t.Fatalf("analysis wrong before memo question even arises: %+v", rep)
	}
	// The helper's wrapper verdict (confined by construction) may be
	// memoized; the cross-function site identification must not be.
	memo.entries.Range(func(k, v any) bool {
		if key := k.(string); key[0] == 'i' {
			t.Fatalf("cross-function site result was memoized under %q", key)
		}
		return true
	})
}
