package ident

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"

	"bside/internal/cache"
	"bside/internal/symex"
	"bside/internal/x86"
)

// The pack-tier binary codec for "funcsum" entries. One cache kind
// holds two record shapes — wrapper-detection verdicts and
// self-contained site identifications — distinguished here by a tag
// byte. The JSON forms are unambiguous: a wrapperRec always carries
// "param" (struct fields are never omitempty-elided), a siteRec never
// does. As with the Summary codec, EncodeJSON round-trips its own
// output against what encoding/json produces and keeps the JSON
// payload on any divergence, so packing can only ever change the cost
// of a hit, not its value.
//
//	[0] tag: 1 = wrapperRec, 2 = siteRec
//
//	wrapperRec: [1] flags (bit0 Wrapper, bit1 Param.Stack),
//	  [2] Param.Reg, varint Param.Off, uvarint Steps, uvarint Forks
//	siteRec: [1] flags (bit0 FailOpen), uvarint len(Syscalls) +
//	  ascending deltas, uvarint Blocks, uvarint Steps, uvarint Forks
const (
	funcsumTagWrapper = 1
	funcsumTagSite    = 2
)

type funcsumCodec struct{}

func init() {
	cache.RegisterPackCodec(memoKind, funcsumCodec{})
}

func (funcsumCodec) EncodeJSON(payload []byte) ([]byte, bool) {
	var probe map[string]json.RawMessage
	if json.Unmarshal(payload, &probe) != nil {
		return nil, false
	}
	if _, isWrapper := probe["param"]; isWrapper {
		var rec wrapperRec
		if !strictUnmarshal(payload, &rec) {
			return nil, false
		}
		if rec.Steps < 0 || rec.Forks < 0 {
			return nil, false
		}
		buf := []byte{funcsumTagWrapper, 0}
		if rec.Wrapper {
			buf[1] |= 1
		}
		if rec.Param.Stack {
			buf[1] |= 2
		}
		buf = append(buf, byte(rec.Param.Reg))
		buf = binary.AppendVarint(buf, rec.Param.Off)
		buf = binary.AppendUvarint(buf, uint64(rec.Steps))
		buf = binary.AppendUvarint(buf, uint64(rec.Forks))
		var back wrapperRec
		if !decodeFuncsum(buf, &back) || !reflect.DeepEqual(back, rec) {
			return nil, false
		}
		return buf, true
	}
	var rec siteRec
	if !strictUnmarshal(payload, &rec) {
		return nil, false
	}
	if rec.Blocks < 0 || rec.Steps < 0 || rec.Forks < 0 {
		return nil, false
	}
	buf := []byte{funcsumTagSite, 0}
	if rec.FailOpen {
		buf[1] |= 1
	}
	var ok bool
	if buf, ok = cache.AppendDeltas(buf, rec.Syscalls); !ok {
		return nil, false
	}
	buf = binary.AppendUvarint(buf, uint64(rec.Blocks))
	buf = binary.AppendUvarint(buf, uint64(rec.Steps))
	buf = binary.AppendUvarint(buf, uint64(rec.Forks))
	var back siteRec
	if !decodeFuncsum(buf, &back) || !reflect.DeepEqual(back, rec) {
		return nil, false
	}
	return buf, true
}

func (funcsumCodec) Decode(data []byte, out any) bool {
	return decodeFuncsum(data, out)
}

// decodeFuncsum decodes into out, failing on a tag/type mismatch (the
// probe falls through — a Load for a wrapper key can never be answered
// by a site record or vice versa).
func decodeFuncsum(data []byte, out any) bool {
	if len(data) < 2 {
		return false
	}
	r := cache.NewPayloadReader(data)
	switch r.Byte() {
	case funcsumTagWrapper:
		rec, ok := out.(*wrapperRec)
		if !ok {
			return false
		}
		flags := r.Byte()
		if flags&^byte(3) != 0 {
			return false
		}
		*rec = wrapperRec{Wrapper: flags&1 != 0}
		rec.Param = symex.ParamRef{Stack: flags&2 != 0, Reg: x86.Reg(r.Byte()), Off: r.Varint()}
		rec.Steps = int(r.Uvarint())
		rec.Forks = int(r.Uvarint())
		return r.Done()
	case funcsumTagSite:
		rec, ok := out.(*siteRec)
		if !ok {
			return false
		}
		flags := r.Byte()
		if flags&^byte(1) != 0 {
			return false
		}
		*rec = siteRec{FailOpen: flags&1 != 0}
		rec.Syscalls = r.Deltas()
		rec.Blocks = int(r.Uvarint())
		rec.Steps = int(r.Uvarint())
		rec.Forks = int(r.Uvarint())
		return r.Done()
	}
	return false
}

// strictUnmarshal decodes payload into out refusing unknown fields, so
// a payload written by a newer record shape stays JSON in the pack
// instead of silently dropping data.
func strictUnmarshal(payload []byte, out any) bool {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	return dec.Decode(out) == nil
}
