package ident

import (
	"encoding/json"
	"reflect"
	"testing"

	"bside/internal/symex"
)

// TestFuncsumCodecRoundTrip: wrapper and site records must round-trip
// bit-exactly through the binary codec against the JSON oracle.
func TestFuncsumCodecRoundTrip(t *testing.T) {
	roundTrip := func(name string, in, out any) {
		t.Helper()
		payload, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		enc, ok := funcsumCodec{}.EncodeJSON(payload)
		if !ok {
			t.Fatalf("%s: codec refused %s", name, payload)
		}
		if !(funcsumCodec{}).Decode(enc, out) {
			t.Fatalf("%s: decode failed", name)
		}
		got := reflect.ValueOf(out).Elem().Interface()
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("%s: round trip drifted:\n got %+v\nwant %+v", name, got, in)
		}
	}
	wrappers := []wrapperRec{
		{},
		{Wrapper: true, Param: symex.ParamRef{Reg: 5}, Steps: 12, Forks: 1},
		{Wrapper: true, Param: symex.ParamRef{Stack: true, Off: -16}, Steps: 300},
		{Param: symex.ParamRef{Off: 1 << 20}, Forks: 7},
	}
	for _, in := range wrappers {
		var out wrapperRec
		roundTrip("wrapper", in, &out)
	}
	sites := []siteRec{
		{},
		{Syscalls: []uint64{60}, Blocks: 3, Steps: 40, Forks: 2},
		{Syscalls: []uint64{0, 1, 3, 231}, FailOpen: false, Blocks: 9},
		{FailOpen: true, Steps: 5000},
	}
	for _, in := range sites {
		var out siteRec
		roundTrip("site", in, &out)
	}
}

// TestFuncsumCodecTagTypeMismatch: a wrapper payload can never decode
// into a site record or vice versa — the probe must fall through as a
// miss rather than confuse the two shapes sharing the funcsum kind.
func TestFuncsumCodecTagTypeMismatch(t *testing.T) {
	wPayload, _ := json.Marshal(wrapperRec{Wrapper: true, Steps: 3})
	wEnc, ok := funcsumCodec{}.EncodeJSON(wPayload)
	if !ok {
		t.Fatal("codec refused a wrapper record")
	}
	sPayload, _ := json.Marshal(siteRec{Syscalls: []uint64{60}})
	sEnc, ok := funcsumCodec{}.EncodeJSON(sPayload)
	if !ok {
		t.Fatal("codec refused a site record")
	}
	var w wrapperRec
	var s siteRec
	if (funcsumCodec{}).Decode(wEnc, &s) {
		t.Error("wrapper bytes decoded into a site record")
	}
	if (funcsumCodec{}).Decode(sEnc, &w) {
		t.Error("site bytes decoded into a wrapper record")
	}
	if !(funcsumCodec{}).Decode(wEnc, &w) || !(funcsumCodec{}).Decode(sEnc, &s) {
		t.Error("matched decodes failed")
	}
}

// TestFuncsumCodecRefusals: shapes that must stay JSON in the pack.
func TestFuncsumCodecRefusals(t *testing.T) {
	for _, tc := range []struct{ name, payload string }{
		{"wrapper-unknown-field", `{"param":{"Stack":false,"Reg":0,"Off":0},"future":1}`},
		{"site-unknown-field", `{"syscalls":[1],"future":1}`},
		{"site-unsorted", `{"syscalls":[60,1]}`},
		{"wrapper-negative-steps", `{"param":{"Stack":false,"Reg":0,"Off":0},"steps":-1}`},
		{"site-negative-blocks", `{"blocks":-2}`},
		{"not-json", `{"blocks":`},
	} {
		if _, ok := (funcsumCodec{}).EncodeJSON([]byte(tc.payload)); ok {
			t.Errorf("%s: codec accepted %s", tc.name, tc.payload)
		}
	}
}

// TestFuncsumCodecDecodeRejectsDamage: truncations and unknown tags
// fail cleanly.
func TestFuncsumCodecDecodeRejectsDamage(t *testing.T) {
	payload, _ := json.Marshal(siteRec{Syscalls: []uint64{1, 60}, Blocks: 2, Steps: 9, Forks: 1})
	enc, ok := funcsumCodec{}.EncodeJSON(payload)
	if !ok {
		t.Fatal("codec refused a clean site record")
	}
	var s siteRec
	for cut := 0; cut < len(enc); cut++ {
		if (funcsumCodec{}).Decode(enc[:cut], &s) {
			t.Errorf("decoded a %d/%d-byte truncation", cut, len(enc))
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if (funcsumCodec{}).Decode(bad, &s) {
		t.Error("decoded an unknown tag")
	}
	if (funcsumCodec{}).Decode(append(append([]byte(nil), enc...), 0), &s) {
		t.Error("decoded despite trailing bytes")
	}
}
