// Layered indirect-call resolution (ROADMAP's precision push, in the
// spirit of iResolveX): instead of letting every indirect call/jump
// site fan out to the whole active address-taken set, each site gets a
// per-site candidate-target set refined by cheap static layers.
//
//   - Layer 1 (provenance): the dispatched value is chased through the
//     use-define chain, extended with 8-byte loads from immutable
//     memory — read-only data sections and RELATIVE-relocated slots.
//     A site whose operand resolves to concrete code addresses is
//     narrowed to exactly those targets.
//   - Layer 2 (call signature): at the program-entry dispatch window —
//     before any call instruction, where the ABI says no argument
//     register carries a deliberate value — candidates whose entry
//     block reads an argument register nobody may have written are
//     pruned.
//
// Soundness is by construction: any failure to refine (unresolvable
// operand, writable slot, a value the CFG did not wire, a pruned-empty
// candidate set) falls back to the unrestricted fan-out for that site.
// The refinement is expressed as an edge filter over the frozen graph
// (cfg.Graph.ReachableSetFiltered), never as graph mutation.
package ident

import (
	"bside/internal/cfg"
	"bside/internal/usedef"
	"bside/internal/x86"
)

// argMask is a bitset over the six System V integer argument registers.
type argMask uint8

const allArgs argMask = (1 << 6) - 1

func argBit(r x86.Reg) (argMask, bool) {
	switch r {
	case x86.RDI:
		return 1 << 0, true
	case x86.RSI:
		return 1 << 1, true
	case x86.RDX:
		return 1 << 2, true
	case x86.RCX:
		return 1 << 3, true
	case x86.R8:
		return 1 << 4, true
	case x86.R9:
		return 1 << 5, true
	}
	return 0, false
}

// resolveIndirectSites builds the per-image candidate-target index:
// site block ID -> refined target set. Sites absent from the map keep
// the unrestricted fan-out. layers is the normalized ResolverLayers
// (>= 1).
func resolveIndirectSites(g *cfg.Graph, layers int) map[int]*cfg.BlockSet {
	// RELATIVE relocation slots resolve like read-only memory: the
	// loader writes the recorded target at load time and RELRO-style
	// data is never legitimately rewritten after. This is what makes a
	// real binary's .data.rel.ro (writable in its section header,
	// protected by PT_GNU_RELRO after loading) usable as provenance.
	var relocSlots map[uint64]uint64
	if len(g.Bin.Relocs) > 0 {
		relocSlots = make(map[uint64]uint64, len(g.Bin.Relocs))
		for _, r := range g.Bin.Relocs {
			relocSlots[r.Slot] = r.Target
		}
	}
	memRead := func(addr uint64) (uint64, bool) {
		if t, ok := relocSlots[addr]; ok {
			return t, true
		}
		return g.Bin.ROU64At(addr)
	}

	sites := make(map[int]*cfg.BlockSet)
	reqCache := make(map[int]argMask) // candidate block ID -> required args
	var universe, cands []*cfg.Block
	for _, blk := range g.SortedBlocks() {
		if len(blk.Insns) == 0 || blk.ImportCall != "" {
			continue
		}
		op := blk.Last().Op
		if op != x86.OpCallInd && op != x86.OpJmpInd {
			continue
		}
		universe = universe[:0]
		for _, e := range blk.Succs {
			if e.Kind == cfg.EdgeIndirectCall || e.Kind == cfg.EdgeIndirectJump {
				universe = append(universe, e.To)
			}
		}
		if len(universe) == 0 {
			continue
		}
		cands = append(cands[:0], universe...)

		// Layer 1: provenance. Only adopt the resolved set when every
		// resolved address is a target the CFG wired — a value outside
		// the wired set means provenance and CFG disagree, and
		// disagreement falls back.
		if addrs, ok := siteProvenance(g, blk, memRead); ok {
			want := make(map[uint64]bool, len(addrs))
			for _, a := range addrs {
				want[a] = true
			}
			sub := cands[:0]
			matched := 0
			for _, c := range universe {
				if want[c.Addr] {
					sub = append(sub, c)
					matched++
				}
			}
			if matched == len(want) {
				cands = sub
			} else {
				cands = append(cands[:0], universe...)
			}
		}

		// Layer 2: call-signature compatibility, only at the one spot
		// where "nobody provided this argument" is provable — see
		// providedArgs. An empty pruned set means the layers disagree;
		// keep the pre-prune candidates (sound fallback).
		if layers >= 2 && op == x86.OpCallInd {
			if provided := providedArgs(g, blk); provided != allArgs {
				n := 0
				for _, c := range cands {
					req, ok := reqCache[c.ID]
					if !ok {
						req = requiredArgs(c)
						reqCache[c.ID] = req
					}
					if req&^provided == 0 {
						cands[n] = c
						n++
					}
				}
				if n > 0 {
					cands = cands[:n]
				}
			}
		}

		if len(cands) < len(universe) {
			set := cfg.NewBlockSet(g.NumBlocks())
			for _, c := range cands {
				set.Add(c)
			}
			sites[blk.ID] = set
		}
	}
	if len(sites) == 0 {
		return nil
	}
	return sites
}

// siteProvenance resolves the dispatched value of one indirect
// call/jump site to concrete addresses: register operands through the
// use-define chain (with immutable-memory loads in domain), memory
// operands through a direct immutable read of the concrete slot.
func siteProvenance(g *cfg.Graph, site *cfg.Block, memRead func(uint64) (uint64, bool)) ([]uint64, bool) {
	last := site.Last()
	switch last.Dst.Kind {
	case x86.KindReg:
		fn, ok := g.FuncContaining(site.Addr)
		if !ok {
			return nil, false
		}
		vals, ok := usedef.Resolve(usedef.Request{
			Fn:      fn,
			Block:   site,
			InsnIdx: len(site.Insns) - 1,
			Reg:     last.Dst.Reg,
			MemRead: memRead,
		})
		return vals, ok && len(vals) > 0
	case x86.KindMem:
		if ea, ok := last.MemEA(last.Dst); ok {
			if v, ok := memRead(ea); ok {
				return []uint64{v}, true
			}
		}
		// Register-indexed jump tables stay unresolved: the index is
		// data-dependent and the unrestricted fan-out already covers
		// every table entry.
		return nil, false
	}
	return nil, false
}

// providedArgs over-approximates which argument registers MAY carry a
// deliberate value at the site. allArgs means "anything" — the answer
// whenever the walk meets a call, a syscall, control flow from a
// caller, or any shape it cannot account for. A tighter answer is only
// ever produced inside the program-entry function with no callers:
// the one place the ABI pins the incoming register state (at process
// entry the integer argument registers hold nothing deliberate).
func providedArgs(g *cfg.Graph, site *cfg.Block) argMask {
	const maxBlocks = 64

	fn, ok := g.FuncContaining(site.Addr)
	if !ok || g.Bin.Entry == 0 || fn.Entry != g.Bin.Entry {
		return allArgs
	}

	var provided argMask
	// scan unions the MAY-writes of a straight-line run; false means
	// the run contains a barrier (call/syscall) past which the
	// register state is unknowable.
	scan := func(insns []x86.Inst) bool {
		for _, in := range insns {
			switch in.Op {
			case x86.OpCall, x86.OpCallInd, x86.OpSyscall:
				return false
			case x86.OpCmp, x86.OpTest, x86.OpPush:
				continue // read-only destinations
			}
			if in.Dst.Kind == x86.KindReg {
				if b, ok := argBit(in.Dst.Reg); ok {
					provided |= b
				}
			}
		}
		return true
	}

	if !scan(site.Insns[:len(site.Insns)-1]) {
		return allArgs
	}
	seen := map[int]bool{site.ID: true}
	stack := []*cfg.Block{site}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(b.Preds) == 0 {
			if b.Addr != fn.Entry {
				return allArgs // flow from nowhere: not accountable
			}
			continue // the program's true start: nothing above
		}
		for _, e := range b.Preds {
			switch e.Kind {
			case cfg.EdgeFall, cfg.EdgeJump, cfg.EdgeCallFall:
			default:
				// A call-kind predecessor means register state flows in
				// from an unaccounted caller.
				return allArgs
			}
			if seen[e.From.ID] {
				continue
			}
			if len(seen) >= maxBlocks {
				return allArgs
			}
			seen[e.From.ID] = true
			// A CallFall predecessor ends in the call itself, so scan
			// hits the barrier and bails — no special case needed.
			if !scan(e.From.Insns) {
				return allArgs
			}
			stack = append(stack, e.From)
		}
	}
	return provided
}

// requiredArgs under-approximates which argument registers the
// candidate's entry block definitely reads before writing. Only
// fully-modelled instructions extend the window; anything else —
// including the block's terminator — ends it. Keeping the answer an
// under-approximation is what makes pruning on it safe: a register is
// only reported when an incoming value is provably observed.
func requiredArgs(entry *cfg.Block) argMask {
	var req, written argMask
	for _, in := range entry.Insns {
		switch in.Op {
		case x86.OpEndbr64, x86.OpNop:
			continue
		case x86.OpMov, x86.OpMovzx, x86.OpMovsx, x86.OpMovsxd, x86.OpLea,
			x86.OpXor, x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr,
			x86.OpCmp, x86.OpTest, x86.OpShl, x86.OpShr, x86.OpInc,
			x86.OpDec, x86.OpPush, x86.OpPop:
		default:
			return req
		}
		selfZero := in.Op == x86.OpXor && in.Src.Kind == x86.KindReg &&
			in.Dst.Kind == x86.KindReg && in.Src.Reg == in.Dst.Reg
		var reads argMask
		addRead := func(r x86.Reg) {
			if b, ok := argBit(r); ok {
				reads |= b
			}
		}
		if !selfZero {
			switch in.Src.Kind {
			case x86.KindReg:
				addRead(in.Src.Reg)
			case x86.KindMem:
				addRead(in.Src.Mem.Base)
				addRead(in.Src.Mem.Index)
			}
		}
		if in.Dst.Kind == x86.KindMem {
			addRead(in.Dst.Mem.Base)
			addRead(in.Dst.Mem.Index)
		}
		if in.Dst.Kind == x86.KindReg && !selfZero {
			switch in.Op {
			case x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr, x86.OpXor,
				x86.OpShl, x86.OpShr, x86.OpInc, x86.OpDec,
				x86.OpCmp, x86.OpTest, x86.OpPush:
				addRead(in.Dst.Reg) // read-modify-write or pure read
			}
		}
		req |= reads &^ written
		if in.Dst.Kind == x86.KindReg {
			switch in.Op {
			case x86.OpCmp, x86.OpTest, x86.OpPush:
			default:
				if b, ok := argBit(in.Dst.Reg); ok {
					written |= b
				}
			}
		}
	}
	return req
}

// allowEdge is the traversal-time edge filter the resolver's index
// induces: indirect edges from a refined site pass only toward its
// candidates; everything else passes untouched.
func (p *Pass) allowEdge(e cfg.Edge) bool {
	if e.Kind != cfg.EdgeIndirectCall && e.Kind != cfg.EdgeIndirectJump {
		return true
	}
	set, ok := p.siteTargets[e.From.ID]
	if !ok || set == nil {
		return true
	}
	return set.Has(e.To)
}
