package ident

import (
	"sort"

	"bside/internal/cfg"
	"bside/internal/symex"
	"bside/internal/x86"
)

// identify implements the search of Figure 5: starting from the target
// block (which resolves Figure 1-A cases by itself), predecessors are
// explored breadth-first; each frontier node seeds a forward symbolic
// execution directed at the target through the nodes the backward
// search has already visited. A frontier node all of whose directed
// paths reach the target with a concrete value is *immediate-defining*
// and its own predecessors are pruned from the search.
//
// If param is nil the queried value is %rax before the target's syscall
// instruction; otherwise it is the given wrapper parameter before the
// target's call instruction.
func (p *Pass) identify(target *cfg.Block, param *symex.ParamRef) SiteResult {
	res := SiteResult{Addr: target.Last().Addr, Block: target}
	values := make(map[uint64]bool)

	query := func(st *symex.State) symex.Value {
		if param == nil {
			return st.Reg(x86.RAX)
		}
		return symex.ParamValueAtCall(st, *param)
	}

	directed := make(map[*cfg.Block]bool)

	// evaluate runs forward from `from` and folds the observed values.
	// It returns (allConcrete, reachedSite).
	evaluate := func(from *cfg.Block) (bool, bool) {
		run := p.machine.RunToSite(from, symex.NewState(), directed, target)
		res.BlocksExplored += run.BlocksExecuted
		if run.HitBudget {
			res.FailOpen = true
			return false, len(run.SiteStates) > 0
		}
		all := len(run.SiteStates) > 0
		for _, st := range run.SiteStates {
			if k, ok := query(st).IsConst(); ok {
				values[k] = true
			} else {
				all = false
			}
		}
		return all, len(run.SiteStates) > 0
	}

	// The target block itself first (Figure 1-A: the defining immediate
	// shares the block with the syscall).
	selfConcrete, _ := evaluate(target)

	if !selfConcrete && !res.FailOpen {
		visited := map[*cfg.Block]bool{target: true}
		pending := predBlocks(target)
		if len(pending) == 0 {
			// Nothing above the target can define the value.
			res.FailOpen = true
		}
		frontier := 0

		for depth := 1; len(pending) > 0 && depth <= p.conf.MaxBFSDepth; depth++ {
			var next []*cfg.Block
			for _, blk := range pending {
				if visited[blk] {
					continue
				}
				visited[blk] = true
				frontier++
				if frontier > p.conf.MaxFrontier {
					res.FailOpen = true
					break
				}
				directed[blk] = true
				allConcrete, _ := evaluate(blk)
				if res.FailOpen {
					break
				}
				if allConcrete {
					// Immediate-defining: prune this path.
					continue
				}
				preds := predBlocks(blk)
				if len(preds) == 0 {
					// The search ran off the top of the program (or an
					// unreferenced root) without bounding the value.
					res.FailOpen = true
					break
				}
				next = append(next, preds...)
			}
			if res.FailOpen {
				break
			}
			pending = next
			if len(pending) > 0 && depth == p.conf.MaxBFSDepth {
				res.FailOpen = true
			}
		}
	}

	res.Syscalls = make([]uint64, 0, len(values))
	for v := range values {
		res.Syscalls = append(res.Syscalls, v)
	}
	sort.Slice(res.Syscalls, func(i, j int) bool { return res.Syscalls[i] < res.Syscalls[j] })
	return res
}

// predBlocks returns the deduplicated predecessor blocks of b across
// every edge kind (fall, jump, call, call-fall, indirect).
func predBlocks(b *cfg.Block) []*cfg.Block {
	seen := make(map[*cfg.Block]bool, len(b.Preds))
	out := make([]*cfg.Block, 0, len(b.Preds))
	for _, e := range b.Preds {
		if e.From == b || seen[e.From] {
			continue
		}
		seen[e.From] = true
		out = append(out, e.From)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
