package ident

import (
	"sort"

	"bside/internal/cfg"
	"bside/internal/linux"
	"bside/internal/symex"
	"bside/internal/x86"
)

// searchScratch is the reusable working set of one backward search:
// the directed set handed to the symbolic executor, the BFS visited
// set, a dedup set for predecessor enumeration, the frontier slices,
// and the value accumulator. Bundles are pooled per Pass, so the
// per-site cost is a handful of Resets instead of a handful of maps.
type searchScratch struct {
	directed *cfg.BlockSet
	visited  *cfg.BlockSet
	predSeen *cfg.BlockSet
	pending  []*cfg.Block
	next     []*cfg.Block
	preds    []*cfg.Block
	values   linux.ValueSet
}

func newSearchScratch(numBlocks int) *searchScratch {
	return &searchScratch{
		directed: cfg.NewBlockSet(numBlocks),
		visited:  cfg.NewBlockSet(numBlocks),
		predSeen: cfg.NewBlockSet(numBlocks),
	}
}

func (s *searchScratch) reset() {
	s.directed.Reset()
	s.visited.Reset()
	s.pending = s.pending[:0]
	s.next = s.next[:0]
	s.values.Reset()
}

// identify implements the search of Figure 5: starting from the target
// block (which resolves Figure 1-A cases by itself), predecessors are
// explored breadth-first; each frontier node seeds a forward symbolic
// execution directed at the target through the nodes the backward
// search has already visited. A frontier node all of whose directed
// paths reach the target with a concrete value is *immediate-defining*
// and its own predecessors are pruned from the search.
//
// If param is nil the queried value is %rax before the target's syscall
// instruction; otherwise it is the given wrapper parameter before the
// target's call instruction.
//
// A search that stays within the target's containing function is a pure
// function of that function's content and is served from (and recorded
// into) the configured Memo; see memo.go for the exact gating.
func (p *Pass) identify(target *cfg.Block, param *symex.ParamRef) SiteResult {
	res := SiteResult{Addr: target.Last().Addr, Block: target}

	fn, fnOK := p.g.FuncContaining(target.Addr)
	var memoKey string
	if p.conf.Memo != nil && fnOK {
		memoKey = p.siteMemoKey(fn, target, param)
		var rec siteRec
		if p.conf.Memo.load(memoKey, p.conf.MemoStore, &rec) {
			if rec.Syscalls == nil {
				rec.Syscalls = []uint64{}
			}
			// The stored slice is shared between hits; every consumer
			// treats site results as read-only. Replaying the recorded
			// budget consumption keeps a tight budget exhausting at the
			// same point as an unmemoized run.
			p.conf.Budget.AddSteps(rec.Steps)
			p.conf.Budget.AddForks(rec.Forks)
			res.Syscalls = rec.Syscalls
			res.FailOpen = rec.FailOpen
			res.BlocksExplored = rec.Blocks
			return res
		}
	}

	sc := p.scratchPool.Get().(*searchScratch)
	sc.reset()

	// contained tracks whether every block the search touched — the
	// frontier it visited and every predecessor it enumerated — lies in
	// fn; budgetShaped tracks whether the shared budget cut the search.
	// Only contained, budget-clean results are memoizable. steps/forks
	// accumulate this search's own budget consumption for replay.
	contained := fnOK
	budgetShaped := false
	resolverSensitive := false
	steps, forks := 0, 0

	query := func(st *symex.State) symex.Value {
		if param == nil {
			return st.Reg(x86.RAX)
		}
		return symex.ParamValueAtCall(st, *param)
	}

	// evaluate runs forward from `from` and folds the observed values.
	// It returns (allConcrete, reachedSite).
	evaluate := func(from *cfg.Block) (bool, bool) {
		run := p.machine.RunToSite(from, p.machine.NewState(), sc.directed, target)
		res.BlocksExplored += run.BlocksExecuted
		steps += run.Steps
		forks += run.Forks
		if run.HitBudget {
			res.FailOpen = true
			budgetShaped = true
			hit := len(run.SiteStates) > 0
			p.machine.Release(&run)
			return false, hit
		}
		all := len(run.SiteStates) > 0
		for _, st := range run.SiteStates {
			if k, ok := query(st).IsConst(); ok {
				sc.values.Add(k)
			} else {
				all = false
			}
		}
		hit := len(run.SiteStates) > 0
		p.machine.Release(&run)
		return all, hit
	}

	// The target block itself first (Figure 1-A: the defining immediate
	// shares the block with the syscall).
	selfConcrete, _ := evaluate(target)

	if !selfConcrete && !res.FailOpen {
		sc.visited.Add(target)
		var sawInd bool
		sc.pending, sawInd = p.predBlocksInto(target, sc.predSeen, sc.pending)
		resolverSensitive = resolverSensitive || sawInd
		if len(sc.pending) == 0 {
			// Nothing above the target can define the value.
			res.FailOpen = true
		}
		if contained {
			contained = p.allInFunc(fn, sc.pending)
		}
		frontier := 0

		for depth := 1; len(sc.pending) > 0 && depth <= p.conf.MaxBFSDepth; depth++ {
			sc.next = sc.next[:0]
			for _, blk := range sc.pending {
				if !sc.visited.Add(blk) {
					continue
				}
				frontier++
				if frontier > p.conf.MaxFrontier {
					res.FailOpen = true
					break
				}
				sc.directed.Add(blk)
				allConcrete, _ := evaluate(blk)
				if res.FailOpen {
					break
				}
				if allConcrete {
					// Immediate-defining: prune this path.
					continue
				}
				sc.preds, sawInd = p.predBlocksInto(blk, sc.predSeen, sc.preds[:0])
				resolverSensitive = resolverSensitive || sawInd
				if len(sc.preds) == 0 {
					// The search ran off the top of the program (or an
					// unreferenced root) without bounding the value.
					res.FailOpen = true
					break
				}
				if contained {
					contained = p.allInFunc(fn, sc.preds)
				}
				sc.next = append(sc.next, sc.preds...)
			}
			if res.FailOpen {
				break
			}
			sc.pending, sc.next = sc.next, sc.pending
			if len(sc.pending) > 0 && depth == p.conf.MaxBFSDepth {
				res.FailOpen = true
			}
		}
	}

	res.Syscalls = sc.values.Append(make([]uint64, 0, sc.values.Len()))
	p.scratchPool.Put(sc)

	// With the resolver active, a search that saw indirect predecessor
	// edges is a function of the image-wide candidate index, not of the
	// function's content alone: another image with identical function
	// bytes can wire (or filter) those edges differently, so such
	// results stay out of the memo. Resolver-off searches keep the
	// legacy gating; the two never share entries because the resolver
	// setting is part of memoConfKey.
	if p.conf.ResolverLayers > 0 && resolverSensitive {
		memoKey = ""
	}
	if memoKey != "" && contained && !budgetShaped {
		store := p.conf.MemoStore
		if res.BlocksExplored < persistMinBlocks {
			store = nil // cheaper to recompute than to hit the disk
		}
		p.conf.Memo.save(memoKey, store, siteRec{
			Syscalls: res.Syscalls,
			FailOpen: res.FailOpen,
			Blocks:   res.BlocksExplored,
			Steps:    steps,
			Forks:    forks,
		})
	}
	return res
}

// siteMemoKey names one (function content, site, queried parameter,
// configuration) identification in the memo.
func (p *Pass) siteMemoKey(fn *cfg.Func, target *cfg.Block, param *symex.ParamRef) string {
	key := "i\x00" + p.memoConf + "\x00" + p.funcHash(fn) + "\x00" + hexU64(target.Addr-fn.Entry) + "\x00"
	if param == nil {
		return key + "-"
	}
	if param.Stack {
		return key + "s" + hexU64(uint64(param.Off))
	}
	return key + "r" + hexU64(uint64(param.Reg))
}

func hexU64(v uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xF]
		v >>= 4
	}
	return string(buf[:])
}

// allInFunc reports whether every block of blks belongs to fn.
func (p *Pass) allInFunc(fn *cfg.Func, blks []*cfg.Block) bool {
	for _, b := range blks {
		if f, ok := p.g.FuncContaining(b.Addr); !ok || f != fn {
			return false
		}
	}
	return true
}

// predBlocksInto appends the deduplicated predecessor blocks of b
// across every edge kind (fall, jump, call, call-fall, indirect) to
// out, in ascending address order, skipping indirect predecessors the
// resolver has excluded. seen is caller-owned scratch; it is reset
// here. sawIndirect reports whether ANY indirect predecessor edge was
// encountered (filtered or not): a search that touched one depends on
// the image-wide candidate index rather than on function content
// alone, so its result must not enter the content-keyed memo while
// the resolver is active.
func (p *Pass) predBlocksInto(b *cfg.Block, seen *cfg.BlockSet, out []*cfg.Block) (_ []*cfg.Block, sawIndirect bool) {
	seen.Reset()
	start := len(out)
	for _, e := range b.Preds {
		if e.Kind == cfg.EdgeIndirectCall || e.Kind == cfg.EdgeIndirectJump {
			sawIndirect = true
			if !p.allowEdge(e) {
				continue
			}
		}
		if e.From == b || !seen.Add(e.From) {
			continue
		}
		out = append(out, e.From)
	}
	added := out[start:]
	sort.Slice(added, func(i, j int) bool { return added[i].Addr < added[j].Addr })
	return out, sawIndirect
}
