package ident

import (
	"bside/internal/cfg"
	"bside/internal/symex"
	"bside/internal/usedef"
	"bside/internal/x86"
)

// detectWrapper runs the two-phase wrapper heuristic of §4.4 on the
// function containing a syscall site.
//
// Phase 1 is a fast intra-procedural use-define scan: if %rax at the
// site resolves to constants entirely within the function, the function
// is definitively not a wrapper and the expensive phase is skipped.
//
// Phase 2 confirms the hypothesis with symbolic execution from the
// function entry, argument registers and stack slots tagged as
// parameters: a parameter-valued (or parameter-tainted) %rax at the
// site qualifies the function as a wrapper and records which parameter
// carries the syscall number.
//
// Both phases are confined to fn by construction — the use-define scan
// only follows in-function predecessors, and the symbolic run may only
// enter fn's own blocks (out-of-set calls are havocked identically
// whatever their target) — so the verdict is a pure function of the
// function's content and is memoized under its content fingerprint.
func (p *Pass) detectWrapper(fn *cfg.Func, site *cfg.Block) (*WrapperInfo, bool, error) {
	var memoKey string
	if p.conf.Memo != nil {
		memoKey = "w\x00" + p.memoConf + "\x00" + p.funcHash(fn) + "\x00" + hexU64(site.Addr-fn.Entry)
		var rec wrapperRec
		if p.conf.Memo.load(memoKey, p.conf.MemoStore, &rec) {
			// Replay the recorded budget consumption: a tight budget
			// must exhaust at the same point with and without the memo.
			p.conf.Budget.AddSteps(rec.Steps)
			p.conf.Budget.AddForks(rec.Forks)
			if !rec.Wrapper {
				return nil, false, nil
			}
			return &WrapperInfo{
				FnEntry:  fn.Entry,
				FnName:   fn.Name,
				SiteAddr: site.Last().Addr,
				Param:    rec.Param,
			}, true, nil
		}
	}

	info, isWrapper, steps, forks, err := p.detectWrapperUncached(fn, site)
	if err != nil {
		return nil, false, err
	}
	if memoKey != "" {
		rec := wrapperRec{Wrapper: isWrapper, Steps: steps, Forks: forks}
		if isWrapper {
			rec.Param = info.Param
		}
		p.conf.Memo.save(memoKey, p.conf.MemoStore, rec)
	}
	return info, isWrapper, nil
}

func (p *Pass) detectWrapperUncached(fn *cfg.Func, site *cfg.Block) (*WrapperInfo, bool, int, int, error) {
	siteIdx := len(site.Insns) - 1

	// Phase 1: cheap use-define chains; memory operands or values
	// flowing from the caller yield !ok.
	if _, ok := usedef.Resolve(usedef.Request{
		Fn:      fn,
		Block:   site,
		InsnIdx: siteIdx,
		Reg:     x86.RAX,
	}); ok {
		return nil, false, 0, 0, nil
	}

	// Phase 2: symbolic confirmation.
	entryBlk, ok := p.g.BlockAt(fn.Entry)
	if !ok {
		return nil, false, 0, 0, nil
	}
	allowed := p.getSet()
	defer p.putSet(allowed)
	for _, b := range fn.Blocks {
		allowed.Add(b)
	}
	res := p.machine.RunToSite(entryBlk, p.machine.NewEntryState(p.conf.StackParams), allowed, site)
	defer p.machine.Release(&res)
	if res.HitBudget {
		return nil, false, res.Steps, res.Forks, ErrTimeout
	}
	for _, st := range res.SiteStates {
		rax := st.Reg(x86.RAX)
		if rax.Kind == symex.KParam {
			return &WrapperInfo{
				FnEntry:  fn.Entry,
				FnName:   fn.Name,
				SiteAddr: site.Last().Addr,
				Param:    rax.P,
			}, true, res.Steps, res.Forks, nil
		}
		if taint := rax.AllTaint(); rax.Kind == symex.KUnknown && len(taint) > 0 {
			// %rax derives from a parameter through arithmetic; the
			// first taint is the carrying parameter.
			return &WrapperInfo{
				FnEntry:  fn.Entry,
				FnName:   fn.Name,
				SiteAddr: site.Last().Addr,
				Param:    taint[0],
			}, true, res.Steps, res.Forks, nil
		}
	}
	return nil, false, res.Steps, res.Forks, nil
}
