package ident

import (
	"bside/internal/cfg"
	"bside/internal/symex"
	"bside/internal/usedef"
	"bside/internal/x86"
)

// detectWrapper runs the two-phase wrapper heuristic of §4.4 on the
// function containing a syscall site.
//
// Phase 1 is a fast intra-procedural use-define scan: if %rax at the
// site resolves to constants entirely within the function, the function
// is definitively not a wrapper and the expensive phase is skipped.
//
// Phase 2 confirms the hypothesis with symbolic execution from the
// function entry, argument registers and stack slots tagged as
// parameters: a parameter-valued (or parameter-tainted) %rax at the
// site qualifies the function as a wrapper and records which parameter
// carries the syscall number.
func (p *Pass) detectWrapper(fn *cfg.Func, site *cfg.Block) (*WrapperInfo, bool, error) {
	siteIdx := len(site.Insns) - 1

	// Phase 1: cheap use-define chains; memory operands or values
	// flowing from the caller yield !ok.
	if _, ok := usedef.Resolve(usedef.Request{
		Fn:      fn,
		Block:   site,
		InsnIdx: siteIdx,
		Reg:     x86.RAX,
	}); ok {
		return nil, false, nil
	}

	// Phase 2: symbolic confirmation.
	entryBlk, ok := p.g.BlockAt(fn.Entry)
	if !ok {
		return nil, false, nil
	}
	allowed := make(map[*cfg.Block]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		allowed[b] = true
	}
	res := p.machine.RunToSite(entryBlk, symex.NewEntryState(p.conf.StackParams), allowed, site)
	if res.HitBudget {
		return nil, false, ErrTimeout
	}
	for _, st := range res.SiteStates {
		rax := st.Reg(x86.RAX)
		if rax.Kind == symex.KParam {
			return &WrapperInfo{
				FnEntry:  fn.Entry,
				FnName:   fn.Name,
				SiteAddr: site.Last().Addr,
				Param:    rax.P,
			}, true, nil
		}
		if taint := rax.AllTaint(); rax.Kind == symex.KUnknown && len(taint) > 0 {
			// %rax derives from a parameter through arithmetic; the
			// first taint is the carrying parameter.
			return &WrapperInfo{
				FnEntry:  fn.Entry,
				FnName:   fn.Name,
				SiteAddr: site.Last().Addr,
				Param:    taint[0],
			}, true, nil
		}
	}
	return nil, false, nil
}
