package linux

import "math/bits"

// SyscallSetBits is the size of a SyscallBitset. The x86-64 Linux table
// tops out at MaxSyscall (334), so 512 bits — eight machine words —
// cover every real number with headroom; resolved values at or above
// this bound are addresses or artifacts, never syscalls, and the
// identification pass discards them before accumulation.
const SyscallSetBits = 512

const syscallSetWords = SyscallSetBits / 64

// SyscallBitset is a fixed-size set of syscall numbers. It is a value
// type: copying copies the set, the zero value is empty, and no
// operation allocates. The identification hot path accumulates per-site
// and per-binary syscall sets through it instead of map[uint64]bool —
// union is eight ORs and membership one shift — and the batch layers
// (shared interfaces, stitching, phase detection) reuse the same
// representation end to end.
type SyscallBitset [syscallSetWords]uint64

// Add inserts n and reports whether it is representable (n <
// SyscallSetBits). Out-of-range values are ignored: callers filter them
// as artifacts before insertion, so a false return is a programming
// error guard, not an expected path.
func (s *SyscallBitset) Add(n uint64) bool {
	if n >= SyscallSetBits {
		return false
	}
	s[n/64] |= 1 << (n % 64)
	return true
}

// Contains reports whether n is in the set.
func (s *SyscallBitset) Contains(n uint64) bool {
	return n < SyscallSetBits && s[n/64]&(1<<(n%64)) != 0
}

// Union folds t into s.
func (s *SyscallBitset) Union(t *SyscallBitset) {
	for i := range s {
		s[i] |= t[i]
	}
}

// AddAll inserts every in-range value of vs.
func (s *SyscallBitset) AddAll(vs []uint64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Len returns the number of members.
func (s *SyscallBitset) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *SyscallBitset) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Append appends the members in ascending order to dst and returns the
// extended slice — the sorted-slice rendering every report format uses.
func (s *SyscallBitset) Append(dst []uint64) []uint64 {
	for i, w := range s {
		base := uint64(i * 64)
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			dst = append(dst, base+b)
			w &= w - 1
		}
	}
	return dst
}

// Slice returns the members in ascending order (never nil).
func (s *SyscallBitset) Slice() []uint64 {
	return s.Append(make([]uint64, 0, s.Len()))
}

// ValueSet is a set of resolved values: in-range syscall numbers live
// in a SyscallBitset, while the rare out-of-range members — address
// artifacts a backward search can surface before the SyscallUpper
// filter applies — go to a small sorted side list. It exists for the
// accumulation points whose inputs are *not* pre-filtered (per-site
// value sets, export profiles, phase emissions); fully filtered paths
// use SyscallBitset directly. The zero value is empty; Reset keeps the
// side list's capacity for pooled reuse.
type ValueSet struct {
	bits SyscallBitset
	over []uint64 // members >= SyscallSetBits, ascending
}

// Add inserts v.
func (s *ValueSet) Add(v uint64) {
	if s.bits.Add(v) {
		return
	}
	i, n := 0, len(s.over)
	for i < n && s.over[i] < v {
		i++
	}
	if i < n && s.over[i] == v {
		return
	}
	s.over = append(s.over, 0)
	copy(s.over[i+1:], s.over[i:])
	s.over[i] = v
}

// AddAll inserts every value of vs.
func (s *ValueSet) AddAll(vs []uint64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Union folds t into s.
func (s *ValueSet) Union(t *ValueSet) {
	s.bits.Union(&t.bits)
	for _, v := range t.over {
		s.Add(v)
	}
}

// Contains reports membership.
func (s *ValueSet) Contains(v uint64) bool {
	if v < SyscallSetBits {
		return s.bits.Contains(v)
	}
	for _, x := range s.over {
		if x == v {
			return true
		}
		if x > v {
			break
		}
	}
	return false
}

// Len returns the number of members.
func (s *ValueSet) Len() int { return s.bits.Len() + len(s.over) }

// Empty reports whether the set has no members.
func (s *ValueSet) Empty() bool { return len(s.over) == 0 && s.bits.Empty() }

// Append appends the members in ascending order (bitset members all
// precede the out-of-range ones by construction).
func (s *ValueSet) Append(dst []uint64) []uint64 {
	dst = s.bits.Append(dst)
	return append(dst, s.over...)
}

// Slice returns the members in ascending order (never nil).
func (s *ValueSet) Slice() []uint64 {
	return s.Append(make([]uint64, 0, s.Len()))
}

// Reset empties the set, keeping the overflow capacity.
func (s *ValueSet) Reset() {
	s.bits = SyscallBitset{}
	s.over = s.over[:0]
}
