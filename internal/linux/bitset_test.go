package linux

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refSet is the map-based reference implementation the bitsets are
// checked against.
type refSet map[uint64]bool

func (r refSet) slice() []uint64 {
	out := make([]uint64, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSyscallBitsetPropertyEquivalence drives SyscallBitset and a map
// reference with the same randomized operation stream and asserts they
// agree on add/union/contains/iterate-sorted at every step.
func TestSyscallBitsetPropertyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var bs SyscallBitset
		ref := refSet{}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // add an in-range value
				v := uint64(rng.Intn(SyscallSetBits))
				if !bs.Add(v) {
					t.Fatalf("seed %d: Add(%d) rejected in-range value", seed, v)
				}
				ref[v] = true
			case 1: // union with a random small set
				var other SyscallBitset
				for i, n := 0, rng.Intn(8); i < n; i++ {
					v := uint64(rng.Intn(SyscallSetBits))
					other.Add(v)
					ref[v] = true
				}
				bs.Union(&other)
			case 2: // out-of-range adds must be rejected and ignored
				v := uint64(SyscallSetBits + rng.Intn(1000))
				if bs.Add(v) {
					t.Fatalf("seed %d: Add(%d) accepted out-of-range value", seed, v)
				}
			}
			// Membership agrees on a random probe.
			probe := uint64(rng.Intn(SyscallSetBits + 100))
			if bs.Contains(probe) != ref[probe] {
				t.Fatalf("seed %d op %d: Contains(%d) = %v, ref %v",
					seed, op, probe, bs.Contains(probe), ref[probe])
			}
		}
		if bs.Len() != len(ref) {
			t.Fatalf("seed %d: Len %d, ref %d", seed, bs.Len(), len(ref))
		}
		if got, want := bs.Slice(), ref.slice(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: iterate-sorted diverged:\n got %v\nwant %v", seed, got, want)
		}
		if bs.Empty() != (len(ref) == 0) {
			t.Fatalf("seed %d: Empty disagrees", seed)
		}
	}
}

// TestValueSetPropertyEquivalence does the same for ValueSet, whose
// domain includes out-of-range artifact values.
func TestValueSetPropertyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var vs ValueSet
		ref := refSet{}
		randVal := func() uint64 {
			if rng.Intn(3) == 0 {
				// Artifact-shaped: far outside the bitset range.
				return uint64(rng.Intn(1<<20)) + SyscallSetBits
			}
			return uint64(rng.Intn(SyscallSetBits))
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0:
				v := randVal()
				vs.Add(v)
				ref[v] = true
			case 1:
				var other ValueSet
				for i, n := 0, rng.Intn(8); i < n; i++ {
					v := randVal()
					other.Add(v)
					ref[v] = true
				}
				vs.Union(&other)
			case 2:
				vals := make([]uint64, rng.Intn(6))
				for i := range vals {
					vals[i] = randVal()
					ref[vals[i]] = true
				}
				vs.AddAll(vals)
			}
			probe := randVal()
			if vs.Contains(probe) != ref[probe] {
				t.Fatalf("seed %d op %d: Contains(%d) = %v, ref %v",
					seed, op, probe, vs.Contains(probe), ref[probe])
			}
		}
		if vs.Len() != len(ref) {
			t.Fatalf("seed %d: Len %d, ref %d", seed, vs.Len(), len(ref))
		}
		if got, want := vs.Slice(), ref.slice(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: iterate-sorted diverged:\n got %v\nwant %v", seed, got, want)
		}
		vs.Reset()
		if !vs.Empty() || vs.Len() != 0 || len(vs.Slice()) != 0 {
			t.Fatalf("seed %d: Reset left members behind", seed)
		}
	}
}
