package linux

// CVEType categorizes a vulnerability's impact (Table 5's legend).
type CVEType string

// CVE impact categories.
const (
	CVEBypass    CVEType = "B"   // check bypass
	CVELeak      CVEType = "L"   // info leak
	CVEUseAfter  CVEType = "UaF" // use after free
	CVERead      CVEType = "R"   // memory read primitive
	CVEWrite     CVEType = "W"   // memory write primitive
	CVEDoS       CVEType = "DoS" // denial of service
	CVEPrivilege CVEType = "P"   // privilege escalation
)

// CVE is one kernel vulnerability triggerable through system calls.
type CVE struct {
	ID       string
	Syscalls []uint64
	Types    []CVEType
}

// CVEs is the list evaluated in Table 5 (from the SysFilter, Confine
// and Kite papers; CVEs prior to 2014 omitted as in the paper).
// compat_sys_* entries are mapped to their native x86-64 numbers.
var CVEs = []CVE{
	{"CVE-2021-35039", []uint64{175}, []CVEType{CVEBypass}},                       // init_module
	{"CVE-2019-13272", []uint64{SysPtrace}, []CVEType{CVEPrivilege}},              // ptrace
	{"CVE-2019-11815", []uint64{SysClone, 272}, []CVEType{CVEUseAfter}},           // clone, unshare
	{"CVE-2019-10125", []uint64{209}, []CVEType{CVEUseAfter}},                     // io_submit
	{"CVE-2019-9857", []uint64{254}, []CVEType{CVEDoS}},                           // inotify_add_watch
	{"CVE-2019-3901", []uint64{SysExecve}, []CVEType{CVELeak}},                    // execve
	{"CVE-2018-18281", []uint64{77, 25}, []CVEType{CVEUseAfter}},                  // ftruncate, mremap
	{"CVE-2018-14634", []uint64{SysExecve, SysExecveat}, []CVEType{CVEPrivilege}}, // execve, execveat
	{"CVE-2018-13053", []uint64{230}, []CVEType{CVEDoS}},                          // clock_nanosleep
	{"CVE-2018-12233", []uint64{188}, []CVEType{CVEPrivilege, CVELeak, CVEDoS}},   // setxattr
	{"CVE-2018-11508", []uint64{159}, []CVEType{CVELeak}},                         // adjtimex
	{"CVE-2018-1068", []uint64{SysSetsockopt}, []CVEType{CVEWrite}},               // compat_sys_setsockopt
	{"CVE-2017-18509", []uint64{SysSetsockopt, SysGetsockopt}, []CVEType{CVEPrivilege, CVEDoS}},
	{"CVE-2017-18344", []uint64{222}, []CVEType{CVERead}},                          // timer_create
	{"CVE-2017-17712", []uint64{SysSendto, SysSendmsg}, []CVEType{CVEPrivilege}},   // sendto, sendmsg
	{"CVE-2017-17053", []uint64{154, SysClone}, []CVEType{CVEUseAfter}},            // modify_ldt, clone
	{"CVE-2017-14954", []uint64{247}, []CVEType{CVEBypass, CVEPrivilege, CVELeak}}, // waitid
	{"CVE-2017-11176", []uint64{244}, []CVEType{CVEDoS}},                           // mq_notify
	{"CVE-2017-6001", []uint64{298}, []CVEType{CVEPrivilege}},                      // perf_event_open
	{"CVE-2016-7911", []uint64{252}, []CVEType{CVEPrivilege, CVEDoS}},              // ioprio_get
	{"CVE-2016-6198", []uint64{SysRename}, []CVEType{CVEDoS}},                      // rename
	{"CVE-2016-6197", []uint64{SysRename, SysUnlink}, []CVEType{CVEDoS}},           // rename, unlink
	{"CVE-2016-4998", []uint64{SysSetsockopt}, []CVEType{CVEPrivilege, CVEDoS}},    // setsockopt
	{"CVE-2016-4997", []uint64{SysSetsockopt}, []CVEType{CVEPrivilege, CVEDoS}},    // setsockopt
	{"CVE-2016-3134", []uint64{SysSetsockopt}, []CVEType{CVEPrivilege, CVEDoS}},    // setsockopt
	{"CVE-2016-2383", []uint64{321}, []CVEType{CVELeak}},                           // bpf
	{"CVE-2016-0728", []uint64{250}, []CVEType{CVEPrivilege, CVEDoS}},              // keyctl
	{"CVE-2015-8543", []uint64{SysSocket}, []CVEType{CVEPrivilege, CVEDoS}},        // socket
	{"CVE-2015-7613", []uint64{64, 68, 29}, []CVEType{CVEPrivilege}},               // semget, msgget, shmget
	{"CVE-2014-9903", []uint64{315}, []CVEType{CVELeak}},                           // sched_getattr
	{"CVE-2014-9529", []uint64{250}, []CVEType{CVEDoS}},                            // keyctl
	{"CVE-2014-8133", []uint64{205}, []CVEType{CVEBypass}},                         // set_thread_area
	{"CVE-2014-7970", []uint64{155}, []CVEType{CVEDoS}},                            // pivot_root
	{"CVE-2014-5207", []uint64{165}, []CVEType{CVEPrivilege}},                      // mount
	{"CVE-2014-4699", []uint64{SysFork, SysClone, SysPtrace}, []CVEType{CVEPrivilege, CVEDoS}},
	{"CVE-2014-3180", []uint64{SysNanosleep}, []CVEType{CVERead}}, // compat_sys_nanosleep
}
