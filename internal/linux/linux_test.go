package linux

import "testing"

func TestNameNumberRoundTrip(t *testing.T) {
	cases := map[uint64]string{
		0: "read", 1: "write", 2: "open", 41: "socket", 56: "clone",
		57: "fork", 59: "execve", 60: "exit", 101: "ptrace",
		202: "futex", 231: "exit_group", 322: "execveat", 334: "rseq",
	}
	for n, want := range cases {
		if got := Name(n); got != want {
			t.Errorf("Name(%d) = %q want %q", n, got, want)
		}
		if num, ok := Number(want); !ok || num != n {
			t.Errorf("Number(%q) = %d,%v want %d", want, num, ok, n)
		}
	}
	if Name(uint64(TableSize)) != "" {
		t.Error("out-of-range name must be empty")
	}
	if _, ok := Number("not_a_syscall"); ok {
		t.Error("bogus name resolved")
	}
}

func TestTableDense(t *testing.T) {
	if TableSize != 335 {
		t.Fatalf("TableSize = %d, want 335", TableSize)
	}
	for n := 0; n < TableSize; n++ {
		if names[n] == "" {
			t.Errorf("gap at syscall %d", n)
		}
	}
	all := All()
	if len(all) != TableSize || all[0] != 0 || all[len(all)-1] != uint64(MaxSyscall) {
		t.Fatalf("All(): len=%d", len(all))
	}
	// All must return a fresh slice.
	all[0] = 999
	if All()[0] != 0 {
		t.Error("All must not share state")
	}
}

func TestNoDuplicateNames(t *testing.T) {
	seen := make(map[string]int)
	for n, name := range names {
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q at both %d and %d", name, prev, n)
		}
		seen[name] = n
	}
}

func TestDangerous(t *testing.T) {
	d := Dangerous()
	if len(d) == 0 {
		t.Fatal("empty dangerous list")
	}
	seen := map[uint64]bool{}
	for _, n := range d {
		if n > uint64(MaxSyscall) {
			t.Errorf("dangerous syscall %d out of range", n)
		}
		if seen[n] {
			t.Errorf("duplicate dangerous syscall %d (%s)", n, Name(n))
		}
		seen[n] = true
	}
	for _, want := range []uint64{SysExecve, SysExecveat} {
		if !seen[want] {
			t.Errorf("missing %s", Name(want))
		}
	}
}

func TestCVETable(t *testing.T) {
	if len(CVEs) != 36 {
		t.Fatalf("CVE count = %d, want 36 (Table 5)", len(CVEs))
	}
	ids := make(map[string]bool)
	for _, c := range CVEs {
		if ids[c.ID] {
			t.Errorf("duplicate %s", c.ID)
		}
		ids[c.ID] = true
		if len(c.Syscalls) == 0 || len(c.Types) == 0 {
			t.Errorf("%s: empty syscalls or types", c.ID)
		}
		for _, n := range c.Syscalls {
			if Name(n) == "" {
				t.Errorf("%s: unknown syscall %d", c.ID, n)
			}
		}
	}
	// Spot checks against the paper's rows.
	spot := map[string]string{
		"CVE-2016-2383":  "bpf",
		"CVE-2019-10125": "io_submit",
		"CVE-2017-11176": "mq_notify",
		"CVE-2014-7970":  "pivot_root",
	}
	for id, syscallName := range spot {
		found := false
		for _, c := range CVEs {
			if c.ID != id {
				continue
			}
			for _, n := range c.Syscalls {
				if Name(n) == syscallName {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s must involve %s", id, syscallName)
		}
	}
}

func TestFullTableRoundTrip(t *testing.T) {
	// Every modeled syscall must survive number → name → number, so
	// nothing in the table can shadow or mangle another entry.
	for n := uint64(0); n < uint64(TableSize); n++ {
		name := Name(n)
		if name == "" {
			t.Fatalf("syscall %d has no name", n)
		}
		back, ok := Number(name)
		if !ok {
			t.Fatalf("Name(%d)=%q does not resolve back", n, name)
		}
		if back != n {
			t.Fatalf("round trip broke: %d -> %q -> %d", n, name, back)
		}
	}
}

func TestCVESyscallsExistInTable(t *testing.T) {
	// Guard for Table 5: every CVE-relevant syscall must be a real
	// entry of the modeled table, within range and non-duplicated
	// within its CVE — otherwise the CVE audit silently evaluates the
	// wrong filter rows.
	for _, c := range CVEs {
		seen := make(map[uint64]bool, len(c.Syscalls))
		for _, n := range c.Syscalls {
			if n > uint64(MaxSyscall) {
				t.Errorf("%s: syscall %d out of table range", c.ID, n)
				continue
			}
			if Name(n) == "" {
				t.Errorf("%s: syscall %d missing from the table", c.ID, n)
			}
			if seen[n] {
				t.Errorf("%s: duplicate syscall %d", c.ID, n)
			}
			seen[n] = true
		}
	}
}
