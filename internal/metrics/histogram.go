// Package metrics holds the small lock-free measurement primitives
// shared by the resident service (per-stage latency on /metrics) and
// the sweep harness (fleet P50/P99 per-binary latency): a log-scale
// millisecond histogram with quantile estimation over its buckets.
package metrics

import (
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two millisecond buckets: the
// first bucket is ≤1ms, the last ≤2^(HistBuckets-1)ms (~2.2 minutes);
// anything slower lands in the overflow counter. Log-scale is the
// right shape for analysis latency — a warm memory-tier hit and a cold
// libc-sized analysis sit five orders of magnitude apart.
const HistBuckets = 18

// Histogram is a lock-free log-scale latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts   [HistBuckets]atomic.Uint64
	overflow atomic.Uint64
	total    atomic.Uint64
	sumUs    atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ms := d.Milliseconds()
	idx := 0
	for idx < HistBuckets && ms > int64(1)<<idx {
		idx++
	}
	if idx == HistBuckets {
		h.overflow.Add(1)
	} else {
		h.counts[idx].Add(1)
	}
	h.total.Add(1)
	h.sumUs.Add(uint64(d.Microseconds()))
}

// Snapshot is a histogram's frozen distribution: LeMs[i] is the upper
// bound of bucket i in milliseconds, Counts[i] its population
// (non-cumulative), Overflow everything past the last bound. The JSON
// shape is the /metrics wire format of the resident service.
type Snapshot struct {
	LeMs     []uint64 `json:"le_ms"`
	Counts   []uint64 `json:"counts"`
	Overflow uint64   `json:"overflow"`
	Count    uint64   `json:"count"`
	SumMs    float64  `json:"sum_ms"`
}

// Snapshot freezes the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	out := Snapshot{
		LeMs:     make([]uint64, HistBuckets),
		Counts:   make([]uint64, HistBuckets),
		Overflow: h.overflow.Load(),
		Count:    h.total.Load(),
		SumMs:    float64(h.sumUs.Load()) / 1000,
	}
	for i := 0; i < HistBuckets; i++ {
		out.LeMs[i] = uint64(1) << i
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// populations, reporting each bucket by its upper bound — a
// conservative (never underestimating) answer at log-2 resolution,
// which is what a fleet summary's P50/P99 needs. Durations that
// overflowed the last bucket report as twice its bound. Returns 0 for
// an empty distribution.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			return time.Duration(s.LeMs[i]) * time.Millisecond
		}
	}
	// Past every bucket: the overflow region.
	last := uint64(1) << (HistBuckets - 1)
	return time.Duration(2*last) * time.Millisecond
}
