package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // ≤1ms bucket
	h.Observe(3 * time.Millisecond)   // ≤4ms bucket
	h.Observe(-time.Second)           // clamped to 0 → ≤1ms
	h.Observe(10 * time.Hour)         // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Counts[0] != 2 {
		t.Fatalf("≤1ms bucket = %d, want 2", s.Counts[0])
	}
	if s.Counts[2] != 1 {
		t.Fatalf("≤4ms bucket = %d, want 1", s.Counts[2])
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow)
	}
	if s.LeMs[0] != 1 || s.LeMs[1] != 2 || s.LeMs[HistBuckets-1] != 1<<(HistBuckets-1) {
		t.Fatalf("bucket bounds wrong: %v", s.LeMs)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// 90 fast (≤1ms), 10 slow (≤16ms).
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(12 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 != 1*time.Millisecond {
		t.Fatalf("P50 = %v, want 1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 != 16*time.Millisecond {
		t.Fatalf("P99 = %v, want 16ms", p99)
	}
	// Quantiles never underestimate: the reported bound is ≥ the true
	// value for every observation in the bucket.
	if s.Quantile(1.0) < 12*time.Millisecond {
		t.Fatalf("P100 underestimates")
	}
}

func TestQuantileOverflow(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Hour)
	want := time.Duration(2*(1<<(HistBuckets-1))) * time.Millisecond
	if q := h.Snapshot().Quantile(0.99); q != want {
		t.Fatalf("overflow quantile = %v, want %v", q, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c := h.Snapshot().Count; c != 8000 {
		t.Fatalf("count = %d, want 8000", c)
	}
}
