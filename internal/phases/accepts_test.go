package phases

import (
	"testing"

	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/ident"
)

// TestAutomatonAcceptsDynamicTraces is the enforcement simulation: for
// randomly parameterized static binaries, the emulator's syscall trace
// (what a phase-aware seccomp monitor would observe) must be accepted
// by the automaton B-Side derives statically. A rejection would mean a
// phase policy kills a legitimate execution — the phase-level analog of
// a false negative.
func TestAutomatonAcceptsDynamicTraces(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p := corpus.Profile{
			Name: "trace", Kind: elff.KindStatic,
			HotDirect:  3 + int(seed%8),
			HotWrapper: int(seed % 4),
			HotStack:   int(seed % 3),
			Handlers:   int(seed % 3),
			ColdDirect: 4,
			Filler:     15,
			Seed:       seed * 1013,
		}
		bin, err := corpus.BuildProgram(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		m, err := emu.NewProcess(bin, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: emulate: %v", seed, err)
		}

		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := ident.Analyze(g, ident.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.FailOpen {
			continue // no meaningful phases for fail-open binaries
		}
		aut, err := Detect(Input{Graph: g, Emits: EmitsFromReport(rep)}, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if idx := aut.Accepts(m.Trace); idx >= 0 {
			t.Errorf("seed %d: raw automaton rejected trace at %d (syscall %d, trace %v)",
				seed, idx, m.Trace[idx], m.Trace)
		}
		// Compaction must preserve acceptance (allowed sets only grow).
		compacted := aut.Compact(128)
		if idx := compacted.Accepts(m.Trace); idx >= 0 {
			t.Errorf("seed %d: compacted automaton rejected trace at %d (syscall %d)",
				seed, idx, m.Trace[idx])
		}
	}
}

// TestAcceptsRejectsForeignTrace sanity-checks the rejecting direction:
// a syscall never identified anywhere must be rejected immediately.
func TestAcceptsRejectsForeignTrace(t *testing.T) {
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "rej", Kind: elff.KindStatic,
		HotDirect: 3, Filler: 5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ident.Analyze(g, ident.Config{})
	if err != nil {
		t.Fatal(err)
	}
	aut, err := Detect(Input{Graph: g, Emits: EmitsFromReport(rep)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if idx := aut.Accepts([]uint64{321 /* bpf: never emitted */}); idx != 0 {
		t.Fatalf("foreign syscall accepted (idx %d)", idx)
	}
}
