package phases

import "sort"

// Compact merges small single-exit phases into their successors,
// approximating the paper's aggressive merging of highly-connected
// states (its published Nginx automaton has 15 phases; raw SCC
// condensation yields many more). A phase is absorbed when its code
// size is at most maxBytes and all its non-self transitions lead to a
// single other phase. Allowed sets only ever grow, so policies derived
// from the compacted automaton remain sound.
//
// The result is renumbered breadth-first from the start phase.
func (a *Automaton) Compact(maxBytes uint64) *Automaton {
	n := len(a.Phases)
	type work struct {
		blocks  map[uint64]bool
		size    uint64
		allowed map[uint64]bool
		trans   map[int]map[uint64]bool // dest -> syscalls
		dead    bool
	}
	ws := make([]*work, n)
	for i, ph := range a.Phases {
		w := &work{
			blocks:  make(map[uint64]bool, len(ph.Blocks)),
			size:    ph.CodeSize,
			allowed: make(map[uint64]bool, len(ph.Allowed)),
			trans:   make(map[int]map[uint64]bool, len(ph.Transitions)),
		}
		for _, b := range ph.Blocks {
			w.blocks[b] = true
		}
		for _, s := range ph.Allowed {
			w.allowed[s] = true
		}
		for dst, syms := range ph.Transitions {
			set := make(map[uint64]bool, len(syms))
			for _, s := range syms {
				set[s] = true
			}
			w.trans[dst] = set
		}
		ws[i] = w
	}
	start := a.Start

	redirect := func(from, to int) {
		// Rewrite every transition pointing at `from` to point at `to`.
		for _, w := range ws {
			if w == nil || w.dead {
				continue
			}
			if set, ok := w.trans[from]; ok {
				delete(w.trans, from)
				if w.trans[to] == nil {
					w.trans[to] = make(map[uint64]bool)
				}
				for s := range set {
					w.trans[to][s] = true
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			w := ws[p]
			if w.dead || w.size > maxBytes {
				continue
			}
			dest := -1
			multi := false
			for dst := range w.trans {
				if dst == p {
					continue
				}
				if dest >= 0 && dst != dest {
					multi = true
					break
				}
				dest = dst
			}
			if multi || dest < 0 || ws[dest].dead {
				continue
			}
			// Absorb p into dest.
			d := ws[dest]
			for b := range w.blocks {
				d.blocks[b] = true
			}
			d.size += w.size
			for s := range w.allowed {
				d.allowed[s] = true
			}
			for dst, set := range w.trans {
				target := dst
				if dst == p {
					target = dest
				}
				if d.trans[target] == nil {
					d.trans[target] = make(map[uint64]bool)
				}
				for s := range set {
					d.trans[target][s] = true
				}
			}
			w.dead = true
			redirect(p, dest)
			if start == p {
				start = dest
			}
			changed = true
		}
	}

	// Renumber survivors breadth-first from the start.
	order := make([]int, 0, n)
	seen := make(map[int]bool)
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		order = append(order, p)
		dests := make([]int, 0, len(ws[p].trans))
		for dst := range ws[p].trans {
			dests = append(dests, dst)
		}
		sort.Ints(dests)
		for _, dst := range dests {
			if !seen[dst] && !ws[dst].dead {
				seen[dst] = true
				queue = append(queue, dst)
			}
		}
	}
	for p := 0; p < n; p++ { // unreachable survivors last
		if !ws[p].dead && !seen[p] {
			seen[p] = true
			order = append(order, p)
		}
	}
	newID := make(map[int]int, len(order))
	for i, p := range order {
		newID[p] = i
	}

	out := &Automaton{
		Start:     newID[start],
		Alphabet:  append([]uint64(nil), a.Alphabet...),
		DFAStates: a.DFAStates,
		Phases:    make([]*Phase, len(order)),
	}
	for i, p := range order {
		w := ws[p]
		ph := &Phase{ID: i, CodeSize: w.size, Transitions: make(map[int][]uint64)}
		for b := range w.blocks {
			ph.Blocks = append(ph.Blocks, b)
		}
		sort.Slice(ph.Blocks, func(x, y int) bool { return ph.Blocks[x] < ph.Blocks[y] })
		for s := range w.allowed {
			ph.Allowed = append(ph.Allowed, s)
		}
		sort.Slice(ph.Allowed, func(x, y int) bool { return ph.Allowed[x] < ph.Allowed[y] })
		for dst, set := range w.trans {
			syms := make([]uint64, 0, len(set))
			for s := range set {
				syms = append(syms, s)
			}
			sort.Slice(syms, func(x, y int) bool { return syms[x] < syms[y] })
			ph.Transitions[newID[dst]] = syms
		}
		out.Phases[i] = ph
	}
	return out
}
