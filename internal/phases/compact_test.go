package phases

import (
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/x86"
)

func TestCompactMergesChains(t *testing.T) {
	// A long init chain of single-syscall phases followed by a serving
	// loop: compaction should fold the chain while preserving the loop.
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		for _, v := range []uint32{2, 3, 4, 5, 16, 21} {
			b.MovRegImm32(x86.RAX, v)
			b.Syscall()
		}
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.JmpLabel("loop")
	})
	raw := detect(t, g, rep, Config{})
	compacted := raw.Compact(128)

	if len(compacted.Phases) >= len(raw.Phases) {
		t.Fatalf("compaction did not shrink: %d -> %d", len(raw.Phases), len(compacted.Phases))
	}
	// Soundness: the union of allowed sets must cover everything the
	// raw automaton allowed.
	union := func(a *Automaton) map[uint64]bool {
		m := map[uint64]bool{}
		for _, ph := range a.Phases {
			for _, s := range ph.Allowed {
				m[s] = true
			}
		}
		return m
	}
	ru, cu := union(raw), union(compacted)
	for s := range ru {
		if !cu[s] {
			t.Errorf("syscall %d lost in compaction", s)
		}
	}
	// Block coverage must be preserved.
	blocks := func(a *Automaton) map[uint64]bool {
		m := map[uint64]bool{}
		for _, ph := range a.Phases {
			for _, b := range ph.Blocks {
				m[b] = true
			}
		}
		return m
	}
	rb, cb := blocks(raw), blocks(compacted)
	for b := range rb {
		if !cb[b] {
			t.Errorf("block %#x lost in compaction", b)
		}
	}
	// The serving loop must still exist as a phase allowing {0,1}
	// (possibly more after merging, but at least those).
	found := false
	for _, ph := range compacted.Phases {
		has0, has1 := false, false
		for _, s := range ph.Allowed {
			if s == 0 {
				has0 = true
			}
			if s == 1 {
				has1 = true
			}
		}
		if has0 && has1 {
			if _, ok := ph.Transitions[ph.ID]; ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("serving loop phase lost")
	}
	// Renumbering: start must be 0 after BFS renumbering.
	if compacted.Start != 0 {
		t.Errorf("start = %d, want 0", compacted.Start)
	}
	// Transition targets must be valid.
	for _, ph := range compacted.Phases {
		for dst := range ph.Transitions {
			if dst < 0 || dst >= len(compacted.Phases) {
				t.Fatalf("dangling transition %d -> %d", ph.ID, dst)
			}
		}
	}
}

func TestCompactIdempotentOnLargePhases(t *testing.T) {
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.JmpLabel("loop")
	})
	raw := detect(t, g, rep, Config{})
	// Threshold 0 merges nothing (every phase "exceeds" zero bytes
	// except empty ones).
	c := raw.Compact(0)
	var rawAllowed, cAllowed [][]uint64
	for _, ph := range raw.Phases {
		rawAllowed = append(rawAllowed, ph.Allowed)
	}
	for _, ph := range c.Phases {
		cAllowed = append(cAllowed, ph.Allowed)
	}
	// Phase count can only stay equal (zero-size phases may merge).
	if len(c.Phases) > len(raw.Phases) {
		t.Fatalf("compaction grew the automaton")
	}
	_ = rawAllowed
	_ = cAllowed
	if !reflect.DeepEqual(c.Alphabet, raw.Alphabet) {
		t.Fatal("alphabet changed")
	}
}
