package phases

import (
	"sort"
	"strconv"
	"strings"

	"bside/internal/cfg"
	"bside/internal/ident"
	"bside/internal/linux"
)

// NaivePhase is a phase found by the strawman detector.
type NaivePhase struct {
	Blocks  []uint64
	Allowed []uint64
}

// DetectNaive is the intuitive CFG-navigation method the paper
// dismisses as too slow (§4.7: 700s vs 41s on a hello-world, 4h vs
// 20min on Nginx): for every reachable block it walks the whole graph
// to compute which syscall-emitting blocks remain reachable, then
// groups blocks by that signature. One full traversal per block makes
// it quadratic; the ablation benchmark measures the gap against the
// automaton construction.
func DetectNaive(in Input) []NaivePhase {
	g := in.Graph
	start := in.Start
	if start == 0 {
		start = g.Bin.Entry
	}
	reach := g.ReachableSet(start)

	groups := make(map[string][]uint64)
	allowedByKey := make(map[string]map[uint64]bool)
	seen := cfg.NewBlockSet(g.NumBlocks())
	var stack []*cfg.Block
	for _, blk := range g.SortedBlocks() {
		if !reach.Has(blk) {
			continue
		}
		// Full forward traversal from blk (deliberately re-done per
		// block, as the naive method navigates the CFG each time; the
		// reused visited set does not change the quadratic shape).
		seen.Reset()
		seen.Add(blk)
		stack = append(stack[:0], blk)
		var sig []uint64
		allowed := make(map[uint64]bool)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if emits := in.Emits[b.Addr]; len(emits) > 0 {
				sig = append(sig, b.Addr)
				for _, s := range emits {
					allowed[s] = true
				}
			}
			for _, e := range b.Succs {
				if seen.Add(e.To) {
					stack = append(stack, e.To)
				}
			}
		}
		sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
		var sb strings.Builder
		for _, a := range sig {
			sb.WriteString(strconv.FormatUint(a, 16))
			sb.WriteByte(',')
		}
		k := sb.String()
		groups[k] = append(groups[k], blk.Addr)
		allowedByKey[k] = allowed
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]NaivePhase, 0, len(keys))
	for _, k := range keys {
		blocks := groups[k]
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		allowed := make([]uint64, 0, len(allowedByKey[k]))
		for s := range allowedByKey[k] {
			allowed = append(allowed, s)
		}
		sort.Slice(allowed, func(i, j int) bool { return allowed[i] < allowed[j] })
		out = append(out, NaivePhase{Blocks: blocks, Allowed: allowed})
	}
	return out
}

// EmitsFromReport derives the Emits map from an identification report:
// plain syscall sites emit their resolved numbers, wrapper and import
// call sites emit the numbers resolved at the call, and wrapper
// definition sites emit nothing (their behaviour is attributed to call
// sites). A fail-open site emits nothing here — phase policies derived
// from a fail-open binary are not meaningful and callers should check
// Report.FailOpen first.
func EmitsFromReport(rep *ident.Report) map[uint64][]uint64 {
	out := make(map[uint64][]uint64)
	var set linux.ValueSet
	for _, site := range rep.Sites {
		if site.Kind == ident.SiteWrapperDef || len(site.Syscalls) == 0 {
			continue
		}
		set.Reset()
		set.AddAll(out[site.Block.Addr])
		set.AddAll(site.Syscalls)
		out[site.Block.Addr] = set.Slice()
	}
	return out
}
