// Package phases implements B-Side's automaton-based phase detection
// (§4.7): the CFG and the per-site syscall sets become a
// non-deterministic finite automaton whose transitions are syscall
// invocations and whose ε-transitions are ordinary edges; powerset
// construction yields a DFA; strongly-connected DFA states merge into
// *phases*, each with an allowed-syscall list; an optional
// back-propagation step makes the phase policies enforceable with
// seccomp's tighten-only semantics.
package phases

import (
	"errors"
	"fmt"
	"sort"

	"bside/internal/cfg"
	"bside/internal/linux"
	"bside/internal/x86"
)

// ErrTooLarge is returned when powerset construction exceeds the state
// bound.
var ErrTooLarge = errors.New("phases: DFA construction exceeded state bound")

// Config tunes phase detection.
type Config struct {
	// MaxDFAStates bounds powerset construction (0 = default 65536).
	MaxDFAStates int
	// BackPropagate unions each phase's allowed set with everything
	// allowed in reachable future phases, as required when the runtime
	// filter is seccomp (which can only tighten rules).
	BackPropagate bool
}

// Input couples a recovered CFG with per-block syscall emission sets:
// blocks ending in a syscall instruction map to the identified numbers
// of that site; blocks calling into foreign code may map to the
// imported function's syscall set.
type Input struct {
	Graph *cfg.Graph
	// Emits maps block start addresses to the syscalls whose invocation
	// the block's final instruction may trigger.
	Emits map[uint64][]uint64
	// Start is the automaton's initial block (defaults to the binary
	// entry point).
	Start uint64
}

// Phase is one merged automaton state: a set of program locations with
// a single allowed-syscall list.
type Phase struct {
	ID int
	// Blocks are the CFG block addresses belonging to the phase (one
	// block can belong to several phases, an artifact of
	// determinization the paper calls out in Table 4).
	Blocks []uint64
	// CodeSize sums the member blocks' sizes (Table 4's Size column).
	CodeSize uint64
	// Allowed is the phase's allow-list: every syscall labelling a
	// transition out of (or within) the phase.
	Allowed []uint64
	// Transitions maps a destination phase to the sorted syscalls that
	// trigger the switch; self-transitions appear under the phase's own
	// ID.
	Transitions map[int][]uint64
}

// Automaton is the phase-detection result.
type Automaton struct {
	Phases []*Phase
	// Start is the ID of the initial phase.
	Start int
	// Alphabet is the sorted set of syscalls appearing on transitions.
	Alphabet []uint64
	// DFAStates counts the pre-merge DFA states (diagnostics).
	DFAStates int
}

// PhaseOf returns the phase with the given ID.
func (a *Automaton) PhaseOf(id int) *Phase { return a.Phases[id] }

// Accepts replays a dynamic syscall trace against the automaton: this
// is the runtime-enforcement simulation — a sound automaton accepts
// every trace the program can actually produce. Phase merging can make
// the automaton non-deterministic (a symbol may label both a self-loop
// and an exit), so acceptance tracks the set of possible phases. It
// returns the index of the first rejected syscall, or -1 when the whole
// trace is accepted.
func (a *Automaton) Accepts(trace []uint64) int {
	cur := map[int]bool{a.Start: true}
	for i, nr := range trace {
		next := make(map[int]bool)
		for id := range cur {
			for dst, syms := range a.Phases[id].Transitions {
				for _, s := range syms {
					if s == nr {
						next[dst] = true
						break
					}
				}
			}
		}
		if len(next) == 0 {
			return i
		}
		cur = next
	}
	return -1
}

// Detect builds the phase automaton.
func Detect(in Input, conf Config) (*Automaton, error) {
	if conf.MaxDFAStates == 0 {
		conf.MaxDFAStates = 65_536
	}
	g := in.Graph
	start := in.Start
	if start == 0 {
		start = g.Bin.Entry
	}
	startBlk, ok := g.BlockAt(start)
	if !ok {
		return nil, fmt.Errorf("phases: no block at start %#x", start)
	}

	// Restrict to reachable blocks and assign dense indices.
	reach := g.ReachableSet(start)
	blocks := make([]*cfg.Block, 0, reach.Len())
	for _, b := range g.SortedBlocks() {
		if reach.Has(b) {
			blocks = append(blocks, b)
		}
	}
	idx := make(map[*cfg.Block]int, len(blocks))
	for i, b := range blocks {
		idx[b] = i
	}

	// NFA: per block, ε-successors or labelled successors.
	type nfa struct {
		eps    []int
		labels []uint64 // emission set; empty means ε-only
		onSym  []int    // successors taken on any label
	}
	nodes := make([]nfa, len(blocks))
	var alphaSet linux.ValueSet
	for i, b := range blocks {
		emits := in.Emits[b.Addr]
		for _, e := range b.Succs {
			j, ok := idx[e.To]
			if !ok {
				continue
			}
			if len(emits) > 0 {
				nodes[i].onSym = append(nodes[i].onSym, j)
			} else {
				nodes[i].eps = append(nodes[i].eps, j)
			}
		}
		if len(emits) > 0 {
			nodes[i].labels = append([]uint64(nil), emits...)
			alphaSet.AddAll(emits)
		}
	}

	// Return ε-edges: the base CFG models returns through call-fall
	// edges only, which is what identification wants, but the automaton
	// must be able to continue after a syscall that fires *inside* a
	// callee. Restrict the edges to functions that actually contain
	// emitting blocks — adding them for every shared helper would glue
	// all its callers into one phase. (Wrapper functions emit at their
	// call sites, so they need no return edges; continuation flows
	// through the caller's call-fall edge.)
	emittingFns := make(map[uint64]bool)
	for addr, set := range in.Emits {
		if len(set) == 0 {
			continue
		}
		if blk, ok := g.BlockAt(addr); ok && !blk.EndsInSyscall() {
			continue // call-site emission: handled by call-fall edges
		}
		if fn, ok := g.FuncContaining(addr); ok {
			emittingFns[fn.Entry] = true
		}
	}
	for i, b := range blocks {
		if len(b.Insns) == 0 || b.Last().Op != x86.OpRet {
			continue
		}
		fn, ok := g.FuncContaining(b.Addr)
		if !ok || !emittingFns[fn.Entry] {
			continue
		}
		entryBlk, ok := g.BlockAt(fn.Entry)
		if !ok {
			continue
		}
		for _, e := range entryBlk.Preds {
			if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
				continue
			}
			for _, ce := range e.From.Succs {
				if ce.Kind != cfg.EdgeCallFall {
					continue
				}
				if j, ok := idx[ce.To]; ok {
					nodes[i].eps = append(nodes[i].eps, j)
				}
			}
		}
	}
	alphabet := alphaSet.Slice()

	// ε-closure over bitsets.
	words := (len(blocks) + 63) / 64
	closure := func(set []uint64) {
		var stack []int
		for i := range blocks {
			if set[i/64]&(1<<(i%64)) != 0 {
				stack = append(stack, i)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, j := range nodes[n].eps {
				if set[j/64]&(1<<(j%64)) == 0 {
					set[j/64] |= 1 << (j % 64)
					stack = append(stack, j)
				}
			}
		}
	}
	key := func(set []uint64) string {
		buf := make([]byte, 8*len(set))
		for i, w := range set {
			for b := 0; b < 8; b++ {
				buf[8*i+b] = byte(w >> (8 * b))
			}
		}
		return string(buf)
	}

	// Powerset construction.
	type dfaState struct {
		set   []uint64
		trans map[uint64]int
	}
	var dfa []*dfaState
	index := make(map[string]int)
	newState := func(set []uint64) int {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(dfa)
		index[k] = id
		dfa = append(dfa, &dfaState{set: set, trans: make(map[uint64]int)})
		return id
	}
	init := make([]uint64, words)
	si := idx[startBlk]
	init[si/64] |= 1 << (si % 64)
	closure(init)
	work := []int{newState(init)}

	for len(work) > 0 {
		if len(dfa) > conf.MaxDFAStates {
			return nil, ErrTooLarge
		}
		id := work[len(work)-1]
		work = work[:len(work)-1]
		st := dfa[id]
		// Group member-NFA transitions by symbol.
		bySym := make(map[uint64][]uint64) // symbol -> target bitset
		for i := range blocks {
			if st.set[i/64]&(1<<(i%64)) == 0 || len(nodes[i].labels) == 0 {
				continue
			}
			for _, s := range nodes[i].labels {
				tgt := bySym[s]
				if tgt == nil {
					tgt = make([]uint64, words)
					bySym[s] = tgt
				}
				for _, j := range nodes[i].onSym {
					tgt[j/64] |= 1 << (j % 64)
				}
			}
		}
		syms := make([]uint64, 0, len(bySym))
		for s := range bySym {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, s := range syms {
			tgt := bySym[s]
			closure(tgt)
			k := key(tgt)
			prev, existed := index[k]
			if !existed {
				prev = newState(tgt)
				work = append(work, prev)
			}
			st.trans[s] = prev
		}
	}

	// Merge strongly-connected DFA states into phases (Tarjan). The
	// successor enumeration is sorted so phase numbering is
	// deterministic across runs.
	comp := sccOf(len(dfa), func(i int, f func(int)) {
		syms := make([]uint64, 0, len(dfa[i].trans))
		for s := range dfa[i].trans {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
		for _, s := range syms {
			f(dfa[i].trans[s])
		}
	})
	numPhases := 0
	for _, c := range comp {
		if c+1 > numPhases {
			numPhases = c + 1
		}
	}

	out := &Automaton{Start: comp[0], DFAStates: len(dfa), Alphabet: alphabet}
	out.Phases = make([]*Phase, numPhases)
	for i := range out.Phases {
		out.Phases[i] = &Phase{ID: i, Transitions: make(map[int][]uint64)}
	}
	blockSets := make([]map[uint64]bool, numPhases)
	transSets := make([]map[int]*linux.ValueSet, numPhases)
	for i := range blockSets {
		blockSets[i] = make(map[uint64]bool)
		transSets[i] = make(map[int]*linux.ValueSet)
	}
	for id, st := range dfa {
		p := comp[id]
		for i := range blocks {
			if st.set[i/64]&(1<<(i%64)) != 0 {
				blockSets[p][blocks[i].Addr] = true
			}
		}
		for s, to := range st.trans {
			dst := comp[to]
			set := transSets[p][dst]
			if set == nil {
				set = new(linux.ValueSet)
				transSets[p][dst] = set
			}
			set.Add(s)
		}
	}
	for p, ph := range out.Phases {
		for addr := range blockSets[p] {
			ph.Blocks = append(ph.Blocks, addr)
			if blk, ok := g.BlockAt(addr); ok {
				ph.CodeSize += blk.Size()
			}
		}
		sort.Slice(ph.Blocks, func(i, j int) bool { return ph.Blocks[i] < ph.Blocks[j] })
		var allowed linux.ValueSet
		for dst, set := range transSets[p] {
			allowed.Union(set)
			ph.Transitions[dst] = set.Slice()
		}
		ph.Allowed = allowed.Slice()
	}

	if conf.BackPropagate {
		backPropagate(out)
	}
	return out, nil
}

// backPropagate unions every phase's allow list with the allow lists of
// all phases reachable from it, in reverse topological order of the
// phase DAG (SCC condensation is acyclic by construction).
func backPropagate(a *Automaton) {
	n := len(a.Phases)
	order := topoOrder(n, func(i int, f func(int)) {
		for dst := range a.Phases[i].Transitions {
			if dst != i {
				f(dst)
			}
		}
	})
	allowed := make([]linux.ValueSet, n)
	for i, ph := range a.Phases {
		allowed[i].AddAll(ph.Allowed)
	}
	// Visit in reverse topological order: successors first.
	for _, i := range order {
		for dst := range a.Phases[i].Transitions {
			if dst == i {
				continue
			}
			allowed[i].Union(&allowed[dst])
		}
	}
	for i, ph := range a.Phases {
		ph.Allowed = allowed[i].Append(ph.Allowed[:0])
	}
}

// topoOrder returns node indices such that successors of a node appear
// before it (post-order of a DFS over the DAG).
func topoOrder(n int, succs func(int, func(int))) []int {
	visited := make([]bool, n)
	var order []int
	var visit func(int)
	visit = func(i int) {
		if visited[i] {
			return
		}
		visited[i] = true
		succs(i, visit)
		order = append(order, i)
	}
	for i := 0; i < n; i++ {
		visit(i)
	}
	return order
}

// sccOf computes strongly connected components (iterative Tarjan) and
// returns the component index per node; components are numbered so the
// condensation can be traversed safely in any order.
func sccOf(n int, succs func(int, func(int))) []int {
	const undef = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range indexOf {
		indexOf[i] = undef
		comp[i] = undef
	}
	var stack []int
	counter := 0
	numComp := 0

	type frame struct {
		node  int
		succs []int
		next  int
	}
	for root := 0; root < n; root++ {
		if indexOf[root] != undef {
			continue
		}
		var frames []frame
		push := func(v int) {
			indexOf[v] = counter
			low[v] = counter
			counter++
			stack = append(stack, v)
			onStack[v] = true
			var ss []int
			succs(v, func(w int) { ss = append(ss, w) })
			frames = append(frames, frame{node: v, succs: ss})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succs) {
				w := f.succs[f.next]
				f.next++
				if indexOf[w] == undef {
					push(w)
				} else if onStack[w] {
					if indexOf[w] < low[f.node] {
						low[f.node] = indexOf[w]
					}
				}
				continue
			}
			// Pop.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == indexOf[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
		}
	}
	return comp
}
