package phases

import (
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/testbin"
	"bside/internal/x86"
)

func buildGraph(t *testing.T, fn func(b *asm.Builder)) (*cfg.Graph, *ident.Report, map[string]uint64) {
	t.Helper()
	bin, syms := testbin.Build(t, elff.KindStatic, fn, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rep, err := ident.Analyze(g, ident.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if rep.FailOpen {
		t.Fatal("unexpected fail-open")
	}
	return g, rep, syms
}

func detect(t *testing.T, g *cfg.Graph, rep *ident.Report, conf Config) *Automaton {
	t.Helper()
	a, err := Detect(Input{Graph: g, Emits: EmitsFromReport(rep)}, conf)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return a
}

func TestLinearPhases(t *testing.T) {
	// open(2); then read(0); then exit(60): three ordered transitions.
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	a := detect(t, g, rep, Config{})
	if !reflect.DeepEqual(a.Alphabet, []uint64{0, 2, 60}) {
		t.Fatalf("alphabet: %v", a.Alphabet)
	}
	start := a.PhaseOf(a.Start)
	if !reflect.DeepEqual(start.Allowed, []uint64{2}) {
		t.Fatalf("start allowed: %v", start.Allowed)
	}
	// Follow 2 then 0 then 60.
	cur := start
	for _, step := range []uint64{2, 0, 60} {
		next := -1
		for dst, syms := range cur.Transitions {
			for _, s := range syms {
				if s == step {
					next = dst
				}
			}
		}
		if next < 0 {
			t.Fatalf("no transition on %d from phase %d", step, cur.ID)
		}
		cur = a.PhaseOf(next)
	}
	if len(cur.Allowed) != 0 {
		t.Fatalf("final phase must allow nothing, got %v", cur.Allowed)
	}
}

func TestLoopMergesIntoOnePhase(t *testing.T) {
	// A serving loop alternating read(0) and write(1): the cycle must
	// collapse into one phase allowing both.
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.JmpLabel("loop")
	})
	a := detect(t, g, rep, Config{})
	// One phase must allow both 0 and 1 with self transitions.
	var serving *Phase
	for _, ph := range a.Phases {
		if reflect.DeepEqual(ph.Allowed, []uint64{0, 1}) {
			serving = ph
		}
	}
	if serving == nil {
		t.Fatalf("no merged serving phase: %+v", a.Phases)
	}
	if _, ok := serving.Transitions[serving.ID]; !ok {
		t.Fatal("serving phase must have self transitions")
	}
}

func TestInitVsServingStrictness(t *testing.T) {
	// Init does open(2)+bind(49), then a serving loop does only
	// read/write. The serving phase must NOT allow the init syscalls —
	// the strictness gain of §5.4.
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 49)
		b.Syscall()
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.JmpLabel("loop")
	})
	a := detect(t, g, rep, Config{})
	var serving *Phase
	for _, ph := range a.Phases {
		if reflect.DeepEqual(ph.Allowed, []uint64{0, 1}) {
			serving = ph
		}
	}
	if serving == nil {
		t.Fatalf("no strict serving phase found: %+v", a.Phases)
	}
	start := a.PhaseOf(a.Start)
	if !reflect.DeepEqual(start.Allowed, []uint64{2}) {
		t.Fatalf("start allowed: %v", start.Allowed)
	}
}

func TestBackPropagation(t *testing.T) {
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.JmpLabel("loop")
	})
	a := detect(t, g, rep, Config{BackPropagate: true})
	start := a.PhaseOf(a.Start)
	// With seccomp semantics the first phase must already allow the
	// serving syscall too.
	if !reflect.DeepEqual(start.Allowed, []uint64{0, 2}) {
		t.Fatalf("back-propagated allowed: %v", start.Allowed)
	}
}

func TestNaiveAgreesOnShape(t *testing.T) {
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2)
		b.Syscall()
		b.Label("loop")
		b.MovRegImm32(x86.RAX, 0)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.JmpLabel("loop")
	})
	in := Input{Graph: g, Emits: EmitsFromReport(rep)}
	naive := DetectNaive(in)
	if len(naive) == 0 {
		t.Fatal("naive found no phases")
	}
	// The serving loop shows up in both detectors with the same allow
	// set.
	found := false
	for _, ph := range naive {
		if reflect.DeepEqual(ph.Allowed, []uint64{0, 1}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("naive phases: %+v", naive)
	}
}

func TestEmitsFromReportWrapperAttribution(t *testing.T) {
	g, rep, syms := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 39)
		b.CallLabel("w")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("w")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	emits := EmitsFromReport(rep)
	// The wrapper's own syscall block must not emit; the call block
	// must emit 39.
	wblk, _ := g.BlockContaining(syms["w"])
	if _, ok := emits[wblk.Addr]; ok {
		t.Fatalf("wrapper def must not emit: %v", emits)
	}
	foundCall := false
	for addr, set := range emits {
		if reflect.DeepEqual(set, []uint64{39}) {
			foundCall = true
		}
		_ = addr
	}
	if !foundCall {
		t.Fatalf("call-site emission missing: %v", emits)
	}
}

func TestDetectErrors(t *testing.T) {
	g, rep, _ := buildGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	})
	if _, err := Detect(Input{Graph: g, Emits: EmitsFromReport(rep), Start: 0x1}, Config{}); err == nil {
		t.Fatal("bad start must error")
	}
}
