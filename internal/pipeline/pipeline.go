// Package pipeline structures B-Side's per-binary analysis as an
// explicit staged pipeline over typed artifacts:
//
//	decode/CFG → wrapper detection → per-site identification → [stitch] → [phases]
//
// The first three stages run here, per binary; foreign-call stitching
// and phase detection belong to the callers (internal/shared and the
// public bside package) but report their cost through the same Timings
// vocabulary, so one analysis carries a complete per-stage cost record
// (the paper's Table 3, observable per run).
//
// Stages communicate through immutable artifacts: the recovered
// cfg.Graph is read-only after StageDecode, and the ident.Pass reads it
// without mutation, which is what lets the two identification stages
// fan their independent units — functions for wrapper detection,
// identification targets for the backward search — across a bounded
// worker pool (Config.Workers) sharing one atomic symbolic-execution
// budget. Unit results merge in a fixed order, so a Result is
// byte-identical at any worker count.
package pipeline

import (
	"context"
	"runtime"
	"time"

	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/faults"
	"bside/internal/guard"
	"bside/internal/ident"
	"bside/internal/symex"
)

// Stage names one step of the per-binary analysis pipeline.
type Stage uint8

// Pipeline stages, in execution order.
const (
	// StageDecode is disassembly plus precise-CFG recovery (§4.3).
	StageDecode Stage = iota + 1
	// StageWrappers is syscall-wrapper detection over the functions
	// containing syscall sites (§4.4, phase G).
	StageWrappers
	// StageIdentify is the per-site backward search (§4.4, phase H).
	StageIdentify
	// StageStitch is foreign-call resolution against shared-library
	// interfaces (§4.5); recorded by internal/shared.
	StageStitch
	// StagePhases is execution-phase detection (§4.7); recorded by the
	// public package when requested.
	StagePhases
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageWrappers:
		return "wrappers"
	case StageIdentify:
		return "identify"
	case StageStitch:
		return "stitch"
	case StagePhases:
		return "phases"
	}
	return "?"
}

// Timing is one stage's wall-clock cost.
type Timing struct {
	Stage    Stage
	Duration time.Duration
}

// Timings is the ordered per-stage cost record of one analysis.
type Timings []Timing

// Add appends one stage's cost.
func (t *Timings) Add(s Stage, d time.Duration) {
	*t = append(*t, Timing{Stage: s, Duration: d})
}

// Get returns the recorded cost of stage s (0 if the stage never ran).
func (t Timings) Get(s Stage) time.Duration {
	for _, tm := range t {
		if tm.Stage == s {
			return tm.Duration
		}
	}
	return 0
}

// Total sums all recorded stages.
func (t Timings) Total() time.Duration {
	var sum time.Duration
	for _, tm := range t {
		sum += tm.Duration
	}
	return sum
}

// Config tunes one pipeline run.
type Config struct {
	// Ident is the identification configuration. Its Budget, if set, is
	// used as-is (the caller owns per-unit budget cloning); nil gets a
	// fresh default.
	Ident ident.Config
	// CFG configures StageDecode.
	CFG cfg.Options
	// Workers is the intra-binary worker-pool size for the two
	// identification stages. 0 or 1 is serial; any negative value
	// (canonically WorkersAuto) resolves to GOMAXPROCS. Results are
	// identical at any value.
	Workers int
	// Timeout, when positive, stamps the run's budget with a wall-clock
	// deadline before the first stage executes; a run past it fails
	// with ident.ErrTimeout. The caller's Budget is cloned before
	// stamping, never mutated. (internal/shared stamps deadlines in its
	// own per-unit budget cloning instead and leaves this zero.)
	Timeout time.Duration
	// Ctx, when non-nil, is checked at every stage boundary: a canceled
	// context fails the run with the context's error before the next
	// stage starts. Mid-stage cancellation is the budget's job (its
	// Cancel channel); the boundary check is what guarantees a run
	// never *starts* a stage for an abandoned request. Nil means no
	// boundary checks (batch CLI paths).
	Ctx context.Context
}

// WorkersAuto asks for one worker per available CPU.
const WorkersAuto = -1

// resolveWorkers maps the Workers knob to a concrete pool size.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}

// Result is the typed artifact bundle of one per-binary run.
type Result struct {
	// Graph is the recovered CFG — immutable from here on.
	Graph *cfg.Graph
	// Report is the identification result.
	Report *ident.Report
	// Timings records the cost of every stage that ran.
	Timings Timings
}

// Run executes the per-binary stages — decode, wrapper detection,
// identification — over bin and returns the artifacts with per-stage
// timings. Stitching (for dynamic binaries) is the caller's stage; its
// cost should be appended to the returned Timings.
func Run(bin *elff.Binary, conf Config) (*Result, error) {
	conf.Ident.Workers = resolveWorkers(conf.Workers)
	if conf.Timeout > 0 {
		if conf.Ident.Budget == nil {
			conf.Ident.Budget = symex.NewBudget()
		} else {
			conf.Ident.Budget = conf.Ident.Budget.Clone()
		}
		conf.Ident.Budget.Deadline = time.Now().Add(conf.Timeout)
	}
	canceled := func() error {
		if conf.Ctx != nil {
			return conf.Ctx.Err()
		}
		return nil
	}
	out := &Result{}

	// runStage is the per-binary fault boundary at stage granularity:
	// a context check before the body, a panic-to-error conversion
	// around it (guard.Capture tags the stage name and image hash), a
	// fault-injection seam for tests, and the timing record either way
	// — a stage that panics still reports its cost.
	runStage := func(s Stage, body func() error) error {
		if err := canceled(); err != nil {
			return err
		}
		start := time.Now()
		err := guard.Capture(s.String(), bin.Hash, func() error {
			if err := faults.Fire(faults.Stage, s.String()+":"+bin.Hash); err != nil {
				return err
			}
			return body()
		})
		out.Timings.Add(s, time.Since(start))
		return err
	}

	if err := runStage(StageDecode, func() error {
		g, err := cfg.Recover(bin, conf.CFG)
		if err != nil {
			return err
		}
		out.Graph = g
		return nil
	}); err != nil {
		return nil, err
	}

	pass := ident.Prepare(out.Graph, conf.Ident)

	if err := runStage(StageWrappers, pass.DetectWrappers); err != nil {
		return nil, err
	}

	if err := runStage(StageIdentify, func() error {
		rep, err := pass.Identify()
		if err != nil {
			return err
		}
		out.Report = rep
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
