package pipeline

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"bside/internal/cfg"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/ident"
)

// testBinary synthesizes a mid-sized static binary with enough
// wrappers, handlers and sites to exercise every stage.
func testBinary(t testing.TB) *elff.Binary {
	t.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "pipe", Kind: elff.KindStatic,
		HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
		ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
		Filler: 30, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestRunMatchesMonolithicAnalyze: the staged pipeline must produce
// exactly what cfg.Recover + ident.Analyze produce.
func TestRunMatchesMonolithicAnalyze(t *testing.T) {
	bin := testBinary(t)

	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ident.Analyze(g, ident.Config{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := Run(bin, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report.Syscalls, want.Syscalls) {
		t.Fatalf("syscalls drifted: %v vs %v", res.Report.Syscalls, want.Syscalls)
	}
	if res.Report.FailOpen != want.FailOpen {
		t.Fatal("fail-open drifted")
	}
	if len(res.Report.Wrappers) != len(want.Wrappers) {
		t.Fatalf("wrappers drifted: %d vs %d", len(res.Report.Wrappers), len(want.Wrappers))
	}
}

// TestTimingsRecorded: every per-binary stage must appear, in pipeline
// order, and Total must be their sum.
func TestTimingsRecorded(t *testing.T) {
	res, err := Run(testBinary(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []Stage{StageDecode, StageWrappers, StageIdentify}
	if len(res.Timings) != len(wantOrder) {
		t.Fatalf("timings: %v", res.Timings)
	}
	var sum time.Duration
	for i, tm := range res.Timings {
		if tm.Stage != wantOrder[i] {
			t.Fatalf("stage %d = %v, want %v", i, tm.Stage, wantOrder[i])
		}
		sum += tm.Duration
	}
	if res.Timings.Total() != sum {
		t.Fatal("Total is not the stage sum")
	}
	if res.Timings.Get(StageDecode) <= 0 {
		t.Fatal("decode cost not measured")
	}
	if res.Timings.Get(StageStitch) != 0 {
		t.Fatal("stitch must be absent for a static binary")
	}
}

// siteKey reduces a SiteResult to its scheduling-independent identity.
type siteKey struct {
	Addr     uint64
	Kind     ident.SiteKind
	Wrapper  uint64
	Syscalls string
	FailOpen bool
}

func normalize(rep *ident.Report) []siteKey {
	out := make([]siteKey, 0, len(rep.Sites))
	for _, s := range rep.Sites {
		key := siteKey{Addr: s.Addr, Kind: s.Kind, Wrapper: s.Wrapper, FailOpen: s.FailOpen}
		key.Syscalls = fmt.Sprint(s.Syscalls)
		out = append(out, key)
	}
	return out
}

// TestWorkerCountInvariance: the whole Report — values, per-site
// details, ordering — must be identical at 1, 4 and 8 workers.
func TestWorkerCountInvariance(t *testing.T) {
	bin := testBinary(t)
	base, err := Run(bin, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		res, err := Run(bin, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Report.Syscalls, base.Report.Syscalls) {
			t.Fatalf("workers=%d: syscalls drifted", workers)
		}
		if !reflect.DeepEqual(normalize(res.Report), normalize(base.Report)) {
			t.Fatalf("workers=%d: site details or ordering drifted", workers)
		}
		if !reflect.DeepEqual(res.Report.Wrappers, base.Report.Wrappers) {
			t.Fatalf("workers=%d: wrappers drifted", workers)
		}
		if !reflect.DeepEqual(res.Report.ReachableImports, base.Report.ReachableImports) {
			t.Fatalf("workers=%d: imports drifted", workers)
		}
		if res.Report.Stats.BlocksExplored != base.Report.Stats.BlocksExplored {
			t.Fatalf("workers=%d: explored %d blocks, serial explored %d",
				workers, res.Report.Stats.BlocksExplored, base.Report.Stats.BlocksExplored)
		}
	}
}

// TestDeadlineTimesOut: a deadline already in the past must surface as
// ident.ErrTimeout, the paper's wall-clock timeout semantics.
func TestDeadlineTimesOut(t *testing.T) {
	_, err := Run(testBinary(t), Config{Timeout: time.Nanosecond})
	if !errors.Is(err, ident.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}
