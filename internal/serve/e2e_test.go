package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"bside"
	"bside/internal/corpus"
	"bside/internal/elff"
)

// TestEndToEndUploadThenHashLookup drives the real analyzer through the
// service: a cold upload computes and persists, then the deployment-time
// path — a bare content hash, no image bytes at all — retrieves the
// byte-identical result from the cache.
func TestEndToEndUploadThenHashLookup(t *testing.T) {
	set, err := corpus.GenerateApps()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	libDir := filepath.Join(dir, "libs")
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, lib := range set.Libs {
		data, err := elff.Write(elff.Spec{
			Kind: lib.Kind, Base: lib.Base, Entry: lib.Entry, Blob: lib.Blob,
			CodeSize: lib.CodeSize, Exports: lib.Exports, Imports: lib.Imports,
			Needed: lib.Needed, Symbols: lib.Symbols, HasUnwind: lib.HasUnwind,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(libDir, name), data, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	app := set.Apps[5] // sqlite: the smallest
	img, err := elff.Write(elff.Spec{
		Kind: app.Bin.Kind, Base: app.Bin.Base, Entry: app.Bin.Entry, Blob: app.Bin.Blob,
		CodeSize: app.Bin.CodeSize, Exports: app.Bin.Exports, Imports: app.Bin.Imports,
		Needed: app.Bin.Needed, Symbols: app.Bin.Symbols, HasUnwind: app.Bin.HasUnwind,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := elff.ReadIdentity(img)
	if err != nil {
		t.Fatal(err)
	}

	analyzer, err := bside.NewAnalyzerErr(bside.Options{
		LibraryDir: libDir,
		CacheDir:   filepath.Join(dir, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Backend: analyzer, MaxInFlight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before anything is analyzed, the hash lookup is a clean 404.
	miss, err := http.Post(ts.URL+"/analyze?hash="+id.Hash, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("cold hash lookup: status %d", miss.StatusCode)
	}

	// Cold upload: the real pipeline runs.
	up, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := io.ReadAll(up.Body)
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", up.StatusCode, cold)
	}
	if up.Header.Get("X-Bside-Cached") != "false" {
		t.Fatal("cold upload served from cache")
	}

	// Warm lookup by hash alone: same bytes, no upload, no ELF parse.
	warm, err := http.Post(ts.URL+"/analyze?hash="+id.Hash, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	warmBody, _ := io.ReadAll(warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm hash lookup: status %d: %s", warm.StatusCode, warmBody)
	}
	if warm.Header.Get("X-Bside-Cached") != "true" {
		t.Fatal("warm lookup not marked cached")
	}
	if !bytes.Equal(cold, warmBody) {
		t.Fatalf("hash lookup diverged from the upload:\n%s\nvs\n%s", cold, warmBody)
	}
	m := s.MetricsSnapshot()
	if m.Serve.LookupHits != 1 || m.Serve.Analyses != 1 {
		t.Fatalf("serve metrics: %+v", m.Serve)
	}
	if m.Cache.Hits == 0 {
		t.Fatalf("cache metrics show no hit: %+v", m.Cache)
	}
}
