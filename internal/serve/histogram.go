package serve

import (
	"sync/atomic"
	"time"

	"bside"
)

// histBuckets is the number of power-of-two millisecond buckets: the
// first bucket is ≤1ms, the last ≤2^(histBuckets-1)ms (~2.2 minutes);
// anything slower lands in the overflow counter. Log-scale is the
// right shape for analysis latency — a warm memory-tier hit and a cold
// libc-sized analysis sit five orders of magnitude apart.
const histBuckets = 18

// histogram is a lock-free log-scale latency histogram.
type histogram struct {
	counts   [histBuckets]atomic.Uint64
	overflow atomic.Uint64
	total    atomic.Uint64
	sumUs    atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ms := d.Milliseconds()
	idx := 0
	for idx < histBuckets && ms > int64(1)<<idx {
		idx++
	}
	if idx == histBuckets {
		h.overflow.Add(1)
	} else {
		h.counts[idx].Add(1)
	}
	h.total.Add(1)
	h.sumUs.Add(uint64(d.Microseconds()))
}

// HistogramSnapshot is one stage's latency distribution as served by
// /metrics: LeMs[i] is the upper bound of bucket i in milliseconds,
// Counts[i] its population (non-cumulative), Overflow everything past
// the last bound.
type HistogramSnapshot struct {
	LeMs     []uint64 `json:"le_ms"`
	Counts   []uint64 `json:"counts"`
	Overflow uint64   `json:"overflow"`
	Count    uint64   `json:"count"`
	SumMs    float64  `json:"sum_ms"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		LeMs:     make([]uint64, histBuckets),
		Counts:   make([]uint64, histBuckets),
		Overflow: h.overflow.Load(),
		Count:    h.total.Load(),
		SumMs:    float64(h.sumUs.Load()) / 1000,
	}
	for i := 0; i < histBuckets; i++ {
		out.LeMs[i] = uint64(1) << i
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// stageHistograms tracks one histogram per pipeline stage plus the
// end-to-end total — the service's live rendering of the paper's
// per-stage cost table.
type stageHistograms struct {
	decode   histogram
	wrappers histogram
	identify histogram
	stitch   histogram
	total    histogram
}

func (sh *stageHistograms) observe(t *bside.Timings) {
	sh.decode.observe(t.Decode)
	sh.wrappers.observe(t.Wrappers)
	sh.identify.observe(t.Identify)
	sh.stitch.observe(t.Stitch)
	sh.total.observe(t.Total)
}

func (sh *stageHistograms) snapshot() map[string]HistogramSnapshot {
	return map[string]HistogramSnapshot{
		"decode":   sh.decode.snapshot(),
		"wrappers": sh.wrappers.snapshot(),
		"identify": sh.identify.snapshot(),
		"stitch":   sh.stitch.snapshot(),
		"total":    sh.total.snapshot(),
	}
}
