package serve

import (
	"bside"
	"bside/internal/metrics"
)

// HistogramSnapshot is one stage's latency distribution as served by
// /metrics — the shared metrics snapshot (same JSON wire shape as
// before the histogram moved to internal/metrics).
type HistogramSnapshot = metrics.Snapshot

// stageHistograms tracks one histogram per pipeline stage plus the
// end-to-end total — the service's live rendering of the paper's
// per-stage cost table.
type stageHistograms struct {
	decode   metrics.Histogram
	wrappers metrics.Histogram
	identify metrics.Histogram
	stitch   metrics.Histogram
	total    metrics.Histogram
}

func (sh *stageHistograms) observe(t *bside.Timings) {
	sh.decode.Observe(t.Decode)
	sh.wrappers.Observe(t.Wrappers)
	sh.identify.Observe(t.Identify)
	sh.stitch.Observe(t.Stitch)
	sh.total.Observe(t.Total)
}

func (sh *stageHistograms) snapshot() map[string]HistogramSnapshot {
	return map[string]HistogramSnapshot{
		"decode":   sh.decode.Snapshot(),
		"wrappers": sh.wrappers.Snapshot(),
		"identify": sh.identify.Snapshot(),
		"stitch":   sh.stitch.Snapshot(),
		"total":    sh.total.Snapshot(),
	}
}
