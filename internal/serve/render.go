package serve

import (
	"encoding/json"

	"bside"
)

// ResultBody is the canonical analysis rendering: the result fields
// that are a pure function of the image (and the analyzer's
// configuration) — nothing request-scoped, nothing wall-clock. Two
// analyses of the same image must render byte-identically whether they
// ran cold, warm from either cache tier, directly in the library, or
// across the service; the fuzzer's serve-invariance leg enforces the
// last equivalence literally.
type ResultBody struct {
	Syscalls []uint64 `json:"syscalls"`
	Names    []string `json:"names"`
	FailOpen bool     `json:"fail_open"`
	Wrappers int      `json:"wrappers"`
	Imports  []string `json:"imports"`
}

func resultBody(res *bside.Analysis) *ResultBody {
	body := &ResultBody{
		Syscalls: res.Syscalls,
		Names:    res.Names(),
		FailOpen: res.FailOpen,
		Wrappers: res.Wrappers,
		Imports:  res.Imports,
	}
	// Absent and empty collections must render identically: the cold
	// path builds empty slices, a cache round trip can surface nil.
	if body.Syscalls == nil {
		body.Syscalls = []uint64{}
	}
	if body.Names == nil {
		body.Names = []string{}
	}
	if body.Imports == nil {
		body.Imports = []string{}
	}
	return body
}

// Render serializes one analysis into the canonical newline-terminated
// JSON body served by POST /analyze. Struct marshaling cannot fail.
func Render(res *bside.Analysis) []byte {
	b, _ := json.Marshal(resultBody(res))
	return append(b, '\n')
}
