package serve

import (
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bside"
	"bside/internal/elff"
	"bside/internal/faults"
)

// readCorpus loads one checked-in malformed image from the elff
// package's corpus.
func readCorpus(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "elff", "testdata", "malformed", name))
	if err != nil {
		t.Fatalf("corpus unavailable: %v", err)
	}
	return data
}

// TestMalformedUploadAnswers400 is the satellite e2e: a corrupt image
// posted to a daemon backed by the real analyzer answers 400, bumps
// malformed_total, and leaves the daemon healthy and able to serve the
// next well-formed upload.
func TestMalformedUploadAnswers400(t *testing.T) {
	s, ts := newTestServer(t, Config{Backend: bside.NewAnalyzer(bside.Options{})})

	// Two corruption depths: garbage the identity probe already rejects,
	// and a structurally-plausible header (the allocation bomb) that
	// only the full parse refuses. Both are the client's fault.
	for _, name := range []string{"truncated-header.elf", "memsz-bomb.elf"} {
		resp := postBytes(t, ts.URL+"/analyze", readCorpus(t, name))
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
	if got := s.MetricsSnapshot().Serve.MalformedTotal; got != 2 {
		t.Fatalf("malformed_total = %d, want 2", got)
	}
	if s.MetricsSnapshot().Serve.PanicsTotal != 0 {
		t.Fatal("malformed input must not count as a panic")
	}

	if status := getStatus(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("daemon unhealthy after malformed uploads: %d", status)
	}
	resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 7))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean upload after garbage: status %d", resp.StatusCode)
	}
}

// TestContainedPanicAnswers500 drives an injected stage panic through
// the real analyzer: the request answers 500 naming the stage (no
// stack in the body), panics_total increments, and the daemon keeps
// serving other images.
func TestContainedPanicAnswers500(t *testing.T) {
	s, ts := newTestServer(t, Config{Backend: bside.NewAnalyzer(bside.Options{})})

	poison := minimalELF(t, 31)
	pb, err := elff.Read(poison)
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: pb.Hash, Panic: true})
	defer restore()

	resp := postBytes(t, ts.URL+"/analyze", poison)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Fatalf("body does not name the failure: %s", body)
	}
	if strings.Contains(string(body), "goroutine") {
		t.Fatalf("stack leaked into the response body: %s", body)
	}
	if got := s.MetricsSnapshot().Serve.PanicsTotal; got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}

	// The fault is keyed by the poison's hash: a different image sails
	// through on the same daemon, with the rule still armed.
	resp = postBytes(t, ts.URL+"/analyze", minimalELF(t, 32))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean upload while rule armed: status %d", resp.StatusCode)
	}
	if status := getStatus(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("daemon unhealthy after contained panic: %d", status)
	}
}

// TestHealthzDegradedOnCacheIOErrors: repeated durable-cache failures
// flip /healthz to degraded — still HTTP 200, because the service
// keeps answering from the memory tier and recomputation; the body is
// the operator signal.
func TestHealthzDegradedOnCacheIOErrors(t *testing.T) {
	backend, err := bside.NewAnalyzerErr(bside.Options{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: backend})

	probe := func() (int, string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if status, body := probe(); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy daemon: %d %q", status, body)
	}

	restore := faults.Activate(
		faults.Rule{Point: faults.CacheRead, Err: errors.New("injected: disk gone")},
		faults.Rule{Point: faults.CacheWrite, Err: errors.New("injected: disk gone")},
	)
	defer restore()

	// Each analysis probes and stores several cache entries (program
	// summary plus per-function summaries); two uploads comfortably
	// clear the degradation threshold — and both must still succeed,
	// because a broken cache degrades to recomputation, never to 500s.
	for seed := byte(40); seed < 42; seed++ {
		resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, seed))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload with broken cache: status %d", resp.StatusCode)
		}
	}
	if n := backend.CacheStats().CacheIOErrors; n < DegradedCacheIOErrors {
		t.Fatalf("cache_io_errors = %d, want >= %d", n, DegradedCacheIOErrors)
	}
	status, body := probe()
	if status != http.StatusOK {
		t.Fatalf("degraded must stay 200 (load balancers!), got %d", status)
	}
	if !strings.Contains(body, "degraded") {
		t.Fatalf("healthz body: %q, want degraded", body)
	}
}
