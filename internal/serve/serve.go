// Package serve implements the resident analysis service behind
// `bside serve`: an HTTP/JSON daemon holding one warm Analyzer — its
// library interfaces computed, its memory tier populated, its
// per-function memo primed — so the fleet pays analysis latency once
// and every later request rides the caches.
//
// The API surface is small and operational:
//
//	POST /analyze        ELF image in the body → canonical JSON result
//	POST /analyze?hash=H no body: content-hash lookup against the
//	                     persistent cache — a warm hit never parses an
//	                     ELF, let alone decodes an instruction
//	POST /batch          {"paths":[...]} → NDJSON stream, one line per
//	                     binary in completion order
//	GET  /metrics        cache + admission counters, per-stage latency
//	                     histograms
//	GET  /healthz        liveness; 503 once draining
//
// Operational hardening, in the order a request meets it: admission
// control (a bounded in-flight semaphore; a full service answers 429
// with Retry-After instead of queueing unboundedly), per-request
// deadlines (the configured timeout rides the request context onto the
// symbolic-execution budget's wall clock, so an expired request stops
// mid-search and answers 504), and single-flight dedup (concurrent
// uploads of the same image hash run ONE analysis; the rest wait and
// share the bytes — abandoning waiters never poison each other, and the
// computation is canceled only when the last interested caller is
// gone).
//
// Result bodies are rendered by Render and nothing else, so a service
// response is byte-identical to a direct library analysis of the same
// image — an invariance the fuzzer's serve leg holds the daemon to.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bside"
	"bside/internal/elff"
	"bside/internal/shared"
)

// Backend is the slice of the public analyzer the service consumes.
// *bside.Analyzer satisfies it; tests substitute counting fakes.
type Backend interface {
	AnalyzeBytesContext(ctx context.Context, data []byte) (*bside.Analysis, error)
	AnalyzeAllContext(ctx context.Context, paths []string, opts bside.BatchOptions) ([]*bside.Analysis, error)
	Lookup(hash string) (*bside.Analysis, bool)
	CacheStats() bside.CacheStats
}

// Config assembles a Server.
type Config struct {
	// Backend runs the analyses. Required.
	Backend Backend
	// MaxInFlight bounds concurrently running analyses (uploads and
	// batches; hash lookups are too cheap to gate). Requests beyond the
	// bound are answered 429 with Retry-After, not queued. 0 means 2×
	// GOMAXPROCS is NOT assumed here — the caller picks; non-positive
	// values fall back to DefaultMaxInFlight.
	MaxInFlight int
	// RequestTimeout bounds one analysis request's wall clock; it maps
	// onto the analysis budget's deadline, so an expired request aborts
	// mid-search and answers 504. 0 means no service-imposed deadline.
	RequestTimeout time.Duration
	// MaxUploadBytes bounds the /analyze request body. Non-positive
	// values fall back to DefaultMaxUploadBytes.
	MaxUploadBytes int64
}

// Defaults for non-positive Config knobs.
const (
	DefaultMaxInFlight    = 4
	DefaultMaxUploadBytes = 512 << 20
)

// Server is the resident service. Create with New, expose via Handler.
type Server struct {
	backend   Backend
	timeout   time.Duration
	maxUpload int64
	sem       chan struct{}
	draining  atomic.Bool
	flights   shared.Group[*bside.Analysis]

	requests   atomic.Uint64 // /analyze + /batch requests fielded
	analyses   atomic.Uint64 // analyses actually run by the backend
	deduped    atomic.Uint64 // requests that shared another's flight
	rejected   atomic.Uint64 // 429s issued by admission control
	timeouts   atomic.Uint64 // 504s issued on expired deadlines
	lookups    atomic.Uint64 // ?hash= probes fielded
	lookupHits atomic.Uint64 // ?hash= probes served from the cache
	panics     atomic.Uint64 // 500s from contained analysis panics
	malformed  atomic.Uint64 // 400s from images the parser rejected

	stages stageHistograms
}

// New assembles a Server from conf.
func New(conf Config) *Server {
	if conf.MaxInFlight <= 0 {
		conf.MaxInFlight = DefaultMaxInFlight
	}
	if conf.MaxUploadBytes <= 0 {
		conf.MaxUploadBytes = DefaultMaxUploadBytes
	}
	return &Server{
		backend:   conf.Backend,
		timeout:   conf.RequestTimeout,
		maxUpload: conf.MaxUploadBytes,
		sem:       make(chan struct{}, conf.MaxInFlight),
	}
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// BeginDrain flips the server into draining: /healthz answers 503 so
// load balancers stop routing here, while requests already in flight
// run to completion (the caller pairs this with http.Server.Shutdown,
// which waits for them).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// errSaturated marks an admission-control rejection.
var errSaturated = errors.New("serve: analysis capacity saturated")

// DegradedCacheIOErrors is how many durable-cache IO errors flip
// /healthz from "ok" to "degraded". Degraded is still HTTP 200 — the
// service keeps answering from the memory and pack tiers and by
// recomputation, so a broken cache disk must not get the instance
// pulled from rotation; the body is the operator's signal to go look
// at the disk.
const DegradedCacheIOErrors = 3

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if n := s.backend.CacheStats().CacheIOErrors; n >= DegradedCacheIOErrors {
		fmt.Fprintf(w, "degraded: %d cache IO errors (serving from memory/pack tiers and recomputation)\n", n)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	if hash := r.URL.Query().Get("hash"); hash != "" {
		s.handleLookup(w, hash)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("upload exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	start := time.Now()
	res, sharedFlight, err := s.analyzeBytes(ctx, data)
	if err != nil {
		s.writeAnalysisError(w, err, time.Since(start))
		return
	}
	if sharedFlight {
		s.deduped.Add(1)
	}
	if res.Timings != nil {
		s.stages.observe(res.Timings)
	}
	s.writeResult(w, res, time.Since(start))
}

// handleLookup serves the by-hash path: the runtime half of the
// decoupled design. A hit touches only the cache — no upload, no ELF
// parse, no decoding — and reports Cached via header like any other
// cache-served result.
func (s *Server) handleLookup(w http.ResponseWriter, hash string) {
	s.lookups.Add(1)
	start := time.Now()
	res, ok := s.backend.Lookup(hash)
	if !ok {
		http.Error(w, "no cached analysis for hash", http.StatusNotFound)
		return
	}
	s.lookupHits.Add(1)
	s.writeResult(w, res, time.Since(start))
}

// errBadImage wraps an identity-parse failure for status mapping.
type errBadImage struct{ err error }

func (e errBadImage) Error() string { return e.err.Error() }

// analyzeBytes runs one upload through dedup and admission. The cheap
// identity parse keys the single flight: N concurrent posts of the
// same bytes run one analysis. An image the frontend cannot even
// identify is rejected here, before consuming an in-flight slot.
func (s *Server) analyzeBytes(ctx context.Context, data []byte) (*bside.Analysis, bool, error) {
	id, err := elff.ReadIdentity(data)
	if err != nil {
		return nil, false, errBadImage{err}
	}
	return s.flights.Do(ctx, id.Hash, func(cctx context.Context) (*bside.Analysis, error) {
		// The flight's context is detached from any single request;
		// re-impose the service deadline so a deduped analysis is still
		// bounded.
		if s.timeout > 0 {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(cctx, s.timeout)
			defer cancel()
		}
		return s.analyzeOne(cctx, data)
	})
}

// analyzeOne is the admission-controlled backend call: a free in-flight
// slot or an immediate errSaturated — the service never queues work it
// cannot start.
func (s *Server) analyzeOne(ctx context.Context, data []byte) (*bside.Analysis, error) {
	select {
	case s.sem <- struct{}{}:
	default:
		return nil, errSaturated
	}
	defer func() { <-s.sem }()
	res, err := s.backend.AnalyzeBytesContext(ctx, data)
	if err == nil {
		s.analyses.Add(1)
	}
	return res, err
}

// writeAnalysisError maps an analysis failure onto the status codes
// operators alarm on: 429 for admission rejections (with Retry-After,
// so well-behaved clients back off instead of hammering), 500 for
// contained analysis panics (our fault, counted in panics_total — the
// daemon itself survived and says so), 504 for expired deadlines (the
// elapsed wall clock rides a header — partial per-stage timings do not
// survive the abort), 400 for images the frontend rejects (the
// client's fault, counted in malformed_total), 422 for analyses that
// failed on their merits.
func (s *Server) writeAnalysisError(w http.ResponseWriter, err error, elapsed time.Duration) {
	var pe *bside.PanicError
	switch {
	case errors.Is(err, errSaturated):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &pe):
		// A panic the fault boundary contained: this request's analysis
		// crashed but the process did not. The body names the stage
		// without the stack (that is diagnostic payload, not response
		// text); the counter is what operators alarm on.
		s.panics.Add(1)
		setElapsed(w, elapsed)
		http.Error(w, fmt.Sprintf("analysis panicked in stage %s", pe.Stage), http.StatusInternalServerError)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		setElapsed(w, elapsed)
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client is gone; nothing readable can be written. 499 is
		// nginx's convention for exactly this.
		w.WriteHeader(499)
	case errors.As(err, &errBadImage{}), errors.Is(err, bside.ErrMalformed):
		s.malformed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	}
}

func setElapsed(w http.ResponseWriter, elapsed time.Duration) {
	w.Header().Set("X-Bside-Elapsed-Ms", strconv.FormatFloat(float64(elapsed)/float64(time.Millisecond), 'f', 3, 64))
}

// writeResult writes the canonical body. Everything request-scoped —
// cache provenance, wall clock — travels in headers, keeping the body
// byte-identical to a direct library analysis of the same image (the
// fuzzer's serve leg compares exactly these bytes).
func (s *Server) writeResult(w http.ResponseWriter, res *bside.Analysis, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Bside-Cached", strconv.FormatBool(res.Cached))
	setElapsed(w, elapsed)
	_, _ = w.Write(Render(res))
}

// batchRequest is the /batch input.
type batchRequest struct {
	// Paths are server-side filesystem paths to analyze.
	Paths []string `json:"paths"`
	// Jobs bounds the batch's own worker pool (0 = GOMAXPROCS).
	Jobs int `json:"jobs,omitempty"`
}

// batchLine is one NDJSON line of the /batch response stream, emitted
// per binary in completion order.
type batchLine struct {
	Path   string      `json:"path"`
	Result *ResultBody `json:"result,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	Err    string      `json:"err,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad batch request: %v", err), http.StatusBadRequest)
		return
	}
	// A batch occupies one in-flight slot however many paths it holds —
	// its internal pool is bounded by Jobs, and admission control exists
	// to bound concurrent *requests*, not binaries.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, errSaturated.Error(), http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()

	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Results stream as they complete (BatchOptions.OnResult serializes
	// the calls); the HTTP status is already committed by the first
	// line, so per-binary failures travel in-band on their lines.
	_, err := s.backend.AnalyzeAllContext(ctx, req.Paths, bside.BatchOptions{
		Jobs: req.Jobs,
		OnResult: func(res *bside.Analysis) {
			line := batchLine{Path: res.Path}
			if res.Err != nil {
				line.Err = res.Err.Error()
			} else {
				line.Result = resultBody(res)
				line.Cached = res.Cached
				s.analyses.Add(1)
				if res.Timings != nil {
					s.stages.observe(res.Timings)
				}
			}
			_ = enc.Encode(line)
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	if err != nil {
		// Batch-level failure after the stream started: emit a final
		// pathless error line so the client sees a cause, not just EOF.
		_ = enc.Encode(batchLine{Err: err.Error()})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// Metrics is the /metrics document.
type Metrics struct {
	// Cache is the backend's cache traffic (including the memory tier's
	// LRU eviction counters and gauges).
	Cache bside.CacheStats `json:"cache"`
	// Serve is the service's own request accounting.
	Serve ServeMetrics `json:"serve"`
	// StagesMs holds one latency histogram per analysis stage, in
	// milliseconds, over the analyses this process ran.
	StagesMs map[string]HistogramSnapshot `json:"stages_ms"`
}

// ServeMetrics is the admission/dedup counter block of Metrics.
type ServeMetrics struct {
	Requests   uint64 `json:"requests"`
	Analyses   uint64 `json:"analyses"`
	Deduped    uint64 `json:"deduped"`
	Rejected   uint64 `json:"rejected"`
	Timeouts   uint64 `json:"timeouts"`
	Lookups    uint64 `json:"lookups"`
	LookupHits uint64 `json:"lookup_hits"`
	// PanicsTotal counts analyses that panicked and were contained —
	// every one answered 500 while the daemon kept serving. Nonzero
	// means an input crashed analysis code; climbing means someone is
	// feeding the service poison (or a real bug is loose).
	PanicsTotal uint64 `json:"panics_total"`
	// MalformedTotal counts uploads rejected as structurally invalid
	// ELF images (400s). The hostile-input counterpart to PanicsTotal:
	// these the parser refused on purpose.
	MalformedTotal uint64 `json:"malformed_total"`
	InFlight       int    `json:"in_flight"`
	Draining       bool   `json:"draining"`
}

// MetricsSnapshot assembles the /metrics document (exported for the
// smoke tool and tests; the handler serves exactly this).
func (s *Server) MetricsSnapshot() Metrics {
	return Metrics{
		Cache: s.backend.CacheStats(),
		Serve: ServeMetrics{
			Requests:       s.requests.Load(),
			Analyses:       s.analyses.Load(),
			Deduped:        s.deduped.Load(),
			Rejected:       s.rejected.Load(),
			Timeouts:       s.timeouts.Load(),
			Lookups:        s.lookups.Load(),
			LookupHits:     s.lookupHits.Load(),
			PanicsTotal:    s.panics.Load(),
			MalformedTotal: s.malformed.Load(),
			InFlight:       len(s.sem),
			Draining:       s.draining.Load(),
		},
		StagesMs: s.stages.snapshot(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.MetricsSnapshot())
}
