package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bside"
	"bside/internal/elff"
)

// minimalELF writes a tiny valid static image whose content (and
// therefore hash) varies with seed.
func minimalELF(t *testing.T, seed byte) []byte {
	t.Helper()
	data, err := elff.Write(elff.Spec{
		Kind:  elff.KindStatic,
		Base:  0x400000,
		Entry: 0x400000,
		Blob:  []byte{0x0f, 0x05, 0xc3, seed}, // syscall; ret; data
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fakeBackend is a counting Backend double. When gate is non-nil every
// analysis blocks on it (or the request context), which is what lets
// the tests hold analyses in flight deterministically.
type fakeBackend struct {
	calls  atomic.Int32
	gate   chan struct{}
	lookup map[string]*bside.Analysis
	stats  bside.CacheStats
}

func (f *fakeBackend) AnalyzeBytesContext(ctx context.Context, data []byte) (*bside.Analysis, error) {
	f.calls.Add(1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, fmt.Errorf("analysis aborted: %w", ctx.Err())
		}
	}
	return &bside.Analysis{
		Syscalls: []uint64{0, 1, 60},
		Wrappers: 2,
		Imports:  []string{"read", "write"},
		Timings:  &bside.Timings{Decode: time.Millisecond, Total: time.Millisecond},
	}, nil
}

func (f *fakeBackend) AnalyzeAllContext(ctx context.Context, paths []string, opts bside.BatchOptions) ([]*bside.Analysis, error) {
	out := make([]*bside.Analysis, len(paths))
	for i, p := range paths {
		res := &bside.Analysis{Path: p, Syscalls: []uint64{uint64(i)}, Imports: []string{}}
		if strings.Contains(p, "bad") {
			res = &bside.Analysis{Path: p, Err: errors.New("boom")}
		}
		out[i] = res
		if opts.OnResult != nil {
			opts.OnResult(res)
		}
	}
	return out, ctx.Err()
}

func (f *fakeBackend) Lookup(hash string) (*bside.Analysis, bool) {
	res, ok := f.lookup[hash]
	return res, ok
}

func (f *fakeBackend) CacheStats() bside.CacheStats { return f.stats }

func newTestServer(t *testing.T, conf Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(conf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postBytes(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAnalyzeEndpoint(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, Config{Backend: fb})
	resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get("X-Bside-Cached") != "false" {
		t.Fatal("fresh analysis marked cached")
	}
	if resp.Header.Get("X-Bside-Elapsed-Ms") == "" {
		t.Fatal("no elapsed header")
	}
	body, _ := io.ReadAll(resp.Body)
	want, _ := fb.AnalyzeBytesContext(context.Background(), nil)
	fb.calls.Store(1) // undo the helper call above for later asserts
	if !bytes.Equal(body, Render(want)) {
		t.Fatalf("body is not the canonical rendering:\n%s", body)
	}
	var parsed ResultBody
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if len(parsed.Names) != len(parsed.Syscalls) {
		t.Fatal("names not parallel to syscalls")
	}
}

func TestAnalyzeRejectsJunkAndWrongMethod(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, Config{Backend: fb})
	resp := postBytes(t, ts.URL+"/analyze", []byte("not an elf"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk image: status %d", resp.StatusCode)
	}
	if fb.calls.Load() != 0 {
		t.Fatal("junk image reached the backend")
	}
	get, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", get.StatusCode)
	}
}

func TestUploadBound(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, Config{Backend: fb, MaxUploadBytes: 64})
	resp := postBytes(t, ts.URL+"/analyze", make([]byte, 65))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d", resp.StatusCode)
	}
}

func TestSaturationAnswers429(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	s, ts := newTestServer(t, Config{Backend: fb, MaxInFlight: 1})

	// Occupy the only slot with a gated analysis.
	firstDone := make(chan int, 1)
	go func() {
		resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 1))
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return fb.calls.Load() == 1 })

	// A DIFFERENT image (no dedup) finds the service saturated.
	resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Batches obey the same gate.
	breq, _ := json.Marshal(batchRequest{Paths: []string{"/x"}})
	bresp := postBytes(t, ts.URL+"/batch", breq)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d", bresp.StatusCode)
	}

	close(fb.gate)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request: status %d", code)
	}
	if m := s.MetricsSnapshot().Serve; m.Rejected != 2 || m.Analyses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestDeadlineAnswers504(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})} // never opened: only ctx expiry returns
	s, ts := newTestServer(t, Config{Backend: fb, RequestTimeout: 50 * time.Millisecond})
	resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Bside-Elapsed-Ms") == "" {
		t.Fatal("504 without elapsed header")
	}
	if m := s.MetricsSnapshot().Serve; m.Timeouts != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestConcurrentSameImageRunsOneAnalysis(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	s, ts := newTestServer(t, Config{Backend: fb, MaxInFlight: 8})
	img := minimalELF(t, 7)

	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postBytes(t, ts.URL+"/analyze", img)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Hold the gate until the leader is in the backend and every other
	// request has been fielded, then give the joiners a beat to park on
	// the flight before releasing.
	waitFor(t, func() bool {
		return fb.calls.Load() >= 1 && s.MetricsSnapshot().Serve.Requests == n
	})
	time.Sleep(50 * time.Millisecond)
	close(fb.gate)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}
	if c := fb.calls.Load(); c != 1 {
		t.Fatalf("backend ran %d analyses for %d identical posts", c, n)
	}
	if m := s.MetricsSnapshot().Serve; m.Deduped != n-1 || m.Analyses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestHashLookup(t *testing.T) {
	cached := &bside.Analysis{Syscalls: []uint64{60}, Cached: true, Imports: []string{}}
	fb := &fakeBackend{lookup: map[string]*bside.Analysis{"abc123": cached}}
	s, ts := newTestServer(t, Config{Backend: fb})

	resp := postBytes(t, ts.URL+"/analyze?hash=abc123", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm lookup: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Bside-Cached") != "true" {
		t.Fatal("cache-served result not marked cached")
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, Render(cached)) {
		t.Fatalf("lookup body: %s", body)
	}
	if fb.calls.Load() != 0 {
		t.Fatal("hash lookup must not analyze")
	}

	miss := postBytes(t, ts.URL+"/analyze?hash=ffff", nil)
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("cold lookup: status %d", miss.StatusCode)
	}
	if m := s.MetricsSnapshot().Serve; m.Lookups != 2 || m.LookupHits != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestBatchStreamsNDJSON(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, Config{Backend: fb})
	req, _ := json.Marshal(batchRequest{Paths: []string{"/bin/a", "/bin/bad", "/bin/c"}})
	resp := postBytes(t, ts.URL+"/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var lines []batchLine
	for {
		var line batchLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if len(lines) != 3 {
		t.Fatalf("lines: %d", len(lines))
	}
	for _, line := range lines {
		if strings.Contains(line.Path, "bad") {
			if line.Err == "" || line.Result != nil {
				t.Fatalf("bad path line: %+v", line)
			}
		} else if line.Err != "" || line.Result == nil {
			t.Fatalf("good path line: %+v", line)
		}
	}
	// Malformed batch bodies are rejected before any work.
	bad := postBytes(t, ts.URL+"/batch", []byte("{"))
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", bad.StatusCode)
	}
}

func TestGracefulDrain(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	s, ts := newTestServer(t, Config{Backend: fb})

	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	// A request in flight...
	done := make(chan int, 1)
	go func() {
		resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 1))
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return fb.calls.Load() == 1 })
	// ...survives the drain flip and completes normally, while the
	// health check immediately steers new traffic away.
	s.BeginDrain()
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", code)
	}
	close(fb.gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fb := &fakeBackend{stats: bside.CacheStats{Hits: 3, MemoryHits: 2, MemoryEvictions: 1}}
	_, ts := newTestServer(t, Config{Backend: fb})
	// One analysis populates the stage histograms.
	resp := postBytes(t, ts.URL+"/analyze", minimalELF(t, 1))
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 3 || m.Cache.MemoryEvictions != 1 {
		t.Fatalf("cache stats not surfaced: %+v", m.Cache)
	}
	if m.Serve.Requests != 1 || m.Serve.Analyses != 1 {
		t.Fatalf("serve counters: %+v", m.Serve)
	}
	for _, stage := range []string{"decode", "wrappers", "identify", "stitch", "total"} {
		h, ok := m.StagesMs[stage]
		if !ok {
			t.Fatalf("stage %q missing from metrics", stage)
		}
		if stage == "total" && h.Count != 1 {
			t.Fatalf("total histogram count: %+v", h)
		}
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
