package shared

import (
	"io/fs"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"bside/internal/asm"
	"bside/internal/cache"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// writeImporter builds a dynamic executable that calls write through
// the GOT and exits; salt differentiates the images (and so their
// content hashes).
func writeImporter(t testing.TB, salt uint32) *elff.Binary {
	t.Helper()
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.R10, salt)
		b.CallLabel("stub_write")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		spec.Needed = []string{"libmid.so"}
	})
	return main
}

// TestConcurrentProgramsShareOneInterfaceComputation is the §4.5
// scalability contract under concurrency: many executables sharing a
// dependency chain must trigger exactly one load and one interface
// computation per library, however the analyses are scheduled.
func TestConcurrentProgramsShareOneInterfaceComputation(t *testing.T) {
	libc := miniLibc(t)
	mid := midLib(t)
	var loads sync.Map // name -> *atomic.Int64
	counting := func(name string) (*elff.Binary, error) {
		c, _ := loads.LoadOrStore(name, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		switch name {
		case "libc.so":
			return libc, nil
		case "libmid.so":
			return mid, nil
		}
		return nil, &elffNotFound{name}
	}

	a := NewAnalyzer(counting, ident.Config{})
	const workers = 8
	results := make([]*ProgramReport, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			main := writeImporter(t, uint32(1000+i))
			results[i], errs[i] = a.Program(main)
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Syscalls, []uint64{1, 60}) || results[i].FailOpen {
			t.Fatalf("worker %d: %v failopen=%v", i, results[i].Syscalls, results[i].FailOpen)
		}
	}
	for _, name := range []string{"libc.so", "libmid.so"} {
		c, ok := loads.Load(name)
		if !ok {
			t.Fatalf("%s never loaded", name)
		}
		if n := c.(*atomic.Int64).Load(); n != 1 {
			t.Fatalf("%s loaded %d times, want exactly 1", name, n)
		}
	}
	if ifcs := a.Interfaces(); len(ifcs) != 2 {
		t.Fatalf("interfaces: %d", len(ifcs))
	}
}

// TestConcurrentModulesAndPrograms mixes Program and Module calls on
// one analyzer under the race detector.
func TestConcurrentModulesAndPrograms(t *testing.T) {
	a := NewAnalyzer(loader(t), ident.Config{})
	module, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0300000000, func(b *asm.Builder) {
		b.Func("mod_entry")
		b.MovRegImm32(x86.RAX, 232)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "mod_entry", Addr: syms["mod_entry"]}}
	})

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				main := writeImporter(t, uint32(2000+i))
				if rep, err := a.Program(main); err != nil || rep.FailOpen {
					t.Errorf("program %d: %v", i, err)
				}
			} else {
				set, failOpen, err := a.Module(module, "m.so", nil)
				if err != nil || failOpen || !reflect.DeepEqual(set, []uint64{232}) {
					t.Errorf("module %d: %v %v %v", i, set, failOpen, err)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestProgramSummaryCacheHitAndDependencyBust exercises the
// content-addressed program cache end to end: a second process-like
// analyzer serves the summary from disk without analysis, and swapping
// a dependency image for different content busts the entry even though
// the executable itself is unchanged.
func TestProgramSummaryCacheHitAndDependencyBust(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	main := writeImporter(t, 7)

	a1 := NewAnalyzer(loader(t), ident.Config{})
	a1.Cache = store
	sum1, rep1, err := a1.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Cached || rep1 == nil {
		t.Fatalf("first run must compute: cached=%v rep=%v", sum1.Cached, rep1)
	}
	if !reflect.DeepEqual(sum1.Syscalls, []uint64{1, 60}) {
		t.Fatalf("syscalls: %v", sum1.Syscalls)
	}

	// A fresh analyzer over the same store: full hit, no report, and no
	// library analysis (the interfaces map stays empty).
	a2 := NewAnalyzer(loader(t), ident.Config{})
	a2.Cache = store
	sum2, rep2, err := a2.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if !sum2.Cached || rep2 != nil {
		t.Fatalf("second run must hit: cached=%v rep=%v", sum2.Cached, rep2)
	}
	if !reflect.DeepEqual(sum2.Syscalls, sum1.Syscalls) || sum2.Wrappers != sum1.Wrappers {
		t.Fatalf("cached summary drifted: %+v vs %+v", sum2, sum1)
	}
	if len(a2.Interfaces()) != 0 {
		t.Fatal("cache hit must not analyze libraries")
	}

	// Same executable, upgraded libc (write now also does fsync): the
	// dependency fingerprint changes, the entry is stale, and the new
	// result reflects the new library.
	libc2, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0000000000, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 74) // fsync
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "write", Addr: syms["write"]}}
	})
	mid := midLib(t)
	a3 := NewAnalyzer(func(name string) (*elff.Binary, error) {
		switch name {
		case "libc.so":
			return libc2, nil
		case "libmid.so":
			return mid, nil
		}
		return nil, &elffNotFound{name}
	}, ident.Config{})
	a3.Cache = store
	sum3, rep3, err := a3.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sum3.Cached || rep3 == nil {
		t.Fatal("upgraded dependency must bust the program entry")
	}
	if !reflect.DeepEqual(sum3.Syscalls, []uint64{1, 60, 74}) {
		t.Fatalf("post-upgrade syscalls: %v", sum3.Syscalls)
	}
}

// TestInterfaceContentCache: the once-per-library artifact is reusable
// across analyzers through the store, without InterfaceDir.
func TestInterfaceContentCache(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int64
	libc := miniLibc(t)
	counting := func(name string) (*elff.Binary, error) {
		if name != "libc.so" {
			return nil, &elffNotFound{name}
		}
		loads.Add(1)
		return libc, nil
	}

	mkMain := func(salt uint32) *elff.Binary {
		main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
			b.Func("_start")
			b.MovRegImm32(x86.R10, salt)
			b.CallLabel("stub_write")
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
			b.Ret()
			b.Func("stub_write")
			b.JmpMemRIP("got_write")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_write")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
			spec.Needed = []string{"libc.so"}
		})
		return main
	}

	// Per-function "funcsum" entries share the store, so the guard
	// against re-analysis counts interface-kind entries on disk, not
	// total stores.
	countInterfaces := func() int {
		n := 0
		_ = filepath.WalkDir(filepath.Join(store.Dir(), "interface"), func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				n++
			}
			return nil
		})
		return n
	}

	a1 := NewAnalyzer(counting, ident.Config{})
	a1.Cache = store
	if _, err := a1.Program(mkMain(1)); err != nil {
		t.Fatal(err)
	}
	interfacesAfterFirst := countInterfaces()
	if store.Stats().Stores == 0 || interfacesAfterFirst == 0 {
		t.Fatal("nothing persisted")
	}

	// New analyzer, different main binary, same libc: the interface
	// must come from the store (no second AnalyzeLibrary, evidenced by
	// no new interface store).
	a2 := NewAnalyzer(counting, ident.Config{})
	a2.Cache = store
	rep, err := a2.Program(mkMain(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{1, 60}) {
		t.Fatalf("syscalls: %v", rep.Syscalls)
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("interface not served from store: %+v", st)
	}
	// The libc interface entry must not be re-analyzed or rewritten:
	// the interface-kind entry count is unchanged.
	if n := countInterfaces(); n != interfacesAfterFirst {
		t.Fatalf("interface entries grew: %d (first run ended at %d)", n, interfacesAfterFirst)
	}
}

// TestLegacyInterfaceDirCannotServeStaleUpgrades: with both stores
// configured, a changed library image must re-analyze — the name-keyed
// InterfaceDir must not shadow the content-addressed miss.
func TestLegacyInterfaceDirCannotServeStaleUpgrades(t *testing.T) {
	legacyDir := t.TempDir()
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	libc1 := miniLibc(t)
	mkLoader := func(libc *elff.Binary) func(string) (*elff.Binary, error) {
		return func(name string) (*elff.Binary, error) {
			if name == "libc.so" {
				return libc, nil
			}
			return nil, &elffNotFound{name}
		}
	}
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("stub_write")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		spec.Needed = []string{"libc.so"}
	})

	a1 := NewAnalyzer(mkLoader(libc1), ident.Config{})
	a1.InterfaceDir = legacyDir
	a1.Cache = store
	if _, err := a1.Program(main); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInterface(filepath.Join(legacyDir, "libc.so.interface.json")); err != nil {
		t.Fatalf("legacy interface not persisted: %v", err)
	}

	// Upgraded libc: write now also does fsync(74). The content cache
	// misses; the stale legacy file must not satisfy the lookup.
	libc2, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0000000000, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.MovRegImm32(x86.RAX, 74)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "write", Addr: syms["write"]}}
	})
	a2 := NewAnalyzer(mkLoader(libc2), ident.Config{})
	a2.InterfaceDir = legacyDir
	a2.Cache = store
	rep, err := a2.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{1, 60, 74}) {
		t.Fatalf("stale legacy interface served: %v", rep.Syscalls)
	}
}

// TestResolutionScopedToOwnClosure: a shared batch analyzer holds
// interfaces from many programs; a symbol with no provider in a
// binary's own dependency closure must fail open even when some other
// program's library happens to export it. Anything else would make
// results — and cache entries — depend on analysis order.
func TestResolutionScopedToOwnClosure(t *testing.T) {
	libX, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0700000000, func(b *asm.Builder) {
		b.Func("foo")
		b.MovRegImm32(x86.RAX, 40) // sendfile
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "foo", Addr: syms["foo"]}}
	})
	libY, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0800000000, func(b *asm.Builder) {
		b.Func("bar")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "bar", Addr: syms["bar"]}}
	})
	load := func(name string) (*elff.Binary, error) {
		switch name {
		case "libx.so":
			return libX, nil
		case "liby.so":
			return libY, nil
		}
		return nil, &elffNotFound{name}
	}
	mkMain := func(needed string) *elff.Binary {
		main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
			b.Func("_start")
			b.CallLabel("stub_foo")
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
			b.Ret()
			b.Func("stub_foo")
			b.JmpMemRIP("got_foo")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_foo")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Imports = []elff.Import{{Name: "foo", SlotAddr: syms["got_foo"]}}
			spec.Needed = []string{needed}
		})
		return main
	}

	a := NewAnalyzer(load, ident.Config{})
	// First program links libx.so: foo resolves, bounded result.
	rep1, err := a.Program(mkMain("libx.so"))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FailOpen || !reflect.DeepEqual(rep1.Syscalls, []uint64{40, 60}) {
		t.Fatalf("first program: %v failopen=%v", rep1.Syscalls, rep1.FailOpen)
	}
	// Second program links only liby.so, which does not provide foo.
	// libx.so's interface is sitting in the analyzer, but it is outside
	// this program's closure: the call must stay unresolvable.
	rep2, err := a.Program(mkMain("liby.so"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.FailOpen {
		t.Fatalf("foo resolved outside the program's closure: %v", rep2.Syscalls)
	}
}

// TestMaxCFGInsnsDoesNotBustInterfaceEntries: MaxCFGInsns bounds only
// the main executable's CFG recovery, so retuning it must re-key
// program entries but keep serving the fleet's library interfaces.
func TestMaxCFGInsnsDoesNotBustInterfaceEntries(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	main := writeImporter(t, 31)

	a1 := NewAnalyzer(loader(t), ident.Config{})
	a1.Cache = store
	if _, _, err := a1.ProgramSummary(main); err != nil {
		t.Fatal(err)
	}

	a2 := NewAnalyzer(loader(t), ident.Config{})
	a2.Cache = store
	a2.MaxCFGInsns = 40_000
	sum, _, err := a2.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached {
		t.Fatal("program entry must re-key under a different MaxCFGInsns")
	}
	if !reflect.DeepEqual(sum.Syscalls, []uint64{1, 60}) {
		t.Fatalf("syscalls: %v", sum.Syscalls)
	}
	// The miss re-ran the main binary only: both library interfaces
	// were served from the store (interfaces map filled via cache, and
	// the only new store is the re-keyed program entry).
	st := store.Stats()
	if st.Hits < 2 {
		t.Fatalf("interfaces not served from store: %+v", st)
	}
}

// TestModuleResolvesThroughHostScope: a dlopen plugin importing a
// symbol with no DT_NEEDED of its own (the common plugin shape —
// runtime resolution leans on the host's loaded libraries) is bounded
// when the host is given, and fails open when it is not.
func TestModuleResolvesThroughHostScope(t *testing.T) {
	module, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0900000000, func(b *asm.Builder) {
		b.Func("plugin_entry")
		b.CallLabel("stub_write")
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "plugin_entry", Addr: syms["plugin_entry"]}}
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		// Deliberately no Needed: the plugin relies on host-loaded libc.
	})
	host := writeImporter(t, 77) // Needed: libmid.so -> libc.so

	a := NewAnalyzer(loader(t), ident.Config{})
	set, failOpen, err := a.Module(module, "plugin.so", host)
	if err != nil {
		t.Fatal(err)
	}
	if failOpen || !reflect.DeepEqual(set, []uint64{1}) {
		t.Fatalf("host-scoped module: %v failopen=%v", set, failOpen)
	}

	// Without a host there is nothing to resolve against: fail open.
	b := NewAnalyzer(loader(t), ident.Config{})
	_, failOpen, err = b.Module(module, "plugin.so", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !failOpen {
		t.Fatal("hostless unresolvable import must fail open")
	}
}

// TestSameNamedModulesDoNotShareMemo: two distinct module images that
// share a base filename (plugins/a/hook.so vs plugins/b/hook.so) must
// not reuse each other's memoized export sets.
func TestSameNamedModulesDoNotShareMemo(t *testing.T) {
	mkModule := func(base uint64, nr uint32) *elff.Binary {
		mod, _ := testbin.BuildAt(t, elff.KindShared, base, func(b *asm.Builder) {
			b.Func("init")
			b.MovRegImm32(x86.RAX, nr)
			b.Syscall()
			b.Ret()
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Exports = []elff.Export{{Name: "init", Addr: syms["init"]}}
		})
		return mod
	}
	a := NewAnalyzer(loader(t), ident.Config{})
	setA, _, err := a.Module(mkModule(0x7F0A00000000, 41), "hook.so", nil)
	if err != nil {
		t.Fatal(err)
	}
	setB, _, err := a.Module(mkModule(0x7F0B00000000, 42), "hook.so", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(setA, []uint64{41}) || !reflect.DeepEqual(setB, []uint64{42}) {
		t.Fatalf("same-named modules cross-contaminated: %v / %v", setA, setB)
	}
}

// TestUnderlinkedLibraryResolvesViaProgramScope: a library calling a
// symbol it never declares a DT_NEEDED provider for (underlinking —
// the dynamic linker resolves it from the process's global scope) is
// bounded when the program's closure provides it, and the result does
// not leak into a program whose closure does not.
func TestUnderlinkedLibraryResolvesViaProgramScope(t *testing.T) {
	// liba imports write but has NO DT_NEEDED at all.
	liba, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0C00000000, func(b *asm.Builder) {
		b.Func("logu")
		b.CallLabel("stub_write")
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "logu", Addr: syms["logu"]}}
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
	})
	libc := miniLibc(t)
	load := func(name string) (*elff.Binary, error) {
		switch name {
		case "liba.so":
			return liba, nil
		case "libc.so":
			return libc, nil
		}
		return nil, &elffNotFound{name}
	}
	mkMain := func(salt uint32, needed ...string) *elff.Binary {
		main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
			b.Func("_start")
			b.MovRegImm32(x86.R10, salt)
			b.CallLabel("stub_logu")
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
			b.Ret()
			b.Func("stub_logu")
			b.JmpMemRIP("got_logu")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_logu")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Imports = []elff.Import{{Name: "logu", SlotAddr: syms["got_logu"]}}
			spec.Needed = needed
		})
		return main
	}

	a := NewAnalyzer(load, ident.Config{})
	// Program linking liba + libc: write resolves via the program's
	// global scope even though liba never declares libc.
	rep1, err := a.Program(mkMain(1, "liba.so", "libc.so"))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FailOpen || !reflect.DeepEqual(rep1.Syscalls, []uint64{1, 60}) {
		t.Fatalf("underlinked resolution: %v failopen=%v", rep1.Syscalls, rep1.FailOpen)
	}
	// Program linking only liba: no provider in ITS scope — fail open,
	// and the previous program's memoized resolution must not leak in.
	rep2, err := a.Program(mkMain(2, "liba.so"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.FailOpen {
		t.Fatalf("scope leaked across programs: %v", rep2.Syscalls)
	}
}

// TestMutuallyImportingLibrariesMemoizeCompletely: libp.pfun and
// libq.qfun import each other (resolved through the program's global
// scope). Querying pfun first must not leave an under-approximated
// memo entry for qfun that a later program — or the persistent cache —
// would be served.
func TestMutuallyImportingLibrariesMemoizeCompletely(t *testing.T) {
	mkLib := func(base uint64, exported string, nr uint32, imported string) *elff.Binary {
		lib, _ := testbin.BuildAt(t, elff.KindShared, base, func(b *asm.Builder) {
			b.Func(exported)
			b.MovRegImm32(x86.RAX, nr)
			b.Syscall()
			b.CallLabel("stub_peer")
			b.Ret()
			b.Func("stub_peer")
			b.JmpMemRIP("got_peer")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_peer")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Exports = []elff.Export{{Name: exported, Addr: syms[exported]}}
			spec.Imports = []elff.Import{{Name: imported, SlotAddr: syms["got_peer"]}}
			// No DT_NEEDED: the peer resolves via the program scope.
		})
		return lib
	}
	libp := mkLib(0x7F0D00000000, "pfun", 100, "qfun")
	libq := mkLib(0x7F0E00000000, "qfun", 101, "pfun")
	load := func(name string) (*elff.Binary, error) {
		switch name {
		case "libp.so":
			return libp, nil
		case "libq.so":
			return libq, nil
		}
		return nil, &elffNotFound{name}
	}
	mkMain := func(salt uint32, imported string) *elff.Binary {
		main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
			b.Func("_start")
			b.MovRegImm32(x86.R10, salt)
			b.CallLabel("stub_f")
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
			b.Ret()
			b.Func("stub_f")
			b.JmpMemRIP("got_f")
			b.Label("__code_end")
			b.Align(8)
			b.Label("got_f")
			b.Quad(0)
		}, func(spec *elff.Spec, syms map[string]uint64) {
			spec.Imports = []elff.Import{{Name: imported, SlotAddr: syms["got_f"]}}
			spec.Needed = []string{"libp.so", "libq.so"}
		})
		return main
	}

	a := NewAnalyzer(load, ident.Config{})
	rep1, err := a.Program(mkMain(1, "pfun"))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FailOpen || !reflect.DeepEqual(rep1.Syscalls, []uint64{60, 100, 101}) {
		t.Fatalf("pfun-first: %v failopen=%v", rep1.Syscalls, rep1.FailOpen)
	}
	// Same analyzer, same closure: qfun's closed set must be complete.
	rep2, err := a.Program(mkMain(2, "qfun"))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FailOpen || !reflect.DeepEqual(rep2.Syscalls, []uint64{60, 100, 101}) {
		t.Fatalf("qfun-second under-approximated by cycle memo: %v", rep2.Syscalls)
	}
}
