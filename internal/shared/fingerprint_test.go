package shared

import (
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/cache"
	"bside/internal/ident"
)

// TestConfFingerprintResolverNamespace: the resolver knob is part of
// the cache fingerprint, with the zero value normalized to the default
// layer exactly as ident.Config.withDefaults does. Explicit-default and
// zero share a namespace (identical results); every other layer
// setting gets its own.
func TestConfFingerprintResolverNamespace(t *testing.T) {
	fp := func(rl int) string {
		a := NewAnalyzer(loader(t), ident.Config{ResolverLayers: rl})
		return a.confFingerprint(kindProgram)
	}
	if fp(0) != fp(2) {
		t.Fatalf("zero and explicit default must share a namespace:\n%q\nvs\n%q", fp(0), fp(2))
	}
	seen := map[string]int{}
	for _, rl := range []int{-1, 1, 2} {
		key := fp(rl)
		if prev, dup := seen[key]; dup {
			t.Fatalf("resolver settings %d and %d share fingerprint %q", prev, rl, key)
		}
		seen[key] = rl
	}
}

// TestResolverConfigBustsProgramCache: a program summary stored under
// one resolver configuration must never be served to an analyzer
// running another — a resolver-off over-approximation served to a
// resolver-on analyzer would silently undo the refinement, and the
// reverse would poison the sound fallback set.
func TestResolverConfigBustsProgramCache(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	main := writeImporter(t, 11)

	a1 := NewAnalyzer(loader(t), ident.Config{})
	a1.Cache = store
	sum1, _, err := a1.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Cached {
		t.Fatal("first run must compute")
	}

	// Explicit default layer: same namespace as the zero value, full hit.
	aDef := NewAnalyzer(loader(t), ident.Config{ResolverLayers: 2})
	aDef.Cache = store
	sumDef, repDef, err := aDef.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if !sumDef.Cached || repDef != nil {
		t.Fatal("explicit-default analyzer must hit the zero-config entry")
	}
	if !reflect.DeepEqual(sumDef.Syscalls, sum1.Syscalls) {
		t.Fatalf("cached summary drifted: %v vs %v", sumDef.Syscalls, sum1.Syscalls)
	}

	// Resolver off: different fingerprint, so the stored entry is a
	// miss and the summary is recomputed from scratch (the store keeps
	// one entry per image, now re-fingerprinted under resolver-off).
	aOff := NewAnalyzer(loader(t), ident.Config{ResolverLayers: -1})
	aOff.Cache = store
	sumOff, repOff, err := aOff.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sumOff.Cached || repOff == nil {
		t.Fatal("resolver-off analyzer must not be served the resolver-on entry")
	}

	// The entry is now resolver-off: the resolver-on analyzer must miss
	// it in turn, on both the identity-parse and hash-only lookup paths.
	if _, ok := aDef.CachedSummary(main.Hash, []string{"libmid.so"}); ok {
		t.Fatal("resolver-on analyzer was served the resolver-off entry")
	}
	if _, ok := aDef.CachedSummaryByHash(main.Hash); ok {
		t.Fatal("CachedSummaryByHash served an entry across resolver configs")
	}
	if _, ok := aOff.CachedSummaryByHash(main.Hash); !ok {
		t.Fatal("CachedSummaryByHash must hit within the same resolver config")
	}
}
