package shared

import (
	"context"
	"sync"
)

// Group deduplicates concurrent computations by key, context-aware on
// both sides. It is the whole-program counterpart of the resolver's
// library singleflight: a resident service fields N concurrent requests
// for the same image hash, and exactly one analysis runs while the rest
// wait and share the outcome.
//
// Cancellation semantics are the part a plain singleflight gets wrong:
//
//   - The computation runs on a context DETACHED from the leader's
//     (context.WithoutCancel), so the caller that happened to arrive
//     first abandoning its request does not poison every waiter with its
//     cancellation error.
//   - Each waiter abandons individually: a canceled waiter gets its own
//     ctx.Err() immediately while the computation keeps running for the
//     others.
//   - When the LAST interested caller abandons, the detached context is
//     canceled — work nobody is waiting for stops instead of burning the
//     budget to completion.
//
// Unlike the resolver's helper, Group does not memoize: whole-program
// results already persist in the content-addressed cache, and that store
// — not an unbounded in-process map — is the memo. Group only collapses
// the concurrent window.
type Group[T any] struct {
	mu      sync.Mutex
	flights map[string]*groupFlight[T]
}

type groupFlight[T any] struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	val     T
	err     error
}

// Do runs compute for key exactly once among concurrent callers and
// returns its outcome. shared reports whether this caller joined a
// flight another caller started (the service's dedup counter). compute
// receives the detached context described on Group; it must honor that
// context for last-waiter-abandons cancellation to mean anything.
func (g *Group[T]) Do(ctx context.Context, key string, compute func(ctx context.Context) (T, error)) (val T, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*groupFlight[T])
	}
	if fl, ok := g.flights[key]; ok {
		fl.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, fl, true)
	}
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	fl := &groupFlight[T]{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.flights[key] = fl
	g.mu.Unlock()

	go func() {
		fl.val, fl.err = compute(cctx)
		g.mu.Lock()
		if g.flights[key] == fl {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(fl.done)
		cancel()
	}()
	return g.wait(ctx, key, fl, false)
}

// wait blocks until the flight completes or ctx is canceled, whichever
// comes first. An abandoning waiter decrements the flight's refcount;
// the last one out cancels the computation and unlinks the flight so a
// later caller starts fresh instead of joining doomed work.
func (g *Group[T]) wait(ctx context.Context, key string, fl *groupFlight[T], shared bool) (T, bool, error) {
	select {
	case <-fl.done:
		return fl.val, shared, fl.err
	case <-ctx.Done():
		g.mu.Lock()
		fl.waiters--
		if fl.waiters == 0 {
			fl.cancel()
			if g.flights[key] == fl {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		var zero T
		return zero, shared, ctx.Err()
	}
}
