package shared

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCollapsesConcurrentCallers(t *testing.T) {
	var g Group[int]
	var computes atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	vals := make([]int, callers)
	shareds := make([]bool, callers)
	errs := make([]error, callers)

	// One leader enters first and blocks inside compute, so the other
	// callers demonstrably join its flight rather than racing their own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], shareds[0], errs[0] = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			computes.Add(1)
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shareds[i], errs[i] = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				computes.Add(1)
				return -1, nil
			})
		}(i)
	}
	// Give the joiners a moment to park on the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times", n)
	}
	sharedCount := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d: val=%d err=%v", i, vals[i], errs[i])
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != callers-1 {
		t.Fatalf("shared reported by %d callers, want %d", sharedCount, callers-1)
	}
}

func TestGroupNoMemoization(t *testing.T) {
	var g Group[int]
	var computes atomic.Int32
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return int(computes.Add(1)), nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
}

func TestGroupLeaderCancelDoesNotPoisonWaiters(t *testing.T) {
	var g Group[int]
	release := make(chan struct{})
	started := make(chan struct{})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", func(cctx context.Context) (int, error) {
			close(started)
			select {
			case <-release:
				return 7, nil
			case <-cctx.Done():
				return 0, cctx.Err()
			}
		})
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	var wv int
	var werr error
	go func() {
		defer close(waiterDone)
		wv, _, werr = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("waiter must join the leader's flight, not compute")
			return -1, nil
		})
	}()
	// Let the waiter park, then abandon the leader: the computation must
	// survive (the waiter still wants it) and the leader must get its own
	// cancellation error immediately.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error: %v", err)
	}
	select {
	case <-waiterDone:
		t.Fatal("waiter finished before the computation was released")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-waiterDone
	if werr != nil || wv != 7 {
		t.Fatalf("waiter: v=%d err=%v", wv, werr)
	}
}

func TestGroupLastWaiterAbandonCancelsCompute(t *testing.T) {
	var g Group[int]
	started := make(chan struct{})
	computeStopped := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(cctx context.Context) (int, error) {
			close(started)
			<-cctx.Done()
			computeStopped <- cctx.Err()
			return 0, cctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error: %v", err)
	}
	select {
	case err := <-computeStopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("compute context: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned computation was never canceled")
	}

	// The flight is unlinked on abandonment: a fresh caller starts a new
	// computation instead of inheriting the doomed one.
	v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 9, nil
	})
	if err != nil || shared || v != 9 {
		t.Fatalf("fresh call after abandonment: v=%d shared=%v err=%v", v, shared, err)
	}
}
