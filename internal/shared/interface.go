// Package shared implements step 3 of B-Side's pipeline (§4.5):
// decoupled analysis of shared libraries into reusable *shared
// interface* files, dependency ordering through a priority queue, and
// resolution of a dynamically compiled executable's foreign calls
// against the interfaces of its (transitive) library dependencies.
package shared

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/pipeline"
	"bside/internal/symex"
	"bside/internal/x86"
)

// Param is the JSON form of a wrapper's number-carrying parameter.
type Param struct {
	Stack bool   `json:"stack,omitempty"`
	Reg   string `json:"reg,omitempty"`
	Off   int64  `json:"off,omitempty"`
}

func paramFromRef(p symex.ParamRef) Param {
	if p.Stack {
		return Param{Stack: true, Off: p.Off}
	}
	return Param{Reg: p.Reg.String()}
}

// Ref converts back to the analyzer's representation.
func (p Param) Ref() (symex.ParamRef, error) {
	if p.Stack {
		return symex.ParamRef{Stack: true, Off: p.Off}, nil
	}
	for r := x86.Reg(0); r < x86.NumGPR; r++ {
		if r.String() == p.Reg {
			return symex.ParamRef{Reg: r}, nil
		}
	}
	return symex.ParamRef{}, fmt.Errorf("shared: unknown register %q", p.Reg)
}

// Export is one entry of a library's shared interface.
type Export struct {
	Name     string   `json:"name"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
	// Wrapper is set when the export is a syscall wrapper whose number
	// comes from the caller; clients must resolve their call sites.
	Wrapper *Param `json:"wrapper,omitempty"`
	// Imports are foreign symbols this export may call.
	Imports  []string `json:"imports,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
}

// Interface is the per-library metadata file (K/L in Figure 3).
type Interface struct {
	Library string `json:"library"`
	// Needed lists the library's own DT_NEEDED dependencies.
	Needed []string `json:"needed,omitempty"`
	// Exports describes each exposed function.
	Exports []Export `json:"exports"`
	// AddrTaken records the library's active addresses taken.
	AddrTaken []uint64 `json:"addr_taken,omitempty"`
	// Wrappers lists wrapper function entry points (informational).
	Wrappers []uint64 `json:"wrappers,omitempty"`
}

// ExportNamed returns the interface entry for name.
func (ifc *Interface) ExportNamed(name string) (*Export, bool) {
	for i := range ifc.Exports {
		if ifc.Exports[i].Name == name {
			return &ifc.Exports[i], true
		}
	}
	return nil, false
}

// Save writes the interface as JSON.
func (ifc *Interface) Save(path string) error {
	data, err := json.MarshalIndent(ifc, "", "  ")
	if err != nil {
		return fmt.Errorf("shared: marshal %s: %w", ifc.Library, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadInterface reads a JSON interface file.
func LoadInterface(path string) (*Interface, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shared: %w", err)
	}
	var ifc Interface
	if err := json.Unmarshal(data, &ifc); err != nil {
		return nil, fmt.Errorf("shared: parse %s: %w", path, err)
	}
	return &ifc, nil
}

// AnalyzeLibrary performs the expensive once-per-library phase — the
// decode, wrapper-detection and identification stages of the pipeline,
// folded into the library's shared interface. importWrappers carries
// wrapper information for the library's own dependencies (resolved
// first by the dependency ordering in Analyzer). conf.Workers spreads
// the library's own identification units across the intra-binary pool.
func AnalyzeLibrary(bin *elff.Binary, name string, conf ident.Config, importWrappers map[string]symex.ParamRef) (*Interface, error) {
	conf.ImportWrappers = importWrappers
	res, err := pipeline.Run(bin, pipeline.Config{Ident: conf, Workers: conf.Workers})
	if err != nil {
		return nil, fmt.Errorf("shared: %s: %w", name, err)
	}
	g, rep := res.Graph, res.Report
	profiles := ident.ExportProfiles(g, rep)

	ifc := &Interface{
		Library:   name,
		Needed:    append([]string(nil), bin.Needed...),
		AddrTaken: append([]uint64(nil), g.ActiveAddrTaken...),
	}
	for _, w := range rep.Wrappers {
		ifc.Wrappers = append(ifc.Wrappers, w.FnEntry)
	}
	for _, p := range profiles {
		e := Export{
			Name:     p.Name,
			Syscalls: p.Syscalls,
			Imports:  p.Imports,
			FailOpen: p.FailOpen,
		}
		// Keep empties nil so the JSON round trip is lossless.
		if len(e.Syscalls) == 0 {
			e.Syscalls = nil
		}
		if len(e.Imports) == 0 {
			e.Imports = nil
		}
		if p.Wrapper != nil {
			prm := paramFromRef(*p.Wrapper)
			e.Wrapper = &prm
		}
		ifc.Exports = append(ifc.Exports, e)
	}
	sort.Slice(ifc.Exports, func(i, j int) bool { return ifc.Exports[i].Name < ifc.Exports[j].Name })
	return ifc, nil
}
