package shared

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"sort"

	"bside/internal/cache"
)

// The pack-tier binary codec for "program" entries: a warm hash
// lookup out of a memory-mapped pack decodes a Summary with a handful
// of varint reads instead of a JSON Unmarshal. The format is versioned
// (byte 0) and conservative by construction — EncodeJSON re-decodes
// its own output and bails to raw JSON on any divergence from what
// encoding/json would have produced, so a pack entry can never answer
// differently than the loose envelope it replaced.
//
//	[0]  codec version (1)
//	[1]  flags: bit0 FailOpen
//	uvarint Wrappers
//	uvarint len(Syscalls), then ascending deltas (first value absolute)
//	uvarint len(Imports), then per import uvarint len + bytes
//	uvarint len(PerImport), then per entry (sorted by name):
//	  uvarint len + name, uvarint len(values)+1 (0 encodes a nil
//	  slice), then ascending deltas
const summaryCodecVersion = 1

type summaryCodec struct{}

func init() {
	cache.RegisterPackCodec(kindProgram, summaryCodec{})
}

func (summaryCodec) EncodeJSON(payload []byte) ([]byte, bool) {
	// DisallowUnknownFields: a payload written by a newer Summary shape
	// must stay JSON rather than silently lose fields in the pack.
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var sum Summary
	if err := dec.Decode(&sum); err != nil {
		return nil, false
	}
	buf, ok := appendSummary(make([]byte, 0, 64), &sum)
	if !ok {
		return nil, false
	}
	// Round-trip guard: decoding our own bytes must reproduce exactly
	// what a JSON load of the original payload produces.
	var back Summary
	if !decodeSummary(buf, &back) {
		return nil, false
	}
	var viaJSON Summary
	if json.Unmarshal(payload, &viaJSON) != nil || !reflect.DeepEqual(back, viaJSON) {
		return nil, false
	}
	return buf, true
}

func (summaryCodec) Decode(data []byte, out any) bool {
	sum, ok := out.(*Summary)
	if !ok {
		return false
	}
	return decodeSummary(data, sum)
}

// appendSummary serializes sum, refusing shapes the decoder cannot
// reproduce exactly (unsorted syscall sets — Load-visible summaries are
// sorted ascending; anything else keeps the JSON payload).
func appendSummary(buf []byte, sum *Summary) ([]byte, bool) {
	buf = append(buf, summaryCodecVersion)
	var flags byte
	if sum.FailOpen {
		flags |= 1
	}
	buf = append(buf, flags)
	if sum.Wrappers < 0 {
		return nil, false
	}
	buf = binary.AppendUvarint(buf, uint64(sum.Wrappers))
	var ok bool
	if buf, ok = cache.AppendDeltas(buf, sum.Syscalls); !ok {
		return nil, false
	}
	buf = binary.AppendUvarint(buf, uint64(len(sum.Imports)))
	for _, im := range sum.Imports {
		buf = binary.AppendUvarint(buf, uint64(len(im)))
		buf = append(buf, im...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(sum.PerImport)))
	names := make([]string, 0, len(sum.PerImport))
	for name := range sum.PerImport {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		vals := sum.PerImport[name]
		if vals == nil {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(len(vals))+1)
		if buf, ok = cache.AppendDeltaValues(buf, vals); !ok {
			return nil, false
		}
	}
	return buf, true
}

func decodeSummary(data []byte, sum *Summary) bool {
	r := cache.NewPayloadReader(data)
	if r.Byte() != summaryCodecVersion {
		return false
	}
	flags := r.Byte()
	if flags&^byte(1) != 0 {
		return false
	}
	*sum = Summary{FailOpen: flags&1 != 0}
	sum.Wrappers = int(r.Uvarint())
	sum.Syscalls = r.Deltas()
	if n := r.Uvarint(); n > 0 && !r.Bad() {
		if n > uint64(len(data)) {
			return false
		}
		sum.Imports = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			sum.Imports = append(sum.Imports, r.Str())
		}
	}
	if n := r.Uvarint(); n > 0 && !r.Bad() {
		if n > uint64(len(data)) {
			return false
		}
		sum.PerImport = make(map[string][]uint64, n)
		for i := uint64(0); i < n; i++ {
			name := r.Str()
			h := r.Uvarint()
			if h == 0 {
				sum.PerImport[name] = nil
				continue
			}
			sum.PerImport[name] = r.DeltaValues(h - 1)
		}
	}
	return r.Done()
}
