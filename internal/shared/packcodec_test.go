package shared

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/cache"
	"bside/internal/ident"
)

// TestSummaryCodecRoundTrip: every Summary shape the analyzer can
// store must either round-trip bit-exactly through the binary codec or
// be refused (stay JSON). Refusal is always sound; a lossy round trip
// never is.
func TestSummaryCodecRoundTrip(t *testing.T) {
	cases := []Summary{
		{},
		{Syscalls: []uint64{0}},
		{Syscalls: []uint64{1, 3, 60, 231}, Wrappers: 4},
		{FailOpen: true},
		{Syscalls: []uint64{2, 2, 9}}, // duplicates are still ascending
		{Imports: []string{"libc.so.6", "libpthread.so.0"}},
		{
			Syscalls: []uint64{0, 1, 60},
			Imports:  []string{"libc.so.6"},
			PerImport: map[string][]uint64{
				"libc.so.6":  {1, 60},
				"libnil.so":  nil,
				"libdl.so.2": {0},
			},
			Wrappers: 2,
			FailOpen: true,
		},
	}
	for i, in := range cases {
		payload, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		enc, ok := summaryCodec{}.EncodeJSON(payload)
		if !ok {
			t.Fatalf("case %d: codec refused %s", i, payload)
		}
		if len(enc) >= len(payload) && len(payload) > 8 {
			t.Logf("case %d: binary (%d bytes) not smaller than JSON (%d bytes)", i, len(enc), len(payload))
		}
		var got Summary
		if !(summaryCodec{}.Decode(enc, &got)) {
			t.Fatalf("case %d: decode failed", i)
		}
		// The oracle is what a loose-tier load would have produced.
		var want Summary
		if err := json.Unmarshal(payload, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip drifted:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestSummaryCodecRefusals: payloads the codec must leave as JSON —
// unknown fields (newer writer), unsorted syscalls (not a shape Load
// ever produces, but refusal beats corruption), malformed JSON.
func TestSummaryCodecRefusals(t *testing.T) {
	for _, tc := range []struct{ name, payload string }{
		{"unknown-field", `{"syscalls":[1],"future_field":true}`},
		{"unsorted", `{"syscalls":[60,1]}`},
		{"wrong-type", `{"syscalls":"nope"}`},
		{"not-json", `{"syscalls":[1]`},
	} {
		if _, ok := (summaryCodec{}).EncodeJSON([]byte(tc.payload)); ok {
			t.Errorf("%s: codec accepted %s", tc.name, tc.payload)
		}
	}
}

// TestSummaryCodecDecodeRejectsDamage: decode of truncated or
// version-skewed bytes fails cleanly (the probe falls through to the
// loose tier) instead of producing a partial Summary.
func TestSummaryCodecDecodeRejectsDamage(t *testing.T) {
	payload, _ := json.Marshal(Summary{Syscalls: []uint64{1, 60}, Imports: []string{"libc.so.6"}})
	enc, ok := summaryCodec{}.EncodeJSON(payload)
	if !ok {
		t.Fatal("codec refused a clean summary")
	}
	var out Summary
	if (summaryCodec{}).Decode(nil, &out) {
		t.Error("decoded empty data")
	}
	for cut := 1; cut < len(enc); cut++ {
		if (summaryCodec{}).Decode(enc[:cut], &out) {
			t.Errorf("decoded a %d/%d-byte truncation", cut, len(enc))
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = summaryCodecVersion + 1
	if (summaryCodec{}).Decode(bad, &out) {
		t.Error("decoded a future codec version")
	}
	if (summaryCodec{}).Decode(enc, &struct{}{}) {
		t.Error("decoded into a non-Summary target")
	}
	// Trailing garbage must also be refused: Done() demands full
	// consumption.
	if (summaryCodec{}).Decode(append(append([]byte(nil), enc...), 0xff), &out) {
		t.Error("decoded despite trailing bytes")
	}
}

// TestResolverConfigBustsPackTier extends the cross-config poisoning
// guarantee to the pack tier: a program summary compacted into a pack
// under one resolver configuration must never be served to an analyzer
// running another, while the same configuration keeps hitting the pack.
func TestResolverConfigBustsPackTier(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	main := writeImporter(t, 23)

	a1 := NewAnalyzer(loader(t), ident.Config{})
	a1.Cache = store
	sum1, _, err := a1.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Cached {
		t.Fatal("first run must compute")
	}
	cs, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Packed == 0 {
		t.Fatalf("nothing packed: %+v", cs)
	}
	if cs.BinaryEncoded == 0 {
		t.Fatalf("program summary not binary-encoded by the registered codec: %+v", cs)
	}

	// Fresh handle with the memory tier off: the pack is the only tier
	// that can answer (the loose entry was pruned by compaction).
	packed, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	packed.DisableMemoryTier()

	aSame := NewAnalyzer(loader(t), ident.Config{ResolverLayers: 2})
	aSame.Cache = packed
	sumSame, rep, err := aSame.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if !sumSame.Cached || rep != nil {
		t.Fatal("same-config analyzer must be served from the pack")
	}
	if !reflect.DeepEqual(sumSame.Syscalls, sum1.Syscalls) {
		t.Fatalf("pack-served summary drifted: %v vs %v", sumSame.Syscalls, sum1.Syscalls)
	}
	if st := packed.Stats(); st.PackHits == 0 {
		t.Fatalf("hit did not come from the pack: %+v", st)
	}

	aOff := NewAnalyzer(loader(t), ident.Config{ResolverLayers: -1})
	aOff.Cache = packed
	sumOff, repOff, err := aOff.ProgramSummary(main)
	if err != nil {
		t.Fatal(err)
	}
	if sumOff.Cached || repOff == nil {
		t.Fatal("resolver-off analyzer was served a packed resolver-on entry")
	}
}
