package shared

import (
	"container/heap"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/phases"
	"bside/internal/symex"
)

// Analyzer orchestrates the decoupled two-phase analysis: the expensive
// per-library phase runs once per library (cached as a shared
// interface), and per-executable analysis resolves foreign symbols
// against those interfaces.
type Analyzer struct {
	// LoadLib maps a DT_NEEDED name to its parsed image.
	LoadLib func(name string) (*elff.Binary, error)
	// Config is the identification configuration template. Its Budget,
	// if set, is shared across everything this Analyzer does; leave nil
	// to give every module a fresh default budget.
	Config ident.Config
	// MaxCFGInsns bounds CFG recovery of the main executable (0 =
	// cfg.Recover's default); the Table 2 harness uses it to bound
	// per-binary analysis like the paper's wall-clock timeout.
	MaxCFGInsns int
	// InterfaceDir, when set, persists each library's shared interface
	// as a JSON file (<name>.interface.json) and reuses it on later
	// runs — the once-per-library artifact of the paper's Figure 3 (L).
	InterfaceDir string

	interfaces map[string]*Interface
	exportMemo map[string]exportSet
}

type exportSet struct {
	syscalls []uint64
	failOpen bool
}

// NewAnalyzer builds an Analyzer around a library loader.
func NewAnalyzer(load func(name string) (*elff.Binary, error), conf ident.Config) *Analyzer {
	return &Analyzer{
		LoadLib:    load,
		Config:     conf,
		interfaces: make(map[string]*Interface),
		exportMemo: make(map[string]exportSet),
	}
}

// Interfaces exposes the cached interfaces (after analysis runs).
func (a *Analyzer) Interfaces() map[string]*Interface { return a.interfaces }

// depItem is a priority-queue element ordered by dependency depth:
// deepest libraries are analyzed first so that every library sees its
// dependencies' interfaces (§4.5's DAG-compatible ordering).
type depItem struct {
	name  string
	depth int
}

type depQueue []depItem

func (q depQueue) Len() int           { return len(q) }
func (q depQueue) Less(i, j int) bool { return q[i].depth > q[j].depth }
func (q depQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *depQueue) Push(x any)        { *q = append(*q, x.(depItem)) }
func (q *depQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ensureInterfaces analyzes every library in the dependency closure of
// needed, deepest-first.
func (a *Analyzer) ensureInterfaces(needed []string) error {
	depth := make(map[string]int)
	bins := make(map[string]*elff.Binary)
	var visit func(name string, d int) error
	visit = func(name string, d int) error {
		if prev, ok := depth[name]; ok && prev >= d {
			return nil
		}
		if d > 64 {
			return fmt.Errorf("shared: dependency cycle or chain too deep at %q", name)
		}
		depth[name] = d
		if _, ok := bins[name]; !ok {
			bin, err := a.LoadLib(name)
			if err != nil {
				return err
			}
			bins[name] = bin
		}
		for _, sub := range bins[name].Needed {
			if err := visit(sub, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range needed {
		if err := visit(name, 1); err != nil {
			return err
		}
	}

	q := make(depQueue, 0, len(depth))
	for name, d := range depth {
		q = append(q, depItem{name: name, depth: d})
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(depItem)
		if _, done := a.interfaces[it.name]; done {
			continue
		}
		if ifc, ok := a.loadCachedInterface(it.name); ok {
			a.interfaces[it.name] = ifc
			continue
		}
		bin := bins[it.name]
		wrappers, err := a.importWrappersFor(bin)
		if err != nil {
			return err
		}
		conf := a.Config
		ifc, err := AnalyzeLibrary(bin, it.name, conf, wrappers)
		if err != nil {
			return err
		}
		a.interfaces[it.name] = ifc
		a.storeCachedInterface(ifc)
	}
	return nil
}

func (a *Analyzer) interfacePath(name string) string {
	return filepath.Join(a.InterfaceDir, name+".interface.json")
}

func (a *Analyzer) loadCachedInterface(name string) (*Interface, bool) {
	if a.InterfaceDir == "" {
		return nil, false
	}
	ifc, err := LoadInterface(a.interfacePath(name))
	if err != nil {
		return nil, false
	}
	return ifc, true
}

func (a *Analyzer) storeCachedInterface(ifc *Interface) {
	if a.InterfaceDir == "" {
		return
	}
	// Caching is best-effort; analysis correctness never depends on it.
	_ = ifc.Save(a.interfacePath(ifc.Library))
}

// importWrappersFor inspects the interfaces of bin's dependencies and
// returns the imported symbols that are wrappers.
func (a *Analyzer) importWrappersFor(bin *elff.Binary) (map[string]symex.ParamRef, error) {
	out := make(map[string]symex.ParamRef)
	for _, im := range bin.Imports {
		ifc, exp := a.findProvider(bin.Needed, im.Name)
		if ifc == nil || exp.Wrapper == nil {
			continue
		}
		ref, err := exp.Wrapper.Ref()
		if err != nil {
			return nil, err
		}
		out[im.Name] = ref
	}
	return out, nil
}

// findProvider locates the export named sym: first in the given
// dependency list's interfaces, then anywhere (global symbol scope).
func (a *Analyzer) findProvider(needed []string, sym string) (*Interface, *Export) {
	for _, name := range needed {
		if ifc, ok := a.interfaces[name]; ok {
			if exp, ok := ifc.ExportNamed(sym); ok {
				return ifc, exp
			}
		}
	}
	names := make([]string, 0, len(a.interfaces))
	for name := range a.interfaces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if exp, ok := a.interfaces[name].ExportNamed(sym); ok {
			return a.interfaces[name], exp
		}
	}
	return nil, nil
}

// closedExportSet computes the transitive syscall set of one export,
// following its foreign calls through other interfaces.
func (a *Analyzer) closedExportSet(lib *Interface, exp *Export) exportSet {
	key := lib.Library + "\x00" + exp.Name
	if memo, ok := a.exportMemo[key]; ok {
		return memo
	}
	// Seed the memo to cut cycles (mutual recursion between libraries).
	a.exportMemo[key] = exportSet{}

	set := make(map[uint64]bool)
	for _, n := range exp.Syscalls {
		set[n] = true
	}
	failOpen := exp.FailOpen
	for _, sym := range exp.Imports {
		ifc, sub := a.findProvider(lib.Needed, sym)
		if ifc == nil {
			// Unresolvable foreign call: unknowable behaviour.
			failOpen = true
			continue
		}
		es := a.closedExportSet(ifc, sub)
		for _, n := range es.syscalls {
			set[n] = true
		}
		failOpen = failOpen || es.failOpen
	}
	out := exportSet{syscalls: sortedSet(set), failOpen: failOpen}
	a.exportMemo[key] = out
	return out
}

// ProgramReport is the whole-program identification result.
type ProgramReport struct {
	// Syscalls is the final identified set: the main binary's own sites
	// plus everything reachable through foreign calls.
	Syscalls []uint64
	// FailOpen marks an unbounded result; callers must treat the
	// effective set as the full table.
	FailOpen bool
	// Main is the executable's own identification report.
	Main *ident.Report
	// PerImport maps each reachable foreign symbol to the syscalls it
	// contributes.
	PerImport map[string][]uint64
	// Graph is the main executable's recovered CFG (phase detection and
	// diagnostics build on it).
	Graph *cfg.Graph
	// CFGTime is the wall-clock cost of the main binary's CFG recovery
	// (Table 3's dominant column).
	CFGTime time.Duration
}

// Emits derives the phase-detection emission map for the program: the
// main binary's own sites plus, for every block transferring to an
// imported function (inline GOT calls and calls into PLT-style stubs),
// that import's resolved syscall set.
func (r *ProgramReport) Emits() map[uint64][]uint64 {
	out := phases.EmitsFromReport(r.Main)
	decorate := func(blk *cfg.Block, sym string) {
		if set, ok := r.PerImport[sym]; ok && len(set) > 0 {
			out[blk.Addr] = mergeSets(out[blk.Addr], set)
		}
	}
	for _, blk := range r.Graph.SortedBlocks() {
		if blk.ImportCall != "" && len(blk.Succs) > 0 {
			// Inline call through the GOT: the block itself proceeds.
			decorate(blk, blk.ImportCall)
			continue
		}
		// Calls into an import stub: the transition belongs to the
		// calling block (the stub has no local successors).
		for _, e := range blk.Succs {
			if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
				continue
			}
			if sym := e.To.ImportCall; sym != "" {
				decorate(blk, sym)
			}
		}
	}
	return out
}

func mergeSets(a, b []uint64) []uint64 {
	set := make(map[uint64]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	return sortedSet(set)
}

// Program analyzes an executable: for static binaries this is plain
// identification; for dynamic ones, library interfaces are computed (or
// reused) and foreign calls are folded in.
func (a *Analyzer) Program(bin *elff.Binary) (*ProgramReport, error) {
	if err := a.ensureInterfaces(bin.Needed); err != nil {
		return nil, err
	}

	conf := a.Config
	wrappers, err := a.importWrappersFor(bin)
	if err != nil {
		return nil, err
	}
	conf.ImportWrappers = wrappers

	cfgStart := time.Now()
	g, err := cfg.Recover(bin, cfg.Options{MaxInsns: a.MaxCFGInsns})
	cfgTime := time.Since(cfgStart)
	if err != nil {
		return nil, err
	}
	rep, err := ident.Analyze(g, conf)
	if err != nil {
		return nil, err
	}

	set := make(map[uint64]bool)
	for _, n := range rep.Syscalls {
		set[n] = true
	}
	out := &ProgramReport{
		Main:      rep,
		FailOpen:  rep.FailOpen,
		PerImport: make(map[string][]uint64),
		Graph:     g,
		CFGTime:   cfgTime,
	}
	for _, sym := range rep.ReachableImports {
		ifc, exp := a.findProvider(bin.Needed, sym)
		if ifc == nil {
			out.FailOpen = true
			continue
		}
		es := a.closedExportSet(ifc, exp)
		out.PerImport[sym] = es.syscalls
		out.FailOpen = out.FailOpen || es.failOpen
		for _, n := range es.syscalls {
			set[n] = true
		}
	}
	out.Syscalls = sortedSet(set)
	return out, nil
}

// Module analyzes a dlopen-style module (paper §4.5: runtime-loaded
// shared objects are processed alongside the main binary, with module
// identification left to the user). Every exported function is assumed
// callable, so the result is the union of all exports' closed syscall
// sets. A module exporting a syscall wrapper cannot be bounded — its
// numbers come from callers resolved only at runtime — and makes the
// result fail-open.
func (a *Analyzer) Module(bin *elff.Binary, name string) (syscalls []uint64, failOpen bool, err error) {
	if err := a.ensureInterfaces(bin.Needed); err != nil {
		return nil, false, err
	}
	wrappers, err := a.importWrappersFor(bin)
	if err != nil {
		return nil, false, err
	}
	conf := a.Config
	ifc, err := AnalyzeLibrary(bin, "module:"+name, conf, wrappers)
	if err != nil {
		return nil, false, err
	}
	set := make(map[uint64]bool)
	for i := range ifc.Exports {
		exp := &ifc.Exports[i]
		if exp.Wrapper != nil {
			failOpen = true
		}
		es := a.closedExportSet(ifc, exp)
		failOpen = failOpen || es.failOpen
		for _, n := range es.syscalls {
			set[n] = true
		}
	}
	return sortedSet(set), failOpen, nil
}

func sortedSet(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
