package shared

import (
	"container/heap"
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bside/internal/cache"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/guard"
	"bside/internal/ident"
	"bside/internal/linux"
	"bside/internal/phases"
	"bside/internal/pipeline"
	"bside/internal/symex"
)

// Analyzer orchestrates the decoupled two-phase analysis: the expensive
// per-library phase runs once per library (cached as a shared
// interface), and per-executable analysis resolves foreign symbols
// against those interfaces.
//
// An Analyzer is safe for concurrent use. Library loads and interface
// computations are deduplicated: when two goroutines analyze
// executables sharing a dependency, the dependency's image is loaded
// and its interface computed exactly once, with the second goroutine
// waiting on the first's result.
type Analyzer struct {
	// LoadLib maps a DT_NEEDED name to its parsed image. Calls are
	// deduplicated per name, so the loader itself need not cache.
	LoadLib func(name string) (*elff.Binary, error)
	// Config is the identification configuration template. Its Budget,
	// if set, supplies the limits; every analysis unit (library,
	// executable, module) runs against its own counters so concurrent
	// analyses cannot exhaust each other's budget.
	Config ident.Config
	// MaxCFGInsns bounds CFG recovery of the main executable (0 =
	// cfg.Recover's default); the Table 2 harness uses it to bound
	// per-binary analysis like the paper's wall-clock timeout.
	MaxCFGInsns int
	// Workers is the intra-binary worker-pool size handed to the
	// analysis pipeline: wrapper-detection and site-identification
	// units of one binary run across this many goroutines. 0 or 1 is
	// serial. Results are identical at any worker count.
	Workers int
	// Timeout, when positive, stamps each analysis unit's budget with a
	// wall-clock deadline (the paper's per-binary timeout); an analysis
	// past it fails with ident.ErrTimeout.
	Timeout time.Duration
	// InterfaceDir, when set, persists each library's shared interface
	// as a JSON file (<name>.interface.json) and reuses it on later
	// runs — the once-per-library artifact of the paper's Figure 3 (L).
	// Entries are keyed by library name only; prefer Cache, which is
	// content-addressed and validates dependency hashes.
	InterfaceDir string
	// Cache, when set, is the content-addressed store consulted before
	// any expensive work: shared interfaces, whole-program summaries
	// and per-function summaries are keyed by the SHA-256 of the
	// content they were derived from (plus a configuration and
	// dependency-hash fingerprint where applicable), so results persist
	// across processes and survive library upgrades without going
	// stale.
	Cache *cache.Store
	// DisableFuncMemo turns off the process-wide per-function summary
	// memoization (ident.ProcessMemo). Results are byte-identical
	// either way — the fuzzer's memoization-invariance axis holds the
	// two modes to that — so the switch exists for benchmarking and for
	// the oracle itself, not for correctness.
	DisableFuncMemo bool

	mu          sync.Mutex
	interfaces  map[string]*Interface
	exportMemo  map[string]exportSet
	bins        map[string]*elff.Binary
	binFlight   map[string]*flight[*elff.Binary]
	ifcFlight   map[string]*flight[*Interface]
	depHashMemo map[string]string
	moduleSeq   atomic.Uint64
}

type exportSet struct {
	syscalls []uint64
	failOpen bool
}

// flight is a single-flight slot: the first goroutine to claim a key
// computes, the rest wait on done and share the outcome.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// singleflight runs compute for key exactly once among concurrent
// callers, memoizing successes in memo so later callers never wait.
// mu guards both maps. Failures are not memoized: a later caller
// retries.
//
// compute runs inside a fault boundary: a panic while analyzing a
// shared library becomes that flight's error instead of escaping —
// which matters doubly here, because an escaped panic would skip the
// cleanup below and leave every waiting peer blocked forever on a
// never-closed done channel. Panicked flights are not memoized, so one
// hostile library poisons neither the memo nor later retries.
func singleflight[T any](mu *sync.Mutex, memo map[string]T, flights map[string]*flight[T], key string, compute func() (T, error)) (T, error) {
	mu.Lock()
	if v, ok := memo[key]; ok {
		mu.Unlock()
		return v, nil
	}
	if fl, ok := flights[key]; ok {
		mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight[T]{done: make(chan struct{})}
	flights[key] = fl
	mu.Unlock()

	fl.val, fl.err = guard.Capture1("library", key, compute)
	mu.Lock()
	if fl.err == nil {
		memo[key] = fl.val
	}
	delete(flights, key)
	mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// NewAnalyzer builds an Analyzer around a library loader.
func NewAnalyzer(load func(name string) (*elff.Binary, error), conf ident.Config) *Analyzer {
	return &Analyzer{
		LoadLib:     load,
		Config:      conf,
		interfaces:  make(map[string]*Interface),
		exportMemo:  make(map[string]exportSet),
		bins:        make(map[string]*elff.Binary),
		binFlight:   make(map[string]*flight[*elff.Binary]),
		ifcFlight:   make(map[string]*flight[*Interface]),
		depHashMemo: make(map[string]string),
	}
}

// Interfaces returns a snapshot of the cached interfaces (after
// analysis runs).
func (a *Analyzer) Interfaces() map[string]*Interface {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]*Interface, len(a.interfaces))
	for name, ifc := range a.interfaces {
		out[name] = ifc
	}
	return out
}

// confFor derives the per-unit identification config: the template with
// a private budget, so concurrent units cannot race on the counters,
// and the process-wide function-summary memo (persisted through the
// cache store when one is configured).
//
// ctx, when non-nil, rides the unit's budget: its cancellation channel
// makes the budget exhausted mid-search, and its deadline tightens the
// wall-clock Deadline when it is earlier than the analyzer's own
// Timeout — the per-request deadline of a resident service mapped onto
// the paper's per-binary analysis timeout. Library-interface
// computation passes nil on purpose: that work is shared fleet-wide
// (singleflighted and cached), so one abandoned request must not poison
// the interface every waiting request needs.
func (a *Analyzer) confFor(ctx context.Context) ident.Config {
	conf := a.Config
	conf.Workers = a.Workers
	if conf.Budget != nil {
		conf.Budget = conf.Budget.Clone()
	}
	var deadline time.Time
	if a.Timeout > 0 {
		deadline = time.Now().Add(a.Timeout)
	}
	var cancel <-chan struct{}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
		cancel = ctx.Done()
	}
	if !deadline.IsZero() || cancel != nil {
		if conf.Budget == nil {
			conf.Budget = symex.NewBudget()
		}
		conf.Budget.Deadline = deadline
		conf.Budget.Cancel = cancel
	}
	if !a.DisableFuncMemo {
		conf.Memo = ident.ProcessMemo()
		conf.MemoStore = a.Cache
	}
	return conf
}

// loadLib resolves a DT_NEEDED name through LoadLib exactly once,
// memoizing the image and letting concurrent callers share one load.
func (a *Analyzer) loadLib(name string) (*elff.Binary, error) {
	return singleflight(&a.mu, a.bins, a.binFlight, name, func() (*elff.Binary, error) {
		return a.LoadLib(name)
	})
}

// depItem is a priority-queue element ordered by dependency depth:
// deepest libraries are analyzed first so that every library sees its
// dependencies' interfaces (§4.5's DAG-compatible ordering).
type depItem struct {
	name  string
	depth int
}

type depQueue []depItem

func (q depQueue) Len() int           { return len(q) }
func (q depQueue) Less(i, j int) bool { return q[i].depth > q[j].depth }
func (q depQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *depQueue) Push(x any)        { *q = append(*q, x.(depItem)) }
func (q *depQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// depClosure loads the transitive DT_NEEDED closure of needed and
// returns each member's depth (deeper = analyzed earlier).
func (a *Analyzer) depClosure(needed []string) (map[string]int, error) {
	depth := make(map[string]int)
	var visit func(name string, d int) error
	visit = func(name string, d int) error {
		if prev, ok := depth[name]; ok && prev >= d {
			return nil
		}
		if d > 64 {
			return fmt.Errorf("shared: dependency cycle or chain too deep at %q", name)
		}
		depth[name] = d
		bin, err := a.loadLib(name)
		if err != nil {
			return err
		}
		for _, sub := range bin.Needed {
			if err := visit(sub, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range needed {
		if err := visit(name, 1); err != nil {
			return nil, err
		}
	}
	return depth, nil
}

// ensureInterfaces analyzes every library in the dependency closure of
// needed, deepest-first.
func (a *Analyzer) ensureInterfaces(needed []string) error {
	depth, err := a.depClosure(needed)
	if err != nil {
		return err
	}
	q := make(depQueue, 0, len(depth))
	for name, d := range depth {
		q = append(q, depItem{name: name, depth: d})
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(depItem)
		if err := a.ensureInterface(it.name); err != nil {
			return err
		}
	}
	return nil
}

// ensureInterface makes sure one library's interface is available,
// deduplicating concurrent computations: the first caller computes, the
// rest wait and share the outcome.
func (a *Analyzer) ensureInterface(name string) error {
	_, err := singleflight(&a.mu, a.interfaces, a.ifcFlight, name, func() (*Interface, error) {
		ifc, err := a.computeInterface(name)
		if err == nil {
			a.trimBin(name)
		}
		return ifc, err
	})
	return err
}

// trimBin swaps the memoized library image for a lightweight record
// once the expensive per-library phase is behind it. Only Needed and
// Hash are consulted afterwards (closure walks and cache
// fingerprints); without the trim, a long-lived batch analyzer would
// pin every distinct library's full segment bytes in memory for its
// lifetime. Libraries that came through the mapped-image frontend
// (elff.OpenBinary) release their mapping here — ReleaseImage is a
// no-op for every other load path, so callers handing in-memory
// images to LoadLib keep theirs intact.
func (a *Analyzer) trimBin(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if bin, ok := a.bins[name]; ok {
		_ = bin.ReleaseImage()
		a.bins[name] = &elff.Binary{
			Path:   bin.Path,
			Hash:   bin.Hash,
			Kind:   bin.Kind,
			Entry:  bin.Entry,
			Needed: bin.Needed,
		}
	}
}

// computeInterface produces one library's interface: from the
// content-addressed cache, from the legacy name-keyed InterfaceDir, or
// by running the expensive per-library analysis (and then persisting
// the result).
func (a *Analyzer) computeInterface(name string) (*Interface, error) {
	bin, err := a.loadLib(name)
	if err != nil {
		return nil, err
	}
	conf, confOK := a.entryConf(kindInterface, bin.Hash, bin.Needed)
	if confOK {
		var ifc Interface
		if a.Cache.Load(kindInterface, bin.Hash, conf, &ifc) {
			return &ifc, nil
		}
	} else if ifc, ok := a.loadLegacyInterface(name); ok {
		// The name-keyed legacy store cannot detect a changed library
		// image, so it is only consulted when content addressing is
		// unavailable — a content-cache miss must re-analyze, not fall
		// back to a possibly stale name match.
		return ifc, nil
	}
	wrappers, err := a.importWrappersFor(bin)
	if err != nil {
		return nil, err
	}
	ifc, err := AnalyzeLibrary(bin, name, a.confFor(nil), wrappers)
	if err != nil {
		return nil, err
	}
	a.storeLegacyInterface(ifc)
	if confOK {
		// Caching is best-effort; analysis correctness never depends
		// on it.
		_ = a.Cache.Store(kindInterface, bin.Hash, conf, ifc)
	}
	return ifc, nil
}

func (a *Analyzer) interfacePath(name string) string {
	return filepath.Join(a.InterfaceDir, name+".interface.json")
}

func (a *Analyzer) loadLegacyInterface(name string) (*Interface, bool) {
	if a.InterfaceDir == "" {
		return nil, false
	}
	ifc, err := LoadInterface(a.interfacePath(name))
	if err != nil {
		return nil, false
	}
	return ifc, true
}

func (a *Analyzer) storeLegacyInterface(ifc *Interface) {
	if a.InterfaceDir == "" {
		return
	}
	_ = ifc.Save(a.interfacePath(ifc.Library))
}

// importWrappersFor inspects the interfaces of bin's dependencies and
// returns the imported symbols that are wrappers.
func (a *Analyzer) importWrappersFor(bin *elff.Binary) (map[string]symex.ParamRef, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	scope := a.closureScopeLocked(bin.Needed)
	out := make(map[string]symex.ParamRef)
	for _, im := range bin.Imports {
		ifc, exp := a.findProviderLocked(scope, bin.Needed, im.Name)
		if ifc == nil || exp.Wrapper == nil {
			continue
		}
		ref, err := exp.Wrapper.Ref()
		if err != nil {
			return nil, err
		}
		out[im.Name] = ref
	}
	return out, nil
}

// closureScopeLocked returns the name set of the transitive DT_NEEDED
// closure of needed, walked over already-loaded images. This is the
// symbol resolution scope of one program: a batch analyzer holds
// interfaces from many unrelated programs, and letting a symbol
// resolve against a library outside the binary's own closure would
// make results depend on what else happened to be analyzed — and,
// with the persistent cache, freeze that accident of scheduling into
// a content-addressed entry. Callers hold a.mu.
func (a *Analyzer) closureScopeLocked(needed []string) map[string]bool {
	scope := make(map[string]bool)
	var visit func(names []string)
	visit = func(names []string) {
		for _, n := range names {
			if scope[n] {
				continue
			}
			scope[n] = true
			if bin, ok := a.bins[n]; ok {
				visit(bin.Needed)
			}
		}
	}
	visit(needed)
	return scope
}

// findProviderLocked locates the export named sym: first in the given
// dependency list's interfaces, then anywhere within scope (the
// program's global symbol scope — its full dependency closure).
// Callers hold a.mu.
func (a *Analyzer) findProviderLocked(scope map[string]bool, needed []string, sym string) (*Interface, *Export) {
	for _, name := range needed {
		if ifc, ok := a.interfaces[name]; ok {
			if exp, ok := ifc.ExportNamed(sym); ok {
				return ifc, exp
			}
		}
	}
	names := make([]string, 0, len(scope))
	for name := range scope {
		if _, ok := a.interfaces[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if exp, ok := a.interfaces[name].ExportNamed(sym); ok {
			return a.interfaces[name], exp
		}
	}
	return nil, nil
}

// scopeKeyOf canonically renders a resolution scope so memoized
// export sets computed under different scopes never collide.
func scopeKeyOf(scope map[string]bool) string {
	names := make([]string, 0, len(scope))
	for n := range scope {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// closedExportSetLocked computes the transitive syscall set of one
// export, following its foreign calls through other interfaces.
// Imports resolve within scope — the analyzed program's full
// dependency closure, matching the dynamic linker's global symbol
// scope (an underlinked library routinely calls symbols provided by a
// sibling it never declares in DT_NEEDED). The memo is keyed by
// (scope, library, export), so results stay deterministic per program
// even when one analyzer serves many programs with different
// closures. Callers hold a.mu.
func (a *Analyzer) closedExportSetLocked(scope map[string]bool, scopeKey string, lib *Interface, exp *Export) exportSet {
	out, _ := a.closedExportWalkLocked(scope, scopeKey, lib, exp, 0, make(map[string]int))
	return out
}

// closedExportWalkLocked is the cycle-aware walk behind
// closedExportSetLocked. onStack maps in-progress keys to their depth;
// the second return value is the shallowest on-stack depth the subtree
// reached (len(onStack)+1 when none — no open cycle). A node whose
// subtree reaches above it sits inside a cycle that closes at an
// ancestor: its own set is incomplete (the ancestor's contributions
// are still being accumulated), so it must NOT be memoized — only the
// node where the cycle closes sees the full union. Memoizing the
// incomplete set (as a naive seed-and-store does) would let another
// program's query — or the persistent cache — serve a syscall set
// missing the cycle's contributions.
func (a *Analyzer) closedExportWalkLocked(scope map[string]bool, scopeKey string, lib *Interface, exp *Export, depth int, onStack map[string]int) (exportSet, int) {
	key := scopeKey + "\x01" + lib.Library + "\x00" + exp.Name
	if memo, ok := a.exportMemo[key]; ok {
		return memo, depth + 1
	}
	if d, ok := onStack[key]; ok {
		// Cycle: contribute nothing here; the ancestor at depth d
		// completes the union.
		return exportSet{}, d
	}
	onStack[key] = depth
	defer delete(onStack, key)

	var set linux.ValueSet
	set.AddAll(exp.Syscalls)
	failOpen := exp.FailOpen
	low := depth + 1
	for _, sym := range exp.Imports {
		ifc, sub := a.findProviderLocked(scope, lib.Needed, sym)
		if ifc == nil {
			// A library may import its own export (PLT-routed
			// self-calls); modules especially sit outside scope.
			if e, ok := lib.ExportNamed(sym); ok {
				ifc, sub = lib, e
			}
		}
		if ifc == nil {
			// Unresolvable foreign call: unknowable behaviour.
			failOpen = true
			continue
		}
		es, sublow := a.closedExportWalkLocked(scope, scopeKey, ifc, sub, depth+1, onStack)
		if sublow < low {
			low = sublow
		}
		set.AddAll(es.syscalls)
		failOpen = failOpen || es.failOpen
	}
	out := exportSet{syscalls: set.Slice(), failOpen: failOpen}
	if low >= depth {
		// No cycle stays open above this node — either the subtree is
		// acyclic or every cycle closed here, so the union is complete
		// and safe to memoize. Only strictly-inside-a-cycle nodes
		// (low < depth) carry partial sets.
		a.exportMemo[key] = out
	}
	return out, low
}

// ProgramReport is the whole-program identification result.
type ProgramReport struct {
	// Syscalls is the final identified set: the main binary's own sites
	// plus everything reachable through foreign calls.
	Syscalls []uint64
	// FailOpen marks an unbounded result; callers must treat the
	// effective set as the full table.
	FailOpen bool
	// Main is the executable's own identification report.
	Main *ident.Report
	// PerImport maps each reachable foreign symbol to the syscalls it
	// contributes.
	PerImport map[string][]uint64
	// Graph is the main executable's recovered CFG (phase detection and
	// diagnostics build on it).
	Graph *cfg.Graph
	// CFGTime is the wall-clock cost of the main binary's CFG recovery
	// (Table 3's dominant column). Equal to Timings.Get(StageDecode).
	CFGTime time.Duration
	// Timings is the per-stage cost record of the main binary's
	// analysis: decode, wrappers, identify, and stitch.
	Timings pipeline.Timings
}

// Emits derives the phase-detection emission map for the program: the
// main binary's own sites plus, for every block transferring to an
// imported function (inline GOT calls and calls into PLT-style stubs),
// that import's resolved syscall set.
func (r *ProgramReport) Emits() map[uint64][]uint64 {
	out := phases.EmitsFromReport(r.Main)
	decorate := func(blk *cfg.Block, sym string) {
		if set, ok := r.PerImport[sym]; ok && len(set) > 0 {
			out[blk.Addr] = mergeSets(out[blk.Addr], set)
		}
	}
	for _, blk := range r.Graph.SortedBlocks() {
		if blk.ImportCall != "" && len(blk.Succs) > 0 {
			// Inline call through the GOT: the block itself proceeds.
			decorate(blk, blk.ImportCall)
			continue
		}
		// Calls into an import stub: the transition belongs to the
		// calling block (the stub has no local successors).
		for _, e := range blk.Succs {
			if e.Kind != cfg.EdgeCall && e.Kind != cfg.EdgeIndirectCall {
				continue
			}
			if sym := e.To.ImportCall; sym != "" {
				decorate(blk, sym)
			}
		}
	}
	return out
}

func mergeSets(a, b []uint64) []uint64 {
	var set linux.ValueSet
	set.AddAll(a)
	set.AddAll(b)
	return set.Slice()
}

// Program analyzes an executable through the staged pipeline: decode,
// wrapper detection and per-site identification run in
// internal/pipeline (fanned across a.Workers goroutines within the
// binary); for dynamic executables, library interfaces are computed (or
// reused) first and the foreign-call stitching stage folds them in. The
// per-stage costs are recorded on the report's Timings.
func (a *Analyzer) Program(bin *elff.Binary) (*ProgramReport, error) {
	return a.ProgramCtx(context.Background(), bin)
}

// ProgramCtx is Program bounded by a context: cancellation rides the
// analysis budget (stopping symbolic searches mid-flight), is checked
// at every pipeline stage boundary, and its deadline tightens the
// per-unit wall clock. Library-interface computation triggered on the
// way is deliberately NOT canceled with the request — it is shared,
// singleflighted, cacheable work that concurrent requests (and every
// future one) reuse.
func (a *Analyzer) ProgramCtx(ctx context.Context, bin *elff.Binary) (*ProgramReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := a.ensureInterfaces(bin.Needed); err != nil {
		return nil, err
	}

	conf := a.confFor(ctx)
	wrappers, err := a.importWrappersFor(bin)
	if err != nil {
		return nil, err
	}
	conf.ImportWrappers = wrappers

	res, err := pipeline.Run(bin, pipeline.Config{
		Ident:   conf,
		CFG:     cfg.Options{MaxInsns: a.MaxCFGInsns},
		Workers: conf.Workers,
		Ctx:     ctx,
	})
	if err != nil {
		return nil, err
	}
	g, rep := res.Graph, res.Report

	// Stitch stage: resolve each reachable foreign call against the
	// dependency closure's interfaces and union the results.
	stitchStart := time.Now()
	var set linux.ValueSet
	set.AddAll(rep.Syscalls)
	out := &ProgramReport{
		Main:      rep,
		FailOpen:  rep.FailOpen,
		PerImport: make(map[string][]uint64),
		Graph:     g,
		CFGTime:   res.Timings.Get(pipeline.StageDecode),
		Timings:   res.Timings,
	}
	a.mu.Lock()
	scope := a.closureScopeLocked(bin.Needed)
	scopeKey := scopeKeyOf(scope)
	for _, sym := range rep.ReachableImports {
		ifc, exp := a.findProviderLocked(scope, bin.Needed, sym)
		if ifc == nil {
			out.FailOpen = true
			continue
		}
		es := a.closedExportSetLocked(scope, scopeKey, ifc, exp)
		out.PerImport[sym] = es.syscalls
		out.FailOpen = out.FailOpen || es.failOpen
		set.AddAll(es.syscalls)
	}
	a.mu.Unlock()
	out.Syscalls = set.Slice()
	out.Timings.Add(pipeline.StageStitch, time.Since(stitchStart))
	return out, nil
}

// Module analyzes a dlopen-style module (paper §4.5: runtime-loaded
// shared objects are processed alongside the main binary, with module
// identification left to the user). Every exported function is assumed
// callable, so the result is the union of all exports' closed syscall
// sets. A module exporting a syscall wrapper cannot be bounded — its
// numbers come from callers resolved only at runtime — and makes the
// result fail-open.
//
// host is the executable that loads the module (nil if unknown). Real
// plugins routinely import symbols without declaring DT_NEEDED,
// relying on the host process's already-loaded libraries; the module's
// resolution scope is therefore its own dependency closure unioned
// with the host's. That union is deterministic — it depends only on
// the (module, host) pair, never on what else the analyzer has seen.
func (a *Analyzer) Module(bin *elff.Binary, name string, host *elff.Binary) (syscalls []uint64, failOpen bool, err error) {
	return a.ModuleCtx(context.Background(), bin, name, host)
}

// ModuleCtx is Module bounded by a context (see ProgramCtx for the
// cancellation semantics).
func (a *Analyzer) ModuleCtx(ctx context.Context, bin *elff.Binary, name string, host *elff.Binary) (syscalls []uint64, failOpen bool, err error) {
	// A shallow copy with the widened DT_NEEDED list routes the host's
	// closure through wrapper detection, the interface's Needed, and
	// export-set resolution alike.
	mbin := *bin
	// The memoized export sets depend on the module's content and its
	// resolution scope, so the interface key must identify the
	// (module image, host image) pair — a base name alone would let
	// same-named modules, or the same module under different hosts,
	// poison each other's entries. An image without a content hash
	// gets a never-reused serial: correctness over memoization.
	ifcName := "module:" + name
	unkeyed := false
	if mbin.Hash != "" {
		ifcName += "#" + mbin.Hash[:12]
	} else {
		unkeyed = true
	}
	if host != nil && len(host.Needed) > 0 {
		merged := append([]string(nil), mbin.Needed...)
		for _, n := range host.Needed {
			found := false
			for _, m := range merged {
				found = found || m == n
			}
			if !found {
				merged = append(merged, n)
			}
		}
		mbin.Needed = merged
		if host.Hash != "" {
			ifcName += "@" + host.Hash[:12]
		} else {
			unkeyed = true
		}
	}
	if unkeyed {
		ifcName += fmt.Sprintf("!%d", a.moduleSeq.Add(1))
	}
	bin = &mbin
	if err := a.ensureInterfaces(bin.Needed); err != nil {
		return nil, false, err
	}
	wrappers, err := a.importWrappersFor(bin)
	if err != nil {
		return nil, false, err
	}
	ifc, err := AnalyzeLibrary(bin, ifcName, a.confFor(ctx), wrappers)
	if err != nil {
		return nil, false, err
	}
	var set linux.ValueSet
	a.mu.Lock()
	scope := a.closureScopeLocked(bin.Needed)
	scopeKey := scopeKeyOf(scope)
	for i := range ifc.Exports {
		exp := &ifc.Exports[i]
		if exp.Wrapper != nil {
			failOpen = true
		}
		es := a.closedExportSetLocked(scope, scopeKey, ifc, exp)
		failOpen = failOpen || es.failOpen
		set.AddAll(es.syscalls)
	}
	if unkeyed {
		// A one-shot key can never be hit again: drop the module's own
		// memo entries so repeated hash-less Module calls do not grow
		// the memo without bound. (Entries for the regular libraries
		// reached during the walk stay — those keys recur.)
		for i := range ifc.Exports {
			delete(a.exportMemo, scopeKey+"\x01"+ifc.Library+"\x00"+ifc.Exports[i].Name)
		}
	}
	a.mu.Unlock()
	return set.Slice(), failOpen, nil
}
