package shared

import (
	"path/filepath"
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/ident"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// miniLibc builds a small libc-like library: write -> 1, exitp -> 60,
// syscall is a register wrapper.
func miniLibc(t *testing.T) *elff.Binary {
	t.Helper()
	lib, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0000000000, func(b *asm.Builder) {
		b.Func("write")
		b.MovRegImm32(x86.RAX, 1)
		b.Syscall()
		b.Ret()
		b.Func("exitp")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("syscall")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{
			{Name: "write", Addr: syms["write"]},
			{Name: "exitp", Addr: syms["exitp"]},
			{Name: "syscall", Addr: syms["syscall"]},
		}
	})
	return lib
}

// midLib depends on libc and re-exports logmsg (which calls write) and
// spawn (which calls libc's syscall wrapper with a constant).
func midLib(t *testing.T) *elff.Binary {
	t.Helper()
	lib, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0100000000, func(b *asm.Builder) {
		b.Func("logmsg")
		b.CallLabel("stub_write")
		b.Ret()
		b.Func("spawn")
		b.MovRegImm32(x86.RDI, 57) // fork via libc syscall()
		b.CallLabel("stub_syscall")
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Func("stub_syscall")
		b.JmpMemRIP("got_syscall")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
		b.Label("got_syscall")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{
			{Name: "logmsg", Addr: syms["logmsg"]},
			{Name: "spawn", Addr: syms["spawn"]},
		}
		spec.Imports = []elff.Import{
			{Name: "write", SlotAddr: syms["got_write"]},
			{Name: "syscall", SlotAddr: syms["got_syscall"]},
		}
		spec.Needed = []string{"libc.so"}
	})
	return lib
}

func loader(t *testing.T) func(string) (*elff.Binary, error) {
	t.Helper()
	libc := miniLibc(t)
	mid := midLib(t)
	return func(name string) (*elff.Binary, error) {
		switch name {
		case "libc.so":
			return libc, nil
		case "libmid.so":
			return mid, nil
		}
		return nil, &elffNotFound{name}
	}
}

type elffNotFound struct{ name string }

func (e *elffNotFound) Error() string { return "not found: " + e.name }

func TestAnalyzeLibraryInterface(t *testing.T) {
	libc := miniLibc(t)
	ifc, err := AnalyzeLibrary(libc, "libc.so", ident.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifc.Library != "libc.so" || len(ifc.Exports) != 3 {
		t.Fatalf("interface: %+v", ifc)
	}
	w, ok := ifc.ExportNamed("write")
	if !ok || !reflect.DeepEqual(w.Syscalls, []uint64{1}) {
		t.Fatalf("write: %+v", w)
	}
	sw, ok := ifc.ExportNamed("syscall")
	if !ok || sw.Wrapper == nil || sw.Wrapper.Reg != "rdi" {
		t.Fatalf("syscall wrapper: %+v", sw)
	}
	if len(sw.Syscalls) != 0 {
		t.Fatalf("wrapper export must carry no own syscalls: %v", sw.Syscalls)
	}
}

func TestInterfaceJSONRoundTrip(t *testing.T) {
	libc := miniLibc(t)
	ifc, err := AnalyzeLibrary(libc, "libc.so", ident.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "libc.json")
	if err := ifc.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInterface(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ifc, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", ifc, back)
	}
}

func TestParamRefRoundTrip(t *testing.T) {
	for _, ref := range []Param{{Reg: "rdi"}, {Stack: true, Off: 8}} {
		r, err := ref.Ref()
		if err != nil {
			t.Fatal(err)
		}
		if got := paramFromRef(r); got != ref {
			t.Fatalf("round trip: %+v -> %+v", ref, got)
		}
	}
	if _, err := (Param{Reg: "bogus"}).Ref(); err == nil {
		t.Fatal("bogus register accepted")
	}
}

func TestProgramThroughDirectImport(t *testing.T) {
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("stub_write")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		spec.Needed = []string{"libc.so"}
	})
	a := NewAnalyzer(loader(t), ident.Config{})
	rep, err := a.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{1, 60}) || rep.FailOpen {
		t.Fatalf("syscalls: %v failopen=%v", rep.Syscalls, rep.FailOpen)
	}
	if !reflect.DeepEqual(rep.PerImport["write"], []uint64{1}) {
		t.Fatalf("per-import: %v", rep.PerImport)
	}
}

func TestProgramThroughImportedWrapper(t *testing.T) {
	// The program calls libc's syscall() wrapper with a constant: the
	// wrapper parameter comes from libc's interface and the call site
	// resolves inside the main binary.
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 41) // socket
		b.CallLabel("stub_syscall")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_syscall")
		b.JmpMemRIP("got_syscall")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_syscall")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "syscall", SlotAddr: syms["got_syscall"]}}
		spec.Needed = []string{"libc.so"}
	})
	a := NewAnalyzer(loader(t), ident.Config{})
	rep, err := a.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{41, 60}) || rep.FailOpen {
		t.Fatalf("syscalls: %v failopen=%v", rep.Syscalls, rep.FailOpen)
	}
}

func TestTransitiveLibraryClosure(t *testing.T) {
	// main -> libmid.so:{logmsg, spawn}; logmsg -> libc write (1),
	// spawn -> libc syscall wrapper with 57, resolved inside libmid.
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("stub_logmsg")
		b.CallLabel("stub_spawn")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_logmsg")
		b.JmpMemRIP("got_logmsg")
		b.Func("stub_spawn")
		b.JmpMemRIP("got_spawn")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_logmsg")
		b.Quad(0)
		b.Label("got_spawn")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{
			{Name: "logmsg", SlotAddr: syms["got_logmsg"]},
			{Name: "spawn", SlotAddr: syms["got_spawn"]},
		}
		spec.Needed = []string{"libmid.so"}
	})
	a := NewAnalyzer(loader(t), ident.Config{})
	rep, err := a.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{1, 57, 60}) || rep.FailOpen {
		t.Fatalf("syscalls: %v failopen=%v", rep.Syscalls, rep.FailOpen)
	}
	// Both libraries must have cached interfaces now.
	if len(a.Interfaces()) != 2 {
		t.Fatalf("interfaces: %v", a.Interfaces())
	}
	// spawn's closed set contains the wrapper-resolved fork.
	if got := rep.PerImport["spawn"]; !reflect.DeepEqual(got, []uint64{57}) {
		t.Fatalf("spawn: %v", got)
	}
}

func TestProgramThroughStackParamImportWrapper(t *testing.T) {
	// A musl/Go-flavoured libc whose raw-syscall wrapper takes the
	// number on the stack: the interface records the stack slot and the
	// program's call sites resolve against it.
	goLibc, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0200000000, func(b *asm.Builder) {
		b.Func("rawsyscall")
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "rawsyscall", Addr: syms["rawsyscall"]}}
	})

	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 318) // getrandom
		b.CallLabel("stub_rawsyscall")
		b.AddRegImm(x86.RSP, 16)
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_rawsyscall")
		b.JmpMemRIP("got_rawsyscall")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_rawsyscall")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "rawsyscall", SlotAddr: syms["got_rawsyscall"]}}
		spec.Needed = []string{"libgo.so"}
	})

	a := NewAnalyzer(func(name string) (*elff.Binary, error) {
		if name == "libgo.so" {
			return goLibc, nil
		}
		return nil, &elffNotFound{name}
	}, ident.Config{})
	rep, err := a.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{60, 318}) || rep.FailOpen {
		t.Fatalf("syscalls: %v failopen=%v", rep.Syscalls, rep.FailOpen)
	}
	// The interface must carry the stack-slot parameter.
	ifc := a.Interfaces()["libgo.so"]
	exp, _ := ifc.ExportNamed("rawsyscall")
	if exp.Wrapper == nil || !exp.Wrapper.Stack || exp.Wrapper.Off != 8 {
		t.Fatalf("wrapper param: %+v", exp.Wrapper)
	}
}

func TestInterfaceDiskCache(t *testing.T) {
	dir := t.TempDir()
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("stub_write")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
		b.Func("stub_write")
		b.JmpMemRIP("got_write")
		b.Label("__code_end")
		b.Align(8)
		b.Label("got_write")
		b.Quad(0)
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Imports = []elff.Import{{Name: "write", SlotAddr: syms["got_write"]}}
		spec.Needed = []string{"libc.so"}
	})

	// First run writes the interface file.
	a1 := NewAnalyzer(loader(t), ident.Config{})
	a1.InterfaceDir = dir
	rep1, err := a1.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInterface(filepath.Join(dir, "libc.so.interface.json")); err != nil {
		t.Fatalf("interface not persisted: %v", err)
	}

	// Second run must reuse it — even with a loader that fails for the
	// library image itself (only the executable needs loading again).
	calls := 0
	brokenLoader := func(name string) (*elff.Binary, error) {
		calls++
		return loader(t)(name)
	}
	a2 := NewAnalyzer(brokenLoader, ident.Config{})
	a2.InterfaceDir = dir
	rep2, err := a2.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1.Syscalls, rep2.Syscalls) {
		t.Fatalf("cached run differs: %v vs %v", rep1.Syscalls, rep2.Syscalls)
	}
}

func TestMissingLibraryFailsOpen(t *testing.T) {
	main, _ := testbin.Build(t, elff.KindDynamic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Needed = []string{"libnothere.so"}
	})
	a := NewAnalyzer(loader(t), ident.Config{})
	if _, err := a.Program(main); err == nil {
		t.Fatal("missing library must surface as an error")
	}
}

func TestStaticProgramNeedsNoInterfaces(t *testing.T) {
	main, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
	}, nil)
	a := NewAnalyzer(loader(t), ident.Config{})
	rep, err := a.Program(main)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Syscalls, []uint64{39}) {
		t.Fatalf("syscalls: %v", rep.Syscalls)
	}
	if len(a.Interfaces()) != 0 {
		t.Fatal("no interfaces expected for a static program")
	}
}
