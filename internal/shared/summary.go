package shared

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bside/internal/elff"
)

// Cache entry kinds: the two artifact classes of the decoupled design —
// per-library shared interfaces (Figure 3's L) and whole-program
// identification summaries.
const (
	kindInterface = "interface"
	kindProgram   = "program"
)

// Summary is the serializable reduced form of a ProgramReport: the
// fields that survive a cache round trip. The CFG and the per-site
// identification report are deliberately dropped — they dwarf the
// summary and only matter for phase detection and diagnostics, which
// re-analyze when needed.
type Summary struct {
	Syscalls  []uint64            `json:"syscalls,omitempty"`
	FailOpen  bool                `json:"fail_open,omitempty"`
	Wrappers  int                 `json:"wrappers,omitempty"`
	Imports   []string            `json:"imports,omitempty"`
	PerImport map[string][]uint64 `json:"per_import,omitempty"`
	// Cached reports whether the summary was served from the store
	// rather than computed. Not persisted.
	Cached bool `json:"-"`
}

// Summarize reduces a full report to its cacheable summary.
func Summarize(rep *ProgramReport) *Summary {
	return &Summary{
		Syscalls:  rep.Syscalls,
		FailOpen:  rep.FailOpen,
		Wrappers:  len(rep.Main.Wrappers),
		Imports:   rep.Main.ReachableImports,
		PerImport: rep.PerImport,
	}
}

// normalize restores the computed-result shape after a cache round
// trip: empty collections are stored as absent (omitempty) and load
// back as nil, but callers are promised byte-identical results across
// the cache cold and warm paths — found by the fuzzing oracle on
// import-free binaries — so nil becomes the empty slice again.
func (s *Summary) normalize() {
	if s.Syscalls == nil {
		s.Syscalls = []uint64{}
	}
	if s.Imports == nil {
		s.Imports = []string{}
	}
}

// confFingerprint encodes every analyzer setting that can change an
// entry of the given kind. Entries stored under a different
// fingerprint are misses, so tuning the analyzer never serves stale
// results. MaxCFGInsns only bounds the main executable's CFG recovery
// (AnalyzeLibrary does not use it), so it is folded into program
// fingerprints only — retuning it must not bust the fleet's library
// interfaces.
func (a *Analyzer) confFingerprint(kind string) string {
	c := a.Config
	// ResolverLayers is normalized exactly as ident.Config.withDefaults
	// does (zero means the default, layer 2), so an explicit default and
	// the zero value share cache entries — they produce identical
	// results — while any other layer setting gets its own namespace.
	rl := c.ResolverLayers
	if rl == 0 {
		rl = 2
	}
	fp := fmt.Sprintf("bfs=%d frontier=%d stack=%d upper=%d resolver=%d",
		c.MaxBFSDepth, c.MaxFrontier, c.StackParams, c.SyscallUpper, rl)
	if kind == kindProgram {
		fp += fmt.Sprintf(" maxcfg=%d", a.MaxCFGInsns)
	}
	if c.Budget != nil {
		fp += fmt.Sprintf(" budget=%d/%d/%d", c.Budget.MaxSteps, c.Budget.MaxForks, c.Budget.MaxVisits)
	}
	return fp
}

// depHashes resolves a DT_NEEDED list's transitive closure and renders
// each member as name=sha256, sorted. A cached result is only valid
// while every dependency image is byte-identical: upgrading a library
// busts the entries of everything linking it, even though the
// dependents' own images are unchanged.
//
// The rendering is memoized per needed-list: LoadLib's name→image
// mapping is fixed for the analyzer's lifetime (loads are memoized),
// so the fingerprint is a pure function of the list — and one cache
// probe plus its following store would otherwise walk the closure
// twice per binary, with a whole batch repeating it per member.
func (a *Analyzer) depHashes(needed []string) (string, error) {
	memoKey := strings.Join(needed, "\x00")
	a.mu.Lock()
	if v, ok := a.depHashMemo[memoKey]; ok {
		a.mu.Unlock()
		return v, nil
	}
	a.mu.Unlock()
	out, err := a.depHashesUncached(needed)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.depHashMemo[memoKey] = out
	a.mu.Unlock()
	return out, nil
}

func (a *Analyzer) depHashesUncached(needed []string) (string, error) {
	closure, err := a.depClosure(needed)
	if err != nil {
		return "", err
	}
	seen := make(map[string]string, len(closure))
	for n := range closure {
		dep, err := a.loadLib(n) // memoized by depClosure
		if err != nil {
			return "", err
		}
		if dep.Hash == "" {
			return "", fmt.Errorf("shared: dependency %q has no content hash", n)
		}
		seen[n] = dep.Hash
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(seen[n])
	}
	return sb.String(), nil
}

// entryConf builds the cache fingerprint for entries of one kind
// derived from an image with the given content hash and DT_NEEDED
// list, and reports whether caching is possible at all (a store is
// configured, the image has a content hash, and the dependency closure
// is hashable).
func (a *Analyzer) entryConf(kind, hash string, needed []string) (string, bool) {
	if a.Cache == nil || hash == "" {
		return "", false
	}
	deps, err := a.depHashes(needed)
	if err != nil {
		return "", false
	}
	return a.confFingerprint(kind) + "|deps:" + deps, true
}

// CachedSummary probes the program cache for an image identified only
// by its content hash and DT_NEEDED list — the two facts a cheap
// identity parse (elff.ReadIdentity) yields — and returns the
// persisted summary on a hit. The warm batch path rides on this: a
// fleet re-probe never pays the full ELF parse, let alone a decoded
// instruction, for a binary whose analysis is already stored.
func (a *Analyzer) CachedSummary(hash string, needed []string) (*Summary, bool) {
	conf, confOK := a.entryConf(kindProgram, hash, needed)
	if !confOK {
		return nil, false
	}
	var sum Summary
	if !a.Cache.Load(kindProgram, hash, conf, &sum) {
		return nil, false
	}
	sum.Cached = true
	sum.normalize()
	return &sum, true
}

// CachedSummaryByHash probes the program cache knowing nothing but the
// image's content hash — the resident service's `?hash=` lookup path,
// where no image bytes exist to parse at all. The stored entry's
// fingerprint carries everything needed to validate it: the analyzer
// settings must match this analyzer's, and every dependency named in
// the stored closure is re-hashed through the library loader so a
// changed library image is a miss here exactly as it is for
// CachedSummary. The DT_NEEDED list is recovered from the stored
// closure rather than an ELF parse, so a warm lookup decodes nothing.
func (a *Analyzer) CachedSummaryByHash(hash string) (*Summary, bool) {
	if a.Cache == nil || hash == "" {
		return nil, false
	}
	var sum Summary
	conf, ok := a.Cache.LoadAny(kindProgram, hash, &sum)
	if !ok {
		return nil, false
	}
	want := a.confFingerprint(kindProgram) + "|deps:"
	if !strings.HasPrefix(conf, want) {
		return nil, false
	}
	deps := conf[len(want):]
	if deps != "" {
		// Re-validate the closure: each stored name=sha256 pair must
		// match the loader's current image, or the entry is stale.
		names := make([]string, 0, strings.Count(deps, ",")+1)
		for _, pair := range strings.Split(deps, ",") {
			name, _, found := strings.Cut(pair, "=")
			if !found {
				return nil, false
			}
			names = append(names, name)
		}
		current, err := a.depHashes(names)
		if err != nil || current != deps {
			return nil, false
		}
	}
	sum.Cached = true
	sum.normalize()
	return &sum, true
}

// ComputeSummary is the miss half of ProgramSummary: it runs the full
// analysis and persists the summary, without re-probing the store
// (callers that already probed via CachedSummary use it directly).
func (a *Analyzer) ComputeSummary(bin *elff.Binary) (*Summary, *ProgramReport, error) {
	return a.ComputeSummaryCtx(context.Background(), bin)
}

// ComputeSummaryCtx is ComputeSummary bounded by a context (see
// ProgramCtx for the cancellation semantics).
func (a *Analyzer) ComputeSummaryCtx(ctx context.Context, bin *elff.Binary) (*Summary, *ProgramReport, error) {
	rep, err := a.ProgramCtx(ctx, bin)
	if err != nil {
		return nil, nil, err
	}
	sum := Summarize(rep)
	if conf, confOK := a.entryConf(kindProgram, bin.Hash, bin.Needed); confOK {
		// Best-effort: a failed store only costs a future re-analysis.
		_ = a.Cache.Store(kindProgram, bin.Hash, conf, sum)
	}
	return sum, rep, nil
}

// ProgramSummary is the cache-aware analysis entry point. On a store
// hit (same image, same configuration, byte-identical dependency
// closure) it returns the persisted summary without decoding a single
// instruction, and rep is nil. On a miss it runs Program, persists the
// summary, and returns both.
func (a *Analyzer) ProgramSummary(bin *elff.Binary) (*Summary, *ProgramReport, error) {
	if sum, ok := a.CachedSummary(bin.Hash, bin.Needed); ok {
		return sum, nil, nil
	}
	return a.ComputeSummary(bin)
}
