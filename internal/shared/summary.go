package shared

import (
	"fmt"
	"sort"
	"strings"

	"bside/internal/elff"
)

// Cache entry kinds: the two artifact classes of the decoupled design —
// per-library shared interfaces (Figure 3's L) and whole-program
// identification summaries.
const (
	kindInterface = "interface"
	kindProgram   = "program"
)

// Summary is the serializable reduced form of a ProgramReport: the
// fields that survive a cache round trip. The CFG and the per-site
// identification report are deliberately dropped — they dwarf the
// summary and only matter for phase detection and diagnostics, which
// re-analyze when needed.
type Summary struct {
	Syscalls  []uint64            `json:"syscalls,omitempty"`
	FailOpen  bool                `json:"fail_open,omitempty"`
	Wrappers  int                 `json:"wrappers,omitempty"`
	Imports   []string            `json:"imports,omitempty"`
	PerImport map[string][]uint64 `json:"per_import,omitempty"`
	// Cached reports whether the summary was served from the store
	// rather than computed. Not persisted.
	Cached bool `json:"-"`
}

// Summarize reduces a full report to its cacheable summary.
func Summarize(rep *ProgramReport) *Summary {
	return &Summary{
		Syscalls:  rep.Syscalls,
		FailOpen:  rep.FailOpen,
		Wrappers:  len(rep.Main.Wrappers),
		Imports:   rep.Main.ReachableImports,
		PerImport: rep.PerImport,
	}
}

// normalize restores the computed-result shape after a cache round
// trip: empty collections are stored as absent (omitempty) and load
// back as nil, but callers are promised byte-identical results across
// the cache cold and warm paths — found by the fuzzing oracle on
// import-free binaries — so nil becomes the empty slice again.
func (s *Summary) normalize() {
	if s.Syscalls == nil {
		s.Syscalls = []uint64{}
	}
	if s.Imports == nil {
		s.Imports = []string{}
	}
}

// confFingerprint encodes every analyzer setting that can change an
// entry of the given kind. Entries stored under a different
// fingerprint are misses, so tuning the analyzer never serves stale
// results. MaxCFGInsns only bounds the main executable's CFG recovery
// (AnalyzeLibrary does not use it), so it is folded into program
// fingerprints only — retuning it must not bust the fleet's library
// interfaces.
func (a *Analyzer) confFingerprint(kind string) string {
	c := a.Config
	fp := fmt.Sprintf("bfs=%d frontier=%d stack=%d upper=%d",
		c.MaxBFSDepth, c.MaxFrontier, c.StackParams, c.SyscallUpper)
	if kind == kindProgram {
		fp += fmt.Sprintf(" maxcfg=%d", a.MaxCFGInsns)
	}
	if c.Budget != nil {
		fp += fmt.Sprintf(" budget=%d/%d/%d", c.Budget.MaxSteps, c.Budget.MaxForks, c.Budget.MaxVisits)
	}
	return fp
}

// depHashes resolves bin's transitive DT_NEEDED closure and renders
// each member as name=sha256, sorted. A cached result is only valid
// while every dependency image is byte-identical: upgrading a library
// busts the entries of everything linking it, even though the
// dependents' own images are unchanged.
func (a *Analyzer) depHashes(bin *elff.Binary) (string, error) {
	closure, err := a.depClosure(bin.Needed)
	if err != nil {
		return "", err
	}
	seen := make(map[string]string, len(closure))
	for n := range closure {
		dep, err := a.loadLib(n) // memoized by depClosure
		if err != nil {
			return "", err
		}
		if dep.Hash == "" {
			return "", fmt.Errorf("shared: dependency %q has no content hash", n)
		}
		seen[n] = dep.Hash
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(seen[n])
	}
	return sb.String(), nil
}

// entryConf builds the cache fingerprint for entries of one kind
// derived from bin, and reports whether caching is possible at all (a
// store is configured, the image has a content hash, and the
// dependency closure is hashable).
func (a *Analyzer) entryConf(kind string, bin *elff.Binary) (string, bool) {
	if a.Cache == nil || bin.Hash == "" {
		return "", false
	}
	deps, err := a.depHashes(bin)
	if err != nil {
		return "", false
	}
	return a.confFingerprint(kind) + "|deps:" + deps, true
}

// ProgramSummary is the cache-aware analysis entry point. On a store
// hit (same image, same configuration, byte-identical dependency
// closure) it returns the persisted summary without decoding a single
// instruction, and rep is nil. On a miss it runs Program, persists the
// summary, and returns both.
func (a *Analyzer) ProgramSummary(bin *elff.Binary) (*Summary, *ProgramReport, error) {
	conf, confOK := a.entryConf(kindProgram, bin)
	if confOK {
		var sum Summary
		if a.Cache.Load(kindProgram, bin.Hash, conf, &sum) {
			sum.Cached = true
			sum.normalize()
			return &sum, nil, nil
		}
	}
	rep, err := a.Program(bin)
	if err != nil {
		return nil, nil, err
	}
	sum := Summarize(rep)
	if confOK {
		// Best-effort: a failed store only costs a future re-analysis.
		_ = a.Cache.Store(kindProgram, bin.Hash, conf, sum)
	}
	return sum, rep, nil
}
